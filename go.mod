module pplivesim

go 1.22
