GO ?= go

# Hot-path microbenchmarks that gate performance work (see README
# "Performance"). The top-level Fig*/Table* benchmarks each run a full
# scenario; use `make bench-scenarios` for those.
HOTPATH_PKGS = ./internal/eventsim ./internal/wire
BENCHTIME ?= 2s

.PHONY: fast full fuzz bench bench-sched bench-select bench-shard bench-telemetry bench-fault bench-cdn bench-scenarios bench-compare bench-baseline clean

# Fast lane: static checks plus every -short test under the race detector.
# Scenario-scale tests skip themselves in -short mode, so this finishes in
# about a minute and is the pre-commit gate.
fast:
	$(GO) vet ./...
	$(GO) test -race -short -timeout 20m ./...

# Full lane: build everything and run the whole suite, including the
# multi-minute scenario tests (tier-1 verify). internal/core alone exceeds
# go test's default 10m timeout on slow single-core machines, so raise it.
full:
	$(GO) build ./...
	$(GO) test -timeout 30m ./...

# Short coverage-guided fuzz pass over the wire codec, seeded from the
# committed golden-trace corpus (internal/wire/testdata/fuzz). CI runs this on
# every push; longer local sessions just raise FUZZTIME.
FUZZTIME ?= 10s

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzUnmarshal -fuzztime $(FUZZTIME) ./internal/wire/

# Hot-path benchmarks, also exported as BENCH_hotpath.json
# ([{"name":..., "ns_per_op":..., "bytes_per_op":..., "allocs_per_op":...}]).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) $(HOTPATH_PKGS) | tee bench_hotpath.txt
	awk 'BEGIN { print "[" } \
	  /^Benchmark/ { ns=""; bytes=""; allocs=""; \
	    for (i = 2; i <= NF; i++) { \
	      if ($$(i) == "ns/op") ns = $$(i-1); \
	      if ($$(i) == "B/op") bytes = $$(i-1); \
	      if ($$(i) == "allocs/op") allocs = $$(i-1); \
	    } \
	    if (ns == "") next; \
	    if (n++) print ","; \
	    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
	      $$1, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs); \
	  } \
	  END { print "\n]" }' bench_hotpath.txt > BENCH_hotpath.json
	@echo "wrote BENCH_hotpath.json"

# Scheduler benchmarks (request-scheduling hot path in internal/peer), also
# exported as BENCH_sched.json in the same shape as BENCH_hotpath.json.
bench-sched:
	$(GO) test -run '^$$' -bench 'Scheduler|PickProvider' -benchmem -benchtime $(BENCHTIME) ./internal/peer | tee bench_sched.txt
	awk 'BEGIN { print "[" } \
	  /^Benchmark/ { ns=""; bytes=""; allocs=""; \
	    for (i = 2; i <= NF; i++) { \
	      if ($$(i) == "ns/op") ns = $$(i-1); \
	      if ($$(i) == "B/op") bytes = $$(i-1); \
	      if ($$(i) == "allocs/op") allocs = $$(i-1); \
	    } \
	    if (ns == "") next; \
	    if (n++) print ","; \
	    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
	      $$1, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs); \
	  } \
	  END { print "\n]" }' bench_sched.txt > BENCH_sched.json
	@echo "wrote BENCH_sched.json"

# Sharded-engine wall-clock benchmark: the paper-scale popular scenario run
# three times on the SAME partition (SHARD_WORKERS event-loop shards) at
# GOMAXPROCS 1, 2, and 4, exported as BENCH_shard.json. Holding the
# partition fixed and varying only the core count is what makes the entries
# comparable: the events/continuity/locality fields must be identical across
# all three (the trajectory is worker-count invariant — benchdiff -shard
# enforces this), and only wall_seconds may differ. The gomaxprocs field in
# each entry records how many cores that run had, so downstream comparisons
# (benchdiff -shard baseline current) match like-for-like (workers,
# gomaxprocs) pairs instead of conflating parity runs with regressions.
# Each run is a full ~2-hour-virtual scenario, so this takes serious wall
# time. SHARD_WORKERS=12 engages the scaled partition (7 TELE address-range
# sub-shards + infrastructure domain); values <= 6 use the legacy ISP
# partition.
SHARD_WORKERS ?= 12

bench-shard:
	GOMAXPROCS=1 PPLIVE_PAPER_SCALE=1 PPLIVE_SHARD_WORKERS=$(SHARD_WORKERS) $(GO) test -run TestPaperScalePopularRun -v -timeout 4h ./internal/experiments | tee bench_shard.txt
	GOMAXPROCS=2 PPLIVE_PAPER_SCALE=1 PPLIVE_SHARD_WORKERS=$(SHARD_WORKERS) $(GO) test -run TestPaperScalePopularRun -v -timeout 4h ./internal/experiments | tee -a bench_shard.txt
	GOMAXPROCS=4 PPLIVE_PAPER_SCALE=1 PPLIVE_SHARD_WORKERS=$(SHARD_WORKERS) $(GO) test -run TestPaperScalePopularRun -v -timeout 4h ./internal/experiments | tee -a bench_shard.txt
	awk 'BEGIN { print "[" } \
	  /shard-bench:/ { \
	    line = ""; \
	    for (i = 1; i <= NF; i++) { \
	      if (split($$(i), kv, "=") != 2) continue; \
	      line = line (line == "" ? "" : ", ") "\"" kv[1] "\": " kv[2]; \
	    } \
	    if (line == "") next; \
	    if (n++) print ","; \
	    printf "  {%s}", line; \
	  } \
	  END { print "\n]" }' bench_shard.txt > BENCH_shard.json
	$(GO) run ./cmd/benchdiff -shard BENCH_shard.json
	@echo "wrote BENCH_shard.json"

# Selection-policy benchmarks (tracker reply composition in
# internal/selection), exported as BENCH_select.json. The baseline/uniform
# pair proves the strategy indirection is free on the default path: the
# bench-compare gate holds BenchmarkSelectUniform within the noise threshold
# of the hand-inlined BenchmarkSelectUniformBaseline at 0 allocs/op.
bench-select:
	$(GO) test -run '^$$' -bench Select -benchmem -benchtime $(BENCHTIME) ./internal/selection | tee bench_select.txt
	awk 'BEGIN { print "[" } \
	  /^Benchmark/ { ns=""; bytes=""; allocs=""; \
	    for (i = 2; i <= NF; i++) { \
	      if ($$(i) == "ns/op") ns = $$(i-1); \
	      if ($$(i) == "B/op") bytes = $$(i-1); \
	      if ($$(i) == "allocs/op") allocs = $$(i-1); \
	    } \
	    if (ns == "") next; \
	    if (n++) print ","; \
	    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
	      $$1, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs); \
	  } \
	  END { print "\n]" }' bench_select.txt > BENCH_select.json
	@echo "wrote BENCH_select.json"

# Telemetry pipeline benchmarks: full-capture vs streaming analysis of the
# same synthetic paper-scale trace, exported as BENCH_telemetry.json. Besides
# the usual ns/op + allocs/op, each entry carries live_heap_bytes — the heap
# retained by the pipeline's state after a full GC — which is the number the
# streaming telemetry work gates on (streaming must stay >= 10x below full
# capture; TestStreamingTelemetryMemoryFootprint enforces it).
bench-telemetry:
	$(GO) test -run '^$$' -bench Telemetry -benchmem -benchtime $(BENCHTIME) ./internal/analysis | tee bench_telemetry.txt
	awk 'BEGIN { print "[" } \
	  /^Benchmark/ { ns=""; bytes=""; allocs=""; live=""; \
	    for (i = 2; i <= NF; i++) { \
	      if ($$(i) == "ns/op") ns = $$(i-1); \
	      if ($$(i) == "B/op") bytes = $$(i-1); \
	      if ($$(i) == "allocs/op") allocs = $$(i-1); \
	      if ($$(i) == "live-heap-B") live = $$(i-1); \
	    } \
	    if (ns == "") next; \
	    if (n++) print ","; \
	    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"live_heap_bytes\": %s}", \
	      $$1, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs), (live == "" ? "null" : live); \
	  } \
	  END { print "\n]" }' bench_telemetry.txt > BENCH_telemetry.json
	@echo "wrote BENCH_telemetry.json"

# Fault-hook benchmarks: the underlay send path with the fault layer idle
# (every benign run) and with an active link fault, exported as
# BENCH_fault.json. The idle numbers gate the tentpole claim that fault
# hooks cost ~nothing when no chaos schedule is installed.
bench-fault:
	$(GO) test -run '^$$' -bench Fault -benchmem -benchtime $(BENCHTIME) ./internal/underlay | tee bench_fault.txt
	awk 'BEGIN { print "[" } \
	  /^Benchmark/ { ns=""; bytes=""; allocs=""; \
	    for (i = 2; i <= NF; i++) { \
	      if ($$(i) == "ns/op") ns = $$(i-1); \
	      if ($$(i) == "B/op") bytes = $$(i-1); \
	      if ($$(i) == "allocs/op") allocs = $$(i-1); \
	    } \
	    if (ns == "") next; \
	    if (n++) print ","; \
	    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
	      $$1, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs); \
	  } \
	  END { print "\n]" }' bench_fault.txt > BENCH_fault.json
	@echo "wrote BENCH_fault.json"

# CDN-hook benchmarks: the urgent-miss scheduling path with no edges deployed
# (every pure-P2P run) and with a hybrid edge set, exported as BENCH_cdn.json.
# The edges=0 numbers gate the claim that idle CDN hooks cost 0 allocs on the
# send path (TestCDNIdleHooksZeroAlloc pins the alloc count itself).
bench-cdn:
	$(GO) test -run '^$$' -bench CDNUrgentMiss -benchmem -benchtime $(BENCHTIME) ./internal/peer | tee bench_cdn.txt
	awk 'BEGIN { print "[" } \
	  /^Benchmark/ { ns=""; bytes=""; allocs=""; \
	    for (i = 2; i <= NF; i++) { \
	      if ($$(i) == "ns/op") ns = $$(i-1); \
	      if ($$(i) == "B/op") bytes = $$(i-1); \
	      if ($$(i) == "allocs/op") allocs = $$(i-1); \
	    } \
	    if (ns == "") next; \
	    if (n++) print ","; \
	    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
	      $$1, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs); \
	  } \
	  END { print "\n]" }' bench_cdn.txt > BENCH_cdn.json
	@echo "wrote BENCH_cdn.json"

# Perf regression gate (the CI bench-compare lane): re-run both benchmark
# suites fresh and compare against the committed baselines in bench/baseline/,
# failing if any benchmark's ns/op regressed by more than 30% relative to its
# siblings (benchdiff -normalize divides the ratios by their geometric mean,
# so a uniformly slower or faster machine doesn't trip the gate). Re-baseline
# after intentional perf changes with `make bench-baseline`.
bench-compare:
	$(MAKE) bench bench-sched bench-select bench-telemetry bench-fault bench-cdn BENCHTIME=$(BENCHTIME)
	$(GO) run ./cmd/benchdiff -normalize -threshold 0.30 \
	  bench/baseline/hotpath.json BENCH_hotpath.json \
	  bench/baseline/sched.json BENCH_sched.json \
	  bench/baseline/select.json BENCH_select.json \
	  bench/baseline/telemetry.json BENCH_telemetry.json \
	  bench/baseline/fault.json BENCH_fault.json \
	  bench/baseline/cdn.json BENCH_cdn.json

# Refresh the committed perf baselines from a fresh benchmark run.
bench-baseline:
	$(MAKE) bench bench-sched bench-select bench-telemetry bench-fault bench-cdn BENCHTIME=$(BENCHTIME)
	mkdir -p bench/baseline
	cp BENCH_hotpath.json bench/baseline/hotpath.json
	cp BENCH_sched.json bench/baseline/sched.json
	cp BENCH_select.json bench/baseline/select.json
	cp BENCH_telemetry.json bench/baseline/telemetry.json
	cp BENCH_fault.json bench/baseline/fault.json
	cp BENCH_cdn.json bench/baseline/cdn.json
	@echo "wrote bench/baseline/{hotpath,sched,select,telemetry,fault,cdn}.json"

# Scenario-scale benchmarks: one full simulation per table/figure.
bench-scenarios:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x .

clean:
	rm -f bench_hotpath.txt BENCH_hotpath.json bench_sched.txt BENCH_sched.json \
	  bench_select.txt BENCH_select.json \
	  bench_shard.txt BENCH_shard.json bench_telemetry.txt BENCH_telemetry.json \
	  bench_fault.txt BENCH_fault.json bench_cdn.txt BENCH_cdn.json core.test
