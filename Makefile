GO ?= go

# Hot-path microbenchmarks that gate performance work (see README
# "Performance"). The top-level Fig*/Table* benchmarks each run a full
# scenario; use `make bench-scenarios` for those.
HOTPATH_PKGS = ./internal/eventsim ./internal/wire
BENCHTIME ?= 2s

.PHONY: fast full bench bench-sched bench-scenarios clean

# Fast lane: static checks plus every -short test under the race detector.
# Scenario-scale tests skip themselves in -short mode, so this finishes in
# about a minute and is the pre-commit gate.
fast:
	$(GO) vet ./...
	$(GO) test -race -short ./...

# Full lane: build everything and run the whole suite, including the
# multi-minute scenario tests (tier-1 verify).
full:
	$(GO) build ./...
	$(GO) test ./...

# Hot-path benchmarks, also exported as BENCH_hotpath.json
# ([{"name":..., "ns_per_op":..., "bytes_per_op":..., "allocs_per_op":...}]).
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) $(HOTPATH_PKGS) | tee bench_hotpath.txt
	awk 'BEGIN { print "[" } \
	  /^Benchmark/ { ns=""; bytes=""; allocs=""; \
	    for (i = 2; i <= NF; i++) { \
	      if ($$(i) == "ns/op") ns = $$(i-1); \
	      if ($$(i) == "B/op") bytes = $$(i-1); \
	      if ($$(i) == "allocs/op") allocs = $$(i-1); \
	    } \
	    if (ns == "") next; \
	    if (n++) print ","; \
	    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
	      $$1, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs); \
	  } \
	  END { print "\n]" }' bench_hotpath.txt > BENCH_hotpath.json
	@echo "wrote BENCH_hotpath.json"

# Scheduler benchmarks (request-scheduling hot path in internal/peer), also
# exported as BENCH_sched.json in the same shape as BENCH_hotpath.json.
bench-sched:
	$(GO) test -run '^$$' -bench 'Scheduler|PickProvider' -benchmem -benchtime $(BENCHTIME) ./internal/peer | tee bench_sched.txt
	awk 'BEGIN { print "[" } \
	  /^Benchmark/ { ns=""; bytes=""; allocs=""; \
	    for (i = 2; i <= NF; i++) { \
	      if ($$(i) == "ns/op") ns = $$(i-1); \
	      if ($$(i) == "B/op") bytes = $$(i-1); \
	      if ($$(i) == "allocs/op") allocs = $$(i-1); \
	    } \
	    if (ns == "") next; \
	    if (n++) print ","; \
	    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
	      $$1, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs); \
	  } \
	  END { print "\n]" }' bench_sched.txt > BENCH_sched.json
	@echo "wrote BENCH_sched.json"

# Scenario-scale benchmarks: one full simulation per table/figure.
bench-scenarios:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x .

clean:
	rm -f bench_hotpath.txt BENCH_hotpath.json bench_sched.txt BENCH_sched.json core.test
