// Command experiments regenerates every table and figure of the paper's
// evaluation section from fresh simulation runs, printing each section as it
// completes and optionally writing the whole report to a file (the
// repository's EXPERIMENTS.md is produced this way).
//
// Usage:
//
//	experiments [-scale quick|default|paper] [-seed N] [-only substr] [-out file]
//	            [-shards N] [-fidelity mixed|full|flow] [-selection policy]
//	            [-cpuprofile file] [-memprofile file]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pplivesim/internal/experiments"
	"pplivesim/internal/peer"
	"pplivesim/internal/selection"
	"pplivesim/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type section struct {
	id    string
	title string
	gen   func(r *experiments.Runner) (string, error)
}

func sections() []section {
	return []section{
		{"fig2", "Figure 2 — China-TELE probe, popular program", func(r *experiments.Runner) (string, error) {
			out, err := r.Popular()
			if err != nil {
				return "", err
			}
			return experiments.FigureABC("", out.Reports[experiments.ProbeTELE]), nil
		}},
		{"fig3", "Figure 3 — China-TELE probe, unpopular program", func(r *experiments.Runner) (string, error) {
			out, err := r.Unpopular()
			if err != nil {
				return "", err
			}
			return experiments.FigureABC("", out.Reports[experiments.ProbeTELE]), nil
		}},
		{"fig4", "Figure 4 — USA-Mason probe, popular program", func(r *experiments.Runner) (string, error) {
			out, err := r.Popular()
			if err != nil {
				return "", err
			}
			return experiments.FigureABC("", out.Reports[experiments.ProbeMason]), nil
		}},
		{"fig5", "Figure 5 — USA-Mason probe, unpopular program", func(r *experiments.Runner) (string, error) {
			out, err := r.Unpopular()
			if err != nil {
				return "", err
			}
			return experiments.FigureABC("", out.Reports[experiments.ProbeMason]), nil
		}},
		{"fig6", "Figure 6 — traffic locality across the four-week schedule", func(r *experiments.Runner) (string, error) {
			pop, unpop, err := r.Fig6(func(day int) {
				fmt.Fprintf(os.Stderr, "  fig6 day %d/%d\n", day+1, r.Scale.Fig6Days)
			})
			if err != nil {
				return "", err
			}
			return experiments.RenderFig6(pop, unpop), nil
		}},
		{"fig7", "Figure 7 — peer-list response times, TELE probe / popular", func(r *experiments.Runner) (string, error) {
			out, err := r.Popular()
			if err != nil {
				return "", err
			}
			return experiments.ResponseTimes("", out.Reports[experiments.ProbeTELE]), nil
		}},
		{"fig8", "Figure 8 — peer-list response times, TELE probe / unpopular", func(r *experiments.Runner) (string, error) {
			out, err := r.Unpopular()
			if err != nil {
				return "", err
			}
			return experiments.ResponseTimes("", out.Reports[experiments.ProbeTELE]), nil
		}},
		{"fig9", "Figure 9 — peer-list response times, Mason probe / popular", func(r *experiments.Runner) (string, error) {
			out, err := r.Popular()
			if err != nil {
				return "", err
			}
			return experiments.ResponseTimes("", out.Reports[experiments.ProbeMason]), nil
		}},
		{"fig10", "Figure 10 — peer-list response times, Mason probe / unpopular", func(r *experiments.Runner) (string, error) {
			out, err := r.Unpopular()
			if err != nil {
				return "", err
			}
			return experiments.ResponseTimes("", out.Reports[experiments.ProbeMason]), nil
		}},
		{"tab1", "Table 1 — average response time (s) to data requests", func(r *experiments.Runner) (string, error) {
			pop, err := r.Popular()
			if err != nil {
				return "", err
			}
			unpop, err := r.Unpopular()
			if err != nil {
				return "", err
			}
			rows := []string{
				experiments.DataRTRow("TELE-Popular", pop.Reports[experiments.ProbeTELE]),
				experiments.DataRTRow("TELE-Unpopular", unpop.Reports[experiments.ProbeTELE]),
				experiments.DataRTRow("Mason-Popular", pop.Reports[experiments.ProbeMason]),
				experiments.DataRTRow("Mason-Unpopular", unpop.Reports[experiments.ProbeMason]),
			}
			return strings.Join(rows, "\n") + "\n", nil
		}},
		{"fig11", "Figure 11 — connections and contributions, TELE probe / popular", func(r *experiments.Runner) (string, error) {
			out, err := r.Popular()
			if err != nil {
				return "", err
			}
			return experiments.Contributions("", out.Reports[experiments.ProbeTELE]), nil
		}},
		{"fig12", "Figure 12 — connections and contributions, TELE probe / unpopular", func(r *experiments.Runner) (string, error) {
			out, err := r.Unpopular()
			if err != nil {
				return "", err
			}
			return experiments.Contributions("", out.Reports[experiments.ProbeTELE]), nil
		}},
		{"fig13", "Figure 13 — connections and contributions, Mason probe / popular", func(r *experiments.Runner) (string, error) {
			out, err := r.Popular()
			if err != nil {
				return "", err
			}
			return experiments.Contributions("", out.Reports[experiments.ProbeMason]), nil
		}},
		{"fig14", "Figure 14 — connections and contributions, Mason probe / unpopular", func(r *experiments.Runner) (string, error) {
			out, err := r.Unpopular()
			if err != nil {
				return "", err
			}
			return experiments.Contributions("", out.Reports[experiments.ProbeMason]), nil
		}},
		{"fig15", "Figure 15 — rank vs RTT, TELE probe / popular", func(r *experiments.Runner) (string, error) {
			out, err := r.Popular()
			if err != nil {
				return "", err
			}
			return experiments.RTTCorrelation("", out.Reports[experiments.ProbeTELE]), nil
		}},
		{"fig16", "Figure 16 — rank vs RTT, TELE probe / unpopular", func(r *experiments.Runner) (string, error) {
			out, err := r.Unpopular()
			if err != nil {
				return "", err
			}
			return experiments.RTTCorrelation("", out.Reports[experiments.ProbeTELE]), nil
		}},
		{"fig17", "Figure 17 — rank vs RTT, Mason probe / popular", func(r *experiments.Runner) (string, error) {
			out, err := r.Popular()
			if err != nil {
				return "", err
			}
			return experiments.RTTCorrelation("", out.Reports[experiments.ProbeMason]), nil
		}},
		{"fig18", "Figure 18 — rank vs RTT, Mason probe / unpopular", func(r *experiments.Runner) (string, error) {
			out, err := r.Unpopular()
			if err != nil {
				return "", err
			}
			return experiments.RTTCorrelation("", out.Reports[experiments.ProbeMason]), nil
		}},
		{"multichannel", "Multi-channel — popular + unpopular running concurrently with channel-switching viewers", func(r *experiments.Runner) (string, error) {
			out, err := r.MultiChannel()
			if err != nil {
				return "", err
			}
			var b strings.Builder
			b.WriteString(experiments.MultiChannelSummary(out))
			b.WriteString(experiments.FigureABC("TELE probe pinned to the popular channel:", out.Reports[experiments.ProbeTELEPopular]))
			b.WriteString(experiments.FigureABC("TELE probe pinned to the unpopular channel:", out.Reports[experiments.ProbeTELEUnpopular]))
			return b.String(), nil
		}},
		{"ablation-referral", "Ablation — neighbor referral vs tracker-only (+ BitTorrent baseline)", func(r *experiments.Runner) (string, error) {
			out, err := r.AblationReferral()
			if err != nil {
				return "", err
			}
			return out.Render(), nil
		}},
		{"ablation-latency", "Ablation — latency-based neighbor selection", func(r *experiments.Runner) (string, error) {
			out, err := r.AblationLatencyBias()
			if err != nil {
				return "", err
			}
			return out.Render(), nil
		}},
		{"ablation-preference", "Ablation — performance-weighted scheduling", func(r *experiments.Runner) (string, error) {
			out, err := r.AblationPreference()
			if err != nil {
				return "", err
			}
			return out.Render(), nil
		}},
		{"ablation-fidelity", "Ablation — background fidelity substitution", func(r *experiments.Runner) (string, error) {
			out, err := r.AblationFidelity()
			if err != nil {
				return "", err
			}
			return out.Render(), nil
		}},
		{"frontier", "Locality frontier — biased peer selection: transit savings vs continuity/startup", func(r *experiments.Runner) (string, error) {
			pts, err := r.LocalityFrontier(func(name string) {
				fmt.Fprintf(os.Stderr, "  frontier %s\n", name)
			})
			if err != nil {
				return "", err
			}
			return experiments.RenderFrontier(pts), nil
		}},
		{"cdn", "Hybrid CDN+P2P — per-ISP edge offload vs locality under a flash crowd", func(r *experiments.Runner) (string, error) {
			pts, err := r.CDNOffload(func(name string) {
				fmt.Fprintf(os.Stderr, "  cdn %s\n", name)
			})
			if err != nil {
				return "", err
			}
			return experiments.RenderCDN(pts), nil
		}},
		{"chaos", "Chaos — dip/recovery and traffic shift under the combo fault preset", func(r *experiments.Runner) (string, error) {
			out, err := r.Chaos()
			if err != nil {
				return "", err
			}
			var b strings.Builder
			for _, name := range []string{experiments.ProbeTELE, experiments.ProbeMason} {
				s, err := experiments.ResilienceSummary("", out.Result, name)
				if err != nil {
					return "", err
				}
				b.WriteString(s)
				b.WriteString("\n")
			}
			return b.String(), nil
		}},
	}
}

func run() error {
	scaleName := flag.String("scale", "default", "quick, default, or paper")
	seed := flag.Int64("seed", 20081011, "base random seed (default: the measurement start date)")
	only := flag.String("only", "", "run only sections whose id contains this substring")
	out := flag.String("out", "", "also append sections to this file")
	plots := flag.String("plots", "", "also render SVG figures into this directory")
	workers := flag.Int("workers", 0, "max concurrent scenario runs (0 = GOMAXPROCS); results are identical at any setting")
	shards := flag.Int("shards", simnet.DefaultShards, "event-loop workers per run (one per ISP domain by default); results are identical at any setting")
	fidelityName := flag.String("fidelity", "mixed", "background population fidelity: "+strings.Join(peer.FidelityNames(), ", "))
	selectionName := flag.String("selection", "random", "peer selection policy: "+strings.Join(selection.Names(), ", "))
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	flag.Parse()

	if *workers < 0 {
		return fmt.Errorf("-workers %d: must be >= 0", *workers)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d: must be >= 1", *shards)
	}
	fidelity, err := peer.ParseFidelity(*fidelityName)
	if err != nil {
		return err
	}
	selSpec, err := selection.ParseSpec(*selectionName)
	if err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: cpuprofile:", err)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // settle allocations so the heap profile is meaningful
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "default":
		scale = experiments.DefaultScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	var sink *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		// Closed explicitly on the success path below so a write error (full
		// disk, flushed on close) fails the run; this defer only covers the
		// error returns in between.
		defer f.Close()
		sink = f
	}
	emit := func(s string) {
		fmt.Print(s)
		if sink != nil {
			fmt.Fprint(sink, s)
		}
	}

	runner := experiments.NewRunner(scale, *seed)
	runner.Workers = *workers
	runner.Shards = *shards
	runner.Fidelity = fidelity
	runner.Selection = selSpec
	emit(fmt.Sprintf("experiment run: scale=%s seed=%d population×%.2f watch=%s fig6days=%d\n\n",
		*scaleName, *seed, scale.Population, scale.Watch, scale.Fig6Days))

	start := time.Now()
	if *only == "" {
		// The full report derives most sections from the two shared traces;
		// run them concurrently before the sequential section sweep.
		fmt.Fprintln(os.Stderr, "== warming shared runs (popular + unpopular in parallel) ==")
		if err := runner.Warm(); err != nil {
			return err
		}
	}
	for _, s := range sections() {
		if *only != "" && !strings.Contains(s.id, *only) {
			continue
		}
		fmt.Fprintf(os.Stderr, "== running %s ==\n", s.id)
		secStart := time.Now()
		body, err := s.gen(runner)
		if err != nil {
			return fmt.Errorf("section %s: %w", s.id, err)
		}
		emit(fmt.Sprintf("## %s: %s\n%s(wall %s)\n\n", s.id, s.title, body, time.Since(secStart).Round(time.Second)))
	}
	if *plots != "" {
		// The frontier figures reuse the cached sweep, so they only render
		// when the frontier section ran (or on a full run).
		if strings.Contains("frontier", *only) {
			if err := renderFrontierPlots(runner, *plots); err != nil {
				return fmt.Errorf("plots: %w", err)
			}
		}
		if strings.Contains("cdn", *only) {
			if err := renderCDNPlots(runner, *plots); err != nil {
				return fmt.Errorf("plots: %w", err)
			}
		}
		if *only == "" {
			if err := renderPlots(runner, *plots); err != nil {
				return fmt.Errorf("plots: %w", err)
			}
		}
		fmt.Fprintf(os.Stderr, "figures written to %s\n", *plots)
	}
	emit(fmt.Sprintf("total wall time: %s\n", time.Since(start).Round(time.Second)))
	if sink != nil {
		if err := sink.Close(); err != nil {
			return fmt.Errorf("out %s: %w", *out, err)
		}
	}
	return nil
}

// renderFrontierPlots draws the locality-frontier figures from the cached
// sweep (running it if the -only filter skipped the section).
func renderFrontierPlots(runner *experiments.Runner, dir string) error {
	fw := experiments.NewFigureWriter(dir)
	pts, err := runner.LocalityFrontier(nil)
	if err != nil {
		return err
	}
	return fw.WriteFrontier("frontier", "Locality frontier, TELE probe", pts)
}

// renderCDNPlots draws the hybrid CDN+P2P figures from the cached sweep
// (running it if the -only filter skipped the section).
func renderCDNPlots(runner *experiments.Runner, dir string) error {
	fw := experiments.NewFigureWriter(dir)
	pts, err := runner.CDNOffload(nil)
	if err != nil {
		return err
	}
	return fw.WriteCDN("cdn", "Hybrid CDN+P2P, TELE probe", pts)
}

// renderPlots draws every figure from the cached runs (running them if the
// -only filter skipped them).
func renderPlots(runner *experiments.Runner, dir string) error {
	fw := experiments.NewFigureWriter(dir)
	pop, err := runner.Popular()
	if err != nil {
		return err
	}
	unpop, err := runner.Unpopular()
	if err != nil {
		return err
	}
	views := []struct {
		probe                           string
		out                             *experiments.RunOutputs
		prefix, title, rt, contrib, rtt string
	}{
		{experiments.ProbeTELE, pop, "fig2", "TELE probe / popular", "fig7-list-rt", "fig11", "fig15-rtt"},
		{experiments.ProbeTELE, unpop, "fig3", "TELE probe / unpopular", "fig8-list-rt", "fig12", "fig16-rtt"},
		{experiments.ProbeMason, pop, "fig4", "Mason probe / popular", "fig9-list-rt", "fig13", "fig17-rtt"},
		{experiments.ProbeMason, unpop, "fig5", "Mason probe / unpopular", "fig10-list-rt", "fig14", "fig18-rtt"},
	}
	for _, v := range views {
		rep := v.out.Reports[v.probe]
		if rep == nil {
			continue
		}
		if err := fw.WriteAll(v.prefix, v.title, rep, v.rt, v.contrib, v.rtt); err != nil {
			return err
		}
	}
	return nil
}
