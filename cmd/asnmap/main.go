// Command asnmap resolves IPv4 addresses against the synthetic IP→ASN
// registry — the simulation's equivalent of the Team Cymru mapping service
// the paper used to attribute captured peer addresses to ISPs.
//
// Usage:
//
//	asnmap 58.40.1.2 129.174.10.20 ...
//	asnmap -table             # dump the whole prefix registry
//	asnmap -wire 58.40.1.2    # resolve over the simulated wire service
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"time"

	"pplivesim/internal/asnmap"
	"pplivesim/internal/isp"
	"pplivesim/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asnmap:", err)
		os.Exit(1)
	}
}

func run() error {
	table := flag.Bool("table", false, "dump the registered prefixes")
	wireMode := flag.Bool("wire", false, "resolve through the wire service over a simulated network")
	flag.Parse()

	registry := asnmap.SyntheticInternet()
	if *table {
		fmt.Printf("%-20s %-8s %-6s %s\n", "PREFIX", "ASN", "ISP", "AS NAME")
		for _, rec := range registry.Records() {
			fmt.Printf("%-20s %-8d %-6s %s\n", rec.Prefix, rec.ASN, rec.ISP, rec.Name)
		}
		return nil
	}
	if flag.NArg() == 0 {
		return fmt.Errorf("no addresses given (try -table)")
	}

	addrs := make([]netip.Addr, 0, flag.NArg())
	for _, arg := range flag.Args() {
		a, err := netip.ParseAddr(arg)
		if err != nil {
			return fmt.Errorf("parse %q: %w", arg, err)
		}
		addrs = append(addrs, a)
	}

	if !*wireMode {
		for _, a := range addrs {
			if rec, ok := registry.Lookup(a); ok {
				fmt.Printf("%-16s AS%-6d %-8s %s\n", a, rec.ASN, rec.ISP, rec.Name)
			} else {
				fmt.Printf("%-16s (no origin AS registered)\n", a)
			}
		}
		return nil
	}

	// Wire mode: stand up the service and a caching client on a simulated
	// network and resolve through them.
	w := simnet.NewWorld(1)
	w.CodecCheck = true
	srvEnv, err := w.Spawn(simnet.HostSpec{ISP: isp.TELE, UploadBps: 1 << 20})
	if err != nil {
		return err
	}
	srvEnv.SetHandler(asnmap.NewService(srvEnv, registry))
	cliEnv, err := w.Spawn(simnet.HostSpec{ISP: isp.CNC, UploadBps: 1 << 20})
	if err != nil {
		return err
	}
	cli := asnmap.NewClient(cliEnv, srvEnv.Addr())
	cliEnv.SetHandler(cli)

	for _, a := range addrs {
		a := a
		cli.Resolve(a, func(rec asnmap.Record, found bool) {
			if found {
				fmt.Printf("%-16s AS%-6d %-8s %s (resolved in %v virtual)\n",
					a, rec.ASN, rec.ISP, rec.Name, w.Engine.Now())
			} else {
				fmt.Printf("%-16s (no origin AS registered)\n", a)
			}
		})
	}
	return w.Engine.Run(time.Minute)
}
