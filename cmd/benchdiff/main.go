// Command benchdiff compares two benchmark JSON exports (the shape `make
// bench` / `make bench-sched` write: a list of {"name", "ns_per_op",
// "bytes_per_op", "allocs_per_op"} objects) and fails when any benchmark
// regressed beyond a threshold. It is the CI perf gate: the committed
// BENCH_*.json baselines are compared against a fresh run on the CI runner.
//
// Usage:
//
//	benchdiff [-threshold 0.30] [-normalize] baseline.json current.json [baseline2.json current2.json ...]
//	benchdiff -shard BENCH_shard.json
//	benchdiff -shard [-threshold 0.30] baseline_shard.json current_shard.json
//
// With -shard, the files are `make bench-shard` exports — a list of
// {"workers", "gomaxprocs", "wall_seconds", "events", "continuity",
// "locality"} objects, one per (partition, core-count) run. Every file is
// checked for trajectory determinism: entries sharing a workers value must
// agree exactly on events, continuity and locality, because the engine's
// trajectory is worker-count invariant and only wall_seconds may vary.
// Given a baseline/current pair, wall_seconds is compared only between
// entries with the SAME (workers, gomaxprocs) key — like-for-like — so a
// single-core parity run is never mistaken for a regression against a
// multi-core one. A single file argument runs the determinism check and
// prints the multi-core speedup without comparing against a baseline.
//
// With -normalize, every ns/op ratio is divided by the geometric mean of all
// ratios in that file pair. A different (slower or faster) machine shifts
// every benchmark by roughly the same factor; the geomean absorbs that
// machine-wide offset, so only *relative* regressions — one benchmark getting
// slower than its siblings — trip the gate. That is what makes a committed
// baseline from a developer machine usable on an arbitrary CI runner.
//
// Exit status: 0 when no benchmark exceeds the threshold (ratios between
// warnRatio and the threshold print warnings), 1 on a regression or when a
// baseline benchmark is missing from the current run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

type benchEntry struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// warnRatio is the normalized slowdown that prints a warning without
// failing; below it, run-to-run noise dominates.
const warnRatio = 1.10

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	threshold := flag.Float64("threshold", 0.30, "fail when a benchmark's (normalized) ns/op grows by more than this fraction")
	normalize := flag.Bool("normalize", false, "divide ratios by their geometric mean to absorb machine-speed offsets")
	shard := flag.Bool("shard", false, "compare make bench-shard exports: like-for-like (workers, gomaxprocs) wall clock plus trajectory-determinism checks")
	flag.Parse()

	args := flag.Args()
	if *threshold <= 0 {
		return fmt.Errorf("-threshold %g: must be positive", *threshold)
	}
	if *shard {
		return runShard(args, *threshold)
	}
	if len(args) == 0 || len(args)%2 != 0 {
		return fmt.Errorf("usage: benchdiff [-threshold F] [-normalize] baseline.json current.json [...]")
	}

	failed := false
	for i := 0; i < len(args); i += 2 {
		ok, err := comparePair(args[i], args[i+1], *threshold, *normalize)
		if err != nil {
			return err
		}
		if !ok {
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("benchmark regression beyond %.0f%%", 100**threshold)
	}
	return nil
}

func load(path string) (map[string]benchEntry, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var entries []benchEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]benchEntry, len(entries))
	var names []string
	for _, e := range entries {
		if e.Name == "" || e.NsPerOp <= 0 {
			return nil, nil, fmt.Errorf("%s: entry %+v missing name or ns_per_op", path, e)
		}
		if _, dup := byName[e.Name]; dup {
			return nil, nil, fmt.Errorf("%s: duplicate benchmark %q", path, e.Name)
		}
		byName[e.Name] = e
		names = append(names, e.Name)
	}
	return byName, names, nil
}

// comparePair reports whether baseline→current stays within the threshold.
func comparePair(basePath, curPath string, threshold float64, normalize bool) (bool, error) {
	base, baseNames, err := load(basePath)
	if err != nil {
		return false, err
	}
	cur, curNames, err := load(curPath)
	if err != nil {
		return false, err
	}

	// Ratios for benchmarks present on both sides, in baseline order.
	type row struct {
		name  string
		ratio float64
	}
	var rows []row
	for _, name := range baseNames {
		if c, ok := cur[name]; ok {
			rows = append(rows, row{name: name, ratio: c.NsPerOp / base[name].NsPerOp})
		}
	}

	fmt.Printf("== %s vs %s ==\n", basePath, curPath)
	ok := true
	if len(rows) == 0 {
		fmt.Println("  no common benchmarks")
		ok = false
	}

	scale := 1.0
	if normalize && len(rows) > 0 {
		logSum := 0.0
		for _, r := range rows {
			logSum += math.Log(r.ratio)
		}
		scale = math.Exp(logSum / float64(len(rows)))
		fmt.Printf("  machine-speed offset (geomean of ratios): %.3f — normalized out\n", scale)
	}

	for _, r := range rows {
		norm := r.ratio / scale
		verdict := "ok"
		switch {
		case norm > 1+threshold:
			verdict = fmt.Sprintf("FAIL (> +%.0f%%)", 100*threshold)
			ok = false
		case norm > warnRatio:
			verdict = "warn"
		}
		fmt.Printf("  %-50s %8.0f -> %8.0f ns/op  ratio %.3f  normalized %.3f  %s\n",
			r.name, base[r.name].NsPerOp, cur[r.name].NsPerOp, r.ratio, norm, verdict)
	}

	// A benchmark disappearing from the current run would silently shrink
	// coverage, so it fails the gate; new benchmarks are informational.
	for _, name := range baseNames {
		if _, found := cur[name]; !found {
			fmt.Printf("  %-50s MISSING from current run\n", name)
			ok = false
		}
	}
	var added []string
	for _, name := range curNames {
		if _, found := base[name]; !found {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Printf("  %-50s new benchmark (no baseline)\n", name)
	}
	return ok, nil
}

// shardEntry is one run of `make bench-shard`: a (partition, core-count)
// pair with its wall clock and the trajectory metrics that pin determinism.
type shardEntry struct {
	Workers     int     `json:"workers"`
	Gomaxprocs  int     `json:"gomaxprocs"`
	WallSeconds float64 `json:"wall_seconds"`
	Events      uint64  `json:"events"`
	Continuity  float64 `json:"continuity"`
	Locality    float64 `json:"locality"`
}

// key identifies the like-for-like comparison unit: wall clock is only
// meaningful between runs of the same partition on the same core count.
func (e shardEntry) key() string {
	return fmt.Sprintf("workers=%d gomaxprocs=%d", e.Workers, e.Gomaxprocs)
}

func loadShard(path string) ([]shardEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []shardEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("%s: no shard-bench entries", path)
	}
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		if e.Workers < 1 || e.Gomaxprocs < 1 || e.WallSeconds <= 0 {
			return nil, fmt.Errorf("%s: entry %+v missing workers, gomaxprocs or wall_seconds", path, e)
		}
		if seen[e.key()] {
			return nil, fmt.Errorf("%s: duplicate entry for %s", path, e.key())
		}
		seen[e.key()] = true
	}
	return entries, nil
}

// runShard handles -shard mode: one file checks determinism and prints the
// multi-core speedup; a baseline/current pair additionally gates wall clock
// like-for-like.
func runShard(args []string, threshold float64) error {
	switch len(args) {
	case 1:
		entries, err := loadShard(args[0])
		if err != nil {
			return err
		}
		if !checkShardFile(args[0], entries) {
			return fmt.Errorf("shard trajectory diverges across worker counts")
		}
		return nil
	case 2:
		base, err := loadShard(args[0])
		if err != nil {
			return err
		}
		cur, err := loadShard(args[1])
		if err != nil {
			return err
		}
		ok := checkShardFile(args[1], cur)
		if !compareShardPair(args[0], base, args[1], cur, threshold) {
			ok = false
		}
		if !ok {
			return fmt.Errorf("shard benchmark regression beyond %.0f%% (or determinism failure)", 100*threshold)
		}
		return nil
	default:
		return fmt.Errorf("usage: benchdiff -shard current.json  |  benchdiff -shard baseline.json current.json")
	}
}

// checkShardFile verifies worker-count invariance within one export: every
// entry sharing a workers value must report bit-identical events, continuity
// and locality — core count may change the wall clock, never the trajectory.
// It also prints the speedup of each entry over the slowest run of the same
// partition, which is the number the multi-core acceptance gate reads.
func checkShardFile(path string, entries []shardEntry) bool {
	fmt.Printf("== %s (determinism + speedup) ==\n", path)
	ok := true
	ref := make(map[int]shardEntry)
	slowest := make(map[int]float64)
	for _, e := range entries {
		if r, found := ref[e.Workers]; found {
			if e.Events != r.Events || e.Continuity != r.Continuity || e.Locality != r.Locality {
				fmt.Printf("  %-30s DETERMINISM FAIL: events/continuity/locality differ from %s\n", e.key(), r.key())
				ok = false
			}
		} else {
			ref[e.Workers] = e
		}
		if e.WallSeconds > slowest[e.Workers] {
			slowest[e.Workers] = e.WallSeconds
		}
	}
	for _, e := range entries {
		fmt.Printf("  %-30s wall %7.1fs  speedup %.2fx  (events %d, continuity %.4f, locality %.4f)\n",
			e.key(), e.WallSeconds, slowest[e.Workers]/e.WallSeconds, e.Events, e.Continuity, e.Locality)
	}
	return ok
}

// compareShardPair gates baseline→current wall clock between entries with
// the same (workers, gomaxprocs) key only.
func compareShardPair(basePath string, base []shardEntry, curPath string, cur []shardEntry, threshold float64) bool {
	fmt.Printf("== %s vs %s (like-for-like wall clock) ==\n", basePath, curPath)
	byKey := make(map[string]shardEntry, len(cur))
	for _, e := range cur {
		byKey[e.key()] = e
	}
	ok := true
	matched := 0
	for _, b := range base {
		c, found := byKey[b.key()]
		if !found {
			fmt.Printf("  %-30s MISSING from current run\n", b.key())
			ok = false
			continue
		}
		matched++
		ratio := c.WallSeconds / b.WallSeconds
		verdict := "ok"
		switch {
		case ratio > 1+threshold:
			verdict = fmt.Sprintf("FAIL (> +%.0f%%)", 100*threshold)
			ok = false
		case ratio > warnRatio:
			verdict = "warn"
		}
		fmt.Printf("  %-30s %7.1fs -> %7.1fs  ratio %.3f  %s\n", b.key(), b.WallSeconds, c.WallSeconds, ratio, verdict)
	}
	if matched == 0 {
		fmt.Println("  no common (workers, gomaxprocs) entries")
		ok = false
	}
	for _, c := range cur {
		found := false
		for _, b := range base {
			if b.key() == c.key() {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("  %-30s new configuration (no baseline)\n", c.key())
		}
	}
	return ok
}
