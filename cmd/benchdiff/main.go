// Command benchdiff compares two benchmark JSON exports (the shape `make
// bench` / `make bench-sched` write: a list of {"name", "ns_per_op",
// "bytes_per_op", "allocs_per_op"} objects) and fails when any benchmark
// regressed beyond a threshold. It is the CI perf gate: the committed
// BENCH_*.json baselines are compared against a fresh run on the CI runner.
//
// Usage:
//
//	benchdiff [-threshold 0.30] [-normalize] baseline.json current.json [baseline2.json current2.json ...]
//
// With -normalize, every ns/op ratio is divided by the geometric mean of all
// ratios in that file pair. A different (slower or faster) machine shifts
// every benchmark by roughly the same factor; the geomean absorbs that
// machine-wide offset, so only *relative* regressions — one benchmark getting
// slower than its siblings — trip the gate. That is what makes a committed
// baseline from a developer machine usable on an arbitrary CI runner.
//
// Exit status: 0 when no benchmark exceeds the threshold (ratios between
// warnRatio and the threshold print warnings), 1 on a regression or when a
// baseline benchmark is missing from the current run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

type benchEntry struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// warnRatio is the normalized slowdown that prints a warning without
// failing; below it, run-to-run noise dominates.
const warnRatio = 1.10

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	threshold := flag.Float64("threshold", 0.30, "fail when a benchmark's (normalized) ns/op grows by more than this fraction")
	normalize := flag.Bool("normalize", false, "divide ratios by their geometric mean to absorb machine-speed offsets")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 || len(args)%2 != 0 {
		return fmt.Errorf("usage: benchdiff [-threshold F] [-normalize] baseline.json current.json [...]")
	}
	if *threshold <= 0 {
		return fmt.Errorf("-threshold %g: must be positive", *threshold)
	}

	failed := false
	for i := 0; i < len(args); i += 2 {
		ok, err := comparePair(args[i], args[i+1], *threshold, *normalize)
		if err != nil {
			return err
		}
		if !ok {
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("benchmark regression beyond %.0f%%", 100**threshold)
	}
	return nil
}

func load(path string) (map[string]benchEntry, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var entries []benchEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]benchEntry, len(entries))
	var names []string
	for _, e := range entries {
		if e.Name == "" || e.NsPerOp <= 0 {
			return nil, nil, fmt.Errorf("%s: entry %+v missing name or ns_per_op", path, e)
		}
		if _, dup := byName[e.Name]; dup {
			return nil, nil, fmt.Errorf("%s: duplicate benchmark %q", path, e.Name)
		}
		byName[e.Name] = e
		names = append(names, e.Name)
	}
	return byName, names, nil
}

// comparePair reports whether baseline→current stays within the threshold.
func comparePair(basePath, curPath string, threshold float64, normalize bool) (bool, error) {
	base, baseNames, err := load(basePath)
	if err != nil {
		return false, err
	}
	cur, curNames, err := load(curPath)
	if err != nil {
		return false, err
	}

	// Ratios for benchmarks present on both sides, in baseline order.
	type row struct {
		name  string
		ratio float64
	}
	var rows []row
	for _, name := range baseNames {
		if c, ok := cur[name]; ok {
			rows = append(rows, row{name: name, ratio: c.NsPerOp / base[name].NsPerOp})
		}
	}

	fmt.Printf("== %s vs %s ==\n", basePath, curPath)
	ok := true
	if len(rows) == 0 {
		fmt.Println("  no common benchmarks")
		ok = false
	}

	scale := 1.0
	if normalize && len(rows) > 0 {
		logSum := 0.0
		for _, r := range rows {
			logSum += math.Log(r.ratio)
		}
		scale = math.Exp(logSum / float64(len(rows)))
		fmt.Printf("  machine-speed offset (geomean of ratios): %.3f — normalized out\n", scale)
	}

	for _, r := range rows {
		norm := r.ratio / scale
		verdict := "ok"
		switch {
		case norm > 1+threshold:
			verdict = fmt.Sprintf("FAIL (> +%.0f%%)", 100*threshold)
			ok = false
		case norm > warnRatio:
			verdict = "warn"
		}
		fmt.Printf("  %-50s %8.0f -> %8.0f ns/op  ratio %.3f  normalized %.3f  %s\n",
			r.name, base[r.name].NsPerOp, cur[r.name].NsPerOp, r.ratio, norm, verdict)
	}

	// A benchmark disappearing from the current run would silently shrink
	// coverage, so it fails the gate; new benchmarks are informational.
	for _, name := range baseNames {
		if _, found := cur[name]; !found {
			fmt.Printf("  %-50s MISSING from current run\n", name)
			ok = false
		}
	}
	var added []string
	for _, name := range curNames {
		if _, found := base[name]; !found {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Printf("  %-50s new benchmark (no baseline)\n", name)
	}
	return ok, nil
}
