// Command tracegen runs a scenario and saves a probe's raw packet trace in
// the repository's trace format (JSON lines with a context header) — the
// simulation's counterpart of exporting a Wireshark capture for offline
// analysis. cmd/analyze consumes the output.
//
// Usage:
//
//	tracegen [-channel popular] [-scale 0.15] [-watch 10m] [-probe tele]
//	         [-seed 7] [-out trace.jsonl]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"pplivesim"
	"pplivesim/internal/isp"
	"pplivesim/internal/tracefile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func probeISP(name string) (pplive.ISP, error) {
	switch name {
	case "tele":
		return isp.TELE, nil
	case "cnc":
		return isp.CNC, nil
	case "cer":
		return isp.CER, nil
	case "other":
		return isp.OtherCN, nil
	case "mason", "foreign":
		return isp.Foreign, nil
	default:
		return 0, fmt.Errorf("unknown probe %q", name)
	}
}

func run() error {
	channel := flag.String("channel", "popular", "popular or unpopular")
	scale := flag.Float64("scale", 0.15, "population scale")
	watch := flag.Duration("watch", 10*time.Minute, "probe watch duration")
	probe := flag.String("probe", "tele", "probe ISP: tele, cnc, cer, other, mason")
	seed := flag.Int64("seed", 7, "random seed")
	out := flag.String("out", "-", "output file (default stdout)")
	flag.Parse()

	category, err := probeISP(*probe)
	if err != nil {
		return err
	}
	if *scale <= 0 {
		return fmt.Errorf("-scale %g: must be positive", *scale)
	}
	if *watch <= 0 {
		return fmt.Errorf("-watch %s: must be positive", *watch)
	}

	var sc pplive.Scenario
	switch *channel {
	case "popular":
		sc = pplive.PopularScenario(*seed, *scale)
	case "unpopular":
		sc = pplive.UnpopularScenario(*seed, *scale)
	default:
		return fmt.Errorf("unknown channel %q", *channel)
	}
	sc.Watch = *watch
	sc.WarmUp = 5 * time.Minute
	sc.ArrivalWindow = 3 * time.Minute
	// Tracefile export needs the raw datagram trace, so opt this probe into
	// full capture (the default telemetry is streaming-only).
	sc.Probes = []pplive.ProbeSpec{{Name: *probe, ISP: category, FullCapture: true}}

	res, err := pplive.RunScenario(sc)
	if err != nil {
		return err
	}

	hdr := tracefile.Header{
		Probe:    *probe,
		ProbeISP: category.String(),
		Source:   res.SourceAddr.String(),
		Channel:  uint32(sc.Spec.Channel),
	}
	// res.Trackers is a map; sort so the header (and thus the whole output
	// file) is byte-identical across runs of the same seed.
	for t := range res.Trackers {
		hdr.Trackers = append(hdr.Trackers, t.String())
	}
	sort.Strings(hdr.Trackers)

	sink := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = f
	}
	records := res.Probes[0].Recorder.Records()
	if err := tracefile.Write(sink, hdr, records); err != nil {
		return err
	}
	if sink != os.Stdout {
		if err := sink.Close(); err != nil {
			return fmt.Errorf("out %s: %w", *out, err)
		}
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d records\n", len(records))
	return nil
}
