// Command analyze runs the paper's full offline analysis pipeline over a
// saved probe trace (produced by cmd/tracegen): request/reply matching,
// IP→ASN resolution against the synthetic registry, and every figure
// statistic — the same workflow the authors applied to their Wireshark
// captures.
//
// Usage:
//
//	analyze trace.jsonl
//	tracegen -out - | analyze -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"pplivesim/internal/analysis"
	"pplivesim/internal/asnmap"
	"pplivesim/internal/capture"
	"pplivesim/internal/experiments"
	"pplivesim/internal/isp"
	"pplivesim/internal/tracefile"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run() error {
	jsonOut := flag.Bool("json", false, "emit the full report as JSON instead of text")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: analyze [-json] <trace.jsonl|->")
	}

	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	hdr, records, err := tracefile.Read(in)
	if err != nil {
		return err
	}
	source, trackers, err := hdr.ParseAddrs()
	if err != nil {
		return err
	}

	var probeCategory isp.ISP
	for _, c := range isp.All() {
		if c.String() == hdr.ProbeISP {
			probeCategory = c
		}
	}
	if !probeCategory.Valid() {
		return fmt.Errorf("header has unknown probe ISP %q", hdr.ProbeISP)
	}

	matched := capture.Match(records, trackers)
	rep := analysis.Analyze(analysis.Input{
		Records:  records,
		Matched:  matched,
		Resolver: asnmap.SyntheticInternet(),
		Trackers: trackers,
		Source:   source,
		ProbeISP: probeCategory,
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	title := fmt.Sprintf("offline analysis: probe %s (%s), %d captured datagrams",
		hdr.Probe, hdr.ProbeISP, len(records))
	fmt.Println(experiments.FigureABC(title, rep))
	fmt.Println(experiments.ResponseTimes("peer-list response times:", rep))
	fmt.Println(experiments.DataRTRow("data response times:", rep))
	fmt.Println(experiments.Contributions("contributions:", rep))
	fmt.Println(experiments.RTTCorrelation("rank vs RTT:", rep))
	return nil
}
