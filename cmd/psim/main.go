// Command psim runs a single P2P live-streaming scenario and prints the
// probe-side analysis: the locality panels, response-time groups,
// contribution fits, and rank–RTT correlation for each probe.
//
// Usage:
//
//	psim [-channel popular|unpopular] [-scale 0.25] [-watch 20m] [-shards N]
//	     [-probes tele,cnc,mason] [-seed 7] [-no-referral] [-no-latency-bias]
//	     [-no-preference]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pplivesim"
	"pplivesim/internal/experiments"
	"pplivesim/internal/isp"
	"pplivesim/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "psim:", err)
		os.Exit(1)
	}
}

func run() error {
	channel := flag.String("channel", "popular", "popular or unpopular")
	scale := flag.Float64("scale", 0.25, "population scale (1.0 = paper-size audience)")
	watch := flag.Duration("watch", 20*time.Minute, "probe watch duration")
	warmup := flag.Duration("warmup", 6*time.Minute, "swarm warm-up before probes join")
	probesFlag := flag.String("probes", "tele,mason", "comma-separated probe ISPs: tele, cnc, cer, other, mason")
	seed := flag.Int64("seed", 7, "random seed")
	noReferral := flag.Bool("no-referral", false, "ablate neighbor referral")
	noLatency := flag.Bool("no-latency-bias", false, "ablate latency-based selection")
	noPref := flag.Bool("no-preference", false, "ablate performance-weighted scheduling")
	shards := flag.Int("shards", simnet.DefaultShards, "event-loop workers (one per ISP domain by default); results are identical at any setting")
	flag.Parse()

	if *scale <= 0 {
		return fmt.Errorf("-scale %g: must be positive", *scale)
	}
	if *watch <= 0 {
		return fmt.Errorf("-watch %s: must be positive", *watch)
	}
	if *warmup <= 0 {
		return fmt.Errorf("-warmup %s: must be positive", *warmup)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d: must be >= 1", *shards)
	}

	var sc pplive.Scenario
	switch *channel {
	case "popular":
		sc = pplive.PopularScenario(*seed, *scale)
	case "unpopular":
		sc = pplive.UnpopularScenario(*seed, *scale)
	default:
		return fmt.Errorf("unknown channel %q", *channel)
	}
	sc.Watch = *watch
	sc.WarmUp = *warmup
	sc.ArrivalWindow = *warmup / 2
	sc.Shards = *shards
	sc.Behaviour = pplive.Behaviour{
		DisableReferral:    *noReferral,
		DisableLatencyBias: *noLatency,
		DisablePreference:  *noPref,
	}

	for _, name := range strings.Split(*probesFlag, ",") {
		name = strings.TrimSpace(name)
		var category pplive.ISP
		switch name {
		case "tele":
			category = isp.TELE
		case "cnc":
			category = isp.CNC
		case "cer":
			category = isp.CER
		case "other":
			category = isp.OtherCN
		case "mason", "foreign":
			category = isp.Foreign
		case "":
			continue
		default:
			return fmt.Errorf("unknown probe %q", name)
		}
		sc.Probes = append(sc.Probes, pplive.ProbeSpec{Name: name, ISP: category})
	}
	if len(sc.Probes) == 0 {
		return fmt.Errorf("no probes specified")
	}

	fmt.Printf("scenario %s: %d viewers, watch %s (total virtual %s), seed %d\n",
		sc.Name, sc.Viewers.Total(), sc.Watch, sc.WarmUp+sc.Watch, sc.Seed)
	start := time.Now()
	res, err := pplive.RunScenario(sc)
	if err != nil {
		return err
	}
	fmt.Printf("completed: %d engine events, %d viewers spawned, wall %s\n\n",
		res.EventsProcessed, res.PeersSpawned, time.Since(start).Round(time.Millisecond))

	for i, p := range res.Probes {
		rep, err := pplive.AnalyzeProbe(res, i)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("=== probe %s (%s) ===", p.Name, p.ISP)
		fmt.Println(experiments.FigureABC(title, rep))
		fmt.Println(experiments.ResponseTimes("peer-list response times:", rep))
		fmt.Println(experiments.DataRTRow("data response times:", rep))
		fmt.Println(experiments.Contributions("contributions:", rep))
		fmt.Println(experiments.RTTCorrelation("rank vs RTT:", rep))
	}
	return nil
}
