// Command psim runs a single P2P live-streaming scenario and prints the
// probe-side analysis: the locality panels, response-time groups,
// contribution fits, and rank–RTT correlation for each probe.
//
// Usage:
//
//	psim [-channel popular|unpopular|multi] [-scale 0.25] [-watch 20m] [-shards N]
//	     [-probes tele,cnc,mason] [-seed 7] [-no-referral] [-no-latency-bias]
//	     [-no-preference] [-switch-fraction 0.35] [-median-dwell 4m]
//	     [-fault source-crash|tracker-outage|link-degrade|partition|burst-loss|kill-churn|combo]
//	     [-fidelity mixed|full|flow] [-selection random|quota:F|ashop:B]
//
// With -fidelity flow the background population runs as struct-of-arrays
// flow swarms — millions of peers in bounded memory — while probes keep
// full protocol fidelity. -fidelity full forces every background viewer to
// a full Client.
//
// With -fault a canned chaos schedule is injected into the watch window and
// each probe's report gains per-fault-window resilience metrics (continuity
// dip, time to recover, traffic shift).
//
// With -channel multi the popular and unpopular channels run concurrently,
// a fraction of viewers browses between them (-switch-fraction, -median-dwell),
// and every requested probe is placed twice: once pinned to each channel.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pplivesim"
	"pplivesim/internal/experiments"
	"pplivesim/internal/isp"
	"pplivesim/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "psim:", err)
		os.Exit(1)
	}
}

func run() error {
	channel := flag.String("channel", "popular", "popular, unpopular, or multi (both concurrently)")
	scale := flag.Float64("scale", 0.25, "population scale (1.0 = paper-size audience)")
	watch := flag.Duration("watch", 20*time.Minute, "probe watch duration")
	warmup := flag.Duration("warmup", 6*time.Minute, "swarm warm-up before probes join")
	probesFlag := flag.String("probes", "tele,mason", "comma-separated probe ISPs: tele, cnc, cer, other, mason")
	seed := flag.Int64("seed", 7, "random seed")
	noReferral := flag.Bool("no-referral", false, "ablate neighbor referral")
	noLatency := flag.Bool("no-latency-bias", false, "ablate latency-based selection")
	noPref := flag.Bool("no-preference", false, "ablate performance-weighted scheduling")
	shards := flag.Int("shards", simnet.DefaultShards, "event-loop workers (one per ISP domain by default); results are identical at any setting")
	switchFrac := flag.Float64("switch-fraction", 0.35, "with -channel multi: share of viewers that browse channels")
	dwell := flag.Duration("median-dwell", 4*time.Minute, "with -channel multi: median dwell on a channel before switching")
	faultName := flag.String("fault", "", "inject a chaos preset: "+strings.Join(pplive.FaultPresetNames(), ", "))
	fidelityName := flag.String("fidelity", "mixed", "background population fidelity: "+strings.Join(pplive.FidelityNames(), ", "))
	selectionName := flag.String("selection", "random", "peer selection policy: "+strings.Join(pplive.SelectionNames(), ", "))
	flag.Parse()

	if *scale <= 0 {
		return fmt.Errorf("-scale %g: must be positive", *scale)
	}
	if *watch <= 0 {
		return fmt.Errorf("-watch %s: must be positive", *watch)
	}
	if *warmup <= 0 {
		return fmt.Errorf("-warmup %s: must be positive", *warmup)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d: must be >= 1", *shards)
	}

	var sc pplive.Scenario
	multi := false
	switch *channel {
	case "popular":
		sc = pplive.PopularScenario(*seed, *scale)
	case "unpopular":
		sc = pplive.UnpopularScenario(*seed, *scale)
	case "multi":
		multi = true
		sc = pplive.MultiChannelScenario(*seed, *scale, *scale)
		sc.Switching.SwitcherFraction = *switchFrac
		sc.Switching.MedianDwell = *dwell
	default:
		return fmt.Errorf("unknown channel %q", *channel)
	}
	sc.Watch = *watch
	sc.WarmUp = *warmup
	sc.ArrivalWindow = *warmup / 2
	sc.Shards = *shards
	sc.Behaviour = pplive.Behaviour{
		DisableReferral:    *noReferral,
		DisableLatencyBias: *noLatency,
		DisablePreference:  *noPref,
	}
	fidelity, err := pplive.ParseFidelity(*fidelityName)
	if err != nil {
		return err
	}
	sc.Fidelity = fidelity
	selSpec, err := pplive.ParseSelection(*selectionName)
	if err != nil {
		return err
	}
	sc.Selection = selSpec

	for _, name := range strings.Split(*probesFlag, ",") {
		name = strings.TrimSpace(name)
		var category pplive.ISP
		switch name {
		case "tele":
			category = isp.TELE
		case "cnc":
			category = isp.CNC
		case "cer":
			category = isp.CER
		case "other":
			category = isp.OtherCN
		case "mason", "foreign":
			category = isp.Foreign
		case "":
			continue
		default:
			return fmt.Errorf("unknown probe %q", name)
		}
		if multi {
			// One instance of each probe per channel, pinned there for the run.
			for _, ch := range sc.Channels {
				sc.Probes = append(sc.Probes, pplive.ProbeSpec{
					Name:    fmt.Sprintf("%s-%s", name, ch.Spec.Name),
					ISP:     category,
					Channel: ch.Spec.Channel,
				})
			}
		} else {
			sc.Probes = append(sc.Probes, pplive.ProbeSpec{Name: name, ISP: category})
		}
	}
	if len(sc.Probes) == 0 {
		return fmt.Errorf("no probes specified")
	}
	if *faultName != "" {
		fs, err := pplive.FaultPreset(*faultName, sc.WarmUp, sc.Watch)
		if err != nil {
			return err
		}
		sc.Faults = fs
	}

	viewers := 0
	if multi {
		for _, ch := range sc.Channels {
			viewers += ch.Viewers.Total()
		}
	} else {
		viewers = sc.Viewers.Total()
	}
	fmt.Printf("scenario %s: %d viewers, watch %s (total virtual %s), seed %d\n",
		sc.Name, viewers, sc.Watch, sc.WarmUp+sc.Watch, sc.Seed)
	start := time.Now()
	res, err := pplive.RunScenario(sc)
	if err != nil {
		return err
	}
	fmt.Printf("completed: %d engine events, %d viewers spawned, wall %s\n\n",
		res.EventsProcessed, res.PeersSpawned, time.Since(start).Round(time.Millisecond))
	if multi {
		fmt.Printf("channel switching: %d viewers switched at least once, %d switch events\n",
			res.Switchers, res.Switches)
		for _, ch := range res.Channels {
			fmt.Printf("  channel %d (%s): %d initial viewers, source %v\n",
				ch.Spec.Channel, ch.Spec.Name, ch.Viewers.Total(), ch.Source)
		}
		fmt.Println()
	}

	for i, p := range res.Probes {
		rep, err := pplive.AnalyzeProbe(res, i)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("=== probe %s (%s) ===", p.Name, p.ISP)
		fmt.Println(experiments.FigureABC(title, rep))
		fmt.Println(experiments.ResponseTimes("peer-list response times:", rep))
		fmt.Println(experiments.DataRTRow("data response times:", rep))
		fmt.Println(experiments.Contributions("contributions:", rep))
		fmt.Println(experiments.RTTCorrelation("rank vs RTT:", rep))
		if sc.Faults != nil {
			summary, err := experiments.ResilienceSummary("resilience:", res, p.Name)
			if err != nil {
				return err
			}
			fmt.Println(summary)
		}
	}
	return nil
}
