// Package pplive is a from-scratch reproduction of the system studied in
// "A Case Study of Traffic Locality in Internet P2P Live Streaming Systems"
// (ICDCS 2009): a PPLive-style P2P live-streaming network — bootstrap and
// tracker servers, stream sources, and clients with decentralized,
// latency-based, neighbor-referral peer selection — running over a
// discrete-event underlay simulator with ISP-level latency regimes, plus
// the measurement and analysis apparatus the paper used (probe-side packet
// capture, trace matching, IP→ASN resolution, locality and rank-distribution
// statistics).
//
// The top-level API runs scenarios and analyzes probe traces:
//
//	sc := pplive.PopularScenario(42, 1.0)
//	sc.Probes = []pplive.ProbeSpec{{Name: "tele", ISP: pplive.TELE}}
//	res, err := pplive.RunScenario(sc)
//	rep := pplive.AnalyzeProbe(res, 0)
//	fmt.Printf("traffic locality: %.2f\n", rep.TrafficLocality)
//
// Experiment presets mirroring every figure and table of the paper live in
// the Experiments registry; `cmd/experiments` regenerates them all.
package pplive

import (
	"time"

	"pplivesim/internal/analysis"
	"pplivesim/internal/core"
	"pplivesim/internal/fault"
	"pplivesim/internal/isp"
	"pplivesim/internal/peer"
	"pplivesim/internal/selection"
	"pplivesim/internal/workload"
)

// Re-exported orchestration types. These alias the implementation types so
// the whole public surface lives in this package.
type (
	// Scenario fully describes one simulation run.
	Scenario = core.Scenario
	// ProbeSpec places one instrumented measurement client.
	ProbeSpec = core.ProbeSpec
	// Behaviour toggles mechanism ablations.
	Behaviour = core.Behaviour
	// Result is a completed run: probe traces plus resolution context.
	Result = core.Result
	// ProbeResult is one probe's captured trace.
	ProbeResult = core.ProbeResult
	// ChannelSpec is one channel of a multi-channel scenario: its stream
	// spec plus its initial audience.
	ChannelSpec = core.ChannelSpec
	// ChannelResult summarises one channel of a completed run.
	ChannelResult = core.ChannelResult
	// Population is the per-ISP concurrent viewer count.
	Population = workload.Population
	// Churn configures the background-viewer session process.
	Churn = workload.Churn
	// Switching configures the channel-browsing process of multi-channel
	// scenarios.
	Switching = workload.Switching
	// Report is a full per-probe analysis covering every figure panel.
	Report = analysis.Report
	// ISP identifies one of the paper's ISP categories.
	ISP = isp.ISP
	// FaultSchedule declares deterministic fault injections for a scenario
	// (Scenario.Faults); nil leaves the run bit-identical to a benign one.
	FaultSchedule = fault.Schedule
	// SourceCrash silences one channel's origin for a window.
	SourceCrash = fault.SourceCrash
	// TrackerOutage downs a tracker group (or all) for a window.
	TrackerOutage = fault.TrackerOutage
	// LinkFault degrades or partitions one ISP-pair transit path.
	LinkFault = fault.LinkFault
	// BurstLoss adds network-wide loss for a window.
	BurstLoss = fault.BurstLoss
	// PeerKill abruptly crashes a fraction of viewers at an instant.
	PeerKill = fault.PeerKill
	// ResilienceReport holds per-fault-window dip/recovery/traffic-shift
	// metrics (Result.ProbeResilience).
	ResilienceReport = analysis.ResilienceReport
	// Fidelity selects how the background population is simulated
	// (Scenario.Fidelity): mixed (default), full, or flow — the
	// struct-of-arrays million-peer mode.
	Fidelity = peer.Fidelity
	// FlowTraffic is one (channel, category) flow-level traffic account
	// (Result.FlowTraffic).
	FlowTraffic = core.FlowTraffic
	// SelectionSpec selects and parameterizes the peer-selection policy
	// (Scenario.Selection): the zero value is the legacy uniform random
	// sample; quota and AS-hop policies bias replies toward the
	// requester's ISP.
	SelectionSpec = selection.Spec
)

// The background-population fidelity levels (Scenario.Fidelity).
const (
	FidelityMixed = peer.FidelityMixed
	FidelityFull  = peer.FidelityFull
	FidelityFlow  = peer.FidelityFlow
)

// FidelityNames lists the fidelity flag spellings accepted by ParseFidelity.
func FidelityNames() []string { return peer.FidelityNames() }

// ParseFidelity resolves a flag value ("mixed", "full", "flow") to a
// fidelity level.
func ParseFidelity(s string) (Fidelity, error) { return peer.ParseFidelity(s) }

// SelectionNames lists the selection-policy flag spellings accepted by
// ParseSelection.
func SelectionNames() []string { return selection.Names() }

// ParseSelection resolves a flag value ("random", "quota:0.2", "ashop:2")
// to a selection spec for Scenario.Selection.
func ParseSelection(s string) (SelectionSpec, error) { return selection.ParseSpec(s) }

// The ISP categories used throughout the paper.
const (
	TELE    = isp.TELE
	CNC     = isp.CNC
	CER     = isp.CER
	OtherCN = isp.OtherCN
	Foreign = isp.Foreign
)

// RunScenario builds and runs a scenario.
func RunScenario(sc Scenario) (*Result, error) { return core.RunScenario(sc) }

// FaultPresetNames lists the canned chaos schedules accepted by FaultPreset.
func FaultPresetNames() []string { return fault.PresetNames() }

// FaultPreset builds a canned chaos schedule scaled to a scenario's warm-up
// and watch window, for Scenario.Faults.
func FaultPreset(name string, warmUp, watch time.Duration) (*FaultSchedule, error) {
	return fault.Preset(name, warmUp, watch)
}

// PopularScenario returns the paper's popular-channel setting at the given
// population scale (1.0 ≈ 1300 concurrent viewers), with default two-hour
// probe timing. Callers add probes.
func PopularScenario(seed int64, scale float64) Scenario {
	return Scenario{
		Name:    "popular",
		Seed:    seed,
		Spec:    workload.PopularSpec(),
		Viewers: workload.PopularPopulation().Scale(scale),
		Churn:   workload.DefaultChurn(),
	}
}

// UnpopularScenario returns the paper's unpopular-channel setting at the
// given population scale (1.0 ≈ 200 concurrent viewers).
func UnpopularScenario(seed int64, scale float64) Scenario {
	return Scenario{
		Name:    "unpopular",
		Seed:    seed,
		Spec:    workload.UnpopularSpec(),
		Viewers: workload.UnpopularPopulation().Scale(scale),
		Churn:   workload.DefaultChurn(),
	}
}

// MultiChannelScenario returns the paper's two channels running concurrently
// — the popular and unpopular settings at the given population scales — with
// channel-browsing viewers (DefaultSwitching). Callers add probes, pinning
// each to a channel via ProbeSpec.Channel.
func MultiChannelScenario(seed int64, popularScale, unpopularScale float64) Scenario {
	return Scenario{
		Name: "multichannel",
		Seed: seed,
		Channels: []ChannelSpec{
			{Spec: workload.PopularSpec(), Viewers: workload.PopularPopulation().Scale(popularScale)},
			{Spec: workload.UnpopularSpec(), Viewers: workload.UnpopularPopulation().Scale(unpopularScale)},
		},
		Switching: workload.DefaultSwitching(),
		Churn:     workload.DefaultChurn(),
	}
}

// AnalyzeProbe returns the paper's full analysis for one probe of a
// completed run: trace matching (request/reply pairing), IP→ASN resolution,
// and every figure statistic. The source excluded from peer statistics is the
// probe's own channel's source. The underlying pipeline is streaming — the
// matching rules were applied online during the run — so this finalizes
// bounded aggregates rather than replaying a trace; the result is identical
// to post-hoc analysis of a full capture.
func AnalyzeProbe(res *Result, probe int) (*Report, error) {
	return res.ProbeReport(probe)
}
