package pplive_test

import (
	"testing"
	"time"

	"pplivesim"
)

func TestScenarioPresets(t *testing.T) {
	pop := pplive.PopularScenario(1, 1.0)
	unpop := pplive.UnpopularScenario(1, 1.0)
	if pop.Viewers.Total() <= unpop.Viewers.Total() {
		t.Errorf("popular audience %d not above unpopular %d",
			pop.Viewers.Total(), unpop.Viewers.Total())
	}
	if pop.Spec.Channel == unpop.Spec.Channel {
		t.Error("presets share a channel id")
	}
	half := pplive.PopularScenario(1, 0.5)
	if half.Viewers.Total() >= pop.Viewers.Total() {
		t.Error("scale did not reduce the audience")
	}
}

func TestRunAndAnalyze(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	sc := pplive.PopularScenario(3, 0.08)
	sc.Watch = 6 * time.Minute
	sc.WarmUp = 3 * time.Minute
	sc.ArrivalWindow = 2 * time.Minute
	sc.Probes = []pplive.ProbeSpec{{Name: "tele", ISP: pplive.TELE}}

	res, err := pplive.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pplive.AnalyzeProbe(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProbeISP != pplive.TELE {
		t.Errorf("report probe ISP = %v", rep.ProbeISP)
	}
	if rep.TrafficLocality <= 0 || rep.TrafficLocality > 1 {
		t.Errorf("traffic locality %f out of range", rep.TrafficLocality)
	}
	if len(rep.Peers) == 0 {
		t.Error("no peer activity recorded")
	}
	if _, err := pplive.AnalyzeProbe(res, 5); err == nil {
		t.Error("out-of-range probe index accepted")
	}
}
