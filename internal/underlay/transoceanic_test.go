package underlay

import (
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/eventsim"
	"pplivesim/internal/isp"
)

// TestTransoceanicBandwidthPenalty verifies the thin-pipe model: large
// cross-border datagrams arrive disproportionately later than domestic ones
// of the same size, while small control datagrams are barely affected.
func TestTransoceanicBandwidthPenalty(t *testing.T) {
	eng := eventsim.New(1)
	cfg := DefaultConfig()
	cfg.LossIntra, cfg.LossInterDomestic, cfg.LossTransoceanic = 0, 0, 0
	cfg.JitterFrac = 0
	cfg.TransoceanicBps = 40 << 10
	net := New(eng, cfg)

	tele := &Host{Addr: netip.MustParseAddr("58.32.0.1"), ISP: isp.TELE, UploadBps: 1 << 30}
	tele2 := &Host{Addr: netip.MustParseAddr("58.32.0.2"), ISP: isp.TELE, UploadBps: 1 << 30}
	foreign := &Host{Addr: netip.MustParseAddr("129.174.0.1"), ISP: isp.Foreign, UploadBps: 1 << 30}

	var teleAt, foreignAt time.Duration
	if err := net.Attach(tele, nil); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(tele2, func(netip.Addr, int, any) { teleAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(foreign, func(netip.Addr, int, any) { foreignAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}

	const payload = 11040 // an 8-piece batch
	net.Send(tele, tele2.Addr, payload, nil)
	net.Send(tele, foreign.Addr, payload, nil)
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}

	domesticOWD := net.PairOWD(tele, tele2)
	oceanOWD := net.PairOWD(tele, foreign)
	wantPenalty := time.Duration(float64(payload) / float64(cfg.TransoceanicBps) * float64(time.Second))

	if got := teleAt - domesticOWD; got > time.Millisecond {
		t.Errorf("domestic datagram delayed %v beyond propagation", got)
	}
	gotPenalty := foreignAt - oceanOWD
	if gotPenalty < wantPenalty-time.Millisecond || gotPenalty > wantPenalty+time.Millisecond {
		t.Errorf("transoceanic penalty = %v, want ≈%v", gotPenalty, wantPenalty)
	}
}

// TestTransoceanicPenaltyDisabled verifies zero disables the model.
func TestTransoceanicPenaltyDisabled(t *testing.T) {
	eng := eventsim.New(1)
	cfg := DefaultConfig()
	cfg.LossTransoceanic = 0
	cfg.JitterFrac = 0
	cfg.TransoceanicBps = 0
	net := New(eng, cfg)
	tele := &Host{Addr: netip.MustParseAddr("58.32.0.1"), ISP: isp.TELE, UploadBps: 1 << 30}
	foreign := &Host{Addr: netip.MustParseAddr("129.174.0.1"), ISP: isp.Foreign, UploadBps: 1 << 30}
	var at time.Duration
	if err := net.Attach(tele, nil); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(foreign, func(netip.Addr, int, any) { at = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	net.Send(tele, foreign.Addr, 11040, nil)
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := at - net.PairOWD(tele, foreign); got > time.Millisecond {
		t.Errorf("penalty applied despite being disabled: %v", got)
	}
}
