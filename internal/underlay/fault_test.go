package underlay

import (
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/eventsim"
	"pplivesim/internal/isp"
)

func TestLinkFaultPartitionDropsBothDirections(t *testing.T) {
	eng, net := newTestNet(t)
	tele := mkHost("58.32.0.1", isp.TELE)
	cnc := mkHost("60.0.0.1", isp.CNC)
	teleGot, cncGot := 0, 0
	if err := net.Attach(tele, func(netip.Addr, int, any) { teleGot++ }); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(cnc, func(netip.Addr, int, any) { cncGot++ }); err != nil {
		t.Fatal(err)
	}
	net.ApplyLinkFault(isp.TELE, isp.CNC, 0, 0, true)
	net.Send(tele, cnc.Addr, 100, nil)
	net.Send(cnc, tele.Addr, 100, nil)
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if teleGot != 0 || cncGot != 0 {
		t.Errorf("partitioned pair delivered tele=%d cnc=%d, want 0/0", teleGot, cncGot)
	}
	if net.FaultDrops() != 2 {
		t.Errorf("FaultDrops = %d, want 2", net.FaultDrops())
	}
	// Clearing the fault restores delivery and the idle (nil-table) path.
	net.ClearLinkFault(isp.TELE, isp.CNC, 0, 0, true)
	if net.flt != nil {
		t.Error("fault table not freed after last clear")
	}
	net.Send(tele, cnc.Addr, 100, nil)
	if err := eng.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if cncGot != 1 {
		t.Errorf("post-recovery delivery = %d, want 1", cncGot)
	}
}

func TestLinkFaultPartitionLeavesOtherPairsAlone(t *testing.T) {
	eng, net := newTestNet(t)
	tele := mkHost("58.32.0.1", isp.TELE)
	cer := mkHost("59.64.0.1", isp.CER)
	got := 0
	if err := net.Attach(tele, nil); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(cer, func(netip.Addr, int, any) { got++ }); err != nil {
		t.Fatal(err)
	}
	net.ApplyLinkFault(isp.TELE, isp.CNC, 0, 0, true)
	net.Send(tele, cer.Addr, 100, nil)
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("TELE→CER delivery under TELE↔CNC partition = %d, want 1", got)
	}
}

func TestLinkFaultAddDelayShiftsArrival(t *testing.T) {
	arrivalWith := func(extra time.Duration) time.Duration {
		eng, net := newTestNet(t)
		a := mkHost("58.32.0.1", isp.TELE)
		b := mkHost("58.32.0.2", isp.TELE)
		var at time.Duration
		if err := net.Attach(a, nil); err != nil {
			t.Fatal(err)
		}
		if err := net.Attach(b, func(netip.Addr, int, any) { at = eng.Now() }); err != nil {
			t.Fatal(err)
		}
		if extra > 0 {
			net.ApplyLinkFault(isp.TELE, isp.TELE, 0, extra, false)
		}
		net.Send(a, b.Addr, 100, nil)
		if err := eng.Run(time.Minute); err != nil {
			t.Fatal(err)
		}
		return at
	}
	base := arrivalWith(0)
	slow := arrivalWith(50 * time.Millisecond)
	if slow-base != 50*time.Millisecond {
		t.Errorf("AddDelay shifted arrival by %v, want 50ms", slow-base)
	}
}

func TestLinkFaultAddLossStatistical(t *testing.T) {
	eng := eventsim.New(9)
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	cfg.LossIntra = 0
	net := New(eng, cfg)
	a := mkHost("58.32.0.1", isp.TELE)
	a.UploadBps = 1 << 30
	b := mkHost("58.32.0.2", isp.TELE)
	got := 0
	if err := net.Attach(a, nil); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(b, func(netip.Addr, int, any) { got++ }); err != nil {
		t.Fatal(err)
	}
	net.ApplyLinkFault(isp.TELE, isp.TELE, 0.5, 0, false)
	const n = 2000
	for i := 0; i < n; i++ {
		net.Send(a, b.Addr, 10, nil)
	}
	if err := eng.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if got < n*35/100 || got > n*65/100 {
		t.Errorf("delivered %d of %d with 50%% added loss, outside [35%%,65%%]", got, n)
	}
}

func TestBurstLossAppliesEverywhere(t *testing.T) {
	eng := eventsim.New(11)
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	cfg.LossIntra, cfg.LossInterDomestic, cfg.LossTransoceanic = 0, 0, 0
	net := New(eng, cfg)
	a := mkHost("58.32.0.1", isp.TELE)
	a.UploadBps = 1 << 30
	b := mkHost("60.0.0.1", isp.CNC)
	got := 0
	if err := net.Attach(a, nil); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(b, func(netip.Addr, int, any) { got++ }); err != nil {
		t.Fatal(err)
	}
	net.AddBurstLoss(1.0) // everything drops
	const n = 50
	for i := 0; i < n; i++ {
		net.Send(a, b.Addr, 10, nil)
	}
	if err := eng.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("delivered %d under 100%% burst loss, want 0", got)
	}
	net.RemoveBurstLoss(1.0)
	if net.flt != nil {
		t.Error("fault table not freed after burst loss cleared")
	}
}

func TestOverlappingFaultsCompose(t *testing.T) {
	_, net := newTestNet(t)
	net.ApplyLinkFault(isp.TELE, isp.CNC, 0.1, 10*time.Millisecond, false)
	net.ApplyLinkFault(isp.TELE, isp.CNC, 0, 0, true)
	k := fkey(isp.TELE, isp.CNC)
	if net.flt.addLoss[k] != 0.1 || net.flt.partition[k] != 1 {
		t.Fatalf("composed fault state wrong: loss=%v partition=%d", net.flt.addLoss[k], net.flt.partition[k])
	}
	// Clearing the partition leaves the degradation in force.
	net.ClearLinkFault(isp.TELE, isp.CNC, 0, 0, true)
	if net.flt == nil || net.flt.partition[k] != 0 || net.flt.addLoss[k] != 0.1 {
		t.Fatal("clearing one overlapping fault disturbed the other")
	}
	net.ClearLinkFault(isp.TELE, isp.CNC, 0.1, 10*time.Millisecond, false)
	if net.flt != nil {
		t.Error("fault table not freed after all faults cleared")
	}
}

func TestFaultFreeTrajectoryUnchangedByHooks(t *testing.T) {
	// The arrival sequence of a fault-free run must be bit-identical whether
	// or not the binary carries the injection hooks exercised elsewhere; a
	// run that installs and fully clears a fault before sending anything uses
	// the same RNG stream as one that never touched the fault API.
	run := func(touchFaults bool) []time.Duration {
		eng := eventsim.New(77)
		cfg := DefaultConfig()
		net := New(eng, cfg)
		if touchFaults {
			net.ApplyLinkFault(isp.TELE, isp.CNC, 0.3, time.Second, true)
			net.ClearLinkFault(isp.TELE, isp.CNC, 0.3, time.Second, true)
		}
		a := mkHost("58.32.0.1", isp.TELE)
		a.UploadBps = 1 << 30
		b := mkHost("60.0.0.1", isp.CNC)
		var arrivals []time.Duration
		if err := net.Attach(a, nil); err != nil {
			t.Fatal(err)
		}
		if err := net.Attach(b, func(netip.Addr, int, any) { arrivals = append(arrivals, eng.Now()) }); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			net.Send(a, b.Addr, 10, nil)
		}
		if err := eng.Run(time.Hour); err != nil {
			t.Fatal(err)
		}
		return arrivals
	}
	clean, touched := run(false), run(true)
	if len(clean) != len(touched) {
		t.Fatalf("delivered %d vs %d datagrams", len(clean), len(touched))
	}
	for i := range clean {
		if clean[i] != touched[i] {
			t.Fatalf("arrival %d diverged: %v vs %v", i, clean[i], touched[i])
		}
	}
}

// benchNet builds a two-host network with loss and jitter disabled so the
// benchmark measures the send path itself, not the delivery schedule.
func benchNet(b *testing.B) (*eventsim.Engine, *Network, *Host, netip.Addr) {
	b.Helper()
	eng := eventsim.New(1)
	cfg := DefaultConfig()
	cfg.LossIntra, cfg.LossInterDomestic, cfg.LossTransoceanic = 0, 0, 0
	cfg.MaxQueueDelay = time.Duration(1) << 60 // never tail-drop
	net := New(eng, cfg)
	src := mkHost("58.32.0.1", isp.TELE)
	src.UploadBps = 1 << 40
	dst := mkHost("58.32.0.2", isp.TELE)
	if err := net.Attach(src, nil); err != nil {
		b.Fatal(err)
	}
	if err := net.Attach(dst, nil); err != nil {
		b.Fatal(err)
	}
	return eng, net, src, dst.Addr
}

// BenchmarkFaultIdleSend is the no-schedule send path: the fault hook must
// cost one nil pointer test (bench-compare gates this against the committed
// baseline).
func BenchmarkFaultIdleSend(b *testing.B) {
	eng, net, src, to := benchNet(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Send(src, to, 1400, nil)
		if i%1024 == 1023 {
			if err := eng.Run(eng.Now() + time.Hour); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFaultActiveSend is the same path with a live degradation fault,
// for comparison against the idle cost.
func BenchmarkFaultActiveSend(b *testing.B) {
	eng, net, src, to := benchNet(b)
	net.ApplyLinkFault(isp.TELE, isp.TELE, 0.01, 5*time.Millisecond, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Send(src, to, 1400, nil)
		if i%1024 == 1023 {
			if err := eng.Run(eng.Now() + time.Hour); err != nil {
				b.Fatal(err)
			}
		}
	}
}
