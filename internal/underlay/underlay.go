// Package underlay models the physical network beneath the P2P overlay.
//
// It provides datagram delivery between hosts with three latency regimes
// (intra-ISP, inter-ISP domestic, transoceanic), a stable per-host-pair
// distance offset, per-packet jitter, probabilistic loss, and a serialized
// uplink queue per host so that loaded peers exhibit the growing
// application-layer queuing delay the paper observes during popular
// broadcasts (§3.3). All behaviour is driven by the eventsim engine, so
// deliveries are deterministic for a given seed.
package underlay

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"time"

	"pplivesim/internal/eventsim"
	"pplivesim/internal/isp"
)

// Handler receives a delivered datagram. Payloads are passed by reference;
// size is the on-the-wire size used for bandwidth accounting.
type Handler func(from netip.Addr, size int, payload any)

// Host is an attached endpoint.
type Host struct {
	Addr netip.Addr
	ISP  isp.ISP

	// UploadBps is the access uplink capacity in bytes per second. Every
	// outgoing datagram serializes through this uplink.
	UploadBps float64
	// ProcDelay is a fixed per-datagram application processing delay added
	// at the receiver before the handler runs.
	ProcDelay time.Duration

	handler     Handler
	detached    bool // set by Detach; in-flight datagrams check it on arrival
	upBusyUntil time.Duration
	queuedBytes int64 // bytes accepted but not yet on the wire

	// Stats.
	sentDatagrams, recvDatagrams uint64
	sentBytes, recvBytes         uint64
}

// QueueDelay returns the current uplink backlog expressed as time: how long a
// zero-size datagram enqueued now would wait before transmission starts.
func (h *Host) QueueDelay(now time.Duration) time.Duration {
	if h.upBusyUntil <= now {
		return 0
	}
	return h.upBusyUntil - now
}

// Stats reports cumulative datagram/byte counters for the host.
func (h *Host) Stats() (sentDatagrams, sentBytes, recvDatagrams, recvBytes uint64) {
	return h.sentDatagrams, h.sentBytes, h.recvDatagrams, h.recvBytes
}

// Config tunes the latency, loss, and queuing model. Durations are one-way
// propagation delays.
type Config struct {
	// IntraOWD is the base one-way delay between two hosts of the same ISP.
	IntraOWD map[isp.ISP]time.Duration
	// InterDomesticOWD is the base one-way delay between two distinct
	// domestic (Chinese) ISPs; PoorPeering pairs get an extra penalty.
	InterDomesticOWD time.Duration
	// TransoceanicOWD is the base one-way delay between a domestic ISP and
	// Foreign.
	TransoceanicOWD time.Duration
	// TeleCncPenalty is added on the TELE↔CNC path, whose interconnection
	// was famously congested in 2008-era China.
	TeleCncPenalty time.Duration

	// PairSpread scales a deterministic per-host-pair multiplier drawn from
	// [1-PairSpread, 1+PairSpread] applied to the base OWD, modeling
	// geographic distance within a regime.
	PairSpread float64
	// JitterFrac is the mean of an exponential per-packet jitter expressed
	// as a fraction of the base OWD.
	JitterFrac float64

	// Loss probabilities per datagram.
	LossIntra         float64
	LossInterDomestic float64
	LossTransoceanic  float64

	// MaxQueueDelay bounds a host's uplink backlog; datagrams that would
	// push the backlog past the bound are dropped at the sender (tail drop),
	// as a saturated residential uplink would.
	MaxQueueDelay time.Duration

	// TransoceanicBps models 2008-era international links: per-flow
	// throughput across the China↔abroad boundary was severely limited
	// (long RTTs, loss, congested trunks), so cross-border datagrams incur
	// an extra serialization delay of size/TransoceanicBps on top of
	// propagation. Zero disables the penalty.
	TransoceanicBps float64
}

// DefaultConfig returns the model parameters used by all paper experiments.
// The absolute values are calibrated so that same-ISP RTTs sit well below
// cross-ISP RTTs and China↔US paths land in the hundreds of milliseconds,
// matching the regimes the paper's response-time analysis depends on.
func DefaultConfig() Config {
	return Config{
		IntraOWD: map[isp.ISP]time.Duration{
			isp.TELE:    12 * time.Millisecond,
			isp.CNC:     12 * time.Millisecond,
			isp.CER:     8 * time.Millisecond,
			isp.OtherCN: 15 * time.Millisecond,
			isp.Foreign: 35 * time.Millisecond,
		},
		InterDomesticOWD:  28 * time.Millisecond,
		TransoceanicOWD:   110 * time.Millisecond,
		TeleCncPenalty:    18 * time.Millisecond,
		PairSpread:        0.45,
		JitterFrac:        0.15,
		LossIntra:         0.004,
		LossInterDomestic: 0.01,
		LossTransoceanic:  0.03,
		MaxQueueDelay:     8 * time.Second,
		TransoceanicBps:   40 << 10,
	}
}

// baseOWD returns the regime base one-way delay for an ISP pair.
func (c *Config) baseOWD(a, b isp.ISP) time.Duration {
	if a == b {
		if d, ok := c.IntraOWD[a]; ok {
			return d
		}
		return 20 * time.Millisecond
	}
	if a.Domestic() && b.Domestic() {
		d := c.InterDomesticOWD
		if (a == isp.TELE && b == isp.CNC) || (a == isp.CNC && b == isp.TELE) {
			d += c.TeleCncPenalty
		}
		return d
	}
	return c.TransoceanicOWD
}

// lossProb returns the per-datagram loss probability for an ISP pair.
func (c *Config) lossProb(a, b isp.ISP) float64 {
	if a == b {
		return c.LossIntra
	}
	if a.Domestic() && b.Domestic() {
		return c.LossInterDomestic
	}
	return c.LossTransoceanic
}

// MinPairOWD returns the smallest one-way delay any host pair across the two
// ISP categories can see: the regime base scaled by the bottom of the
// per-pair spread. It uses the identical float expression as the per-pair
// multiplier (mult = 1 + spread·(2u−1) at u = 0), so it is an exact lower
// bound on PairOWD, never off by a rounding ulp. Sharded worlds derive their
// conservative lookahead from the minimum of this over cross-shard pairs.
func (c *Config) MinPairOWD(a, b isp.ISP) time.Duration {
	base := c.baseOWD(a, b)
	mult := 1 + c.PairSpread*(2*0-1)
	return time.Duration(float64(base) * mult)
}

// Remote describes where a non-local address lives: which shard (domain) of
// a partitioned world, and its ISP category for latency/loss classification.
type Remote struct {
	Domain int
	ISP    isp.ISP
}

// Router gives a Network a view of the other shards of a partitioned world.
// Resolve must be a pure function of the address (it is consulted from send
// events running concurrently on different shards), and Forward is called
// from the sending shard's event loop with a fully computed arrival time;
// the implementation buffers the datagram until the next synchronization
// barrier and injects it into the destination shard there.
type Router interface {
	Resolve(to netip.Addr) (Remote, bool)
	Forward(srcDomain, dstDomain int, arrival time.Duration, from, to netip.Addr, size int, payload any)
}

// Network delivers datagrams between attached hosts.
type Network struct {
	eng *eventsim.Engine
	cfg Config

	// router resolves and forwards traffic to hosts on other shards of a
	// domain-partitioned world; nil for a single-shard world.
	router   Router
	domainID int
	// remoteFloor, when non-nil, returns the minimum wire latency (arrival
	// minus departure) for datagrams forwarded to the given destination
	// domain. Scaled partitions use it to widen the synthetic delay between
	// sub-shards of the same ISP and to/from infrastructure-only domains, so
	// the conservative PDES lookahead — which must lower-bound every
	// cross-domain latency — can rise above the natural pair-OWD minimum.
	// nil (the default) leaves arrivals untouched.
	remoteFloor func(dstDomain int) time.Duration
	// hosts is keyed by the packed IPv4 address (hostKey): the lookup sits
	// on every datagram send, and hashing a uint32 is several times cheaper
	// than the netip.Addr struct.
	hosts map[uint32]*Host
	rng   *rand.Rand

	// freeDeliveries recycles in-flight datagram records; with a
	// single-threaded engine a plain slice beats sync.Pool.
	freeDeliveries []*delivery

	// flt holds active fault-injection perturbations; nil whenever no fault
	// is in force, so the fault-free send path pays one pointer test and
	// nothing else (BenchmarkFaultIdleSend pins this).
	flt *linkFaults

	// Stats.
	delivered, droppedLoss, droppedQueue, droppedNoHost uint64
	droppedFault                                        uint64
}

// linkFaults is the active perturbation table. Entries accumulate, so
// overlapping fault windows compose: Apply adds, Clear subtracts, and the
// table frees itself when the last fault clears.
type linkFaults struct {
	addLoss   [(isp.Count + 1) * (isp.Count + 1)]float64
	addDelay  [(isp.Count + 1) * (isp.Count + 1)]time.Duration
	partition [(isp.Count + 1) * (isp.Count + 1)]int16
	burstLoss float64
	active    int
}

// fkey indexes the perturbation tables by directed ISP pair.
func fkey(a, b isp.ISP) int { return int(a)*(isp.Count+1) + int(b) }

func (n *Network) ensureFaults() *linkFaults {
	if n.flt == nil {
		n.flt = &linkFaults{}
	}
	return n.flt
}

func (n *Network) releaseFault() {
	n.flt.active--
	if n.flt.active == 0 {
		n.flt = nil // restore the zero-cost idle path after the last recovery
	}
}

// ApplyLinkFault perturbs the path between two ISP categories, symmetrically:
// addLoss is added to the base loss probability, addDelay to every surviving
// datagram's one-way delay, and partition drops everything on the pair. Call
// ClearLinkFault with the identical arguments at recovery time.
func (n *Network) ApplyLinkFault(a, b isp.ISP, addLoss float64, addDelay time.Duration, partition bool) {
	f := n.ensureFaults()
	f.active++
	keys := [2]int{fkey(a, b), fkey(b, a)}
	for i, k := range keys {
		if i == 1 && keys[0] == keys[1] {
			break // a == b: perturb the intra-ISP path once, not twice
		}
		f.addLoss[k] += addLoss
		f.addDelay[k] += addDelay
		if partition {
			f.partition[k]++
		}
	}
}

// ClearLinkFault removes a perturbation previously installed with the same
// arguments.
func (n *Network) ClearLinkFault(a, b isp.ISP, addLoss float64, addDelay time.Duration, partition bool) {
	f := n.flt
	if f == nil {
		return
	}
	keys := [2]int{fkey(a, b), fkey(b, a)}
	for i, k := range keys {
		if i == 1 && keys[0] == keys[1] {
			break
		}
		f.addLoss[k] -= addLoss
		f.addDelay[k] -= addDelay
		if partition {
			f.partition[k]--
		}
	}
	n.releaseFault()
}

// AddBurstLoss adds correlated loss to every path through this network;
// RemoveBurstLoss undoes it at recovery time.
func (n *Network) AddBurstLoss(loss float64) {
	f := n.ensureFaults()
	f.active++
	f.burstLoss += loss
}

// RemoveBurstLoss removes a burst-loss perturbation of the given magnitude.
func (n *Network) RemoveBurstLoss(loss float64) {
	if n.flt == nil {
		return
	}
	n.flt.burstLoss -= loss
	n.releaseFault()
}

// FaultDrops reports datagrams dropped by an active partition fault.
func (n *Network) FaultDrops() uint64 { return n.droppedFault }

// delivery is one in-flight datagram, scheduled via Engine.AtArg so sending
// allocates nothing once the free list warms up.
type delivery struct {
	n       *Network
	dst     *Host
	from    netip.Addr
	size    int
	payload any
}

// deliverDatagram is the arrival event for every datagram (non-capturing:
// one shared func value, state rides in the pooled delivery).
var deliverDatagram = func(a any) {
	d := a.(*delivery)
	n := d.n
	if d.dst.detached {
		n.droppedNoHost++
	} else {
		d.dst.recvDatagrams++
		d.dst.recvBytes += uint64(d.size)
		n.delivered++
		if d.dst.handler != nil {
			d.dst.handler(d.from, d.size, d.payload)
		}
	}
	d.dst = nil
	d.payload = nil
	n.freeDeliveries = append(n.freeDeliveries, d)
}

// New creates a network on the given engine.
func New(eng *eventsim.Engine, cfg Config) *Network {
	return &Network{
		eng:   eng,
		cfg:   cfg,
		hosts: make(map[uint32]*Host),
		rng:   eng.NewRand(),
	}
}

// SetRouter attaches this network to a partitioned world as shard domainID.
// Sends to addresses that resolve to another domain are forwarded through
// the router instead of being dropped as unknown hosts.
func (n *Network) SetRouter(r Router, domainID int) {
	n.router = r
	n.domainID = domainID
}

// SetRemoteFloor installs a per-destination-domain minimum wire latency for
// cross-shard sends (see the remoteFloor field). The floor must match the
// lookahead the world derives from it: every forwarded datagram's arrival is
// raised to at least departure+floor, never lowered.
func (n *Network) SetRemoteFloor(fn func(dstDomain int) time.Duration) {
	n.remoteFloor = fn
}

// hostKey packs an IPv4 address into the hosts map key. The simulation's
// address plan is IPv4-only; non-IPv4 folds to 0, which is never allocated.
func hostKey(a netip.Addr) uint32 {
	if !a.Is4() {
		return 0
	}
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Attach registers a host and its receive handler. Attaching an address that
// is already attached returns an error.
func (n *Network) Attach(h *Host, handler Handler) error {
	if _, ok := n.hosts[hostKey(h.Addr)]; ok {
		return fmt.Errorf("underlay: address %s already attached", h.Addr)
	}
	if h.UploadBps <= 0 {
		return fmt.Errorf("underlay: host %s has non-positive upload capacity", h.Addr)
	}
	h.handler = handler
	h.detached = false
	n.hosts[hostKey(h.Addr)] = h
	return nil
}

// Detach removes a host; subsequent datagrams to it are silently dropped,
// like UDP to a departed peer.
func (n *Network) Detach(addr netip.Addr) {
	if h, ok := n.hosts[hostKey(addr)]; ok {
		h.detached = true
		delete(n.hosts, hostKey(addr))
	}
}

// Lookup returns the attached host for addr, if any.
func (n *Network) Lookup(addr netip.Addr) (*Host, bool) {
	h, ok := n.hosts[hostKey(addr)]
	return h, ok
}

// NumHosts returns the number of currently attached hosts.
func (n *Network) NumHosts() int { return len(n.hosts) }

// Stats reports delivery counters: delivered datagrams and the three drop
// classes (random loss, sender queue overflow, destination not attached).
func (n *Network) Stats() (delivered, droppedLoss, droppedQueue, droppedNoHost uint64) {
	return n.delivered, n.droppedLoss, n.droppedQueue, n.droppedNoHost
}

// pairKey produces a symmetric deterministic hash for a host pair.
func pairKey(a, b netip.Addr) uint64 {
	if b.Less(a) {
		a, b = b, a
	}
	h := fnv.New64a()
	ab, bb := a.As4(), b.As4()
	h.Write(ab[:])
	h.Write(bb[:])
	return h.Sum64()
}

// PairOWD returns the stable (jitter-free) one-way delay between two hosts:
// the regime base scaled by the deterministic per-pair distance multiplier.
// This is the ground-truth proximity that trace-based RTT estimation should
// approximate.
func (n *Network) PairOWD(a, b *Host) time.Duration {
	return n.pairOWDAddr(a.Addr, a.ISP, b.Addr, b.ISP)
}

// pairOWDAddr is PairOWD keyed by address and ISP category, usable for
// destinations whose *Host lives on another shard.
func (n *Network) pairOWDAddr(aAddr netip.Addr, aISP isp.ISP, bAddr netip.Addr, bISP isp.ISP) time.Duration {
	base := n.cfg.baseOWD(aISP, bISP)
	key := pairKey(aAddr, bAddr)
	// Map the hash to [1-spread, 1+spread].
	u := float64(key%1_000_003) / 1_000_003.0
	mult := 1 + n.cfg.PairSpread*(2*u-1)
	return time.Duration(float64(base) * mult)
}

// Send transmits a datagram from an attached host to a destination address.
// Delivery (if the datagram survives loss, queue bounds, and the destination
// still being attached) invokes the destination's handler at the computed
// arrival instant. Send never blocks; it returns false if the datagram was
// dropped at the sender's uplink queue bound.
func (n *Network) Send(from *Host, to netip.Addr, size int, payload any) bool {
	if size < 0 {
		size = 0
	}
	now := n.eng.Now()

	// Sender uplink serialization with bounded backlog.
	txTime := time.Duration(float64(size) / from.UploadBps * float64(time.Second))
	start := now
	if from.upBusyUntil > start {
		start = from.upBusyUntil
	}
	if start-now > n.cfg.MaxQueueDelay {
		n.droppedQueue++
		return false
	}
	departure := start + txTime
	from.upBusyUntil = departure
	from.sentDatagrams++
	from.sentBytes += uint64(size)

	// Random loss along the path. The destination's ISP must be resolvable
	// even if it detaches before arrival; use the current view, falling back
	// to dropping on unknown destinations at send time.
	dst, ok := n.hosts[hostKey(to)]
	if !ok {
		if n.router != nil {
			if rem, rok := n.router.Resolve(to); rok && rem.Domain != n.domainID {
				return n.sendRemote(from, to, rem, departure, size, payload)
			}
		}
		n.droppedNoHost++
		return true // accepted by the uplink; lost in the network
	}
	// Fault perturbations fold in before the loss draw; a partition drops the
	// datagram without consuming randomness, so the RNG stream stays aligned
	// for the surviving traffic (deterministic per engine at any worker
	// count). Added delay only ever increases the arrival, so the PDES
	// lookahead bound still holds.
	p := n.cfg.lossProb(from.ISP, dst.ISP)
	var faultDelay time.Duration
	if f := n.flt; f != nil {
		k := fkey(from.ISP, dst.ISP)
		if f.partition[k] > 0 {
			n.droppedFault++
			return true
		}
		p += f.addLoss[k] + f.burstLoss
		faultDelay = f.addDelay[k]
	}
	if n.rng.Float64() < p {
		n.droppedLoss++
		return true
	}

	owd := n.PairOWD(from, dst)
	jitter := time.Duration(n.rng.ExpFloat64() * n.cfg.JitterFrac * float64(owd))
	arrival := departure + owd + jitter + faultDelay + dst.ProcDelay
	if n.cfg.TransoceanicBps > 0 && from.ISP.Domestic() != dst.ISP.Domestic() {
		arrival += time.Duration(float64(size) / n.cfg.TransoceanicBps * float64(time.Second))
	}

	n.scheduleDelivery(dst, from.Addr, size, payload, arrival)
	return true
}

// sendRemote is the cross-shard tail of Send. Loss, distance, and jitter are
// all decided sender-side — loss class and pair distance are pure functions
// of the two addresses' ISP categories, so the destination's *Host is not
// needed — and the datagram is handed to the router with its wire-arrival
// time. The destination shard adds its receiver ProcDelay (and existence
// check) when the barrier injects it; those per-host properties are only
// readable over there.
func (n *Network) sendRemote(from *Host, to netip.Addr, rem Remote, departure time.Duration, size int, payload any) bool {
	p := n.cfg.lossProb(from.ISP, rem.ISP)
	var faultDelay time.Duration
	if f := n.flt; f != nil {
		k := fkey(from.ISP, rem.ISP)
		if f.partition[k] > 0 {
			n.droppedFault++
			return true
		}
		p += f.addLoss[k] + f.burstLoss
		faultDelay = f.addDelay[k]
	}
	if n.rng.Float64() < p {
		n.droppedLoss++
		return true
	}
	owd := n.pairOWDAddr(from.Addr, from.ISP, to, rem.ISP)
	jitter := time.Duration(n.rng.ExpFloat64() * n.cfg.JitterFrac * float64(owd))
	arrival := departure + owd + jitter + faultDelay
	if n.cfg.TransoceanicBps > 0 && from.ISP.Domestic() != rem.ISP.Domestic() {
		arrival += time.Duration(float64(size) / n.cfg.TransoceanicBps * float64(time.Second))
	}
	if n.remoteFloor != nil {
		if fl := n.remoteFloor(rem.Domain); arrival-departure < fl {
			arrival = departure + fl
		}
	}
	n.router.Forward(n.domainID, rem.Domain, arrival, from.Addr, to, size, payload)
	return true
}

// Inject delivers a datagram forwarded from another shard. The arrival time
// is the wire arrival computed by the sender; the receiver-side processing
// delay is added here, where the destination host's properties live. A
// missing destination counts as droppedNoHost on this (the destination)
// shard.
func (n *Network) Inject(arrival time.Duration, from, to netip.Addr, size int, payload any) {
	dst, ok := n.hosts[hostKey(to)]
	if !ok {
		n.droppedNoHost++
		return
	}
	n.scheduleDelivery(dst, from, size, payload, arrival+dst.ProcDelay)
}

// scheduleDelivery books the arrival event for a surviving datagram.
func (n *Network) scheduleDelivery(dst *Host, from netip.Addr, size int, payload any, arrival time.Duration) {
	var d *delivery
	if k := len(n.freeDeliveries); k > 0 {
		d = n.freeDeliveries[k-1]
		n.freeDeliveries = n.freeDeliveries[:k-1]
	} else {
		d = &delivery{}
	}
	d.n, d.dst, d.from, d.size, d.payload = n, dst, from, size, payload
	n.eng.AtArg(arrival, deliverDatagram, d)
}
