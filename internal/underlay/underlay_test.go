package underlay

import (
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/eventsim"
	"pplivesim/internal/isp"
)

func newTestNet(t *testing.T) (*eventsim.Engine, *Network) {
	t.Helper()
	eng := eventsim.New(1)
	cfg := DefaultConfig()
	cfg.LossIntra, cfg.LossInterDomestic, cfg.LossTransoceanic = 0, 0, 0
	cfg.JitterFrac = 0
	return eng, New(eng, cfg)
}

func mkHost(addr string, category isp.ISP) *Host {
	return &Host{Addr: netip.MustParseAddr(addr), ISP: category, UploadBps: 64 << 10}
}

func TestAttachDuplicate(t *testing.T) {
	_, net := newTestNet(t)
	h := mkHost("58.32.0.1", isp.TELE)
	if err := net.Attach(h, nil); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(mkHost("58.32.0.1", isp.TELE), nil); err == nil {
		t.Error("duplicate attach did not error")
	}
}

func TestAttachRejectsZeroUpload(t *testing.T) {
	_, net := newTestNet(t)
	h := &Host{Addr: netip.MustParseAddr("58.32.0.9"), ISP: isp.TELE}
	if err := net.Attach(h, nil); err == nil {
		t.Error("attach with zero upload capacity did not error")
	}
}

func TestDelivery(t *testing.T) {
	eng, net := newTestNet(t)
	a := mkHost("58.32.0.1", isp.TELE)
	b := mkHost("58.32.0.2", isp.TELE)
	var gotFrom netip.Addr
	var gotPayload any
	var at time.Duration
	if err := net.Attach(a, nil); err != nil {
		t.Fatal(err)
	}
	err := net.Attach(b, func(from netip.Addr, size int, payload any) {
		gotFrom, gotPayload, at = from, payload, eng.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !net.Send(a, b.Addr, 1000, "hello") {
		t.Fatal("Send dropped at queue")
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if gotFrom != a.Addr || gotPayload != "hello" {
		t.Errorf("delivered (%v,%v), want (%v,hello)", gotFrom, gotPayload, a.Addr)
	}
	owd := net.PairOWD(a, b)
	tx := time.Duration(float64(1000) / a.UploadBps * float64(time.Second))
	if want := owd + tx; at != want {
		t.Errorf("arrival at %v, want %v", at, want)
	}
	delivered, _, _, _ := net.Stats()
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1", delivered)
	}
}

func TestLatencyRegimeOrdering(t *testing.T) {
	_, net := newTestNet(t)
	tele1 := mkHost("58.32.0.1", isp.TELE)
	tele2 := mkHost("58.32.0.2", isp.TELE)
	cnc := mkHost("60.0.0.1", isp.CNC)
	foreign := mkHost("129.174.0.1", isp.Foreign)

	intra := net.PairOWD(tele1, tele2)
	inter := net.PairOWD(tele1, cnc)
	ocean := net.PairOWD(tele1, foreign)

	// With PairSpread 0.45 the regimes can overlap at the extremes for a
	// single pair, but base values are ordered; check against worst case by
	// comparing many pairs on average.
	var sumIntra, sumInter, sumOcean time.Duration
	for i := 0; i < 50; i++ {
		p := mkHost(netip.AddrFrom4([4]byte{58, 33, byte(i), 1}).String(), isp.TELE)
		q := mkHost(netip.AddrFrom4([4]byte{60, 1, byte(i), 1}).String(), isp.CNC)
		r := mkHost(netip.AddrFrom4([4]byte{129, 174, byte(i), 1}).String(), isp.Foreign)
		sumIntra += net.PairOWD(tele1, p)
		sumInter += net.PairOWD(tele1, q)
		sumOcean += net.PairOWD(tele1, r)
	}
	if !(sumIntra < sumInter && sumInter < sumOcean) {
		t.Errorf("mean OWD ordering violated: intra=%v inter=%v ocean=%v",
			sumIntra/50, sumInter/50, sumOcean/50)
	}
	_ = intra
	_ = inter
	_ = ocean
}

func TestPairOWDSymmetricAndStable(t *testing.T) {
	_, net := newTestNet(t)
	a := mkHost("58.32.0.1", isp.TELE)
	b := mkHost("58.32.99.2", isp.TELE)
	d1 := net.PairOWD(a, b)
	d2 := net.PairOWD(b, a)
	if d1 != d2 {
		t.Errorf("PairOWD asymmetric: %v vs %v", d1, d2)
	}
	if d3 := net.PairOWD(a, b); d3 != d1 {
		t.Errorf("PairOWD unstable: %v vs %v", d3, d1)
	}
}

func TestTeleCncPenalty(t *testing.T) {
	_, net := newTestNet(t)
	tele := mkHost("58.32.0.1", isp.TELE)
	var cncSum, cerSum time.Duration
	for i := 0; i < 50; i++ {
		cnc := mkHost(netip.AddrFrom4([4]byte{60, 0, byte(i), 2}).String(), isp.CNC)
		cer := mkHost(netip.AddrFrom4([4]byte{59, 64, byte(i), 2}).String(), isp.CER)
		cncSum += net.PairOWD(tele, cnc)
		cerSum += net.PairOWD(tele, cer)
	}
	if cncSum <= cerSum {
		t.Errorf("TELE↔CNC mean OWD %v not above TELE↔CER %v", cncSum/50, cerSum/50)
	}
}

func TestUplinkSerialization(t *testing.T) {
	eng, net := newTestNet(t)
	a := mkHost("58.32.0.1", isp.TELE)
	b := mkHost("58.32.0.2", isp.TELE)
	var arrivals []time.Duration
	if err := net.Attach(a, nil); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(b, func(netip.Addr, int, any) { arrivals = append(arrivals, eng.Now()) }); err != nil {
		t.Fatal(err)
	}
	// Two back-to-back datagrams: the second must serialize behind the first.
	net.Send(a, b.Addr, 64<<10, 1) // 1 second of tx at 64 KiB/s
	net.Send(a, b.Addr, 64<<10, 2)
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals, want 2", len(arrivals))
	}
	gap := arrivals[1] - arrivals[0]
	if gap < 900*time.Millisecond {
		t.Errorf("second datagram arrived %v after first, want ≈1s serialization", gap)
	}
	if a.QueueDelay(0) == 0 {
		t.Error("uplink backlog not reflected in QueueDelay")
	}
}

func TestQueueOverflowDrop(t *testing.T) {
	eng, net := newTestNet(t)
	a := mkHost("58.32.0.1", isp.TELE)
	b := mkHost("58.32.0.2", isp.TELE)
	if err := net.Attach(a, nil); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(b, nil); err != nil {
		t.Fatal(err)
	}
	sent, dropped := 0, 0
	for i := 0; i < 20; i++ {
		if net.Send(a, b.Addr, 64<<10, i) { // each datagram = 1s of uplink
			sent++
		} else {
			dropped++
		}
	}
	if dropped == 0 {
		t.Error("no tail drops despite 20s backlog against 8s bound")
	}
	if sent == 0 {
		t.Error("all datagrams dropped")
	}
	_, _, dq, _ := net.Stats()
	if dq != uint64(dropped) {
		t.Errorf("droppedQueue stat = %d, want %d", dq, dropped)
	}
	_ = eng
}

func TestDetachDropsInFlight(t *testing.T) {
	eng, net := newTestNet(t)
	a := mkHost("58.32.0.1", isp.TELE)
	b := mkHost("58.32.0.2", isp.TELE)
	delivered := false
	if err := net.Attach(a, nil); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(b, func(netip.Addr, int, any) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	net.Send(a, b.Addr, 100, nil)
	net.Detach(b.Addr)
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Error("datagram delivered to detached host")
	}
	_, _, _, noHost := net.Stats()
	if noHost != 1 {
		t.Errorf("droppedNoHost = %d, want 1", noHost)
	}
}

func TestSendToUnknownAddr(t *testing.T) {
	eng, net := newTestNet(t)
	a := mkHost("58.32.0.1", isp.TELE)
	if err := net.Attach(a, nil); err != nil {
		t.Fatal(err)
	}
	if !net.Send(a, netip.MustParseAddr("10.9.9.9"), 100, nil) {
		t.Error("send to unknown addr reported queue drop")
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	_, _, _, noHost := net.Stats()
	if noHost != 1 {
		t.Errorf("droppedNoHost = %d, want 1", noHost)
	}
}

func TestLossStatistical(t *testing.T) {
	eng := eventsim.New(9)
	cfg := DefaultConfig()
	cfg.JitterFrac = 0
	cfg.LossIntra = 0.5
	net := New(eng, cfg)
	a := mkHost("58.32.0.1", isp.TELE)
	a.UploadBps = 1 << 30 // no queue effects
	b := mkHost("58.32.0.2", isp.TELE)
	got := 0
	if err := net.Attach(a, nil); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach(b, func(netip.Addr, int, any) { got++ }); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		net.Send(a, b.Addr, 10, nil)
	}
	if err := eng.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if got < n*35/100 || got > n*65/100 {
		t.Errorf("delivered %d of %d with 50%% loss, outside [35%%,65%%]", got, n)
	}
}

func TestJitterNonNegativeAndDeterministic(t *testing.T) {
	run := func() []time.Duration {
		eng := eventsim.New(77)
		cfg := DefaultConfig()
		cfg.LossIntra = 0
		net := New(eng, cfg)
		a := mkHost("58.32.0.1", isp.TELE)
		a.UploadBps = 1 << 30
		b := mkHost("58.32.0.2", isp.TELE)
		var arrivals []time.Duration
		if err := net.Attach(a, nil); err != nil {
			t.Fatal(err)
		}
		if err := net.Attach(b, func(netip.Addr, int, any) { arrivals = append(arrivals, eng.Now()) }); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			net.Send(a, b.Addr, 10, nil)
		}
		if err := eng.Run(time.Hour); err != nil {
			t.Fatal(err)
		}
		return arrivals
	}
	a1, a2 := run(), run()
	if len(a1) != len(a2) {
		t.Fatalf("runs delivered %d vs %d", len(a1), len(a2))
	}
	base := New(eventsim.New(77), DefaultConfig())
	owd := base.PairOWD(mkHost("58.32.0.1", isp.TELE), mkHost("58.32.0.2", isp.TELE))
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("non-deterministic arrival %d: %v vs %v", i, a1[i], a2[i])
		}
		if a1[i] < owd {
			t.Fatalf("arrival %d before pair OWD: %v < %v", i, a1[i], owd)
		}
	}
}
