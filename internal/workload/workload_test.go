package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pplivesim/internal/isp"
)

func TestPopulationTotals(t *testing.T) {
	pop := PopularPopulation()
	if pop.Total() < 1000 {
		t.Errorf("popular total = %d, want a large audience", pop.Total())
	}
	unpop := UnpopularPopulation()
	if unpop.Total() > 300 {
		t.Errorf("unpopular total = %d, want a small audience", unpop.Total())
	}
	if pop[isp.TELE] <= pop[isp.CNC] {
		t.Error("popular channel should be TELE-dominated")
	}
	if unpop[isp.CNC] <= unpop[isp.TELE] {
		t.Error("unpopular channel should have CNC slightly ahead (Fig. 3a)")
	}
	if unpop[isp.Foreign] >= 20 {
		t.Error("unpopular channel should have very few foreign viewers (Fig. 5)")
	}
}

func TestPopulationScale(t *testing.T) {
	pop := Population{isp.TELE: 100, isp.CNC: 1, isp.CER: 0}
	half := pop.Scale(0.5)
	if half[isp.TELE] != 50 {
		t.Errorf("TELE scaled = %d", half[isp.TELE])
	}
	if half[isp.CNC] != 1 {
		t.Errorf("non-zero class scaled to %d, want floor of 1", half[isp.CNC])
	}
	if _, ok := half[isp.CER]; ok {
		t.Error("zero class materialized")
	}
	if pop[isp.TELE] != 100 {
		t.Error("Scale mutated the receiver")
	}
}

func TestChurnSessionLength(t *testing.T) {
	c := DefaultChurn()
	rng := rand.New(rand.NewSource(1))
	var sum time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		d := c.SessionLength(rng)
		if d < c.MinSession {
			t.Fatalf("session %v below minimum %v", d, c.MinSession)
		}
		sum += d
	}
	mean := sum / n
	if mean < c.MeanSession/2 || mean > 2*c.MeanSession {
		t.Errorf("mean session %v far from configured %v", mean, c.MeanSession)
	}
}

func TestUploadCapacityRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		for _, category := range isp.All() {
			up := UploadCapacity(rng, category)
			if up <= 0 {
				t.Fatalf("%s capacity %f", category, up)
			}
			switch category {
			case isp.TELE, isp.CNC, isp.OtherCN:
				if up < 48<<10 || up > 112<<10 {
					t.Fatalf("%s ADSL capacity %f out of range", category, up)
				}
			case isp.CER:
				if up < 150<<10 {
					t.Fatalf("campus capacity %f below range", up)
				}
			}
		}
	}
}

func TestProcDelayBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		d := ProcDelay(rng)
		if d < 2*time.Millisecond || d > 10*time.Millisecond {
			t.Fatalf("proc delay %v out of range", d)
		}
	}
}

func TestSpecFor(t *testing.T) {
	pop, err := SpecFor(1)
	if err != nil || pop.Name != PopularSpec().Name {
		t.Errorf("SpecFor(1) = %+v, %v", pop, err)
	}
	unpop, err := SpecFor(2)
	if err != nil || unpop.Name != UnpopularSpec().Name {
		t.Errorf("SpecFor(2) = %+v, %v", unpop, err)
	}
	if _, err := SpecFor(9); err == nil {
		t.Error("unknown channel accepted")
	}
	if PopularSpec().Rating <= UnpopularSpec().Rating {
		t.Error("popular channel must out-rate unpopular")
	}
}

func TestDayFactors(t *testing.T) {
	// Deterministic.
	if DayFactor(3) != DayFactor(3) || ForeignDayFactor(3) != ForeignDayFactor(3) {
		t.Error("day factors not deterministic")
	}
	// Weekend (days 0,1 = Sat,Sun with Oct 11 2008 a Saturday) above weekday
	// on average.
	var weekend, weekday float64
	weekendN, weekdayN := 0, 0
	for d := 0; d < 28; d++ {
		f := DayFactor(d)
		if f <= 0 {
			t.Fatalf("DayFactor(%d) = %f", d, f)
		}
		if d%7 <= 1 {
			weekend += f
			weekendN++
		} else {
			weekday += f
			weekdayN++
		}
	}
	if weekend/float64(weekendN) <= weekday/float64(weekdayN) {
		t.Error("weekend factor not above weekday on average")
	}
}

// Property: ForeignDayFactor varies much more than DayFactor (the paper's
// explanation for Mason's volatile locality).
func TestForeignVolatilityExceedsDomestic(t *testing.T) {
	spread := func(f func(int) float64) float64 {
		lo, hi := f(0), f(0)
		for d := 1; d < 28; d++ {
			v := f(d)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi - lo
	}
	if spread(ForeignDayFactor) <= spread(DayFactor) {
		t.Error("foreign day factor spread not wider than domestic")
	}
}

// Property: Scale with factor 1 reproduces counts; factor in (0,1] keeps
// totals within bounds.
func TestPropertyScaleBounds(t *testing.T) {
	f := func(counts [5]uint8, factorRaw uint8) bool {
		pop := Population{}
		for i, c := range counts {
			pop[isp.All()[i]] = int(c)
		}
		one := pop.Scale(1)
		for k, v := range pop {
			if v != 0 && one[k] != v {
				return false
			}
		}
		factor := float64(factorRaw%100+1) / 100.0
		scaled := pop.Scale(factor)
		return scaled.Total() <= pop.Total()+len(pop)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}

func TestFlashCrowdValidate(t *testing.T) {
	if err := (FlashCrowd{}).Validate(); err != nil {
		t.Errorf("disabled zero value invalid: %v", err)
	}
	if err := DefaultFlashCrowd(10 * time.Minute).Validate(); err != nil {
		t.Errorf("default flash crowd invalid: %v", err)
	}
	cases := []FlashCrowd{
		{Enabled: true, Channel: -1, At: time.Minute, Multiplier: 10, Window: time.Minute},
		{Enabled: true, At: -time.Second, Multiplier: 10, Window: time.Minute},
		{Enabled: true, At: time.Minute, Multiplier: 0, Window: time.Minute},
		{Enabled: true, At: time.Minute, Multiplier: 10, Window: 0},
	}
	for i, f := range cases {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: invalid flash crowd accepted: %+v", i, f)
		}
	}
}

func TestFlashCrowdSpikeCount(t *testing.T) {
	f := DefaultFlashCrowd(10 * time.Minute)
	if got := f.SpikeCount(720); got != 7200 {
		t.Errorf("SpikeCount(720) = %d, want 7200", got)
	}
	if got := f.SpikeCount(0); got != 0 {
		t.Errorf("SpikeCount(0) = %d, want 0", got)
	}
	if got := (FlashCrowd{}).SpikeCount(720); got != 0 {
		t.Errorf("disabled SpikeCount = %d, want 0", got)
	}
	// Deterministic: no RNG anywhere in the sizing.
	if f.SpikeCount(45) != f.SpikeCount(45) {
		t.Error("SpikeCount not deterministic")
	}
}

func TestFlashCrowdArrivalOffsetFrontLoaded(t *testing.T) {
	f := DefaultFlashCrowd(10 * time.Minute)
	rng := rand.New(rand.NewSource(7))
	firstHalf := 0
	const n = 10000
	for i := 0; i < n; i++ {
		off := f.ArrivalOffset(rng)
		if off < 0 || off >= f.Window {
			t.Fatalf("offset %v outside [0, %v)", off, f.Window)
		}
		if off < f.Window/2 {
			firstHalf++
		}
	}
	// Truncated exponential with mean Window/3: well over half the arrivals
	// land in the first half of the window.
	if frac := float64(firstHalf) / n; frac < 0.7 {
		t.Errorf("first-half arrival share = %v, want front-loaded (>0.7)", frac)
	}
}

func TestDiurnalFactor(t *testing.T) {
	peak := DiurnalFactor(21 * time.Hour)
	trough := DiurnalFactor(9 * time.Hour)
	if math.Abs(peak-1.0) > 1e-9 {
		t.Errorf("prime-time factor = %v, want 1.0", peak)
	}
	if math.Abs(trough-0.4) > 1e-9 {
		t.Errorf("morning trough = %v, want 0.4", trough)
	}
	// 24h periodic and always positive.
	for h := 0; h < 48; h++ {
		tod := time.Duration(h) * time.Hour
		if got := DiurnalFactor(tod); got <= 0 || got > 1.0+1e-9 {
			t.Errorf("DiurnalFactor(%dh) = %v outside (0, 1]", h, got)
		}
		if d := DiurnalFactor(tod) - DiurnalFactor(tod+24*time.Hour); math.Abs(d) > 1e-9 {
			t.Errorf("not 24h periodic at %dh: delta %v", h, d)
		}
	}
}
