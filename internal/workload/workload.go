// Package workload generates scenario populations: per-ISP viewer counts for
// popular and unpopular channels, access-capacity distributions, churn
// processes, and the 28-day schedule behind the paper's Figure 6.
//
// The paper measured from Oct 11 to Nov 7 2008 with probes in TELE, CNC,
// CER, and a US campus. Channel popularity in China drives the per-ISP mix:
// a popular channel is dominated by TELE viewers (China Telecom covers most
// residential users), an unpopular one has a smaller, CNC-tilted audience,
// and only a thin slice of either audience is outside China.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"pplivesim/internal/isp"
	"pplivesim/internal/stream"
	"pplivesim/internal/wire"
)

// Population is the steady-state concurrent viewer count per ISP.
type Population map[isp.ISP]int

// Total returns the total concurrent viewers.
func (p Population) Total() int {
	sum := 0
	for _, n := range p {
		sum += n
	}
	return sum
}

// Scale returns a copy with every count multiplied by f (rounded, min 1 for
// non-zero inputs).
func (p Population) Scale(f float64) Population {
	out := make(Population, len(p))
	for k, n := range p {
		if n == 0 {
			continue
		}
		scaled := int(math.Round(float64(n) * f))
		if scaled < 1 {
			scaled = 1
		}
		out[k] = scaled
	}
	return out
}

// PopularPopulation models a prime-time popular channel: TELE-dominated with
// meaningful CNC and Foreign contingents (PPLive "has a large number of
// users outside China as well").
func PopularPopulation() Population {
	return Population{
		isp.TELE:    720,
		isp.CNC:     330,
		isp.CER:     45,
		isp.OtherCN: 105,
		isp.Foreign: 130,
	}
}

// UnpopularPopulation models a niche channel: a small audience in which CNC
// slightly outnumbers TELE (as Figure 3(a) shows for returned addresses) and
// very few Foreign viewers (the paper attributes the Mason probe's poor
// locality on this channel to exactly that scarcity).
func UnpopularPopulation() Population {
	return Population{
		isp.TELE:    70,
		isp.CNC:     85,
		isp.CER:     10,
		isp.OtherCN: 28,
		isp.Foreign: 12,
	}
}

// Churn configures the background-viewer session process.
type Churn struct {
	// Enabled turns churn on; when off, the initial population stays for
	// the whole run.
	Enabled bool
	// MeanSession is the mean viewer session length (log-normal-ish:
	// exponential clipped below at MinSession).
	MeanSession time.Duration
	// MinSession clips very short sessions.
	MinSession time.Duration
	// ReplacementDelay is the mean delay before a departed viewer's
	// replacement joins (keeps the population roughly stationary while
	// growing the set of unique addresses the probes observe, as in the
	// real traces).
	ReplacementDelay time.Duration
}

// DefaultChurn matches live-TV viewing: mean half-hour sessions.
func DefaultChurn() Churn {
	return Churn{
		Enabled:          true,
		MeanSession:      30 * time.Minute,
		MinSession:       2 * time.Minute,
		ReplacementDelay: 30 * time.Second,
	}
}

// SessionLength draws one session duration.
func (c Churn) SessionLength(rng *rand.Rand) time.Duration {
	d := time.Duration(rng.ExpFloat64() * float64(c.MeanSession))
	if d < c.MinSession {
		d = c.MinSession
	}
	return d
}

// Switching configures the channel-browsing process of the paper's user
// behaviour study (§5): a fraction of viewers hop between the scenario's
// channels, dwelling on each for a log-normally distributed time and picking
// the next channel with popularity-proportional probability.
type Switching struct {
	// Enabled turns switching on. When off (the zero value), every viewer
	// stays on their initial channel and no extra RNG draws happen, so
	// single-channel scenarios are bit-identical to the pre-switching code.
	Enabled bool
	// SwitcherFraction is the share of viewers that browse at all; the rest
	// are loyal to their arrival channel.
	SwitcherFraction float64
	// MedianDwell is the median time a switcher stays on one channel before
	// hopping; dwell times are log-normal around it with shape SigmaDwell.
	MedianDwell time.Duration
	// SigmaDwell is the log-normal shape parameter (σ of ln dwell).
	SigmaDwell float64
	// MinDwell clips implausibly fast hops (a viewer needs a few seconds to
	// judge a channel).
	MinDwell time.Duration
}

// DefaultSwitching models casual channel browsing: roughly a third of the
// audience hops, staying a few minutes per channel.
func DefaultSwitching() Switching {
	return Switching{
		Enabled:          true,
		SwitcherFraction: 0.35,
		MedianDwell:      4 * time.Minute,
		SigmaDwell:       0.9,
		MinDwell:         20 * time.Second,
	}
}

// Validate checks the parameters (only when enabled).
func (s Switching) Validate() error {
	if !s.Enabled {
		return nil
	}
	if s.SwitcherFraction < 0 || s.SwitcherFraction > 1 {
		return fmt.Errorf("workload: switcher fraction %v outside [0,1]", s.SwitcherFraction)
	}
	if s.MedianDwell <= 0 {
		return fmt.Errorf("workload: non-positive median dwell %v", s.MedianDwell)
	}
	if s.SigmaDwell < 0 {
		return fmt.Errorf("workload: negative dwell sigma %v", s.SigmaDwell)
	}
	return nil
}

// IsSwitcher draws whether a freshly arrived viewer browses channels.
func (s Switching) IsSwitcher(rng *rand.Rand) bool {
	return rng.Float64() < s.SwitcherFraction
}

// Dwell draws one log-normal dwell time: MedianDwell · exp(σ·N(0,1)),
// clipped below at MinDwell.
func (s Switching) Dwell(rng *rand.Rand) time.Duration {
	d := time.Duration(float64(s.MedianDwell) * math.Exp(s.SigmaDwell*rng.NormFloat64()))
	if d < s.MinDwell {
		d = s.MinDwell
	}
	return d
}

// Next picks the next channel index with probability proportional to
// weights (channel popularity), excluding the current channel cur. With a
// single channel it returns cur. The walk over weights is index-ordered, so
// the draw is deterministic for a given RNG stream.
func (s Switching) Next(rng *rand.Rand, weights []float64, cur int) int {
	total := 0.0
	for i, w := range weights {
		if i == cur || w <= 0 {
			continue
		}
		total += w
	}
	if total <= 0 {
		return cur
	}
	x := rng.Float64() * total
	for i, w := range weights {
		if i == cur || w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	// Float round-off: fall back to the last eligible index.
	for i := len(weights) - 1; i >= 0; i-- {
		if i != cur && weights[i] > 0 {
			return i
		}
	}
	return cur
}

// FlashCrowd configures an arrival spike at a channel's event start: a
// popular program begins and a burst of extra viewers joins within a short
// window, the load shape the locality literature warns inverts steady-state
// savings. Like Switching, the zero value is fully off and costs no RNG
// draws, so scenarios without a spike keep their pre-flash-crowd
// trajectories bit for bit.
type FlashCrowd struct {
	// Enabled turns the spike on.
	Enabled bool
	// Channel is the scenario channel index (not wire ID) the spike targets.
	Channel int
	// At is the event start: spike arrivals begin at this instant.
	At time.Duration
	// Multiplier sizes the spike: the burst adds Multiplier × the base
	// steady-state population (10 means a 10× arrival spike). The per-ISP
	// burst counts are a deterministic function of the base population — no
	// RNG — so only arrival instants draw randomness.
	Multiplier float64
	// Window is the interval the spike arrivals spread over; offsets are
	// drawn front-loaded (truncated exponential) so the burst peaks at the
	// event start like a real tune-in wave.
	Window time.Duration
}

// DefaultFlashCrowd is the paper-motivated stress case: a 10× arrival spike
// packed into the two minutes after the event starts.
func DefaultFlashCrowd(at time.Duration) FlashCrowd {
	return FlashCrowd{
		Enabled:    true,
		Channel:    0,
		At:         at,
		Multiplier: 10,
		Window:     2 * time.Minute,
	}
}

// Validate checks the parameters (only when enabled).
func (f FlashCrowd) Validate() error {
	if !f.Enabled {
		return nil
	}
	if f.Channel < 0 {
		return fmt.Errorf("workload: flash-crowd channel %d negative", f.Channel)
	}
	if f.At < 0 {
		return fmt.Errorf("workload: flash-crowd start %v negative", f.At)
	}
	if f.Multiplier <= 0 {
		return fmt.Errorf("workload: flash-crowd multiplier %v not positive", f.Multiplier)
	}
	if f.Window <= 0 {
		return fmt.Errorf("workload: flash-crowd window %v not positive", f.Window)
	}
	return nil
}

// SpikeCount returns the number of spike arrivals for an ISP whose base
// steady-state population is base: a deterministic rounding of Multiplier ×
// base, so worker partitioning can never change how many viewers each shard
// spawns.
func (f FlashCrowd) SpikeCount(base int) int {
	if !f.Enabled || base <= 0 {
		return 0
	}
	return int(math.Round(f.Multiplier * float64(base)))
}

// ArrivalOffset draws one spike arrival's offset past At: truncated
// exponential with mean Window/3, clipped to [0, Window), front-loading the
// burst at the event start. Callers must pass the owning shard's RNG stream
// so the spike is worker-count invariant.
func (f FlashCrowd) ArrivalOffset(rng *rand.Rand) time.Duration {
	d := time.Duration(rng.ExpFloat64() * float64(f.Window) / 3)
	if d >= f.Window {
		d = f.Window - 1
	}
	return d
}

// DiurnalFactor returns the within-day population multiplier at time-of-day
// tod: a smooth curve with a prime-time evening peak (21:00, factor 1.0) and
// an early-morning trough (09:00 local in the traces' terms, factor 0.4).
// Composes with DayFactor/ForeignDayFactor for the 28-day generator: day
// factors set the day's amplitude, this shapes the hours within it.
func DiurnalFactor(tod time.Duration) float64 {
	h := math.Mod(tod.Hours(), 24)
	return 0.7 + 0.3*math.Cos(2*math.Pi*(h-21)/24)
}

// UploadCapacity draws an access uplink capacity (bytes/sec) for a viewer in
// the given ISP: 2008-era residential ADSL in China (512 kbit/s – 1 Mbit/s
// up), campus connectivity on CERNET, and residential broadband abroad
// (PPLive's overseas audience was overwhelmingly consumer DSL/cable; modest
// asymmetric uplinks, slightly richer than Chinese ADSL).
func UploadCapacity(rng *rand.Rand, category isp.ISP) float64 {
	uniform := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	switch category {
	case isp.CER:
		return uniform(150<<10, 400<<10)
	case isp.Foreign:
		return uniform(56<<10, 144<<10)
	default: // TELE, CNC, OtherCN residential ADSL
		return uniform(48<<10, 112<<10)
	}
}

// ProcDelay draws a per-host application processing delay.
func ProcDelay(rng *rand.Rand) time.Duration {
	return time.Duration(2+rng.Intn(8)) * time.Millisecond
}

// PopularSpec returns the popular channel's stream spec.
func PopularSpec() stream.Spec {
	return stream.DefaultSpec(1, "popular-live", 950_000)
}

// UnpopularSpec returns the unpopular channel's stream spec.
func UnpopularSpec() stream.Spec {
	return stream.DefaultSpec(2, "unpopular-live", 1_200)
}

// SpecFor returns the spec for a channel ID used by the standard scenarios.
func SpecFor(ch wire.ChannelID) (stream.Spec, error) {
	switch ch {
	case 1:
		return PopularSpec(), nil
	case 2:
		return UnpopularSpec(), nil
	default:
		return stream.Spec{}, fmt.Errorf("workload: unknown standard channel %d", ch)
	}
}

// DayFactor returns the population multiplier for day d (0-based) of the
// 4-week window: a weekly rhythm (weekend bumps) plus a deterministic
// per-day wobble. Day 0 is a Saturday (Oct 11 2008 was).
func DayFactor(day int) float64 {
	weekday := day % 7
	base := 1.0
	if weekday == 0 || weekday == 1 { // Sat, Sun
		base = 1.25
	}
	// Deterministic wobble in [0.85, 1.15] from a hash of the day.
	h := uint64(day)*2654435761 + 12345
	h ^= h >> 13
	wobble := 0.85 + 0.30*float64(h%1000)/1000.0
	return base * wobble
}

// ForeignDayFactor is the day multiplier applied to the Foreign contingent
// only. The paper finds the Mason probe's locality "varies significantly
// even for the popular program because the popular program in China is not
// necessarily popular outside China" — foreign interest is much more
// volatile, so its wobble is wider.
func ForeignDayFactor(day int) float64 {
	h := uint64(day)*40503 + 99991
	h ^= h >> 11
	return 0.25 + 1.6*float64(h%1000)/1000.0
}
