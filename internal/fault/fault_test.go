package fault

import (
	"strings"
	"testing"
	"time"

	"pplivesim/internal/isp"
)

func TestValidateRejectsMalformedSchedules(t *testing.T) {
	horizon := 10 * time.Minute
	cases := []struct {
		name string
		s    Schedule
	}{
		{"source channel out of range", Schedule{SourceCrashes: []SourceCrash{{Channel: 2, At: time.Minute, Recover: 2 * time.Minute}}}},
		{"empty window", Schedule{SourceCrashes: []SourceCrash{{Channel: 0, At: time.Minute, Recover: time.Minute}}}},
		{"beyond horizon", Schedule{SourceCrashes: []SourceCrash{{Channel: 0, At: 11 * time.Minute, Recover: 12 * time.Minute}}}},
		{"tracker group out of range", Schedule{TrackerOutages: []TrackerOutage{{Group: 5, At: time.Minute, Recover: 2 * time.Minute}}}},
		{"link fault same ISP", Schedule{LinkFaults: []LinkFault{{A: isp.TELE, B: isp.TELE, At: time.Minute, Recover: 2 * time.Minute}}}},
		{"loss out of range", Schedule{LinkFaults: []LinkFault{{A: isp.TELE, B: isp.CNC, AddLoss: 1.5, At: time.Minute, Recover: 2 * time.Minute}}}},
		{"burst loss out of range", Schedule{BurstLosses: []BurstLoss{{Loss: -0.1, At: time.Minute, Recover: 2 * time.Minute}}}},
		{"kill fraction out of range", Schedule{PeerKills: []PeerKill{{Fraction: 1.5, At: time.Minute}}}},
		{"kill beyond horizon", Schedule{PeerKills: []PeerKill{{Fraction: 0.5, At: 11 * time.Minute}}}},
		{"edge crash out of range", Schedule{EdgeCrashes: []EdgeCrash{{Edge: 3, At: time.Minute, Recover: 2 * time.Minute}}}},
		{"edge crash with no edges", Schedule{EdgeCrashes: []EdgeCrash{{Edge: -1, At: time.Minute, Recover: 2 * time.Minute}}}},
		{"edge crash empty window", Schedule{EdgeCrashes: []EdgeCrash{{Edge: 0, At: time.Minute, Recover: time.Minute}}}},
	}
	for _, c := range cases {
		edges := 0
		if c.name == "edge crash out of range" || c.name == "edge crash empty window" {
			edges = 2
		}
		if err := c.s.Validate(2, 2, edges, horizon); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestValidateAcceptsAllTrackerGroups(t *testing.T) {
	s := Schedule{TrackerOutages: []TrackerOutage{{Group: -1, At: time.Minute, Recover: 2 * time.Minute}}}
	if err := s.Validate(1, 3, 0, 10*time.Minute); err != nil {
		t.Errorf("Group -1 (all) rejected: %v", err)
	}
}

func TestValidateAcceptsAllEdges(t *testing.T) {
	s := Schedule{EdgeCrashes: []EdgeCrash{{Edge: -1, At: time.Minute, Recover: 2 * time.Minute}}}
	if err := s.Validate(1, 1, 2, 10*time.Minute); err != nil {
		t.Errorf("Edge -1 (all) rejected: %v", err)
	}
	ws := s.Windows()
	if len(ws) != 1 || ws[0].Label != "edge-crash(all)" {
		t.Errorf("Windows() = %+v, want one edge-crash(all)", ws)
	}
}

func TestWindowsCoverEveryFault(t *testing.T) {
	s := Schedule{
		SourceCrashes:  []SourceCrash{{Channel: 0, At: 1 * time.Minute, Recover: 2 * time.Minute}},
		TrackerOutages: []TrackerOutage{{Group: -1, At: 2 * time.Minute, Recover: 3 * time.Minute}},
		LinkFaults: []LinkFault{
			{A: isp.TELE, B: isp.CNC, AddLoss: 0.2, At: 3 * time.Minute, Recover: 4 * time.Minute},
			{A: isp.TELE, B: isp.Foreign, Partition: true, At: 3 * time.Minute, Recover: 4 * time.Minute},
		},
		BurstLosses: []BurstLoss{{Loss: 0.1, At: 4 * time.Minute, Recover: 5 * time.Minute}},
		PeerKills:   []PeerKill{{ISP: isp.TELE, Fraction: 0.25, At: 6 * time.Minute}},
	}
	ws := s.Windows()
	if len(ws) != 6 {
		t.Fatalf("Windows() = %d entries, want 6", len(ws))
	}
	wants := []string{"source-crash", "tracker-outage(all)", "link-degrade", "partition", "burst-loss", "kill"}
	for i, want := range wants {
		if !strings.Contains(ws[i].Label, want) {
			t.Errorf("window %d label %q, want ~%q", i, ws[i].Label, want)
		}
	}
	// Instantaneous faults collapse to a point window.
	if last := ws[len(ws)-1]; last.Start != last.End || last.Start != 6*time.Minute {
		t.Errorf("kill window = [%s, %s], want point at 6m", last.Start, last.End)
	}
}

func TestPresetsValidateAndLandInWatch(t *testing.T) {
	warmUp, watch := 3*time.Minute, 6*time.Minute
	for _, name := range PresetNames() {
		s, err := Preset(name, warmUp, watch)
		if err != nil {
			t.Errorf("preset %q: %v", name, err)
			continue
		}
		if s.Empty() {
			t.Errorf("preset %q is empty", name)
		}
		if err := s.Validate(1, 1, 0, warmUp+watch); err != nil {
			t.Errorf("preset %q fails validation: %v", name, err)
		}
		for _, w := range s.Windows() {
			if w.Start < warmUp || w.Start >= warmUp+watch {
				t.Errorf("preset %q window %q starts at %s, outside the watch", name, w.Label, w.Start)
			}
		}
	}
	if _, err := Preset("no-such-preset", warmUp, watch); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestSampleEveryDefault(t *testing.T) {
	var s Schedule
	if got := s.SampleEvery(); got != DefaultSampleInterval {
		t.Errorf("SampleEvery() = %s, want default %s", got, DefaultSampleInterval)
	}
	s.SampleInterval = 5 * time.Second
	if got := s.SampleEvery(); got != 5*time.Second {
		t.Errorf("SampleEvery() = %s, want 5s", got)
	}
}
