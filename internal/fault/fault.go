// Package fault defines the declarative fault-injection schedule the core
// orchestrator executes against a running scenario: source crash/recovery,
// tracker outage windows, per-ISP-pair transit degradation and partition,
// swarm-wide burst loss, and abrupt peer kills (crash without Leave).
//
// Determinism contract: a Schedule is pure data. The core layer translates it
// into events on the owning shard's engine at Build time, and every random
// draw a fault needs (which peers a kill selects) comes from that shard's own
// RNG stream — so a fault run is bit-reproducible at any worker count. A nil
// schedule installs no events, enables no resilience code paths, and performs
// no RNG draws, leaving fault-free trajectories bit-identical to a build
// without this package (the pinned golden digests enforce this).
package fault

import (
	"fmt"
	"time"

	"pplivesim/internal/isp"
)

// SourceCrash takes one channel's source server down for a window: while
// down, the source drops every inbound datagram (UDP crash semantics — no
// RST, peers only see silence). On recovery it serves again, including every
// piece emitted while it was down (the encoder kept running).
type SourceCrash struct {
	// Channel is the index into the scenario's channel set (0 = first).
	Channel int
	At      time.Duration
	Recover time.Duration
}

// TrackerOutage takes a tracker group's servers down for a window; down
// trackers drop every inbound datagram before any processing (and before any
// RNG draw, so their reply streams resume unperturbed on recovery).
type TrackerOutage struct {
	// Group selects one of the tracker groups (0-based); -1 takes every
	// group down (a full control-plane outage).
	Group   int
	At      time.Duration
	Recover time.Duration
}

// LinkFault degrades (or fully partitions) the transit path between two ISP
// categories for a window, symmetrically. A == B degrades an ISP's internal
// fabric. AddLoss is added to the path's base loss probability; AddDelay is
// added to every surviving datagram's one-way delay (delay is only ever
// added, so the PDES lookahead bound still holds). Partition drops every
// datagram on the pair for the window.
type LinkFault struct {
	A, B      isp.ISP
	At        time.Duration
	Recover   time.Duration
	AddLoss   float64
	AddDelay  time.Duration
	Partition bool
}

// BurstLoss adds Loss to every path in the world for a window — correlated
// loss, as in a routing flap or an overloaded exchange.
type BurstLoss struct {
	At      time.Duration
	Recover time.Duration
	Loss    float64
}

// EdgeCrash takes a CDN edge cache down for a window: while down the edge
// drops every inbound datagram (same UDP crash semantics as SourceCrash).
// Its out-of-band ingest clock keeps running, so the cache is warm again the
// moment it recovers.
type EdgeCrash struct {
	// Edge is the index into the scenario's edge set in placement order;
	// -1 crashes every edge (a full CDN outage).
	Edge    int
	At      time.Duration
	Recover time.Duration
}

// PeerKill abruptly crashes a fraction of the currently-alive background
// viewers at an instant: no tracker Leaving announce, no goodbye — their
// entries linger in tracker registries until TTL and in neighbor tables
// until silence/keepalive eviction, exactly like a real mass crash. Distinct
// from workload churn, whose departures leave gracefully.
type PeerKill struct {
	// ISP restricts the kill to one category; zero kills across all ISPs.
	ISP      isp.ISP
	Fraction float64
	At       time.Duration
}

// Schedule is the full declarative fault plan for one scenario run. The zero
// value (or a nil *Schedule) injects nothing; core only enables the peers'
// resilience behaviours when a non-nil schedule is present.
type Schedule struct {
	SourceCrashes  []SourceCrash
	TrackerOutages []TrackerOutage
	LinkFaults     []LinkFault
	BurstLosses    []BurstLoss
	PeerKills      []PeerKill
	EdgeCrashes    []EdgeCrash

	// SampleInterval is the probe-side resilience sampling period (continuity
	// and per-ISP byte counters); zero means DefaultSampleInterval.
	SampleInterval time.Duration
}

// DefaultSampleInterval is the resilience sampling period when the schedule
// does not set one.
const DefaultSampleInterval = 2 * time.Second

// SampleEvery returns the effective resilience sampling period.
func (s *Schedule) SampleEvery() time.Duration {
	if s.SampleInterval > 0 {
		return s.SampleInterval
	}
	return DefaultSampleInterval
}

// Empty reports whether the schedule injects no faults at all.
func (s *Schedule) Empty() bool {
	return len(s.SourceCrashes) == 0 && len(s.TrackerOutages) == 0 &&
		len(s.LinkFaults) == 0 && len(s.BurstLosses) == 0 && len(s.PeerKills) == 0 &&
		len(s.EdgeCrashes) == 0
}

// Validate checks the schedule against a scenario's shape: channels is the
// channel count, trackerGroups the tracker group count, edges the CDN edge
// count, and horizon the total simulated time.
func (s *Schedule) Validate(channels, trackerGroups, edges int, horizon time.Duration) error {
	window := func(kind string, at, rec time.Duration) error {
		if at < 0 || rec <= at {
			return fmt.Errorf("fault: %s window [%s, %s) is empty or negative", kind, at, rec)
		}
		if at >= horizon {
			return fmt.Errorf("fault: %s starts at %s, beyond the %s horizon", kind, at, horizon)
		}
		return nil
	}
	for _, f := range s.SourceCrashes {
		if f.Channel < 0 || f.Channel >= channels {
			return fmt.Errorf("fault: source crash targets channel %d of %d", f.Channel, channels)
		}
		if err := window("source crash", f.At, f.Recover); err != nil {
			return err
		}
	}
	for _, f := range s.TrackerOutages {
		if f.Group < -1 || f.Group >= trackerGroups {
			return fmt.Errorf("fault: tracker outage targets group %d of %d", f.Group, trackerGroups)
		}
		if err := window("tracker outage", f.At, f.Recover); err != nil {
			return err
		}
	}
	for _, f := range s.LinkFaults {
		if !f.A.Valid() || !f.B.Valid() {
			return fmt.Errorf("fault: link fault on invalid ISP pair (%v, %v)", f.A, f.B)
		}
		if err := window("link fault", f.At, f.Recover); err != nil {
			return err
		}
		if f.AddLoss < 0 || f.AddLoss > 1 {
			return fmt.Errorf("fault: link fault AddLoss %v out of [0, 1]", f.AddLoss)
		}
		if f.AddDelay < 0 {
			return fmt.Errorf("fault: link fault AddDelay %v negative", f.AddDelay)
		}
		if !f.Partition && f.AddLoss == 0 && f.AddDelay == 0 {
			return fmt.Errorf("fault: link fault on (%v, %v) degrades nothing", f.A, f.B)
		}
	}
	for _, f := range s.BurstLosses {
		if err := window("burst loss", f.At, f.Recover); err != nil {
			return err
		}
		if f.Loss <= 0 || f.Loss > 1 {
			return fmt.Errorf("fault: burst loss %v out of (0, 1]", f.Loss)
		}
	}
	for _, f := range s.PeerKills {
		if f.ISP != 0 && !f.ISP.Valid() {
			return fmt.Errorf("fault: peer kill targets invalid ISP %v", f.ISP)
		}
		if f.Fraction <= 0 || f.Fraction > 1 {
			return fmt.Errorf("fault: peer kill fraction %v out of (0, 1]", f.Fraction)
		}
		if f.At < 0 || f.At >= horizon {
			return fmt.Errorf("fault: peer kill at %s outside the %s horizon", f.At, horizon)
		}
	}
	for _, f := range s.EdgeCrashes {
		if edges == 0 {
			return fmt.Errorf("fault: edge crash scheduled but the scenario deploys no edges")
		}
		if f.Edge < -1 || f.Edge >= edges {
			return fmt.Errorf("fault: edge crash targets edge %d of %d", f.Edge, edges)
		}
		if err := window("edge crash", f.At, f.Recover); err != nil {
			return err
		}
	}
	return nil
}

// Window is one fault's active interval, labeled for reporting. Instantaneous
// faults (peer kills) have End == Start; recovery metrics still measure from
// Start.
type Window struct {
	Label      string
	Start, End time.Duration
}

// Windows lists every fault's interval in schedule order, for the resilience
// analysis.
func (s *Schedule) Windows() []Window {
	var out []Window
	for _, f := range s.SourceCrashes {
		out = append(out, Window{Label: fmt.Sprintf("source-crash(ch%d)", f.Channel), Start: f.At, End: f.Recover})
	}
	for _, f := range s.TrackerOutages {
		label := fmt.Sprintf("tracker-outage(g%d)", f.Group)
		if f.Group < 0 {
			label = "tracker-outage(all)"
		}
		out = append(out, Window{Label: label, Start: f.At, End: f.Recover})
	}
	for _, f := range s.LinkFaults {
		kind := "link-degrade"
		if f.Partition {
			kind = "partition"
		}
		out = append(out, Window{Label: fmt.Sprintf("%s(%v-%v)", kind, f.A, f.B), Start: f.At, End: f.Recover})
	}
	for _, f := range s.BurstLosses {
		out = append(out, Window{Label: fmt.Sprintf("burst-loss(%.0f%%)", 100*f.Loss), Start: f.At, End: f.Recover})
	}
	for _, f := range s.PeerKills {
		who := "all"
		if f.ISP != 0 {
			who = f.ISP.String()
		}
		out = append(out, Window{Label: fmt.Sprintf("kill(%s,%.0f%%)", who, 100*f.Fraction), Start: f.At, End: f.At})
	}
	for _, f := range s.EdgeCrashes {
		label := fmt.Sprintf("edge-crash(e%d)", f.Edge)
		if f.Edge < 0 {
			label = "edge-crash(all)"
		}
		out = append(out, Window{Label: label, Start: f.At, End: f.Recover})
	}
	return out
}

// PresetNames lists the chaos presets Preset accepts, for CLI help text.
func PresetNames() []string {
	return []string{"source-crash", "tracker-outage", "link-degrade", "partition", "burst-loss", "kill-churn", "combo"}
}

// Preset builds a canned chaos schedule scaled to a probe's observation
// window: faults land inside [warmUp, warmUp+watch) so the probe's telemetry
// brackets them with healthy baseline on both sides.
func Preset(name string, warmUp, watch time.Duration) (*Schedule, error) {
	// Anchor faults a quarter into the watch and size windows to an eighth of
	// it, so even short watches get a visible dip plus recovery room.
	at := warmUp + watch/4
	dur := watch / 8
	if dur < 15*time.Second {
		dur = 15 * time.Second
	}
	switch name {
	case "source-crash":
		return &Schedule{SourceCrashes: []SourceCrash{{Channel: 0, At: at, Recover: at + dur}}}, nil
	case "tracker-outage":
		return &Schedule{TrackerOutages: []TrackerOutage{{Group: -1, At: at, Recover: at + 2*dur}}}, nil
	case "link-degrade":
		return &Schedule{LinkFaults: []LinkFault{{
			A: isp.TELE, B: isp.CNC, At: at, Recover: at + 2*dur, AddLoss: 0.25, AddDelay: 80 * time.Millisecond,
		}}}, nil
	case "partition":
		return &Schedule{LinkFaults: []LinkFault{{
			A: isp.TELE, B: isp.CNC, At: at, Recover: at + dur, Partition: true,
		}}}, nil
	case "burst-loss":
		return &Schedule{BurstLosses: []BurstLoss{{At: at, Recover: at + dur, Loss: 0.15}}}, nil
	case "kill-churn":
		return &Schedule{PeerKills: []PeerKill{{Fraction: 0.3, At: at}}}, nil
	case "combo":
		return &Schedule{
			SourceCrashes:  []SourceCrash{{Channel: 0, At: at, Recover: at + dur}},
			TrackerOutages: []TrackerOutage{{Group: 0, At: at + 2*dur, Recover: at + 3*dur}},
			LinkFaults: []LinkFault{{
				A: isp.TELE, B: isp.CNC, At: at + 3*dur, Recover: at + 4*dur,
				AddLoss: 0.2, AddDelay: 60 * time.Millisecond,
			}},
			PeerKills: []PeerKill{{ISP: isp.TELE, Fraction: 0.2, At: at + 4*dur}},
		}, nil
	default:
		return nil, fmt.Errorf("fault: unknown preset %q (have %v)", name, PresetNames())
	}
}
