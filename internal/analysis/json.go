package analysis

import (
	"encoding/json"
	"time"

	"pplivesim/internal/isp"
)

// reportJSON is the machine-readable form of a Report: ISP-keyed maps become
// string-keyed objects and durations become seconds.
type reportJSON struct {
	ProbeISP string `json:"probeIsp"`

	ReturnedByISP map[string]int            `json:"returnedByIsp"`
	UniqueListed  int                       `json:"uniqueListed"`
	ReturnedBySrc map[string]map[string]int `json:"returnedBySource"`

	TransmissionsByISP  map[string]uint64 `json:"transmissionsByIsp"`
	BytesByISP          map[string]uint64 `json:"bytesByIsp"`
	SourceTransmissions uint64            `json:"sourceTransmissions"`
	SourceBytes         uint64            `json:"sourceBytes"`
	EdgeTransmissions   uint64            `json:"edgeTransmissions"`
	EdgeBytes           uint64            `json:"edgeBytes"`

	TrafficLocality   float64 `json:"trafficLocality"`
	PotentialLocality float64 `json:"potentialLocality"`

	ListRT       map[string]rtJSON     `json:"listResponseTimes"`
	ListRTSketch map[string]sketchJSON `json:"listRtSketch,omitempty"`
	DataRT       map[string]rtJSON     `json:"dataResponseTimes"`
	DataRTSketch map[string]sketchJSON `json:"dataRtSketch,omitempty"`

	UnansweredLists int `json:"unansweredLists"`
	UnansweredData  int `json:"unansweredData"`

	ConnectedByISP  map[string]int `json:"connectedByIsp"`
	SEFit           seJSON         `json:"stretchedExponentialFit"`
	ZipfFit         zipfJSON       `json:"zipfFit"`
	TopRequestShare float64        `json:"topRequestShare"`
	TopByteShare    float64        `json:"topByteShare"`
	RTTCorrelation  float64        `json:"rttCorrelation"`

	Peers []peerJSON `json:"peers"`
}

type rtJSON struct {
	Count   int     `json:"count"`
	MeanSec float64 `json:"meanSeconds"`
}

// sketchJSON renders an RTSketch: exact count/mean/min/max plus
// fixed-centroid quantile estimates (sketch-typed — see RTSketch).
type sketchJSON struct {
	Count   uint64  `json:"count"`
	MeanSec float64 `json:"meanSeconds"`
	MinSec  float64 `json:"minSeconds"`
	MaxSec  float64 `json:"maxSeconds"`
	P50Sec  float64 `json:"p50Seconds"`
	P90Sec  float64 `json:"p90Seconds"`
	P99Sec  float64 `json:"p99Seconds"`
}

type seJSON struct {
	C  float64 `json:"c"`
	A  float64 `json:"a"`
	B  float64 `json:"b"`
	R2 float64 `json:"r2"`
}

type zipfJSON struct {
	Alpha float64 `json:"alpha"`
	R2    float64 `json:"r2"`
}

type peerJSON struct {
	Addr     string  `json:"addr"`
	ISP      string  `json:"isp"`
	Requests int     `json:"requests"`
	Replies  int     `json:"replies"`
	Bytes    uint64  `json:"bytes"`
	RTTSec   float64 `json:"rttSeconds,omitempty"`
}

func ispKeys[V any](in map[isp.ISP]V) map[string]V {
	out := make(map[string]V, len(in))
	for k, v := range in {
		out[k.String()] = v
	}
	return out
}

func rtKeys(in map[isp.Group]RTStats) map[string]rtJSON {
	out := make(map[string]rtJSON, len(in))
	for g, st := range in {
		out[g.String()] = rtJSON{Count: st.Count, MeanSec: st.Mean.Seconds()}
	}
	return out
}

func sketchKeys(in map[isp.Group]*RTSketch) map[string]sketchJSON {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]sketchJSON, len(in))
	for g, s := range in {
		out[g.String()] = sketchJSON{
			Count:   s.Count,
			MeanSec: s.Mean().Seconds(),
			MinSec:  s.Min.Seconds(),
			MaxSec:  s.Max.Seconds(),
			P50Sec:  s.Quantile(0.50).Seconds(),
			P90Sec:  s.Quantile(0.90).Seconds(),
			P99Sec:  s.Quantile(0.99).Seconds(),
		}
	}
	return out
}

// MarshalJSON implements json.Marshaler with stable, string-keyed output.
func (rep *Report) MarshalJSON() ([]byte, error) {
	bySrc := make(map[string]map[string]int, len(rep.ReturnedBySource))
	for src, counts := range rep.ReturnedBySource {
		bySrc[src.Label()] = ispKeys(counts)
	}
	peers := make([]peerJSON, 0, len(rep.Peers))
	for _, p := range rep.Peers {
		peers = append(peers, peerJSON{
			Addr:     p.Addr.String(),
			ISP:      p.ISP.String(),
			Requests: p.Requests,
			Replies:  p.Replies,
			Bytes:    p.Bytes,
			RTTSec:   roundSec(p.RTT),
		})
	}
	return json.Marshal(reportJSON{
		ProbeISP:            rep.ProbeISP.String(),
		ReturnedByISP:       ispKeys(rep.ReturnedByISP),
		UniqueListed:        rep.UniqueListed,
		ReturnedBySrc:       bySrc,
		TransmissionsByISP:  ispKeys(rep.TransmissionsByISP),
		BytesByISP:          ispKeys(rep.BytesByISP),
		SourceTransmissions: rep.SourceTransmissions,
		SourceBytes:         rep.SourceBytes,
		EdgeTransmissions:   rep.EdgeTransmissions,
		EdgeBytes:           rep.EdgeBytes,
		TrafficLocality:     rep.TrafficLocality,
		PotentialLocality:   rep.PotentialLocality,
		ListRT:              rtKeys(rep.ListRT),
		ListRTSketch:        sketchKeys(rep.ListRTSketch),
		DataRT:              rtKeys(rep.DataRT),
		DataRTSketch:        sketchKeys(rep.DataRTSketch),
		UnansweredLists:     rep.UnansweredLists,
		UnansweredData:      rep.UnansweredData,
		ConnectedByISP:      ispKeys(rep.ConnectedByISP),
		SEFit:               seJSON{C: rep.SEFit.C, A: rep.SEFit.A, B: rep.SEFit.B, R2: rep.SEFit.R2},
		ZipfFit:             zipfJSON{Alpha: rep.ZipfFit.Alpha, R2: rep.ZipfFit.R2},
		TopRequestShare:     rep.TopRequestShare,
		TopByteShare:        rep.TopByteShare,
		RTTCorrelation:      rep.RTTCorrelation,
		Peers:               peers,
	})
}

func roundSec(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return d.Seconds()
}
