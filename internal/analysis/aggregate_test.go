package analysis

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/netip"
	"sort"
	"testing"
	"time"

	"pplivesim/internal/capture"
	"pplivesim/internal/isp"
	"pplivesim/internal/wire"
)

// feedAggregate replays a captured trace into a fresh Aggregate the same way
// Analyze does (via Match), standing in for the online capture.Aggregator.
func feedAggregate(records []capture.Record, trackers map[netip.Addr]bool, r Resolver) *Aggregate {
	agg := NewAggregate(r, srcA, isp.TELE)
	m := capture.Match(records, trackers)
	for _, rec := range records {
		if rec.Dir == capture.Out && rec.Type == wire.TDataRequest {
			agg.DataRequest(rec.Peer, rec.At)
		}
	}
	for _, ex := range m.ListExchanges {
		agg.PeerListMatched(ex)
	}
	for _, ex := range m.TrackerLists {
		agg.TrackerList(ex)
	}
	for _, tx := range m.Transmissions {
		agg.DataMatched(tx)
	}
	agg.addUnanswered(m.UnansweredData, m.UnansweredLists)
	return agg
}

// genShardTrace builds one shard's deterministic random trace. Peers come
// from a per-shard address block (disjoint across shards) and every
// timestamp carries a per-shard sub-millisecond offset, so reply times are
// globally unique and the merged series order is well-defined.
func genShardTrace(seed int64, shard byte, resolver stubResolver) []capture.Record {
	rng := rand.New(rand.NewSource(seed))
	peers := make([]netip.Addr, 8)
	for i := range peers {
		p := netip.AddrFrom4([4]byte{58, 32, 10 + shard, byte(i + 1)})
		peers[i] = p
		if i%3 == 0 {
			resolver[p] = isp.TELE
		} else if i%3 == 1 {
			resolver[p] = isp.CNC
		} else {
			resolver[p] = isp.Foreign
		}
	}
	skew := time.Duration(shard) * 100 * time.Microsecond
	var records []capture.Record
	now := skew
	for i := 0; i < 250; i++ {
		now += time.Duration(1+rng.Intn(30)) * time.Millisecond
		p := peers[rng.Intn(len(peers))]
		switch roll := rng.Float64(); {
		case roll < 0.6:
			seq := uint64(i)
			records = append(records, capture.Record{At: now, Dir: capture.Out, Peer: p, Type: wire.TDataRequest, Seq: seq})
			if rng.Float64() < 0.8 {
				records = append(records, capture.Record{At: now + time.Duration(50+rng.Intn(400))*time.Millisecond,
					Dir: capture.In, Peer: p, Type: wire.TDataReply, Seq: seq, Count: 1, Payload: 1380})
			}
		case roll < 0.85:
			records = append(records, capture.Record{At: now, Dir: capture.Out, Peer: p, Type: wire.TPeerListRequest})
			if rng.Float64() < 0.75 {
				records = append(records, capture.Record{At: now + time.Duration(40+rng.Intn(250))*time.Millisecond,
					Dir: capture.In, Peer: p, Type: wire.TPeerListReply,
					Addrs: []netip.Addr{peers[rng.Intn(len(peers))], peers[rng.Intn(len(peers))]}})
			}
		default:
			records = append(records, capture.Record{At: now, Dir: capture.Out, Peer: trkA, Type: wire.TTrackerQuery})
			records = append(records, capture.Record{At: now + time.Duration(30+rng.Intn(80))*time.Millisecond,
				Dir: capture.In, Peer: trkA, Type: wire.TTrackerResponse,
				Addrs: []netip.Addr{peers[rng.Intn(len(peers))]}})
		}
	}
	sort.SliceStable(records, func(i, j int) bool { return records[i].At < records[j].At })
	return records
}

// TestAggregateMergeEqualsConcatenated is the shard-merge property: folding
// two per-shard aggregates must equal aggregating the concatenated trace —
// counters and response-time moments exactly (they are commutative sums, so
// the full report JSON must match byte-for-byte), and quantile sketches
// exactly too, because fixed-centroid sketches merge losslessly.
func TestAggregateMergeEqualsConcatenated(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		resolver := testResolver()
		shardA := genShardTrace(seed, 0, resolver)
		shardB := genShardTrace(seed+1000, 1, resolver)
		trackers := map[netip.Addr]bool{trkA: true}

		aggA := feedAggregate(shardA, trackers, resolver)
		aggB := feedAggregate(shardB, trackers, resolver)
		merged := NewAggregate(resolver, srcA, isp.TELE)
		merged.Merge(aggA)
		merged.Merge(aggB)

		combined := append(append([]capture.Record(nil), shardA...), shardB...)
		sort.SliceStable(combined, func(i, j int) bool { return combined[i].At < combined[j].At })
		want := feedAggregate(combined, trackers, resolver)

		gotJSON, err := json.Marshal(merged.Report())
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.Marshal(want.Report())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("seed %d: merged shard report differs from concatenated-trace report\nmerged: %s\nwant:   %s",
				seed, gotJSON, wantJSON)
		}

		// Sketch tolerance check, stated explicitly: merged quantiles must
		// sit within one bin width (~21%) of the concatenated build's.
		gotRep, wantRep := merged.Report(), want.Report()
		for g, ws := range wantRep.DataRTSketch {
			gs := gotRep.DataRTSketch[g]
			if gs == nil {
				t.Fatalf("seed %d: merged sketch missing group %v", seed, g)
			}
			for _, q := range []float64{0.5, 0.9, 0.99} {
				gq, wq := gs.Quantile(q).Seconds(), ws.Quantile(q).Seconds()
				if wq > 0 && (gq < wq*0.75 || gq > wq*1.25) {
					t.Errorf("seed %d: q%.0f merged %v vs concatenated %v", seed, q*100, gq, wq)
				}
			}
		}

		// Merge order must not matter for the serialized report either.
		swapped := NewAggregate(resolver, srcA, isp.TELE)
		swapped.Merge(aggB)
		swapped.Merge(aggA)
		swappedJSON, err := json.Marshal(swapped.Report())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(swappedJSON, wantJSON) {
			t.Errorf("seed %d: merge order changed the report", seed)
		}
	}
}

// TestAggregateMergeKWaySubShards extends the shard-merge property to the
// scaled partition's shape: a trace split across K address-range sub-shards
// (K=7 matches the 12-domain TELE split) must fold — in shard order or
// reversed — to exactly the single-pass build of the concatenated trace.
// This is what lets flow-fidelity runs merge window-local sub-shard
// aggregates at barriers without caring how the population was partitioned.
func TestAggregateMergeKWaySubShards(t *testing.T) {
	for _, k := range []int{3, 7} {
		resolver := testResolver()
		trackers := map[netip.Addr]bool{trkA: true}
		shards := make([][]capture.Record, k)
		var combined []capture.Record
		for s := 0; s < k; s++ {
			shards[s] = genShardTrace(int64(31*s+1), byte(s), resolver)
			combined = append(combined, shards[s]...)
		}
		sort.SliceStable(combined, func(i, j int) bool { return combined[i].At < combined[j].At })
		wantJSON, err := json.Marshal(feedAggregate(combined, trackers, resolver).Report())
		if err != nil {
			t.Fatal(err)
		}

		aggs := make([]*Aggregate, k)
		for s := range shards {
			aggs[s] = feedAggregate(shards[s], trackers, resolver)
		}
		merged := NewAggregate(resolver, srcA, isp.TELE)
		for _, a := range aggs {
			merged.Merge(a)
		}
		gotJSON, err := json.Marshal(merged.Report())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("k=%d: %d-way merged report differs from concatenated-trace report", k, k)
		}

		reversed := NewAggregate(resolver, srcA, isp.TELE)
		for s := k - 1; s >= 0; s-- {
			reversed.Merge(aggs[s])
		}
		revJSON, err := json.Marshal(reversed.Report())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(revJSON, wantJSON) {
			t.Errorf("k=%d: fold order changed the report", k)
		}
	}
}

// TestPeersVsConnectedSemantics pins the documented split between
// Report.Peers (every data-plane peer, answered or not — the
// rank-distribution population) and ConnectedByISP (only peers with matched
// transmissions — the paper's "connected peers" of Figures 11-14(a)):
// a peer with requests but zero replies appears in Peers, with its request
// count, and in no ConnectedByISP bucket.
func TestPeersVsConnectedSemantics(t *testing.T) {
	records := []capture.Record{
		// foreignA: two requests, never answers.
		{At: 1 * time.Second, Dir: capture.Out, Peer: foreignA, Type: wire.TDataRequest, Seq: 1},
		{At: 2 * time.Second, Dir: capture.Out, Peer: foreignA, Type: wire.TDataRequest, Seq: 2},
		// teleB: one request, answered.
		{At: 3 * time.Second, Dir: capture.Out, Peer: teleB, Type: wire.TDataRequest, Seq: 3},
		{At: 3*time.Second + 80*time.Millisecond, Dir: capture.In, Peer: teleB, Type: wire.TDataReply, Seq: 3, Count: 1, Payload: 1380},
	}
	rep := Analyze(Input{
		Records:  records,
		Matched:  capture.Match(records, nil),
		Resolver: testResolver(),
		Source:   srcA,
		ProbeISP: isp.TELE,
	})
	if len(rep.Peers) != 2 {
		t.Fatalf("Peers = %d, want 2 (request-only peers belong in the rank population): %+v", len(rep.Peers), rep.Peers)
	}
	var reqOnly *PeerActivity
	for i := range rep.Peers {
		if rep.Peers[i].Addr == foreignA {
			reqOnly = &rep.Peers[i]
		}
	}
	if reqOnly == nil {
		t.Fatal("request-only peer missing from Peers")
	}
	if reqOnly.Requests != 2 || reqOnly.Replies != 0 || reqOnly.Bytes != 0 || reqOnly.RTT != 0 {
		t.Errorf("request-only peer activity = %+v", *reqOnly)
	}
	// Connected peers are data-transmission peers only.
	if got := rep.ConnectedByISP[isp.Foreign]; got != 0 {
		t.Errorf("request-only peer counted as connected: ConnectedByISP[Foreign] = %d", got)
	}
	if got := rep.ConnectedByISP[isp.TELE]; got != 1 {
		t.Errorf("ConnectedByISP[TELE] = %d, want 1", got)
	}
	total := 0
	for _, n := range rep.ConnectedByISP {
		total += n
	}
	if total != 1 {
		t.Errorf("connected total = %d, want 1 of %d peers", total, len(rep.Peers))
	}
}

// TestUnsolicitedTrackerResponseOutOfRTStats checks the analysis half of the
// unsolicited-tracker fix: a flagged response contributes its addresses to
// the list tallies but no response-time statistic anywhere in the report.
func TestUnsolicitedTrackerResponseOutOfRTStats(t *testing.T) {
	records := []capture.Record{
		// Stray response, no query outstanding.
		{At: 1 * time.Second, Dir: capture.In, Peer: trkA, Type: wire.TTrackerResponse,
			Addrs: []netip.Addr{cncA}},
	}
	trackers := map[netip.Addr]bool{trkA: true}
	m := capture.Match(records, trackers)
	if len(m.TrackerLists) != 1 || !m.TrackerLists[0].Unsolicited {
		t.Fatalf("precondition: want one unsolicited tracker list, got %+v", m.TrackerLists)
	}
	rep := Analyze(Input{
		Records:  records,
		Matched:  m,
		Resolver: testResolver(),
		Trackers: trackers,
		Source:   srcA,
		ProbeISP: isp.TELE,
	})
	if got := rep.ReturnedByISP[isp.CNC]; got != 1 {
		t.Errorf("unsolicited list addresses dropped: ReturnedByISP = %v", rep.ReturnedByISP)
	}
	if len(rep.ListRT) != 0 || len(rep.ListRTSketch) != 0 {
		t.Errorf("unsolicited tracker response leaked into RT stats: %v %v", rep.ListRT, rep.ListRTSketch)
	}
}

// TestAnalyzeSketchesMatchStats checks that the report's sketches cover the
// same populations as the exact RT stats: equal counts, equal means.
func TestAnalyzeSketchesMatchStats(t *testing.T) {
	rep := Analyze(buildInput())
	for g, st := range rep.DataRT {
		s := rep.DataRTSketch[g]
		if s == nil {
			t.Fatalf("DataRTSketch missing group %v", g)
		}
		if int(s.Count) != st.Count || s.Mean() != st.Mean {
			t.Errorf("group %v: sketch count/mean %d/%v vs stats %d/%v", g, s.Count, s.Mean(), st.Count, st.Mean)
		}
	}
	for g, st := range rep.ListRT {
		s := rep.ListRTSketch[g]
		if s == nil {
			t.Fatalf("ListRTSketch missing group %v", g)
		}
		if int(s.Count) != st.Count || s.Mean() != st.Mean {
			t.Errorf("group %v: sketch count/mean %d/%v vs stats %d/%v", g, s.Count, s.Mean(), st.Count, st.Mean)
		}
	}
	if len(rep.DataRTSketch) != len(rep.DataRT) || len(rep.ListRTSketch) != len(rep.ListRT) {
		t.Errorf("sketch group sets differ from stats: %d/%d, %d/%d",
			len(rep.DataRTSketch), len(rep.DataRT), len(rep.ListRTSketch), len(rep.ListRT))
	}
}
