package analysis

import (
	"bytes"
	"encoding/json"
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/capture"
	"pplivesim/internal/isp"
	"pplivesim/internal/wire"
)

var edgeA = netip.MustParseAddr("58.32.200.1")

// edgeTrace builds a trace where the probe downloads from one regular TELE
// peer, the source, and a CDN edge (also resolvable to TELE — the acid test
// for the locality counters: edge bytes must stay out of the same-ISP share
// even though the edge sits in the probe's ISP).
func edgeTrace() []capture.Record {
	at := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	req := func(t float64, peer netip.Addr, seq uint64) capture.Record {
		return capture.Record{At: at(t), Dir: capture.Out, Peer: peer, Type: wire.TDataRequest, Seq: seq}
	}
	rep := func(t float64, peer netip.Addr, seq uint64) capture.Record {
		return capture.Record{At: at(t), Dir: capture.In, Peer: peer, Type: wire.TDataReply, Seq: seq, Count: 1, Payload: 1380}
	}
	return []capture.Record{
		req(1.0, teleB, 1), rep(1.1, teleB, 1),
		req(2.0, edgeA, 2), rep(2.1, edgeA, 2),
		req(3.0, edgeA, 3), rep(3.1, edgeA, 3),
		req(4.0, srcA, 4), rep(4.1, srcA, 4),
		req(5.0, cncA, 5), rep(5.1, cncA, 5),
	}
}

func edgeResolver() stubResolver {
	r := testResolver()
	r[edgeA] = isp.TELE
	return r
}

func TestEdgeTrafficSeparatedFromLocality(t *testing.T) {
	records := edgeTrace()
	rep := Analyze(Input{
		Records:  records,
		Matched:  capture.Match(records, nil),
		Resolver: edgeResolver(),
		Source:   srcA,
		Edges:    []netip.Addr{edgeA},
		ProbeISP: isp.TELE,
	})

	if rep.EdgeTransmissions != 2 || rep.EdgeBytes != 2*1380 {
		t.Errorf("edge tallies = (%d, %d), want (2, %d)", rep.EdgeTransmissions, rep.EdgeBytes, 2*1380)
	}
	if rep.SourceTransmissions != 1 || rep.SourceBytes != 1380 {
		t.Errorf("source tallies = (%d, %d), want (1, 1380)", rep.SourceTransmissions, rep.SourceBytes)
	}
	// Per-ISP peer counters: one TELE transmission (teleB), one CNC (cncA) —
	// the edge's two TELE-resolvable transmissions must not appear.
	if got := rep.TransmissionsByISP[isp.TELE]; got != 1 {
		t.Errorf("TransmissionsByISP[TELE] = %d, want 1 (edge leaked into peer counters)", got)
	}
	if got := rep.BytesByISP[isp.TELE]; got != 1380 {
		t.Errorf("BytesByISP[TELE] = %d, want 1380", got)
	}
	// Locality over client-peer bytes only: 1380 TELE of 2760 total.
	if rep.TrafficLocality != 0.5 {
		t.Errorf("TrafficLocality = %v, want 0.5 (edge bytes must not count)", rep.TrafficLocality)
	}
	// The edge is infrastructure: out of the rank population and the
	// connected-peer census, like the source.
	for _, p := range rep.Peers {
		if p.Addr == edgeA || p.Addr == srcA {
			t.Errorf("infrastructure %v in the peer rank population", p.Addr)
		}
	}
	if got := rep.ConnectedByISP[isp.TELE]; got != 1 {
		t.Errorf("ConnectedByISP[TELE] = %d, want 1", got)
	}
}

// TestEdgeTallyMergeFolds extends the shard-merge property to the edge
// counters: per-shard aggregates with the same edge set fold to the
// single-pass build, byte-for-byte in the serialized report.
func TestEdgeTallyMergeFolds(t *testing.T) {
	resolver := edgeResolver()
	records := edgeTrace()
	split := 6 // a request/reply pair boundary: matching is per-shard
	build := func(recs []capture.Record) *Aggregate {
		agg := NewAggregate(resolver, srcA, isp.TELE)
		agg.SetEdges([]netip.Addr{edgeA})
		m := capture.Match(recs, nil)
		for _, rec := range recs {
			if rec.Dir == capture.Out && rec.Type == wire.TDataRequest {
				agg.DataRequest(rec.Peer, rec.At)
			}
		}
		for _, tx := range m.Transmissions {
			agg.DataMatched(tx)
		}
		return agg
	}

	want := build(records)
	merged := NewAggregate(resolver, srcA, isp.TELE)
	merged.Merge(build(records[:split]))
	merged.Merge(build(records[split:]))

	gotJSON, _ := json.Marshal(merged.Report())
	wantJSON, _ := json.Marshal(want.Report())
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("merged edge report differs:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	if rep := merged.Report(); rep.EdgeTransmissions != 2 || rep.EdgeBytes != 2*1380 {
		t.Errorf("merged edge tallies = (%d, %d), want (2, %d)", rep.EdgeTransmissions, rep.EdgeBytes, 2*1380)
	}
}

// TestEdgeJSONKeysAlwaysPresent pins the streaming/post-hoc parity shape:
// the report JSON carries edgeTransmissions/edgeBytes on every run — zero
// for pure-P2P traces — so the two telemetry paths serialize identically.
func TestEdgeJSONKeysAlwaysPresent(t *testing.T) {
	rep := Analyze(buildInput()) // no edges anywhere
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"edgeTransmissions", "edgeBytes"} {
		v, ok := m[key]
		if !ok {
			t.Errorf("report JSON lacks %q", key)
			continue
		}
		if v != float64(0) {
			t.Errorf("%s = %v on an edge-free trace, want 0", key, v)
		}
	}
}
