package analysis

import (
	"math"
	"net/netip"
	"sort"
	"time"

	"pplivesim/internal/capture"
	"pplivesim/internal/fit"
	"pplivesim/internal/isp"
)

// Aggregate is the streaming telemetry state for one probe (or one shard of
// one probe): bounded per-ISP counters, response-time moments and sketches,
// and a compact per-peer activity map — everything Report needs, in O(peers)
// memory instead of the O(datagrams) of a full capture.
//
// It implements capture.Events, so a capture.Aggregator can feed it online,
// and Aggregates are mergeable (Merge), so per-shard instances can be folded
// at scenario end. All accumulations are commutative integer/duration sums,
// so a merged fold is bit-identical to a single-pass one; Report finalizes
// the same arithmetic the post-hoc Analyze path uses, which is what makes
// the streaming and full-capture report JSON byte-identical on well-formed
// traces.
type Aggregate struct {
	resolver Resolver
	source   netip.Addr
	probeISP isp.ISP

	// edges marks the scenario's CDN edge caches: their transmissions are
	// infrastructure offload, tallied like the source's — never into the
	// peer-locality counters. Nil in pure-P2P scenarios.
	edges map[netip.Addr]struct{}

	returnedByISP map[isp.ISP]int
	returnedBySrc map[ListSource]map[isp.ISP]int
	unique        map[netip.Addr]struct{}

	txByISP     map[isp.ISP]uint64
	bytesByISP  map[isp.ISP]uint64
	sourceTx    uint64
	sourceBytes uint64
	edgeTx      uint64
	edgeBytes   uint64

	listRT     map[isp.Group]*rtAgg
	dataRT     map[isp.Group]*rtAgg
	listSeries map[isp.Group][]RTPoint

	unansweredLists int
	unansweredData  int

	peers map[netip.Addr]*PeerActivity
}

// rtAgg accumulates one response-time group: exact count/sum for the mean,
// plus the quantile sketch.
type rtAgg struct {
	count  int
	sum    time.Duration
	sketch RTSketch
}

func (r *rtAgg) add(d time.Duration) {
	r.count++
	r.sum += d
	r.sketch.Add(d)
}

// NewAggregate creates an empty aggregate for a probe in probeISP whose
// channel source is source. resolver is the IP→ASN step applied to every
// observed address as it arrives.
func NewAggregate(resolver Resolver, source netip.Addr, probeISP isp.ISP) *Aggregate {
	return &Aggregate{
		resolver:      resolver,
		source:        source,
		probeISP:      probeISP,
		returnedByISP: make(map[isp.ISP]int),
		returnedBySrc: make(map[ListSource]map[isp.ISP]int),
		unique:        make(map[netip.Addr]struct{}),
		txByISP:       make(map[isp.ISP]uint64),
		bytesByISP:    make(map[isp.ISP]uint64),
		listRT:        make(map[isp.Group]*rtAgg),
		dataRT:        make(map[isp.Group]*rtAgg),
		listSeries:    make(map[isp.Group][]RTPoint),
		peers:         make(map[netip.Addr]*PeerActivity),
	}
}

// SetEdges marks the scenario's CDN edge caches so their replies are kept
// out of the peer-locality statistics. Call before feeding observations.
func (a *Aggregate) SetEdges(addrs []netip.Addr) {
	if len(addrs) == 0 {
		return
	}
	if a.edges == nil {
		a.edges = make(map[netip.Addr]struct{}, len(addrs))
	}
	for _, addr := range addrs {
		a.edges[addr] = struct{}{}
	}
}

// isEdge reports whether addr is a marked CDN edge cache.
func (a *Aggregate) isEdge(addr netip.Addr) bool {
	if a.edges == nil {
		return false
	}
	_, ok := a.edges[addr]
	return ok
}

// peer returns (creating if needed) the activity entry for a client peer.
func (a *Aggregate) peer(addr netip.Addr) *PeerActivity {
	act, ok := a.peers[addr]
	if !ok {
		act = &PeerActivity{Addr: addr, ISP: resolve(a.resolver, addr)}
		a.peers[addr] = act
	}
	return act
}

// DataRequest implements capture.Events: requests are counted from raw
// outgoing datagrams (answered or not), as the paper counts "data requests
// made by our host"; source requests are excluded from peer statistics.
func (a *Aggregate) DataRequest(peer netip.Addr, at time.Duration) {
	if peer == a.source || a.isEdge(peer) {
		return
	}
	a.peer(peer).Requests++
}

// DataMatched implements capture.Events.
func (a *Aggregate) DataMatched(tx capture.Transmission) {
	if tx.Peer == a.source {
		a.sourceTx++
		a.sourceBytes += uint64(tx.Bytes)
		return
	}
	if a.isEdge(tx.Peer) {
		a.edgeTx++
		a.edgeBytes += uint64(tx.Bytes)
		return
	}
	cat := resolve(a.resolver, tx.Peer)
	a.txByISP[cat]++
	a.bytesByISP[cat] += uint64(tx.Bytes)

	rt := tx.ResponseTime()
	g := isp.GroupOf(cat)
	agg := a.dataRT[g]
	if agg == nil {
		agg = &rtAgg{}
		a.dataRT[g] = agg
	}
	agg.add(rt)

	act := a.peer(tx.Peer)
	act.Replies++
	act.Bytes += uint64(tx.Bytes)
	// RTT estimate (§3.5): running minimum response time over the peer's
	// transmissions.
	if act.RTT == 0 || rt < act.RTT {
		act.RTT = rt
	}
}

// DataUnanswered implements capture.Events.
func (a *Aggregate) DataUnanswered(peer netip.Addr, reqAt time.Duration) {
	a.unansweredData++
}

// PeerListMatched implements capture.Events. ex.Addrs is consumed during the
// call (never retained), as the Events contract requires.
func (a *Aggregate) PeerListMatched(ex capture.ListExchange) {
	cat := resolve(a.resolver, ex.Peer)
	a.addList(ListSource{ISP: cat}, ex.Addrs)
	g := isp.GroupOf(cat)
	agg := a.listRT[g]
	if agg == nil {
		agg = &rtAgg{}
		a.listRT[g] = agg
	}
	rt := ex.ResponseTime()
	agg.add(rt)
	a.listSeries[g] = append(a.listSeries[g], RTPoint{At: ex.ReqAt, RT: rt})
}

// ListUnanswered implements capture.Events.
func (a *Aggregate) ListUnanswered(peer netip.Addr, reqAt time.Duration) {
	a.unansweredLists++
}

// TrackerList implements capture.Events. Tracker response times feed no
// report statistic (Figures 7-10 cover gossip exchanges), so unsolicited
// responses — whose synthesized ReqAt carries no timing information — only
// contribute their returned addresses, like any other tracker list.
func (a *Aggregate) TrackerList(ex capture.ListExchange) {
	a.addList(ListSource{ISP: resolve(a.resolver, ex.Peer), Tracker: true}, ex.Addrs)
}

func (a *Aggregate) addList(src ListSource, addrs []netip.Addr) {
	byISP := a.returnedBySrc[src]
	if byISP == nil {
		byISP = make(map[isp.ISP]int)
		a.returnedBySrc[src] = byISP
	}
	for _, addr := range addrs {
		cat := resolve(a.resolver, addr)
		a.returnedByISP[cat]++
		byISP[cat]++
		a.unique[addr] = struct{}{}
	}
}

// addUnanswered folds externally tallied unanswered counts (used by the
// post-hoc Analyze path, which gets them from capture.Matched).
func (a *Aggregate) addUnanswered(data, lists int) {
	a.unansweredData += data
	a.unansweredLists += lists
}

// BytesSnapshot copies the current per-ISP client-peer download byte tally,
// for periodic resilience sampling during a run.
func (a *Aggregate) BytesSnapshot() map[isp.ISP]uint64 {
	out := make(map[isp.ISP]uint64, len(a.bytesByISP))
	for cat, b := range a.bytesByISP {
		out[cat] = b
	}
	return out
}

// Merge folds another aggregate (e.g. a shard's) into this one. Counters and
// sketches add exactly; per-peer entries sum, with RTT the minimum of the
// nonzero estimates; response-time series are re-sorted by reply time, which
// reproduces single-pass capture order whenever reply times are distinct.
func (a *Aggregate) Merge(o *Aggregate) {
	for cat, n := range o.returnedByISP {
		a.returnedByISP[cat] += n
	}
	for src, byISP := range o.returnedBySrc {
		dst := a.returnedBySrc[src]
		if dst == nil {
			dst = make(map[isp.ISP]int, len(byISP))
			a.returnedBySrc[src] = dst
		}
		for cat, n := range byISP {
			dst[cat] += n
		}
	}
	for addr := range o.unique {
		a.unique[addr] = struct{}{}
	}
	for cat, n := range o.txByISP {
		a.txByISP[cat] += n
	}
	for cat, n := range o.bytesByISP {
		a.bytesByISP[cat] += n
	}
	a.sourceTx += o.sourceTx
	a.sourceBytes += o.sourceBytes
	a.edgeTx += o.edgeTx
	a.edgeBytes += o.edgeBytes
	for addr := range o.edges {
		a.SetEdges([]netip.Addr{addr})
	}
	mergeRT(a.listRT, o.listRT)
	mergeRT(a.dataRT, o.dataRT)
	for g, pts := range o.listSeries {
		merged := append(a.listSeries[g], pts...)
		sort.SliceStable(merged, func(i, j int) bool {
			return merged[i].At+merged[i].RT < merged[j].At+merged[j].RT
		})
		a.listSeries[g] = merged
	}
	a.unansweredLists += o.unansweredLists
	a.unansweredData += o.unansweredData
	for addr, act := range o.peers {
		dst := a.peers[addr]
		if dst == nil {
			cp := *act
			a.peers[addr] = &cp
			continue
		}
		dst.Requests += act.Requests
		dst.Replies += act.Replies
		dst.Bytes += act.Bytes
		if act.RTT > 0 && (dst.RTT == 0 || act.RTT < dst.RTT) {
			dst.RTT = act.RTT
		}
	}
}

func mergeRT(dst, src map[isp.Group]*rtAgg) {
	for g, agg := range src {
		d := dst[g]
		if d == nil {
			d = &rtAgg{}
			dst[g] = d
		}
		d.count += agg.count
		d.sum += agg.sum
		d.sketch.Merge(&agg.sketch)
	}
}

// Report finalizes the aggregate into the full per-probe report. The
// aggregate is not consumed: Report copies state, so it can be called again
// after further observations or merges.
func (a *Aggregate) Report() *Report {
	rep := &Report{
		ProbeISP:            a.probeISP,
		ReturnedByISP:       make(map[isp.ISP]int, len(a.returnedByISP)),
		UniqueListed:        len(a.unique),
		ReturnedBySource:    make(map[ListSource]map[isp.ISP]int, len(a.returnedBySrc)),
		TransmissionsByISP:  make(map[isp.ISP]uint64, len(a.txByISP)),
		BytesByISP:          make(map[isp.ISP]uint64, len(a.bytesByISP)),
		SourceTransmissions: a.sourceTx,
		SourceBytes:         a.sourceBytes,
		EdgeTransmissions:   a.edgeTx,
		EdgeBytes:           a.edgeBytes,
		ListRT:              make(map[isp.Group]RTStats, len(a.listRT)),
		ListRTSeries:        make(map[isp.Group][]RTPoint, len(a.listSeries)),
		ListRTSketch:        make(map[isp.Group]*RTSketch, len(a.listRT)),
		DataRT:              make(map[isp.Group]RTStats, len(a.dataRT)),
		DataRTSketch:        make(map[isp.Group]*RTSketch, len(a.dataRT)),
		UnansweredLists:     a.unansweredLists,
		UnansweredData:      a.unansweredData,
		ConnectedByISP:      make(map[isp.ISP]int),
	}

	for cat, n := range a.returnedByISP {
		rep.ReturnedByISP[cat] = n
	}
	for src, byISP := range a.returnedBySrc {
		cp := make(map[isp.ISP]int, len(byISP))
		for cat, n := range byISP {
			cp[cat] = n
		}
		rep.ReturnedBySource[src] = cp
	}
	total := 0
	for _, n := range a.returnedByISP {
		total += n
	}
	if total > 0 {
		rep.PotentialLocality = float64(a.returnedByISP[a.probeISP]) / float64(total)
	}

	for cat, n := range a.txByISP {
		rep.TransmissionsByISP[cat] = n
	}
	var totalBytes uint64
	for cat, b := range a.bytesByISP {
		rep.BytesByISP[cat] = b
		totalBytes += b
	}
	if totalBytes > 0 {
		rep.TrafficLocality = float64(a.bytesByISP[a.probeISP]) / float64(totalBytes)
	}

	for g, agg := range a.listRT {
		rep.ListRT[g] = RTStats{Count: agg.count, Mean: agg.sum / time.Duration(agg.count)}
		s := agg.sketch
		rep.ListRTSketch[g] = &s
	}
	for g, pts := range a.listSeries {
		rep.ListRTSeries[g] = append([]RTPoint(nil), pts...)
	}
	for g, agg := range a.dataRT {
		rep.DataRT[g] = RTStats{Count: agg.count, Mean: agg.sum / time.Duration(agg.count)}
		s := agg.sketch
		rep.DataRTSketch[g] = &s
	}

	rep.Peers = make([]PeerActivity, 0, len(a.peers))
	for _, act := range a.peers {
		if act.Replies == 0 && act.Requests == 0 {
			continue
		}
		rep.Peers = append(rep.Peers, *act)
	}
	sortPeers(rep.Peers)
	for _, act := range rep.Peers {
		if act.Replies > 0 {
			rep.ConnectedByISP[act.ISP]++
		}
	}

	var requests, bytes []float64
	for _, act := range rep.Peers {
		if act.Requests > 0 {
			requests = append(requests, float64(act.Requests))
		}
		if act.Bytes > 0 {
			bytes = append(bytes, float64(act.Bytes))
		}
	}
	ranked := fit.Ranked(requests)
	if se, err := fit.FitStretchedExponential(ranked); err == nil {
		rep.SEFit = se
	}
	if z, err := fit.FitZipf(ranked); err == nil {
		rep.ZipfFit = z
	}
	rep.TopRequestShare = fit.TopShare(requests, 0.1)
	rep.TopByteShare = fit.TopShare(bytes, 0.1)

	var lx, ly []float64
	for _, act := range rep.Peers {
		if act.Requests > 0 && act.RTT > 0 {
			lx = append(lx, math.Log(float64(act.Requests)))
			ly = append(ly, math.Log(act.RTT.Seconds()))
		}
	}
	if r, err := fit.Pearson(lx, ly); err == nil {
		rep.RTTCorrelation = r
	}
	return rep
}
