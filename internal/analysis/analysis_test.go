package analysis

import (
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/capture"
	"pplivesim/internal/isp"
	"pplivesim/internal/wire"
)

// stubResolver maps fixed prefixes to ISPs for tests.
type stubResolver map[netip.Addr]isp.ISP

func (s stubResolver) ISPOf(a netip.Addr) (isp.ISP, bool) {
	got, ok := s[a]
	return got, ok
}

var (
	teleA    = netip.MustParseAddr("58.32.0.1")
	teleB    = netip.MustParseAddr("58.32.0.2")
	cncA     = netip.MustParseAddr("60.0.0.1")
	foreignA = netip.MustParseAddr("129.174.0.1")
	trkA     = netip.MustParseAddr("61.128.0.1")
	srcA     = netip.MustParseAddr("58.32.9.9")
)

func testResolver() stubResolver {
	return stubResolver{
		teleA: isp.TELE, teleB: isp.TELE, cncA: isp.CNC,
		foreignA: isp.Foreign, trkA: isp.TELE, srcA: isp.TELE,
	}
}

// buildInput creates a small synthetic trace exercising every analysis path.
func buildInput() Input {
	var records []capture.Record
	at := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

	// Probe (TELE) sends 3 data requests to teleB, 1 to cncA, 1 to foreignA,
	// 1 to the source. teleB answers all 3 fast, cncA answers slowly,
	// foreignA never answers.
	addReq := func(t float64, peer netip.Addr, seq uint64) {
		records = append(records, capture.Record{
			At: at(t), Dir: capture.Out, Peer: peer, Type: wire.TDataRequest, Seq: seq,
		})
	}
	addRep := func(t float64, peer netip.Addr, seq uint64) {
		records = append(records, capture.Record{
			At: at(t), Dir: capture.In, Peer: peer, Type: wire.TDataReply,
			Seq: seq, Count: 1, Payload: 1380,
		})
	}
	addReq(1.0, teleB, 1)
	addRep(1.05, teleB, 1)
	addReq(2.0, teleB, 2)
	addRep(2.06, teleB, 2)
	addReq(3.0, teleB, 3)
	addRep(3.04, teleB, 3)
	addReq(4.0, cncA, 4)
	addRep(4.9, cncA, 4)
	addReq(5.0, foreignA, 5) // unanswered
	addReq(6.0, srcA, 6)
	addRep(6.2, srcA, 6)

	// Peer-list exchange with teleB returning 2 TELE + 1 CNC address, and a
	// tracker response with 1 CNC address.
	records = append(records,
		capture.Record{At: at(7), Dir: capture.Out, Peer: teleB, Type: wire.TPeerListRequest},
		capture.Record{At: at(7.1), Dir: capture.In, Peer: teleB, Type: wire.TPeerListReply,
			Addrs: []netip.Addr{teleA, teleB, cncA}},
		capture.Record{At: at(8), Dir: capture.Out, Peer: trkA, Type: wire.TTrackerQuery},
		capture.Record{At: at(8.2), Dir: capture.In, Peer: trkA, Type: wire.TTrackerResponse,
			Addrs: []netip.Addr{cncA}},
	)

	trackers := map[netip.Addr]bool{trkA: true}
	return Input{
		Records:  records,
		Matched:  capture.Match(records, trackers),
		Resolver: testResolver(),
		Trackers: trackers,
		Source:   srcA,
		ProbeISP: isp.TELE,
	}
}

func TestAnalyzeReturnedAddrs(t *testing.T) {
	rep := Analyze(buildInput())
	if got := rep.ReturnedByISP[isp.TELE]; got != 2 {
		t.Errorf("TELE returned = %d, want 2", got)
	}
	if got := rep.ReturnedByISP[isp.CNC]; got != 2 {
		t.Errorf("CNC returned = %d, want 2 (one via peer, one via tracker)", got)
	}
	if rep.UniqueListed != 3 {
		t.Errorf("UniqueListed = %d, want 3", rep.UniqueListed)
	}
	// Source attribution: the TELE peer's list (TELE_p) vs the tracker's
	// (TELE_s, tracker in TELE).
	peerSrc := ListSource{ISP: isp.TELE}
	if got := rep.ReturnedBySource[peerSrc][isp.TELE]; got != 2 {
		t.Errorf("TELE_p TELE count = %d, want 2", got)
	}
	trkSrc := ListSource{ISP: isp.TELE, Tracker: true}
	if got := rep.ReturnedBySource[trkSrc][isp.CNC]; got != 1 {
		t.Errorf("TELE_s CNC count = %d, want 1", got)
	}
	if peerSrc.Label() != "TELE_p" || trkSrc.Label() != "TELE_s" {
		t.Errorf("labels = %s/%s", peerSrc.Label(), trkSrc.Label())
	}
	if rep.PotentialLocality != 0.5 {
		t.Errorf("PotentialLocality = %f, want 0.5", rep.PotentialLocality)
	}
}

func TestAnalyzeTraffic(t *testing.T) {
	rep := Analyze(buildInput())
	if got := rep.TransmissionsByISP[isp.TELE]; got != 3 {
		t.Errorf("TELE transmissions = %d, want 3", got)
	}
	if got := rep.BytesByISP[isp.TELE]; got != 3*1380 {
		t.Errorf("TELE bytes = %d, want %d", got, 3*1380)
	}
	if got := rep.BytesByISP[isp.CNC]; got != 1380 {
		t.Errorf("CNC bytes = %d, want 1380", got)
	}
	// Source excluded from ISP tallies, counted separately.
	if rep.SourceTransmissions != 1 || rep.SourceBytes != 1380 {
		t.Errorf("source tallies = %d/%d", rep.SourceTransmissions, rep.SourceBytes)
	}
	want := float64(3*1380) / float64(4*1380)
	if rep.TrafficLocality != want {
		t.Errorf("TrafficLocality = %f, want %f", rep.TrafficLocality, want)
	}
}

func TestAnalyzeResponseTimes(t *testing.T) {
	rep := Analyze(buildInput())
	tele := rep.DataRT[isp.GroupTELE]
	if tele.Count != 3 {
		t.Fatalf("TELE data RT count = %d, want 3", tele.Count)
	}
	if tele.Mean != 50*time.Millisecond {
		t.Errorf("TELE data RT mean = %v, want 50ms", tele.Mean)
	}
	cnc := rep.DataRT[isp.GroupCNC]
	if cnc.Count != 1 || cnc.Mean != 900*time.Millisecond {
		t.Errorf("CNC data RT = %+v", cnc)
	}
	// List RT: one exchange with teleB at 100ms.
	lrt := rep.ListRT[isp.GroupTELE]
	if lrt.Count != 1 || lrt.Mean != 100*time.Millisecond {
		t.Errorf("TELE list RT = %+v", lrt)
	}
	if len(rep.ListRTSeries[isp.GroupTELE]) != 1 {
		t.Errorf("list RT series = %v", rep.ListRTSeries)
	}
	if rep.UnansweredData != 1 {
		t.Errorf("UnansweredData = %d, want 1 (foreignA)", rep.UnansweredData)
	}
}

func TestAnalyzePeerActivity(t *testing.T) {
	rep := Analyze(buildInput())
	// Peers: teleB (3 req), cncA (1), foreignA (1, unanswered). Source excluded.
	if len(rep.Peers) != 3 {
		t.Fatalf("peers = %d, want 3: %+v", len(rep.Peers), rep.Peers)
	}
	top := rep.Peers[0]
	if top.Addr != teleB || top.Requests != 3 || top.Replies != 3 {
		t.Errorf("top peer = %+v", top)
	}
	if top.RTT != 40*time.Millisecond {
		t.Errorf("top peer RTT = %v, want 40ms (min of 50/60/40)", top.RTT)
	}
	// Connected (data-transferring) peers by ISP: teleB and cncA.
	if rep.ConnectedByISP[isp.TELE] != 1 || rep.ConnectedByISP[isp.CNC] != 1 {
		t.Errorf("ConnectedByISP = %v", rep.ConnectedByISP)
	}
	if rep.ConnectedByISP[isp.Foreign] != 0 {
		t.Errorf("unanswered-only peer counted as connected: %v", rep.ConnectedByISP)
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	rep := Analyze(Input{Resolver: testResolver(), ProbeISP: isp.TELE})
	if rep.TrafficLocality != 0 || rep.PotentialLocality != 0 {
		t.Errorf("empty trace localities = %f/%f", rep.TrafficLocality, rep.PotentialLocality)
	}
	if len(rep.Peers) != 0 {
		t.Errorf("empty trace peers = %v", rep.Peers)
	}
}

func TestUnresolvableMapsToForeign(t *testing.T) {
	unknown := netip.MustParseAddr("203.0.113.7")
	records := []capture.Record{
		{At: time.Second, Dir: capture.Out, Peer: unknown, Type: wire.TDataRequest, Seq: 1},
		{At: 2 * time.Second, Dir: capture.In, Peer: unknown, Type: wire.TDataReply, Seq: 1, Count: 1, Payload: 100},
	}
	in := Input{
		Records:  records,
		Matched:  capture.Match(records, nil),
		Resolver: testResolver(),
		ProbeISP: isp.TELE,
	}
	rep := Analyze(in)
	if rep.TransmissionsByISP[isp.Foreign] != 1 {
		t.Errorf("unresolvable peer not mapped to Foreign: %v", rep.TransmissionsByISP)
	}
}
