package analysis

import "sort"

// sortPeers orders peer activities by request count descending, then address
// ascending, giving the rank order the paper's figures use and a
// deterministic layout for tests.
func sortPeers(peers []PeerActivity) {
	sort.Slice(peers, func(i, j int) bool {
		if peers[i].Requests != peers[j].Requests {
			return peers[i].Requests > peers[j].Requests
		}
		return peers[i].Addr.Less(peers[j].Addr)
	})
}
