package analysis

import (
	"encoding/json"
	"testing"
)

func TestReportMarshalJSON(t *testing.T) {
	rep := Analyze(buildInput())
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}

	// ISP maps must use string keys.
	returned, ok := decoded["returnedByIsp"].(map[string]any)
	if !ok {
		t.Fatalf("returnedByIsp = %T", decoded["returnedByIsp"])
	}
	if returned["TELE"] != float64(2) {
		t.Errorf("returnedByIsp.TELE = %v", returned["TELE"])
	}

	// Source split uses the paper's X_p/X_s labels.
	bySrc, ok := decoded["returnedBySource"].(map[string]any)
	if !ok || bySrc["TELE_p"] == nil {
		t.Errorf("returnedBySource = %v", decoded["returnedBySource"])
	}

	// Response times in seconds.
	dataRT, ok := decoded["dataResponseTimes"].(map[string]any)
	if !ok {
		t.Fatalf("dataResponseTimes = %T", decoded["dataResponseTimes"])
	}
	tele, ok := dataRT["TELE"].(map[string]any)
	if !ok || tele["meanSeconds"] != 0.05 {
		t.Errorf("TELE data RT = %v", dataRT["TELE"])
	}

	// Per-peer detail present.
	peers, ok := decoded["peers"].([]any)
	if !ok || len(peers) != 3 {
		t.Errorf("peers = %v", decoded["peers"])
	}
}
