package analysis

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestSketchEmptyAndEdges(t *testing.T) {
	var s RTSketch
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Errorf("empty sketch: q50=%v mean=%v", s.Quantile(0.5), s.Mean())
	}
	s.Add(100 * time.Millisecond)
	if s.Min != 100*time.Millisecond || s.Max != 100*time.Millisecond {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Quantile(0) != s.Min || s.Quantile(1) != s.Max {
		t.Errorf("q0/q1 = %v/%v", s.Quantile(0), s.Quantile(1))
	}
	// Out-of-range observations land in the clamp bins and stay bounded by
	// the exact Min/Max.
	s.Add(time.Microsecond)
	s.Add(10 * time.Minute)
	if s.Count != 3 || s.Min != time.Microsecond || s.Max != 10*time.Minute {
		t.Errorf("after clamps: count=%d min=%v max=%v", s.Count, s.Min, s.Max)
	}
	if q := s.Quantile(0.99); q > s.Max || q < s.Min {
		t.Errorf("quantile %v escaped [min,max]", q)
	}
}

// TestSketchQuantileAccuracy checks the fixed-centroid estimate against the
// exact order statistic: within one geometric bin (~±21% relative) for
// log-normal-ish response times.
func TestSketchQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var s RTSketch
	var all []time.Duration
	for i := 0; i < 20000; i++ {
		// ~log-normal around 150ms, the shape of simulated response times.
		d := time.Duration(float64(150*time.Millisecond) * math.Exp(rng.NormFloat64()*0.8))
		s.Add(d)
		all = append(all, d)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		exact := all[int(q*float64(len(all)-1))]
		got := s.Quantile(q)
		rel := float64(got-exact) / float64(exact)
		if rel < -0.25 || rel > 0.25 {
			t.Errorf("q%.0f: sketch %v vs exact %v (rel %.2f)", q*100, got, exact, rel)
		}
	}
}

// TestSketchMergeIsLossless: fixed centroids mean a merged sketch equals the
// sketch of the concatenated stream, field for field.
func TestSketchMergeIsLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var a, b, all RTSketch
	for i := 0; i < 5000; i++ {
		d := time.Duration(1 + rng.Intn(int(3*time.Second))) // 1ns..3s
		if i%2 == 0 {
			a.Add(d)
		} else {
			b.Add(d)
		}
		all.Add(d)
	}
	merged := a
	merged.Merge(&b)
	if merged != all {
		t.Errorf("merged sketch differs from single-pass sketch")
	}
	// Merging an empty sketch is a no-op.
	before := merged
	var empty RTSketch
	merged.Merge(&empty)
	merged.Merge(nil)
	if merged != before {
		t.Error("merging empty changed the sketch")
	}
}
