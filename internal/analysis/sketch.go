package analysis

import (
	"math"
	"time"
)

// RTSketch is a bounded, mergeable response-time distribution summary: a
// fixed-centroid sketch in the t-digest family, with centroids pinned to a
// geometric grid rather than adapted to the data so that merging is exact
// (bin-wise addition) and streaming/merged results are bit-identical to a
// single-pass build regardless of shard order.
//
// The grid spans sketchFloor..sketchCeil in sketchBins-2 geometric steps;
// bin 0 collects underflow and the last bin overflow. At 64 bins the ratio
// between adjacent centroids is ~1.21, i.e. quantile estimates carry ~10%
// relative error — ample for response-time distributions spanning four
// orders of magnitude. Exact Count/Sum/Min/Max ride along, so Mean is exact
// and quantiles clamp into the observed range.
type RTSketch struct {
	Count uint64
	Sum   time.Duration
	Min   time.Duration
	Max   time.Duration
	Bins  [sketchBins]uint64
}

const (
	sketchBins  = 64
	sketchFloor = time.Millisecond
	sketchCeil  = 100 * time.Second
)

// sketchStep is the log of the ratio between adjacent bin boundaries.
var sketchStep = math.Log(float64(sketchCeil)/float64(sketchFloor)) / float64(sketchBins-2)

// sketchBin maps a duration to its bin index.
func sketchBin(d time.Duration) int {
	if d < sketchFloor {
		return 0
	}
	if d >= sketchCeil {
		return sketchBins - 1
	}
	i := 1 + int(math.Log(float64(d)/float64(sketchFloor))/sketchStep)
	if i < 1 {
		i = 1
	}
	if i > sketchBins-2 {
		i = sketchBins - 2
	}
	return i
}

// sketchCentroid is the representative duration of a bin: the geometric
// midpoint of its boundaries (half the floor for underflow, the ceiling for
// overflow).
func sketchCentroid(i int) time.Duration {
	switch {
	case i <= 0:
		return sketchFloor / 2
	case i >= sketchBins-1:
		return sketchCeil
	default:
		lo := float64(sketchFloor) * math.Exp(float64(i-1)*sketchStep)
		return time.Duration(lo * math.Exp(sketchStep/2))
	}
}

// Add folds one observation into the sketch.
func (s *RTSketch) Add(d time.Duration) {
	if s.Count == 0 || d < s.Min {
		s.Min = d
	}
	if s.Count == 0 || d > s.Max {
		s.Max = d
	}
	s.Count++
	s.Sum += d
	s.Bins[sketchBin(d)]++
}

// Merge folds another sketch into this one. Because centroids are fixed,
// merging loses nothing: the result equals a sketch built from the
// concatenated observations.
func (s *RTSketch) Merge(o *RTSketch) {
	if o == nil || o.Count == 0 {
		return
	}
	if s.Count == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if s.Count == 0 || o.Max > s.Max {
		s.Max = o.Max
	}
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Bins {
		s.Bins[i] += o.Bins[i]
	}
}

// Mean returns the exact mean (Sum/Count), zero when empty.
func (s *RTSketch) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) as the centroid of the bin
// holding the rank-⌈q·Count⌉ observation, clamped to [Min, Max]. Empty
// sketches return zero.
func (s *RTSketch) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range s.Bins {
		cum += n
		if cum >= rank {
			est := sketchCentroid(i)
			if est < s.Min {
				est = s.Min
			}
			if est > s.Max {
				est = s.Max
			}
			return est
		}
	}
	return s.Max
}
