// Package analysis turns a probe's observed traffic into the paper's
// figures: ISP-grouped returned-address counts, per-source list attribution,
// traffic locality, response-time groups, contribution rank distributions
// with stretched-exponential and Zipf fits, and rank–RTT correlation.
//
// Everything is computed from the probe-side view through the IP→ASN
// resolver, exactly as the paper computed its results from Wireshark
// captures via Team Cymru — never from global simulator state. Two paths
// produce the same Report: the streaming path folds matching outcomes into
// an Aggregate online (bounded memory, the default), and the post-hoc path
// (Analyze) replays a full captured trace through the very same Aggregate,
// so the two are bit-identical by construction.
package analysis

import (
	"net/netip"
	"time"

	"pplivesim/internal/capture"
	"pplivesim/internal/fit"
	"pplivesim/internal/isp"
	"pplivesim/internal/wire"
)

// Resolver maps an address to its ISP category (the Team Cymru step).
// *asnmap.Registry satisfies it.
type Resolver interface {
	ISPOf(addr netip.Addr) (isp.ISP, bool)
}

// Input bundles everything the post-hoc analysis needs about one probe
// trace.
type Input struct {
	Records  []capture.Record
	Matched  capture.Matched
	Resolver Resolver
	// Trackers identifies tracker-server addresses.
	Trackers map[netip.Addr]bool
	// Source is the channel source address; source traffic is reported
	// separately because the paper's peer statistics concern client peers.
	Source netip.Addr
	// Edges lists the scenario's CDN edge caches, whose transmissions are
	// infrastructure offload like the source's — reported separately, never
	// in the peer-locality counters. Empty for pure-P2P traces.
	Edges []netip.Addr
	// ProbeISP is the measuring host's own ISP.
	ProbeISP isp.ISP
}

// ListSource attributes a received peer list: the replier's ISP and whether
// the replier was a tracker server — the "CNC_p"/"CNC_s" split of
// Figures 2-5(b).
type ListSource struct {
	ISP     isp.ISP
	Tracker bool
}

// Label renders the paper's notation, e.g. "TELE_p" or "CNC_s".
func (s ListSource) Label() string {
	suffix := "_p"
	if s.Tracker {
		suffix = "_s"
	}
	return s.ISP.String() + suffix
}

// RTStats summarizes one response-time group.
type RTStats struct {
	Count int
	Mean  time.Duration
}

// PeerActivity aggregates the probe's interaction with one remote peer.
type PeerActivity struct {
	Addr     netip.Addr
	ISP      isp.ISP
	Requests int           // data requests sent to the peer
	Replies  int           // matched data transmissions
	Bytes    uint64        // payload bytes received from the peer
	RTT      time.Duration // min application-level response time (0 if none)
}

// Report is the full per-probe analysis: one of these regenerates every
// panel of the paper's Figures 2-5, 7-18 and Table 1 rows for that probe.
type Report struct {
	ProbeISP isp.ISP

	// Figure (a): returned peer addresses by ISP, duplicates included.
	ReturnedByISP map[isp.ISP]int
	// UniqueListed is the count of distinct addresses across all lists.
	UniqueListed int

	// Figure (b): returned addresses split by list source (X_p / X_s).
	ReturnedBySource map[ListSource]map[isp.ISP]int

	// Figure (c): matched data transmissions and downloaded payload bytes
	// by ISP (regular peers only; the source is tallied separately).
	TransmissionsByISP  map[isp.ISP]uint64
	BytesByISP          map[isp.ISP]uint64
	SourceTransmissions uint64
	SourceBytes         uint64
	// EdgeTransmissions/EdgeBytes tally downloads served by CDN edge caches
	// — the deployment's offload, tallied beside the source and excluded
	// from the per-ISP peer counters above. Zero in pure-P2P scenarios.
	EdgeTransmissions uint64
	EdgeBytes         uint64

	// TrafficLocality is the same-ISP share of downloaded bytes;
	// PotentialLocality the same-ISP share of returned addresses.
	TrafficLocality   float64
	PotentialLocality float64

	// Figures 7-10: peer-list response times grouped TELE/CNC/OTHER.
	ListRT map[isp.Group]RTStats
	// ListRTSeries holds (request time, response time) points per group for
	// scatter plots.
	ListRTSeries map[isp.Group][]RTPoint
	// ListRTSketch holds the bounded quantile sketch of the same
	// response-time population as ListRT (entries exist exactly for groups
	// with samples). Sketch-typed: quantiles are fixed-centroid estimates;
	// Count/Mean/Min/Max are exact.
	ListRTSketch map[isp.Group]*RTSketch

	// Table 1: data-request response times grouped TELE/CNC/OTHER.
	DataRT map[isp.Group]RTStats
	// DataRTSketch is the sketch counterpart of DataRT (see ListRTSketch).
	DataRTSketch map[isp.Group]*RTSketch

	// UnansweredLists / UnansweredData mirror the paper's observation that
	// a non-trivial number of requests go unanswered.
	UnansweredLists int
	UnansweredData  int

	// Peers is every remote client peer the probe exchanged data-plane
	// traffic with: any peer it sent at least one data request to (answered
	// or not) or received a matched transmission from. The channel source is
	// excluded. This is the rank-distribution population of
	// Figures 11-14(b,c) — "data requests made by our host" counts requests
	// whether or not they were answered — and is therefore a superset of the
	// paper's "connected peers".
	Peers []PeerActivity
	// ConnectedByISP counts, per ISP, only peers with at least one matched
	// data transmission (Replies > 0): the paper's "connected peers" of
	// Figures 11-14(a), which concern peers actually involved in data
	// transfer. A peer that was only requested from — never answering —
	// appears in Peers but never here.
	ConnectedByISP map[isp.ISP]int
	// Figures 11-14 rank-distribution fits and top-10% shares.
	SEFit           fit.StretchedExponential
	ZipfFit         fit.Zipf
	TopRequestShare float64 // share of requests to the top 10% of peers
	TopByteShare    float64 // share of bytes from the top 10% of peers

	// Figures 15-18: correlation between log(#requests) and log(RTT).
	RTTCorrelation float64
}

// RTPoint is one response-time observation.
type RTPoint struct {
	At time.Duration // when the request was sent
	RT time.Duration // response time
}

// resolve returns the ISP of an address, mapping unresolvable ones (none
// should occur for simulation traffic) to Foreign, the paper's catch-all.
func resolve(r Resolver, a netip.Addr) isp.ISP {
	if got, ok := r.ISPOf(a); ok {
		return got
	}
	return isp.Foreign
}

// Analyze computes the full report for one captured probe trace — the
// post-hoc path, retained for tracefile analysis (cmd/analyze) and as the
// reference the streaming path is checked against. It replays the matched
// trace through the same Aggregate the streaming path uses, so both paths
// share every accumulation and finalization step.
func Analyze(in Input) *Report {
	agg := NewAggregate(in.Resolver, in.Source, in.ProbeISP)
	agg.SetEdges(in.Edges)

	// Raw outgoing data requests (answered or not), as the paper counts
	// "data requests made by our host".
	for _, rec := range in.Records {
		if rec.Dir == capture.Out && rec.Type == wire.TDataRequest {
			agg.DataRequest(rec.Peer, rec.At)
		}
	}
	for _, ex := range in.Matched.ListExchanges {
		agg.PeerListMatched(ex)
	}
	for _, ex := range in.Matched.TrackerLists {
		agg.TrackerList(ex)
	}
	for _, tx := range in.Matched.Transmissions {
		agg.DataMatched(tx)
	}
	agg.addUnanswered(in.Matched.UnansweredData, in.Matched.UnansweredLists)
	return agg.Report()
}
