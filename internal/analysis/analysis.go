// Package analysis turns a probe's captured trace into the paper's figures:
// ISP-grouped returned-address counts, per-source list attribution, traffic
// locality, response-time groups, contribution rank distributions with
// stretched-exponential and Zipf fits, and rank–RTT correlation.
//
// Everything is computed from the probe-side trace through the IP→ASN
// resolver, exactly as the paper computed its results from Wireshark
// captures via Team Cymru — never from global simulator state.
package analysis

import (
	"math"
	"net/netip"
	"time"

	"pplivesim/internal/capture"
	"pplivesim/internal/fit"
	"pplivesim/internal/isp"
	"pplivesim/internal/wire"
)

// Resolver maps an address to its ISP category (the Team Cymru step).
// *asnmap.Registry satisfies it.
type Resolver interface {
	ISPOf(addr netip.Addr) (isp.ISP, bool)
}

// Input bundles everything the analysis needs about one probe trace.
type Input struct {
	Records  []capture.Record
	Matched  capture.Matched
	Resolver Resolver
	// Trackers identifies tracker-server addresses.
	Trackers map[netip.Addr]bool
	// Source is the channel source address; source traffic is reported
	// separately because the paper's peer statistics concern client peers.
	Source netip.Addr
	// ProbeISP is the measuring host's own ISP.
	ProbeISP isp.ISP
}

// ListSource attributes a received peer list: the replier's ISP and whether
// the replier was a tracker server — the "CNC_p"/"CNC_s" split of
// Figures 2-5(b).
type ListSource struct {
	ISP     isp.ISP
	Tracker bool
}

// Label renders the paper's notation, e.g. "TELE_p" or "CNC_s".
func (s ListSource) Label() string {
	suffix := "_p"
	if s.Tracker {
		suffix = "_s"
	}
	return s.ISP.String() + suffix
}

// RTStats summarizes one response-time group.
type RTStats struct {
	Count int
	Mean  time.Duration
}

// PeerActivity aggregates the probe's interaction with one remote peer.
type PeerActivity struct {
	Addr     netip.Addr
	ISP      isp.ISP
	Requests int           // data requests sent to the peer
	Replies  int           // matched data transmissions
	Bytes    uint64        // payload bytes received from the peer
	RTT      time.Duration // min application-level response time (0 if none)
}

// Report is the full per-probe analysis: one of these regenerates every
// panel of the paper's Figures 2-5, 7-18 and Table 1 rows for that probe.
type Report struct {
	ProbeISP isp.ISP

	// Figure (a): returned peer addresses by ISP, duplicates included.
	ReturnedByISP map[isp.ISP]int
	// UniqueListed is the count of distinct addresses across all lists.
	UniqueListed int

	// Figure (b): returned addresses split by list source (X_p / X_s).
	ReturnedBySource map[ListSource]map[isp.ISP]int

	// Figure (c): matched data transmissions and downloaded payload bytes
	// by ISP (regular peers only; the source is tallied separately).
	TransmissionsByISP  map[isp.ISP]uint64
	BytesByISP          map[isp.ISP]uint64
	SourceTransmissions uint64
	SourceBytes         uint64

	// TrafficLocality is the same-ISP share of downloaded bytes;
	// PotentialLocality the same-ISP share of returned addresses.
	TrafficLocality   float64
	PotentialLocality float64

	// Figures 7-10: peer-list response times grouped TELE/CNC/OTHER.
	ListRT map[isp.Group]RTStats
	// ListRTSeries holds (request time, response time) points per group for
	// scatter plots.
	ListRTSeries map[isp.Group][]RTPoint

	// Table 1: data-request response times grouped TELE/CNC/OTHER.
	DataRT map[isp.Group]RTStats

	// UnansweredLists / UnansweredData mirror the paper's observation that
	// a non-trivial number of requests go unanswered.
	UnansweredLists int
	UnansweredData  int

	// Figures 11-14: per-peer activity (unique connected peers), the rank
	// distribution fits, and the top-10% shares.
	Peers           []PeerActivity
	ConnectedByISP  map[isp.ISP]int
	SEFit           fit.StretchedExponential
	ZipfFit         fit.Zipf
	TopRequestShare float64 // share of requests to the top 10% of peers
	TopByteShare    float64 // share of bytes from the top 10% of peers

	// Figures 15-18: correlation between log(#requests) and log(RTT).
	RTTCorrelation float64
}

// RTPoint is one response-time observation.
type RTPoint struct {
	At time.Duration // when the request was sent
	RT time.Duration // response time
}

// resolve returns the ISP of an address, mapping unresolvable ones (none
// should occur for simulation traffic) to Foreign, the paper's catch-all.
func resolve(r Resolver, a netip.Addr) isp.ISP {
	if got, ok := r.ISPOf(a); ok {
		return got
	}
	return isp.Foreign
}

// Analyze computes the full report for one probe trace.
func Analyze(in Input) *Report {
	rep := &Report{
		ProbeISP:           in.ProbeISP,
		ReturnedByISP:      make(map[isp.ISP]int),
		ReturnedBySource:   make(map[ListSource]map[isp.ISP]int),
		TransmissionsByISP: make(map[isp.ISP]uint64),
		BytesByISP:         make(map[isp.ISP]uint64),
		ListRT:             make(map[isp.Group]RTStats),
		ListRTSeries:       make(map[isp.Group][]RTPoint),
		DataRT:             make(map[isp.Group]RTStats),
		ConnectedByISP:     make(map[isp.ISP]int),
	}

	rep.analyzeLists(in)
	rep.analyzeTraffic(in)
	rep.analyzeResponseTimes(in)
	rep.analyzePeers(in)
	rep.UnansweredLists = in.Matched.UnansweredLists
	rep.UnansweredData = in.Matched.UnansweredData
	return rep
}

// analyzeLists covers Figures (a) and (b): returned addresses by ISP, with
// duplicates, attributed to their list source.
func (rep *Report) analyzeLists(in Input) {
	unique := make(map[netip.Addr]bool)
	addList := func(src ListSource, addrs []netip.Addr) {
		byISP := rep.ReturnedBySource[src]
		if byISP == nil {
			byISP = make(map[isp.ISP]int)
			rep.ReturnedBySource[src] = byISP
		}
		for _, a := range addrs {
			cat := resolve(in.Resolver, a)
			rep.ReturnedByISP[cat]++
			byISP[cat]++
			unique[a] = true
		}
	}
	for _, ex := range in.Matched.ListExchanges {
		addList(ListSource{ISP: resolve(in.Resolver, ex.Peer)}, ex.Addrs)
	}
	for _, ex := range in.Matched.TrackerLists {
		addList(ListSource{ISP: resolve(in.Resolver, ex.Peer), Tracker: true}, ex.Addrs)
	}
	rep.UniqueListed = len(unique)

	total := 0
	for _, n := range rep.ReturnedByISP {
		total += n
	}
	if total > 0 {
		rep.PotentialLocality = float64(rep.ReturnedByISP[in.ProbeISP]) / float64(total)
	}
}

// analyzeTraffic covers Figure (c): matched transmissions and bytes by ISP.
func (rep *Report) analyzeTraffic(in Input) {
	for _, tx := range in.Matched.Transmissions {
		if tx.Peer == in.Source {
			rep.SourceTransmissions++
			rep.SourceBytes += uint64(tx.Bytes)
			continue
		}
		cat := resolve(in.Resolver, tx.Peer)
		rep.TransmissionsByISP[cat]++
		rep.BytesByISP[cat] += uint64(tx.Bytes)
	}
	var total uint64
	for _, b := range rep.BytesByISP {
		total += b
	}
	if total > 0 {
		rep.TrafficLocality = float64(rep.BytesByISP[in.ProbeISP]) / float64(total)
	}
}

// analyzeResponseTimes covers Figures 7-10 and Table 1.
func (rep *Report) analyzeResponseTimes(in Input) {
	listSum := make(map[isp.Group]time.Duration)
	for _, ex := range in.Matched.ListExchanges {
		g := isp.GroupOf(resolve(in.Resolver, ex.Peer))
		st := rep.ListRT[g]
		st.Count++
		listSum[g] += ex.ResponseTime()
		rep.ListRT[g] = st
		rep.ListRTSeries[g] = append(rep.ListRTSeries[g], RTPoint{At: ex.ReqAt, RT: ex.ResponseTime()})
	}
	for g, st := range rep.ListRT {
		if st.Count > 0 {
			st.Mean = listSum[g] / time.Duration(st.Count)
			rep.ListRT[g] = st
		}
	}

	dataSum := make(map[isp.Group]time.Duration)
	for _, tx := range in.Matched.Transmissions {
		if tx.Peer == in.Source {
			continue
		}
		g := isp.GroupOf(resolve(in.Resolver, tx.Peer))
		st := rep.DataRT[g]
		st.Count++
		dataSum[g] += tx.ResponseTime()
		rep.DataRT[g] = st
	}
	for g, st := range rep.DataRT {
		if st.Count > 0 {
			st.Mean = dataSum[g] / time.Duration(st.Count)
			rep.DataRT[g] = st
		}
	}
}

// analyzePeers covers Figures 11-14 and 15-18: per-peer activity, rank
// distribution fits, contribution shares, and the rank–RTT correlation.
func (rep *Report) analyzePeers(in Input) {
	acts := make(map[netip.Addr]*PeerActivity)
	get := func(a netip.Addr) *PeerActivity {
		act, ok := acts[a]
		if !ok {
			act = &PeerActivity{Addr: a, ISP: resolve(in.Resolver, a)}
			acts[a] = act
		}
		return act
	}

	// Requests counted from raw outgoing records (answered or not), as the
	// paper counts "data requests made by our host".
	for _, rec := range in.Records {
		if rec.Dir != capture.Out || rec.Type != wire.TDataRequest || rec.Peer == in.Source {
			continue
		}
		get(rec.Peer).Requests++
	}
	for _, tx := range in.Matched.Transmissions {
		if tx.Peer == in.Source {
			continue
		}
		act := get(tx.Peer)
		act.Replies++
		act.Bytes += uint64(tx.Bytes)
	}
	for addr, rtt := range capture.RTTEstimates(in.Matched.Transmissions) {
		if addr == in.Source {
			continue
		}
		get(addr).RTT = rtt
	}

	// "Connected peers" in the paper's Figures 11-14(a) are peers involved
	// in data transmissions.
	for _, act := range acts {
		if act.Replies == 0 && act.Requests == 0 {
			continue
		}
		rep.Peers = append(rep.Peers, *act)
	}
	// Deterministic order: by requests descending, address ascending.
	sortPeers(rep.Peers)
	for _, act := range rep.Peers {
		if act.Replies > 0 {
			rep.ConnectedByISP[act.ISP]++
		}
	}

	// Rank distribution of request counts.
	var requests, bytes []float64
	for _, act := range rep.Peers {
		if act.Requests > 0 {
			requests = append(requests, float64(act.Requests))
		}
		if act.Bytes > 0 {
			bytes = append(bytes, float64(act.Bytes))
		}
	}
	ranked := fit.Ranked(requests)
	if se, err := fit.FitStretchedExponential(ranked); err == nil {
		rep.SEFit = se
	}
	if z, err := fit.FitZipf(ranked); err == nil {
		rep.ZipfFit = z
	}
	rep.TopRequestShare = fit.TopShare(requests, 0.1)
	rep.TopByteShare = fit.TopShare(bytes, 0.1)

	// Rank–RTT correlation: log(#requests) vs log(RTT), peers with both.
	var lx, ly []float64
	for _, act := range rep.Peers {
		if act.Requests > 0 && act.RTT > 0 {
			lx = append(lx, math.Log(float64(act.Requests)))
			ly = append(ly, math.Log(act.RTT.Seconds()))
		}
	}
	if r, err := fit.Pearson(lx, ly); err == nil {
		rep.RTTCorrelation = r
	}
}
