package analysis

import (
	"math/rand"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"pplivesim/internal/capture"
	"pplivesim/internal/isp"
	"pplivesim/internal/wire"
)

// The telemetry benchmarks compare the two measurement pipelines end to end
// on the same synthetic paper-scale probe trace:
//
//   - full capture: Recorder → Match → Analyze (the pre-streaming pipeline,
//     now opt-in), whose live state grows with the number of datagrams;
//   - streaming: capture.Aggregator feeding an analysis.Aggregate online,
//     whose live state grows with the number of distinct peers.
//
// Besides ns/op and allocs/op, both report a "live-heap-B" metric: the heap
// bytes still reachable from the pipeline's retained state after a full GC,
// measured once before the timed loop. `make bench-telemetry` harvests all
// of it into BENCH_telemetry.json.

const telemetryBenchRecords = 600_000 // ~2h probe at the paper's datagram rate

var telemetryTracker = netip.AddrFrom4([4]byte{61, 128, 0, 1})

// telemetryPeers allocates the synthetic swarm: nPeers addresses spread over
// the paper's ISP categories plus a source and a tracker, all resolvable.
func telemetryPeers(nPeers int) ([]netip.Addr, stubResolver) {
	resolver := stubResolver{telemetryTracker: isp.TELE, srcA: isp.TELE}
	groups := []isp.ISP{isp.TELE, isp.TELE, isp.TELE, isp.CNC, isp.CNC, isp.CER, isp.OtherCN, isp.Foreign}
	peers := make([]netip.Addr, nPeers)
	for i := range peers {
		p := netip.AddrFrom4([4]byte{58, 32, byte(10 + i/250), byte(1 + i%250)})
		peers[i] = p
		resolver[p] = groups[i%len(groups)]
	}
	return peers, resolver
}

// replayTelemetryTrace streams a deterministic synthetic probe trace of n
// datagrams into emit, shaped like a real capture: mostly data request/reply
// pairs, a gossip plane with ~30-address peer lists, periodic tracker
// exchanges, and a tail of requests that never get answered.
func replayTelemetryTrace(n int, peers []netip.Addr, emit func(at time.Duration, dir capture.Direction, peer netip.Addr, msg wire.Message, size int)) {
	rng := rand.New(rand.NewSource(1009))
	now := time.Duration(0)
	listBuf := make([]netip.Addr, 30)
	var seq uint64
	for i := 0; i < n; {
		now += time.Duration(1+rng.Intn(20)) * time.Millisecond
		p := peers[rng.Intn(len(peers))]
		switch roll := rng.Float64(); {
		case roll < 0.80: // data plane
			seq++
			emit(now, capture.Out, p, &wire.DataRequest{Seq: seq, Count: 1}, 64)
			i++
			if rng.Float64() < 0.9 {
				rt := time.Duration(20+rng.Intn(400)) * time.Millisecond
				emit(now+rt, capture.In, p, &wire.DataReply{Seq: seq, Count: 1, PieceLen: 1380}, 1420)
				i++
			}
		case roll < 0.95: // gossip plane
			emit(now, capture.Out, p, &wire.PeerListRequest{}, 48)
			i++
			if rng.Float64() < 0.8 {
				for j := range listBuf {
					listBuf[j] = peers[rng.Intn(len(peers))]
				}
				rt := time.Duration(15+rng.Intn(300)) * time.Millisecond
				emit(now+rt, capture.In, p, &wire.PeerListReply{Peers: listBuf}, 48+len(listBuf)*4)
				i++
			}
		default: // tracker exchange
			emit(now, capture.Out, telemetryTracker, &wire.TrackerQuery{}, 32)
			i++
			for j := range listBuf {
				listBuf[j] = peers[rng.Intn(len(peers))]
			}
			rt := time.Duration(10+rng.Intn(100)) * time.Millisecond
			emit(now+rt, capture.In, telemetryTracker, &wire.TrackerResponse{Peers: listBuf}, 32+len(listBuf)*4)
			i++
		}
	}
}

// Note: replayTelemetryTrace emits each reply at request-time+rt while later
// requests may carry earlier timestamps, so the stream is only approximately
// time-ordered. Both pipelines see the identical sequence, and neither
// depends on global ordering for the aggregate totals measured here (the
// Aggregator's TTL far exceeds the jitter), so the comparison is fair.

// runFullCapture runs the opt-in pipeline: record every datagram, then match
// and analyze post hoc. It returns everything the pipeline keeps alive.
func runFullCapture(n int, peers []netip.Addr, resolver stubResolver) (*capture.Recorder, *Report) {
	rec := capture.NewRecorder(srcA)
	replayTelemetryTrace(n, peers, rec.Observe)
	rep := Analyze(Input{
		Records:  rec.Records(),
		Matched:  capture.Match(rec.Records(), map[netip.Addr]bool{telemetryTracker: true}),
		Resolver: resolver,
		Trackers: map[netip.Addr]bool{telemetryTracker: true},
		Source:   srcA,
		ProbeISP: isp.TELE,
	})
	return rec, rep
}

// runStreaming runs the default pipeline: the online matcher feeds the
// aggregate during the replay and no trace is retained.
func runStreaming(n int, peers []netip.Addr, resolver stubResolver) (*Aggregate, *Report) {
	agg := NewAggregate(resolver, srcA, isp.TELE)
	matcher := capture.NewAggregator(map[netip.Addr]bool{telemetryTracker: true}, capture.AggregatorConfig{}, agg)
	replayTelemetryTrace(n, peers, matcher.Observe)
	matcher.Close()
	return agg, agg.Report()
}

// liveHeapAfter measures the heap bytes kept alive by fn's return value:
// heap-in-use delta across the call, after forcing full collections on both
// sides. Returns the retained state so callers keep it reachable.
func liveHeapAfter[T any](fn func() T) (T, uint64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)
	state := fn()
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	live := uint64(0)
	if after.HeapAlloc > before.HeapAlloc {
		live = after.HeapAlloc - before.HeapAlloc
	}
	return state, live
}

func benchTelemetry(b *testing.B, run func(n int, peers []netip.Addr, resolver stubResolver) (any, *Report)) {
	peers, resolver := telemetryPeers(600)
	type retained struct {
		state any
		rep   *Report
	}
	st, live := liveHeapAfter(func() retained {
		s, rep := run(telemetryBenchRecords, peers, resolver)
		return retained{s, rep}
	})
	runtime.KeepAlive(st)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, rep := run(telemetryBenchRecords, peers, resolver)
		runtime.KeepAlive(s)
		runtime.KeepAlive(rep)
	}
	// After the loop: ResetTimer would have deleted a metric reported earlier.
	b.ReportMetric(float64(live), "live-heap-B")
}

func BenchmarkTelemetryFullCapture(b *testing.B) {
	benchTelemetry(b, func(n int, peers []netip.Addr, resolver stubResolver) (any, *Report) {
		rec, rep := runFullCapture(n, peers, resolver)
		return rec, rep
	})
}

func BenchmarkTelemetryStreaming(b *testing.B) {
	benchTelemetry(b, func(n int, peers []netip.Addr, resolver stubResolver) (any, *Report) {
		agg, rep := runStreaming(n, peers, resolver)
		return agg, rep
	})
}

// TestStreamingTelemetryMemoryFootprint is the acceptance check behind the
// benchmarks: on a paper-scale trace the streaming pipeline's retained state
// must be at least 10x smaller than the full-capture pipeline's, because it
// scales with peers rather than datagrams. It also checks both pipelines
// produce the same headline numbers on this trace, so the memory comparison
// is between equivalent measurements.
func TestStreamingTelemetryMemoryFootprint(t *testing.T) {
	n := 200_000
	if testing.Short() {
		n = 60_000
	}
	peers, resolver := telemetryPeers(600)

	type full struct {
		rec *capture.Recorder
		rep *Report
	}
	fc, fullLive := liveHeapAfter(func() full {
		rec, rep := runFullCapture(n, peers, resolver)
		return full{rec, rep}
	})
	type streamed struct {
		agg *Aggregate
		rep *Report
	}
	st, streamLive := liveHeapAfter(func() streamed {
		agg, rep := runStreaming(n, peers, resolver)
		return streamed{agg, rep}
	})

	if fc.rep.TrafficLocality != st.rep.TrafficLocality || fc.rep.PotentialLocality != st.rep.PotentialLocality {
		t.Errorf("pipelines disagree: full locality %.4f/%.4f vs streaming %.4f/%.4f",
			fc.rep.TrafficLocality, fc.rep.PotentialLocality, st.rep.TrafficLocality, st.rep.PotentialLocality)
	}
	if len(fc.rep.Peers) != len(st.rep.Peers) {
		t.Errorf("pipelines disagree on peer count: %d vs %d", len(fc.rep.Peers), len(st.rep.Peers))
	}

	ratio := float64(fullLive) / float64(streamLive)
	t.Logf("telemetry-bench: records=%d full_capture_bytes=%d streaming_bytes=%d ratio=%.1f",
		n, fullLive, streamLive, ratio)
	if ratio < 10 {
		t.Errorf("streaming retained %d B vs full capture %d B (%.1fx), want >= 10x reduction",
			streamLive, fullLive, ratio)
	}
	runtime.KeepAlive(fc)
	runtime.KeepAlive(st)
}
