package analysis

import (
	"time"

	"pplivesim/internal/isp"
)

// Resilience metrics for chaos runs: how deep playback continuity dips under
// an injected fault, how long the dip lasts, how quickly the swarm recovers,
// and how the probe's per-ISP traffic mix shifts while the fault is active.
// The last one is the paper's question turned around: locality emerges from
// benign dynamics (§3), and a fault window measures how much of it the swarm
// trades away to keep playback alive.

// ResilienceSample is one periodic snapshot of a probe's playback and traffic
// state. Counters are cumulative since the probe joined, so interval deltas
// between consecutive samples recover per-interval rates.
type ResilienceSample struct {
	At         time.Duration
	PlayedOK   uint64
	PlayedMiss uint64
	// BytesByISP is the cumulative data payload downloaded from client peers,
	// per peer ISP (the probe Aggregate's byte tally at sample time).
	BytesByISP map[isp.ISP]uint64
}

// Continuity returns the cumulative playback continuity at the sample.
func (s ResilienceSample) Continuity() float64 {
	total := s.PlayedOK + s.PlayedMiss
	if total == 0 {
		return 1
	}
	return float64(s.PlayedOK) / float64(total)
}

// FaultWindow is one injected fault's active interval. Instantaneous faults
// (peer kills) have End == Start.
type FaultWindow struct {
	Label string
	Start time.Duration
	End   time.Duration
}

// WindowResilience is the per-fault-window slice of a resilience report.
type WindowResilience struct {
	Label string
	Start time.Duration
	End   time.Duration

	// MinContinuity is the lowest interval continuity observed from the fault
	// onset until recovery (or the end of the trace); DipDepth is how far it
	// fell below the target (0 when the target was never breached).
	MinContinuity float64
	DipDepth      float64
	// DipDuration is the total sampled time below target between onset and
	// recovery.
	DipDuration time.Duration
	// Recovered reports whether continuity came back to the target and stayed
	// there (recoverWindow consecutive intervals); TimeToRecover is measured
	// from the fault onset to the start of that sustained run. A trace that
	// never dipped recovers immediately (TimeToRecover ≈ 0).
	Recovered     bool
	TimeToRecover time.Duration

	// ShareBefore/ShareDuring are the per-ISP shares of client-peer download
	// bytes in the equally long intervals before and after the fault onset;
	// ShareShift is the total-variation distance between them (0 = unchanged
	// mix, 1 = completely displaced). Windows shorter than a minute observe a
	// one-minute span so kills still produce a meaningful delta.
	ShareBefore map[isp.ISP]float64
	ShareDuring map[isp.ISP]float64
	ShareShift  float64
}

// ResilienceReport is the full resilience analysis of one probe's samples.
type ResilienceReport struct {
	Target  float64
	Windows []WindowResilience
}

// recoverWindow is how many consecutive at-or-above-target intervals count as
// sustained recovery.
const recoverWindow = 3

// minShiftSpan is the minimum observation span for the traffic-shift
// before/during comparison.
const minShiftSpan = time.Minute

// ComputeResilience evaluates each fault window against the probe's sample
// series. target is the continuity level counted as healthy (e.g. 0.95).
func ComputeResilience(samples []ResilienceSample, windows []FaultWindow, target float64) *ResilienceReport {
	rep := &ResilienceReport{Target: target}
	for _, w := range windows {
		rep.Windows = append(rep.Windows, windowResilience(samples, w, target))
	}
	return rep
}

// intervalContinuity returns the continuity of the interval ending at
// samples[i], from the counter deltas against samples[i-1].
func intervalContinuity(samples []ResilienceSample, i int) float64 {
	ok := samples[i].PlayedOK - samples[i-1].PlayedOK
	miss := samples[i].PlayedMiss - samples[i-1].PlayedMiss
	if ok+miss == 0 {
		return 1
	}
	return float64(ok) / float64(ok+miss)
}

func windowResilience(samples []ResilienceSample, w FaultWindow, target float64) WindowResilience {
	out := WindowResilience{Label: w.Label, Start: w.Start, End: w.End, MinContinuity: 1}

	// Walk intervals whose end falls after the fault onset, tracking the
	// minimum and the below-target time until a sustained recovery run. The
	// dip usually lags the onset (buffered pieces play out first), so
	// recovery only counts once the target has actually been breached — the
	// healthy lead-in must not masquerade as an instant recovery.
	dipped := false
	run := 0
	runStart := time.Duration(-1)
	for i := 1; i < len(samples) && !out.Recovered; i++ {
		if samples[i].At <= w.Start {
			continue
		}
		c := intervalContinuity(samples, i)
		if c < out.MinContinuity {
			out.MinContinuity = c
		}
		if c < target {
			dipped = true
			run = 0
			out.DipDuration += samples[i].At - samples[i-1].At
			continue
		}
		if !dipped {
			continue
		}
		if run == 0 {
			runStart = samples[i-1].At
		}
		run++
		if run >= recoverWindow {
			out.Recovered = true
			out.TimeToRecover = runStart - w.Start
		}
	}
	if !dipped {
		// The fault never breached the target: the swarm absorbed it.
		out.Recovered = true
		out.TimeToRecover = 0
	}
	if d := target - out.MinContinuity; d > 0 {
		out.DipDepth = d
	}

	// Traffic mix before vs during: cumulative byte deltas over equally long
	// spans on each side of the onset.
	span := w.End - w.Start
	if span < minShiftSpan {
		span = minShiftSpan
	}
	before := bytesBetween(samples, w.Start-span, w.Start)
	during := bytesBetween(samples, w.Start, w.Start+span)
	out.ShareBefore = shares(before)
	out.ShareDuring = shares(during)
	if len(out.ShareBefore) > 0 && len(out.ShareDuring) > 0 {
		tv := 0.0
		for _, cat := range isp.All() {
			d := out.ShareDuring[cat] - out.ShareBefore[cat]
			if d < 0 {
				d = -d
			}
			tv += d
		}
		out.ShareShift = tv / 2
	}
	return out
}

// sampleAtOrBefore returns the last sample with At <= t, or nil.
func sampleAtOrBefore(samples []ResilienceSample, t time.Duration) *ResilienceSample {
	var found *ResilienceSample
	for i := range samples {
		if samples[i].At > t {
			break
		}
		found = &samples[i]
	}
	return found
}

// bytesBetween returns per-ISP byte deltas between the samples bracketing
// [from, to], nil when the series does not cover the span.
func bytesBetween(samples []ResilienceSample, from, to time.Duration) map[isp.ISP]uint64 {
	a := sampleAtOrBefore(samples, from)
	b := sampleAtOrBefore(samples, to)
	if a == nil || b == nil || a == b {
		return nil
	}
	out := make(map[isp.ISP]uint64)
	for cat, n := range b.BytesByISP {
		if d := n - a.BytesByISP[cat]; d > 0 {
			out[cat] = d
		}
	}
	return out
}

// shares normalizes per-ISP byte counts to fractions; nil in → nil out.
func shares(bytes map[isp.ISP]uint64) map[isp.ISP]float64 {
	if len(bytes) == 0 {
		return nil
	}
	var total uint64
	for _, n := range bytes {
		total += n
	}
	if total == 0 {
		return nil
	}
	out := make(map[isp.ISP]float64, len(bytes))
	for cat, n := range bytes {
		out[cat] = float64(n) / float64(total)
	}
	return out
}
