package ipam

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestParsePrefix(t *testing.T) {
	tests := []struct {
		cidr    string
		wantErr bool
	}{
		{"58.32.0.0/11", false},
		{"10.0.0.0/8", false},
		{"192.168.1.0/24", false},
		{"0.0.0.0/0", false},
		{"2001:db8::/32", true},
		{"not-a-prefix", true},
		{"1.2.3.4/33", true},
	}
	for _, tt := range tests {
		_, err := ParsePrefix(tt.cidr)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParsePrefix(%q) error = %v, wantErr %v", tt.cidr, err, tt.wantErr)
		}
	}
}

func TestPrefixMasked(t *testing.T) {
	p, err := ParsePrefix("10.1.2.3/8")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Addr().String(); got != "10.0.0.0" {
		t.Errorf("Addr() = %s, want masked 10.0.0.0", got)
	}
	if p.Size() != 1<<24 {
		t.Errorf("Size() = %d, want 2^24", p.Size())
	}
}

func TestPoolAllocUniqueAndContained(t *testing.T) {
	pre := MustParsePrefix("192.168.0.0/28") // 16 addrs, 14 usable
	pool := NewPool(pre)
	seen := map[netip.Addr]bool{}
	for i := 0; i < 14; i++ {
		a, err := pool.Alloc()
		if err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
		if seen[a] {
			t.Fatalf("duplicate address %s", a)
		}
		seen[a] = true
		if !pre.Contains(a) {
			t.Fatalf("address %s outside prefix", a)
		}
		if a == pre.Addr() {
			t.Fatalf("allocated network address %s", a)
		}
	}
	if _, err := pool.Alloc(); err != ErrExhausted {
		t.Errorf("Alloc after exhaustion = %v, want ErrExhausted", err)
	}
}

func TestPoolSpansPrefixes(t *testing.T) {
	p1 := MustParsePrefix("10.0.0.0/30") // 2 usable
	p2 := MustParsePrefix("10.0.1.0/30") // 2 usable
	pool := NewPool(p1, p2)
	if got := pool.Remaining(); got != 4 {
		t.Fatalf("Remaining() = %d, want 4", got)
	}
	var addrs []netip.Addr
	for {
		a, err := pool.Alloc()
		if err != nil {
			break
		}
		addrs = append(addrs, a)
	}
	if len(addrs) != 4 {
		t.Fatalf("allocated %d addresses, want 4", len(addrs))
	}
	if !p1.Contains(addrs[0]) || !p2.Contains(addrs[3]) {
		t.Errorf("allocation did not span prefixes in order: %v", addrs)
	}
	if got := pool.Remaining(); got != 0 {
		t.Errorf("Remaining() = %d after exhaustion, want 0", got)
	}
}

func TestTrieLongestPrefixMatch(t *testing.T) {
	tr := NewTrie()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(MustParsePrefix("10.1.0.0/16"), 2)
	tr.Insert(MustParsePrefix("10.1.2.0/24"), 3)

	tests := []struct {
		addr  string
		want  int
		found bool
	}{
		{"10.9.9.9", 1, true},
		{"10.1.9.9", 2, true},
		{"10.1.2.9", 3, true},
		{"11.0.0.1", 0, false},
	}
	for _, tt := range tests {
		got, ok := tr.Lookup(netip.MustParseAddr(tt.addr))
		if ok != tt.found || (ok && got != tt.want) {
			t.Errorf("Lookup(%s) = (%d,%v), want (%d,%v)", tt.addr, got, ok, tt.want, tt.found)
		}
	}
	if tr.Len() != 3 {
		t.Errorf("Len() = %d, want 3", tr.Len())
	}
}

func TestTrieReplaceExact(t *testing.T) {
	tr := NewTrie()
	p := MustParsePrefix("172.16.0.0/12")
	tr.Insert(p, 1)
	tr.Insert(p, 9)
	if tr.Len() != 1 {
		t.Errorf("Len() = %d after replacing, want 1", tr.Len())
	}
	got, ok := tr.Lookup(netip.MustParseAddr("172.16.5.5"))
	if !ok || got != 9 {
		t.Errorf("Lookup = (%d,%v), want (9,true)", got, ok)
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	tr := NewTrie()
	tr.Insert(MustParsePrefix("0.0.0.0/0"), 42)
	got, ok := tr.Lookup(netip.MustParseAddr("8.8.8.8"))
	if !ok || got != 42 {
		t.Errorf("default route Lookup = (%d,%v), want (42,true)", got, ok)
	}
}

func TestTrieRejectsIPv6(t *testing.T) {
	tr := NewTrie()
	tr.Insert(MustParsePrefix("0.0.0.0/0"), 1)
	if _, ok := tr.Lookup(netip.MustParseAddr("::1")); ok {
		t.Error("IPv6 lookup unexpectedly succeeded")
	}
}

// Property: every address allocated from a pool built over a prefix resolves
// back to that prefix's label via the trie.
func TestPropertyAllocLookupRoundTrip(t *testing.T) {
	f := func(octet uint8, bits uint8) bool {
		b := int(bits%9) + 20 // /20../28
		pre, err := ParsePrefix(netip.AddrFrom4([4]byte{octet | 1, 0, 0, 0}).String() + "/" + itoa(b))
		if err != nil {
			return true
		}
		tr := NewTrie()
		tr.Insert(pre, 7)
		pool := NewPool(pre)
		for i := 0; i < 10; i++ {
			a, err := pool.Alloc()
			if err != nil {
				return true
			}
			if got, ok := tr.Lookup(a); !ok || got != 7 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Property: trie lookup agrees with linear scan of inserted prefixes.
func TestPropertyTrieMatchesLinearScan(t *testing.T) {
	prefixes := []Prefix{
		MustParsePrefix("58.32.0.0/11"),
		MustParsePrefix("60.0.0.0/11"),
		MustParsePrefix("59.64.0.0/12"),
		MustParsePrefix("58.32.0.0/16"),
		MustParsePrefix("0.0.0.0/1"),
	}
	tr := NewTrie()
	for i, p := range prefixes {
		tr.Insert(p, i)
	}
	linear := func(a netip.Addr) (int, bool) {
		best, bestBits, found := 0, -1, false
		for i, p := range prefixes {
			if p.Contains(a) && p.Bits() > bestBits {
				best, bestBits, found = i, p.Bits(), true
			}
		}
		return best, found
	}
	f := func(b [4]byte) bool {
		a := netip.AddrFrom4(b)
		g1, ok1 := tr.Lookup(a)
		g2, ok2 := linear(a)
		return ok1 == ok2 && (!ok1 || g1 == g2)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
