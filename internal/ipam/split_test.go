package ipam

import (
	"net/netip"
	"testing"
)

func TestPrefixSplit(t *testing.T) {
	p := MustParsePrefix("58.32.0.0/11")
	lo, hi, ok := p.Split()
	if !ok {
		t.Fatalf("Split(%v) not ok", p)
	}
	if got, want := lo.String(), "58.32.0.0/12"; got != want {
		t.Errorf("lo = %s, want %s", got, want)
	}
	if got, want := hi.String(), "58.48.0.0/12"; got != want {
		t.Errorf("hi = %s, want %s", got, want)
	}
	if lo.Size()+hi.Size() != p.Size() {
		t.Errorf("halves cover %d addresses, parent has %d", lo.Size()+hi.Size(), p.Size())
	}
	// Every address is in exactly one half.
	for _, s := range []string{"58.32.0.0", "58.47.255.255", "58.48.0.0", "58.63.255.255"} {
		a := netip.MustParseAddr(s)
		inLo, inHi := lo.Contains(a), hi.Contains(a)
		if inLo == inHi {
			t.Errorf("addr %s: inLo=%v inHi=%v, want exactly one", s, inLo, inHi)
		}
	}
	if _, _, ok := MustParsePrefix("1.2.3.4/32").Split(); ok {
		t.Error("Split of /32 should not be ok")
	}
}

func TestCarveTail(t *testing.T) {
	in := []Prefix{
		MustParsePrefix("58.32.0.0/11"),
		MustParsePrefix("61.128.0.0/10"),
	}
	main, tail, ok := CarveTail(in, 24)
	if !ok {
		t.Fatal("CarveTail not ok")
	}
	if got, want := tail.String(), "61.191.255.0/24"; got != want {
		t.Errorf("tail = %s, want %s", got, want)
	}
	// The main prefixes plus the tail must cover exactly the input space.
	var total uint64
	for _, p := range main {
		total += p.Size()
	}
	total += tail.Size()
	var want uint64
	for _, p := range in {
		want += p.Size()
	}
	if total != want {
		t.Errorf("main+tail cover %d addresses, input has %d", total, want)
	}
	// The tail must be disjoint from every main prefix.
	for _, p := range main {
		if p.Contains(tail.Addr()) || tail.Contains(p.Addr()) {
			t.Errorf("main prefix %s overlaps tail %s", p, tail)
		}
	}
	// Untouched prefixes pass through verbatim.
	if main[0] != in[0] {
		t.Errorf("main[0] = %s, want %s", main[0], in[0])
	}

	if _, _, ok := CarveTail(nil, 24); ok {
		t.Error("CarveTail(nil) should not be ok")
	}
	if _, _, ok := CarveTail([]Prefix{MustParsePrefix("1.2.3.0/30")}, 24); ok {
		t.Error("CarveTail of a /30 into a /24 should not be ok")
	}
}

// telePrefixes mirrors the asnmap synthetic TELE plan — the list the sharded
// world actually splits.
func telePrefixes() []Prefix {
	return []Prefix{
		MustParsePrefix("58.32.0.0/11"),
		MustParsePrefix("114.80.0.0/12"),
		MustParsePrefix("222.64.0.0/11"),
		MustParsePrefix("61.128.0.0/10"),
	}
}

func TestSplitEvenly(t *testing.T) {
	in := telePrefixes()
	var inTotal uint64
	for _, p := range in {
		inTotal += p.Size()
	}
	for k := 1; k <= 9; k++ {
		groups := SplitEvenly(in, k)
		if len(groups) != k {
			t.Fatalf("k=%d: got %d groups", k, len(groups))
		}
		var total uint64
		var minSz, maxSz uint64
		for i, g := range groups {
			if len(g) == 0 {
				t.Fatalf("k=%d: group %d empty", k, i)
			}
			var sz uint64
			for _, p := range g {
				sz += p.Size()
			}
			total += sz
			if i == 0 || sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if total != inTotal {
			t.Errorf("k=%d: groups cover %d addresses, input has %d", k, total, inTotal)
		}
		// Rough balance: the largest group holds at most 2x the smallest.
		// (Binary splitting can't do better in general.)
		if maxSz > 2*minSz {
			t.Errorf("k=%d: group sizes unbalanced: min=%d max=%d", k, minSz, maxSz)
		}
	}
}

func TestSplitEvenlyDeterministic(t *testing.T) {
	a := SplitEvenly(telePrefixes(), 7)
	b := SplitEvenly(telePrefixes(), 7)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("group %d: len %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("group %d[%d]: %s vs %s", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestSplitEvenlyDisjoint(t *testing.T) {
	groups := SplitEvenly(telePrefixes(), 7)
	var all []Prefix
	for _, g := range groups {
		all = append(all, g...)
	}
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			if all[i].Contains(all[j].Addr()) || all[j].Contains(all[i].Addr()) {
				t.Errorf("prefixes %s and %s overlap", all[i], all[j])
			}
		}
	}
}
