// Package ipam manages a synthetic IPv4 address space.
//
// It provides CIDR prefix parsing, sequential allocation of unique host
// addresses out of registered prefixes, and a binary prefix trie for
// longest-prefix-match lookups. The asnmap package builds its IP→ASN
// registry on top of this, mirroring how the paper resolved captured peer
// addresses to ISPs through Team Cymru's prefix database.
package ipam

import (
	"fmt"
	"net/netip"
)

// Prefix is a parsed IPv4 CIDR block.
type Prefix struct {
	p netip.Prefix
}

// ParsePrefix parses an IPv4 CIDR such as "58.32.0.0/11".
func ParsePrefix(cidr string) (Prefix, error) {
	p, err := netip.ParsePrefix(cidr)
	if err != nil {
		return Prefix{}, fmt.Errorf("parse prefix %q: %w", cidr, err)
	}
	if !p.Addr().Is4() {
		return Prefix{}, fmt.Errorf("prefix %q: only IPv4 is supported", cidr)
	}
	return Prefix{p: p.Masked()}, nil
}

// MustParsePrefix is ParsePrefix for static tables; it panics on error.
func MustParsePrefix(cidr string) Prefix {
	p, err := ParsePrefix(cidr)
	if err != nil {
		panic(err)
	}
	return p
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr netip.Addr) bool { return p.p.Contains(addr) }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return p.p.Bits() }

// Addr returns the network address of the prefix.
func (p Prefix) Addr() netip.Addr { return p.p.Addr() }

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 { return 1 << (32 - uint(p.p.Bits())) }

// String returns the CIDR form.
func (p Prefix) String() string { return p.p.String() }

// Split divides the prefix into its two /bits+1 halves. ok is false when the
// prefix is a single host (/32) and cannot be split.
func (p Prefix) Split() (lo, hi Prefix, ok bool) {
	bits := p.p.Bits()
	if bits >= 32 {
		return Prefix{}, Prefix{}, false
	}
	base := addrToU32(p.p.Addr())
	half := uint32(1) << (31 - uint(bits))
	lo = Prefix{p: netip.PrefixFrom(u32ToAddr(base), bits+1).Masked()}
	hi = Prefix{p: netip.PrefixFrom(u32ToAddr(base+half), bits+1).Masked()}
	return lo, hi, true
}

// CarveTail splits a /bits block off the high end of the prefixes, returning
// the remaining main prefixes (covering every address outside the tail) and
// the tail block itself. The main list partitions the original space exactly:
// no overlap, nothing lost. It is used to reserve a small infrastructure
// block inside a category's address range without giving up the rest of the
// final prefix. ok is false when no prefix is large enough to carve from.
func CarveTail(prefixes []Prefix, bits int) (main []Prefix, tail Prefix, ok bool) {
	if len(prefixes) == 0 {
		return nil, Prefix{}, false
	}
	last := prefixes[len(prefixes)-1]
	if last.Bits() > bits {
		return nil, Prefix{}, false
	}
	main = append(main, prefixes[:len(prefixes)-1]...)
	// Peel front halves off the last prefix until the back half is /bits.
	cur := last
	for cur.Bits() < bits {
		lo, hi, _ := cur.Split()
		main = append(main, lo)
		cur = hi
	}
	return main, cur, true
}

// SplitEvenly partitions the prefixes into k groups of roughly equal address
// count. Prefixes are recursively halved (largest first, ties broken by
// lowest address) until at least k blocks exist, then assigned largest-first
// to the currently smallest group. The result is deterministic for a given
// input, every group is non-empty, and the groups exactly cover the input
// space. k must be ≥ 1 and the prefixes must be splittable far enough.
func SplitEvenly(prefixes []Prefix, k int) [][]Prefix {
	if k < 1 {
		panic("ipam: SplitEvenly requires k >= 1")
	}
	blocks := make([]Prefix, len(prefixes))
	copy(blocks, prefixes)
	sortBlocks := func() {
		// Largest first; among equals, lowest network address first.
		for i := 1; i < len(blocks); i++ {
			for j := i; j > 0; j-- {
				a, b := blocks[j-1], blocks[j]
				if a.Size() > b.Size() || (a.Size() == b.Size() && addrToU32(a.Addr()) <= addrToU32(b.Addr())) {
					break
				}
				blocks[j-1], blocks[j] = b, a
			}
		}
	}
	var total uint64
	for _, b := range blocks {
		total += b.Size()
	}
	// Halve the largest block until there are at least k blocks and no single
	// block exceeds an even 1/k share — greedy assignment then keeps the
	// largest group within ~2x of the smallest.
	sortBlocks()
	for len(blocks) < k || blocks[0].Size() > total/uint64(k) {
		lo, hi, ok := blocks[0].Split()
		if !ok {
			panic("ipam: SplitEvenly cannot split a /32 further")
		}
		blocks = append(blocks[:0], append([]Prefix{lo, hi}, blocks[1:]...)...)
		sortBlocks()
	}
	groups := make([][]Prefix, k)
	sizes := make([]uint64, k)
	for _, b := range blocks {
		min := 0
		for i := 1; i < k; i++ {
			if sizes[i] < sizes[min] {
				min = i
			}
		}
		groups[min] = append(groups[min], b)
		sizes[min] += b.Size()
	}
	return groups
}

// addrToU32 converts an IPv4 address to its numeric value.
func addrToU32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// u32ToAddr converts a numeric value back to an IPv4 address.
func u32ToAddr(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// Pool allocates unique host addresses sequentially from a set of prefixes.
// Network (.0) and broadcast-style terminal addresses are skipped for /24 and
// shorter prefixes to keep addresses realistic.
type Pool struct {
	prefixes []Prefix
	cursor   int    // index into prefixes
	next     uint32 // next candidate offset within prefixes[cursor]
}

// NewPool creates a pool drawing from the given prefixes in order.
func NewPool(prefixes ...Prefix) *Pool {
	cp := make([]Prefix, len(prefixes))
	copy(cp, prefixes)
	return &Pool{prefixes: cp, next: 1} // skip the network address
}

// ErrExhausted is returned when a pool has no addresses left.
var ErrExhausted = fmt.Errorf("ipam: address pool exhausted")

// Alloc returns the next unallocated address from the pool.
func (p *Pool) Alloc() (netip.Addr, error) {
	for p.cursor < len(p.prefixes) {
		pre := p.prefixes[p.cursor]
		size := pre.Size()
		// Reserve the first (network) and last (broadcast) offsets.
		if uint64(p.next) < size-1 {
			addr := u32ToAddr(addrToU32(pre.Addr()) + p.next)
			p.next++
			return addr, nil
		}
		p.cursor++
		p.next = 1
	}
	return netip.Addr{}, ErrExhausted
}

// Remaining returns how many addresses the pool can still allocate.
func (p *Pool) Remaining() uint64 {
	var total uint64
	for i := p.cursor; i < len(p.prefixes); i++ {
		size := p.prefixes[i].Size() - 2 // minus network and broadcast
		if i == p.cursor {
			used := uint64(p.next) - 1
			if used > size {
				used = size
			}
			total += size - used
		} else {
			total += size
		}
	}
	return total
}

// trieNode is a node in the binary prefix trie.
type trieNode struct {
	children [2]*trieNode
	hasValue bool
	value    int
}

// Trie maps IPv4 prefixes to integer labels with longest-prefix-match
// semantics, like a routing table or an IP→ASN database.
type Trie struct {
	root trieNode
	n    int
}

// NewTrie returns an empty trie.
func NewTrie() *Trie { return &Trie{} }

// Len returns the number of prefixes inserted.
func (t *Trie) Len() int { return t.n }

// Insert associates label with the prefix, replacing any existing label on
// the exact same prefix.
func (t *Trie) Insert(p Prefix, label int) {
	v := addrToU32(p.Addr())
	node := &t.root
	for i := 0; i < p.Bits(); i++ {
		bit := (v >> (31 - uint(i))) & 1
		if node.children[bit] == nil {
			node.children[bit] = &trieNode{}
		}
		node = node.children[bit]
	}
	if !node.hasValue {
		t.n++
	}
	node.hasValue = true
	node.value = label
}

// Lookup returns the label of the longest prefix containing addr.
func (t *Trie) Lookup(addr netip.Addr) (label int, ok bool) {
	if !addr.Is4() {
		return 0, false
	}
	v := addrToU32(addr)
	node := &t.root
	if node.hasValue {
		label, ok = node.value, true
	}
	for i := 0; i < 32 && node != nil; i++ {
		bit := (v >> (31 - uint(i))) & 1
		node = node.children[bit]
		if node != nil && node.hasValue {
			label, ok = node.value, true
		}
	}
	return label, ok
}
