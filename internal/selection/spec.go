package selection

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the selection strategies.
type Kind int

const (
	// KindUniform is the paper-faithful locality-unaware random sample.
	KindUniform Kind = iota
	// KindQuota caps the inter-ISP fraction of every reply.
	KindQuota
	// KindASHop weights candidates by AS-hop proximity to the requester.
	KindASHop
)

// Default knob values when a spec names a kind without a parameter.
const (
	// DefaultQuotaFrac mirrors the "Pushing BitTorrent Locality to the
	// Limit" operating point: at most 1 in 5 reply entries cross an ISP
	// boundary.
	DefaultQuotaFrac = 0.2
	// DefaultASHopBias makes a one-hop candidate half as likely as a
	// same-ISP one ((1+1)^-2 = 0.25 vs 1.0 relative weight per candidate
	// is quarter; bias 2 is the Fukushima et al. midpoint of the sweep).
	DefaultASHopBias = 2.0
)

// Spec is the serializable description of a selection policy — the form that
// travels in Scenario configs and command-line flags. The zero value selects
// the legacy uniform policy, so existing scenarios are untouched.
type Spec struct {
	Kind Kind
	// MaxInterFrac is Quota's cap on the inter-ISP reply fraction.
	MaxInterFrac float64
	// Bias is ASHop's exponent: candidate weight (1+hops)^-Bias.
	Bias float64
}

// ParseSpec parses a -selection flag value: "" or "random"; "quota" or
// "quota:F" with F in [0,1]; "ashop" or "ashop:B" with B >= 0.
func ParseSpec(s string) (Spec, error) {
	name, arg, hasArg := strings.Cut(s, ":")
	switch name {
	case "", "random":
		if hasArg {
			return Spec{}, fmt.Errorf("selection: %q takes no parameter", s)
		}
		return Spec{}, nil
	case "quota":
		sp := Spec{Kind: KindQuota, MaxInterFrac: DefaultQuotaFrac}
		if hasArg {
			f, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("selection: bad quota fraction %q", arg)
			}
			sp.MaxInterFrac = f
		}
		if sp.MaxInterFrac < 0 || sp.MaxInterFrac > 1 {
			return Spec{}, fmt.Errorf("selection: quota fraction %g out of [0,1]", sp.MaxInterFrac)
		}
		return sp, nil
	case "ashop":
		sp := Spec{Kind: KindASHop, Bias: DefaultASHopBias}
		if hasArg {
			b, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("selection: bad ashop bias %q", arg)
			}
			sp.Bias = b
		}
		if sp.Bias < 0 {
			return Spec{}, fmt.Errorf("selection: ashop bias %g must be >= 0", sp.Bias)
		}
		return sp, nil
	default:
		return Spec{}, fmt.Errorf("selection: unknown policy %q (want %s)", s, strings.Join(Names(), ", "))
	}
}

// String renders the spec in the form ParseSpec accepts.
func (sp Spec) String() string {
	switch sp.Kind {
	case KindQuota:
		return "quota:" + trimFloat(sp.MaxInterFrac)
	case KindASHop:
		return "ashop:" + trimFloat(sp.Bias)
	default:
		return "random"
	}
}

// Policy instantiates the spec against a resolver. Uniform needs no
// resolver; the biased kinds do.
func (sp Spec) Policy(res Resolver) (Policy, error) {
	switch sp.Kind {
	case KindUniform:
		return Uniform{}, nil
	case KindQuota:
		return NewQuota(res, sp.MaxInterFrac)
	case KindASHop:
		return NewASHop(res, sp.Bias)
	default:
		return nil, fmt.Errorf("selection: unknown kind %d", sp.Kind)
	}
}

// Validate checks the knobs without instantiating (for Scenario.Validate).
func (sp Spec) Validate() error {
	switch sp.Kind {
	case KindUniform:
		return nil
	case KindQuota:
		if sp.MaxInterFrac < 0 || sp.MaxInterFrac > 1 {
			return fmt.Errorf("selection: quota fraction %g out of [0,1]", sp.MaxInterFrac)
		}
		return nil
	case KindASHop:
		if sp.Bias < 0 {
			return fmt.Errorf("selection: ashop bias %g must be >= 0", sp.Bias)
		}
		return nil
	default:
		return fmt.Errorf("selection: unknown kind %d", sp.Kind)
	}
}

// Names lists the accepted -selection forms for flag help text.
func Names() []string {
	return []string{"random", "quota[:maxInterFrac]", "ashop[:bias]"}
}
