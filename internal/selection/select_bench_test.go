package selection

import (
	"math/rand"
	"net/netip"
	"testing"

	"pplivesim/internal/isp"
)

// benchCandidates builds a realistic tracker reply pool: 200 candidates
// split across the five ISP categories, registered in a map resolver.
func benchCandidates() ([]netip.Addr, mapResolver, netip.Addr) {
	res := mapResolver{}
	var c []netip.Addr
	cats := isp.All()
	for i := 0; i < 200; i++ {
		a := netip.AddrFrom4([4]byte{10, byte(i / 250), byte(i % 250), 1})
		res[a] = cats[i%len(cats)]
		c = append(c, a)
	}
	req := netip.AddrFrom4([4]byte{10, 9, 9, 9})
	res[req] = isp.TELE
	return c, res, req
}

// BenchmarkSelectUniformBaseline is the legacy inline partial Fisher-Yates —
// the pre-refactor tracker reply path, hand-inlined with no interface call.
// BenchmarkSelectUniform must stay within 5% of it at 0 allocs: that pair is
// the bench-compare gate's proof that the strategy indirection is free.
func BenchmarkSelectUniformBaseline(b *testing.B) {
	c, _, _ := benchCandidates()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := len(c)
		k := 60
		for j := 0; j < k; j++ {
			m := j + rng.Intn(n-j)
			c[j], c[m] = c[m], c[j]
		}
	}
}

// BenchmarkSelectUniform is the same sample through the Policy interface.
func BenchmarkSelectUniform(b *testing.B) {
	c, _, req := benchCandidates()
	rng := rand.New(rand.NewSource(1))
	var pol Policy = Uniform{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pol.Sample(c, req, 60, rng)
	}
}

// BenchmarkSelectQuota measures the quota policy's partition + dual
// Fisher-Yates reply composition.
func BenchmarkSelectQuota(b *testing.B) {
	c, res, req := benchCandidates()
	pol, err := NewQuota(res, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pol.Sample(c, req, 60, rng)
	}
}

// BenchmarkSelectASHop measures the hop-class-bucketed weighted sample.
func BenchmarkSelectASHop(b *testing.B) {
	c, res, req := benchCandidates()
	pol, err := NewASHop(res, 2)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pol.Sample(c, req, 60, rng)
	}
}

// TestUniformSampleZeroAlloc pins the random path at zero allocations — the
// interface indirection must not heap-allocate anything.
func TestUniformSampleZeroAlloc(t *testing.T) {
	c, _, req := benchCandidates()
	rng := rand.New(rand.NewSource(1))
	var pol Policy = Uniform{}
	allocs := testing.AllocsPerRun(200, func() {
		pol.Sample(c, req, 60, rng)
	})
	if allocs != 0 {
		t.Fatalf("Uniform.Sample allocates %.1f/op, want 0", allocs)
	}
}
