// Package selection makes peer selection a pluggable strategy. The paper's
// PPLive tracker samples peers with no locality awareness whatsoever (§3.2)
// and locality still emerges in the mesh; the related work instead engineers
// it — biased tracker replies with inter-ISP quotas ("Pushing BitTorrent
// Locality to the Limit") and AS-hop-aware ranking (Fukushima et al.). A
// Policy abstracts the choice so the tracker reply path, the peer referral
// path, and the flow-fidelity byte mix all bias (or don't) the same way, and
// the bias knob can be swept from pure-random to hard-clamped.
//
// Determinism contract: Uniform is the faithful PPLive behaviour and
// reproduces the legacy code paths bit-exactly — the same partial
// Fisher-Yates draw sequence on tracker replies (one Intn per returned
// address, zero when the reply is empty), zero RNG draws and an identity
// reorder on referrals, and the same float operations in the flow mix. The
// pinned golden digests depend on that. Biased policies draw only from the
// RNG stream they are handed (the owning domain's), so their trajectories
// are worker-count invariant too and get their own pinned golden.
//
// Policies hold no mutable state: one instance is shared by every tracker,
// session, and flow swarm across all shard-domain workers.
package selection

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"strconv"

	"pplivesim/internal/isp"
)

// Resolver maps an address to its ISP category (the asnmap.Registry
// signature). Policies that need topology consult it; Uniform never does.
type Resolver interface {
	ISPOf(addr netip.Addr) (isp.ISP, bool)
}

// Policy decides which peers a reply contains. Implementations must be
// stateless (safe for concurrent use from multiple shard workers) and must
// draw randomness only from the *rand.Rand they are passed.
type Policy interface {
	// Name returns the policy's spec string (e.g. "quota:0.25").
	Name() string

	// Sample composes a tracker reply: it permutes candidates in place so
	// that the first k' entries form the reply, and returns k' (<= k).
	// Entries beyond k' are unspecified. candidates arrives in address order
	// with the requester already excluded; k is the reply bound. rng is the
	// tracker's own deterministic stream.
	Sample(candidates []netip.Addr, from netip.Addr, k int, rng *rand.Rand) int

	// Refer shapes a peer referral reply: it reorders candidates in place
	// (most-preferred first) and returns how many to send. Referrals are
	// deterministic — no RNG — so the legacy gossip trajectory is preserved
	// exactly under Uniform (identity reorder, full length).
	Refer(candidates []netip.Addr, from netip.Addr) int

	// Shape rescales the flow-fidelity byte-mix weights in place: weights[i]
	// is the (unnormalized) share of a category-`local` swarm's streamed
	// bytes attributed to source ISP cats[i], initialized to that ISP's
	// population count. Every policy first applies the emergent same-ISP
	// boost (the flow-level stand-in for the full mesh's latency-bias
	// locality, which exists under any tracker policy) and then its own
	// engineered bias on top. The caller normalizes afterwards.
	Shape(local isp.ISP, cats []isp.ISP, weights []float64)
}

// sameISPBoost is the emergent-locality multiplier of the flow-fidelity
// byte mix (previously core's flowLocalityBoost): with the paper's TELE
// population share (~0.55) it lands intra-ISP traffic near the ~0.9 fraction
// the full-fidelity mesh converges to (Table 2 of the paper). It models the
// mesh's latency-biased neighbor acquisition, not the tracker, so biased
// policies multiply it rather than replace it.
const sameISPBoost = 8.0

// uniformSample is the legacy locality-unaware reply: a partial Fisher-Yates
// over the candidates, exactly k Intn draws (including the final Intn(1)),
// zero allocations.
func uniformSample(c []netip.Addr, k int, rng *rand.Rand) int {
	n := len(c)
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		c[i], c[j] = c[j], c[i]
	}
	return k
}

// Uniform is the faithful PPLive policy: uniform random tracker samples,
// referral lists passed through untouched, and the plain emergent-boost flow
// mix. It is the zero-Spec default and the one the legacy golden digests pin.
type Uniform struct{}

// Name implements Policy.
func (Uniform) Name() string { return "random" }

// Sample implements Policy.
func (Uniform) Sample(c []netip.Addr, _ netip.Addr, k int, rng *rand.Rand) int {
	return uniformSample(c, k, rng)
}

// Refer implements Policy: identity — the recency order the session already
// maintains is the reply.
func (Uniform) Refer(c []netip.Addr, _ netip.Addr) int { return len(c) }

// Shape implements Policy: the emergent same-ISP boost only.
func (Uniform) Shape(local isp.ISP, cats []isp.ISP, weights []float64) {
	for i := range cats {
		if cats[i] == local {
			weights[i] *= sameISPBoost
		}
	}
}

// Quota biases replies toward the requester's ISP with a hard cap on the
// inter-ISP fraction, filling any inter-ISP shortfall from same-ISP
// candidates (and vice versa never: the quota is a ceiling, not a target).
// MaxInterFrac 0 clamps replies to same-ISP only; 1 disables the clamp.
type Quota struct {
	res          Resolver
	maxInterFrac float64
}

// NewQuota creates a quota policy; maxInterFrac must be in [0, 1].
func NewQuota(res Resolver, maxInterFrac float64) (*Quota, error) {
	if res == nil {
		return nil, fmt.Errorf("selection: quota policy needs a resolver")
	}
	if maxInterFrac < 0 || maxInterFrac > 1 || math.IsNaN(maxInterFrac) {
		return nil, fmt.Errorf("selection: quota fraction %g out of [0,1]", maxInterFrac)
	}
	return &Quota{res: res, maxInterFrac: maxInterFrac}, nil
}

// Name implements Policy.
func (q *Quota) Name() string { return "quota:" + trimFloat(q.maxInterFrac) }

// quotaCounts splits a reply of up to k entries between nSame same-ISP and
// nInter inter-ISP candidates: the inter count is capped at
// floor(F*k) and, when the same-ISP pool cannot fill the rest, further
// clamped so the *actual* reply's inter fraction never exceeds F (shortfall
// shrinks the reply rather than diluting the quota). Pure integer/float
// arithmetic — deterministic and shared by Sample and Refer.
func (q *Quota) quotaCounts(nSame, nInter, k int) (sameN, interN int) {
	interN = int(q.maxInterFrac*float64(k) + 1e-9)
	if interN > nInter {
		interN = nInter
	}
	for {
		sameN = k - interN
		if sameN > nSame {
			sameN = nSame
		}
		if q.maxInterFrac >= 1 {
			return sameN, interN
		}
		lim := int(q.maxInterFrac*float64(sameN)/(1-q.maxInterFrac) + 1e-9)
		if interN <= lim {
			return sameN, interN
		}
		interN = lim
	}
}

// Sample implements Policy: stable-partition the candidates into same-ISP
// and inter-ISP pools (address order preserved within each), apply the
// quota arithmetic, and draw each pool's share by partial Fisher-Yates —
// same-pool draws first, then inter-pool, so the draw sequence is a pure
// function of the candidate set.
func (q *Quota) Sample(c []netip.Addr, from netip.Addr, k int, rng *rand.Rand) int {
	if k > len(c) {
		k = len(c)
	}
	if k <= 0 {
		return 0
	}
	local, ok := q.res.ISPOf(from)
	if !ok {
		// Unmappable requester (no locality to bias toward): plain uniform.
		return uniformSample(c, k, rng)
	}
	same := make([]netip.Addr, 0, len(c))
	inter := make([]netip.Addr, 0, len(c))
	for _, a := range c {
		if cat, ok := q.res.ISPOf(a); ok && cat == local {
			same = append(same, a)
		} else {
			inter = append(inter, a)
		}
	}
	sameN, interN := q.quotaCounts(len(same), len(inter), k)
	for i := 0; i < sameN; i++ {
		j := i + rng.Intn(len(same)-i)
		same[i], same[j] = same[j], same[i]
	}
	for i := 0; i < interN; i++ {
		j := i + rng.Intn(len(inter)-i)
		inter[i], inter[j] = inter[j], inter[i]
	}
	n := copy(c, same[:sameN])
	n += copy(c[n:], inter[:interN])
	return n
}

// Refer implements Policy: same-ISP entries first (original order), then
// inter-ISP entries up to the quota — deterministic, no RNG.
func (q *Quota) Refer(c []netip.Addr, from netip.Addr) int {
	local, ok := q.res.ISPOf(from)
	if !ok {
		return len(c)
	}
	same := make([]netip.Addr, 0, len(c))
	inter := make([]netip.Addr, 0, len(c))
	for _, a := range c {
		if cat, ok := q.res.ISPOf(a); ok && cat == local {
			same = append(same, a)
		} else {
			inter = append(inter, a)
		}
	}
	sameN, interN := q.quotaCounts(len(same), len(inter), len(c))
	n := copy(c, same[:sameN])
	n += copy(c[n:], inter[:interN])
	return n
}

// Shape implements Policy: emergent boost, then rescale the inter-ISP
// weights so their normalized share cannot exceed MaxInterFrac. A swarm with
// no same-ISP population keeps its weights (there is nothing local to shift
// the bytes onto).
func (q *Quota) Shape(local isp.ISP, cats []isp.ISP, weights []float64) {
	Uniform{}.Shape(local, cats, weights)
	if q.maxInterFrac >= 1 {
		return
	}
	var sameW, interW float64
	for i := range cats {
		if cats[i] == local {
			sameW += weights[i]
		} else {
			interW += weights[i]
		}
	}
	if sameW == 0 || interW == 0 {
		return
	}
	limit := sameW * q.maxInterFrac / (1 - q.maxInterFrac)
	if interW <= limit {
		return
	}
	f := limit / interW
	for i := range cats {
		if cats[i] != local {
			weights[i] *= f
		}
	}
}

// Hops is the AS-hop distance between two ISP categories, mirroring the
// underlay's one-way-delay tiers (underlay.Config / core's flowRTT): 0 inside
// one ISP, 1 across domestic ISPs, 2 across the congested TELE-CNC transit,
// 3 for anything transoceanic.
func Hops(a, b isp.ISP) int {
	switch {
	case a == b:
		return 0
	case a == isp.Foreign || b == isp.Foreign:
		return 3
	case (a == isp.TELE && b == isp.CNC) || (a == isp.CNC && b == isp.TELE):
		return 2
	default:
		return 1
	}
}

// maxHops is the number of distinct Hops classes.
const maxHops = 4

// ASHop prefers AS-topologically close peers: a candidate at hop distance h
// from the requester is sampled with weight (1+h)^-Bias. Bias 0 is a uniform
// sample (soft), large Bias approaches nearest-first (but never starves a
// class outright — unlike Quota there is no hard clamp).
type ASHop struct {
	res  Resolver
	bias float64
	w    [maxHops]float64 // (1+h)^-bias, precomputed
}

// NewASHop creates an AS-hop policy; bias must be >= 0.
func NewASHop(res Resolver, bias float64) (*ASHop, error) {
	if res == nil {
		return nil, fmt.Errorf("selection: ashop policy needs a resolver")
	}
	if bias < 0 || math.IsNaN(bias) || math.IsInf(bias, 0) {
		return nil, fmt.Errorf("selection: ashop bias %g must be finite and >= 0", bias)
	}
	p := &ASHop{res: res, bias: bias}
	for h := 0; h < maxHops; h++ {
		p.w[h] = math.Pow(float64(1+h), -bias)
	}
	return p, nil
}

// Name implements Policy.
func (p *ASHop) Name() string { return "ashop:" + trimFloat(p.bias) }

// hopOf classifies a candidate; unmappable addresses count as farthest.
func (p *ASHop) hopOf(local isp.ISP, a netip.Addr) int {
	cat, ok := p.res.ISPOf(a)
	if !ok {
		return maxHops - 1
	}
	return Hops(local, cat)
}

// Sample implements Policy: weighted sampling without replacement. The
// candidates bucket into the four hop classes (two Float64/Intn draws per
// pick: class by mass, then uniform within the class), so the cost is
// O(n + k) and the draw count depends only on k.
func (p *ASHop) Sample(c []netip.Addr, from netip.Addr, k int, rng *rand.Rand) int {
	if k > len(c) {
		k = len(c)
	}
	if k <= 0 {
		return 0
	}
	local, ok := p.res.ISPOf(from)
	if !ok {
		return uniformSample(c, k, rng)
	}
	var buckets [maxHops][]netip.Addr
	for _, a := range c {
		h := p.hopOf(local, a)
		buckets[h] = append(buckets[h], a)
	}
	for picked := 0; picked < k; picked++ {
		var total float64
		for h := 0; h < maxHops; h++ {
			total += float64(len(buckets[h])) * p.w[h]
		}
		r := rng.Float64() * total
		h := 0
		for ; h < maxHops-1; h++ {
			mass := float64(len(buckets[h])) * p.w[h]
			if r < mass {
				break
			}
			r -= mass
		}
		for len(buckets[h]) == 0 {
			// Float roundoff landed on an empty class; take the next
			// non-empty one (deterministic, no extra draw).
			h = (h + 1) % maxHops
		}
		b := buckets[h]
		j := rng.Intn(len(b))
		c[picked] = b[j]
		b[j] = b[len(b)-1]
		buckets[h] = b[:len(b)-1]
	}
	return k
}

// Refer implements Policy: with any positive bias, a stable nearest-first
// reorder (hop class ascending, original order within a class); bias 0 keeps
// the caller's order. Deterministic, no RNG, nothing dropped.
func (p *ASHop) Refer(c []netip.Addr, from netip.Addr) int {
	if p.bias == 0 {
		return len(c)
	}
	local, ok := p.res.ISPOf(from)
	if !ok {
		return len(c)
	}
	var buckets [maxHops][]netip.Addr
	for _, a := range c {
		h := p.hopOf(local, a)
		buckets[h] = append(buckets[h], a)
	}
	n := 0
	for h := 0; h < maxHops; h++ {
		n += copy(c[n:], buckets[h])
	}
	return n
}

// Shape implements Policy: emergent boost times the hop-class weight.
func (p *ASHop) Shape(local isp.ISP, cats []isp.ISP, weights []float64) {
	Uniform{}.Shape(local, cats, weights)
	for i := range cats {
		weights[i] *= p.w[Hops(local, cats[i])]
	}
}

// trimFloat formats a knob value the way ParseSpec accepts it back.
func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
