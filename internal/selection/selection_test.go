package selection

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"

	"pplivesim/internal/isp"
)

// mapResolver is a test resolver over a literal address→ISP table.
type mapResolver map[netip.Addr]isp.ISP

func (m mapResolver) ISPOf(a netip.Addr) (isp.ISP, bool) {
	cat, ok := m[a]
	return cat, ok
}

// addr builds 10.0.<b>.<c>.
func addr(b, c byte) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 0, b, c})
}

// pool builds n addresses 10.0.<b>.1.. and registers them under cat.
func pool(res mapResolver, b byte, n int, cat isp.ISP) []netip.Addr {
	out := make([]netip.Addr, n)
	for i := range out {
		out[i] = addr(b, byte(i+1))
		res[out[i]] = cat
	}
	return out
}

// TestUniformDrawParity proves the Uniform policy is draw-for-draw identical
// to the legacy inline partial Fisher-Yates: same reply, same RNG positions
// consumed — the property the pinned golden digests rest on.
func TestUniformDrawParity(t *testing.T) {
	for _, k := range []int{0, 1, 7, 30, 60, 100} {
		mk := func() []netip.Addr {
			c := make([]netip.Addr, 30)
			for i := range c {
				c[i] = addr(1, byte(i+1))
			}
			return c
		}
		legacy := mk()
		rngA := rand.New(rand.NewSource(99))
		n := len(legacy)
		kk := k
		if kk > n {
			kk = n
		}
		for i := 0; i < kk; i++ {
			j := i + rngA.Intn(n-i)
			legacy[i], legacy[j] = legacy[j], legacy[i]
		}

		got := mk()
		rngB := rand.New(rand.NewSource(99))
		kGot := Uniform{}.Sample(got, addr(9, 9), k, rngB)
		if kGot != kk {
			t.Fatalf("k=%d: Sample returned %d, legacy %d", k, kGot, kk)
		}
		for i := 0; i < kk; i++ {
			if got[i] != legacy[i] {
				t.Fatalf("k=%d: reply[%d] = %v, legacy %v", k, i, got[i], legacy[i])
			}
		}
		// Both streams must now be at the same position.
		if a, b := rngA.Int63(), rngB.Int63(); a != b {
			t.Fatalf("k=%d: RNG positions diverge after sampling (%d vs %d)", k, a, b)
		}
	}
}

// TestUniformZeroDrawsOnEmpty pins that an empty candidate set consumes no
// randomness at all (the tracker's unknown-channel / sole-member edge).
func TestUniformZeroDrawsOnEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := rand.New(rand.NewSource(5))
	if k := (Uniform{}).Sample(nil, addr(1, 1), 60, rng); k != 0 {
		t.Fatalf("Sample on empty set returned %d", k)
	}
	if a, b := rng.Int63(), ref.Int63(); a != b {
		t.Fatal("Sample on empty set consumed RNG draws")
	}
}

// TestQuotaExactComposition checks that with ample pools the reply contains
// exactly floor(F*k) inter-ISP entries and k-floor(F*k) same-ISP entries.
func TestQuotaExactComposition(t *testing.T) {
	res := mapResolver{}
	req := addr(1, 200)
	res[req] = isp.TELE
	same := pool(res, 1, 100, isp.TELE)
	inter := pool(res, 2, 100, isp.CNC)
	_ = same

	for _, tc := range []struct {
		frac      float64
		k         int
		wantInter int
		wantTotal int
	}{
		{0.25, 60, 15, 60},
		{0.2, 60, 12, 60},
		{0.15, 60, 9, 60}, // 0.15*60 is exactly 9: the epsilon recovers it from the 8.999... float repr
		{0, 60, 0, 60},
		{1, 60, 60, 60},
		{0.5, 10, 5, 10},
	} {
		c := make([]netip.Addr, 0, 200)
		for i := 0; i < 100; i++ {
			c = append(c, same[i], inter[i])
		}
		q, err := NewQuota(res, tc.frac)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		n := q.Sample(c, req, tc.k, rng)
		if n != tc.wantTotal {
			t.Fatalf("frac=%g k=%d: reply length %d, want %d", tc.frac, tc.k, n, tc.wantTotal)
		}
		gotInter := 0
		for _, a := range c[:n] {
			if res[a] != isp.TELE {
				gotInter++
			}
		}
		if gotInter != tc.wantInter {
			t.Fatalf("frac=%g k=%d: %d inter-ISP entries, want %d", tc.frac, tc.k, gotInter, tc.wantInter)
		}
	}
}

// TestQuotaShortfallClamp checks the hard-clamp behaviour when the same-ISP
// pool cannot fill the reply: the actual reply's inter fraction never exceeds
// F, even if that shortens the reply.
func TestQuotaShortfallClamp(t *testing.T) {
	res := mapResolver{}
	req := addr(1, 200)
	res[req] = isp.TELE
	same := pool(res, 1, 4, isp.TELE) // tiny local pool
	inter := pool(res, 2, 100, isp.CNC)

	q, err := NewQuota(res, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	c := append(append([]netip.Addr{}, same...), inter...)
	rng := rand.New(rand.NewSource(3))
	n := q.Sample(c, req, 60, rng)
	gotSame, gotInter := 0, 0
	for _, a := range c[:n] {
		if res[a] == isp.TELE {
			gotSame++
		} else {
			gotInter++
		}
	}
	if gotSame != 4 {
		t.Fatalf("same-ISP entries = %d, want all 4 available", gotSame)
	}
	// 4 same at F=0.2 allows floor(0.2*4/0.8) = 1 inter entry.
	if gotInter != 1 {
		t.Fatalf("inter entries = %d, want 1 (hard clamp)", gotInter)
	}
	if frac := float64(gotInter) / float64(n); frac > 0.2+1e-9 {
		t.Fatalf("inter fraction %g exceeds quota 0.2", frac)
	}
}

// TestQuotaReferDeterministic checks Refer is a pure function: same-ISP
// entries first in original order, inter entries clamped, and byte-identical
// across calls with no RNG involved.
func TestQuotaReferDeterministic(t *testing.T) {
	res := mapResolver{}
	req := addr(1, 200)
	res[req] = isp.TELE
	same := pool(res, 1, 6, isp.TELE)
	inter := pool(res, 2, 6, isp.CNC)
	q, err := NewQuota(res, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []netip.Addr {
		c := make([]netip.Addr, 0, 12)
		for i := 0; i < 6; i++ {
			c = append(c, inter[i], same[i]) // interleaved, inter first
		}
		return c
	}
	a, b := mk(), mk()
	na, nb := q.Refer(a, req), q.Refer(b, req)
	if na != nb {
		t.Fatalf("Refer lengths differ: %d vs %d", na, nb)
	}
	for i := 0; i < na; i++ {
		if a[i] != b[i] {
			t.Fatalf("Refer not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Same-ISP entries come first, in their original relative order.
	for i := 0; i < 6; i++ {
		if a[i] != same[i] {
			t.Fatalf("Refer[%d] = %v, want same-ISP %v", i, a[i], same[i])
		}
	}
	// 6 same at F=0.25 allows floor(0.25*6/0.75) = 2 inter entries.
	if na != 8 {
		t.Fatalf("Refer length = %d, want 8 (6 same + 2 inter)", na)
	}
}

// TestQuotaUnknownRequesterFallsBack checks an unmappable requester gets the
// plain uniform sample (no locality to bias toward).
func TestQuotaUnknownRequesterFallsBack(t *testing.T) {
	res := mapResolver{}
	cands := pool(res, 1, 20, isp.TELE)
	q, err := NewQuota(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := append([]netip.Addr{}, cands...)
	rng := rand.New(rand.NewSource(8))
	// Requester unknown to the resolver: even F=0 must return a full reply.
	if n := q.Sample(c, addr(9, 9), 10, rng); n != 10 {
		t.Fatalf("unknown requester reply length = %d, want 10", n)
	}
}

// TestASHopSampleBias checks the exponent steers composition: higher bias
// yields more same-ISP entries on a balanced candidate set, and bias 0 is
// statistically uniform.
func TestASHopSampleBias(t *testing.T) {
	res := mapResolver{}
	req := addr(1, 200)
	res[req] = isp.TELE
	same := pool(res, 1, 50, isp.TELE)
	far := pool(res, 3, 50, isp.Foreign)

	sameCount := func(bias float64, seed int64) int {
		p, err := NewASHop(res, bias)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		total := 0
		for trial := 0; trial < 50; trial++ {
			c := append(append([]netip.Addr{}, same...), far...)
			n := p.Sample(c, req, 20, rng)
			if n != 20 {
				t.Fatalf("bias=%g: reply length %d, want 20", bias, n)
			}
			seen := map[netip.Addr]bool{}
			for _, a := range c[:n] {
				if seen[a] {
					t.Fatalf("bias=%g: duplicate %v in reply", bias, a)
				}
				seen[a] = true
				if res[a] == isp.TELE {
					total++
				}
			}
		}
		return total
	}
	uniform := sameCount(0, 41) // expect ~500 of 1000
	biased := sameCount(3, 41)  // (1+3)^-3 = 1/64 weight on Foreign: nearly all same
	if math.Abs(float64(uniform)-500) > 80 {
		t.Errorf("bias 0 same-ISP count %d not ~500 of 1000", uniform)
	}
	if biased < 900 {
		t.Errorf("bias 3 same-ISP count %d, want >= 900 of 1000", biased)
	}
}

// TestASHopReferOrder checks the deterministic nearest-first reorder.
func TestASHopReferOrder(t *testing.T) {
	res := mapResolver{}
	req := addr(1, 200)
	res[req] = isp.TELE
	a0 := pool(res, 1, 2, isp.TELE)    // hop 0
	a1 := pool(res, 2, 2, isp.CER)     // hop 1
	a2 := pool(res, 3, 2, isp.CNC)     // hop 2 (TELE↔CNC penalty tier)
	a3 := pool(res, 4, 2, isp.Foreign) // hop 3
	p, err := NewASHop(res, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := []netip.Addr{a3[0], a2[0], a1[0], a0[0], a3[1], a2[1], a1[1], a0[1]}
	n := p.Refer(c, req)
	if n != 8 {
		t.Fatalf("Refer dropped entries: %d of 8", n)
	}
	want := []netip.Addr{a0[0], a0[1], a1[0], a1[1], a2[0], a2[1], a3[0], a3[1]}
	for i, w := range want {
		if c[i] != w {
			t.Fatalf("Refer[%d] = %v, want %v (nearest-first stable order)", i, c[i], w)
		}
	}
}

// TestHopsMatrix pins the AS-hop tiers against the underlay's delay tiers.
func TestHopsMatrix(t *testing.T) {
	cases := []struct {
		a, b isp.ISP
		want int
	}{
		{isp.TELE, isp.TELE, 0},
		{isp.Foreign, isp.Foreign, 0},
		{isp.TELE, isp.CNC, 2},
		{isp.CNC, isp.TELE, 2},
		{isp.TELE, isp.CER, 1},
		{isp.CER, isp.OtherCN, 1},
		{isp.TELE, isp.Foreign, 3},
		{isp.Foreign, isp.CNC, 3},
	}
	for _, tc := range cases {
		if got := Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("Hops(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestSpecParseRoundTrip checks ParseSpec and String agree.
func TestSpecParseRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Spec
		out  string
	}{
		{"", Spec{}, "random"},
		{"random", Spec{}, "random"},
		{"quota", Spec{Kind: KindQuota, MaxInterFrac: 0.2}, "quota:0.2"},
		{"quota:0.5", Spec{Kind: KindQuota, MaxInterFrac: 0.5}, "quota:0.5"},
		{"quota:0", Spec{Kind: KindQuota}, "quota:0"},
		{"ashop", Spec{Kind: KindASHop, Bias: 2}, "ashop:2"},
		{"ashop:3.5", Spec{Kind: KindASHop, Bias: 3.5}, "ashop:3.5"},
	} {
		sp, err := ParseSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.in, err)
		}
		if sp != tc.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", tc.in, sp, tc.want)
		}
		if s := sp.String(); s != tc.out {
			t.Fatalf("String(%+v) = %q, want %q", sp, s, tc.out)
		}
		if rt, err := ParseSpec(sp.String()); err != nil || rt != sp {
			t.Fatalf("round trip of %q failed: %+v, %v", tc.in, rt, err)
		}
	}
	for _, bad := range []string{"quota:1.5", "quota:-0.1", "ashop:-1", "nearest", "random:1", "quota:x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", bad)
		}
	}
}

// TestShapeContracts checks every policy's flow-mix shaping: Uniform applies
// only the emergent boost; quota clamps the inter share; ashop:0 equals
// Uniform exactly (the frontier's continuity anchor).
func TestShapeContracts(t *testing.T) {
	cats := []isp.ISP{isp.TELE, isp.CNC, isp.Foreign}
	base := []float64{55, 25, 20}
	mk := func() []float64 { return append([]float64{}, base...) }

	uni := mk()
	Uniform{}.Shape(isp.TELE, cats, uni)
	if uni[0] != 55*8 || uni[1] != 25 || uni[2] != 20 {
		t.Fatalf("Uniform.Shape = %v, want [440 25 20]", uni)
	}

	res := mapResolver{}
	ah, err := NewASHop(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	zero := mk()
	ah.Shape(isp.TELE, cats, zero)
	for i := range zero {
		if zero[i] != uni[i] {
			t.Fatalf("ashop:0 Shape[%d] = %g, want Uniform's %g", i, zero[i], uni[i])
		}
	}

	q, err := NewQuota(res, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	w := mk()
	q.Shape(isp.TELE, cats, w)
	sameW := w[0]
	interW := w[1] + w[2]
	if frac := interW / (sameW + interW); frac > 0.1+1e-9 {
		t.Fatalf("quota:0.1 Shape inter share %g exceeds cap", frac)
	}

	// F=0 zeroes the inter weights entirely (hard clamp) when local
	// population exists.
	q0, err := NewQuota(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	w0 := mk()
	q0.Shape(isp.TELE, cats, w0)
	if w0[1] != 0 || w0[2] != 0 {
		t.Fatalf("quota:0 Shape kept inter weights: %v", w0)
	}

	// No local population: weights pass through un-clamped (nothing local
	// to shift bytes onto — avoids a zero-sum mix).
	wf := []float64{25, 20}
	q0.Shape(isp.TELE, []isp.ISP{isp.CNC, isp.Foreign}, wf)
	if wf[0] != 25 || wf[1] != 20 {
		t.Fatalf("quota:0 Shape without local population altered weights: %v", wf)
	}
}
