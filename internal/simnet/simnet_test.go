package simnet_test

import (
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/isp"
	"pplivesim/internal/node"
	"pplivesim/internal/simnet"
	"pplivesim/internal/wire"
)

type recorder struct {
	got []wire.Message
}

func (r *recorder) HandleMessage(_ netip.Addr, msg wire.Message) {
	r.got = append(r.got, msg)
}

func spawn(t *testing.T, w *simnet.World, category isp.ISP) *simnet.Env {
	t.Helper()
	env, err := w.Spawn(simnet.HostSpec{ISP: category, UploadBps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestSpawnAllocatesResolvableAddrs(t *testing.T) {
	w := simnet.NewWorld(1)
	for _, category := range isp.All() {
		env := spawn(t, w, category)
		got, ok := w.Registry.ISPOf(env.Addr())
		if !ok || got != category {
			t.Errorf("spawned %s addr %v resolves to (%v,%v)", category, env.Addr(), got, ok)
		}
		if env.ISP() != category {
			t.Errorf("env ISP = %v", env.ISP())
		}
	}
}

func TestSendDeliversToHandler(t *testing.T) {
	w := simnet.NewWorld(2)
	a := spawn(t, w, isp.TELE)
	b := spawn(t, w, isp.TELE)
	rec := &recorder{}
	b.SetHandler(rec)
	a.Send(b.Addr(), &wire.Handshake{Channel: 5})
	if err := w.Engine.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rec.got) != 1 {
		t.Fatalf("delivered %d messages", len(rec.got))
	}
	hs, ok := rec.got[0].(*wire.Handshake)
	if !ok || hs.Channel != 5 {
		t.Errorf("got %#v", rec.got[0])
	}
}

func TestCodecCheckRoundTripsPayloads(t *testing.T) {
	w := simnet.NewWorld(3)
	w.CodecCheck = true
	a := spawn(t, w, isp.TELE)
	b := spawn(t, w, isp.CNC)
	rec := &recorder{}
	b.SetHandler(rec)
	sentMsg := &wire.PeerListReply{Channel: 1, Peers: []netip.Addr{a.Addr()}}
	a.Send(b.Addr(), sentMsg)
	if err := w.Engine.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rec.got) != 1 {
		t.Fatalf("delivered %d messages", len(rec.got))
	}
	// With codec check the delivered message is a decoded copy, not the
	// same object.
	if rec.got[0] == wire.Message(sentMsg) {
		t.Error("codec check delivered the original object")
	}
	reply, ok := rec.got[0].(*wire.PeerListReply)
	if !ok || len(reply.Peers) != 1 || reply.Peers[0] != a.Addr() {
		t.Errorf("decoded copy = %#v", rec.got[0])
	}
}

func TestTapsObserveBothDirections(t *testing.T) {
	w := simnet.NewWorld(4)
	a := spawn(t, w, isp.TELE)
	b := spawn(t, w, isp.TELE)
	b.SetHandler(&recorder{})
	var sends, recvs int
	a.TapSend(func(to netip.Addr, msg wire.Message, size int) {
		if to != b.Addr() || size <= 0 {
			t.Errorf("send tap: to=%v size=%d", to, size)
		}
		sends++
	})
	b.TapRecv(func(from netip.Addr, msg wire.Message, size int) {
		if from != a.Addr() {
			t.Errorf("recv tap from %v", from)
		}
		recvs++
	})
	a.Send(b.Addr(), &wire.Handshake{Channel: 1})
	if err := w.Engine.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sends != 1 || recvs != 1 {
		t.Errorf("taps: sends=%d recvs=%d", sends, recvs)
	}
}

func TestCloseSilencesNode(t *testing.T) {
	w := simnet.NewWorld(5)
	a := spawn(t, w, isp.TELE)
	b := spawn(t, w, isp.TELE)
	rec := &recorder{}
	b.SetHandler(rec)
	fired := 0
	a.Every(time.Second, func() { fired++ })
	b.Close()
	if !b.Closed() {
		t.Error("Closed() false after Close")
	}
	b.Close() // idempotent
	a.Send(b.Addr(), &wire.Handshake{Channel: 1})
	if err := w.Engine.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rec.got) != 0 {
		t.Error("closed node received a message")
	}
	if fired == 0 {
		t.Error("live node's timer never fired")
	}
	// Closed node can no longer send.
	b.Send(a.Addr(), &wire.Handshake{Channel: 1})
	if w.Network.NumHosts() != 1 {
		t.Errorf("hosts = %d after close, want 1", w.Network.NumHosts())
	}
}

func TestTimersStopAfterClose(t *testing.T) {
	w := simnet.NewWorld(6)
	a := spawn(t, w, isp.TELE)
	count := 0
	a.Every(time.Second, func() { count++ })
	w.Engine.At(3500*time.Millisecond, a.Close)
	if err := w.Engine.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("timer fired %d times, want 3 before close", count)
	}
	// The engine must drain completely (no immortal periodic timers).
	if pending := w.Engine.Pending(); pending != 0 {
		t.Errorf("%d events still pending after close", pending)
	}
}

func TestUplinkBacklogVisible(t *testing.T) {
	w := simnet.NewWorld(7)
	a := spawn(t, w, isp.TELE)
	b := spawn(t, w, isp.TELE)
	b.SetHandler(&recorder{})
	if a.UplinkBacklog() != 0 {
		t.Error("fresh node has backlog")
	}
	// 1 MiB at 1 MiB/s = 1s of backlog.
	a.Send(b.Addr(), &wire.DataReply{Channel: 1, Seq: 0, Count: 64, PieceLen: 16384})
	if a.UplinkBacklog() == 0 {
		t.Error("backlog not visible after large send")
	}
}

var _ node.Env = (*simnet.Env)(nil)
