package simnet

// White-box tests for the scaled (Shards > DefaultShards) partition: the
// address-range trie routing, the infrastructure domain, the synthetic
// latency floors, and the legacy partition's invariance for small shard
// counts. These pin the satellite requirements of the million-peer work:
// boundary addresses route to their owning sub-shard, a churned peer
// re-joining through another sub-shard's pool resolves there, and shard
// counts at or below DefaultShards build the exact legacy partition.

import (
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/asnmap"
	"pplivesim/internal/ipam"
	"pplivesim/internal/isp"
	"pplivesim/internal/underlay"
	"pplivesim/internal/wire"
)

func TestScaledPartitionShape(t *testing.T) {
	const shards = 12
	w := NewShardedWorldN(7, shards)
	if got := len(w.Domains()); got != shards {
		t.Fatalf("domains = %d, want %d", got, shards)
	}
	if got := len(w.DomainsOf(isp.TELE)); got != shards-5 {
		t.Errorf("TELE sub-shards = %d, want %d", got, shards-5)
	}
	for _, cat := range []isp.ISP{isp.CNC, isp.CER, isp.OtherCN, isp.Foreign} {
		if got := len(w.DomainsOf(cat)); got != 1 {
			t.Errorf("%s domains = %d, want 1", cat, got)
		}
	}
	infra := w.InfraDomain(isp.TELE)
	if infra == nil || infra.Name() != "INFRA" {
		t.Fatalf("InfraDomain = %v, want the INFRA domain", infra)
	}
	if infra != w.InfraDomain(isp.CER) {
		t.Error("InfraDomain should be shared across categories")
	}
	// The widened lookahead: TELE sub-shard pairs are floored at TELE's
	// IntraOWD, which becomes the new minimum over all cross-domain pairs.
	cfg := underlay.DefaultConfig()
	if w.Lookahead() != cfg.IntraOWD[isp.TELE] {
		t.Errorf("lookahead = %v, want %v", w.Lookahead(), cfg.IntraOWD[isp.TELE])
	}
}

func TestLegacyPartitionUnchangedForSmallShards(t *testing.T) {
	ref := NewShardedWorld(7)
	cfg := underlay.DefaultConfig()
	for _, shards := range []int{0, 1, 4, DefaultShards} {
		w := NewShardedWorldN(7, shards)
		if len(w.Domains()) != len(ref.Domains()) {
			t.Fatalf("shards=%d: %d domains, want %d", shards, len(w.Domains()), len(ref.Domains()))
		}
		for i, d := range w.Domains() {
			r := ref.Domains()[i]
			if d.Name() != r.Name() || d.Category() != r.Category() {
				t.Errorf("shards=%d: domain %d = %s/%v, want %s/%v", shards, i, d.Name(), d.Category(), r.Name(), r.Category())
			}
		}
		if w.Lookahead() != ref.Lookahead() {
			t.Errorf("shards=%d: lookahead %v, want %v", shards, w.Lookahead(), ref.Lookahead())
		}
		if w.infra != nil || w.floors != nil {
			t.Errorf("shards=%d: legacy world must have no infra domain or floors", shards)
		}
		_ = cfg
	}
}

// scaledTelePartition recomputes the sub-shard prefix groups exactly as the
// world constructor does, so boundary addresses can be checked against the
// trie without exporting pool internals.
func scaledTelePartition(kTele int) (groups [][]ipam.Prefix, infraTail ipam.Prefix) {
	reg := asnmap.SyntheticInternet()
	main, tail, ok := ipam.CarveTail(reg.PrefixesFor(isp.TELE), infraCarveBits)
	if !ok {
		panic("carve failed")
	}
	return ipam.SplitEvenly(main, kTele), tail
}

func TestScaledBoundaryRouting(t *testing.T) {
	const shards = 12
	w := NewShardedWorldN(7, shards)
	groups, infraTail := scaledTelePartition(shards - 5)
	tele := w.DomainsOf(isp.TELE)
	if len(tele) != len(groups) {
		t.Fatalf("TELE sub-shards = %d, want %d", len(tele), len(groups))
	}
	u32 := func(a netip.Addr) uint32 {
		b := a.As4()
		return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	}
	addrAt := func(p ipam.Prefix, off uint32) netip.Addr {
		v := u32(p.Addr()) + off
		return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	}
	for gi, g := range groups {
		want := tele[gi].ID()
		for _, p := range g {
			// First usable and last usable address of every prefix — the
			// sub-shard boundaries the trie has to get right.
			for _, a := range []netip.Addr{addrAt(p, 1), addrAt(p, uint32(p.Size()-2))} {
				rem, ok := w.router.Resolve(a)
				if !ok {
					t.Fatalf("Resolve(%s) failed", a)
				}
				if rem.Domain != want {
					t.Errorf("addr %s (prefix %s): domain %d, want %d (%s)", a, p, rem.Domain, want, tele[gi].Name())
				}
				if rem.ISP != isp.TELE {
					t.Errorf("addr %s: ISP %v, want TELE", a, rem.ISP)
				}
				// The ISP registry must agree: sub-sharding repartitions
				// domains, never the IP→ISP mapping the analysis layer uses.
				if got, _ := w.Registry.ISPOf(a); got != isp.TELE {
					t.Errorf("Registry.ISPOf(%s) = %v, want TELE", a, got)
				}
			}
		}
	}
	// The carved infrastructure tail routes to the infra domain, not a TELE
	// sub-shard, while still resolving as TELE in the registry.
	infraAddr := addrAt(infraTail, 1)
	rem, ok := w.router.Resolve(infraAddr)
	if !ok || rem.Domain != w.infra.id {
		t.Errorf("infra tail addr %s: resolved to domain %d ok=%v, want infra domain %d", infraAddr, rem.Domain, ok, w.infra.id)
	}
	if rem.ISP != isp.TELE {
		t.Errorf("infra tail addr %s: ISP %v, want TELE", infraAddr, rem.ISP)
	}
	if got, _ := w.Registry.ISPOf(infraAddr); got != isp.TELE {
		t.Errorf("Registry.ISPOf(%s) = %v, want TELE", infraAddr, got)
	}
}

func TestScaledRejoinDifferentSubShard(t *testing.T) {
	w := NewShardedWorldN(7, 12)
	tele := w.DomainsOf(isp.TELE)
	spec := HostSpec{ISP: isp.TELE, UploadBps: 64 << 10}
	// A peer joins through sub-shard 0, churns away, and re-joins through
	// sub-shard 3: the fresh address must route to its new owning domain.
	env0, err := tele[0].Spawn(spec)
	if err != nil {
		t.Fatal(err)
	}
	env0.Close()
	env3, err := tele[3].Spawn(spec)
	if err != nil {
		t.Fatal(err)
	}
	if env0.Addr() == env3.Addr() {
		t.Fatalf("rejoin reused address %s", env0.Addr())
	}
	rem, ok := w.router.Resolve(env3.Addr())
	if !ok || rem.Domain != tele[3].ID() {
		t.Errorf("rejoined addr %s: domain %d ok=%v, want %d", env3.Addr(), rem.Domain, ok, tele[3].ID())
	}
	// The old address still resolves to its old sub-shard (datagrams in
	// flight to a departed peer must be routed there and dropped there).
	rem0, ok := w.router.Resolve(env0.Addr())
	if !ok || rem0.Domain != tele[0].ID() {
		t.Errorf("departed addr %s: domain %d ok=%v, want %d", env0.Addr(), rem0.Domain, ok, tele[0].ID())
	}
}

func TestScaledFloorMatrix(t *testing.T) {
	w := NewShardedWorldN(7, 12)
	cfg := underlay.DefaultConfig()
	n := len(w.domains)
	intraTele := cfg.IntraOWD[isp.TELE]
	for i, a := range w.domains {
		for j, b := range w.domains {
			got := w.floors[i*n+j]
			var want time.Duration
			switch {
			case i == j:
				want = 0
			case a == w.infra || b == w.infra:
				want = 2 * intraTele
			case a.cat == b.cat:
				want = cfg.IntraOWD[a.cat]
			}
			if got != want {
				t.Errorf("floor[%s→%s] = %v, want %v", a.name, b.name, got, want)
			}
		}
	}
}

// TestScaledFloorEnforced sends a datagram between two TELE sub-shards and
// checks it never arrives before the floor, which is what the widened
// lookahead's correctness rests on.
func TestScaledFloorEnforced(t *testing.T) {
	w := NewShardedWorldN(7, 12)
	tele := w.DomainsOf(isp.TELE)
	src, err := tele[0].Spawn(HostSpec{ISP: isp.TELE, UploadBps: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := tele[1].Spawn(HostSpec{ISP: isp.TELE, UploadBps: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// Tag each datagram with its send time via the nonce so per-send latency
	// is checkable despite jitter reordering and the occasional loss.
	type rx struct {
		sentMs  uint32
		arrival time.Duration
	}
	var got []rx
	dst.SetHandler(handlerFunc(func(from netip.Addr, msg wire.Message) {
		p := msg.(*wire.Ping)
		got = append(got, rx{sentMs: p.Nonce, arrival: tele[1].Engine().Now()})
	}))
	const sends = 50
	for i := 0; i < sends; i++ {
		i := i
		at := time.Duration(i) * time.Millisecond
		src.Domain().At(at, func() { src.Send(dst.Addr(), &wire.Ping{Nonce: uint32(i)}) })
	}
	if err := w.Run(time.Second, 1); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no datagrams arrived")
	}
	floor := underlay.DefaultConfig().IntraOWD[isp.TELE]
	for _, r := range got {
		sent := time.Duration(r.sentMs) * time.Millisecond
		if r.arrival-sent < floor {
			t.Errorf("datagram sent at %v arrived at %v: latency %v below the %v floor", sent, r.arrival, r.arrival-sent, floor)
		}
	}
}

type handlerFunc func(from netip.Addr, msg wire.Message)

func (f handlerFunc) HandleMessage(from netip.Addr, msg wire.Message) { f(from, msg) }
