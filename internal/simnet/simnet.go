// Package simnet binds protocol nodes (internal/node) to the discrete-event
// engine (internal/eventsim) and the simulated underlay (internal/underlay).
//
// A World owns one or more shard domains. Each Domain has its own engine,
// underlay network, address pool, and RNG streams; nodes spawned in a domain
// live entirely on that domain's event loop. A single-domain world (NewWorld)
// behaves exactly like the classic one-engine simulator and exposes the
// engine and network directly. A sharded world (NewShardedWorld) partitions
// the synthetic internet by ISP — the paper's locality structure becomes the
// unit of parallelism — and runs the domains in conservative lockstep
// windows whose lookahead is the minimum cross-domain underlay latency:
// intra-ISP traffic (the vast majority, which is the paper's whole point)
// never crosses a shard, and cross-domain datagrams are exchanged at window
// barriers, always arriving at least one lookahead after they were sent.
//
// With CodecCheck enabled, every datagram is round-tripped through the wire
// codec before delivery, proving the simulation exchanges exactly what the
// real protocol would put on the wire (integration tests enable this; large
// experiments skip it for speed — sizes are always computed from the codec
// either way).
package simnet

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"pplivesim/internal/asnmap"
	"pplivesim/internal/eventsim"
	"pplivesim/internal/ipam"
	"pplivesim/internal/isp"
	"pplivesim/internal/node"
	"pplivesim/internal/underlay"
	"pplivesim/internal/wire"
)

// World wires together engines, underlays, and the address plan.
type World struct {
	// Engine and Network are the single-domain fast path: for worlds built
	// with NewWorld/NewWorldConfig they alias domain 0's engine and network,
	// preserving the classic one-engine API. They are nil for sharded
	// worlds, whose callers go through Domains.
	Engine   *eventsim.Engine
	Network  *underlay.Network
	Registry *asnmap.Registry

	// CodecCheck round-trips every datagram through the wire codec before
	// delivery, failing loudly on any encode/decode mismatch.
	CodecCheck bool

	domains   []*Domain
	router    *router
	lookahead time.Duration

	// infra is the dedicated infrastructure domain of a scaled partition
	// (Shards > DefaultShards); nil otherwise.
	infra *Domain
	// floors holds the per-(src,dst)-domain synthetic minimum wire latency of
	// a scaled partition, indexed src*len(domains)+dst; nil for legacy and
	// single-domain worlds (whose trajectories must stay bit-identical).
	floors []time.Duration
	// barrierHooks run single-threaded after every window-barrier flush.
	barrierHooks []func()

	// buildRand drives single-threaded build-time draws (arrival schedules);
	// it belongs to no domain so build plans don't perturb domain streams.
	buildRand *rand.Rand

	// pools is the single-domain world's lazy per-category allocator.
	pools map[isp.ISP]*ipam.Pool
}

// Domain is one shard: an engine, an underlay network, and an address range.
type Domain struct {
	id    int
	name  string
	cat   isp.ISP // zero for the single-domain world and the infra domain
	world *World
	eng   *eventsim.Engine
	net   *underlay.Network
	pool  *ipam.Pool // nil for the single-domain world (uses World.pools)
	// pools is the infrastructure domain's per-category allocator: unlike
	// every other sharded domain it hosts several ISP categories (trackers
	// and bootstrap for each), carved as small tail blocks out of the
	// categories' address ranges.
	pools map[isp.ISP]*ipam.Pool
	envs  int // spawned envs (diagnostics)
}

// mixSeed derives a decorrelated per-domain seed from the world seed
// (splitmix64 finalizer).
func mixSeed(seed int64, salt int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(salt+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// NewWorld builds a single-domain world with the default underlay
// configuration and the synthetic internet address plan.
func NewWorld(seed int64) *World {
	return NewWorldConfig(seed, underlay.DefaultConfig())
}

// NewWorldConfig builds a single-domain world with a custom underlay
// configuration.
func NewWorldConfig(seed int64, cfg underlay.Config) *World {
	eng := eventsim.New(seed)
	net := underlay.New(eng, cfg)
	w := &World{
		Engine:    eng,
		Network:   net,
		Registry:  asnmap.SyntheticInternet(),
		buildRand: rand.New(rand.NewSource(mixSeed(seed, buildSalt))),
		pools:     make(map[isp.ISP]*ipam.Pool),
	}
	w.domains = []*Domain{{id: 0, name: "all", world: w, eng: eng, net: net}}
	return w
}

// buildSalt decorrelates the build-time RNG from per-domain engine seeds.
const buildSalt = 0x6275696c64 // "build"

// NewShardedWorld builds an ISP-partitioned world with the default underlay
// configuration. TELE — over half the paper's population — is split into two
// sub-domains along its prefix list so no single shard dominates the run.
func NewShardedWorld(seed int64) *World {
	return NewShardedWorldConfig(seed, underlay.DefaultConfig())
}

// NewShardedWorldConfig builds an ISP-partitioned world with a custom
// underlay configuration.
func NewShardedWorldConfig(seed int64, cfg underlay.Config) *World {
	return NewShardedWorldConfigN(seed, cfg, DefaultShards)
}

// NewShardedWorldN builds a sharded world with the default underlay
// configuration and the given partition degree (see NewShardedWorldConfigN).
func NewShardedWorldN(seed int64, shards int) *World {
	return NewShardedWorldConfigN(seed, underlay.DefaultConfig(), shards)
}

// NewShardedWorldConfigN builds a sharded world with shards domains. Any
// value up to DefaultShards produces the legacy six-domain ISP partition,
// bit-identical to NewShardedWorldConfig — the pinned golden digests depend
// on this. Values above DefaultShards engage the scaled partition: TELE is
// split into shards-5 sub-shards by address range (ipam.SplitEvenly over its
// prefix list), the remaining four categories keep one domain each, and a
// dedicated infrastructure domain hosts bootstrap/tracker/source addresses
// carved as small tail blocks out of the TELE/CNC/CER ranges. Scaled
// partitions install synthetic per-pair latency floors (see
// underlay.SetRemoteFloor): cross-sub-shard intra-ISP traffic is floored at
// the category's IntraOWD and infrastructure pairs at twice TELE's, so the
// conservative lookahead rises from the natural cross-pair minimum to the
// intra-ISP base OWD, roughly halving the number of barrier windows.
func NewShardedWorldConfigN(seed int64, cfg underlay.Config, shards int) *World {
	reg := asnmap.SyntheticInternet()
	w := &World{
		Registry:  reg,
		buildRand: rand.New(rand.NewSource(mixSeed(seed, buildSalt))),
	}
	type part struct {
		name     string
		cat      isp.ISP
		prefixes []ipam.Prefix
		infra    map[isp.ISP][]ipam.Prefix // per-category pools; infra domain only
	}
	var parts []part
	infraIdx := -1
	if shards <= DefaultShards {
		// Legacy partition: five ISP categories with TELE halved along its
		// prefix list. This construction must stay byte-identical — every
		// pinned golden digest runs through it.
		for _, cat := range isp.All() {
			prefixes := reg.PrefixesFor(cat)
			if cat == isp.TELE && len(prefixes) >= 2 {
				half := (len(prefixes) + 1) / 2
				parts = append(parts,
					part{name: "TELE-0", cat: cat, prefixes: prefixes[:half]},
					part{name: "TELE-1", cat: cat, prefixes: prefixes[half:]})
				continue
			}
			parts = append(parts, part{name: cat.String(), cat: cat, prefixes: prefixes})
		}
	} else {
		kTele := shards - 5 // four single-category domains + infra
		infraPools := make(map[isp.ISP][]ipam.Prefix)
		for _, cat := range isp.All() {
			prefixes := reg.PrefixesFor(cat)
			// Reserve a tail block for infrastructure services in the
			// categories that host them (bootstrap and the tracker groups:
			// TELE, CNC, CER). The carve partitions the space exactly, so
			// viewer pools and the infra pool can never collide.
			switch cat {
			case isp.TELE, isp.CNC, isp.CER:
				if main, tail, ok := ipam.CarveTail(prefixes, infraCarveBits); ok {
					prefixes = main
					infraPools[cat] = []ipam.Prefix{tail}
				}
			}
			if cat == isp.TELE {
				for i, group := range ipam.SplitEvenly(prefixes, kTele) {
					parts = append(parts, part{name: fmt.Sprintf("TELE-%d", i), cat: cat, prefixes: group})
				}
				continue
			}
			parts = append(parts, part{name: cat.String(), cat: cat, prefixes: prefixes})
		}
		infraIdx = len(parts)
		parts = append(parts, part{name: "INFRA", infra: infraPools})
	}
	rt := &router{world: w, trie: ipam.NewTrie()}
	for id, p := range parts {
		eng := eventsim.New(mixSeed(seed, id))
		net := underlay.New(eng, cfg)
		net.SetRouter(rt, id)
		d := &Domain{
			id:    id,
			name:  p.name,
			cat:   p.cat,
			world: w,
			eng:   eng,
			net:   net,
		}
		if p.infra != nil {
			d.pools = make(map[isp.ISP]*ipam.Pool)
			for _, cat := range isp.All() {
				pfxs, ok := p.infra[cat]
				if !ok {
					continue
				}
				d.pools[cat] = ipam.NewPool(pfxs...)
				for _, pfx := range pfxs {
					rt.addRoute(pfx, id, cat)
				}
			}
		} else {
			d.pool = ipam.NewPool(p.prefixes...)
			for _, pfx := range p.prefixes {
				rt.addRoute(pfx, id, p.cat)
			}
		}
		w.domains = append(w.domains, d)
	}
	if infraIdx >= 0 {
		w.infra = w.domains[infraIdx]
	}
	n := len(w.domains)
	rt.boxes = make([][]xmsg, n*n)
	w.router = rt

	if w.infra == nil {
		// Conservative lookahead: the smallest one-way delay any cross-domain
		// host pair can see. MinPairOWD uses the identical float expression as
		// the per-pair multiplier, so this is an exact lower bound — a datagram
		// sent at t to another shard can never arrive before t+lookahead.
		for i, a := range w.domains {
			for j, b := range w.domains {
				if i == j {
					continue
				}
				if m := cfg.MinPairOWD(a.cat, b.cat); w.lookahead == 0 || m < w.lookahead {
					w.lookahead = m
				}
			}
		}
		return w
	}

	// Scaled partition: install the synthetic latency floors and derive the
	// lookahead from them. Same-category sub-shard pairs are floored at the
	// category's base IntraOWD (a cross-sub-shard peer can never look closer
	// than the intra-ISP base), and every pair touching the infrastructure
	// domain at twice TELE's IntraOWD (bootstrap/tracker RPCs are not
	// latency-critical, and the wide floor keeps infra traffic off the
	// lookahead-critical path).
	infraFloor := 2 * cfg.IntraOWD[isp.TELE]
	w.floors = make([]time.Duration, n*n)
	for i, a := range w.domains {
		for j, b := range w.domains {
			if i == j {
				continue
			}
			switch {
			case a == w.infra || b == w.infra:
				w.floors[i*n+j] = infraFloor
			case a.cat == b.cat:
				w.floors[i*n+j] = cfg.IntraOWD[a.cat]
			}
		}
	}
	for _, d := range w.domains {
		src := d.id
		d.net.SetRemoteFloor(func(dst int) time.Duration { return w.floors[src*n+dst] })
	}
	// Every cross-domain arrival is bounded below by max(natural pair
	// minimum, floor); infra pairs rely on the floor alone because the
	// infra domain spans several host categories.
	for i, a := range w.domains {
		for j, b := range w.domains {
			if i == j {
				continue
			}
			bound := w.floors[i*n+j]
			if a != w.infra && b != w.infra {
				if m := cfg.MinPairOWD(a.cat, b.cat); m > bound {
					bound = m
				}
			}
			if w.lookahead == 0 || bound < w.lookahead {
				w.lookahead = bound
			}
		}
	}
	return w
}

// DefaultShards is the number of domains a sharded world partitions into
// (the five ISP categories with TELE split in two).
const DefaultShards = 6

// infraCarveBits is the prefix length of the tail block reserved per category
// for the scaled partition's infrastructure domain (/20 ≈ 4k addresses —
// bootstrap, tracker groups, and sources need a few dozen).
const infraCarveBits = 20

// Domains returns every shard domain in id order.
func (w *World) Domains() []*Domain { return w.domains }

// DomainsOf returns the domains holding the given ISP category, in id order.
// Single-domain worlds return the sole domain for every category.
func (w *World) DomainsOf(category isp.ISP) []*Domain {
	if w.router == nil {
		return w.domains
	}
	var out []*Domain
	for _, d := range w.domains {
		if d.cat == category {
			out = append(out, d)
		}
	}
	return out
}

// Lookahead returns the conservative synchronization window of a sharded
// world (zero for single-domain worlds).
func (w *World) Lookahead() time.Duration { return w.lookahead }

// InfraDomain returns the domain that should host infrastructure services
// (bootstrap, trackers, sources) whose addresses belong to the given
// category: the dedicated infrastructure domain of a scaled partition when
// one exists, otherwise the first domain of the category.
func (w *World) InfraDomain(category isp.ISP) *Domain {
	if w.infra != nil {
		return w.infra
	}
	return w.DomainsOf(category)[0]
}

// OnBarrier registers fn to run single-threaded at every window barrier of a
// sharded run, after the cross-domain mailboxes have been drained. Scenario
// code uses this to fold per-domain telemetry aggregates without locking.
// Single-domain worlds never invoke the hooks (they have no barriers).
func (w *World) OnBarrier(fn func()) { w.barrierHooks = append(w.barrierHooks, fn) }

// BuildRand returns the world's build-time RNG for single-threaded scenario
// assembly (arrival schedules and the like). It is decorrelated from every
// domain's event-time streams.
func (w *World) BuildRand() *rand.Rand { return w.buildRand }

// Run executes the world to the horizon. For sharded worlds, workers is the
// number of goroutines executing synchronization windows: values below 2 run
// everything on the calling goroutine. The trajectory — every event, draw,
// and delivery — is identical for any worker count, because the window
// schedule and cross-domain exchange order are pure functions of barrier
// state.
func (w *World) Run(horizon time.Duration, workers int) error {
	if w.router == nil {
		return w.Engine.Run(horizon)
	}
	engines := make([]*eventsim.Engine, len(w.domains))
	for i, d := range w.domains {
		engines[i] = d.eng
	}
	flush := w.router.flush
	if len(w.barrierHooks) > 0 {
		hooks := w.barrierHooks
		flush = func() {
			w.router.flush()
			for _, fn := range hooks {
				fn()
			}
		}
	}
	g := &eventsim.Group{
		Engines:   engines,
		Lookahead: w.lookahead,
		Workers:   workers,
		Flush:     flush,
	}
	return g.Run(horizon)
}

// Now returns the current virtual time (domains agree between windows and
// after Run).
func (w *World) Now() time.Duration { return w.domains[0].eng.Now() }

// EventsProcessed sums executed events across domains.
func (w *World) EventsProcessed() uint64 {
	var total uint64
	for _, d := range w.domains {
		total += d.eng.Processed()
	}
	return total
}

// NetStats sums the underlay delivery counters across domains.
func (w *World) NetStats() (delivered, droppedLoss, droppedQueue, droppedNoHost uint64) {
	for _, d := range w.domains {
		de, lo, qu, no := d.net.Stats()
		delivered += de
		droppedLoss += lo
		droppedQueue += qu
		droppedNoHost += no
	}
	return
}

// LookupHost finds an attached host by address in any domain.
func (w *World) LookupHost(addr netip.Addr) (*underlay.Host, bool) {
	for _, d := range w.domains {
		if h, ok := d.net.Lookup(addr); ok {
			return h, true
		}
	}
	return nil, false
}

// ID returns the domain's shard index.
func (d *Domain) ID() int { return d.id }

// Name returns the domain's display name (ISP category, with TELE-0/TELE-1
// for the split).
func (d *Domain) Name() string { return d.name }

// Category returns the domain's ISP category (zero for the single-domain
// world).
func (d *Domain) Category() isp.ISP { return d.cat }

// Engine returns the domain's event engine.
func (d *Domain) Engine() *eventsim.Engine { return d.eng }

// Network returns the domain's underlay network.
func (d *Domain) Network() *underlay.Network { return d.net }

// At schedules fn on this domain's engine at the absolute virtual time at.
func (d *Domain) At(at time.Duration, fn func()) { d.eng.At(at, fn) }

// After schedules fn on this domain's engine after delay dl.
func (d *Domain) After(dl time.Duration, fn func()) { d.eng.After(dl, fn) }

// AllocAddr allocates a fresh address in the given ISP category.
func (w *World) AllocAddr(category isp.ISP) (netip.Addr, error) {
	return w.domains[0].allocAddr(category)
}

func (d *Domain) allocAddr(category isp.ISP) (netip.Addr, error) {
	if d.pools != nil {
		pool, ok := d.pools[category]
		if !ok {
			return netip.Addr{}, fmt.Errorf("simnet: domain %s has no %s infrastructure block", d.name, category)
		}
		addr, err := pool.Alloc()
		if err != nil {
			return netip.Addr{}, fmt.Errorf("alloc %s infrastructure address: %w", category, err)
		}
		return addr, nil
	}
	if d.pool != nil {
		if category != d.cat {
			return netip.Addr{}, fmt.Errorf("simnet: domain %s cannot allocate %s address", d.name, category)
		}
		addr, err := d.pool.Alloc()
		if err != nil {
			return netip.Addr{}, fmt.Errorf("alloc %s address: %w", category, err)
		}
		return addr, nil
	}
	w := d.world
	pool, ok := w.pools[category]
	if !ok {
		var err error
		pool, err = w.Registry.PoolFor(category)
		if err != nil {
			return netip.Addr{}, err
		}
		w.pools[category] = pool
	}
	addr, err := pool.Alloc()
	if err != nil {
		return netip.Addr{}, fmt.Errorf("alloc %s address: %w", category, err)
	}
	return addr, nil
}

// HostSpec configures a spawned node's host.
type HostSpec struct {
	ISP       isp.ISP
	UploadBps float64       // access uplink capacity, bytes/sec
	ProcDelay time.Duration // per-datagram application processing delay
}

// Spawn allocates an address, attaches a host, and returns the node's
// environment. On a single-domain world any category spawns in the sole
// domain; sharded callers use Domain.Spawn. The handler may be installed
// later via SetHandler (services typically construct themselves around the
// env).
func (w *World) Spawn(spec HostSpec) (*Env, error) {
	return w.domains[0].Spawn(spec)
}

// SpawnAt attaches a host at a specific address (which must belong to the
// registry so analysis can resolve it).
func (w *World) SpawnAt(addr netip.Addr, spec HostSpec) (*Env, error) {
	return w.domains[0].SpawnAt(addr, spec)
}

// Spawn allocates an address in this domain and attaches a host.
func (d *Domain) Spawn(spec HostSpec) (*Env, error) {
	addr, err := d.allocAddr(spec.ISP)
	if err != nil {
		return nil, err
	}
	return d.SpawnAt(addr, spec)
}

// SpawnAt attaches a host at a specific address in this domain.
func (d *Domain) SpawnAt(addr netip.Addr, spec HostSpec) (*Env, error) {
	host := &underlay.Host{
		Addr:      addr,
		ISP:       spec.ISP,
		UploadBps: spec.UploadBps,
		ProcDelay: spec.ProcDelay,
	}
	env := &Env{domain: d, host: host, rng: d.eng.NewRand()}
	if err := d.net.Attach(host, env.deliver); err != nil {
		return nil, err
	}
	d.envs++
	return env, nil
}

// xmsg is one cross-domain datagram parked between synchronization windows.
type xmsg struct {
	arrival time.Duration
	from    netip.Addr
	to      netip.Addr
	size    int
	payload any
}

// router implements underlay.Router over the world's domain partition.
// Destination domains are a pure function of the address prefix (the trie is
// read-only after construction), so concurrent Resolve calls from different
// shard workers are safe and worker-count invariant. Each (src,dst) mailbox
// has exactly one writer — src's worker — during a window, and is drained
// single-threaded by flush at the barrier.
type router struct {
	world *World
	trie  *ipam.Trie
	// entries maps trie labels to (domain, host ISP category). The
	// indirection exists for the infrastructure domain, which hosts several
	// categories — a destination's ISP can no longer be read off its owning
	// domain.
	entries []routeEntry
	boxes   [][]xmsg // indexed src*len(domains)+dst
}

type routeEntry struct {
	dom int
	cat isp.ISP
}

// addRoute registers a prefix as belonging to domain dom with hosts of the
// given ISP category.
func (r *router) addRoute(pfx ipam.Prefix, dom int, cat isp.ISP) {
	r.trie.Insert(pfx, len(r.entries))
	r.entries = append(r.entries, routeEntry{dom: dom, cat: cat})
}

// Resolve implements underlay.Router.
func (r *router) Resolve(to netip.Addr) (underlay.Remote, bool) {
	label, ok := r.trie.Lookup(to)
	if !ok {
		return underlay.Remote{}, false
	}
	e := r.entries[label]
	return underlay.Remote{Domain: e.dom, ISP: e.cat}, true
}

// Forward implements underlay.Router.
func (r *router) Forward(srcDomain, dstDomain int, arrival time.Duration, from, to netip.Addr, size int, payload any) {
	box := &r.boxes[srcDomain*len(r.world.domains)+dstDomain]
	*box = append(*box, xmsg{arrival: arrival, from: from, to: to, size: size, payload: payload})
}

// flush drains every mailbox into its destination domain. It runs
// single-threaded at each window barrier; the fixed (dst, src) drain order
// makes the injection sequence — and therefore event seq tie-breaks — a pure
// function of window state, independent of the worker count.
func (r *router) flush() {
	n := len(r.world.domains)
	for dst := 0; dst < n; dst++ {
		net := r.world.domains[dst].net
		for src := 0; src < n; src++ {
			box := &r.boxes[src*n+dst]
			for i := range *box {
				m := &(*box)[i]
				net.Inject(m.arrival, m.from, m.to, m.size, m.payload)
				m.payload = nil
			}
			*box = (*box)[:0]
		}
	}
}

// Env implements node.Env over the simulated world.
type Env struct {
	domain  *Domain
	host    *underlay.Host
	rng     *rand.Rand
	handler node.Handler

	// Taps observe every datagram into/out of this node (the capture
	// package uses them as its Wireshark equivalent).
	recvTaps []Tap
	sendTaps []Tap

	closed bool
}

var _ node.Env = (*Env)(nil)

// Tap observes a datagram at a node boundary.
type Tap func(peer netip.Addr, msg wire.Message, size int)

// Addr implements node.Env.
func (e *Env) Addr() netip.Addr { return e.host.Addr }

// ISP returns the host's ISP category.
func (e *Env) ISP() isp.ISP { return e.host.ISP }

// Host exposes the underlying underlay host (for stats).
func (e *Env) Host() *underlay.Host { return e.host }

// Domain returns the shard domain the node lives in.
func (e *Env) Domain() *Domain { return e.domain }

// Now implements node.Env.
func (e *Env) Now() time.Duration { return e.domain.eng.Now() }

// Rand implements node.Env.
func (e *Env) Rand() *rand.Rand { return e.rng }

// After implements node.Env.
func (e *Env) After(d time.Duration, fn func()) node.Cancel {
	t := e.domain.eng.After(d, func() {
		if !e.closed {
			fn()
		}
	})
	return t.Stop
}

// Every implements node.Env. The periodic timer self-cancels once the env
// closes, so departed nodes do not keep feeding the event queue.
func (e *Env) Every(d time.Duration, fn func()) node.Cancel {
	var t eventsim.Timer
	t = e.domain.eng.Every(d, func() {
		if e.closed {
			t.Stop()
			return
		}
		fn()
	})
	return t.Stop
}

// UplinkBacklog implements node.Env.
func (e *Env) UplinkBacklog() time.Duration {
	return e.host.QueueDelay(e.domain.eng.Now())
}

// SetHandler installs the node's message handler.
func (e *Env) SetHandler(h node.Handler) { e.handler = h }

// TapRecv registers an observer for delivered datagrams.
func (e *Env) TapRecv(t Tap) { e.recvTaps = append(e.recvTaps, t) }

// TapSend registers an observer for outgoing datagrams.
func (e *Env) TapSend(t Tap) { e.sendTaps = append(e.sendTaps, t) }

// Send implements node.Env.
func (e *Env) Send(to netip.Addr, msg wire.Message) {
	if e.closed {
		return
	}
	size := wire.Size(msg)
	payload := any(msg)
	if e.domain.world.CodecCheck {
		decoded, err := wire.Unmarshal(wire.Marshal(msg))
		if err != nil {
			panic(fmt.Sprintf("simnet: codec check failed for %s: %v", msg.Kind(), err))
		}
		payload = decoded
	}
	for _, tap := range e.sendTaps {
		tap(to, msg, size)
	}
	e.domain.net.Send(e.host, to, size, payload)
}

// deliver is the underlay handler for this node.
func (e *Env) deliver(from netip.Addr, size int, payload any) {
	if e.closed {
		return
	}
	msg, ok := payload.(wire.Message)
	if !ok {
		panic(fmt.Sprintf("simnet: non-wire payload %T delivered to %s", payload, e.host.Addr))
	}
	for _, tap := range e.recvTaps {
		tap(from, msg, size)
	}
	if e.handler != nil {
		e.handler.HandleMessage(from, msg)
	}
}

// Close detaches the node from the network and disarms its timers. It is
// idempotent.
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.domain.net.Detach(e.host.Addr)
	e.domain.envs--
}

// Closed reports whether the env has been closed.
func (e *Env) Closed() bool { return e.closed }

// LiteHandler receives messages for flow-fidelity swarm members, addressed
// by member row index instead of per-member handler objects.
type LiteHandler interface {
	HandleLite(i int, from netip.Addr, msg wire.Message)
}

// LiteEnv is the minimal per-host attachment used by flow-fidelity swarm
// members: an underlay host plus a row index into the owner's flat state. A
// full Env costs roughly 5KB — almost all of it the per-env rand.Rand — which
// a million-member background population cannot afford; a LiteEnv adds a few
// dozen bytes on top of its host. It has no RNG, no timers, and no taps:
// everything stateful lives in the owning swarm.
type LiteEnv struct {
	domain *Domain
	host   *underlay.Host
	owner  LiteHandler
	idx    int32
	closed bool
}

// SpawnLite allocates an address in this domain and attaches a lightweight
// host whose deliveries go to owner.HandleLite. The row index is installed
// afterwards via SetIndex (owners typically need the address before they can
// assign a row).
func (d *Domain) SpawnLite(spec HostSpec, owner LiteHandler) (*LiteEnv, error) {
	addr, err := d.allocAddr(spec.ISP)
	if err != nil {
		return nil, err
	}
	host := &underlay.Host{
		Addr:      addr,
		ISP:       spec.ISP,
		UploadBps: spec.UploadBps,
		ProcDelay: spec.ProcDelay,
	}
	env := &LiteEnv{domain: d, host: host, owner: owner, idx: -1}
	if err := d.net.Attach(host, env.deliver); err != nil {
		return nil, err
	}
	d.envs++
	return env, nil
}

// SetIndex installs the owner's row index for this member.
func (e *LiteEnv) SetIndex(i int) { e.idx = int32(i) }

// Addr returns the member's address.
func (e *LiteEnv) Addr() netip.Addr { return e.host.Addr }

// Host exposes the underlying underlay host (for stats).
func (e *LiteEnv) Host() *underlay.Host { return e.host }

// UplinkBacklog is the host's transmit-queue delay now.
func (e *LiteEnv) UplinkBacklog() time.Duration {
	return e.host.QueueDelay(e.domain.eng.Now())
}

// Send transmits a message from this member's host, with the same codec
// check Env.Send applies.
func (e *LiteEnv) Send(to netip.Addr, msg wire.Message) {
	if e.closed {
		return
	}
	size := wire.Size(msg)
	payload := any(msg)
	if e.domain.world.CodecCheck {
		decoded, err := wire.Unmarshal(wire.Marshal(msg))
		if err != nil {
			panic(fmt.Sprintf("simnet: codec check failed for %s: %v", msg.Kind(), err))
		}
		payload = decoded
	}
	e.domain.net.Send(e.host, to, size, payload)
}

// deliver is the underlay handler for this member.
func (e *LiteEnv) deliver(from netip.Addr, size int, payload any) {
	if e.closed || e.idx < 0 {
		return
	}
	msg, ok := payload.(wire.Message)
	if !ok {
		panic(fmt.Sprintf("simnet: non-wire payload %T delivered to %s", payload, e.host.Addr))
	}
	_ = size
	e.owner.HandleLite(int(e.idx), from, msg)
}

// Close detaches the member from the network. It is idempotent.
func (e *LiteEnv) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.domain.net.Detach(e.host.Addr)
	e.domain.envs--
}
