// Package simnet binds protocol nodes (internal/node) to the discrete-event
// engine (internal/eventsim) and the simulated underlay (internal/underlay).
//
// A World owns one engine and one network, allocates addresses from the
// synthetic internet plan, and spawns node environments. With CodecCheck
// enabled, every datagram is round-tripped through the wire codec before
// delivery, proving the simulation exchanges exactly what the real protocol
// would put on the wire (integration tests enable this; large experiments
// skip it for speed — sizes are always computed from the codec either way).
package simnet

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"pplivesim/internal/asnmap"
	"pplivesim/internal/eventsim"
	"pplivesim/internal/ipam"
	"pplivesim/internal/isp"
	"pplivesim/internal/node"
	"pplivesim/internal/underlay"
	"pplivesim/internal/wire"
)

// World wires together the engine, underlay, and address plan.
type World struct {
	Engine   *eventsim.Engine
	Network  *underlay.Network
	Registry *asnmap.Registry

	// CodecCheck round-trips every datagram through the wire codec before
	// delivery, failing loudly on any encode/decode mismatch.
	CodecCheck bool

	pools map[isp.ISP]*ipam.Pool
	envs  map[netip.Addr]*Env
}

// NewWorld builds a world with the default underlay configuration and the
// synthetic internet address plan.
func NewWorld(seed int64) *World {
	return NewWorldConfig(seed, underlay.DefaultConfig())
}

// NewWorldConfig builds a world with a custom underlay configuration.
func NewWorldConfig(seed int64, cfg underlay.Config) *World {
	eng := eventsim.New(seed)
	return &World{
		Engine:   eng,
		Network:  underlay.New(eng, cfg),
		Registry: asnmap.SyntheticInternet(),
		pools:    make(map[isp.ISP]*ipam.Pool),
		envs:     make(map[netip.Addr]*Env),
	}
}

// AllocAddr allocates a fresh address in the given ISP category.
func (w *World) AllocAddr(category isp.ISP) (netip.Addr, error) {
	pool, ok := w.pools[category]
	if !ok {
		var err error
		pool, err = w.Registry.PoolFor(category)
		if err != nil {
			return netip.Addr{}, err
		}
		w.pools[category] = pool
	}
	addr, err := pool.Alloc()
	if err != nil {
		return netip.Addr{}, fmt.Errorf("alloc %s address: %w", category, err)
	}
	return addr, nil
}

// HostSpec configures a spawned node's host.
type HostSpec struct {
	ISP       isp.ISP
	UploadBps float64       // access uplink capacity, bytes/sec
	ProcDelay time.Duration // per-datagram application processing delay
}

// Spawn allocates an address, attaches a host, and returns the node's
// environment. The handler may be installed later via SetHandler (services
// typically construct themselves around the env).
func (w *World) Spawn(spec HostSpec) (*Env, error) {
	addr, err := w.AllocAddr(spec.ISP)
	if err != nil {
		return nil, err
	}
	return w.SpawnAt(addr, spec)
}

// SpawnAt attaches a host at a specific address (which must belong to the
// registry so analysis can resolve it).
func (w *World) SpawnAt(addr netip.Addr, spec HostSpec) (*Env, error) {
	host := &underlay.Host{
		Addr:      addr,
		ISP:       spec.ISP,
		UploadBps: spec.UploadBps,
		ProcDelay: spec.ProcDelay,
	}
	env := &Env{world: w, host: host, rng: w.Engine.NewRand()}
	if err := w.Network.Attach(host, env.deliver); err != nil {
		return nil, err
	}
	w.envs[addr] = env
	return env, nil
}

// Env implements node.Env over the simulated world.
type Env struct {
	world   *World
	host    *underlay.Host
	rng     *rand.Rand
	handler node.Handler

	// Taps observe every datagram into/out of this node (the capture
	// package uses them as its Wireshark equivalent).
	recvTaps []Tap
	sendTaps []Tap

	closed bool
}

var _ node.Env = (*Env)(nil)

// Tap observes a datagram at a node boundary.
type Tap func(peer netip.Addr, msg wire.Message, size int)

// Addr implements node.Env.
func (e *Env) Addr() netip.Addr { return e.host.Addr }

// ISP returns the host's ISP category.
func (e *Env) ISP() isp.ISP { return e.host.ISP }

// Host exposes the underlying underlay host (for stats).
func (e *Env) Host() *underlay.Host { return e.host }

// Now implements node.Env.
func (e *Env) Now() time.Duration { return e.world.Engine.Now() }

// Rand implements node.Env.
func (e *Env) Rand() *rand.Rand { return e.rng }

// After implements node.Env.
func (e *Env) After(d time.Duration, fn func()) node.Cancel {
	t := e.world.Engine.After(d, func() {
		if !e.closed {
			fn()
		}
	})
	return t.Stop
}

// Every implements node.Env. The periodic timer self-cancels once the env
// closes, so departed nodes do not keep feeding the event queue.
func (e *Env) Every(d time.Duration, fn func()) node.Cancel {
	var t eventsim.Timer
	t = e.world.Engine.Every(d, func() {
		if e.closed {
			t.Stop()
			return
		}
		fn()
	})
	return t.Stop
}

// UplinkBacklog implements node.Env.
func (e *Env) UplinkBacklog() time.Duration {
	return e.host.QueueDelay(e.world.Engine.Now())
}

// SetHandler installs the node's message handler.
func (e *Env) SetHandler(h node.Handler) { e.handler = h }

// TapRecv registers an observer for delivered datagrams.
func (e *Env) TapRecv(t Tap) { e.recvTaps = append(e.recvTaps, t) }

// TapSend registers an observer for outgoing datagrams.
func (e *Env) TapSend(t Tap) { e.sendTaps = append(e.sendTaps, t) }

// Send implements node.Env.
func (e *Env) Send(to netip.Addr, msg wire.Message) {
	if e.closed {
		return
	}
	size := wire.Size(msg)
	payload := any(msg)
	if e.world.CodecCheck {
		decoded, err := wire.Unmarshal(wire.Marshal(msg))
		if err != nil {
			panic(fmt.Sprintf("simnet: codec check failed for %s: %v", msg.Kind(), err))
		}
		payload = decoded
	}
	for _, tap := range e.sendTaps {
		tap(to, msg, size)
	}
	e.world.Network.Send(e.host, to, size, payload)
}

// deliver is the underlay handler for this node.
func (e *Env) deliver(from netip.Addr, size int, payload any) {
	if e.closed {
		return
	}
	msg, ok := payload.(wire.Message)
	if !ok {
		panic(fmt.Sprintf("simnet: non-wire payload %T delivered to %s", payload, e.host.Addr))
	}
	for _, tap := range e.recvTaps {
		tap(from, msg, size)
	}
	if e.handler != nil {
		e.handler.HandleMessage(from, msg)
	}
}

// Close detaches the node from the network and disarms its timers. It is
// idempotent.
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.world.Network.Detach(e.host.Addr)
	delete(e.world.envs, e.host.Addr)
}

// Closed reports whether the env has been closed.
func (e *Env) Closed() bool { return e.closed }
