package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeastSquaresExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	lin, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lin.Slope-3) > 1e-12 || math.Abs(lin.Intercept+7) > 1e-12 {
		t.Errorf("fit = %+v, want slope 3 intercept -7", lin)
	}
	if math.Abs(lin.R2-1) > 1e-12 {
		t.Errorf("R2 = %f, want 1", lin.R2)
	}
}

func TestLeastSquaresNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 2*x+5+rng.NormFloat64()*3)
	}
	lin, err := LeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lin.Slope-2) > 0.05 {
		t.Errorf("slope = %f, want ≈2", lin.Slope)
	}
	if lin.R2 < 0.99 {
		t.Errorf("R2 = %f, want > 0.99 on mild noise", lin.R2)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares([]float64{1}, []float64{1}); err != ErrInsufficientData {
		t.Errorf("short input err = %v", err)
	}
	if _, err := LeastSquares([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := LeastSquares([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestPearsonSigns(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	up := []float64{2, 4, 6, 8, 10}
	down := []float64{10, 8, 6, 4, 2}
	r, err := Pearson(xs, up)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("Pearson up = %f, %v; want 1", r, err)
	}
	r, err = Pearson(xs, down)
	if err != nil || math.Abs(r+1) > 1e-12 {
		t.Errorf("Pearson down = %f, %v; want -1", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{3}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestRanked(t *testing.T) {
	got := Ranked([]float64{3, 1, 4, 1, 5})
	want := []float64{5, 4, 3, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranked = %v, want %v", got, want)
		}
	}
}

func TestFitZipfRecoversAlpha(t *testing.T) {
	ranked := make([]float64, 200)
	for i := range ranked {
		ranked[i] = 1000 * math.Pow(float64(i+1), -0.8)
	}
	z, err := FitZipf(ranked)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z.Alpha-0.8) > 1e-9 || z.R2 < 0.9999 {
		t.Errorf("zipf = %+v, want alpha 0.8 R2≈1", z)
	}
}

func TestFitSERecoversParameters(t *testing.T) {
	// Generate exact SE data: y_i = (b - a·log i)^(1/c).
	const c, a = 0.35, 5.0
	n := 300
	b := 1 + a*math.Log(float64(n)) // ensures y_n = 1
	ranked := make([]float64, n)
	for i := range ranked {
		y := b - a*math.Log(float64(i+1))
		ranked[i] = math.Pow(y, 1/c)
	}
	se, err := FitStretchedExponential(ranked)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(se.C-c) > 0.051 {
		t.Errorf("c = %f, want ≈%f", se.C, c)
	}
	if se.R2 < 0.999 {
		t.Errorf("R2 = %f, want ≈1", se.R2)
	}
	if math.Abs(se.A-a)/a > 0.25 {
		t.Errorf("a = %f, want ≈%f", se.A, a)
	}
}

// The paper's central fitting claim: SE-generated data fits SE much better
// than Zipf, and the discrimination works in our implementation.
func TestSEBeatsZipfOnSEData(t *testing.T) {
	const c, a = 0.35, 5.483
	n := 326 // the paper's Fig. 11 peer count
	b := 1 + a*math.Log(float64(n))
	ranked := make([]float64, n)
	for i := range ranked {
		y := b - a*math.Log(float64(i+1))
		if y < 0 {
			y = 0
		}
		ranked[i] = math.Pow(y, 1/c)
	}
	se, err := FitStretchedExponential(ranked)
	if err != nil {
		t.Fatal(err)
	}
	z, err := FitZipf(ranked)
	if err != nil {
		t.Fatal(err)
	}
	if se.R2 <= z.R2 {
		t.Errorf("SE R2 %f not better than Zipf R2 %f on SE data", se.R2, z.R2)
	}
}

func TestSEEvalInvertsFit(t *testing.T) {
	const c, a = 0.4, 10.0
	n := 100
	b := 1 + a*math.Log(float64(n))
	ranked := make([]float64, n)
	for i := range ranked {
		ranked[i] = math.Pow(b-a*math.Log(float64(i+1)), 1/c)
	}
	se, err := FitStretchedExponential(ranked)
	if err != nil {
		t.Fatal(err)
	}
	for _, rank := range []int{1, 10, 50} {
		got := se.Eval(rank)
		want := ranked[rank-1]
		if math.Abs(got-want)/want > 0.2 {
			t.Errorf("Eval(%d) = %f, want ≈%f", rank, got, want)
		}
	}
}

func TestFitSEInsufficient(t *testing.T) {
	if _, err := FitStretchedExponential([]float64{1, 2}); err != ErrInsufficientData {
		t.Errorf("err = %v, want ErrInsufficientData", err)
	}
}

func TestCDF(t *testing.T) {
	cdf := CDF([]float64{1, 1, 2})
	want := []float64{0.25, 0.5, 1.0}
	for i := range want {
		if math.Abs(cdf[i]-want[i]) > 1e-12 {
			t.Fatalf("CDF = %v, want %v", cdf, want)
		}
	}
	zero := CDF([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("zero-total CDF = %v", zero)
	}
}

func TestTopShare(t *testing.T) {
	// 10 contributors; the top one holds 91 of 100 units.
	values := []float64{91, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	if got := TopShare(values, 0.1); math.Abs(got-0.91) > 1e-12 {
		t.Errorf("TopShare(0.1) = %f, want 0.91", got)
	}
	if got := TopShare(values, 1.0); math.Abs(got-1) > 1e-12 {
		t.Errorf("TopShare(1.0) = %f, want 1", got)
	}
	if got := TopShare(nil, 0.1); got != 0 {
		t.Errorf("TopShare(nil) = %f", got)
	}
}

func TestMeanAndQuantile(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	if got := Mean(vals); got != 2.5 {
		t.Errorf("Mean = %f", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %f", got)
	}
	if got := Quantile(vals, 0); got != 1 {
		t.Errorf("Quantile(0) = %f", got)
	}
	if got := Quantile(vals, 1); got != 4 {
		t.Errorf("Quantile(1) = %f", got)
	}
	if got := Quantile(vals, 0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %f", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %f", got)
	}
}

// Property: R² of any least-squares fit on non-degenerate data is ≤ 1, and
// Pearson is within [-1, 1].
func TestPropertyStatBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + rng.Float64()
			ys[i] = rng.NormFloat64() * 10
		}
		lin, err := LeastSquares(xs, ys)
		if err != nil {
			return true
		}
		if lin.R2 > 1+1e-9 {
			return false
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true
		}
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

// Property: TopShare is monotone in f and bounded by [0,1].
func TestPropertyTopShareMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		values := make([]float64, len(raw))
		for i, r := range raw {
			values[i] = float64(r)
		}
		prev := 0.0
		for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
			s := TopShare(values, frac)
			if s < prev-1e-9 || s < 0 || s > 1+1e-9 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}
