// Package fit provides the statistical machinery behind the paper's
// analysis: least-squares regression with R², Pearson correlation, rank
// distributions, CDFs, and the two competing models of §3.4 — the Zipf
// (power-law) fit and the stretched-exponential fit.
//
// The stretched-exponential rank distribution is y_i^c = -a·log(i) + b
// (equation (1) of the paper): plotting y^c against log rank gives a
// straight line. Following the paper (and Guo et al., PODC'08), c is chosen
// by grid search for the best coefficient of determination.
package fit

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a fit needs more points.
var ErrInsufficientData = errors.New("fit: insufficient data")

// Linear is a least-squares line y = Slope·x + Intercept with its
// coefficient of determination.
type Linear struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LeastSquares fits y = slope·x + intercept, returning the fit and R².
func LeastSquares(xs, ys []float64) (Linear, error) {
	n := len(xs)
	if n != len(ys) {
		return Linear{}, fmt.Errorf("fit: mismatched lengths %d and %d", len(xs), len(ys))
	}
	if n < 2 {
		return Linear{}, ErrInsufficientData
	}
	var sumX, sumY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
	}
	meanX, meanY := sumX/float64(n), sumY/float64(n)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-meanX, ys[i]-meanY
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}, fmt.Errorf("fit: degenerate x values")
	}
	slope := sxy / sxx
	intercept := meanY - slope*meanX
	r2 := 1.0
	if syy > 0 {
		var ssRes float64
		for i := range xs {
			r := ys[i] - (slope*xs[i] + intercept)
			ssRes += r * r
		}
		r2 = 1 - ssRes/syy
	}
	return Linear{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series.
func Pearson(xs, ys []float64) (float64, error) {
	n := len(xs)
	if n != len(ys) {
		return 0, fmt.Errorf("fit: mismatched lengths %d and %d", len(xs), len(ys))
	}
	if n < 2 {
		return 0, ErrInsufficientData
	}
	var sumX, sumY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
	}
	meanX, meanY := sumX/float64(n), sumY/float64(n)
	var sxx, syy, sxy float64
	for i := range xs {
		dx, dy := xs[i]-meanX, ys[i]-meanY
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("fit: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Ranked returns values sorted descending: the rank distribution the paper
// plots (rank 1 = largest).
func Ranked(values []float64) []float64 {
	out := make([]float64, len(values))
	copy(out, values)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// Zipf is a power-law rank fit y_i ∝ i^(-Alpha), fitted in log-log space.
type Zipf struct {
	Alpha float64 // positive for decaying distributions
	C     float64 // log-space intercept
	R2    float64
}

// FitZipf fits ranked (descending) positive values to a Zipf law by
// regressing log(y) on log(rank).
func FitZipf(ranked []float64) (Zipf, error) {
	xs := make([]float64, 0, len(ranked))
	ys := make([]float64, 0, len(ranked))
	for i, v := range ranked {
		if v <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(v))
	}
	lin, err := LeastSquares(xs, ys)
	if err != nil {
		return Zipf{}, err
	}
	return Zipf{Alpha: -lin.Slope, C: lin.Intercept, R2: lin.R2}, nil
}

// StretchedExponential is the rank fit y_i^c = -a·log(i) + b.
type StretchedExponential struct {
	C  float64
	A  float64
	B  float64
	R2 float64
}

// Eval returns the fitted value at rank i (1-based).
func (se StretchedExponential) Eval(rank int) float64 {
	y := se.B - se.A*math.Log(float64(rank))
	if y <= 0 {
		return 0
	}
	return math.Pow(y, 1/se.C)
}

// FitStretchedExponential fits ranked (descending) positive values to the
// stretched-exponential rank distribution, grid-searching the stretch
// factor c over (0,1] in steps of 0.05 for maximum R², exactly as the
// paper's figures report (c values like 0.2, 0.3, 0.35, 0.4).
func FitStretchedExponential(ranked []float64) (StretchedExponential, error) {
	var xs, raw []float64
	for i, v := range ranked {
		if v <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(i+1)))
		raw = append(raw, v)
	}
	if len(raw) < 3 {
		return StretchedExponential{}, ErrInsufficientData
	}
	best := StretchedExponential{R2: math.Inf(-1)}
	ys := make([]float64, len(raw))
	for c := 0.05; c <= 1.0001; c += 0.05 {
		for i, v := range raw {
			ys[i] = math.Pow(v, c)
		}
		lin, err := LeastSquares(xs, ys)
		if err != nil {
			continue
		}
		if lin.R2 > best.R2 {
			best = StretchedExponential{C: c, A: -lin.Slope, B: lin.Intercept, R2: lin.R2}
		}
	}
	if math.IsInf(best.R2, -1) {
		return StretchedExponential{}, ErrInsufficientData
	}
	return best, nil
}

// CDF returns the cumulative distribution of ranked-ascending contribution
// shares: out[i] is the fraction of the total contributed by the i+1
// smallest contributors. The input need not be sorted.
func CDF(values []float64) []float64 {
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	var total float64
	for _, v := range sorted {
		total += v
	}
	out := make([]float64, len(sorted))
	if total == 0 {
		return out
	}
	var cum float64
	for i, v := range sorted {
		cum += v
		out[i] = cum / total
	}
	return out
}

// TopShare returns the fraction of the total contributed by the top
// fraction f of contributors (e.g. f=0.1 for the paper's "top 10%" figures).
func TopShare(values []float64, f float64) float64 {
	if len(values) == 0 || f <= 0 {
		return 0
	}
	ranked := Ranked(values)
	k := int(math.Ceil(f * float64(len(ranked))))
	if k > len(ranked) {
		k = len(ranked)
	}
	var top, total float64
	for i, v := range ranked {
		total += v
		if i < k {
			top += v
		}
	}
	if total == 0 {
		return 0
	}
	return top / total
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Quantile returns the q-quantile (0..1) of the values using nearest-rank on
// a sorted copy.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
