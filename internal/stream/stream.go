// Package stream models live channels: sub-piece sequencing against a live
// edge, and the sliding playback buffer a peer maintains.
//
// A live channel emits payload at a constant bitrate, divided into chunks
// and further into sub-pieces of 1380 (or 690) bytes, exactly as the paper
// describes PPLive's data plane. Sub-pieces are identified by a global
// transmission sequence number, which the paper's trace matching keys on.
package stream

import (
	"fmt"
	"math/bits"
	"time"

	"pplivesim/internal/wire"
)

// Spec describes a live channel.
type Spec struct {
	Channel     wire.ChannelID
	Name        string
	BitrateBps  int    // payload bytes per second
	SubPieceLen int    // payload bytes per sub-piece (1380 or 690)
	Rating      uint32 // popularity rating used by the channel list
}

// Validate checks the spec for usability.
func (s Spec) Validate() error {
	if s.BitrateBps <= 0 {
		return fmt.Errorf("stream: channel %d: non-positive bitrate", s.Channel)
	}
	if s.SubPieceLen <= 0 {
		return fmt.Errorf("stream: channel %d: non-positive sub-piece length", s.Channel)
	}
	return nil
}

// Info returns the channel-list entry for this spec.
func (s Spec) Info() wire.ChannelInfo {
	return wire.ChannelInfo{ID: s.Channel, Rating: s.Rating, Name: s.Name}
}

// Rate returns sub-pieces emitted per second.
func (s Spec) Rate() float64 { return float64(s.BitrateBps) / float64(s.SubPieceLen) }

// EdgeSeq returns the newest sub-piece sequence the source has emitted by
// the given instant (the "live edge"). The first sub-piece (seq 0) appears
// at t=0.
func (s Spec) EdgeSeq(now time.Duration) uint64 {
	if now < 0 {
		return 0
	}
	return uint64(now.Seconds() * s.Rate())
}

// TimeOf returns the instant at which the source emits sub-piece seq.
func (s Spec) TimeOf(seq uint64) time.Duration {
	return time.Duration(float64(seq) / s.Rate() * float64(time.Second))
}

// DefaultSpec returns a 400 kbit/s channel with 1380-byte sub-pieces, typical
// of 2008-era PPLive SD streams (≈36 sub-pieces per second).
func DefaultSpec(ch wire.ChannelID, name string, rating uint32) Spec {
	return Spec{
		Channel:     ch,
		Name:        name,
		BitrateBps:  50_000,
		SubPieceLen: wire.SubPieceSize,
		Rating:      rating,
	}
}

// Buffer is a peer's sliding playback buffer: a fixed window of sub-piece
// slots that trails the playhead with some history (so the peer can serve
// neighbors slightly behind it) and extends toward the live edge.
type Buffer struct {
	spec    Spec
	join    time.Duration // when the peer joined
	delay   time.Duration // startup buffering delay before playback begins
	window  int           // ring capacity in sub-pieces
	history int           // slots kept behind the playhead

	startSeq uint64 // first sequence this peer plays
	base     uint64 // lowest sequence retained in the ring
	playhead uint64 // next sequence to be consumed

	// have is the ring as packed bits: the slot for seq is ring bit
	// seq % ringCap, i.e. bit seq%64 of have[(seq%ringCap)/64]. ringCap is a
	// multiple of 64 — so a ring word holds 64 consecutive, 64-aligned
	// sequences — and exceeds the window by a word of padding, so words
	// overlapping the live range [base, base+window) never alias live
	// sequences and all their out-of-range bits are zero.
	have    []uint64
	ringCap uint64

	received   uint64
	duplicates uint64
	stale      uint64 // arrived behind the retained window
	playedOK   uint64
	playedMiss uint64
}

// NewBuffer creates a playback buffer for a peer that joined at join time.
// Playback starts delay after joining, from the live edge at join. The
// window is the ring capacity in sub-pieces; a quarter of it is retained as
// history behind the playhead.
func NewBuffer(spec Spec, join, delay time.Duration, window int) (*Buffer, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if window <= 8 {
		return nil, fmt.Errorf("stream: window %d too small", window)
	}
	start := spec.EdgeSeq(join)
	cap := ringCapFor(window)
	return &Buffer{
		spec:     spec,
		join:     join,
		delay:    delay,
		window:   window,
		history:  window / 4,
		startSeq: start,
		base:     start,
		playhead: start,
		have:     make([]uint64, cap/64),
		ringCap:  cap,
	}, nil
}

// ringCapFor rounds a window up to whole words and adds one word of padding
// (see the have field's invariants).
func ringCapFor(window int) uint64 {
	return uint64((window+63)/64*64 + 64)
}

// ringIdx returns the word index and bit mask for seq's ring slot.
func (b *Buffer) ringIdx(seq uint64) (int, uint64) {
	return int((seq % b.ringCap) / 64), uint64(1) << (seq % 64)
}

// Spec returns the channel spec the buffer was built for.
func (b *Buffer) Spec() Spec { return b.spec }

// StartSeq returns the first sequence this peer plays.
func (b *Buffer) StartSeq() uint64 { return b.startSeq }

// Playhead returns the next sequence to be consumed.
func (b *Buffer) Playhead() uint64 { return b.playhead }

// PlayheadAt returns the sequence the playhead should have reached by now.
func (b *Buffer) PlayheadAt(now time.Duration) uint64 {
	playStart := b.join + b.delay
	if now <= playStart {
		return b.startSeq
	}
	return b.startSeq + uint64((now-playStart).Seconds()*b.spec.Rate())
}

// Has reports whether the buffer holds sub-piece seq.
func (b *Buffer) Has(seq uint64) bool {
	if seq < b.base || seq >= b.base+uint64(b.window) {
		return false
	}
	w, m := b.ringIdx(seq)
	return b.have[w]&m != 0
}

// Mark records receipt of sub-piece seq. It reports whether the piece was
// new and inside the retained window.
func (b *Buffer) Mark(seq uint64) bool {
	if seq < b.base {
		b.stale++
		return false
	}
	if seq >= b.base+uint64(b.window) {
		// Ahead of the ring (e.g. source burst): slide forward to cover it.
		b.slideTo(seq - uint64(b.window) + 1)
	}
	w, m := b.ringIdx(seq)
	if b.have[w]&m != 0 {
		b.duplicates++
		return false
	}
	b.have[w] |= m
	b.received++
	return true
}

// slideTo advances base to newBase, clearing vacated slots and accounting
// any unplayed pieces that fall behind as misses is handled by AdvanceTo;
// slideTo only manages ring storage.
func (b *Buffer) slideTo(newBase uint64) {
	if newBase <= b.base {
		return
	}
	steps := newBase - b.base
	if steps >= uint64(b.window) {
		clear(b.have)
		b.base = newBase
		return
	}
	for ; b.base < newBase; b.base++ {
		w, m := b.ringIdx(b.base)
		b.have[w] &^= m
	}
}

// AdvanceTo moves the playhead to its scheduled position at now, consuming
// sub-pieces and recording continuity (played vs missed), then slides the
// ring base to keep the configured history behind the playhead.
func (b *Buffer) AdvanceTo(now time.Duration) {
	target := b.PlayheadAt(now)
	for b.playhead < target {
		if b.Has(b.playhead) {
			b.playedOK++
		} else {
			b.playedMiss++
		}
		b.playhead++
	}
	if b.playhead > b.startSeq+uint64(b.history) {
		b.slideTo(b.playhead - uint64(b.history))
	}
}

// Want returns up to max missing sequences the peer should fetch at now:
// pieces in [playhead, min(edge, ring end, limit)) not yet held,
// nearest-deadline first. limit (0 = unbounded) caps how far ahead of the
// playhead the caller prefetches. The skip predicate (may be nil) filters
// sequences the caller has already requested.
func (b *Buffer) Want(now time.Duration, max int, limit uint64, skip func(uint64) bool) []uint64 {
	return b.AppendWant(nil, now, max, limit, skip)
}

// AppendWant is Want appending into dst, so per-tick schedulers can reuse a
// scratch slice instead of allocating one per invocation. It is the per-piece
// reference implementation of AppendWantRing (which property tests hold it
// against); schedulers use the word-based variant.
func (b *Buffer) AppendWant(dst []uint64, now time.Duration, max int, limit uint64, skip func(uint64) bool) []uint64 {
	if max <= 0 {
		return dst
	}
	end := b.WantBound(now, limit)
	base := len(dst)
	for seq := b.playhead; seq < end && len(dst)-base < max; seq++ {
		if b.Has(seq) {
			continue
		}
		if skip != nil && skip(seq) {
			continue
		}
		dst = append(dst, seq)
	}
	return dst
}

// WantBound returns the exclusive upper bound of the fetchable range at now:
// the live edge, the ring end, and the caller's prefetch limit (0 = none),
// whichever is lowest.
func (b *Buffer) WantBound(now time.Duration, limit uint64) uint64 {
	edge := b.spec.EdgeSeq(now)
	end := b.base + uint64(b.window)
	if edge+1 < end {
		end = edge + 1
	}
	if limit != 0 && limit < end {
		end = limit
	}
	return end
}

// haveWord returns the held-bits for the 64 sequences [seq, seq+64), seq
// 64-aligned. Valid whenever the word overlaps [base-63, base+window+63] —
// the padding invariant guarantees every out-of-range bit reads zero.
func (b *Buffer) haveWord(alignedSeq uint64) uint64 {
	return b.have[(alignedSeq%b.ringCap)/64]
}

// AppendWantRing is AppendWant with the skip-set expressed as a BitRing, so
// the scan runs a word at a time: wanted = NOT held AND NOT skipped, then
// set-bit iteration. Sequences are appended nearest-deadline first, exactly
// as AppendWant orders them.
func (b *Buffer) AppendWantRing(dst []uint64, now time.Duration, max int, limit uint64, skip *BitRing) []uint64 {
	if max <= 0 {
		return dst
	}
	end := b.WantBound(now, limit)
	if b.playhead >= end {
		return dst
	}
	n := len(dst)
	for a := b.playhead &^ 63; a < end; a += 64 {
		w := ^b.haveWord(a)
		if skip != nil {
			w &^= skip.Word(a)
		}
		if a < b.playhead {
			w &= ^uint64(0) << (b.playhead - a)
		}
		if end-a < 64 {
			w &= uint64(1)<<(end-a) - 1
		}
		for ; w != 0; w &= w - 1 {
			dst = append(dst, a+uint64(bits.TrailingZeros64(w)))
			if len(dst)-n == max {
				return dst
			}
		}
	}
	return dst
}

// Snapshot produces a wire buffer map covering the retained window. Bit i of
// the map covers base+i — a rotation of the ring, assembled a word at a time:
// each output word is two ring words funnel-shifted by base's bit offset.
func (b *Buffer) Snapshot() wire.BufferMap {
	bm := wire.MakeBufferMap(b.base, b.window)
	s := b.base % 64
	for w := range bm.Words {
		a0 := b.base + uint64(w)*64 - s
		v := b.haveWord(a0) >> s
		if s != 0 {
			v |= b.haveWord(a0+64) << (64 - s)
		}
		bm.Words[w] = v
	}
	if tail := uint(b.window % 64); tail != 0 {
		bm.Words[len(bm.Words)-1] &= uint64(1)<<tail - 1
	}
	return bm
}

// Stats summarizes buffer activity.
type Stats struct {
	Received   uint64 // new in-window sub-pieces stored
	Duplicates uint64 // already-held receipts
	Stale      uint64 // receipts behind the retained window
	PlayedOK   uint64 // consumed on time
	PlayedMiss uint64 // deadline passed without the piece
}

// Add returns the field-wise sum of s and o, for aggregating counters
// across buffers (e.g. a client's sessions over several channel switches).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Received:   s.Received + o.Received,
		Duplicates: s.Duplicates + o.Duplicates,
		Stale:      s.Stale + o.Stale,
		PlayedOK:   s.PlayedOK + o.PlayedOK,
		PlayedMiss: s.PlayedMiss + o.PlayedMiss,
	}
}

// Continuity returns the fraction of consumed sub-pieces that were present
// at their deadline (1.0 when nothing has been consumed yet).
func (s Stats) Continuity() float64 {
	total := s.PlayedOK + s.PlayedMiss
	if total == 0 {
		return 1
	}
	return float64(s.PlayedOK) / float64(total)
}

// Stats returns a snapshot of the buffer's counters.
func (b *Buffer) Stats() Stats {
	return Stats{
		Received:   b.received,
		Duplicates: b.duplicates,
		Stale:      b.stale,
		PlayedOK:   b.playedOK,
		PlayedMiss: b.playedMiss,
	}
}
