package stream

import (
	"math/rand"
	"testing"
	"time"
)

// TestPropertyAppendWantRingMatchesReference drives a buffer through random
// receive/advance histories — random windows (including non-multiples of 64),
// random playhead positions, partial trailing words — and checks that the
// word-based want scan returns exactly what the per-piece reference returns,
// in the same order, under the same skip set.
func TestPropertyAppendWantRingMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 200; iter++ {
		window := 65 + rng.Intn(500)
		spec := DefaultSpec(1, "prop", 1)
		join := time.Duration(rng.Intn(3600)) * time.Second
		buf, err := NewBuffer(spec, join, 5*time.Second, window)
		if err != nil {
			t.Fatal(err)
		}
		ring := NewBitRing(window + 256)
		inflight := make(map[uint64]bool)

		now := join
		for step := 0; step < 30; step++ {
			now += time.Duration(rng.Intn(4000)) * time.Millisecond
			buf.AdvanceTo(now)

			// Random receives around the live range.
			lo := buf.Playhead()
			for i := 0; i < rng.Intn(40); i++ {
				seq := lo + uint64(rng.Intn(window))
				if rng.Intn(6) == 0 && lo > 10 {
					seq = lo - uint64(rng.Intn(10)) // stale/duplicate probes
				}
				buf.Mark(seq)
			}
			// Random skip-set churn, bounded to the fetchable span so the
			// ring's aliasing precondition holds (as the scheduler's does).
			for seq := range inflight {
				if rng.Intn(3) == 0 || seq < lo {
					delete(inflight, seq)
					ring.Clear(seq)
				}
			}
			for i := 0; i < rng.Intn(30); i++ {
				seq := lo + uint64(rng.Intn(window))
				if !inflight[seq] {
					inflight[seq] = true
					ring.Set(seq)
				}
			}

			max := 1 + rng.Intn(200)
			var limit uint64
			if rng.Intn(2) == 0 {
				limit = lo + uint64(rng.Intn(2*window))
			}
			skipFn := func(seq uint64) bool { return inflight[seq] }
			want := buf.AppendWant(nil, now, max, limit, skipFn)
			got := buf.AppendWantRing(nil, now, max, limit, ring)
			if len(want) != len(got) {
				t.Fatalf("iter %d step %d: ring scan returned %d seqs, reference %d (window=%d playhead=%d)",
					iter, step, len(got), len(want), window, lo)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("iter %d step %d: seq[%d] = %d, reference %d", iter, step, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPropertySnapshotMatchesReference checks the funnel-shift Snapshot
// against a per-bit rebuild from Has, across random windows and ring
// rotations (base far from both 0 and a word boundary).
func TestPropertySnapshotMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 150; iter++ {
		window := 65 + rng.Intn(400)
		spec := DefaultSpec(1, "prop", 1)
		join := time.Duration(rng.Intn(7200)) * time.Second
		buf, err := NewBuffer(spec, join, time.Second, window)
		if err != nil {
			t.Fatal(err)
		}
		now := join
		for step := 0; step < 10; step++ {
			now += time.Duration(rng.Intn(5000)) * time.Millisecond
			buf.AdvanceTo(now)
			lo := buf.Playhead()
			for i := 0; i < rng.Intn(60); i++ {
				buf.Mark(lo + uint64(rng.Intn(window)))
			}
			bm := buf.Snapshot()
			if bm.Start != buf.base {
				t.Fatalf("iter %d: snapshot start %d, base %d", iter, bm.Start, buf.base)
			}
			if got, want := bm.Window(), uint64((window+7)/8*8); got != want {
				t.Fatalf("iter %d: snapshot window %d, want %d", iter, got, want)
			}
			end := bm.Start + bm.Window()
			for seq := bm.Start; seq < end; seq++ {
				if bm.Has(seq) != buf.Has(seq) {
					t.Fatalf("iter %d step %d: snapshot bit %d = %v, buffer %v (base=%d window=%d)",
						iter, step, seq, bm.Has(seq), buf.Has(seq), buf.base, window)
				}
			}
		}
	}
}

// TestBitRingBasics covers set/clear/word behaviour including the padding
// word and unaligned bases.
func TestBitRingBasics(t *testing.T) {
	r := NewBitRing(100)
	if r.Cap() != 192 {
		t.Fatalf("Cap() = %d, want 192 (100 rounded to words + one pad word)", r.Cap())
	}
	base := uint64(1_000_003)
	for i := uint64(0); i < 150; i += 3 {
		r.Set(base + i)
	}
	for i := uint64(0); i < 150; i++ {
		if got := r.Has(base + i); got != (i%3 == 0) {
			t.Fatalf("Has(base+%d) = %v", i, got)
		}
	}
	a := (base + 64) &^ 63
	w := r.Word(a)
	for i := uint64(0); i < 64; i++ {
		seq := a + i
		want := seq >= base && seq < base+150 && (seq-base)%3 == 0
		if w>>i&1 != 0 != want {
			t.Fatalf("Word(%d) bit %d = %d, want %v", a, i, w>>i&1, want)
		}
	}
	for i := uint64(0); i < 150; i += 3 {
		r.Clear(base + i)
	}
	for _, word := range r.words {
		if word != 0 {
			t.Fatal("ring not empty after clearing all set bits")
		}
	}
	r.Set(base)
	r.Reset()
	if r.Has(base) {
		t.Fatal("Reset left a bit set")
	}
}
