package stream

// BitRing is a fixed-capacity sliding bit set over sub-piece sequences,
// backed by packed 64-bit words. The slot for seq is ring bit seq % Cap with
// Cap a multiple of 64, so bit position within a word is simply seq % 64 and
// a ring word holds 64 consecutive, 64-aligned sequences — which lets
// schedulers intersect it word-for-word with Buffer's ring and with neighbor
// buffer maps.
//
// The ring does not track a base: callers must keep the live span of set
// sequences below the capacity (NewBitRing pads the requested span by one
// word), otherwise distinct sequences alias the same bit. The peer scheduler
// satisfies this by construction — in-flight sequences live between
// (playhead - timeout drift) and the prefetch bound, and the ring is sized
// for that whole range.
type BitRing struct {
	words []uint64
	cap   uint64
}

// NewBitRing returns a zeroed ring able to distinguish at least span
// consecutive sequences.
func NewBitRing(span int) *BitRing {
	c := uint64((span+63)/64*64 + 64)
	return &BitRing{words: make([]uint64, c/64), cap: c}
}

// Cap returns the ring capacity in sequences.
func (r *BitRing) Cap() int { return int(r.cap) }

func (r *BitRing) idx(seq uint64) (int, uint64) {
	return int((seq % r.cap) / 64), uint64(1) << (seq % 64)
}

// Set marks seq.
func (r *BitRing) Set(seq uint64) {
	w, m := r.idx(seq)
	r.words[w] |= m
}

// Clear unmarks seq.
func (r *BitRing) Clear(seq uint64) {
	w, m := r.idx(seq)
	r.words[w] &^= m
}

// Has reports whether seq is marked.
func (r *BitRing) Has(seq uint64) bool {
	w, m := r.idx(seq)
	return r.words[w]&m != 0
}

// Word returns the marks for the 64 sequences [seq, seq+64), seq 64-aligned.
func (r *BitRing) Word(alignedSeq uint64) uint64 {
	return r.words[(alignedSeq%r.cap)/64]
}

// Reset unmarks everything.
func (r *BitRing) Reset() {
	clear(r.words)
}
