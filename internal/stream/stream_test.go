package stream

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pplivesim/internal/wire"
)

func testSpec() Spec { return DefaultSpec(1, "test", 1000) }

func TestSpecValidate(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Errorf("default spec invalid: %v", err)
	}
	bad := testSpec()
	bad.BitrateBps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bitrate accepted")
	}
	bad = testSpec()
	bad.SubPieceLen = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative sub-piece length accepted")
	}
}

func TestEdgeSeqRate(t *testing.T) {
	s := testSpec() // 50_000 B/s over 1380 B pieces ≈ 36.23/s
	if got := s.EdgeSeq(0); got != 0 {
		t.Errorf("EdgeSeq(0) = %d", got)
	}
	got := s.EdgeSeq(10 * time.Second)
	if got < 360 || got > 365 {
		t.Errorf("EdgeSeq(10s) = %d, want ≈362", got)
	}
	if s.EdgeSeq(-time.Second) != 0 {
		t.Error("negative time produced nonzero edge")
	}
}

func TestTimeOfInvertsEdgeSeq(t *testing.T) {
	s := testSpec()
	for _, seq := range []uint64{0, 1, 100, 98765} {
		at := s.TimeOf(seq)
		if got := s.EdgeSeq(at + time.Millisecond); got < seq {
			t.Errorf("EdgeSeq(TimeOf(%d)+1ms) = %d, want >= %d", seq, got, seq)
		}
	}
}

func mustBuffer(t *testing.T, join, delay time.Duration, window int) *Buffer {
	t.Helper()
	b, err := NewBuffer(testSpec(), join, delay, window)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBufferValidation(t *testing.T) {
	if _, err := NewBuffer(testSpec(), 0, 0, 4); err == nil {
		t.Error("tiny window accepted")
	}
	bad := testSpec()
	bad.BitrateBps = 0
	if _, err := NewBuffer(bad, 0, 0, 100); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestStartSeqIsJoinEdge(t *testing.T) {
	join := 100 * time.Second
	b := mustBuffer(t, join, 10*time.Second, 512)
	if b.StartSeq() != testSpec().EdgeSeq(join) {
		t.Errorf("StartSeq = %d, want edge at join %d", b.StartSeq(), testSpec().EdgeSeq(join))
	}
}

func TestMarkAndHas(t *testing.T) {
	b := mustBuffer(t, 0, 0, 512)
	if b.Has(0) {
		t.Error("empty buffer Has(0)")
	}
	if !b.Mark(0) {
		t.Error("first Mark(0) returned false")
	}
	if !b.Has(0) {
		t.Error("Has(0) false after Mark")
	}
	if b.Mark(0) {
		t.Error("duplicate Mark(0) returned true")
	}
	st := b.Stats()
	if st.Received != 1 || st.Duplicates != 1 {
		t.Errorf("stats = %+v, want 1 received 1 duplicate", st)
	}
}

func TestMarkAheadSlidesWindow(t *testing.T) {
	b := mustBuffer(t, 0, 0, 64)
	b.Mark(0)
	if !b.Mark(100) { // beyond ring end 64 → slide
		t.Fatal("Mark far ahead failed")
	}
	if b.Has(0) {
		t.Error("slid-out piece still reported held")
	}
	if !b.Has(100) {
		t.Error("ahead piece not held after slide")
	}
	if b.Mark(0) {
		t.Error("stale Mark accepted")
	}
	if st := b.Stats(); st.Stale != 1 {
		t.Errorf("stale = %d, want 1", st.Stale)
	}
}

func TestPlayheadAt(t *testing.T) {
	b := mustBuffer(t, 10*time.Second, 5*time.Second, 512)
	if got := b.PlayheadAt(12 * time.Second); got != b.StartSeq() {
		t.Errorf("playhead before delay = %d, want start %d", got, b.StartSeq())
	}
	got := b.PlayheadAt(25 * time.Second) // 10s of playback
	want := b.StartSeq() + uint64(10*testSpec().Rate())
	if got < want-1 || got > want+1 {
		t.Errorf("PlayheadAt(25s) = %d, want ≈%d", got, want)
	}
}

func TestAdvanceToContinuity(t *testing.T) {
	b := mustBuffer(t, 0, 0, 4096)
	// Receive the first 100 pieces, then advance past 200.
	for seq := uint64(0); seq < 100; seq++ {
		b.Mark(seq)
	}
	at := testSpec().TimeOf(200)
	b.AdvanceTo(at)
	st := b.Stats()
	if st.PlayedOK != 100 {
		t.Errorf("PlayedOK = %d, want 100", st.PlayedOK)
	}
	if st.PlayedMiss == 0 {
		t.Error("no misses despite missing pieces")
	}
	c := st.Continuity()
	if c <= 0 || c >= 1 {
		t.Errorf("continuity = %f, want in (0,1)", c)
	}
}

func TestContinuityEmptyIsOne(t *testing.T) {
	if c := (Stats{}).Continuity(); c != 1 {
		t.Errorf("empty continuity = %f, want 1", c)
	}
}

func TestAdvanceKeepsHistory(t *testing.T) {
	b := mustBuffer(t, 0, 0, 400) // history = 100
	for seq := uint64(0); seq < 300; seq++ {
		b.Mark(seq)
	}
	b.AdvanceTo(testSpec().TimeOf(300))
	// Playhead ≈300; history keeps ≈[200,300).
	if !b.Has(250) {
		t.Error("history piece 250 evicted")
	}
	if b.Has(10) {
		t.Error("piece 10 retained beyond history")
	}
}

func TestWantOrdersByDeadline(t *testing.T) {
	b := mustBuffer(t, 0, 0, 512)
	now := testSpec().TimeOf(50)
	want := b.Want(now, 10, 0, nil)
	if len(want) != 10 {
		t.Fatalf("Want returned %d, want 10", len(want))
	}
	for i, seq := range want {
		if seq != uint64(i) {
			t.Fatalf("Want[%d] = %d, want %d (deadline order)", i, seq, i)
		}
	}
}

func TestWantSkipsHeldAndSkipped(t *testing.T) {
	b := mustBuffer(t, 0, 0, 512)
	b.Mark(0)
	b.Mark(2)
	now := testSpec().TimeOf(50)
	got := b.Want(now, 3, 0, func(seq uint64) bool { return seq == 1 })
	if len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Errorf("Want = %v, want [3 4 5]", got)
	}
}

func TestWantBoundedByEdge(t *testing.T) {
	b := mustBuffer(t, 0, 0, 512)
	now := testSpec().TimeOf(5)
	got := b.Want(now, 100, 0, nil)
	if len(got) == 0 {
		t.Fatal("Want empty")
	}
	edge := testSpec().EdgeSeq(now)
	if last := got[len(got)-1]; last > edge {
		t.Errorf("Want includes %d beyond edge %d", last, edge)
	}
	if b.Want(now, 0, 0, nil) != nil {
		t.Error("Want(max=0) not nil")
	}
}

func TestSnapshotMatchesHas(t *testing.T) {
	b := mustBuffer(t, 0, 0, 128)
	for _, seq := range []uint64{0, 3, 7, 64, 100} {
		b.Mark(seq)
	}
	bm := b.Snapshot()
	for seq := uint64(0); seq < 128; seq++ {
		if bm.Has(seq) != b.Has(seq) {
			t.Fatalf("snapshot disagrees with buffer at %d", seq)
		}
	}
}

// Property: after marking arbitrary in-window sequences, Snapshot agrees
// with Has and Want never returns a held piece.
func TestPropertyBufferConsistency(t *testing.T) {
	f := func(raw []uint16) bool {
		b, err := NewBuffer(testSpec(), 0, 0, 1024)
		if err != nil {
			return false
		}
		for _, r := range raw {
			b.Mark(uint64(r) % 1024)
		}
		bm := b.Snapshot()
		for seq := uint64(0); seq < 1024; seq += 7 {
			if bm.Has(seq) != b.Has(seq) {
				return false
			}
		}
		now := testSpec().TimeOf(600)
		for _, seq := range b.Want(now, 50, 0, nil) {
			if b.Has(seq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Error(err)
	}
}

// Property: continuity is always within [0,1] and received never exceeds
// marks attempted.
func TestPropertyStatsBounds(t *testing.T) {
	f := func(raw []uint16, adv uint16) bool {
		b, err := NewBuffer(testSpec(), 0, 0, 256)
		if err != nil {
			return false
		}
		for _, r := range raw {
			b.Mark(uint64(r))
		}
		b.AdvanceTo(testSpec().TimeOf(uint64(adv)))
		st := b.Stats()
		c := st.Continuity()
		return c >= 0 && c <= 1 && st.Received <= uint64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotIsWireCompatible(t *testing.T) {
	b := mustBuffer(t, 0, 0, 128)
	b.Mark(5)
	ann := &wire.BufferMapAnnounce{Channel: 1, Buffer: b.Snapshot()}
	got, err := wire.Unmarshal(wire.Marshal(ann))
	if err != nil {
		t.Fatal(err)
	}
	g, ok := got.(*wire.BufferMapAnnounce)
	if !ok || !g.Buffer.Has(5) || g.Buffer.Has(6) {
		t.Errorf("wire round trip lost buffer contents: %#v", got)
	}
}

func TestWantRespectsLimit(t *testing.T) {
	b := mustBuffer(t, 0, 0, 512)
	now := testSpec().TimeOf(100)
	got := b.Want(now, 50, 5, nil)
	if len(got) != 5 {
		t.Fatalf("Want with limit 5 returned %d pieces", len(got))
	}
	for _, seq := range got {
		if seq >= 5 {
			t.Errorf("Want returned %d beyond limit 5", seq)
		}
	}
}
