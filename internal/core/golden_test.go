package core

import (
	"hash/fnv"
	"os"
	"strconv"
	"testing"

	"pplivesim/internal/workload"
)

// goldenDigest condenses a run into one number: a FNV-1a hash over every
// field of every probe-captured record plus the engine's event count. Any
// behavioural change — one datagram more, one byte different, one event
// reordered — changes the digest.
func goldenDigest(t *testing.T, res *Result) uint64 {
	t.Helper()
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(res.EventsProcessed)
	put(uint64(res.PeersSpawned))
	for _, p := range res.Probes {
		for _, rec := range p.Recorder.Records() {
			put(uint64(rec.At))
			put(uint64(rec.Dir))
			put(uint64(rec.Type))
			put(uint64(rec.Size))
			put(rec.Seq)
			put(uint64(rec.Count))
			put(uint64(rec.Payload))
			a4 := rec.Peer.As4()
			put(uint64(a4[0])<<24 | uint64(a4[1])<<16 | uint64(a4[2])<<8 | uint64(a4[3]))
			for _, a := range rec.Addrs {
				b4 := a.As4()
				put(uint64(b4[0])<<24 | uint64(b4[1])<<16 | uint64(b4[2])<<8 | uint64(b4[3]))
			}
		}
	}
	return h.Sum64()
}

// goldenWorkers reads the PPLIVE_SHARD_WORKERS override the CI determinism
// lane uses to run this very test under different worker counts: a pinned
// digest must hold regardless of how many goroutines execute domain windows.
func goldenWorkers(t *testing.T) int {
	v := os.Getenv("PPLIVE_SHARD_WORKERS")
	if v == "" {
		return 0 // scenario default
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		t.Fatalf("bad PPLIVE_SHARD_WORKERS %q", v)
	}
	return n
}

// TestGoldenTraceDigest pins the exact behaviour of the simulation at fixed
// seeds. The single-channel digests were re-baselined when the event engine
// was sharded across ISP domains (per-domain RNG streams, per-domain address
// pools, receiver-side cross-domain delivery) and the scheduler's RNG draws
// were batched through a bit reservoir — both deliberately change the draw
// sequences, so the pre-shard digests could not survive. They survived the
// multi-channel session refactor unchanged, which is the point: with
// switching disabled, a single-channel scenario draws the exact same RNG and
// message sequence as before. The multi-channel case pins the two-channel
// switching scenario on top. From this baseline on, a pass proves two things
// at once: no behavioural drift at any change, and worker-count invariance —
// Scenario.Shards alters only which goroutine executes a domain's window,
// never the trajectory, so every digest must hold for every worker count
// (the CI determinism lane runs this test at 1 and 4 workers via
// PPLIVE_SHARD_WORKERS; TestShardEquivalence sweeps the axis in-process).
func TestGoldenTraceDigest(t *testing.T) {
	cases := []struct {
		name  string
		seed  int64
		churn bool
		multi bool
		want  uint64
	}{
		{name: "single/churn", seed: 7, churn: true, want: 0x5fd28422705e58fa},
		{name: "single/static", seed: 42, churn: false, want: 0x8e40292727df5a33},
		{name: "two-channel/switching", seed: 7, multi: true, want: 0x16c3652811aae1f7},
	}
	workers := goldenWorkers(t)
	for _, tc := range cases {
		var sc Scenario
		if tc.multi {
			if testing.Short() {
				// The two-channel run is several times the single-channel
				// cost; the race lane covers multi-channel via the shrunken
				// TestTwoChannelShardEquivalence, and the CI determinism
				// lane runs this pin at full length (1 and 4 workers).
				continue
			}
			sc = twoChannelScenario(tc.seed)
		} else {
			sc = smallScenario(tc.seed)
			if tc.churn {
				sc.Churn = workload.DefaultChurn()
			}
		}
		sc.Name = "golden"
		sc.Shards = workers
		res, err := RunScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		got := goldenDigest(t, res)
		if got != tc.want {
			t.Errorf("%s (seed %d): digest = %#x, want %#x (behaviour changed vs the pinned baseline)",
				tc.name, tc.seed, got, tc.want)
		}
	}
}
