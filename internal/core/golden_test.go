package core

import (
	"hash/fnv"
	"testing"

	"pplivesim/internal/workload"
)

// goldenDigest condenses a run into one number: a FNV-1a hash over every
// field of every probe-captured record plus the engine's event count. Any
// behavioural change — one datagram more, one byte different, one event
// reordered — changes the digest.
func goldenDigest(t *testing.T, res *Result) uint64 {
	t.Helper()
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(res.EventsProcessed)
	put(uint64(res.PeersSpawned))
	for _, p := range res.Probes {
		for _, rec := range p.Recorder.Records() {
			put(uint64(rec.At))
			put(uint64(rec.Dir))
			put(uint64(rec.Type))
			put(uint64(rec.Size))
			put(rec.Seq)
			put(uint64(rec.Count))
			put(uint64(rec.Payload))
			a4 := rec.Peer.As4()
			put(uint64(a4[0])<<24 | uint64(a4[1])<<16 | uint64(a4[2])<<8 | uint64(a4[3]))
			for _, a := range rec.Addrs {
				b4 := a.As4()
				put(uint64(b4[0])<<24 | uint64(b4[1])<<16 | uint64(b4[2])<<8 | uint64(b4[3]))
			}
		}
	}
	return h.Sum64()
}

// TestGoldenTraceDigest pins the exact behaviour of the simulation at two
// fixed seeds. The digests were re-baselined when the event engine was
// sharded across ISP domains (per-domain RNG streams, per-domain address
// pools, receiver-side cross-domain delivery) and the scheduler's RNG draws
// were batched through a bit reservoir — both deliberately change the draw
// sequences, so the pre-shard digests could not survive. From this baseline
// on, a pass proves two things at once: no behavioural drift at any change,
// and worker-count invariance — Scenario.Shards alters only which goroutine
// executes a domain's window, never the trajectory, so this digest must hold
// for every worker count (TestShardEquivalence sweeps that axis explicitly).
func TestGoldenTraceDigest(t *testing.T) {
	cases := []struct {
		seed  int64
		churn bool
		want  uint64
	}{
		{seed: 7, churn: true, want: 0x5fd28422705e58fa},
		{seed: 42, churn: false, want: 0x8e40292727df5a33},
	}
	for _, tc := range cases {
		sc := smallScenario(tc.seed)
		sc.Name = "golden"
		if tc.churn {
			sc.Churn = workload.DefaultChurn()
		}
		res, err := RunScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		got := goldenDigest(t, res)
		if got != tc.want {
			t.Errorf("seed %d churn=%v: digest = %#x, want %#x (behaviour changed vs the pre-rewrite scheduler)",
				tc.seed, tc.churn, got, tc.want)
		}
	}
}
