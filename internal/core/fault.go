package core

import (
	"pplivesim/internal/fault"
	"pplivesim/internal/peer"
)

// installFaults translates the declarative fault schedule into events on the
// owning shard engines, at Build time. Every event runs on the domain worker
// that owns the state it touches — server flips on the server's domain,
// network perturbations on each domain's own network, kill draws from each
// domain's own RNG stream — so a chaos run is bit-reproducible at any worker
// count, exactly like a benign one.
func (s *Sim) installFaults(fs *fault.Schedule) {
	for _, f := range fs.SourceCrashes {
		src := s.sources[f.Channel]
		f := f
		s.srcDom.At(f.At, func() { src.SetDown(true) })
		s.srcDom.At(f.Recover, func() { src.SetDown(false) })
	}

	// Edge crashes flip the cache's down flag on its owning domain; the
	// ingest clocks keep running, so a recovered edge is warm immediately.
	for _, f := range fs.EdgeCrashes {
		for i, er := range s.edges {
			if f.Edge >= 0 && i != f.Edge {
				continue
			}
			er, f := er, f
			er.dom.At(f.At, func() { er.edge.SetDown(true) })
			er.dom.At(f.Recover, func() { er.edge.SetDown(false) })
		}
	}

	for _, f := range fs.TrackerOutages {
		for _, ref := range s.trackerSrvs {
			if f.Group >= 0 && ref.group != f.Group {
				continue
			}
			ref, f := ref, f
			ref.dom.At(f.At, func() { ref.srv.SetDown(true) })
			ref.dom.At(f.Recover, func() { ref.srv.SetDown(false) })
		}
	}

	// Transit perturbations exist once per domain network (each shard routes
	// its own hosts' sends), so each domain installs and clears the fault on
	// its own copy at the fault instants. Apply/Clear accumulate, so
	// overlapping windows compose and the table frees itself when the last
	// fault clears.
	for _, f := range fs.LinkFaults {
		for i := range s.doms {
			net := s.doms[i].dom.Network()
			dom := s.doms[i].dom
			f := f
			dom.At(f.At, func() { net.ApplyLinkFault(f.A, f.B, f.AddLoss, f.AddDelay, f.Partition) })
			dom.At(f.Recover, func() { net.ClearLinkFault(f.A, f.B, f.AddLoss, f.AddDelay, f.Partition) })
		}
	}
	for _, f := range fs.BurstLosses {
		for i := range s.doms {
			net := s.doms[i].dom.Network()
			dom := s.doms[i].dom
			f := f
			dom.At(f.At, func() { net.AddBurstLoss(f.Loss) })
			dom.At(f.Recover, func() { net.RemoveBurstLoss(f.Loss) })
		}
	}

	// Kill-churn: each affected domain draws which of its own live viewers
	// crash, from its own RNG stream. Kill tears a client down silently (no
	// Leaving announces); with churn enabled its already-scheduled session-end
	// replacement still fires, so the population recovers organically.
	for _, f := range fs.PeerKills {
		for i := range s.doms {
			ds := &s.doms[i]
			if f.ISP != 0 && ds.dom.Category() != f.ISP {
				continue
			}
			f := f
			ds.dom.At(f.At, func() {
				for _, c := range ds.background {
					if c.Phase() == peer.PhaseStopped {
						continue
					}
					if ds.rng.Float64() < f.Fraction {
						c.Kill()
					}
				}
			})
		}
		// Flow swarms draw their kills from the owning sub-shard's RNG
		// stream, exactly like Client viewers above, so the killed set is
		// worker-count invariant at flow fidelity too.
		for _, fd := range s.flows {
			if f.ISP != 0 && fd.category != f.ISP {
				continue
			}
			fd, f := fd, f
			fd.ds.dom.At(f.At, func() { fd.swarm.KillFraction(f.Fraction) })
		}
	}
}
