package core

import (
	"os"
	"runtime"
	"testing"
	"time"

	"pplivesim/internal/fault"
	"pplivesim/internal/isp"
	"pplivesim/internal/peer"
	"pplivesim/internal/workload"
)

// TestFlowFidelitySmallRun is the end-to-end check that a full-fidelity
// probe cannot tell flow members from batched Clients where it matters: it
// must discover them through trackers and gossip, handshake in, and stream
// at normal continuity — while the flow-level traffic account shows the
// expected intra-ISP locality.
func TestFlowFidelitySmallRun(t *testing.T) {
	sc := smallScenario(7)
	sc.Name = "flow-small"
	sc.Fidelity = peer.FidelityFlow
	sc.Churn = workload.DefaultChurn()
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeersSpawned < sc.Viewers.Total() {
		t.Errorf("spawned %d flow members, want >= %d", res.PeersSpawned, sc.Viewers.Total())
	}
	cont := res.Probes[0].Client.BufferStats().Continuity()
	if cont < 0.9 {
		t.Errorf("probe continuity at flow fidelity = %.3f, want >= 0.9", cont)
	}
	// The probe's own traffic must come overwhelmingly from the flow swarm,
	// not the source: the mesh carries the stream.
	rep, err := res.ProbeReport(0)
	if err != nil {
		t.Fatal(err)
	}
	var peerBytes uint64
	for _, b := range rep.BytesByISP {
		peerBytes += b
	}
	if peerBytes == 0 {
		t.Error("probe streamed nothing from flow members")
	}
	// Flow-level account: TELE swarm traffic stays ~90% inside TELE.
	loc, ok := res.FlowLocality(0, isp.TELE)
	if !ok {
		t.Fatal("no flow traffic recorded for TELE")
	}
	if loc < 0.8 || loc > 0.99 {
		t.Errorf("TELE flow locality = %.3f, want ~0.9", loc)
	}
	if len(res.FlowTraffic) == 0 {
		t.Error("result carries no flow traffic aggregates")
	}
}

// flowSummary captures everything a flow worker-invariance check compares.
type flowSummary struct {
	digest     uint64
	events     uint64
	spawned    int
	continuity float64
	teleBytes  uint64
}

func runFlowScaled(t *testing.T, sc Scenario, shards, workers int) flowSummary {
	t.Helper()
	sc.Shards = shards
	sc.Workers = workers
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatalf("shards %d workers %d: %v", shards, workers, err)
	}
	var teleBytes uint64
	for _, ft := range res.FlowTraffic {
		if ft.ISP == isp.TELE {
			for _, b := range ft.Aggregate.BytesSnapshot() {
				teleBytes += b
			}
		}
	}
	return flowSummary{
		digest:     goldenDigest(t, res),
		events:     res.EventsProcessed,
		spawned:    res.PeersSpawned,
		continuity: res.Probes[0].Client.BufferStats().Continuity(),
		teleBytes:  teleBytes,
	}
}

// TestFlowWorkerInvariance runs flow fidelity on the 12-domain scaled
// partition at 1 and 4 workers: the probe trajectory AND the barrier-folded
// flow traffic totals must be bit-identical.
func TestFlowWorkerInvariance(t *testing.T) {
	sc := smallScenario(7)
	sc.Name = "flow-invariance"
	sc.Fidelity = peer.FidelityFlow
	sc.Churn = workload.DefaultChurn()

	s1 := runFlowScaled(t, sc, 12, 1)
	s4 := runFlowScaled(t, sc, 12, 4)
	if s1 != s4 {
		t.Errorf("flow fidelity diverges across workers:\n  1 worker : %+v\n  4 workers: %+v", s1, s4)
	}
}

// TestFlowKillEquivalence injects a kill-churn fault into flow swarms on the
// scaled partition: every sub-shard draws kills from its own RNG stream, so
// the killed set — and the probe's whole trajectory — is worker-count
// invariant, mirroring the Client-population guarantee.
func TestFlowKillEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario-scale test")
	}
	sc := smallScenario(7)
	sc.Name = "flow-kill"
	sc.Fidelity = peer.FidelityFlow
	sc.Churn = workload.DefaultChurn()
	sc.Faults = &fault.Schedule{
		PeerKills: []fault.PeerKill{{At: sc.WarmUp + 2*time.Minute, Fraction: 0.3, ISP: isp.TELE}},
	}

	s1 := runFlowScaled(t, sc, 12, 1)
	s4 := runFlowScaled(t, sc, 12, 4)
	if s1 != s4 {
		t.Errorf("flow kill-churn diverges across workers:\n  1 worker : %+v\n  4 workers: %+v", s1, s4)
	}
}

func TestFlowFidelityValidation(t *testing.T) {
	sc := smallScenario(7)
	sc.Fidelity = peer.FidelityFlow
	sc.Switching = workload.DefaultSwitching()
	sc.Switching.Enabled = true
	if _, err := Build(sc); err == nil {
		t.Error("flow fidelity + switching should fail validation")
	}
	sc = smallScenario(7)
	sc.Fidelity = peer.FidelityFlow
	sc.Behaviour.FullFidelityBackground = true
	if _, err := Build(sc); err == nil {
		t.Error("flow fidelity + FullFidelityBackground should fail validation")
	}
	sc = smallScenario(7)
	sc.Fidelity = peer.Fidelity(99)
	if _, err := Build(sc); err == nil {
		t.Error("undefined fidelity should fail validation")
	}
}

// TestMillionPeerSmoke is the scale gate: a million-plus flow members on the
// 12-domain scaled partition (>=100k per TELE sub-shard), bounded heap, in
// one CI-sized run. Gated behind PPLIVE_MILLION=1 — it needs a few minutes
// and a few GB.
func TestMillionPeerSmoke(t *testing.T) {
	if os.Getenv("PPLIVE_MILLION") == "" {
		t.Skip("set PPLIVE_MILLION=1 to run the million-peer smoke test")
	}
	sc := Scenario{
		Name: "million-smoke",
		Seed: 7,
		Spec: smallScenario(7).Spec,
		Viewers: workload.Population{
			isp.TELE:    700_000,
			isp.CNC:     200_000,
			isp.CER:     30_000,
			isp.OtherCN: 70_000,
			isp.Foreign: 50_000,
		},
		Probes:        []ProbeSpec{{Name: "tele-probe", ISP: isp.TELE}},
		Fidelity:      peer.FidelityFlow,
		Churn:         workload.DefaultChurn(),
		Shards:        12,
		ArrivalWindow: 2 * time.Minute,
		WarmUp:        3 * time.Minute,
		Watch:         5 * time.Minute,
	}
	sim, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Every TELE sub-shard must own a >=100k slice of the population.
	teleShards := 0
	for _, fd := range sim.flows {
		if fd.category == isp.TELE {
			teleShards++
			if fd.initial < 100_000 {
				t.Errorf("TELE sub-shard %s holds %d members, want >= 100000", fd.ds.dom.Name(), fd.initial)
			}
		}
	}
	if teleShards != 7 {
		t.Errorf("TELE swarm split across %d sub-shards, want 7", teleShards)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PeersSpawned < 1_050_000 {
		t.Errorf("spawned %d members, want >= 1050000", res.PeersSpawned)
	}
	if alive := sim.FlowAlive(); alive < 1_000_000 {
		t.Errorf("alive at horizon = %d, want >= 1000000 (churn replaces departures)", alive)
	}
	cont := res.Probes[0].Client.BufferStats().Continuity()
	if cont < 0.9 {
		t.Errorf("probe continuity = %.3f, want >= 0.9", cont)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const heapLimit = 6 << 30
	if ms.HeapAlloc > heapLimit {
		t.Errorf("heap alloc %d bytes exceeds %d", ms.HeapAlloc, uint64(heapLimit))
	}
	t.Logf("million-smoke: spawned=%d alive=%d events=%d continuity=%.4f heap_mb=%d",
		res.PeersSpawned, sim.FlowAlive(), res.EventsProcessed, cont, ms.HeapAlloc>>20)
}
