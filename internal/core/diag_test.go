package core

import (
	"os"
	"testing"
	"time"

	"pplivesim/internal/isp"
	"pplivesim/internal/simnet"
	"pplivesim/internal/workload"
)

// TestDiagLocalityScenario dumps swarm-health detail for the locality
// scenario. It is a diagnostic harness, not an assertion suite: set
// PPLIVE_DIAG=1 to run it.
func TestDiagLocalityScenario(t *testing.T) {
	if os.Getenv("PPLIVE_DIAG") == "" {
		t.Skip("diagnostic; set PPLIVE_DIAG=1 to run")
	}
	sc := Scenario{
		Name:          "diag-locality",
		Seed:          7,
		Spec:          workload.PopularSpec(),
		Viewers:       workload.PopularPopulation().Scale(0.25),
		Churn:         workload.DefaultChurn(),
		Probes:        []ProbeSpec{{Name: "tele", ISP: isp.TELE}},
		ArrivalWindow: 4 * time.Minute,
		WarmUp:        6 * time.Minute,
		Watch:         20 * time.Minute,
	}
	sim, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Periodic swarm-health samples (per-minute deltas). The sampler runs on
	// the source's shard domain; cross-domain counters are summed at the
	// barrier-consistent instant the event fires.
	world := sim.World()
	srcDom := world.DomainsOf(isp.TELE)[0]
	var pDeliv, pLoss, pQueue, pNoHost uint64
	var pSrcSent, pRecvSum, pOKSum, pMissSum uint64
	var pProbeRecv, pProbeSent, pProbeGot, pProbeTO uint64
	for m := 4; m <= 26; m++ {
		at := time.Duration(m) * time.Minute
		srcDom.At(at, func() {
			deliv, loss, queue, noHost := world.NetStats()
			var srcSent uint64
			var srcQ time.Duration
			if h, ok := world.LookupHost(sim.channels[0].Source); ok {
				_, srcSent, _, _ = h.Stats()
				srcQ = h.QueueDelay(srcDom.Engine().Now())
			}
			var recvSum, okSum, missSum uint64
			for _, c := range sim.BackgroundClients() {
				bs := c.BufferStats()
				recvSum += bs.Received
				okSum += bs.PlayedOK
				missSum += bs.PlayedMiss
			}
			t.Logf("t=%-5v net Δdeliv=%-7d Δloss=%-5d ΔqueueDrop=%-6d ΔnoHost=%-5d | src Δbytes=%-9d q=%-8v | bg Δrecv=%-6d Δok=%-6d Δmiss=%-6d hosts=%d",
				srcDom.Engine().Now(), deliv-pDeliv, loss-pLoss, queue-pQueue, noHost-pNoHost,
				srcSent-pSrcSent, srcQ, recvSum-pRecvSum, okSum-pOKSum, missSum-pMissSum, numHosts(world))
			pDeliv, pLoss, pQueue, pNoHost = deliv, loss, queue, noHost
			pSrcSent, pRecvSum, pOKSum, pMissSum = srcSent, recvSum, okSum, missSum
			for _, p := range sim.probes {
				bs := p.Client.BufferStats()
				st := p.Client.Stats()
				t.Logf("      probe cont=%.3f Δrecv=%-5d dup=%-5d | Δsent=%-5d Δgot=%-5d Δtimeouts=%-5d busy=%d nbrs=%d",
					bs.Continuity(), bs.Received-pProbeRecv, bs.Duplicates,
					st.DataRequestsSent-pProbeSent, st.DataRepliesGot-pProbeGot, st.RequestTimeouts-pProbeTO,
					st.DataBusies, p.Client.NumNeighbors())
				pProbeRecv, pProbeSent, pProbeGot, pProbeTO = bs.Received, st.DataRequestsSent, st.DataRepliesGot, st.RequestTimeouts
			}
		})
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Background swarm health at the end.
	var live, lowCont int
	var contSum float64
	for _, c := range sim.BackgroundClients() {
		bs := c.BufferStats()
		if bs.PlayedOK+bs.PlayedMiss == 0 {
			continue
		}
		live++
		cont := bs.Continuity()
		contSum += cont
		if cont < 0.8 {
			lowCont++
		}
	}
	t.Logf("background: %d with playback, mean continuity %.3f, %d below 0.8",
		live, contSum/float64(live), lowCont)
	p := res.Probes[0]
	t.Logf("probe final: %+v", p.Client.BufferStats())
	t.Logf("probe stats: %+v", p.Client.Stats())
}

// numHosts sums attached hosts across all shard domains.
func numHosts(w *simnet.World) int {
	var n int
	for _, d := range w.Domains() {
		n += d.Network().NumHosts()
	}
	return n
}
