package core

import (
	"testing"
	"time"

	"pplivesim/internal/isp"
	"pplivesim/internal/selection"
	"pplivesim/internal/workload"
)

// TestBiasedGoldenDigest pins the exact trajectory of a quota-biased run —
// the fifth golden, guarding the engineered-locality code paths the four
// legacy goldens cannot see (policy-shaped tracker replies and referrals).
// Biased policies draw only from the owning domain's RNG stream, so the
// digest must hold at every worker count just like the others (the CI
// locality lane runs this at 1 and 4 workers via PPLIVE_SHARD_WORKERS).
func TestBiasedGoldenDigest(t *testing.T) {
	sc := smallScenario(7)
	sc.Name = "golden-biased"
	sc.Churn = workload.DefaultChurn()
	sc.Selection = selection.Spec{Kind: selection.KindQuota, MaxInterFrac: 0.25}
	sc.Shards = goldenWorkers(t)
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	const want uint64 = 0x391bc95a936e0565
	if got := goldenDigest(t, res); got != want {
		t.Errorf("biased digest = %#x, want %#x (quota-selection trajectory changed vs the pinned baseline)", got, want)
	}
}

// TestBiasedSelectionWorkerInvariance runs a two-ISP quota scenario at 1 and
// 4 workers in-process and requires bit-identical trajectories: the biased
// reply composition must be a pure function of (candidate set, requester,
// owning-domain RNG stream), never of which goroutine executed the window.
func TestBiasedSelectionWorkerInvariance(t *testing.T) {
	build := func(workers int) Scenario {
		return Scenario{
			Name: "two-isp-quota",
			Seed: 11,
			Spec: workload.PopularSpec(),
			Viewers: workload.Population{
				isp.TELE: 30,
				isp.CNC:  20,
			},
			Selection:     selection.Spec{Kind: selection.KindQuota, MaxInterFrac: 0.2},
			Probes:        []ProbeSpec{{Name: "tele-probe", ISP: isp.TELE, FullCapture: true}},
			ArrivalWindow: 2 * time.Minute,
			WarmUp:        3 * time.Minute,
			Watch:         4 * time.Minute,
			Shards:        workers,
		}
	}
	digests := make(map[int]uint64)
	for _, workers := range []int{1, 4} {
		res, err := RunScenario(build(workers))
		if err != nil {
			t.Fatal(err)
		}
		digests[workers] = goldenDigest(t, res)
	}
	if digests[1] != digests[4] {
		t.Errorf("quota trajectory varies with workers: 1 worker %#x, 4 workers %#x", digests[1], digests[4])
	}
}
