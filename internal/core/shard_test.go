package core

import (
	"testing"

	"pplivesim/internal/capture"
	"pplivesim/internal/isp"
	"pplivesim/internal/workload"
)

// TestShardEquivalence is the sharding tentpole's guard: Scenario.Shards
// chooses how many worker goroutines execute the per-domain event loops, and
// must change nothing else. Each seed runs the same churning scenario
// single-threaded and with 4 workers and demands identical full-trace
// digests, event counts, and derived experiment metrics (continuity and
// per-ISP traffic split). Any cross-shard ordering leak — a message crossing
// a window boundary, a domain draining in worker order instead of domain
// order — shows up here as a digest mismatch.
//
// In -short mode (CI's race-detector lane) one seed still runs with 4
// workers, so the parallel barrier/flush machinery is exercised under the
// race detector on every CI push.
func TestShardEquivalence(t *testing.T) {
	seeds := []int64{7, 11, 23}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		sc := smallScenario(seed)
		sc.Name = "shard-equivalence"
		sc.Churn = workload.DefaultChurn() // respawns cross domains via tracker re-query

		type summary struct {
			digest     uint64
			events     uint64
			spawned    int
			continuity float64
			teleBytes  uint64
			totalBytes uint64
		}
		run := func(workers int) summary {
			s := sc
			s.Shards = workers
			res, err := RunScenario(s)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			p := res.Probes[0]
			m := capture.Match(p.Recorder.Records(), res.Trackers)
			var teleBytes, totalBytes uint64
			for _, tx := range m.Transmissions {
				if tx.Peer == res.SourceAddr {
					continue
				}
				got, ok := res.Registry.ISPOf(tx.Peer)
				if !ok {
					t.Fatalf("seed %d workers %d: unresolvable peer %v", seed, workers, tx.Peer)
				}
				totalBytes += uint64(tx.Bytes)
				if got == isp.TELE {
					teleBytes += uint64(tx.Bytes)
				}
			}
			return summary{
				digest:     goldenDigest(t, res),
				events:     res.EventsProcessed,
				spawned:    res.PeersSpawned,
				continuity: p.Client.BufferStats().Continuity(),
				teleBytes:  teleBytes,
				totalBytes: totalBytes,
			}
		}

		s1 := run(1)
		s4 := run(4)
		if s1 != s4 {
			t.Errorf("seed %d: 1-worker and 4-worker runs diverge:\n  1 worker : %+v\n  4 workers: %+v", seed, s1, s4)
		}
	}
}
