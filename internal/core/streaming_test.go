package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"pplivesim/internal/analysis"
	"pplivesim/internal/capture"
	"pplivesim/internal/workload"
)

// TestStreamingReportParity is the streaming-telemetry tentpole's guard: on
// the three pinned golden scenarios, the online path (capture.Aggregator →
// analysis.Aggregate, built during the run) must produce a Report whose JSON
// is byte-for-byte identical to post-hoc analysis of the full captured trace
// (capture.Match → analysis.Analyze). Probes run in full-capture mode so one
// run exercises both paths over the very same datagrams; the CI determinism
// lane runs this at 1 and 4 workers, so the parity also proves the streaming
// aggregates are worker-count invariant.
func TestStreamingReportParity(t *testing.T) {
	cases := []struct {
		name  string
		seed  int64
		churn bool
		multi bool
	}{
		{name: "single/churn", seed: 7, churn: true},
		{name: "single/static", seed: 42},
		{name: "two-channel/switching", seed: 7, multi: true},
	}
	workers := goldenWorkers(t)
	for _, tc := range cases {
		var sc Scenario
		if tc.multi {
			if testing.Short() {
				continue // as in TestGoldenTraceDigest: several times the cost
			}
			sc = twoChannelScenario(tc.seed)
		} else {
			sc = smallScenario(tc.seed)
			if tc.churn {
				sc.Churn = workload.DefaultChurn()
			}
		}
		sc.Name = "parity"
		sc.Shards = workers
		sc.Telemetry = TelemetryFullCapture
		res, err := RunScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range res.Probes {
			if p.Recorder == nil {
				t.Fatalf("%s: probe %q has no recorder in full-capture mode", tc.name, p.Name)
			}
			postHoc := analysis.Analyze(analysis.Input{
				Records:  p.Recorder.Records(),
				Matched:  capture.Match(p.Recorder.Records(), res.Trackers),
				Resolver: res.Registry,
				Trackers: res.Trackers,
				Source:   p.Source,
				Edges:    res.Edges,
				ProbeISP: p.ISP,
			})
			streaming, err := res.ProbeReport(i)
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(postHoc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(streaming)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s probe %q: streaming report differs from post-hoc\nstreaming: %s\npost-hoc:  %s",
					tc.name, p.Name, got, want)
			}
			// The in-memory series (not serialized) must agree too: the
			// figure pipeline reads it from the struct.
			for g, pts := range postHoc.ListRTSeries {
				sp := streaming.ListRTSeries[g]
				if len(sp) != len(pts) {
					t.Errorf("%s probe %q: ListRTSeries[%v] length %d vs %d", tc.name, p.Name, g, len(sp), len(pts))
					continue
				}
				for j := range pts {
					if sp[j] != pts[j] {
						t.Errorf("%s probe %q: ListRTSeries[%v][%d] = %+v, want %+v", tc.name, p.Name, g, j, sp[j], pts[j])
						break
					}
				}
			}
		}
	}
}

// TestStreamingModeKeepsNoTrace checks the memory contract of the default
// telemetry mode: no Recorder exists, yet the report is fully populated.
func TestStreamingModeKeepsNoTrace(t *testing.T) {
	sc := smallScenario(7)
	sc.Probes = []ProbeSpec{{Name: "tele-probe", ISP: sc.Probes[0].ISP}}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Probes[0]
	if p.Recorder != nil {
		t.Error("streaming mode retained a Recorder")
	}
	rep, err := res.ProbeReport(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ReturnedByISP) == 0 || len(rep.Peers) == 0 || rep.TrafficLocality == 0 {
		t.Errorf("streaming report looks empty: returned=%v peers=%d locality=%v",
			rep.ReturnedByISP, len(rep.Peers), rep.TrafficLocality)
	}
	if _, err := res.ProbeReport(99); err == nil {
		t.Error("out-of-range probe index accepted")
	}
}
