package core

// Tests for the scaled partition (Scenario.Shards > simnet.DefaultShards):
// full-fidelity runs must complete across TELE sub-shards with the
// infrastructure domain hosting bootstrap/trackers/sources, the trajectory
// must be worker-count invariant (Scenario.Workers decouples goroutines from
// the partition degree), and kill-churn faults must draw from the owning
// sub-shard's RNG so the same peers die at every worker count.

import (
	"testing"
	"time"

	"pplivesim/internal/fault"
	"pplivesim/internal/workload"
)

// scaledSummary captures everything a scaled-partition equivalence check
// compares across worker counts.
type scaledSummary struct {
	digest     uint64
	events     uint64
	spawned    int
	continuity float64
}

func runScaled(t *testing.T, sc Scenario, shards, workers int) scaledSummary {
	t.Helper()
	sc.Shards = shards
	sc.Workers = workers
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatalf("shards %d workers %d: %v", shards, workers, err)
	}
	return scaledSummary{
		digest:     goldenDigest(t, res),
		events:     res.EventsProcessed,
		spawned:    res.PeersSpawned,
		continuity: res.Probes[0].Client.BufferStats().Continuity(),
	}
}

// TestScaledPartitionEquivalence runs the small churning scenario on a
// 12-domain scaled partition (7 TELE sub-shards + infra) and demands the
// trajectory be identical at 1 and 4 workers. The digest differs from the
// legacy-partition goldens — the scaled partition widens the synthetic
// lookahead, which is the point — but it must be a pure function of the
// partition, never of the worker count.
func TestScaledPartitionEquivalence(t *testing.T) {
	sc := smallScenario(7)
	sc.Name = "scaled-equivalence"
	sc.Churn = workload.DefaultChurn()

	s1 := runScaled(t, sc, 12, 1)
	s4 := runScaled(t, sc, 12, 4)
	if s1 != s4 {
		t.Errorf("scaled partition diverges across workers:\n  1 worker : %+v\n  4 workers: %+v", s1, s4)
	}
	if s1.continuity < 0.9 {
		t.Errorf("scaled-partition continuity = %.3f, want >= 0.9 (probe must stream normally across sub-shards)", s1.continuity)
	}
}

// TestScaledKillChurnEquivalence injects an abrupt kill-churn fault into a
// scaled partition: each TELE sub-shard draws its kills from its own RNG
// stream, so the set of killed peers — and everything downstream — must be
// identical at any worker count.
func TestScaledKillChurnEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario-scale test")
	}
	sc := smallScenario(7)
	sc.Name = "scaled-kill-churn"
	sc.Churn = workload.DefaultChurn()
	sc.Faults = &fault.Schedule{
		PeerKills: []fault.PeerKill{{At: sc.WarmUp + 2*time.Minute, Fraction: 0.2}},
	}

	s1 := runScaled(t, sc, 12, 1)
	s4 := runScaled(t, sc, 12, 4)
	if s1 != s4 {
		t.Errorf("scaled kill-churn diverges across workers:\n  1 worker : %+v\n  4 workers: %+v", s1, s4)
	}
}
