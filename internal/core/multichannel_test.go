package core

import (
	"testing"
	"time"

	"pplivesim/internal/capture"
	"pplivesim/internal/isp"
	"pplivesim/internal/workload"
)

// twoChannelScenario is the reference multi-channel run: a TELE-heavy popular
// channel and a small, CNC-tilted unpopular one share the bootstrap and
// tracker groups, with distinct sources, a TELE probe pinned to each, and a
// third of the audience browsing between them on short dwells (sized so a
// sub-ten-minute run still sees plenty of switches).
func twoChannelScenario(seed int64) Scenario {
	return Scenario{
		Name: "test-two-channel",
		Seed: seed,
		Channels: []ChannelSpec{
			{
				Spec: workload.PopularSpec(),
				Viewers: workload.Population{
					isp.TELE:    40,
					isp.CNC:     18,
					isp.CER:     4,
					isp.OtherCN: 6,
					isp.Foreign: 8,
				},
			},
			{
				Spec: workload.UnpopularSpec(),
				Viewers: workload.Population{
					isp.TELE:    10,
					isp.CNC:     14,
					isp.CER:     2,
					isp.OtherCN: 4,
					isp.Foreign: 2,
				},
			},
		},
		Switching: workload.Switching{
			Enabled:          true,
			SwitcherFraction: 0.35,
			MedianDwell:      2 * time.Minute,
			SigmaDwell:       0.7,
			MinDwell:         20 * time.Second,
		},
		Churn: workload.Churn{Enabled: false},
		// Full capture: these tests read the raw trace via Recorder.
		Probes: []ProbeSpec{
			{Name: "tele-popular", ISP: isp.TELE, Channel: workload.PopularSpec().Channel, FullCapture: true},
			{Name: "tele-unpopular", ISP: isp.TELE, Channel: workload.UnpopularSpec().Channel, FullCapture: true},
		},
		ArrivalWindow: 2 * time.Minute,
		WarmUp:        3 * time.Minute,
		Watch:         6 * time.Minute,
	}
}

// probeLocality computes a probe's traffic locality (same-ISP share of bytes
// downloaded from regular peers) and continuity from its captured trace,
// excluding the probe's own channel source — the per-channel analog of the
// paper's methodology.
func probeLocality(t *testing.T, res *Result, p ProbeResult) (locality, continuity float64) {
	t.Helper()
	m := capture.Match(p.Recorder.Records(), res.Trackers)
	var sameISP, total uint64
	for _, tx := range m.Transmissions {
		if tx.Peer == p.Source {
			continue
		}
		got, ok := res.Registry.ISPOf(tx.Peer)
		if !ok {
			t.Fatalf("probe %s: unresolvable peer %v", p.Name, tx.Peer)
		}
		total += uint64(tx.Bytes)
		if got == p.ISP {
			sameISP += uint64(tx.Bytes)
		}
	}
	if total == 0 {
		t.Fatalf("probe %s downloaded nothing from peers", p.Name)
	}
	return float64(sameISP) / float64(total), p.Client.BufferStats().Continuity()
}

// TestTwoChannelSwitching is the multi-channel tentpole's behaviour check: a
// popular and an unpopular channel run concurrently with channel-browsing
// viewers, a healthy share of the audience actually switches, both probes
// stream acceptably, and the popular channel's traffic locality is at least
// the unpopular one's — the paper's Fig. 5 contrast (locality tracks the
// same-ISP peer supply, which the unpopular channel lacks).
func TestTwoChannelSwitching(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute scenario")
	}
	sc := twoChannelScenario(7)
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Channels) != 2 {
		t.Fatalf("channels = %d, want 2", len(res.Channels))
	}
	if res.Channels[0].Source == res.Channels[1].Source {
		t.Error("channels share a source address")
	}

	initial := 0
	for _, ch := range sc.Channels {
		initial += ch.Viewers.Total()
	}
	if res.Switches == 0 {
		t.Fatal("no channel switches happened")
	}
	if res.Switchers*10 < initial {
		t.Errorf("switchers = %d of %d initial viewers, want >= 10%%", res.Switchers, initial)
	}
	t.Logf("switchers %d/%d, switch events %d", res.Switchers, initial, res.Switches)

	var popLoc, unpopLoc float64
	for _, p := range res.Probes {
		// Probes are pinned to their channel: they must never switch, exactly
		// like the paper's measurement hosts, which watched one program per
		// trace.
		if p.Client.Stats().ChannelSwitches != 0 {
			t.Errorf("probe %s switched channels", p.Name)
		}
		loc, cont := probeLocality(t, res, p)
		t.Logf("probe %s (channel %d): locality %.3f, continuity %.3f", p.Name, p.Channel, loc, cont)
		if cont < 0.7 {
			t.Errorf("probe %s continuity %.3f, want >= 0.7", p.Name, cont)
		}
		switch p.Name {
		case "tele-popular":
			popLoc = loc
		case "tele-unpopular":
			unpopLoc = loc
		}
	}
	if popLoc < unpopLoc {
		t.Errorf("popular-channel locality %.3f below unpopular %.3f, want the Fig. 5 contrast", popLoc, unpopLoc)
	}
}

// TestTwoChannelShardEquivalence extends the worker-count invariance guard to
// the switching scenario: channel hops are timer events drawn from the owning
// shard's RNG stream, so the full trace digest and the switch totals must be
// identical whether one worker or four execute the domain windows.
// In -short mode (CI's race-detector lane) the scenario is shrunk so the
// concurrent-channel machinery — per-shard switch timers, session teardown,
// direct rejoins — still runs under the race detector on every push without
// multi-minute watches.
func TestTwoChannelShardEquivalence(t *testing.T) {
	sc := twoChannelScenario(11)
	if testing.Short() {
		sc.ArrivalWindow = 45 * time.Second
		sc.WarmUp = 75 * time.Second
		sc.Watch = 90 * time.Second
		sc.Switching.MedianDwell = 30 * time.Second
	}
	type summary struct {
		digest    uint64
		events    uint64
		spawned   int
		switches  uint64
		switchers int
	}
	run := func(workers int) summary {
		s := sc
		s.Shards = workers
		res, err := RunScenario(s)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		return summary{
			digest:    goldenDigest(t, res),
			events:    res.EventsProcessed,
			spawned:   res.PeersSpawned,
			switches:  res.Switches,
			switchers: res.Switchers,
		}
	}
	s1 := run(1)
	s4 := run(4)
	if s1 != s4 {
		t.Errorf("1-worker and 4-worker switching runs diverge:\n  1 worker : %+v\n  4 workers: %+v", s1, s4)
	}
}
