// Package core orchestrates full simulations: it assembles the underlay,
// control servers (bootstrap + five tracker groups), the channel sources, a
// churning background viewer population, and instrumented probe clients, then
// runs the scenario and returns the probes' telemetry for analysis.
//
// This mirrors the paper's methodology: probe hosts deployed in chosen ISPs
// join a live channel alongside the organic audience and observe every
// datagram; everything the study reports is computed from that probe-side
// view (never from global simulator state). By default each probe's
// datagrams are matched and aggregated online in bounded memory
// (TelemetryStreaming); the paper's literal capture-then-analyze mode —
// retaining the full trace — is the opt-in TelemetryFullCapture.
package core

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"pplivesim/internal/analysis"
	"pplivesim/internal/asnmap"
	"pplivesim/internal/capture"
	"pplivesim/internal/cdn"
	"pplivesim/internal/fault"
	"pplivesim/internal/isp"
	"pplivesim/internal/peer"
	"pplivesim/internal/selection"
	"pplivesim/internal/simnet"
	"pplivesim/internal/stream"
	"pplivesim/internal/tracker"
	"pplivesim/internal/wire"
	"pplivesim/internal/workload"
)

// ProbeSpec places one instrumented measurement client.
type ProbeSpec struct {
	Name string
	ISP  isp.ISP
	// UploadBps overrides the probe's uplink; zero draws from the ISP's
	// capacity distribution.
	UploadBps float64
	// Channel pins the probe to one of the scenario's channels; zero means
	// the first (or only) channel. Probes never switch — the paper's probes
	// watched their channel for the whole capture.
	Channel wire.ChannelID
	// FullCapture retains this probe's complete datagram trace in a
	// capture.Recorder (the opt-in Wireshark mode, needed by tracefile
	// export) in addition to the always-on streaming telemetry. See
	// Scenario.Telemetry for the run-wide switch.
	FullCapture bool
}

// ChannelSpec is one channel in a multi-channel scenario: its stream plus
// the audience that arrives on it.
type ChannelSpec struct {
	Spec    stream.Spec
	Viewers workload.Population
}

// Behaviour toggles the mechanism ablations DESIGN.md calls out. The zero
// value is the faithful PPLive behaviour.
type Behaviour struct {
	// DisableReferral makes every peer answer gossip with empty lists,
	// leaving trackers as the only discovery channel (tracker-centric
	// baseline behaviour inside the PPLive protocol shell).
	DisableReferral bool
	// DisableLatencyBias randomizes handshake timing so neighbor-slot
	// acquisition no longer correlates with proximity.
	DisableLatencyBias bool
	// DisablePreference schedules data requests uniformly across covering
	// neighbors instead of preferring fast ones.
	DisablePreference bool
	// FullFidelityBackground runs background peers at probe fidelity
	// (BatchCount 1); used by the fidelity ablation.
	FullFidelityBackground bool
}

// Scenario fully describes one simulation run.
type Scenario struct {
	Name string
	Seed int64

	// Spec/Viewers describe a single-channel scenario (the common case).
	// Channels, when non-empty, supersedes them with a channel set served by
	// distinct sources behind the shared bootstrap and tracker groups.
	Spec     stream.Spec
	Viewers  workload.Population
	Channels []ChannelSpec

	// Switching drives channel-browsing viewers across the channel set (§5
	// of the paper). Zero value: nobody switches, and no switching-related
	// RNG draws occur, keeping legacy scenarios bit-identical.
	Switching workload.Switching

	// FlashCrowd, when enabled, injects an arrival spike on one channel at a
	// fixed instant: SpikeCount extra viewers per category join within
	// FlashCrowd.Window of FlashCrowd.At (an event start at a popular
	// channel). The zero value spawns nobody and draws nothing, keeping
	// legacy trajectories bit-identical.
	FlashCrowd workload.FlashCrowd

	// CDN, when non-nil with provisioned placements, deploys per-ISP edge
	// caches that absorb urgent-window misses before the origin (see
	// internal/cdn). Nil (or an empty config) deploys nothing and leaves the
	// pure-P2P trajectory bit-identical — the pinned golden digests enforce
	// this.
	CDN *cdn.Config

	Churn     workload.Churn
	Probes    []ProbeSpec
	Behaviour Behaviour

	// Selection chooses the peer-selection policy applied uniformly to
	// tracker replies, peer referrals, and the flow-fidelity byte mix. The
	// zero value is the paper-faithful locality-unaware uniform sample,
	// bit-identical to pre-policy builds (the pinned golden digests depend
	// on it); quota/ashop specs engineer locality instead (see
	// internal/selection).
	Selection selection.Spec

	// Fidelity selects how the background population is simulated. The zero
	// value, peer.FidelityMixed, is the pinned-golden behaviour (batched
	// protocol Clients); peer.FidelityFull promotes background viewers to
	// probe fidelity; peer.FidelityFlow replaces them with struct-of-arrays
	// flow swarms — the million-peer mode. Probes are full-fidelity Clients
	// at every level. Flow fidelity is incompatible with channel switching
	// and with Behaviour.FullFidelityBackground.
	Fidelity peer.Fidelity

	// Faults, when non-nil, is the declarative fault-injection schedule
	// executed during the run (see internal/fault). A non-nil schedule also
	// enables every peer's resilience behaviours (peer.DefaultResilience) and
	// periodic probe-side resilience sampling. Nil injects nothing, enables
	// nothing, and leaves the trajectory bit-identical to a fault-free build —
	// the pinned golden digests enforce this.
	Faults *fault.Schedule

	// Telemetry selects how probe traffic becomes analysis input. The zero
	// value, TelemetryStreaming, aggregates online in bounded memory.
	Telemetry Telemetry

	// Shards is the degree of parallelism of the sharded event engine. Values
	// up to simnet.DefaultShards (6) keep the legacy ISP-domain partition —
	// the trajectory is identical for every such value, Shards only chooses
	// how many goroutines execute the synchronization windows, and the pinned
	// golden digests depend on this. Values above 6 engage the scaled
	// partition: TELE splits into Shards-5 address-range sub-shards plus a
	// dedicated infrastructure domain (see simnet.NewShardedWorldConfigN),
	// which changes the trajectory (wider synthetic lookahead) but remains
	// worker-count invariant. Values below 2 run single-threaded.
	Shards int

	// Workers, when non-zero, decouples the number of worker goroutines from
	// the partition degree: a Shards=12 world can be driven by Workers=1 to
	// check that a scaled partition's trajectory is worker-count invariant.
	// Zero means Workers = Shards.
	Workers int

	// ArrivalWindow spreads the initial population's joins.
	ArrivalWindow time.Duration
	// WarmUp is when probes join (after the swarm has formed).
	WarmUp time.Duration
	// Watch is how long probes stay; total simulated time is
	// WarmUp + Watch.
	Watch time.Duration
}

// Telemetry selects how probe traffic becomes analysis input.
type Telemetry int

const (
	// TelemetryStreaming (the default) matches each probe's datagrams online
	// and folds them straight into bounded per-ISP/per-peer aggregates:
	// O(peers) memory, no retained trace. Reports come from
	// Result.ProbeReport; ProbeResult.Recorder is nil.
	TelemetryStreaming Telemetry = iota
	// TelemetryFullCapture additionally retains every probe's full datagram
	// trace in a capture.Recorder — the paper's Wireshark methodology,
	// O(datagrams) memory. Needed for tracefile export and for checking the
	// streaming path against post-hoc analysis. Per-probe opt-in is
	// ProbeSpec.FullCapture.
	TelemetryFullCapture
)

// channelSet returns the scenario's channels: the explicit set, or the
// legacy single Spec/Viewers pair wrapped as one entry.
func (s *Scenario) channelSet() []ChannelSpec {
	if len(s.Channels) > 0 {
		return s.Channels
	}
	return []ChannelSpec{{Spec: s.Spec, Viewers: s.Viewers}}
}

// channelIndex resolves a channel ID to its index in the channel set
// (-1 if absent; 0 for the zero ID).
func channelIndex(set []ChannelSpec, id wire.ChannelID) int {
	if id == 0 {
		return 0
	}
	for i, ch := range set {
		if ch.Spec.Channel == id {
			return i
		}
	}
	return -1
}

// Validate checks scenario consistency.
func (s *Scenario) Validate() error {
	set := s.channelSet()
	seen := make(map[wire.ChannelID]bool, len(set))
	for _, ch := range set {
		if err := ch.Spec.Validate(); err != nil {
			return err
		}
		if seen[ch.Spec.Channel] {
			return fmt.Errorf("core: scenario %q repeats channel %d", s.Name, ch.Spec.Channel)
		}
		seen[ch.Spec.Channel] = true
		if ch.Viewers.Total() <= 0 {
			return fmt.Errorf("core: scenario %q channel %d has no viewers", s.Name, ch.Spec.Channel)
		}
	}
	if err := s.Switching.Validate(); err != nil {
		return err
	}
	if s.Switching.Enabled && len(set) < 2 {
		return fmt.Errorf("core: scenario %q enables switching with %d channel(s)", s.Name, len(set))
	}
	if len(s.Probes) == 0 {
		return fmt.Errorf("core: scenario %q has no probes", s.Name)
	}
	for _, ps := range s.Probes {
		if channelIndex(set, ps.Channel) < 0 {
			return fmt.Errorf("core: scenario %q probe %q watches unknown channel %d", s.Name, ps.Name, ps.Channel)
		}
	}
	if s.ArrivalWindow <= 0 || s.WarmUp <= 0 || s.Watch <= 0 {
		return fmt.Errorf("core: scenario %q has non-positive timing", s.Name)
	}
	if !s.Fidelity.Valid() {
		return fmt.Errorf("core: scenario %q has invalid fidelity %d", s.Name, int(s.Fidelity))
	}
	if err := s.Selection.Validate(); err != nil {
		return fmt.Errorf("core: scenario %q: %w", s.Name, err)
	}
	if s.Fidelity == peer.FidelityFlow {
		if s.Switching.Enabled {
			return fmt.Errorf("core: scenario %q: flow fidelity does not support channel switching", s.Name)
		}
		if s.Behaviour.FullFidelityBackground {
			return fmt.Errorf("core: scenario %q: flow fidelity contradicts FullFidelityBackground", s.Name)
		}
	}
	if err := s.FlashCrowd.Validate(); err != nil {
		return fmt.Errorf("core: scenario %q: %w", s.Name, err)
	}
	if s.FlashCrowd.Enabled {
		if s.FlashCrowd.Channel >= len(set) {
			return fmt.Errorf("core: scenario %q flash crowd targets channel index %d of %d", s.Name, s.FlashCrowd.Channel, len(set))
		}
		if s.Fidelity == peer.FidelityFlow {
			return fmt.Errorf("core: scenario %q: flow fidelity does not support flash crowds", s.Name)
		}
	}
	if err := s.CDN.Validate(); err != nil {
		return fmt.Errorf("core: scenario %q: %w", s.Name, err)
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(len(set), tracker.Groups, s.edgeCount(), s.WarmUp+s.Watch); err != nil {
			return fmt.Errorf("core: scenario %q: %w", s.Name, err)
		}
	}
	return nil
}

// edgeCount is the total number of CDN edge caches the scenario deploys.
func (s *Scenario) edgeCount() int {
	if s.CDN == nil {
		return 0
	}
	n := 0
	for _, p := range s.CDN.Placements {
		n += p.Count
	}
	return n
}

// DefaultTiming fills the standard timing used by the paper-scale
// experiments (probes watch for two hours).
func (s *Scenario) DefaultTiming() {
	if s.ArrivalWindow == 0 {
		s.ArrivalWindow = 8 * time.Minute
	}
	if s.WarmUp == 0 {
		s.WarmUp = 10 * time.Minute
	}
	if s.Watch == 0 {
		s.Watch = 2 * time.Hour
	}
}

// ProbeResult is one probe's telemetry plus identity.
type ProbeResult struct {
	Name string
	ISP  isp.ISP
	Addr netip.Addr
	// Recorder holds the probe's full datagram trace when full capture was
	// enabled (Scenario.Telemetry or ProbeSpec.FullCapture); nil in the
	// default streaming mode.
	Recorder *capture.Recorder
	// Aggregate is the probe's streaming telemetry, always present; finalize
	// it via Result.ProbeReport.
	Aggregate *analysis.Aggregate
	Client    *peer.Client
	// Channel is the channel the probe watched; Source is that channel's
	// source address (the right exclusion set for this probe's analysis).
	Channel wire.ChannelID
	Source  netip.Addr

	// Samples is the periodic resilience series (continuity counters and
	// per-ISP byte tallies), collected only when the scenario has a fault
	// schedule; feed it to Result.ProbeResilience.
	Samples []analysis.ResilienceSample

	// matcher is the online matcher feeding Aggregate; Run closes it to
	// flush still-pending requests into the unanswered tallies.
	matcher *capture.Aggregator
}

// ChannelResult is one channel's identity in a completed run.
type ChannelResult struct {
	Spec    stream.Spec
	Source  netip.Addr
	Viewers workload.Population
}

// Result is a completed run.
type Result struct {
	Scenario Scenario
	Probes   []ProbeResult
	// Channels lists the run's channels with their source addresses, in
	// scenario order.
	Channels []ChannelResult
	// Trackers is the set of tracker-server addresses, needed by the
	// trace-matching split between tracker and regular-peer lists.
	Trackers map[netip.Addr]bool
	// Registry resolves observed addresses to ISPs (the Team Cymru step).
	Registry *asnmap.Registry
	// SourceAddr is the first channel's source (excluded from "regular peer"
	// statistics where the paper's methodology implies client peers). For
	// per-channel analysis use Probes[i].Source / Channels[i].Source.
	SourceAddr netip.Addr
	// FaultWindows lists the injected faults' active intervals (empty without
	// a fault schedule), in schedule order, for resilience analysis.
	FaultWindows []analysis.FaultWindow
	// Elapsed is the simulated duration.
	Elapsed time.Duration
	// EventsProcessed is the engine's event count (for benchmarks).
	EventsProcessed uint64
	// PeersSpawned counts background viewers ever created.
	PeersSpawned int
	// Switches counts channel-switch events across all viewers; Switchers
	// counts viewers that switched at least once.
	Switches  uint64
	Switchers int
	// FlowTraffic is the flow-level background traffic account, one entry
	// per (channel, viewer category) with live swarm members, in channel
	// then category order. Empty below peer.FidelityFlow.
	FlowTraffic []*FlowTraffic
	// Edges lists the CDN edge-cache addresses in deployment order (empty
	// without a CDN config); EdgeStats carries each edge's serve/shed
	// counters for offload accounting.
	Edges     []netip.Addr
	EdgeStats []EdgeStat
}

// EdgeStat is one CDN edge cache's identity and serve counters in a
// completed run.
type EdgeStat struct {
	Addr        netip.Addr
	ISP         isp.ISP
	Served      uint64
	ServedBytes uint64
	Shed        uint64
}

// ProbeReport finalizes probe i's streaming telemetry into the paper's full
// per-probe analysis report. It can be called repeatedly; each call builds a
// fresh Report from the aggregates.
func (r *Result) ProbeReport(probe int) (*analysis.Report, error) {
	if probe < 0 || probe >= len(r.Probes) {
		return nil, fmt.Errorf("core: probe index %d out of range (have %d)", probe, len(r.Probes))
	}
	p := &r.Probes[probe]
	if p.Aggregate == nil {
		return nil, fmt.Errorf("core: probe %q has no telemetry aggregate", p.Name)
	}
	return p.Aggregate.Report(), nil
}

// ProbeResilience evaluates probe i's resilience sample series against the
// run's fault windows: continuity dip depth/duration, time-to-recover, and
// per-ISP traffic shift per window. target is the continuity level counted as
// healthy (e.g. 0.95). Only available on runs with a fault schedule.
func (r *Result) ProbeResilience(probe int, target float64) (*analysis.ResilienceReport, error) {
	if probe < 0 || probe >= len(r.Probes) {
		return nil, fmt.Errorf("core: probe index %d out of range (have %d)", probe, len(r.Probes))
	}
	p := &r.Probes[probe]
	if len(p.Samples) == 0 {
		return nil, fmt.Errorf("core: probe %q has no resilience samples (scenario had no fault schedule)", p.Name)
	}
	return analysis.ComputeResilience(p.Samples, r.FaultWindows, target), nil
}

// ProbeByName returns the probe result with the given name, or nil.
func (r *Result) ProbeByName(name string) *ProbeResult {
	for i := range r.Probes {
		if r.Probes[i].Name == name {
			return &r.Probes[i]
		}
	}
	return nil
}

// Sim is an assembled, not-yet-run simulation.
type Sim struct {
	scenario Scenario
	world    *simnet.World

	// policy is the instantiated Scenario.Selection, shared by every tracker
	// server, peer config, and flow swarm (policies are stateless).
	policy selection.Policy

	bootstrapAddr netip.Addr
	trackerAddrs  map[netip.Addr]bool
	// trackerList is the same set in spawn order: flow swarms rotate their
	// sampled announces over it (map iteration order would not be
	// deterministic).
	trackerList []netip.Addr

	// channels mirrors the scenario's channel set with runtime identities;
	// weights holds each channel's audience size for popularity-biased
	// switching.
	channels []ChannelResult
	weights  []float64

	probes []ProbeResult

	// Fault-injection targets, retained only so installFaults can schedule
	// SetDown flips on the owning domains: the channel sources (scenario
	// order, all in srcDom) and every tracker server with its domain/group.
	srcDom      *simnet.Domain
	sources     []*peer.Source
	trackerSrvs []trackerRef

	// CDN edge caches with their owning domains (fault targets and result
	// reporting); edgeAddrs is the same set in deployment order for probe
	// aggregates. Both empty without a CDN config.
	edges     []edgeRef
	edgeAddrs []netip.Addr

	// doms holds per-domain mutable state. During a synchronization window
	// each domain's worker touches only its own entry; the barriers order
	// those accesses, so no locks are needed and the totals are deterministic
	// for any worker count.
	doms []domainState

	// flows holds the per-(domain, channel) flow swarms at FidelityFlow
	// (nil otherwise); flowTotals accumulates their telemetry per
	// (channel, category), folded single-threaded at window barriers.
	flows      []*flowDomain
	flowTotals []*FlowTraffic
}

// domainState is the per-shard slice of the simulation's mutable state.
type domainState struct {
	dom *simnet.Domain
	// rng drives viewer capacity/processing/churn/switching draws for spawns
	// in this domain. Seeded per domain, so one shard's churn never perturbs
	// another's stream.
	rng *rand.Rand
	// spawned counts background viewers ever created in this domain.
	spawned int
	// switches counts channel-switch events performed in this domain.
	switches uint64
	// background holds every viewer ever spawned here (including departed).
	background []*peer.Client
}

// BackgroundClients returns every background viewer ever spawned (including
// departed ones), for swarm-health inspection in tests and tools. Clients
// are grouped by shard domain in id order.
func (s *Sim) BackgroundClients() []*peer.Client {
	var out []*peer.Client
	for i := range s.doms {
		out = append(out, s.doms[i].background...)
	}
	return out
}

// trackerRef is one tracker server with the domain whose worker owns it.
type trackerRef struct {
	srv   *tracker.Server
	dom   *simnet.Domain
	group int
}

// edgeRef is one CDN edge cache with the domain whose worker owns it.
type edgeRef struct {
	edge *cdn.Edge
	dom  *simnet.Domain
	addr netip.Addr
	cat  isp.ISP
}

// trackerGroupISPs places the five tracker groups; the paper locates all
// tracker deployments inside China.
var trackerGroupISPs = [tracker.Groups]isp.ISP{
	isp.TELE, isp.CNC, isp.CER, isp.TELE, isp.CNC,
}

// infraUploadBps is the uplink of control servers (bootstrap, trackers).
const infraUploadBps = 8 << 20

// sourceUploadBps returns a channel source's uplink for its audience:
// enough to seed the swarm and absorb flash-crowd ramps (PPLive provisioned
// server clusters per channel), but a small fraction of aggregate demand so
// the mesh must carry the stream.
func sourceUploadBps(ch ChannelSpec) float64 {
	demand := float64(ch.Viewers.Total()) * float64(ch.Spec.BitrateBps)
	capacity := 0.2 * demand
	if capacity < 4<<20 {
		capacity = 4 << 20
	}
	return capacity
}

// Build assembles a simulation from a scenario. The world is always
// partitioned into ISP shard domains; Scenario.Shards only decides how many
// workers execute it later.
func Build(sc Scenario) (*Sim, error) {
	sc.DefaultTiming()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	set := sc.channelSet()
	world := simnet.NewShardedWorldN(sc.Seed, sc.Shards)
	sim := &Sim{
		scenario:     sc,
		world:        world,
		trackerAddrs: make(map[netip.Addr]bool),
	}
	// One policy instance serves the whole world: trackers sample with it,
	// sessions shape referrals with it, flow swarms weight their byte mix
	// with it. Uniform (the zero spec) preserves every legacy trajectory.
	pol, err := sc.Selection.Policy(world.Registry)
	if err != nil {
		return nil, fmt.Errorf("core: scenario %q: %w", sc.Name, err)
	}
	sim.policy = pol
	for _, d := range world.Domains() {
		sim.doms = append(sim.doms, domainState{dom: d, rng: d.Engine().NewRand()})
	}
	// Infrastructure lands in the first domain of its ISP category (legacy
	// partition) or the dedicated infrastructure domain (scaled partition).
	infraDomain := func(cat isp.ISP) *simnet.Domain { return world.InfraDomain(cat) }

	// Bootstrap/channel server.
	bsEnv, err := infraDomain(isp.TELE).Spawn(simnet.HostSpec{ISP: isp.TELE, UploadBps: infraUploadBps, ProcDelay: 2 * time.Millisecond})
	if err != nil {
		return nil, fmt.Errorf("spawn bootstrap: %w", err)
	}
	bs := tracker.NewBootstrap(bsEnv)
	bsEnv.SetHandler(bs)
	sim.bootstrapAddr = bsEnv.Addr()

	// Five tracker groups, two servers each; the groups are shared by every
	// channel (trackers keep per-channel registries).
	var groups [tracker.Groups][]netip.Addr
	for g := 0; g < tracker.Groups; g++ {
		for i := 0; i < 2; i++ {
			env, err := infraDomain(trackerGroupISPs[g]).Spawn(simnet.HostSpec{ISP: trackerGroupISPs[g], UploadBps: infraUploadBps, ProcDelay: 2 * time.Millisecond})
			if err != nil {
				return nil, fmt.Errorf("spawn tracker: %w", err)
			}
			srv := tracker.NewServer(env)
			srv.SetPolicy(sim.policy)
			env.SetHandler(srv)
			groups[g] = append(groups[g], env.Addr())
			sim.trackerAddrs[env.Addr()] = true
			sim.trackerList = append(sim.trackerList, env.Addr())
			sim.trackerSrvs = append(sim.trackerSrvs, trackerRef{srv: srv, dom: env.Domain(), group: g})
		}
	}

	// Channel sources and directory entries, in scenario order (so a
	// single-channel scenario spawns exactly the addresses it always did).
	for _, ch := range set {
		srcEnv, err := infraDomain(isp.TELE).Spawn(simnet.HostSpec{ISP: isp.TELE, UploadBps: sourceUploadBps(ch), ProcDelay: 2 * time.Millisecond})
		if err != nil {
			return nil, fmt.Errorf("spawn source: %w", err)
		}
		src, err := peer.NewSource(srcEnv, ch.Spec)
		if err != nil {
			return nil, err
		}
		srcEnv.SetHandler(src)
		sim.srcDom = srcEnv.Domain()
		sim.sources = append(sim.sources, src)
		err = bs.AddChannel(tracker.ChannelDirectory{
			Info:          ch.Spec.Info(),
			Source:        srcEnv.Addr(),
			TrackerGroups: groups,
		})
		if err != nil {
			return nil, err
		}
		sim.channels = append(sim.channels, ChannelResult{
			Spec:    ch.Spec,
			Source:  srcEnv.Addr(),
			Viewers: ch.Viewers,
		})
		sim.weights = append(sim.weights, float64(ch.Viewers.Total()))
	}

	// Per-ISP CDN edge caches, in placement order. Edges are infrastructure —
	// they land in their ISP's infra domain like trackers — and register
	// every channel with an independent ingest clock (the CDN's private
	// distribution tree), which is what lets them keep serving through a
	// source crash. The bootstrap learns each edge with its ISP so playlink
	// replies can order edges same-ISP-first for the requester.
	if sc.CDN.Enabled() {
		bs.SetEdgeResolver(world.Registry)
		for _, p := range sc.CDN.Placements {
			for i := 0; i < p.Count; i++ {
				env, err := infraDomain(p.ISP).Spawn(simnet.HostSpec{ISP: p.ISP, UploadBps: p.Uplink(), ProcDelay: 2 * time.Millisecond})
				if err != nil {
					return nil, fmt.Errorf("spawn edge: %w", err)
				}
				e := cdn.NewEdge(env)
				for _, ch := range set {
					if err := e.AddChannel(ch.Spec); err != nil {
						return nil, err
					}
				}
				env.SetHandler(e)
				if err := bs.AddEdge(env.Addr(), p.ISP); err != nil {
					return nil, err
				}
				sim.edges = append(sim.edges, edgeRef{edge: e, dom: env.Domain(), addr: env.Addr(), cat: p.ISP})
				sim.edgeAddrs = append(sim.edgeAddrs, env.Addr())
			}
		}
	}

	// Background population: per channel, initial arrivals spread over
	// ArrivalWindow, round-robined across the category's shard domains.
	// Channels and categories iterate in fixed order and arrival instants
	// come from the build RNG — map order or domain-stream draws here would
	// break run determinism. Flow fidelity takes a different path entirely:
	// swarms spawn fully formed at t=0 on their owning domains.
	if sc.Fidelity == peer.FidelityFlow {
		if err := sim.buildFlowPopulation(set); err != nil {
			return nil, err
		}
	} else {
		sim.buildClientPopulation(set)
		sim.buildFlashCrowd(set)
	}

	// Probes join at WarmUp, each in its ISP's first domain; slots are
	// preallocated so concurrent domain workers never append to a shared
	// slice.
	sim.probes = make([]ProbeResult, len(sc.Probes))
	for i, ps := range sc.Probes {
		i, ps := i, ps
		// Probes are viewers, not infrastructure: they live in the first
		// domain of their category even when a scaled partition has a
		// dedicated infra domain (infra latency floors would distort their
		// response-time measurements).
		ds := &sim.doms[world.DomainsOf(ps.ISP)[0].ID()]
		ds.dom.At(sc.WarmUp, func() {
			if err := sim.spawnProbe(ds, i, ps); err != nil {
				panic(fmt.Sprintf("core: spawn probe %s: %v", ps.Name, err))
			}
		})
	}

	if sc.Faults != nil {
		sim.installFaults(sc.Faults)
	}

	return sim, nil
}

// buildClientPopulation schedules the mixed/full-fidelity background viewer
// arrivals (the legacy path every pinned golden digest was recorded under).
func (sim *Sim) buildClientPopulation(set []ChannelSpec) {
	sc := sim.scenario
	world := sim.world
	rng := world.BuildRand()
	for chIdx, ch := range set {
		for _, category := range isp.All() {
			doms := world.DomainsOf(category)
			count := ch.Viewers[category]
			for i := 0; i < count; i++ {
				at := time.Duration(rng.Int63n(int64(sc.ArrivalWindow)))
				ds := &sim.doms[doms[i%len(doms)].ID()]
				category, chIdx := category, chIdx
				ds.dom.At(at, func() { sim.spawnViewer(ds, category, chIdx) })
			}
		}
	}
}

// buildFlashCrowd schedules the arrival spike: at FlashCrowd.At, each shard
// domain of each category spawns its share of the extra audience, with
// per-arrival offsets drawn from the owning domain's RNG stream at fire time
// (like workload.Switching's dwell draws) — never from the build RNG — so
// the spike trajectory is worker-count invariant.
func (sim *Sim) buildFlashCrowd(set []ChannelSpec) {
	fc := sim.scenario.FlashCrowd
	if !fc.Enabled {
		return
	}
	chIdx := fc.Channel
	ch := set[chIdx]
	for _, category := range isp.All() {
		doms := sim.world.DomainsOf(category)
		total := fc.SpikeCount(ch.Viewers[category])
		for j := range doms {
			// The same round-robin split buildClientPopulation uses: domain j
			// takes every len(doms)-th arrival.
			n := total / len(doms)
			if j < total%len(doms) {
				n++
			}
			if n == 0 {
				continue
			}
			ds := &sim.doms[doms[j].ID()]
			n, category := n, category
			ds.dom.At(fc.At, func() {
				for i := 0; i < n; i++ {
					off := fc.ArrivalOffset(ds.rng)
					ds.dom.After(off, func() { sim.spawnViewer(ds, category, chIdx) })
				}
			})
		}
	}
}

// backgroundConfig derives a background viewer's config from the scenario.
func (s *Sim) backgroundConfig(spec stream.Spec) peer.Config {
	cfg := peer.BackgroundConfig(spec, s.bootstrapAddr)
	if s.scenario.Behaviour.FullFidelityBackground || s.scenario.Fidelity == peer.FidelityFull {
		cfg = peer.DefaultConfig(spec, s.bootstrapAddr)
	}
	s.applyBehaviour(&cfg)
	return cfg
}

func (s *Sim) applyBehaviour(cfg *peer.Config) {
	b := s.scenario.Behaviour
	cfg.ReferralEnabled = !b.DisableReferral
	cfg.LatencyBias = !b.DisableLatencyBias
	cfg.PreferFastNeighbors = !b.DisablePreference
	// Referral replies follow the scenario's selection policy. The uniform
	// default is left as nil — the legacy zero-overhead pass-through — so
	// golden trajectories can't be perturbed by the indirection.
	if s.scenario.Selection.Kind != selection.KindUniform {
		cfg.Selection = s.policy
	}
	// Chaos runs harden every peer; fault-free runs keep the zero value so
	// their trajectories stay bit-identical to pre-resilience builds.
	if s.scenario.Faults != nil {
		cfg.Resilience = peer.DefaultResilience()
	}
}

// spawnViewer creates one background viewer in ds's shard domain, arriving
// on channel chIdx, and, with churn enabled, schedules its departure and
// replacement (same domain and arrival channel, preserving shard balance
// and per-channel population). It runs on ds's worker and touches only ds
// state.
func (s *Sim) spawnViewer(ds *domainState, category isp.ISP, chIdx int) {
	rng := ds.rng
	env, err := ds.dom.Spawn(simnet.HostSpec{
		ISP:       category,
		UploadBps: workload.UploadCapacity(rng, category),
		ProcDelay: workload.ProcDelay(rng),
	})
	if err != nil {
		// Address exhaustion would be a scenario sizing bug; surface loudly.
		panic(fmt.Sprintf("core: spawn viewer: %v", err))
	}
	cfg := s.backgroundConfig(s.channels[chIdx].Spec)
	client, err := peer.New(env, cfg)
	if err != nil {
		panic(fmt.Sprintf("core: viewer config: %v", err))
	}
	env.SetHandler(client)
	client.SetOnStopped(env.Close)
	client.Start()
	ds.spawned++
	ds.background = append(ds.background, client)

	if s.scenario.Churn.Enabled {
		session := s.scenario.Churn.SessionLength(rng)
		ds.dom.After(session, func() {
			client.Stop()
			gap := time.Duration(rng.ExpFloat64() * float64(s.scenario.Churn.ReplacementDelay))
			ds.dom.After(gap, func() { s.spawnViewer(ds, category, chIdx) })
		})
	}

	// Channel browsing: decided per arrival, after the churn draws, so a
	// switching-disabled scenario performs exactly the legacy draw sequence.
	if s.scenario.Switching.Enabled && s.scenario.Switching.IsSwitcher(rng) {
		s.scheduleSwitch(ds, client, chIdx)
	}
}

// scheduleSwitch arms the next channel hop for a browsing viewer: dwell on
// the current channel, then move to a popularity-weighted other channel.
// All draws come from ds's domain RNG inside the owning shard, so switching
// stays deterministic for any worker count.
func (s *Sim) scheduleSwitch(ds *domainState, client *peer.Client, cur int) {
	dwell := s.scenario.Switching.Dwell(ds.rng)
	ds.dom.After(dwell, func() {
		if client.Phase() == peer.PhaseStopped {
			return
		}
		next := s.scenario.Switching.Next(ds.rng, s.weights, cur)
		if next != cur {
			client.Switch(s.channels[next].Spec)
			ds.switches++
		}
		s.scheduleSwitch(ds, client, next)
	})
}

// spawnProbe creates one instrumented full-fidelity client in ds's shard
// domain and attaches a packet recorder to both directions of its traffic.
// The probe writes its preallocated result slot and schedules its own stop
// at the horizon.
func (s *Sim) spawnProbe(ds *domainState, slot int, ps ProbeSpec) error {
	rng := ds.rng
	up := ps.UploadBps
	if up == 0 {
		up = workload.UploadCapacity(rng, ps.ISP)
	}
	env, err := ds.dom.Spawn(simnet.HostSpec{
		ISP:       ps.ISP,
		UploadBps: up,
		ProcDelay: workload.ProcDelay(rng),
	})
	if err != nil {
		return err
	}
	ch := s.channels[channelIndex(s.scenario.channelSet(), ps.Channel)]
	cfg := peer.DefaultConfig(ch.Spec, s.bootstrapAddr)
	s.applyBehaviour(&cfg)
	client, err := peer.New(env, cfg)
	if err != nil {
		return err
	}
	env.SetHandler(client)

	// Streaming telemetry is always on: an online matcher folds every
	// datagram straight into the probe's bounded aggregate. The full
	// recorder — the O(datagrams) Wireshark mode — only when opted in.
	agg := analysis.NewAggregate(s.world.Registry, ch.Source, ps.ISP)
	agg.SetEdges(s.edgeAddrs)
	matcher := capture.NewAggregator(s.trackerAddrs, capture.AggregatorConfig{}, agg)
	var rec *capture.Recorder
	if s.scenario.Telemetry == TelemetryFullCapture || ps.FullCapture {
		rec = capture.NewRecorder(env.Addr())
	}
	env.TapRecv(func(from netip.Addr, msg wire.Message, size int) {
		if rec != nil {
			rec.Observe(env.Now(), capture.In, from, msg, size)
		}
		matcher.Observe(env.Now(), capture.In, from, msg, size)
	})
	env.TapSend(func(to netip.Addr, msg wire.Message, size int) {
		if rec != nil {
			rec.Observe(env.Now(), capture.Out, to, msg, size)
		}
		matcher.Observe(env.Now(), capture.Out, to, msg, size)
	})
	client.Start()

	// Stop at the horizon so the probe's final state is well-defined.
	ds.dom.At(s.scenario.WarmUp+s.scenario.Watch, client.Stop)

	s.probes[slot] = ProbeResult{
		Name:      ps.Name,
		ISP:       ps.ISP,
		Addr:      env.Addr(),
		Recorder:  rec,
		Aggregate: agg,
		Client:    client,
		Channel:   ch.Spec.Channel,
		Source:    ch.Source,
		matcher:   matcher,
	}

	// Chaos runs sample the probe's playback and traffic counters on a fixed
	// period; the sampler runs on the probe's own domain worker and appends to
	// its preallocated result slot, so no synchronization is needed.
	if fs := s.scenario.Faults; fs != nil {
		sample := func() {
			st := client.BufferStats()
			s.probes[slot].Samples = append(s.probes[slot].Samples, analysis.ResilienceSample{
				At:         env.Now(),
				PlayedOK:   st.PlayedOK,
				PlayedMiss: st.PlayedMiss,
				BytesByISP: agg.BytesSnapshot(),
			})
		}
		sample()
		env.Every(fs.SampleEvery(), sample)
	}
	return nil
}

// World exposes the underlying simulation world (tests and tools).
func (s *Sim) World() *simnet.World { return s.world }

// Run executes the scenario to completion and returns the result.
func (s *Sim) Run() (*Result, error) {
	sc := s.scenario
	horizon := sc.WarmUp + sc.Watch
	workers := sc.Workers
	if workers == 0 {
		workers = sc.Shards
	}
	if err := s.world.Run(horizon, workers); err != nil {
		return nil, fmt.Errorf("run scenario %q: %w", sc.Name, err)
	}
	// Flush the streaming matchers: requests still pending at the horizon
	// become unanswered, exactly as post-hoc Match tallies leftovers.
	for i := range s.probes {
		if m := s.probes[i].matcher; m != nil {
			m.Close()
		}
	}
	var spawned, switchers int
	var switches uint64
	for i := range s.doms {
		spawned += s.doms[i].spawned
		switches += s.doms[i].switches
		for _, c := range s.doms[i].background {
			if c.Stats().ChannelSwitches > 0 {
				switchers++
			}
		}
	}
	// Fold whatever the last window left in the per-domain flow aggregates.
	s.foldFlowWindows()
	var faultWindows []analysis.FaultWindow
	if sc.Faults != nil {
		for _, w := range sc.Faults.Windows() {
			faultWindows = append(faultWindows, analysis.FaultWindow{Label: w.Label, Start: w.Start, End: w.End})
		}
	}
	var edgeStats []EdgeStat
	for _, er := range s.edges {
		served, bytes, shed := er.edge.Stats()
		edgeStats = append(edgeStats, EdgeStat{Addr: er.addr, ISP: er.cat, Served: served, ServedBytes: bytes, Shed: shed})
	}
	return &Result{
		Scenario:        sc,
		Probes:          s.probes,
		Channels:        s.channels,
		Trackers:        s.trackerAddrs,
		Registry:        s.world.Registry,
		SourceAddr:      s.channels[0].Source,
		FaultWindows:    faultWindows,
		Elapsed:         s.world.Now(),
		EventsProcessed: s.world.EventsProcessed(),
		PeersSpawned:    spawned,
		Switches:        switches,
		Switchers:       switchers,
		FlowTraffic:     s.flowTotals,
		Edges:           s.edgeAddrs,
		EdgeStats:       edgeStats,
	}, nil
}

// RunScenario builds and runs a scenario in one step.
func RunScenario(sc Scenario) (*Result, error) {
	sim, err := Build(sc)
	if err != nil {
		return nil, err
	}
	return sim.Run()
}
