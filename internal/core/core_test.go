package core

import (
	"fmt"
	"testing"
	"time"

	"pplivesim/internal/capture"
	"pplivesim/internal/isp"
	"pplivesim/internal/workload"
)

// smallScenario is a fast-running swarm for integration tests.
func smallScenario(seed int64) Scenario {
	return Scenario{
		Name: "test-small",
		Seed: seed,
		Spec: workload.PopularSpec(),
		Viewers: workload.Population{
			isp.TELE:    40,
			isp.CNC:     18,
			isp.CER:     4,
			isp.OtherCN: 6,
			isp.Foreign: 8,
		},
		Churn: workload.Churn{Enabled: false},
		// Tests inspect the raw trace (Recorder), so run probes in the
		// opt-in full-capture mode alongside the streaming telemetry.
		Probes:        []ProbeSpec{{Name: "tele-probe", ISP: isp.TELE, FullCapture: true}},
		ArrivalWindow: 2 * time.Minute,
		WarmUp:        3 * time.Minute,
		Watch:         6 * time.Minute,
	}
}

func TestScenarioValidation(t *testing.T) {
	sc := smallScenario(1)
	sc.Viewers = workload.Population{}
	if _, err := Build(sc); err == nil {
		t.Error("empty population accepted")
	}
	sc = smallScenario(1)
	sc.Probes = nil
	if _, err := Build(sc); err == nil {
		t.Error("no probes accepted")
	}
}

func TestEndToEndSmallSwarm(t *testing.T) {
	res, err := RunScenario(smallScenario(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) != 1 {
		t.Fatalf("probes = %d, want 1", len(res.Probes))
	}
	p := res.Probes[0]
	if p.Recorder.Len() == 0 {
		t.Fatal("probe captured nothing")
	}

	m := capture.Match(p.Recorder.Records(), res.Trackers)
	if len(m.Transmissions) < 500 {
		t.Errorf("matched %d data transmissions, want a healthy data plane (>=500)", len(m.Transmissions))
	}
	if len(m.TrackerLists) == 0 {
		t.Error("no tracker lists captured")
	}
	if len(m.ListExchanges) == 0 {
		t.Error("no neighbor peer-list exchanges captured")
	}

	// Playback must be healthy: the probe watched ~6 minutes.
	bs := p.Client.BufferStats()
	if got := bs.Continuity(); got < 0.7 {
		t.Errorf("probe continuity = %.3f, want >= 0.7 (stats %+v)", got, bs)
	}
	if bs.PlayedOK == 0 {
		t.Error("probe played nothing")
	}

	// Every address in the trace must resolve through the registry (the
	// Team Cymru step must never miss for simulation-allocated addresses).
	for _, rec := range p.Recorder.Records() {
		if _, ok := res.Registry.ISPOf(rec.Peer); !ok {
			t.Fatalf("trace address %v not resolvable to an ISP", rec.Peer)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	r1, err := RunScenario(smallScenario(42))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunScenario(smallScenario(42))
	if err != nil {
		t.Fatal(err)
	}
	if r1.EventsProcessed != r2.EventsProcessed {
		t.Errorf("event counts differ: %d vs %d", r1.EventsProcessed, r2.EventsProcessed)
	}
	t1, t2 := r1.Probes[0].Recorder.Records(), r2.Probes[0].Recorder.Records()
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i].At != t2[i].At || t1[i].Type != t2[i].Type || t1[i].Peer != t2[i].Peer {
			t.Fatalf("traces diverge at record %d: %+v vs %+v", i, t1[i], t2[i])
		}
	}
	// Byte-level equality over every record field (not just the spot-checked
	// ones above): the full-trace digests must match exactly.
	if d1, d2 := goldenDigest(t, r1), goldenDigest(t, r2); d1 != d2 {
		t.Errorf("same-seed runs produced different trace digests: %#x vs %#x", d1, d2)
	}
}

func TestChurnGrowsUniquePeers(t *testing.T) {
	sc := smallScenario(5)
	sc.Churn = workload.Churn{
		Enabled:          true,
		MeanSession:      90 * time.Second,
		MinSession:       20 * time.Second,
		ReplacementDelay: 10 * time.Second,
	}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeersSpawned <= sc.Viewers.Total() {
		t.Errorf("spawned %d peers with churn, want more than initial %d",
			res.PeersSpawned, sc.Viewers.Total())
	}
	// The probe should still stream acceptably through churn.
	bs := res.Probes[0].Client.BufferStats()
	if got := bs.Continuity(); got < 0.5 {
		t.Errorf("continuity under churn = %.3f, want >= 0.5", got)
	}
}

func TestMultipleProbesConcurrent(t *testing.T) {
	sc := smallScenario(11)
	sc.Probes = []ProbeSpec{
		{Name: "tele", ISP: isp.TELE, FullCapture: true},
		{Name: "cnc", ISP: isp.CNC, FullCapture: true},
		{Name: "mason", ISP: isp.Foreign, FullCapture: true},
	}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) != 3 {
		t.Fatalf("probes = %d, want 3", len(res.Probes))
	}
	for _, p := range res.Probes {
		m := capture.Match(p.Recorder.Records(), res.Trackers)
		if len(m.Transmissions) == 0 {
			t.Errorf("probe %s matched no transmissions", p.Name)
		}
	}
}

// TestLocalityEmerges is the shape-level headline check: with a TELE-heavy
// popular audience, the TELE probe's traffic locality must rise clearly
// above the audience's same-ISP share — the paper's central claim that the
// referral + latency mechanisms amplify, not merely mirror, population mix.
func TestLocalityEmerges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute scenario")
	}
	// Clustering compounds over a session, so give the probe a 20-minute
	// watch (the paper's probes watched two hours).
	sc := Scenario{
		Name:          "locality-emergence",
		Seed:          7,
		Spec:          workload.PopularSpec(),
		Viewers:       workload.PopularPopulation().Scale(0.25),
		Churn:         workload.DefaultChurn(),
		Probes:        []ProbeSpec{{Name: "tele", ISP: isp.TELE, FullCapture: true}},
		ArrivalWindow: 4 * time.Minute,
		WarmUp:        6 * time.Minute,
		Watch:         20 * time.Minute,
	}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Probes[0]
	m := capture.Match(p.Recorder.Records(), res.Trackers)
	var sameISP, total uint64
	for _, tx := range m.Transmissions {
		if tx.Peer == res.SourceAddr {
			continue
		}
		got, ok := res.Registry.ISPOf(tx.Peer)
		if !ok {
			t.Fatalf("unresolvable peer %v", tx.Peer)
		}
		total += uint64(tx.Bytes)
		if got == isp.TELE {
			sameISP += uint64(tx.Bytes)
		}
	}
	if total == 0 {
		t.Fatal("probe downloaded nothing from peers")
	}
	locality := float64(sameISP) / float64(total)
	popShare := float64(sc.Viewers[isp.TELE]) / float64(sc.Viewers.Total())
	t.Logf("traffic locality %.3f vs population share %.3f", locality, popShare)
	if locality < popShare+0.10 {
		t.Errorf("locality %.3f does not amplify above population share %.3f", locality, popShare)
	}
	if cont := p.Client.BufferStats().Continuity(); cont < 0.9 {
		t.Errorf("probe continuity %.3f, want healthy playback", cont)
	}
}

// TestContinuityShortRegression is the fast-lane guard for the playback
// fix: a churning small swarm must keep the probe's playback essentially
// gapless, and the mesh — not the source server — must carry the stream.
// Before the scheduler fixes (late availability knowledge, a 5-second
// urgent window funnelling requests to the source, and the source shedding
// silently) this scenario degraded into a source-fed CDN with poor
// continuity.
func TestContinuityShortRegression(t *testing.T) {
	sc := smallScenario(7)
	sc.Name = "continuity-regression"
	sc.Churn = workload.DefaultChurn()
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Probes[0]
	bs := p.Client.BufferStats()
	if cont := bs.Continuity(); cont < 0.9 {
		t.Errorf("probe continuity = %.3f, want >= 0.9 (stats %+v)", cont, bs)
	}

	// The source must stay a seeder, not become the swarm's CDN: the probe
	// should pull well over half its bytes from regular peers.
	m := capture.Match(p.Recorder.Records(), res.Trackers)
	var sourceBytes, totalBytes uint64
	for _, tx := range m.Transmissions {
		totalBytes += uint64(tx.Bytes)
		if tx.Peer == res.SourceAddr {
			sourceBytes += uint64(tx.Bytes)
		}
	}
	if totalBytes == 0 {
		t.Fatal("probe downloaded nothing")
	}
	if share := float64(sourceBytes) / float64(totalBytes); share > 0.5 {
		t.Errorf("source served %.1f%% of probe bytes, want the mesh to carry the stream (<= 50%%)", 100*share)
	}
}

// TestContinuityAcrossSeeds guards the playback fix at seeds other than the
// headline one: the popular-channel swarm must sustain healthy playback for
// the probe regardless of the arrival/churn draw. The two long-standing
// seeds keep the full 20-minute watch; the wider seed grid and the
// churn-heavy corner run a quarter of the watch so the full (non-short)
// suite stays bounded.
func TestContinuityAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute scenarios")
	}
	sweep := func(name string, seed int64, watch time.Duration, churn workload.Churn, floor float64) {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc := Scenario{
				Name:          "continuity-sweep",
				Seed:          seed,
				Spec:          workload.PopularSpec(),
				Viewers:       workload.PopularPopulation().Scale(0.25),
				Churn:         churn,
				Probes:        []ProbeSpec{{Name: "tele", ISP: isp.TELE}},
				ArrivalWindow: 4 * time.Minute,
				WarmUp:        6 * time.Minute,
				Watch:         watch,
			}
			res, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			bs := res.Probes[0].Client.BufferStats()
			t.Logf("seed %d: continuity %.3f (stats %+v)", seed, bs.Continuity(), bs)
			if cont := bs.Continuity(); cont < floor {
				t.Errorf("probe continuity %.3f at seed %d, want >= %.2f", cont, seed, floor)
			}
		})
	}
	for _, seed := range []int64{3, 21} {
		sweep(fmt.Sprintf("seed%d", seed), seed, 20*time.Minute, workload.DefaultChurn(), 0.9)
	}
	for _, seed := range []int64{5, 9, 13, 17, 29, 37} {
		sweep(fmt.Sprintf("seed%d", seed), seed, 5*time.Minute, workload.DefaultChurn(), 0.9)
	}
	// Churn-heavy corner: mean sessions of eight minutes tear the neighbor
	// mesh continuously; playback may dip but must not collapse.
	heavy := workload.Churn{
		Enabled:          true,
		MeanSession:      8 * time.Minute,
		MinSession:       time.Minute,
		ReplacementDelay: 15 * time.Second,
	}
	sweep("churn-heavy", 21, 5*time.Minute, heavy, 0.85)
}

func TestCodecCheckedSmallRun(t *testing.T) {
	sim, err := Build(smallScenario(13))
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip every datagram through the wire codec: any encoding
	// mismatch panics the run.
	sim.World().CodecCheck = true
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}
