package core

import (
	"testing"
	"time"

	"pplivesim/internal/fault"
	"pplivesim/internal/isp"
	"pplivesim/internal/workload"
)

// chaosScenario is the pinned chaos workload: the small churn scenario with a
// fixed multi-fault schedule — source crash, one tracker group out, TELE-CNC
// transit degradation, and a 20% kill — staggered through the watch window.
func chaosScenario(seed int64) Scenario {
	sc := smallScenario(seed)
	sc.Name = "test-chaos"
	sc.Churn = workload.DefaultChurn()
	sc.Faults = &fault.Schedule{
		SourceCrashes:  []fault.SourceCrash{{Channel: 0, At: 4 * time.Minute, Recover: 5 * time.Minute}},
		TrackerOutages: []fault.TrackerOutage{{Group: 0, At: 5 * time.Minute, Recover: 6 * time.Minute}},
		LinkFaults: []fault.LinkFault{{
			A: isp.TELE, B: isp.CNC,
			At: 6 * time.Minute, Recover: 6*time.Minute + 30*time.Second,
			AddLoss: 0.2, AddDelay: 60 * time.Millisecond,
		}},
		PeerKills: []fault.PeerKill{{Fraction: 0.2, At: 7 * time.Minute}},
	}
	return sc
}

// TestChaosGoldenDigest pins the exact trajectory of a chaos run: every fault
// event lands on its owning shard's engine and every kill draw comes from the
// owning domain's RNG stream, so the digest must hold for every worker count
// just like the benign goldens (the CI chaos lane runs this at 1 and 4
// workers via PPLIVE_SHARD_WORKERS).
func TestChaosGoldenDigest(t *testing.T) {
	sc := chaosScenario(7)
	sc.Shards = goldenWorkers(t)
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Re-baselined (from 0x7a3b9dd1c45d820f) when keepalive eviction started
	// purging dead peers from the referral source: resilient sessions stop
	// gossiping evicted neighbors, which deliberately changes every chaos
	// trajectory. The benign goldens were unaffected (resilience off there).
	// Verified identical at 1 and 4 workers before pinning.
	const want uint64 = 0xd415c124fea4c1de
	if got := goldenDigest(t, res); got != want {
		t.Errorf("chaos digest = %#x, want %#x (fault trajectory changed vs the pinned baseline)", got, want)
	}
	if len(res.FaultWindows) != 4 {
		t.Fatalf("FaultWindows = %d, want 4", len(res.FaultWindows))
	}
	if len(res.Probes[0].Samples) == 0 {
		t.Fatal("chaos run collected no resilience samples")
	}
}

// TestSourceCrashRecovery injects a lone source crash and asserts the
// resilience report shows the expected shape: playback continuity dips while
// the origin is silent (no new pieces enter the swarm) and recovers to ≥0.95
// within a bounded time after the fault onset.
func TestSourceCrashRecovery(t *testing.T) {
	sc := smallScenario(11)
	sc.Name = "test-source-crash"
	crashAt, crashFor := 5*time.Minute, time.Minute
	sc.Faults = &fault.Schedule{
		SourceCrashes: []fault.SourceCrash{{Channel: 0, At: crashAt, Recover: crashAt + crashFor}},
	}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := res.ProbeResilience(0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	w := rep.Windows[0]
	if w.MinContinuity >= 0.9 {
		t.Errorf("min continuity %.3f during source crash; expected a clear dip below 0.9", w.MinContinuity)
	}
	if w.DipDepth <= 0 {
		t.Error("source crash produced no dip below the 0.95 target")
	}
	if !w.Recovered {
		t.Fatalf("continuity never recovered to 0.95 (dip lasted %s of the trace)", w.DipDuration)
	}
	// The dip cannot end before the source returns; recovery must follow
	// within a bounded catch-up period after that.
	if maxTTR := crashFor + 2*time.Minute; w.TimeToRecover > maxTTR {
		t.Errorf("time to recover = %s, want ≤ %s", w.TimeToRecover, maxTTR)
	}
}

// TestChaosValidation exercises the schedule checks through the scenario path.
func TestChaosValidation(t *testing.T) {
	sc := smallScenario(1)
	sc.Faults = &fault.Schedule{
		SourceCrashes: []fault.SourceCrash{{Channel: 3, At: time.Minute, Recover: 2 * time.Minute}},
	}
	if _, err := Build(sc); err == nil {
		t.Error("out-of-range source-crash channel accepted")
	}
	sc = smallScenario(1)
	sc.Faults = &fault.Schedule{
		PeerKills: []fault.PeerKill{{Fraction: 1.5, At: time.Minute}},
	}
	if _, err := Build(sc); err == nil {
		t.Error("kill fraction above 1 accepted")
	}
}
