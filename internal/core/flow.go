package core

import (
	"fmt"
	"net/netip"
	"time"

	"pplivesim/internal/analysis"
	"pplivesim/internal/capture"
	"pplivesim/internal/isp"
	"pplivesim/internal/peer"
	"pplivesim/internal/selection"
	"pplivesim/internal/simnet"
	"pplivesim/internal/stream"
	"pplivesim/internal/underlay"
	"pplivesim/internal/wire"
	"pplivesim/internal/workload"
)

// Flow fidelity (peer.FidelityFlow) replaces the background Client
// population with per-(domain, channel) FlowSwarms: flat struct-of-arrays
// member state driven by a flow-level update loop. Probes stay full-fidelity
// Clients and the swarms answer their protocol traffic exactly, so the
// probe-side methodology — the thing the paper measures — is unchanged; what
// the flow level replaces is the O(peers) per-tick protocol machinery of the
// organic swarm, whose aggregate per-ISP traffic mix is accounted
// synthetically instead.

const (
	// flowTickInterval is the flow-level update cadence: churn accrual and
	// byte accounting per swarm, O(1) in population size.
	flowTickInterval = time.Second
	// flowAnnounceInterval mirrors Config.AnnounceInterval for the sampled
	// tracker registrations.
	flowAnnounceInterval = time.Minute
	// flowBufferMapInterval mirrors Config.BufferMapInterval for the
	// probe-facing link announces.
	flowBufferMapInterval = 5 * time.Second
)

// FlowTraffic is the flow-level traffic account of every swarm of one
// channel and viewer category. Aggregate holds mergeable analysis telemetry
// fed with synthetic per-ISP transmissions (one representative peer per
// source ISP, flow-level byte totals), so per-ISP byte mix and response-time
// groups are meaningful while per-peer activity is per-ISP representative.
type FlowTraffic struct {
	Channel   wire.ChannelID
	ISP       isp.ISP
	Aggregate *analysis.Aggregate
}

// flowDomain is one shard domain's slice of one channel's flow swarm: the
// swarm itself, its members' lightweight envs (row-indexed), and the
// window-local telemetry aggregate its owning worker writes between
// barriers. It implements peer.FlowPort and simnet.LiteHandler.
type flowDomain struct {
	sim      *Sim
	ds       *domainState
	chIdx    int
	category isp.ISP
	spec     stream.Spec
	initial  int

	swarm *peer.FlowSwarm
	envs  []*simnet.LiteEnv

	// Synthetic traffic mix: parallel rows over source ISPs (isp.All()
	// order) — byte share, representative address, and request RTT.
	cats  []isp.ISP
	share []float64
	rep   []netip.Addr
	rtt   []time.Duration
	seq   uint64

	// window is written only by the owning domain's worker during a
	// synchronization window; foldFlowWindows merges it into total
	// single-threaded at the barrier, which is what keeps cross-sub-shard
	// totals lock-free and worker-count invariant.
	window *analysis.Aggregate
	dirty  bool
	total  *FlowTraffic
}

var (
	_ peer.FlowPort      = (*flowDomain)(nil)
	_ simnet.LiteHandler = (*flowDomain)(nil)
)

// buildFlowPopulation creates the flow swarms: per channel and viewer
// category, the population splits round-robin across the category's shard
// domains (same placement rule as Client viewers) and each slice spawns
// fully formed at t=0 — flow fidelity has no arrival ramp, which is
// documented behaviour: the paper's probes always joined an established
// swarm.
func (s *Sim) buildFlowPopulation(set []ChannelSpec) error {
	sc := s.scenario
	world := s.world
	netCfg := underlay.DefaultConfig()
	for chIdx, ch := range set {
		for _, category := range isp.All() {
			count := ch.Viewers[category]
			if count <= 0 {
				continue
			}
			total := &FlowTraffic{
				Channel:   ch.Spec.Channel,
				ISP:       category,
				Aggregate: analysis.NewAggregate(world.Registry, s.channels[chIdx].Source, category),
			}
			s.flowTotals = append(s.flowTotals, total)
			cats, share, rep, rtt := flowMix(world, ch.Viewers, category, netCfg, s.policy)

			doms := world.DomainsOf(category)
			for k, dom := range doms {
				n := count / len(doms)
				if k < count%len(doms) {
					n++
				}
				if n == 0 {
					continue
				}
				ds := &s.doms[dom.ID()]
				fcfg := peer.DefaultFlowConfig(ch.Spec)
				if sc.Selection.Kind != selection.KindUniform {
					fcfg.Selection = s.policy
				}
				if sc.Churn.Enabled {
					fcfg.MeanSession = sc.Churn.MeanSession
					fcfg.ReplacementDelay = sc.Churn.ReplacementDelay
				}
				fd := &flowDomain{
					sim:      s,
					ds:       ds,
					chIdx:    chIdx,
					category: category,
					spec:     ch.Spec,
					initial:  n,
					cats:     cats,
					share:    share,
					rep:      rep,
					rtt:      rtt,
					total:    total,
					window:   analysis.NewAggregate(world.Registry, s.channels[chIdx].Source, category),
				}
				swarm, err := peer.NewFlowSwarm(fcfg, fd, ds.rng, s.trackerList, n)
				if err != nil {
					return fmt.Errorf("core: flow swarm %s/%d: %w", dom.Name(), ch.Spec.Channel, err)
				}
				fd.swarm = swarm
				fd.envs = make([]*simnet.LiteEnv, 0, n)
				s.flows = append(s.flows, fd)
				fd.ds.dom.At(0, fd.populate)
			}
		}
	}
	world.OnBarrier(s.foldFlowWindows)
	return nil
}

// flowMix derives the synthetic traffic mix for swarms of one category: the
// probability a streamed byte came from each source ISP, a representative
// address inside that ISP, and the typical request round-trip used for
// response-time accounting. Raw population weights are shaped by the
// scenario's selection policy — every policy applies the emergent same-ISP
// boost (the flow-level stand-in for the mesh's locality preferences), and
// biased policies layer their engineered preference on top — then
// normalized here.
func flowMix(world *simnet.World, pop workload.Population, category isp.ISP, cfg underlay.Config, pol selection.Policy) (cats []isp.ISP, share []float64, rep []netip.Addr, rtt []time.Duration) {
	for _, src := range isp.All() {
		w := float64(pop[src])
		if w <= 0 {
			continue
		}
		cats = append(cats, src)
		share = append(share, w)
		rep = append(rep, world.Registry.PrefixesFor(src)[0].Addr().Next())
		rtt = append(rtt, flowRTT(cfg, category, src))
	}
	pol.Shape(category, cats, share)
	var sum float64
	for _, w := range share {
		sum += w
	}
	for i := range share {
		share[i] /= sum
	}
	return cats, share, rep, rtt
}

// flowRTT is the typical request round-trip between hosts of two categories
// under the underlay's base one-way delays.
func flowRTT(cfg underlay.Config, a, b isp.ISP) time.Duration {
	switch {
	case a == b:
		return 2 * cfg.IntraOWD[a]
	case a == isp.Foreign || b == isp.Foreign:
		return 2 * cfg.TransoceanicOWD
	default:
		owd := cfg.InterDomesticOWD
		if (a == isp.TELE && b == isp.CNC) || (a == isp.CNC && b == isp.TELE) {
			owd += cfg.TeleCncPenalty
		}
		return 2 * owd
	}
}

// populate spawns the domain's initial members, registers the sampled
// tracker announces, and starts the flow-level cadences. Runs at t=0 on the
// owning domain's worker.
func (fd *flowDomain) populate() {
	for i := 0; i < fd.initial; i++ {
		fd.spawnMember()
	}
	fd.swarm.AnnounceTrackers()
	eng := fd.ds.dom.Engine()
	eng.Every(flowTickInterval, fd.tick)
	eng.Every(flowAnnounceInterval, fd.swarm.AnnounceTrackers)
	eng.Every(flowBufferMapInterval, fd.swarm.AnnounceLinks)
}

// spawnMember joins one member: a lightweight host with capacity and
// processing draws from the owning domain's RNG stream (same distributions
// as Client viewers), then a swarm row.
func (fd *flowDomain) spawnMember() {
	rng := fd.ds.rng
	env, err := fd.ds.dom.SpawnLite(simnet.HostSpec{
		ISP:       fd.category,
		UploadBps: workload.UploadCapacity(rng, fd.category),
		ProcDelay: workload.ProcDelay(rng),
	}, fd)
	if err != nil {
		// Address exhaustion would be a scenario sizing bug; surface loudly.
		panic(fmt.Sprintf("core: spawn flow member: %v", err))
	}
	i := fd.swarm.Add(env.Addr())
	env.SetIndex(i)
	if i == len(fd.envs) {
		fd.envs = append(fd.envs, env)
	} else {
		fd.envs[i] = env
	}
	fd.ds.spawned++
}

// tick advances the swarm one flow interval and books its streamed bytes
// into the window-local aggregate, split across source ISPs by the mix.
func (fd *flowDomain) tick() {
	now := fd.Now()
	fd.swarm.Tick(now)
	bytes := fd.swarm.TakeBytes()
	if bytes == 0 {
		return
	}
	for k := range fd.cats {
		b := uint64(float64(bytes) * fd.share[k])
		if b == 0 {
			continue
		}
		fd.seq++
		fd.window.DataMatched(capture.Transmission{
			Peer:   fd.rep[k],
			Seq:    fd.seq,
			ReqAt:  now - fd.rtt[k],
			RepAt:  now,
			Bytes:  int(b),
			Pieces: int(b) / fd.spec.SubPieceLen,
		})
	}
	fd.dirty = true
}

// Now implements peer.FlowPort.
func (fd *flowDomain) Now() time.Duration { return fd.ds.dom.Engine().Now() }

// Send implements peer.FlowPort.
func (fd *flowDomain) Send(i int, to netip.Addr, msg wire.Message) { fd.envs[i].Send(to, msg) }

// UplinkBacklog implements peer.FlowPort.
func (fd *flowDomain) UplinkBacklog(i int) time.Duration { return fd.envs[i].UplinkBacklog() }

// Retire implements peer.FlowPort.
func (fd *flowDomain) Retire(i int) { fd.envs[i].Close() }

// Respawn implements peer.FlowPort.
func (fd *flowDomain) Respawn(delay time.Duration) { fd.ds.dom.After(delay, fd.spawnMember) }

// HandleLite implements simnet.LiteHandler.
func (fd *flowDomain) HandleLite(i int, from netip.Addr, msg wire.Message) {
	fd.swarm.Handle(i, from, msg)
}

// foldFlowWindows merges every dirty window-local flow aggregate into its
// (channel, category) total. Registered as a barrier hook, so it runs
// single-threaded between synchronization windows: multiple TELE sub-shard
// workers feed the same total without locks, and the fold order (flows in
// build order) is fixed, keeping the totals worker-count invariant. Run
// calls it once more for the final window's leftovers.
func (s *Sim) foldFlowWindows() {
	for _, fd := range s.flows {
		if !fd.dirty {
			continue
		}
		fd.dirty = false
		fd.total.Aggregate.Merge(fd.window)
		fd.window = analysis.NewAggregate(s.world.Registry, s.channels[fd.chIdx].Source, fd.category)
	}
}

// FlowAlive returns the live flow-member count across all swarms (0 below
// peer.FidelityFlow).
func (s *Sim) FlowAlive() int {
	total := 0
	for _, fd := range s.flows {
		total += fd.swarm.Alive()
	}
	return total
}

// FlowLocality returns the intra-ISP fraction of the flow-level background
// bytes streamed by the given channel's swarms of one viewer category
// (channel 0 means the scenario's first channel). ok is false when no such
// swarm exists or it streamed nothing.
func (r *Result) FlowLocality(channel wire.ChannelID, cat isp.ISP) (frac float64, ok bool) {
	if channel == 0 && len(r.Channels) > 0 {
		channel = r.Channels[0].Spec.Channel
	}
	for _, ft := range r.FlowTraffic {
		if ft.Channel != channel || ft.ISP != cat {
			continue
		}
		var total, same uint64
		for src, b := range ft.Aggregate.BytesSnapshot() {
			total += b
			if src == cat {
				same = b
			}
		}
		if total == 0 {
			return 0, false
		}
		return float64(same) / float64(total), true
	}
	return 0, false
}
