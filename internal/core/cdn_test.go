package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"pplivesim/internal/analysis"
	"pplivesim/internal/capture"
	"pplivesim/internal/cdn"
	"pplivesim/internal/fault"
	"pplivesim/internal/isp"
	"pplivesim/internal/peer"
	"pplivesim/internal/workload"
)

// cdnScenario is the pinned hybrid CDN+P2P workload: the small swarm with a
// 3× flash crowd at an event start, three edge caches (two TELE, one CNC),
// a source crash the edges must absorb, and one edge crash on top.
func cdnScenario(seed int64) Scenario {
	sc := smallScenario(seed)
	sc.Name = "test-cdn"
	sc.FlashCrowd = workload.FlashCrowd{
		Enabled:    true,
		Channel:    0,
		At:         4 * time.Minute,
		Multiplier: 3,
		Window:     90 * time.Second,
	}
	sc.CDN = &cdn.Config{Placements: []cdn.Placement{
		{ISP: isp.TELE, Count: 2},
		{ISP: isp.CNC, Count: 1},
	}}
	sc.Faults = &fault.Schedule{
		SourceCrashes: []fault.SourceCrash{{Channel: 0, At: 5 * time.Minute, Recover: 6 * time.Minute}},
		EdgeCrashes:   []fault.EdgeCrash{{Edge: 1, At: 6*time.Minute + 30*time.Second, Recover: 7 * time.Minute}},
	}
	return sc
}

// TestCDNScenarioValidation exercises the CDN and flash-crowd checks through
// the scenario path.
func TestCDNScenarioValidation(t *testing.T) {
	sc := smallScenario(1)
	sc.CDN = &cdn.Config{Placements: []cdn.Placement{
		{ISP: isp.TELE, Count: 1}, {ISP: isp.TELE, Count: 1},
	}}
	if _, err := Build(sc); err == nil {
		t.Error("duplicate-ISP CDN placement accepted")
	}

	sc = smallScenario(1)
	sc.FlashCrowd = workload.DefaultFlashCrowd(4 * time.Minute)
	sc.FlashCrowd.Channel = 1 // single-channel scenario
	if _, err := Build(sc); err == nil {
		t.Error("out-of-range flash-crowd channel accepted")
	}

	sc = smallScenario(1)
	sc.Fidelity = peer.FidelityFlow
	sc.FlashCrowd = workload.DefaultFlashCrowd(4 * time.Minute)
	if _, err := Build(sc); err == nil {
		t.Error("flash crowd under flow fidelity accepted")
	}

	sc = smallScenario(1)
	sc.Faults = &fault.Schedule{
		EdgeCrashes: []fault.EdgeCrash{{Edge: 0, At: time.Minute, Recover: 2 * time.Minute}},
	}
	if _, err := Build(sc); err == nil {
		t.Error("edge crash accepted with no edges deployed")
	}

	sc = cdnScenario(1)
	sc.Faults.EdgeCrashes[0].Edge = 3 // only three edges deployed
	if _, err := Build(sc); err == nil {
		t.Error("out-of-range edge-crash index accepted")
	}
}

// TestCDNGoldenDigest pins the exact trajectory of the hybrid CDN+P2P run —
// the sixth golden, guarding edge discovery, urgent fallback, flash-crowd
// spawning, and edge fault handling. Flash-crowd arrivals draw from the
// owning domain's RNG stream and edge failure tracking uses only fixed
// constants plus hash-derived jitter, so the digest must hold at every
// worker count just like the other five (the CI cdn lane runs this at 1 and
// 4 workers via PPLIVE_SHARD_WORKERS).
func TestCDNGoldenDigest(t *testing.T) {
	sc := cdnScenario(7)
	sc.Shards = goldenWorkers(t)
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Verified identical at 1 and 4 workers before pinning.
	const want uint64 = 0x61632ce640b71d9f
	if got := goldenDigest(t, res); got != want {
		t.Errorf("cdn digest = %#x, want %#x (hybrid CDN+P2P trajectory changed vs the pinned baseline)", got, want)
	}

	if len(res.Edges) != 3 || len(res.EdgeStats) != 3 {
		t.Fatalf("edges = %d, stats = %d, want 3 each", len(res.Edges), len(res.EdgeStats))
	}
	var served uint64
	for _, es := range res.EdgeStats {
		served += es.Served
	}
	if served == 0 {
		t.Error("no edge served a single request through a flash crowd and a source crash")
	}

	// The probe must have pulled urgent bytes from the edges, and those bytes
	// must surface in the dedicated edge tallies — with the streaming and
	// post-hoc telemetry paths in byte-for-byte agreement about it.
	p := res.Probes[0]
	streaming, err := res.ProbeReport(0)
	if err != nil {
		t.Fatal(err)
	}
	if streaming.EdgeBytes == 0 || streaming.EdgeTransmissions == 0 {
		t.Errorf("probe edge tallies = (%d, %d), want edge traffic during the crash window",
			streaming.EdgeTransmissions, streaming.EdgeBytes)
	}
	postHoc := analysis.Analyze(analysis.Input{
		Records:  p.Recorder.Records(),
		Matched:  capture.Match(p.Recorder.Records(), res.Trackers),
		Resolver: res.Registry,
		Trackers: res.Trackers,
		Source:   p.Source,
		Edges:    res.Edges,
		ProbeISP: p.ISP,
	})
	got, _ := json.Marshal(streaming)
	wantJSON, _ := json.Marshal(postHoc)
	if !bytes.Equal(got, wantJSON) {
		t.Errorf("streaming report differs from post-hoc on the CDN run\nstreaming: %s\npost-hoc:  %s", got, wantJSON)
	}
}

// TestFlashCrowdWorkerInvariance runs a two-ISP flash-crowd scenario with
// edges at 1 and 4 workers in-process and requires bit-identical
// trajectories: the spike split is deterministic per (category, domain) and
// each arrival offset draws from the owning domain's RNG stream, never from
// a shared one, so the trajectory cannot depend on which goroutine executes
// a domain's window.
func TestFlashCrowdWorkerInvariance(t *testing.T) {
	build := func(workers int) Scenario {
		return Scenario{
			Name: "two-isp-flash",
			Seed: 11,
			Spec: workload.PopularSpec(),
			Viewers: workload.Population{
				isp.TELE: 30,
				isp.CNC:  20,
			},
			FlashCrowd: workload.FlashCrowd{
				Enabled:    true,
				Channel:    0,
				At:         3*time.Minute + 30*time.Second,
				Multiplier: 3,
				Window:     time.Minute,
			},
			CDN: &cdn.Config{Placements: []cdn.Placement{
				{ISP: isp.TELE, Count: 1},
				{ISP: isp.CNC, Count: 1},
			}},
			Faults: &fault.Schedule{
				SourceCrashes: []fault.SourceCrash{{Channel: 0, At: 4 * time.Minute, Recover: 4*time.Minute + 40*time.Second}},
			},
			Probes:        []ProbeSpec{{Name: "tele-probe", ISP: isp.TELE, FullCapture: true}},
			ArrivalWindow: 2 * time.Minute,
			WarmUp:        3 * time.Minute,
			Watch:         4 * time.Minute,
			Shards:        workers,
		}
	}
	digests := make(map[int]uint64)
	for _, workers := range []int{1, 4} {
		res, err := RunScenario(build(workers))
		if err != nil {
			t.Fatal(err)
		}
		digests[workers] = goldenDigest(t, res)
	}
	if digests[1] != digests[4] {
		t.Errorf("flash-crowd trajectory varies with workers: 1 worker %#x, 4 workers %#x", digests[1], digests[4])
	}
}

// TestCDNTakeoverRecovery is the takeover counterpart of
// TestSourceCrashRecovery: the same source crash, but with edge caches
// deployed. Their out-of-band ingest clocks keep running while the origin is
// silent, so urgent misses fall back to the edges and the probe's playback
// must stay far healthier than the edge-less baseline (which dips below
// 0.9 by TestSourceCrashRecovery's assertion).
func TestCDNTakeoverRecovery(t *testing.T) {
	sc := smallScenario(11)
	sc.Name = "test-cdn-takeover"
	crashAt, crashFor := 5*time.Minute, time.Minute
	sc.CDN = &cdn.Config{Placements: []cdn.Placement{
		{ISP: isp.TELE, Count: 2},
		{ISP: isp.CNC, Count: 1},
	}}
	sc.Faults = &fault.Schedule{
		SourceCrashes: []fault.SourceCrash{{Channel: 0, At: crashAt, Recover: crashAt + crashFor}},
	}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := res.ProbeResilience(0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	w := rep.Windows[0]
	t.Logf("with edges: min continuity %.3f, dip depth %.3f, recovered %v", w.MinContinuity, w.DipDepth, w.Recovered)
	if w.MinContinuity < 0.9 {
		t.Errorf("min continuity %.3f through a source crash with edges deployed, want >= 0.9 (takeover failed)", w.MinContinuity)
	}
	if w.DipDepth > 0 && !w.Recovered {
		t.Errorf("continuity dipped and never recovered despite edge takeover")
	}

	// The takeover must show up in the edge counters: the swarm pulled from
	// the caches while the origin was down.
	var served uint64
	for _, es := range res.EdgeStats {
		served += es.Served
	}
	if served == 0 {
		t.Error("edges served nothing through the source crash")
	}
}
