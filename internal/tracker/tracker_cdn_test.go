package tracker

import (
	"net/netip"
	"testing"

	"pplivesim/internal/isp"
	"pplivesim/internal/wire"
)

func TestAddEdgeValidation(t *testing.T) {
	bs := NewBootstrap(newFakeEnv(7))
	if err := bs.AddEdge(netip.Addr{}, isp.TELE); err == nil {
		t.Error("invalid edge address accepted")
	}
	if err := bs.AddEdge(netip.AddrFrom4([4]byte{10, 1, 0, 1}), isp.ISP(99)); err == nil {
		t.Error("invalid edge ISP accepted")
	}
	addr := netip.AddrFrom4([4]byte{10, 1, 0, 1})
	if err := bs.AddEdge(addr, isp.TELE); err != nil {
		t.Fatal(err)
	}
	if err := bs.AddEdge(addr, isp.CNC); err == nil {
		t.Error("duplicate edge address accepted")
	}
}

func TestEdgesForAffinityOrder(t *testing.T) {
	bs := NewBootstrap(newFakeEnv(7))
	teleA := netip.AddrFrom4([4]byte{10, 1, 0, 1})
	cnc := netip.AddrFrom4([4]byte{10, 2, 0, 1})
	teleB := netip.AddrFrom4([4]byte{10, 1, 0, 2})
	for _, e := range []struct {
		addr netip.Addr
		cat  isp.ISP
	}{{teleA, isp.TELE}, {cnc, isp.CNC}, {teleB, isp.TELE}} {
		if err := bs.AddEdge(e.addr, e.cat); err != nil {
			t.Fatal(err)
		}
	}
	cncRequester := netip.AddrFrom4([4]byte{10, 2, 0, 200})

	// Without a resolver every requester sees registration order.
	got := bs.edgesFor(cncRequester)
	want := []netip.Addr{teleA, cnc, teleB}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("no resolver: edges = %v, want registration order %v", got, want)
	}

	// With a resolver the requester's own ISP comes first; registration
	// order holds within each tier.
	bs.SetEdgeResolver(prefixResolver{})
	got = bs.edgesFor(cncRequester)
	want = []netip.Addr{cnc, teleA, teleB}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("CNC requester: edges = %v, want same-ISP first %v", got, want)
	}

	// A requester the resolver can't place falls back to registration order.
	got = bs.edgesFor(netip.AddrFrom4([4]byte{10, 9, 0, 1}))
	want = []netip.Addr{teleA, cnc, teleB}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("unresolvable requester: edges = %v, want registration order %v", got, want)
	}
}

// TestPlaylinkEdgesAndDrawParity checks the wire plumbing and the
// determinism contract: a playlink reply carries the affinity-ordered edge
// list, and building it consumes exactly the same RNG draws as a reply from
// an edge-free bootstrap — so deploying a CDN cannot perturb the tracker
// sampling stream legacy goldens depend on.
func TestPlaylinkEdgesAndDrawParity(t *testing.T) {
	var groups [Groups][]netip.Addr
	for g := range groups {
		groups[g] = []netip.Addr{
			netip.AddrFrom4([4]byte{61, 128, byte(g), 1}),
			netip.AddrFrom4([4]byte{61, 128, byte(g), 2}),
		}
	}
	dir := ChannelDirectory{
		Info:          wire.ChannelInfo{ID: 5, Rating: 777, Name: "CCTV-5"},
		Source:        netip.AddrFrom4([4]byte{58, 32, 0, 5}),
		TrackerGroups: groups,
	}
	requester := netip.AddrFrom4([4]byte{10, 2, 0, 200})

	build := func(withEdges bool) (*fakeEnv, *Bootstrap) {
		env := newFakeEnv(7)
		bs := NewBootstrap(env)
		if err := bs.AddChannel(dir); err != nil {
			t.Fatal(err)
		}
		if withEdges {
			bs.SetEdgeResolver(prefixResolver{})
			if err := bs.AddEdge(netip.AddrFrom4([4]byte{10, 1, 0, 1}), isp.TELE); err != nil {
				t.Fatal(err)
			}
			if err := bs.AddEdge(netip.AddrFrom4([4]byte{10, 2, 0, 1}), isp.CNC); err != nil {
				t.Fatal(err)
			}
		}
		return env, bs
	}

	envPlain, bsPlain := build(false)
	bsPlain.HandleMessage(requester, &wire.PlaylinkRequest{Channel: 5})
	plain := envPlain.sent[len(envPlain.sent)-1].msg.(*wire.PlaylinkResponse)
	if len(plain.Edges) != 0 {
		t.Errorf("edge-free bootstrap returned edges %v", plain.Edges)
	}

	envCDN, bsCDN := build(true)
	bsCDN.HandleMessage(requester, &wire.PlaylinkRequest{Channel: 5})
	resp := envCDN.sent[len(envCDN.sent)-1].msg.(*wire.PlaylinkResponse)
	if len(resp.Edges) != 2 {
		t.Fatalf("playlink returned %d edges, want 2", len(resp.Edges))
	}
	if resp.Edges[0] != netip.AddrFrom4([4]byte{10, 2, 0, 1}) {
		t.Errorf("first edge %v, want the requester's same-ISP edge", resp.Edges[0])
	}
	if envCDN.src.draws != envPlain.src.draws {
		t.Errorf("edge reply consumed %d draws vs %d without edges; edge ordering must be RNG-free",
			envCDN.src.draws, envPlain.src.draws)
	}
	// The sampled trackers themselves must be identical draw for draw.
	for g := range plain.Trackers {
		if plain.Trackers[g] != resp.Trackers[g] {
			t.Errorf("group %d tracker differs with edges: %v vs %v", g, resp.Trackers[g], plain.Trackers[g])
		}
	}
}
