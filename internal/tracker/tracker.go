// Package tracker implements the PPLive-style control servers: the
// bootstrap/channel server and the tracker servers.
//
// Per the paper (§2), the bootstrap server returns the active channel list
// and, for a chosen channel, the playlink plus one tracker address from each
// of five tracker groups deployed at different locations. Tracker servers
// store the active peers of each channel and answer queries with a random
// sample — they are "databases of active peers rather than for locality"
// (§3.2): no topology awareness whatsoever.
package tracker

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"pplivesim/internal/isp"
	"pplivesim/internal/node"
	"pplivesim/internal/selection"
	"pplivesim/internal/wire"
)

// Groups is the number of tracker-server groups PPLive deploys (the paper
// observes five, at different locations in China).
const Groups = 5

// DefaultMaxReply bounds the peers returned per tracker response; the paper
// observes peer lists of at most 60 addresses.
const DefaultMaxReply = wire.MaxPeerList

// DefaultEntryTTL is how long an announced peer stays listed without a
// re-announce.
const DefaultEntryTTL = 2 * time.Minute

// channelPeers is one channel's registry: last-announce times keyed by peer,
// plus the same peers as an address-ordered slice. Queries and expiry walk
// the slice — never the map, whose range order is randomized per run and
// would leak nondeterminism into every served list.
type channelPeers struct {
	seen  map[netip.Addr]time.Duration // peer → last announce
	order []netip.Addr                 // peers in address order
}

func (cp *channelPeers) add(addr netip.Addr, now time.Duration) {
	if _, ok := cp.seen[addr]; !ok {
		i, _ := sort.Find(len(cp.order), func(i int) int { return addr.Compare(cp.order[i]) })
		cp.order = append(cp.order, netip.Addr{})
		copy(cp.order[i+1:], cp.order[i:])
		cp.order[i] = addr
	}
	cp.seen[addr] = now
}

func (cp *channelPeers) remove(addr netip.Addr) {
	if _, ok := cp.seen[addr]; !ok {
		return
	}
	delete(cp.seen, addr)
	i, found := sort.Find(len(cp.order), func(i int) int { return addr.Compare(cp.order[i]) })
	if found {
		cp.order = append(cp.order[:i], cp.order[i+1:]...)
	}
}

// expire drops every entry older than ttl, compacting the order in place.
func (cp *channelPeers) expire(now, ttl time.Duration) {
	keep := cp.order[:0]
	for _, addr := range cp.order {
		if now-cp.seen[addr] > ttl {
			delete(cp.seen, addr)
			continue
		}
		keep = append(keep, addr)
	}
	cp.order = keep
}

// Server is one tracker server: a per-channel registry of active peers.
type Server struct {
	env      node.Env
	maxReply int
	entryTTL time.Duration
	policy   selection.Policy

	channels map[wire.ChannelID]*channelPeers

	// down marks the server as crashed: inbound datagrams are dropped before
	// any registry mutation or RNG draw, so an outage window perturbs nothing
	// but the clients waiting on responses.
	down bool

	// Stats.
	announces, queries, served uint64
}

// NewServer creates a tracker server bound to env and installs itself as the
// env's handler if env supports it (the caller typically does
// env.SetHandler(server) explicitly; Server only needs node.Env).
func NewServer(env node.Env) *Server {
	return &Server{
		env:      env,
		maxReply: DefaultMaxReply,
		entryTTL: DefaultEntryTTL,
		policy:   selection.Uniform{},
		channels: make(map[wire.ChannelID]*channelPeers),
	}
}

var _ node.Handler = (*Server)(nil)

// SetMaxReply overrides the per-response peer bound.
func (s *Server) SetMaxReply(n int) {
	if n > 0 {
		s.maxReply = n
	}
}

// SetPolicy installs the reply-composition policy (selection.Uniform by
// default — the paper's locality-unaware random sample). The policy must be
// safe for shared use: one instance serves every tracker in the world.
func (s *Server) SetPolicy(p selection.Policy) {
	if p != nil {
		s.policy = p
	}
}

// ActivePeers returns the live (non-expired) peers of a channel in address
// order.
func (s *Server) ActivePeers(ch wire.ChannelID) []netip.Addr {
	cp := s.channels[ch]
	if cp == nil {
		return nil
	}
	now := s.env.Now()
	out := make([]netip.Addr, 0, len(cp.order))
	for _, addr := range cp.order {
		if now-cp.seen[addr] <= s.entryTTL {
			out = append(out, addr)
		}
	}
	return out
}

// Stats reports cumulative counters: announces received, queries received,
// and peer addresses served.
func (s *Server) Stats() (announces, queries, served uint64) {
	return s.announces, s.queries, s.served
}

// SetDown toggles the crashed state; while down the server drops all inbound
// traffic.
func (s *Server) SetDown(down bool) { s.down = down }

// HandleMessage implements node.Handler.
func (s *Server) HandleMessage(from netip.Addr, msg wire.Message) {
	if s.down {
		return
	}
	switch m := msg.(type) {
	case *wire.TrackerAnnounce:
		s.handleAnnounce(from, m)
	case *wire.TrackerQuery:
		s.handleQuery(from, m)
	default:
		// Trackers ignore everything else, like a real server dropping
		// unexpected datagrams.
	}
}

func (s *Server) handleAnnounce(from netip.Addr, m *wire.TrackerAnnounce) {
	s.announces++
	cp, ok := s.channels[m.Channel]
	if !ok {
		if m.Leaving {
			return
		}
		cp = &channelPeers{seen: make(map[netip.Addr]time.Duration)}
		s.channels[m.Channel] = cp
	}
	if m.Leaving {
		cp.remove(from)
		return
	}
	cp.add(from, s.env.Now())
}

func (s *Server) handleQuery(from netip.Addr, m *wire.TrackerQuery) {
	s.queries++
	cp := s.channels[m.Channel]
	now := s.env.Now()

	// Expire stale entries, then copy the live ones (minus the requester)
	// from the maintained address order — already sorted, no per-query sort.
	var candidates []netip.Addr
	if cp != nil {
		cp.expire(now, s.entryTTL)
		candidates = make([]netip.Addr, 0, len(cp.order))
		for _, addr := range cp.order {
			if addr != from {
				candidates = append(candidates, addr)
			}
		}
	}

	// Reply composition is delegated to the selection policy; the default
	// Uniform policy reproduces the paper's locality-unaware partial
	// Fisher-Yates draw for draw. Even with no candidates an (empty)
	// response is sent — the client is waiting on it — and served counts
	// only addresses actually returned.
	k := s.policy.Sample(candidates, from, s.maxReply, s.env.Rand())
	peers := make([]netip.Addr, k)
	copy(peers, candidates[:k])
	s.served += uint64(k)

	s.env.Send(from, &wire.TrackerResponse{Channel: m.Channel, Peers: peers})
}

// ChannelDirectory describes one channel as known to the bootstrap server.
type ChannelDirectory struct {
	Info   wire.ChannelInfo
	Source netip.Addr
	// TrackerGroups holds the tracker addresses per group; a playlink
	// response samples one address from each group.
	TrackerGroups [Groups][]netip.Addr
}

// EdgeResolver maps a peer address to its ISP category; the bootstrap uses
// it to order CDN edges by affinity for the requester (asnmap.Registry
// implements it).
type EdgeResolver interface {
	ISPOf(addr netip.Addr) (isp.ISP, bool)
}

// edgeEntry is one registered CDN edge cache.
type edgeEntry struct {
	addr netip.Addr
	cat  isp.ISP
}

// Bootstrap is the bootstrap/channel server: first contact for every client.
type Bootstrap struct {
	env      node.Env
	channels map[wire.ChannelID]*ChannelDirectory
	order    []wire.ChannelID

	// edges lists the deployment's CDN edge caches in registration order;
	// resolver maps requesters to ISPs so playlink replies can list same-ISP
	// edges first (the sim's stand-in for CDN DNS request routing).
	edges    []edgeEntry
	resolver EdgeResolver

	// Stats.
	listRequests, playlinkRequests uint64
}

// NewBootstrap creates an empty bootstrap server bound to env.
func NewBootstrap(env node.Env) *Bootstrap {
	return &Bootstrap{
		env:      env,
		channels: make(map[wire.ChannelID]*ChannelDirectory),
	}
}

var _ node.Handler = (*Bootstrap)(nil)

// SetEdgeResolver installs the requester→ISP resolver used for edge
// affinity ordering. Without one, edges are listed in registration order for
// every requester.
func (b *Bootstrap) SetEdgeResolver(r EdgeResolver) { b.resolver = r }

// AddEdge registers a CDN edge cache located in cat. Edges are global — one
// cache serves every channel — so registration is not per-channel.
func (b *Bootstrap) AddEdge(addr netip.Addr, cat isp.ISP) error {
	if !addr.IsValid() {
		return fmt.Errorf("tracker: edge address invalid")
	}
	if !cat.Valid() {
		return fmt.Errorf("tracker: edge %s has invalid ISP %d", addr, int(cat))
	}
	for _, e := range b.edges {
		if e.addr == addr {
			return fmt.Errorf("tracker: edge %s already registered", addr)
		}
	}
	b.edges = append(b.edges, edgeEntry{addr: addr, cat: cat})
	return nil
}

// edgesFor returns the deployment's edges ordered for one requester:
// same-ISP edges first, then the rest, registration order within each tier.
// The ordering is a pure function of (edges, requester ISP) — no RNG draws —
// so playlink replies stay deterministic and the bootstrap's random stream
// is identical with and without a CDN deployment.
func (b *Bootstrap) edgesFor(from netip.Addr) []netip.Addr {
	if len(b.edges) == 0 {
		return nil
	}
	var cat isp.ISP
	if b.resolver != nil {
		cat, _ = b.resolver.ISPOf(from)
	}
	out := make([]netip.Addr, 0, len(b.edges))
	for _, e := range b.edges {
		if e.cat == cat {
			out = append(out, e.addr)
		}
	}
	for _, e := range b.edges {
		if e.cat != cat {
			out = append(out, e.addr)
		}
	}
	return out
}

// AddChannel registers a channel directory entry.
func (b *Bootstrap) AddChannel(dir ChannelDirectory) error {
	if _, ok := b.channels[dir.Info.ID]; ok {
		return fmt.Errorf("tracker: channel %d already registered", dir.Info.ID)
	}
	for g, addrs := range dir.TrackerGroups {
		if len(addrs) == 0 {
			return fmt.Errorf("tracker: channel %d: tracker group %d empty", dir.Info.ID, g)
		}
	}
	cp := dir
	b.channels[dir.Info.ID] = &cp
	b.order = append(b.order, dir.Info.ID)
	return nil
}

// Stats reports request counters.
func (b *Bootstrap) Stats() (listRequests, playlinkRequests uint64) {
	return b.listRequests, b.playlinkRequests
}

// HandleMessage implements node.Handler.
func (b *Bootstrap) HandleMessage(from netip.Addr, msg wire.Message) {
	switch m := msg.(type) {
	case *wire.ChannelListRequest:
		b.listRequests++
		infos := make([]wire.ChannelInfo, 0, len(b.order))
		for _, id := range b.order {
			infos = append(infos, b.channels[id].Info)
		}
		b.env.Send(from, &wire.ChannelListResponse{Channels: infos})
	case *wire.PlaylinkRequest:
		b.playlinkRequests++
		dir, ok := b.channels[m.Channel]
		if !ok {
			return // unknown channel: silently dropped, client will retry
		}
		rng := b.env.Rand()
		trackers := make([]netip.Addr, 0, Groups)
		for _, group := range dir.TrackerGroups {
			trackers = append(trackers, group[rng.Intn(len(group))])
		}
		b.env.Send(from, &wire.PlaylinkResponse{
			Channel:  m.Channel,
			Source:   dir.Source,
			Trackers: trackers,
			Edges:    b.edgesFor(from),
		})
	default:
	}
}
