package tracker

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/isp"
	"pplivesim/internal/node"
	"pplivesim/internal/selection"
	"pplivesim/internal/wire"
)

// countingSource wraps a rand.Source64 and counts every draw, so tests can
// pin exactly how much randomness a code path consumed.
type countingSource struct {
	src   rand.Source64
	draws int
}

func (c *countingSource) Int63() int64 { c.draws++; return c.src.Int63() }

func (c *countingSource) Uint64() uint64 { c.draws++; return c.src.Uint64() }

func (c *countingSource) Seed(s int64) { c.src.Seed(s) }

// fakeEnv is a minimal node.Env for direct handler tests: a settable clock,
// a captured outbox, and a draw-counting RNG.
type fakeEnv struct {
	addr netip.Addr
	now  time.Duration
	rng  *rand.Rand
	src  *countingSource
	sent []struct {
		to  netip.Addr
		msg wire.Message
	}
}

func newFakeEnv(seed int64) *fakeEnv {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &fakeEnv{
		addr: netip.AddrFrom4([4]byte{61, 0, 0, 1}),
		rng:  rand.New(src),
		src:  src,
	}
}

func (e *fakeEnv) Addr() netip.Addr { return e.addr }

func (e *fakeEnv) Now() time.Duration { return e.now }

func (e *fakeEnv) After(d time.Duration, fn func()) node.Cancel { return func() bool { return false } }

func (e *fakeEnv) Every(d time.Duration, fn func()) node.Cancel { return func() bool { return false } }

func (e *fakeEnv) Rand() *rand.Rand { return e.rng }

func (e *fakeEnv) Send(to netip.Addr, msg wire.Message) {
	e.sent = append(e.sent, struct {
		to  netip.Addr
		msg wire.Message
	}{to, msg})
}

func (e *fakeEnv) UplinkBacklog() time.Duration { return 0 }

// TestQueryEdges is the table-driven edge sweep of handleQuery: a query for
// an unknown channel, from the sole registered member, or against a
// fully-expired registry must (1) still send a TrackerResponse — an empty
// one, never a silent drop, because the client is blocked waiting on it —
// (2) leave the served counter untouched, and (3) consume zero RNG draws.
func TestQueryEdges(t *testing.T) {
	requester := netip.AddrFrom4([4]byte{58, 40, 0, 1})
	cases := []struct {
		name  string
		setup func(env *fakeEnv, srv *Server)
	}{
		{
			name:  "unknown channel",
			setup: func(env *fakeEnv, srv *Server) {},
		},
		{
			name: "sole registered member",
			setup: func(env *fakeEnv, srv *Server) {
				srv.HandleMessage(requester, &wire.TrackerAnnounce{Channel: 1})
			},
		},
		{
			name: "all entries expired",
			setup: func(env *fakeEnv, srv *Server) {
				srv.HandleMessage(netip.AddrFrom4([4]byte{58, 40, 0, 2}), &wire.TrackerAnnounce{Channel: 1})
				env.now += DefaultEntryTTL + time.Second
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := newFakeEnv(7)
			srv := NewServer(env)
			tc.setup(env, srv)

			sentBefore := len(env.sent)
			drawsBefore := env.src.draws
			_, _, servedBefore := srv.Stats()

			srv.HandleMessage(requester, &wire.TrackerQuery{Channel: 1})

			if got := len(env.sent) - sentBefore; got != 1 {
				t.Fatalf("sent %d messages, want exactly 1 (empty response, not a drop)", got)
			}
			resp, ok := env.sent[len(env.sent)-1].msg.(*wire.TrackerResponse)
			if !ok {
				t.Fatalf("sent %T, want TrackerResponse", env.sent[len(env.sent)-1].msg)
			}
			if env.sent[len(env.sent)-1].to != requester {
				t.Errorf("response sent to %v, want requester %v", env.sent[len(env.sent)-1].to, requester)
			}
			if resp.Channel != 1 || len(resp.Peers) != 0 {
				t.Errorf("response = %+v, want empty peer list on channel 1", resp)
			}
			if _, _, served := srv.Stats(); served != servedBefore {
				t.Errorf("served inflated: %d -> %d on an empty reply", servedBefore, served)
			}
			if draws := env.src.draws - drawsBefore; draws != 0 {
				t.Errorf("k == 0 query consumed %d RNG draws, want 0", draws)
			}
		})
	}
}

// TestQueryDrawCountMatchesReply pins the uniform policy's RNG consumption
// through the server: exactly one draw per returned address (the partial
// Fisher-Yates, including its final Intn(1)).
func TestQueryDrawCountMatchesReply(t *testing.T) {
	env := newFakeEnv(7)
	srv := NewServer(env)
	for i := 0; i < 10; i++ {
		srv.HandleMessage(netip.AddrFrom4([4]byte{58, 40, 0, byte(i + 2)}), &wire.TrackerAnnounce{Channel: 1})
	}
	requester := netip.AddrFrom4([4]byte{58, 40, 0, 1})
	before := env.src.draws
	srv.HandleMessage(requester, &wire.TrackerQuery{Channel: 1})
	resp := env.sent[len(env.sent)-1].msg.(*wire.TrackerResponse)
	if len(resp.Peers) != 10 {
		t.Fatalf("reply has %d peers, want 10", len(resp.Peers))
	}
	if draws := env.src.draws - before; draws != 10 {
		t.Errorf("10-peer reply consumed %d draws, want 10 (one per returned address)", draws)
	}
}

// prefixResolver maps 10.<i>.0.0/16-style test addresses to ISPs by their
// second octet: 1 → TELE, 2 → CNC.
type prefixResolver struct{}

func (prefixResolver) ISPOf(a netip.Addr) (isp.ISP, bool) {
	switch a.As4()[1] {
	case 1:
		return isp.TELE, true
	case 2:
		return isp.CNC, true
	}
	return 0, false
}

// TestQuotaBiasedReply drives the quota policy through the full server path:
// the reply respects the inter-ISP quota exactly when both pools are ample,
// and fills deterministically from the same-ISP pool on inter shortfall.
func TestQuotaBiasedReply(t *testing.T) {
	requester := netip.AddrFrom4([4]byte{10, 1, 0, 200})

	build := func(nSame, nInter int) (*fakeEnv, *Server) {
		env := newFakeEnv(7)
		srv := NewServer(env)
		pol, err := selection.NewQuota(prefixResolver{}, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetPolicy(pol)
		srv.SetMaxReply(20)
		for i := 0; i < nSame; i++ {
			srv.HandleMessage(netip.AddrFrom4([4]byte{10, 1, 0, byte(i + 1)}), &wire.TrackerAnnounce{Channel: 1})
		}
		for i := 0; i < nInter; i++ {
			srv.HandleMessage(netip.AddrFrom4([4]byte{10, 2, 0, byte(i + 1)}), &wire.TrackerAnnounce{Channel: 1})
		}
		return env, srv
	}
	count := func(resp *wire.TrackerResponse) (same, inter int) {
		for _, p := range resp.Peers {
			if cat, _ := (prefixResolver{}).ISPOf(p); cat == isp.TELE {
				same++
			} else {
				inter++
			}
		}
		return
	}

	// Ample pools: exactly floor(0.25*20) = 5 inter entries, 15 same.
	env, srv := build(40, 40)
	srv.HandleMessage(requester, &wire.TrackerQuery{Channel: 1})
	resp := env.sent[len(env.sent)-1].msg.(*wire.TrackerResponse)
	same, inter := count(resp)
	if len(resp.Peers) != 20 || same != 15 || inter != 5 {
		t.Errorf("ample pools: reply %d peers (%d same, %d inter), want 20 (15, 5)", len(resp.Peers), same, inter)
	}

	// Inter shortfall (only 2 inter candidates): the same-ISP pool fills the
	// rest of the reply up to k.
	env, srv = build(40, 2)
	srv.HandleMessage(requester, &wire.TrackerQuery{Channel: 1})
	resp = env.sent[len(env.sent)-1].msg.(*wire.TrackerResponse)
	same, inter = count(resp)
	if len(resp.Peers) != 20 || inter != 2 || same != 18 {
		t.Errorf("inter shortfall: reply %d peers (%d same, %d inter), want 20 (18, 2)", len(resp.Peers), same, inter)
	}

	// Same shortfall (only 3 same candidates): the reply shrinks so its
	// inter fraction stays within the quota — floor(0.25*3/0.75) = 1 inter.
	env, srv = build(3, 40)
	srv.HandleMessage(requester, &wire.TrackerQuery{Channel: 1})
	resp = env.sent[len(env.sent)-1].msg.(*wire.TrackerResponse)
	same, inter = count(resp)
	if same != 3 || inter != 1 {
		t.Errorf("same shortfall: reply %d peers (%d same, %d inter), want 4 (3, 1)", len(resp.Peers), same, inter)
	}
	if frac := float64(inter) / float64(len(resp.Peers)); frac > 0.25+1e-9 {
		t.Errorf("inter fraction %g exceeds quota", frac)
	}
}
