package tracker

import (
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/isp"
	"pplivesim/internal/simnet"
	"pplivesim/internal/wire"
)

// testRig spawns a tracker server plus a capture-all client env.
type testRig struct {
	world  *simnet.World
	server *Server
	srvEnv *simnet.Env
	client *simnet.Env
	inbox  []wire.Message
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	w := simnet.NewWorld(1)
	w.CodecCheck = true
	srvEnv, err := w.Spawn(simnet.HostSpec{ISP: isp.TELE, UploadBps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(srvEnv)
	srvEnv.SetHandler(server)

	client, err := w.Spawn(simnet.HostSpec{ISP: isp.TELE, UploadBps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rig := &testRig{world: w, server: server, srvEnv: srvEnv, client: client}
	client.SetHandler(handlerFunc(func(from netip.Addr, msg wire.Message) {
		rig.inbox = append(rig.inbox, msg)
	}))
	return rig
}

type handlerFunc func(from netip.Addr, msg wire.Message)

func (f handlerFunc) HandleMessage(from netip.Addr, msg wire.Message) { f(from, msg) }

func (r *testRig) run(t *testing.T, d time.Duration) {
	t.Helper()
	if err := r.world.Engine.Run(r.world.Engine.Now() + d); err != nil {
		t.Fatal(err)
	}
}

func TestAnnounceAndQuery(t *testing.T) {
	rig := newRig(t)
	// Announce three peers for channel 1 directly (bypassing transport for
	// the announcing side keeps the test focused).
	for i := 0; i < 3; i++ {
		addr := netip.AddrFrom4([4]byte{58, 40, 0, byte(i + 1)})
		rig.server.HandleMessage(addr, &wire.TrackerAnnounce{Channel: 1})
	}
	rig.client.Send(rig.srvEnv.Addr(), &wire.TrackerQuery{Channel: 1})
	rig.run(t, 5*time.Second)

	if len(rig.inbox) != 1 {
		t.Fatalf("client got %d messages, want 1", len(rig.inbox))
	}
	resp, ok := rig.inbox[0].(*wire.TrackerResponse)
	if !ok {
		t.Fatalf("got %T, want TrackerResponse", rig.inbox[0])
	}
	if resp.Channel != 1 || len(resp.Peers) != 3 {
		t.Errorf("response = %+v, want channel 1 with 3 peers", resp)
	}
}

func TestQueryExcludesRequester(t *testing.T) {
	rig := newRig(t)
	rig.server.HandleMessage(rig.client.Addr(), &wire.TrackerAnnounce{Channel: 1})
	other := netip.AddrFrom4([4]byte{58, 40, 0, 9})
	rig.server.HandleMessage(other, &wire.TrackerAnnounce{Channel: 1})

	rig.client.Send(rig.srvEnv.Addr(), &wire.TrackerQuery{Channel: 1})
	rig.run(t, 5*time.Second)

	resp, ok := rig.inbox[0].(*wire.TrackerResponse)
	if !ok {
		t.Fatalf("got %T", rig.inbox[0])
	}
	for _, p := range resp.Peers {
		if p == rig.client.Addr() {
			t.Error("response contains the requester itself")
		}
	}
	if len(resp.Peers) != 1 || resp.Peers[0] != other {
		t.Errorf("peers = %v, want [%v]", resp.Peers, other)
	}
}

func TestLeaveRemoves(t *testing.T) {
	rig := newRig(t)
	a := netip.AddrFrom4([4]byte{58, 40, 0, 1})
	rig.server.HandleMessage(a, &wire.TrackerAnnounce{Channel: 1})
	rig.server.HandleMessage(a, &wire.TrackerAnnounce{Channel: 1, Leaving: true})
	if got := rig.server.ActivePeers(1); len(got) != 0 {
		t.Errorf("ActivePeers = %v after leave, want empty", got)
	}
	// Leaving an unknown channel must not panic or create state.
	rig.server.HandleMessage(a, &wire.TrackerAnnounce{Channel: 99, Leaving: true})
	if got := rig.server.ActivePeers(99); len(got) != 0 {
		t.Errorf("phantom channel created: %v", got)
	}
}

func TestEntryExpiry(t *testing.T) {
	rig := newRig(t)
	a := netip.AddrFrom4([4]byte{58, 40, 0, 1})
	rig.server.HandleMessage(a, &wire.TrackerAnnounce{Channel: 1})
	if got := rig.server.ActivePeers(1); len(got) != 1 {
		t.Fatalf("ActivePeers = %v, want 1 entry", got)
	}
	rig.run(t, DefaultEntryTTL+time.Second)
	if got := rig.server.ActivePeers(1); len(got) != 0 {
		t.Errorf("ActivePeers = %v after TTL, want empty", got)
	}
	// A query after expiry returns no peers.
	rig.client.Send(rig.srvEnv.Addr(), &wire.TrackerQuery{Channel: 1})
	rig.run(t, 5*time.Second)
	resp, ok := rig.inbox[0].(*wire.TrackerResponse)
	if !ok {
		t.Fatalf("got %T", rig.inbox[0])
	}
	if len(resp.Peers) != 0 {
		t.Errorf("expired peers served: %v", resp.Peers)
	}
}

func TestMaxReplyBound(t *testing.T) {
	rig := newRig(t)
	for i := 0; i < 200; i++ {
		addr := netip.AddrFrom4([4]byte{58, 40, byte(i / 250), byte(i%250 + 1)})
		rig.server.HandleMessage(addr, &wire.TrackerAnnounce{Channel: 1})
	}
	rig.client.Send(rig.srvEnv.Addr(), &wire.TrackerQuery{Channel: 1})
	rig.run(t, 5*time.Second)
	resp, ok := rig.inbox[0].(*wire.TrackerResponse)
	if !ok {
		t.Fatalf("got %T", rig.inbox[0])
	}
	if len(resp.Peers) != DefaultMaxReply {
		t.Errorf("served %d peers, want cap %d", len(resp.Peers), DefaultMaxReply)
	}
	seen := map[netip.Addr]bool{}
	for _, p := range resp.Peers {
		if seen[p] {
			t.Fatalf("duplicate peer %v in response", p)
		}
		seen[p] = true
	}
}

func TestBootstrapChannelListAndPlaylink(t *testing.T) {
	w := simnet.NewWorld(2)
	w.CodecCheck = true
	bsEnv, err := w.Spawn(simnet.HostSpec{ISP: isp.TELE, UploadBps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBootstrap(bsEnv)
	bsEnv.SetHandler(bs)

	var groups [Groups][]netip.Addr
	for g := range groups {
		groups[g] = []netip.Addr{
			netip.AddrFrom4([4]byte{61, 128, byte(g), 1}),
			netip.AddrFrom4([4]byte{61, 128, byte(g), 2}),
		}
	}
	dir := ChannelDirectory{
		Info:          wire.ChannelInfo{ID: 5, Rating: 777, Name: "CCTV-5"},
		Source:        netip.AddrFrom4([4]byte{58, 32, 0, 5}),
		TrackerGroups: groups,
	}
	if err := bs.AddChannel(dir); err != nil {
		t.Fatal(err)
	}
	if err := bs.AddChannel(dir); err == nil {
		t.Error("duplicate AddChannel did not error")
	}

	client, err := w.Spawn(simnet.HostSpec{ISP: isp.CNC, UploadBps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var inbox []wire.Message
	client.SetHandler(handlerFunc(func(_ netip.Addr, msg wire.Message) { inbox = append(inbox, msg) }))

	client.Send(bsEnv.Addr(), &wire.ChannelListRequest{})
	client.Send(bsEnv.Addr(), &wire.PlaylinkRequest{Channel: 5})
	client.Send(bsEnv.Addr(), &wire.PlaylinkRequest{Channel: 42}) // unknown
	if err := w.Engine.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	if len(inbox) != 2 {
		t.Fatalf("client got %d replies, want 2 (unknown channel ignored)", len(inbox))
	}
	list, ok := inbox[0].(*wire.ChannelListResponse)
	if !ok {
		t.Fatalf("first reply %T", inbox[0])
	}
	if len(list.Channels) != 1 || list.Channels[0].Name != "CCTV-5" {
		t.Errorf("channel list = %+v", list.Channels)
	}
	pl, ok := inbox[1].(*wire.PlaylinkResponse)
	if !ok {
		t.Fatalf("second reply %T", inbox[1])
	}
	if pl.Source != dir.Source {
		t.Errorf("source = %v, want %v", pl.Source, dir.Source)
	}
	if len(pl.Trackers) != Groups {
		t.Fatalf("playlink has %d trackers, want %d (one per group)", len(pl.Trackers), Groups)
	}
	for g, addr := range pl.Trackers {
		found := false
		for _, cand := range groups[g] {
			if cand == addr {
				found = true
			}
		}
		if !found {
			t.Errorf("tracker %v not from group %d", addr, g)
		}
	}
}

func TestBootstrapRejectsEmptyGroup(t *testing.T) {
	w := simnet.NewWorld(3)
	env, err := w.Spawn(simnet.HostSpec{ISP: isp.TELE, UploadBps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBootstrap(env)
	var groups [Groups][]netip.Addr // all empty
	err = bs.AddChannel(ChannelDirectory{Info: wire.ChannelInfo{ID: 1}, TrackerGroups: groups})
	if err == nil {
		t.Error("empty tracker group accepted")
	}
}

func TestServerIgnoresUnrelatedMessages(t *testing.T) {
	rig := newRig(t)
	rig.server.HandleMessage(rig.client.Addr(), &wire.DataRequest{Channel: 1, Seq: 5})
	rig.run(t, time.Second)
	if len(rig.inbox) != 0 {
		t.Errorf("tracker replied to a data request: %v", rig.inbox)
	}
}

// TestChannelSwitchLeavesRegistry is the channel-switch regression test: a
// peer announced on channel A that switches to channel B sends a Leaving
// announce for A (as peer.Client does on Leave), so it drops out of A's
// registry immediately and never appears in A's query responses again, while
// staying listed on B.
func TestChannelSwitchLeavesRegistry(t *testing.T) {
	rig := newRig(t)
	switcher := netip.AddrFrom4([4]byte{58, 40, 0, 9})

	rig.server.HandleMessage(switcher, &wire.TrackerAnnounce{Channel: 1})
	if got := rig.server.ActivePeers(1); len(got) != 1 || got[0] != switcher {
		t.Fatalf("channel 1 registry = %v, want [%v]", got, switcher)
	}

	// Switch: leave A, announce on B.
	rig.server.HandleMessage(switcher, &wire.TrackerAnnounce{Channel: 1, Leaving: true})
	rig.server.HandleMessage(switcher, &wire.TrackerAnnounce{Channel: 2})

	if got := rig.server.ActivePeers(1); len(got) != 0 {
		t.Errorf("channel 1 registry after leave = %v, want empty", got)
	}
	if got := rig.server.ActivePeers(2); len(got) != 1 || got[0] != switcher {
		t.Errorf("channel 2 registry = %v, want [%v]", got, switcher)
	}

	// No query response for A may ever include the switcher again.
	for i := 0; i < 3; i++ {
		rig.client.Send(rig.srvEnv.Addr(), &wire.TrackerQuery{Channel: 1})
		rig.run(t, 30*time.Second)
	}
	for _, msg := range rig.inbox {
		resp, ok := msg.(*wire.TrackerResponse)
		if !ok {
			t.Fatalf("got %T, want TrackerResponse", msg)
		}
		for _, p := range resp.Peers {
			if p == switcher {
				t.Fatalf("channel 1 response still lists the departed peer %v", p)
			}
		}
	}
}

// TestSilentDepartureExpiresWithinTTL covers the crash-stop path of the same
// contract: a peer that stops re-announcing (no Leaving message — e.g. the
// process died mid-switch) must age out of the registry within the entry TTL
// and never be served from it afterwards, while a peer that keeps announcing
// stays listed.
func TestSilentDepartureExpiresWithinTTL(t *testing.T) {
	rig := newRig(t)
	ghost := netip.AddrFrom4([4]byte{58, 40, 0, 10})
	alive := netip.AddrFrom4([4]byte{58, 40, 0, 11})

	rig.server.HandleMessage(ghost, &wire.TrackerAnnounce{Channel: 1})
	rig.server.HandleMessage(alive, &wire.TrackerAnnounce{Channel: 1})

	// Advance past the TTL; only `alive` re-announces along the way.
	step := 30 * time.Second
	for elapsed := time.Duration(0); elapsed <= DefaultEntryTTL+step; elapsed += step {
		rig.run(t, step)
		rig.server.HandleMessage(alive, &wire.TrackerAnnounce{Channel: 1})
	}

	if got := rig.server.ActivePeers(1); len(got) != 1 || got[0] != alive {
		t.Errorf("registry after TTL = %v, want only %v", got, alive)
	}
	rig.client.Send(rig.srvEnv.Addr(), &wire.TrackerQuery{Channel: 1})
	rig.run(t, 5*time.Second)
	if len(rig.inbox) != 1 {
		t.Fatalf("client got %d messages, want 1", len(rig.inbox))
	}
	resp := rig.inbox[0].(*wire.TrackerResponse)
	for _, p := range resp.Peers {
		if p == ghost {
			t.Fatalf("expired peer %v still served", p)
		}
	}
	if len(resp.Peers) != 1 || resp.Peers[0] != alive {
		t.Errorf("response peers = %v, want [%v]", resp.Peers, alive)
	}
}

// TestOutageDropsInboundThenRecovers covers the tracker-crash fault: while
// down the server neither registers announces nor answers queries, and it
// picks up right where it left off on recovery.
func TestOutageDropsInboundThenRecovers(t *testing.T) {
	rig := newRig(t)
	peerA := netip.AddrFrom4([4]byte{58, 40, 0, 20})

	rig.server.SetDown(true)
	rig.server.HandleMessage(peerA, &wire.TrackerAnnounce{Channel: 1})
	rig.client.Send(rig.srvEnv.Addr(), &wire.TrackerQuery{Channel: 1})
	rig.run(t, 5*time.Second)
	if len(rig.inbox) != 0 {
		t.Fatalf("downed tracker answered %d messages", len(rig.inbox))
	}
	if announces, queries, _ := rig.server.Stats(); announces != 0 || queries != 0 {
		t.Errorf("downed tracker counted traffic: %d announces, %d queries", announces, queries)
	}
	if got := rig.server.ActivePeers(1); len(got) != 0 {
		t.Errorf("announce registered while down: %v", got)
	}

	rig.server.SetDown(false)
	rig.server.HandleMessage(peerA, &wire.TrackerAnnounce{Channel: 1})
	rig.client.Send(rig.srvEnv.Addr(), &wire.TrackerQuery{Channel: 1})
	rig.run(t, 5*time.Second)
	if len(rig.inbox) != 1 {
		t.Fatalf("recovered tracker answered %d messages, want 1", len(rig.inbox))
	}
	resp := rig.inbox[0].(*wire.TrackerResponse)
	if len(resp.Peers) != 1 || resp.Peers[0] != peerA {
		t.Errorf("response peers = %v, want [%v]", resp.Peers, peerA)
	}
}
