// Package cdn implements the hybrid CDN+P2P layer: per-ISP edge caches with
// a finite uplink budget that absorb urgent-window misses the swarm would
// otherwise push onto the single channel source.
//
// An Edge is deliberately shaped like peer.Source — it serves prefix runs up
// to the live edge and sheds with tiny Busy replies once its uplink backs up
// — so an overloaded edge degrades exactly like an overloaded origin and the
// peer-side fallback machinery (PR 1) needs no new message types. Unlike the
// source, one edge serves every channel of the deployment (a real edge cache
// is channel-agnostic), and its ingest is out of band: the edge's stream
// clock keeps advancing through a source crash, which is what makes edge
// takeover work.
package cdn

import (
	"fmt"
	"net/netip"
	"time"

	"pplivesim/internal/isp"
	"pplivesim/internal/node"
	"pplivesim/internal/stream"
	"pplivesim/internal/wire"
)

// DefaultUplinkBps is the uplink budget of one edge cache when a placement
// does not specify one: 4 MB/s, roughly 30× a residential peer but far below
// the provisioned origin — enough that a flash crowd saturates it and the
// Busy-shedding path is exercised.
const DefaultUplinkBps = 4 << 20

// Placement provisions the edge caches of one ISP.
type Placement struct {
	ISP   isp.ISP
	Count int // number of edge caches in this ISP
	// UplinkBps is each edge's access uplink in bytes/sec; zero means
	// DefaultUplinkBps.
	UplinkBps float64
}

// Config describes a scenario's CDN deployment. The zero value (no
// placements) means no edges anywhere — legacy pure-P2P behavior.
type Config struct {
	Placements []Placement
}

// Enabled reports whether the deployment provisions at least one edge.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	for _, p := range c.Placements {
		if p.Count > 0 {
			return true
		}
	}
	return false
}

// Validate checks the deployment description.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	seen := map[isp.ISP]bool{}
	for i, p := range c.Placements {
		if !p.ISP.Valid() {
			return fmt.Errorf("cdn: placement %d has invalid ISP %d", i, int(p.ISP))
		}
		if seen[p.ISP] {
			return fmt.Errorf("cdn: duplicate placement for %s", p.ISP)
		}
		seen[p.ISP] = true
		if p.Count < 0 {
			return fmt.Errorf("cdn: placement %s has negative count %d", p.ISP, p.Count)
		}
		if p.Count > 32 {
			return fmt.Errorf("cdn: placement %s count %d exceeds 32 edges per ISP", p.ISP, p.Count)
		}
		if p.UplinkBps < 0 {
			return fmt.Errorf("cdn: placement %s has negative uplink %f", p.ISP, p.UplinkBps)
		}
	}
	return nil
}

// Uplink returns the effective uplink of a placement's edges.
func (p Placement) Uplink() float64 {
	if p.UplinkBps > 0 {
		return p.UplinkBps
	}
	return DefaultUplinkBps
}

// channelState is one channel's ingest state at an edge: the spec plus the
// instant the edge started caching it (sequence 0's emission, as seen by the
// edge's own out-of-band feed).
type channelState struct {
	spec  stream.Spec
	start time.Duration
}

// Edge is one CDN edge cache. It holds the trailing window of every
// registered channel up to the live edge (ingest is modeled out of band —
// edges are fed by the CDN's private distribution tree, not the P2P overlay)
// and serves data requests exactly like peer.Source: prefix runs while the
// uplink is healthy, tiny Busy replies once the backlog passes the shedding
// threshold.
type Edge struct {
	env      node.Env
	channels map[wire.ChannelID]channelState

	// down marks the edge as crashed: every inbound datagram is dropped.
	// Fault injection toggles it; the ingest clocks keep running so the
	// cache is warm again the instant the process comes back.
	down bool

	// Stats.
	served      uint64
	servedBytes uint64
	shed        uint64
}

// NewEdge creates an edge cache with no channels registered.
func NewEdge(env node.Env) *Edge {
	return &Edge{env: env, channels: make(map[wire.ChannelID]channelState)}
}

var _ node.Handler = (*Edge)(nil)

// Addr returns the edge's address.
func (e *Edge) Addr() netip.Addr { return e.env.Addr() }

// AddChannel registers a channel feed at the edge, live (from the edge's
// point of view) since the current instant.
func (e *Edge) AddChannel(spec stream.Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	e.channels[spec.Channel] = channelState{spec: spec, start: e.env.Now()}
	return nil
}

// Stats reports data requests served, payload bytes sent, and requests shed
// with Busy replies.
func (e *Edge) Stats() (served, servedBytes, shed uint64) {
	return e.served, e.servedBytes, e.shed
}

// SetDown toggles the crashed state; while down the edge drops all inbound
// traffic.
func (e *Edge) SetDown(down bool) { e.down = down }

// edgeSeq returns the newest cached sequence of a channel at now.
func (cs channelState) edgeSeq(now time.Duration) uint64 {
	return cs.spec.EdgeSeq(now - cs.start)
}

// Has reports whether the edge can serve sub-piece seq of the channel at now.
func (e *Edge) Has(ch wire.ChannelID, seq uint64, now time.Duration) bool {
	cs, ok := e.channels[ch]
	return ok && seq <= cs.edgeSeq(now)
}

// bufferMap returns a map covering the channel's trailing window up to the
// live edge, all bits set — the same shape peer.Source advertises.
func (cs channelState) bufferMap(now time.Duration) wire.BufferMap {
	const window = 2048
	edge := cs.edgeSeq(now)
	start := uint64(0)
	if edge+1 > window {
		start = edge + 1 - window
	}
	bm := wire.MakeBufferMap(start, window)
	if edge >= start {
		bm.SetRange(start, edge)
	}
	return bm
}

// HandleMessage implements node.Handler.
func (e *Edge) HandleMessage(from netip.Addr, msg wire.Message) {
	if e.down {
		return
	}
	switch m := msg.(type) {
	case *wire.Handshake:
		cs, ok := e.channels[m.Channel]
		if !ok {
			return
		}
		e.env.Send(from, &wire.HandshakeAck{
			Channel:  m.Channel,
			Accepted: true,
			Buffer:   cs.bufferMap(e.env.Now()),
		})
	case *wire.DataRequest:
		cs, ok := e.channels[m.Channel]
		if !ok {
			return
		}
		// Shed load once the uplink backs up, exactly like the origin: a
		// saturated edge answers with a tiny Busy reply so the requester
		// falls through to the next edge (or the source) at once instead of
		// burning a request timeout.
		if e.env.UplinkBacklog() > 2*time.Second {
			e.shed++
			e.env.Send(from, &wire.DataReply{
				Channel:  m.Channel,
				Seq:      m.Seq,
				Count:    0,
				PieceLen: uint16(cs.spec.SubPieceLen),
				Busy:     true,
			})
			return
		}
		now := e.env.Now()
		count := int(m.Count)
		if count == 0 {
			count = 1
		}
		run := 0
		for run < count && m.Seq+uint64(run) <= cs.edgeSeq(now) {
			run++
		}
		if run == 0 {
			return
		}
		e.served++
		e.servedBytes += uint64(run * cs.spec.SubPieceLen)
		e.env.Send(from, &wire.DataReply{
			Channel:  m.Channel,
			Seq:      m.Seq,
			Count:    uint16(run),
			PieceLen: uint16(cs.spec.SubPieceLen),
		})
	case *wire.BufferMapAnnounce:
		// Edges ignore client buffer maps.
	case *wire.Ping:
		if _, ok := e.channels[m.Channel]; !ok {
			return
		}
		e.env.Send(from, &wire.Pong{Channel: m.Channel, Nonce: m.Nonce})
	default:
	}
}
