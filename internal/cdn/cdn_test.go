package cdn

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/isp"
	"pplivesim/internal/node"
	"pplivesim/internal/stream"
	"pplivesim/internal/wire"
)

// fakeEnv is a minimal node.Env for direct Edge tests: a settable clock and
// uplink backlog plus a captured outbox.
type fakeEnv struct {
	addr    netip.Addr
	now     time.Duration
	backlog time.Duration
	rng     *rand.Rand
	sent    []struct {
		to  netip.Addr
		msg wire.Message
	}
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{
		addr: netip.AddrFrom4([4]byte{61, 200, 0, 1}),
		rng:  rand.New(rand.NewSource(7)),
	}
}

func (e *fakeEnv) Addr() netip.Addr   { return e.addr }
func (e *fakeEnv) Now() time.Duration { return e.now }
func (e *fakeEnv) After(d time.Duration, fn func()) node.Cancel {
	return func() bool { return false }
}
func (e *fakeEnv) Every(d time.Duration, fn func()) node.Cancel {
	return func() bool { return false }
}
func (e *fakeEnv) Rand() *rand.Rand { return e.rng }
func (e *fakeEnv) Send(to netip.Addr, msg wire.Message) {
	e.sent = append(e.sent, struct {
		to  netip.Addr
		msg wire.Message
	}{to, msg})
}
func (e *fakeEnv) UplinkBacklog() time.Duration { return e.backlog }

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  *Config
		ok   bool
	}{
		{"nil config", nil, true},
		{"empty config", &Config{}, true},
		{"valid placements", &Config{Placements: []Placement{
			{ISP: isp.TELE, Count: 2}, {ISP: isp.CNC, Count: 1, UplinkBps: 1 << 20},
		}}, true},
		{"invalid ISP", &Config{Placements: []Placement{{ISP: isp.ISP(99), Count: 1}}}, false},
		{"duplicate ISP", &Config{Placements: []Placement{
			{ISP: isp.TELE, Count: 1}, {ISP: isp.TELE, Count: 1},
		}}, false},
		{"negative count", &Config{Placements: []Placement{{ISP: isp.TELE, Count: -1}}}, false},
		{"count over cap", &Config{Placements: []Placement{{ISP: isp.TELE, Count: 33}}}, false},
		{"negative uplink", &Config{Placements: []Placement{{ISP: isp.TELE, Count: 1, UplinkBps: -1}}}, false},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestConfigEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Error("nil config reports enabled")
	}
	if (&Config{}).Enabled() {
		t.Error("empty config reports enabled")
	}
	if (&Config{Placements: []Placement{{ISP: isp.TELE, Count: 0}}}).Enabled() {
		t.Error("zero-count placement reports enabled")
	}
	if !(&Config{Placements: []Placement{{ISP: isp.TELE, Count: 1}}}).Enabled() {
		t.Error("provisioned config reports disabled")
	}
}

func TestPlacementUplinkDefault(t *testing.T) {
	if got := (Placement{ISP: isp.TELE, Count: 1}).Uplink(); got != DefaultUplinkBps {
		t.Errorf("zero uplink resolves to %v, want %v", got, DefaultUplinkBps)
	}
	if got := (Placement{ISP: isp.TELE, Count: 1, UplinkBps: 123}).Uplink(); got != 123 {
		t.Errorf("explicit uplink resolves to %v, want 123", got)
	}
}

// edgeRig is an Edge with one registered channel and a controllable clock.
func edgeRig(t *testing.T) (*fakeEnv, *Edge, stream.Spec) {
	t.Helper()
	env := newFakeEnv()
	e := NewEdge(env)
	spec := stream.DefaultSpec(1, "popular-live", 950_000)
	if err := e.AddChannel(spec); err != nil {
		t.Fatal(err)
	}
	return env, e, spec
}

func TestEdgeServesPrefixRun(t *testing.T) {
	env, e, spec := edgeRig(t)
	env.now = 10 * time.Second
	edge := spec.EdgeSeq(env.now)
	peer := netip.AddrFrom4([4]byte{58, 40, 0, 1})

	e.HandleMessage(peer, &wire.DataRequest{Channel: 1, Seq: edge - 3, Count: 16})
	if len(env.sent) != 1 {
		t.Fatalf("sent %d messages, want 1", len(env.sent))
	}
	rep := env.sent[0].msg.(*wire.DataReply)
	if rep.Busy || rep.Seq != edge-3 || int(rep.Count) != 4 {
		t.Errorf("reply = %+v, want 4-piece run up to live edge %d", rep, edge)
	}
	served, bytes, shed := e.Stats()
	if served != 1 || bytes != uint64(4*spec.SubPieceLen) || shed != 0 {
		t.Errorf("stats = (%d, %d, %d), want (1, %d, 0)", served, bytes, shed, 4*spec.SubPieceLen)
	}

	// Beyond the live edge: no reply at all (same as the source).
	e.HandleMessage(peer, &wire.DataRequest{Channel: 1, Seq: edge + 100, Count: 1})
	if len(env.sent) != 1 {
		t.Error("edge answered a request beyond its live edge")
	}
	// Unknown channel: ignored.
	e.HandleMessage(peer, &wire.DataRequest{Channel: 9, Seq: 0, Count: 1})
	if len(env.sent) != 1 {
		t.Error("edge answered an unregistered channel")
	}
}

func TestEdgeShedsWhenSaturated(t *testing.T) {
	env, e, spec := edgeRig(t)
	env.now = 10 * time.Second
	env.backlog = 3 * time.Second
	peer := netip.AddrFrom4([4]byte{58, 40, 0, 1})

	e.HandleMessage(peer, &wire.DataRequest{Channel: 1, Seq: 0, Count: 16})
	if len(env.sent) != 1 {
		t.Fatalf("sent %d messages, want 1 Busy reply", len(env.sent))
	}
	rep := env.sent[0].msg.(*wire.DataReply)
	if !rep.Busy || rep.Count != 0 || int(rep.PieceLen) != spec.SubPieceLen {
		t.Errorf("reply = %+v, want tiny Busy shed", rep)
	}
	if _, _, shed := e.Stats(); shed != 1 {
		t.Errorf("shed = %d, want 1", shed)
	}
}

func TestEdgeDownDropsEverything(t *testing.T) {
	env, e, _ := edgeRig(t)
	env.now = 10 * time.Second
	peer := netip.AddrFrom4([4]byte{58, 40, 0, 1})

	e.SetDown(true)
	e.HandleMessage(peer, &wire.Handshake{Channel: 1})
	e.HandleMessage(peer, &wire.DataRequest{Channel: 1, Seq: 0, Count: 1})
	e.HandleMessage(peer, &wire.Ping{Channel: 1, Nonce: 7})
	if len(env.sent) != 0 {
		t.Fatalf("down edge sent %d messages", len(env.sent))
	}

	// Recovery: the ingest clock never stopped, so the cache is warm at the
	// current live edge immediately.
	e.SetDown(false)
	env.now = 20 * time.Second
	e.HandleMessage(peer, &wire.Handshake{Channel: 1})
	ack := env.sent[0].msg.(*wire.HandshakeAck)
	if !ack.Accepted {
		t.Fatal("recovered edge rejected handshake")
	}
	if !e.Has(1, e.channels[1].edgeSeq(env.now), env.now) {
		t.Error("recovered edge is not at the live edge")
	}
}

// TestEdgeTakeoverClock pins the out-of-band ingest semantics: the edge's
// per-channel clock starts at AddChannel and advances regardless of source
// state, so a channel registered at t=0 serves sequence spec.EdgeSeq(now)
// even if the origin has been down the whole time.
func TestEdgeTakeoverClock(t *testing.T) {
	env := newFakeEnv()
	env.now = 5 * time.Second
	e := NewEdge(env)
	spec := stream.DefaultSpec(1, "late-registered", 100)
	if err := e.AddChannel(spec); err != nil {
		t.Fatal(err)
	}
	env.now = 15 * time.Second
	// Registered at t=5s, so the edge's live edge is 10 seconds of stream.
	want := spec.EdgeSeq(10 * time.Second)
	if !e.Has(1, want, env.now) {
		t.Errorf("edge lacks sequence %d ten seconds after registration", want)
	}
	if e.Has(1, spec.EdgeSeq(20*time.Second)+1, env.now) {
		t.Error("edge claims sequences beyond its ingest clock")
	}
}

func TestEdgeHandshakeAndPing(t *testing.T) {
	env, e, _ := edgeRig(t)
	env.now = 30 * time.Second
	peer := netip.AddrFrom4([4]byte{58, 40, 0, 1})

	e.HandleMessage(peer, &wire.Handshake{Channel: 1})
	ack := env.sent[0].msg.(*wire.HandshakeAck)
	if !ack.Accepted || ack.Channel != 1 {
		t.Fatalf("ack = %+v", ack)
	}
	if edge := e.channels[1].edgeSeq(env.now); !ack.Buffer.Has(edge) {
		t.Errorf("handshake buffer map lacks the live edge %d; edge should advertise its trailing window", edge)
	}

	e.HandleMessage(peer, &wire.Ping{Channel: 1, Nonce: 42})
	pong := env.sent[1].msg.(*wire.Pong)
	if pong.Nonce != 42 {
		t.Errorf("pong nonce = %d, want 42", pong.Nonce)
	}

	// Handshake for an unregistered channel is dropped.
	e.HandleMessage(peer, &wire.Handshake{Channel: 9})
	if len(env.sent) != 2 {
		t.Error("edge acked an unregistered channel")
	}
}
