package plot

import (
	"bytes"
	"encoding/xml"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// renderOK renders and verifies the output is well-formed XML.
func renderOK(t *testing.T, p *Plot) string {
	t.Helper()
	var buf bytes.Buffer
	if err := p.RenderSVG(&buf, 640, 400); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("malformed SVG: %v\n%s", err, buf.String())
		}
	}
	return buf.String()
}

func TestLinePlot(t *testing.T) {
	p := New("locality over days", "day", "locality (%)")
	if err := p.AddLine("TELE", []float64{1, 2, 3, 4}, []float64{80, 85, 82, 88}); err != nil {
		t.Fatal(err)
	}
	svg := renderOK(t, p)
	for _, want := range []string{"polyline", "locality over days", "TELE", "locality (%)"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestScatterLogLog(t *testing.T) {
	p := New("rank distribution", "rank", "requests")
	p.XLog, p.YLog = true, true
	xs, ys := make([]float64, 50), make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i + 1)
		ys[i] = 1000 * math.Pow(float64(i+1), -0.8)
	}
	if err := p.AddScatter("data", xs, ys); err != nil {
		t.Fatal(err)
	}
	svg := renderOK(t, p)
	if !strings.Contains(svg, "circle") {
		t.Error("scatter produced no circles")
	}
	// Log ticks are powers of ten.
	if !strings.Contains(svg, ">10<") && !strings.Contains(svg, ">100<") {
		t.Error("no power-of-ten ticks on log axes")
	}
}

func TestBarChart(t *testing.T) {
	p := New("returned by ISP", "", "count")
	err := p.SetBars([]string{"TELE", "CNC", "CER"}, []float64{100, 40, 5})
	if err != nil {
		t.Fatal(err)
	}
	svg := renderOK(t, p)
	if strings.Count(svg, "<rect") < 4 { // background + frame + 3 bars
		t.Error("missing bar rects")
	}
	for _, label := range []string{"TELE", "CNC", "CER"} {
		if !strings.Contains(svg, label) {
			t.Errorf("missing bar label %s", label)
		}
	}
}

func TestMixingBarsAndSeriesRejected(t *testing.T) {
	p := New("t", "x", "y")
	if err := p.AddLine("l", []float64{1}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBars([]string{"a"}, []float64{1}); err == nil {
		t.Error("bars accepted after series")
	}
	q := New("t", "x", "y")
	if err := q.SetBars([]string{"a"}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := q.AddLine("l", []float64{1}, []float64{1}); err == nil {
		t.Error("series accepted after bars")
	}
}

func TestMismatchedSeriesRejected(t *testing.T) {
	p := New("t", "x", "y")
	if err := p.AddLine("l", []float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestEmptyPlotRejected(t *testing.T) {
	p := New("t", "x", "y")
	var buf bytes.Buffer
	if err := p.RenderSVG(&buf, 640, 400); err == nil {
		t.Error("empty plot rendered")
	}
	if err := p.RenderSVG(&buf, 10, 10); err == nil {
		t.Error("tiny canvas accepted")
	}
}

func TestEscaping(t *testing.T) {
	p := New(`<&"> title`, "x<y", "a&b")
	if err := p.AddLine("s<1>", []float64{1, 2}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	renderOK(t, p) // would fail XML parsing if unescaped
}

func TestNiceTicks(t *testing.T) {
	cases := []struct{ min, max float64 }{
		{0, 100}, {0, 7}, {-5, 5}, {0.001, 0.009}, {12345, 98765},
	}
	for _, c := range cases {
		ticks := niceTicks(c.min, c.max)
		if len(ticks) < 2 || len(ticks) > 8 {
			t.Errorf("niceTicks(%f,%f) = %v (%d ticks)", c.min, c.max, ticks, len(ticks))
		}
		for i := 1; i < len(ticks); i++ {
			if ticks[i] <= ticks[i-1] {
				t.Errorf("ticks not increasing: %v", ticks)
			}
		}
	}
}

// Property: rendering arbitrary finite data never errors and always yields
// parseable XML.
func TestPropertyRenderRobust(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New("t", "x", "y")
		n := 1 + rng.Intn(60)
		xs, ys := make([]float64, n), make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			ys[i] = rng.NormFloat64() * 100
		}
		kind := rng.Intn(2)
		var err error
		if kind == 0 {
			err = p.AddLine("s", xs, ys)
		} else {
			err = p.AddScatter("s", xs, ys)
		}
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := p.RenderSVG(&buf, 400, 300); err != nil {
			return false
		}
		dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
		for {
			if _, err := dec.Token(); err != nil {
				return err.Error() == "EOF"
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Error(err)
	}
}
