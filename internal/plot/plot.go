// Package plot renders simple, dependency-free SVG charts — line, scatter,
// and bar — with linear or logarithmic axes. cmd/experiments uses it to
// draw the paper's figures (ISP bar charts, response-time scatters, rank
// distributions in log and SE scales, locality time series) from fresh
// simulation data.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Kind selects how a series is drawn.
type Kind int

// Series kinds.
const (
	Line Kind = iota + 1
	Scatter
)

// Series is one named data set.
type Series struct {
	Name string
	Kind Kind
	X, Y []float64
}

// Plot is a single chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	XLog   bool
	YLog   bool

	series []Series

	barLabels []string
	barValues []float64
}

// palette holds the series colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#17becf",
}

// New creates an empty plot.
func New(title, xLabel, yLabel string) *Plot {
	return &Plot{Title: title, XLabel: xLabel, YLabel: yLabel}
}

// AddLine appends a line series.
func (p *Plot) AddLine(name string, xs, ys []float64) error {
	return p.add(Series{Name: name, Kind: Line, X: xs, Y: ys})
}

// AddScatter appends a scatter series.
func (p *Plot) AddScatter(name string, xs, ys []float64) error {
	return p.add(Series{Name: name, Kind: Scatter, X: xs, Y: ys})
}

func (p *Plot) add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q: %d x values vs %d y values", s.Name, len(s.X), len(s.Y))
	}
	if len(p.barLabels) > 0 {
		return fmt.Errorf("plot: cannot mix series with bars")
	}
	p.series = append(p.series, s)
	return nil
}

// SetBars configures a categorical bar chart (exclusive with series).
func (p *Plot) SetBars(labels []string, values []float64) error {
	if len(labels) != len(values) {
		return fmt.Errorf("plot: %d labels vs %d values", len(labels), len(values))
	}
	if len(p.series) > 0 {
		return fmt.Errorf("plot: cannot mix bars with series")
	}
	p.barLabels = append([]string(nil), labels...)
	p.barValues = append([]float64(nil), values...)
	return nil
}

// Geometry constants.
const (
	marginLeft   = 64.0
	marginRight  = 16.0
	marginTop    = 34.0
	marginBottom = 48.0
)

// axis maps data values to pixels, linearly or logarithmically.
type axis struct {
	min, max float64
	log      bool
	lo, hi   float64 // pixel range
}

func (a axis) pos(v float64) float64 {
	min, max, val := a.min, a.max, v
	if a.log {
		min, max, val = math.Log10(a.min), math.Log10(a.max), math.Log10(v)
	}
	if max == min {
		return (a.lo + a.hi) / 2
	}
	frac := (val - min) / (max - min)
	return a.lo + frac*(a.hi-a.lo)
}

// niceTicks returns 4-7 round tick values covering [min,max].
func niceTicks(min, max float64) []float64 {
	if max <= min {
		return []float64{min}
	}
	span := max - min
	step := math.Pow(10, math.Floor(math.Log10(span/4)))
	for span/step > 7 {
		switch {
		case span/(step*2) <= 7:
			step *= 2
		case span/(step*5) <= 7:
			step *= 5
		default:
			step *= 10
		}
	}
	var ticks []float64
	for v := math.Ceil(min/step) * step; v <= max+step/1e6; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// logTicks returns powers of ten covering [min,max].
func logTicks(min, max float64) []float64 {
	var ticks []float64
	for e := math.Floor(math.Log10(min)); e <= math.Ceil(math.Log10(max)); e++ {
		v := math.Pow(10, e)
		if v >= min/1.0001 && v <= max*1.0001 {
			ticks = append(ticks, v)
		}
	}
	return ticks
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.0e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	}
}

// dataRange computes the plotted extent of all series.
func (p *Plot) dataRange() (xmin, xmax, ymin, ymax float64, ok bool) {
	first := true
	for _, s := range p.series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if p.XLog && x <= 0 || p.YLog && y <= 0 {
				continue
			}
			if first {
				xmin, xmax, ymin, ymax = x, x, y, y
				first = false
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	return xmin, xmax, ymin, ymax, !first
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// RenderSVG writes the chart as a standalone SVG document.
func (p *Plot) RenderSVG(w io.Writer, width, height int) error {
	if width < 160 || height < 120 {
		return fmt.Errorf("plot: size %dx%d too small", width, height)
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" text-anchor="middle" font-size="13">%s</text>`+"\n", width/2, esc(p.Title))

	plotW := float64(width) - marginLeft - marginRight
	plotH := float64(height) - marginTop - marginBottom

	if len(p.barLabels) > 0 {
		p.renderBars(&b, plotW, plotH, width, height)
	} else if err := p.renderSeries(&b, plotW, plotH, width, height); err != nil {
		return err
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%f" y="%d" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, height-8, esc(p.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%f" text-anchor="middle" transform="rotate(-90 14 %f)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, esc(p.YLabel))
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func (p *Plot) frame(b *strings.Builder, plotW, plotH float64) {
	fmt.Fprintf(b, `<rect x="%f" y="%f" width="%f" height="%f" fill="none" stroke="#444"/>`+"\n",
		marginLeft, marginTop, plotW, plotH)
}

func (p *Plot) renderBars(b *strings.Builder, plotW, plotH float64, width, height int) {
	p.frame(b, plotW, plotH)
	maxV := 0.0
	for _, v := range p.barValues {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	ticks := niceTicks(0, maxV)
	yAxis := axis{min: 0, max: ticks[len(ticks)-1], lo: marginTop + plotH, hi: marginTop}
	for _, tv := range ticks {
		y := yAxis.pos(tv)
		fmt.Fprintf(b, `<line x1="%f" y1="%f" x2="%f" y2="%f" stroke="#ddd"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(b, `<text x="%f" y="%f" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, formatTick(tv))
	}
	n := len(p.barValues)
	slot := plotW / float64(n)
	barW := slot * 0.6
	for i, v := range p.barValues {
		x := marginLeft + float64(i)*slot + (slot-barW)/2
		y := yAxis.pos(v)
		fmt.Fprintf(b, `<rect x="%f" y="%f" width="%f" height="%f" fill="%s"/>`+"\n",
			x, y, barW, marginTop+plotH-y, palette[i%len(palette)])
		fmt.Fprintf(b, `<text x="%f" y="%f" text-anchor="middle">%s</text>`+"\n",
			x+barW/2, marginTop+plotH+16, esc(p.barLabels[i]))
	}
}

func (p *Plot) renderSeries(b *strings.Builder, plotW, plotH float64, width, height int) error {
	xmin, xmax, ymin, ymax, ok := p.dataRange()
	if !ok {
		return fmt.Errorf("plot: no plottable data")
	}
	// Pad linear ranges slightly; keep log ranges on data.
	if !p.XLog {
		pad := (xmax - xmin) * 0.04
		if pad == 0 {
			pad = math.Abs(xmax)*0.1 + 1
		}
		xmin, xmax = xmin-pad, xmax+pad
	}
	if !p.YLog {
		pad := (ymax - ymin) * 0.06
		if pad == 0 {
			pad = math.Abs(ymax)*0.1 + 1
		}
		ymin, ymax = ymin-pad, ymax+pad
	}
	xAxis := axis{min: xmin, max: xmax, log: p.XLog, lo: marginLeft, hi: marginLeft + plotW}
	yAxis := axis{min: ymin, max: ymax, log: p.YLog, lo: marginTop + plotH, hi: marginTop}

	p.frame(b, plotW, plotH)
	var xticks, yticks []float64
	if p.XLog {
		xticks = logTicks(xmin, xmax)
	} else {
		xticks = niceTicks(xmin, xmax)
	}
	if p.YLog {
		yticks = logTicks(ymin, ymax)
	} else {
		yticks = niceTicks(ymin, ymax)
	}
	for _, tv := range xticks {
		x := xAxis.pos(tv)
		fmt.Fprintf(b, `<line x1="%f" y1="%f" x2="%f" y2="%f" stroke="#ddd"/>`+"\n",
			x, marginTop, x, marginTop+plotH)
		fmt.Fprintf(b, `<text x="%f" y="%f" text-anchor="middle">%s</text>`+"\n",
			x, marginTop+plotH+16, formatTick(tv))
	}
	for _, tv := range yticks {
		y := yAxis.pos(tv)
		fmt.Fprintf(b, `<line x1="%f" y1="%f" x2="%f" y2="%f" stroke="#ddd"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(b, `<text x="%f" y="%f" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, formatTick(tv))
	}

	for si, s := range p.series {
		color := palette[si%len(palette)]
		switch s.Kind {
		case Line:
			var pts []string
			for i := range s.X {
				if p.XLog && s.X[i] <= 0 || p.YLog && s.Y[i] <= 0 {
					continue
				}
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", xAxis.pos(s.X[i]), yAxis.pos(s.Y[i])))
			}
			if len(pts) > 0 {
				fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
					strings.Join(pts, " "), color)
			}
		case Scatter:
			for i := range s.X {
				if p.XLog && s.X[i] <= 0 || p.YLog && s.Y[i] <= 0 {
					continue
				}
				fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="2" fill="%s" fill-opacity="0.7"/>`+"\n",
					xAxis.pos(s.X[i]), yAxis.pos(s.Y[i]), color)
			}
		default:
			return fmt.Errorf("plot: series %q has unknown kind %d", s.Name, s.Kind)
		}
		// Legend entry.
		ly := marginTop + 14 + float64(si)*14
		fmt.Fprintf(b, `<rect x="%f" y="%f" width="10" height="10" fill="%s"/>`+"\n",
			marginLeft+plotW-110, ly-9, color)
		fmt.Fprintf(b, `<text x="%f" y="%f">%s</text>`+"\n",
			marginLeft+plotW-96, ly, esc(s.Name))
	}
	return nil
}
