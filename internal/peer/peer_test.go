package peer

import (
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/stream"
	"pplivesim/internal/wire"
)

var (
	bootstrapAddr = netip.MustParseAddr("61.128.0.100")
	sourceAddr    = netip.MustParseAddr("58.32.9.9")
	trackerAddrs  = []netip.Addr{
		netip.MustParseAddr("61.128.0.1"),
		netip.MustParseAddr("60.0.0.1"),
		netip.MustParseAddr("59.64.0.1"),
		netip.MustParseAddr("61.129.0.1"),
		netip.MustParseAddr("60.1.0.1"),
	}
)

func testChannel() stream.Spec { return stream.DefaultSpec(1, "test", 100) }

func testConfig() Config {
	return DefaultConfig(testChannel(), bootstrapAddr)
}

func newClient(t *testing.T, env *fakeEnv, cfg Config) *Client {
	t.Helper()
	c, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// join walks a client through the bootstrap flow.
func join(t *testing.T, env *fakeEnv, c *Client) {
	t.Helper()
	c.Start()
	msgs := env.take()
	if len(msgs) != 1 || msgs[0].msg.Kind() != wire.TChannelListRequest {
		t.Fatalf("start sent %v, want one ChannelListRequest", kinds(msgs))
	}
	c.HandleMessage(bootstrapAddr, &wire.ChannelListResponse{
		Channels: []wire.ChannelInfo{{ID: 1, Name: "test"}},
	})
	msgs = env.take()
	if len(msgs) != 1 || msgs[0].msg.Kind() != wire.TPlaylinkRequest {
		t.Fatalf("channel list produced %v, want one PlaylinkRequest", kinds(msgs))
	}
	c.HandleMessage(bootstrapAddr, &wire.PlaylinkResponse{
		Channel:  1,
		Source:   sourceAddr,
		Trackers: trackerAddrs,
	})
	if c.Phase() != PhaseStartup {
		t.Fatalf("phase after playlink = %v, want startup", c.Phase())
	}
}

func TestConfigValidation(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Bootstrap = netip.Addr{} },
		func(c *Config) { c.BufferWindow = 4 },
		func(c *Config) { c.GossipInterval = 0 },
		func(c *Config) { c.FetchLead = 0 },
		func(c *Config) { c.TrackerIntervalSteady = 0 },
		func(c *Config) { c.MaxNeighbors = 0 },
		func(c *Config) { c.ReferralSize = 500 },
		func(c *Config) { c.BatchCount = 0 },
		func(c *Config) { c.BatchCount = 100 },
		func(c *Config) { c.MaxOutstanding = 0 },
		func(c *Config) { c.RequestTimeout = 0 },
	}
	for i, mutate := range cases {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestJoinFlow(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	join(t, env, c)

	// After the playlink: announce + query all five trackers; the source is
	// registered as a neighbor of last resort.
	msgs := env.take()
	announces, queries := 0, 0
	for _, m := range msgs {
		switch m.msg.Kind() {
		case wire.TTrackerAnnounce:
			announces++
		case wire.TTrackerQuery:
			queries++
		}
	}
	if announces != 5 || queries != 5 {
		t.Errorf("announces=%d queries=%d, want 5 each", announces, queries)
	}
	if c.NumNeighbors() != 1 {
		t.Errorf("neighbors after join = %d, want 1 (the source)", c.NumNeighbors())
	}
}

func TestBootstrapRetry(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	c.Start()
	env.take()
	env.Advance(5 * time.Second)
	retries := 0
	for _, m := range env.take() {
		if m.msg.Kind() == wire.TChannelListRequest {
			retries++
		}
	}
	if retries == 0 {
		t.Error("no bootstrap retries after silence")
	}
}

func TestConnectsImmediatelyOnTrackerList(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	cfg := testConfig()
	cfg.ConnectFanout = 3
	c := newClient(t, env, cfg)
	join(t, env, c)
	env.take()

	peers := []netip.Addr{
		netip.MustParseAddr("58.32.0.2"),
		netip.MustParseAddr("58.32.0.3"),
		netip.MustParseAddr("58.32.0.4"),
		netip.MustParseAddr("58.32.0.5"),
	}
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: peers})
	handshakes := 0
	for _, m := range env.take() {
		if m.msg.Kind() == wire.THandshake {
			handshakes++
		}
	}
	if handshakes != 3 {
		t.Errorf("handshakes = %d, want ConnectFanout=3 sent immediately", handshakes)
	}
}

func TestHandshakeAckCreatesNeighborAndAsksForList(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	join(t, env, c)
	env.take()

	peerAddr := netip.MustParseAddr("58.32.0.2")
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: []netip.Addr{peerAddr}})
	env.take()
	env.Advance(50 * time.Millisecond)
	c.HandleMessage(peerAddr, &wire.HandshakeAck{Channel: 1, Accepted: true})
	got := env.sentTo(peerAddr)
	if len(got) != 1 || got[0].Kind() != wire.TPeerListRequest {
		t.Fatalf("after ack sent %v, want one PeerListRequest first", got)
	}
	if c.NumNeighbors() != 2 { // source + new peer
		t.Errorf("neighbors = %d, want 2", c.NumNeighbors())
	}
	st := c.Stats()
	if st.HandshakesAccepted != 1 {
		t.Errorf("HandshakesAccepted = %d", st.HandshakesAccepted)
	}
}

func TestInboundHandshakeAccepted(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	join(t, env, c)
	env.take()

	peerAddr := netip.MustParseAddr("60.0.0.7")
	c.HandleMessage(peerAddr, &wire.Handshake{Channel: 1})
	got := env.sentTo(peerAddr)
	if len(got) != 1 {
		t.Fatalf("inbound handshake produced %d messages", len(got))
	}
	ack, ok := got[0].(*wire.HandshakeAck)
	if !ok || !ack.Accepted {
		t.Fatalf("reply = %#v, want accepting HandshakeAck", got[0])
	}
	if ack.Buffer.Words == nil {
		t.Error("accepting ack carries no buffer map")
	}
}

func TestReferralListAndEnclosedGossip(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	join(t, env, c)
	env.take()

	// Connect two neighbors.
	n1 := netip.MustParseAddr("58.32.0.2")
	n2 := netip.MustParseAddr("58.32.0.3")
	for _, a := range []netip.Addr{n1, n2} {
		c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: []netip.Addr{a}})
		c.HandleMessage(a, &wire.HandshakeAck{Channel: 1, Accepted: true})
	}
	env.take()

	// A third peer asks for our list, enclosing its own.
	asker := netip.MustParseAddr("60.0.0.9")
	enclosed := netip.MustParseAddr("60.0.0.10")
	c.HandleMessage(asker, &wire.PeerListRequest{Channel: 1, OwnPeers: []netip.Addr{enclosed}})
	got := env.sentTo(asker)
	if len(got) != 1 {
		t.Fatalf("list request produced %d messages", len(got))
	}
	reply, ok := got[0].(*wire.PeerListReply)
	if !ok {
		t.Fatalf("reply = %T", got[0])
	}
	// Referral = recently connected peers, most recent first, source excluded.
	if len(reply.Peers) != 2 || reply.Peers[0] != n2 || reply.Peers[1] != n1 {
		t.Errorf("referral = %v, want [n2 n1]", reply.Peers)
	}
	// The enclosed address was absorbed as a candidate.
	if !c.active.known[akey(enclosed)] {
		t.Error("enclosed gossip address not learned")
	}
}

func TestReferralDisabledReturnsEmpty(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	cfg := testConfig()
	cfg.ReferralEnabled = false
	c := newClient(t, env, cfg)
	join(t, env, c)
	n1 := netip.MustParseAddr("58.32.0.2")
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: []netip.Addr{n1}})
	c.HandleMessage(n1, &wire.HandshakeAck{Channel: 1, Accepted: true})
	env.take()

	asker := netip.MustParseAddr("60.0.0.9")
	c.HandleMessage(asker, &wire.PeerListRequest{Channel: 1})
	got := env.sentTo(asker)
	if len(got) != 1 {
		t.Fatalf("list request produced %d messages", len(got))
	}
	reply, ok := got[0].(*wire.PeerListReply)
	if !ok || len(reply.Peers) != 0 {
		t.Errorf("ablated referral returned %v, want empty", got[0])
	}
}

func TestGossipCadence(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	join(t, env, c)
	n1 := netip.MustParseAddr("58.32.0.2")
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: []netip.Addr{n1}})
	c.HandleMessage(n1, &wire.HandshakeAck{Channel: 1, Accepted: true})
	env.take()

	env.Advance(21 * time.Second)
	gossips := 0
	for _, m := range env.take() {
		if m.to == n1 && m.msg.Kind() == wire.TPeerListRequest {
			gossips++
		}
	}
	if gossips != 1 {
		t.Errorf("gossip requests in 21s = %d, want 1 (20s cadence)", gossips)
	}
}

func TestServeDataRequest(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	join(t, env, c)
	env.take()

	// Give the client a piece: pretend the source replied.
	seq := c.active.buffer.StartSeq()
	c.HandleMessage(sourceAddr, &wire.DataReply{Channel: 1, Seq: seq, Count: 1, PieceLen: 1380})
	env.take()

	asker := netip.MustParseAddr("58.32.0.5")
	c.HandleMessage(asker, &wire.DataRequest{Channel: 1, Seq: seq, Count: 1})
	got := env.sentTo(asker)
	if len(got) != 1 {
		t.Fatalf("data request produced %d messages", len(got))
	}
	reply, ok := got[0].(*wire.DataReply)
	if !ok || reply.Count != 1 || reply.Seq != seq {
		t.Fatalf("reply = %#v", got[0])
	}
	if c.Stats().DataRequestsServed != 1 {
		t.Error("served counter not bumped")
	}
}

func TestNoHaveReplyAndMapPiggyback(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	join(t, env, c)
	env.take()

	asker := netip.MustParseAddr("58.32.0.5")
	c.HandleMessage(asker, &wire.DataRequest{Channel: 1, Seq: c.active.buffer.StartSeq(), Count: 1})
	got := env.sentTo(asker)
	if len(got) != 2 {
		t.Fatalf("decline produced %d messages, want no-have + map", len(got))
	}
	reply, ok := got[0].(*wire.DataReply)
	if !ok || reply.Count != 0 || reply.Busy {
		t.Fatalf("first = %#v, want Count=0 non-busy DataReply", got[0])
	}
	if got[1].Kind() != wire.TBufferMap {
		t.Errorf("second = %v, want piggybacked buffer map", got[1].Kind())
	}
}

func TestBusyShedWhenBacklogged(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	join(t, env, c)
	seq := c.active.buffer.StartSeq()
	c.HandleMessage(sourceAddr, &wire.DataReply{Channel: 1, Seq: seq, Count: 1, PieceLen: 1380})
	env.take()

	env.backlog = 10 * time.Second
	asker := netip.MustParseAddr("58.32.0.5")
	c.HandleMessage(asker, &wire.DataRequest{Channel: 1, Seq: seq, Count: 1})
	got := env.sentTo(asker)
	if len(got) != 1 {
		t.Fatalf("shed produced %d messages", len(got))
	}
	reply, ok := got[0].(*wire.DataReply)
	if !ok || !reply.Busy || reply.Count != 0 {
		t.Fatalf("reply = %#v, want busy signal", got[0])
	}
	if c.Stats().DataRequestsShed != 1 {
		t.Error("shed counter not bumped")
	}
}

func TestSchedulerRequestsFromProvenHolder(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	join(t, env, c)
	env.take()

	// Neighbor with a full buffer map over the window we want.
	n1 := netip.MustParseAddr("58.32.0.2")
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: []netip.Addr{n1}})
	c.HandleMessage(n1, &wire.HandshakeAck{Channel: 1, Accepted: true})
	bits := make([]byte, 256)
	for i := range bits {
		bits[i] = 0xff
	}
	c.HandleMessage(n1, &wire.BufferMapAnnounce{Channel: 1, Buffer: wire.BufferMapFromBytes(c.active.buffer.StartSeq(), bits)})
	env.take()

	env.Advance(2 * time.Second) // a few scheduler ticks past some emissions
	requests := 0
	for _, m := range env.take() {
		if m.to == n1 && m.msg.Kind() == wire.TDataRequest {
			requests++
		}
	}
	if requests == 0 {
		t.Error("scheduler never requested from a proven holder")
	}
}

func TestHaveHintUpdatesCoverageAndPropagates(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	join(t, env, c)
	n1 := netip.MustParseAddr("58.32.0.2")
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: []netip.Addr{n1}})
	c.HandleMessage(n1, &wire.HandshakeAck{Channel: 1, Accepted: true})
	env.take()

	seq := c.active.buffer.StartSeq()
	c.HandleMessage(n1, &wire.Have{Channel: 1, Seq: seq, Count: 2})
	nb := c.active.neighbors[akey(n1)]
	if !nb.covers(seq, env.Now(), testChannel().Rate()) || !nb.covers(seq+1, env.Now(), testChannel().Rate()) {
		t.Error("Have hint not recorded as coverage")
	}

	// Receiving fresh data triggers outgoing Have hints.
	c.HandleMessage(sourceAddr, &wire.DataReply{Channel: 1, Seq: seq, Count: 1, PieceLen: 1380})
	hints := 0
	for _, m := range env.take() {
		if m.msg.Kind() == wire.THave {
			hints++
		}
	}
	if hints == 0 {
		t.Error("fresh data produced no Have hints")
	}
}

func TestLatencySwapReplacesWorstNeighbor(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	cfg := testConfig()
	cfg.MaxNeighbors = 2
	c := newClient(t, env, cfg)
	join(t, env, c)
	env.take()

	// Fill the table with two neighbors; give them measured RTTs.
	slow := netip.MustParseAddr("60.0.0.2")
	fast := netip.MustParseAddr("58.32.0.2")
	for _, a := range []netip.Addr{slow, fast} {
		c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: []netip.Addr{a}})
		c.HandleMessage(a, &wire.HandshakeAck{Channel: 1, Accepted: true})
	}
	c.active.neighbors[akey(slow)].minRTT = 900 * time.Millisecond
	c.active.neighbors[akey(fast)].minRTT = 30 * time.Millisecond
	env.take()

	// A new candidate acks quickly: it must replace the slow neighbor.
	closer := netip.MustParseAddr("58.32.0.3")
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: []netip.Addr{closer}})
	env.Advance(20 * time.Millisecond)
	c.HandleMessage(closer, &wire.HandshakeAck{Channel: 1, Accepted: true})
	if _, ok := c.active.neighbors[akey(closer)]; !ok {
		t.Fatal("fast candidate not admitted")
	}
	if _, ok := c.active.neighbors[akey(slow)]; ok {
		t.Error("slow neighbor survived the swap")
	}
	if _, ok := c.active.neighbors[akey(fast)]; !ok {
		t.Error("fast neighbor was evicted instead")
	}
}

func TestLatencySwapDisabledRejectsWhenFull(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	cfg := testConfig()
	cfg.MaxNeighbors = 1
	cfg.LatencyBias = false
	c := newClient(t, env, cfg)
	join(t, env, c)
	first := netip.MustParseAddr("60.0.0.2")
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: []netip.Addr{first}})
	env.Advance(3 * time.Second) // deferred (ablated) handshake goes out
	c.HandleMessage(first, &wire.HandshakeAck{Channel: 1, Accepted: true})

	second := netip.MustParseAddr("58.32.0.2")
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: []netip.Addr{second}})
	env.Advance(3 * time.Second)
	c.HandleMessage(second, &wire.HandshakeAck{Channel: 1, Accepted: true})
	if _, ok := c.active.neighbors[akey(second)]; ok {
		t.Error("full table admitted newcomer with latency bias ablated")
	}
	if c.Stats().HandshakesRejected == 0 {
		t.Error("rejection not counted")
	}
}

func TestPushRecentDedupAndCap(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	cfg := testConfig()
	cfg.ReferralSize = 3
	c := newClient(t, env, cfg)
	s := newSession(c, testChannel())
	a := netip.MustParseAddr("10.0.0.1")
	b := netip.MustParseAddr("10.0.0.2")
	d := netip.MustParseAddr("10.0.0.3")
	e := netip.MustParseAddr("10.0.0.4")
	s.pushRecent(a)
	s.pushRecent(b)
	s.pushRecent(a) // dedup: moves to front
	if len(s.recent) != 2 || s.recent[0] != a || s.recent[1] != b {
		t.Fatalf("recent = %v, want [a b]", s.recent)
	}
	s.pushRecent(d)
	s.pushRecent(e) // cap 3: oldest (b) falls off
	if len(s.recent) != 3 || s.recent[0] != e || s.recent[1] != d || s.recent[2] != a {
		t.Fatalf("recent = %v, want [e d a]", s.recent)
	}
}

func TestStopAnnouncesLeaving(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	join(t, env, c)
	env.take()
	stopped := false
	c.SetOnStopped(func() { stopped = true })
	c.Stop()
	leaves := 0
	for _, m := range env.take() {
		if ta, ok := m.msg.(*wire.TrackerAnnounce); ok && ta.Leaving {
			leaves++
		}
	}
	if leaves != 5 {
		t.Errorf("leaving announces = %d, want 5", leaves)
	}
	if !stopped {
		t.Error("onStopped not invoked")
	}
	if c.Phase() != PhaseStopped {
		t.Errorf("phase = %v", c.Phase())
	}
	// Post-stop messages are ignored.
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: []netip.Addr{netip.MustParseAddr("1.2.3.4")}})
	if got := env.take(); len(got) != 0 {
		t.Errorf("stopped client sent %v", kinds(got))
	}
}

func TestRequestTimeoutExpiresAndPenalizes(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	join(t, env, c)
	n1 := netip.MustParseAddr("58.32.0.2")
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: []netip.Addr{n1}})
	c.HandleMessage(n1, &wire.HandshakeAck{Channel: 1, Accepted: true})
	bits := make([]byte, 256)
	for i := range bits {
		bits[i] = 0xff
	}
	c.HandleMessage(n1, &wire.BufferMapAnnounce{Channel: 1, Buffer: wire.BufferMapFromBytes(c.active.buffer.StartSeq(), bits)})
	env.take()
	env.Advance(time.Second)
	env.take()

	nb := c.active.neighbors[akey(n1)]
	sentRequests := len(nb.outstanding)
	if sentRequests == 0 {
		t.Fatal("no outstanding requests to expire")
	}
	env.Advance(10 * time.Second) // well past RequestTimeout
	if len(nb.outstanding) != 0 && c.Stats().RequestTimeouts == 0 {
		t.Error("requests never expired")
	}
	if c.Stats().RequestTimeouts == 0 {
		t.Error("timeouts not counted")
	}
	if c.active.outstandingTotal < 0 {
		t.Errorf("outstandingTotal went negative: %d", c.active.outstandingTotal)
	}
}

// TestPendingHandshakesExpire guards against the pending-window clog: if
// handshakes to departed peers never expired, MaxPending unanswered attempts
// would permanently stop neighbor acquisition.
func TestPendingHandshakesExpire(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	cfg := testConfig()
	cfg.MaxPending = 3
	cfg.ConnectFanout = 3
	c := newClient(t, env, cfg)
	join(t, env, c)
	env.take()

	// Three handshakes to peers that will never answer.
	dead := []netip.Addr{
		netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("10.0.0.2"),
		netip.MustParseAddr("10.0.0.3"),
	}
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: dead})
	if len(c.active.pending) != 3 {
		t.Fatalf("pending = %d, want full window", len(c.active.pending))
	}
	// A fresh candidate cannot be tried while the window is clogged.
	env.take()
	alive := netip.MustParseAddr("58.32.0.2")
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: []netip.Addr{alive}})
	if got := env.sentTo(alive); len(got) != 0 {
		t.Fatalf("handshake sent despite full pending window: %v", got)
	}

	// After the gossip tick passes HandshakeTimeout, the window clears and
	// new candidates are tried again.
	env.Advance(cfg.HandshakeTimeout + cfg.GossipInterval + time.Second)
	if len(c.active.pending) != 0 {
		t.Fatalf("pending = %d after expiry, want 0", len(c.active.pending))
	}
	if c.Stats().HandshakeTimeouts != 3 {
		t.Errorf("HandshakeTimeouts = %d, want 3", c.Stats().HandshakeTimeouts)
	}
	env.take()
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: []netip.Addr{alive}})
	if got := env.sentTo(alive); len(got) != 1 || got[0].Kind() != wire.THandshake {
		t.Errorf("no handshake after window cleared: %v", got)
	}
}

func TestWrongChannelIgnored(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	join(t, env, c)
	env.take()
	asker := netip.MustParseAddr("58.32.0.5")
	c.HandleMessage(asker, &wire.DataRequest{Channel: 99, Seq: 0, Count: 1})
	c.HandleMessage(asker, &wire.PeerListRequest{Channel: 99})
	c.HandleMessage(asker, &wire.Handshake{Channel: 99})
	if got := env.sentTo(asker); len(got) != 0 {
		t.Errorf("wrong-channel messages answered: %v", got)
	}
}
