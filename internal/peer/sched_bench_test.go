package peer

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/stream"
	"pplivesim/internal/wire"
)

// benchSwarm builds a client in steady playback with nbs connected neighbors
// whose buffer maps densely (but not fully) cover the want window, so a
// scheduler tick does full-sized, representative work: ~MaxOutstanding wanted
// sequences, urgent and non-urgent, with most sequences covered by most
// neighbors.
func benchSwarm(tb testing.TB, nbs, batch int) (*fakeEnv, *Client) {
	tb.Helper()
	env := newFakeEnv("58.32.0.1")
	env.now = 10 * time.Minute
	cfg := DefaultConfig(stream.DefaultSpec(1, "bench", 100), bootstrapAddr)
	cfg.BatchCount = batch
	cfg.MaxNeighbors = nbs
	c, err := New(env, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	c.Start()
	c.HandleMessage(bootstrapAddr, &wire.ChannelListResponse{
		Channels: []wire.ChannelInfo{{ID: 1, Name: "bench"}},
	})
	c.HandleMessage(bootstrapAddr, &wire.PlaylinkResponse{
		Channel:  1,
		Source:   sourceAddr,
		Trackers: trackerAddrs,
	})
	env.take()

	// One minute into playback.
	env.now += cfg.StartupDelay + time.Minute
	now := env.now
	c.active.buffer.AdvanceTo(now)
	ph := c.active.buffer.Playhead()

	// Each neighbor announces ~85% coverage of [ph-64, ph+1472), which spans
	// the whole want window; distinct scores so the argmin scan does real work.
	const mapBits = 1536
	mapRng := rand.New(rand.NewSource(99))
	for i := 0; i < nbs; i++ {
		a := netip.AddrFrom4([4]byte{10, 1, byte(i / 250), byte(1 + i%250)})
		bits := make([]byte, mapBits/8)
		for j := range bits {
			bits[j] = byte(mapRng.Intn(256) | mapRng.Intn(256))
		}
		nb := c.active.addNeighbor(a, wire.BufferMapFromBytes(ph-64, bits))
		nb.score = time.Duration(50+13*i%400) * time.Millisecond
		nb.minRTT = nb.score / 2
	}
	return env, c
}

// resetSched reverts a tick's bookkeeping (outstanding requests and in-flight
// coverage) so every benchmark iteration schedules the same full batch.
func resetSched(c *Client) {
	for _, nb := range c.active.neighbors {
		for len(nb.outstanding) > 0 {
			c.active.clearOutstanding(nb, len(nb.outstanding)-1)
		}
	}
}

// BenchmarkScheduler measures one full scheduler tick: playhead advance,
// request expiry, want computation, shuffle, provider selection, and request
// bookkeeping, with the wire send stubbed out (emitRequest hook) so the
// number isolates scheduling cost. Reported ns/op includes the per-iteration
// state reset (clearing ~MaxOutstanding bookkeeping entries), which is the
// same work a reply burst performs in a real run.
func BenchmarkScheduler(b *testing.B) {
	for _, bc := range []struct {
		nbs, batch int
	}{
		{16, 1},
		{60, 1},
		{60, 8},
	} {
		b.Run(fmt.Sprintf("nbs=%d/batch=%d", bc.nbs, bc.batch), func(b *testing.B) {
			_, c := benchSwarm(b, bc.nbs, bc.batch)
			reqs := 0
			c.emitRequest = func(netip.Addr, uint64, int) { reqs++ }
			c.active.schedulerTick() // warm scratch state
			if reqs == 0 {
				b.Fatal("scheduler tick issued no requests")
			}
			resetSched(c)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.active.schedulerTick()
				resetSched(c)
			}
		})
	}
}

// BenchmarkPickProvider measures provider selection for one tick's worth of
// wanted sequences (urgent head in deadline order, shuffled tail), without
// request bookkeeping. One op = assigning every wanted sequence.
func BenchmarkPickProvider(b *testing.B) {
	for _, nbs := range []int{16, 60} {
		b.Run(fmt.Sprintf("nbs=%d", nbs), func(b *testing.B) {
			env, c := benchSwarm(b, nbs, 1)
			now := env.now
			c.active.buffer.AdvanceTo(now)
			budget := c.cfg.MaxOutstanding * c.cfg.BatchCount
			limit := c.active.buffer.Playhead() + uint64(c.cfg.FetchLead.Seconds()*c.cfg.Channel.Rate())
			want := c.active.buffer.AppendWant(nil, now, budget, limit, nil)
			if len(want) == 0 {
				b.Fatal("no wanted sequences")
			}
			urgentBound := c.active.buffer.Playhead() + uint64(2*c.cfg.Channel.Rate())
			var sink *neighbor
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.active.buildSchedPlan(want[0], want[len(want)-1], now)
				for _, seq := range want {
					if nb := c.active.pickProvider(seq, now, seq < urgentBound); nb != nil {
						sink = nb
					}
				}
			}
			_ = sink
		})
	}
}
