package peer

import "math/rand"

// bitRand batches the scheduler's randomness: one Uint64 draw from the
// environment RNG refills a 64-bit reservoir that is then consumed 16 or 32
// bits at a time. The per-tick want loop makes two probability checks and up
// to two index draws per sequence; pulling each from the generator costs a
// full 64-bit generation step (and, under math/rand's Float64/Intn, extra
// arithmetic and a rejection loop), so batching cuts generator calls by 2-4×
// on the hottest path in the simulation. The reservoir is consumed from the
// high bits down, so draw order is a pure function of the refill sequence and
// replays identically under the reference-replay test.
type bitRand struct {
	bits uint64
	n    uint // bits remaining in the reservoir
}

// take returns the next w bits (w ≤ 32), refilling the reservoir from rng
// when fewer than w bits remain. Leftover bits at a refill boundary are
// discarded rather than stitched across words, keeping every draw a
// contiguous slice of a single Uint64.
func (r *bitRand) take(rng *rand.Rand, w uint) uint32 {
	if r.n < w {
		r.bits = rng.Uint64()
		r.n = 64
	}
	v := uint32(r.bits >> (64 - w))
	r.bits <<= w
	r.n -= w
	return v
}

// chance reports true with probability p16/65536, consuming 16 bits.
// p16 = 65536 (from a probability ≥ 1.0) is always true.
func (r *bitRand) chance(rng *rand.Rand, p16 uint32) bool {
	return r.take(rng, 16) < p16
}

// intn returns a uniform index in [0, k), consuming 32 bits. It uses the
// multiply-shift range reduction without a rejection pass: for the scheduler's
// k ≤ 128 candidate sets the bias is below 2^-25 per draw — far beneath
// anything the experiments can observe — and skipping rejection keeps the
// consumed bit count fixed, which the deterministic replay tests rely on.
func (r *bitRand) intn(rng *rand.Rand, k int) int {
	return int(uint64(r.take(rng, 32)) * uint64(k) >> 32)
}

// prob16 quantizes a probability to the 16-bit scale chance consumes.
func prob16(p float64) uint32 {
	if p >= 1 {
		return 1 << 16
	}
	if p <= 0 {
		return 0
	}
	return uint32(p*65536 + 0.5)
}

// exploreP16 is pickProvider's ε-greedy exploration share (8%) on the 16-bit
// scale: round(0.08 × 65536) = 5243, i.e. an effective ε of 0.080002.
const exploreP16 = 5243
