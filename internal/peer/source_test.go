package peer

import (
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/wire"
)

func newSource(t *testing.T) (*fakeEnv, *Source) {
	t.Helper()
	env := newFakeEnv("58.32.9.9")
	src, err := NewSource(env, testChannel())
	if err != nil {
		t.Fatal(err)
	}
	return env, src
}

func TestNewSourceValidation(t *testing.T) {
	env := newFakeEnv("58.32.9.9")
	bad := testChannel()
	bad.BitrateBps = 0
	if _, err := NewSource(env, bad); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestSourceHasTracksLiveEdge(t *testing.T) {
	env, src := newSource(t)
	if !src.Has(0, env.Now()) {
		t.Error("source lacks sequence 0 at start")
	}
	future := uint64(testChannel().Rate()*100) + 10
	if src.Has(future, env.Now()) {
		t.Error("source claims a piece not yet emitted")
	}
	env.Advance(101 * time.Second)
	if !src.Has(future, env.Now()) {
		t.Error("source lacks an emitted piece")
	}
}

func TestSourceServesDataPrefixRun(t *testing.T) {
	env, src := newSource(t)
	env.Advance(10 * time.Second)
	client := netip.MustParseAddr("58.32.0.1")
	src.HandleMessage(client, &wire.DataRequest{Channel: 1, Seq: 0, Count: 4})
	got := env.sentTo(client)
	if len(got) != 1 {
		t.Fatalf("source sent %d messages", len(got))
	}
	reply, ok := got[0].(*wire.DataReply)
	if !ok || reply.Count != 4 || reply.Seq != 0 {
		t.Fatalf("reply = %#v", got[0])
	}
	served, bytes := src.Stats()
	if served != 1 || bytes != uint64(4*testChannel().SubPieceLen) {
		t.Errorf("stats = %d served %d bytes", served, bytes)
	}
}

func TestSourceTruncatesRunAtEdge(t *testing.T) {
	env, src := newSource(t)
	env.Advance(time.Second) // edge ≈ 36
	edge := src.edge(env.Now())
	client := netip.MustParseAddr("58.32.0.1")
	src.HandleMessage(client, &wire.DataRequest{Channel: 1, Seq: edge - 1, Count: 10})
	got := env.sentTo(client)
	if len(got) != 1 {
		t.Fatalf("source sent %d messages", len(got))
	}
	reply, ok := got[0].(*wire.DataReply)
	if !ok {
		t.Fatalf("reply = %T", got[0])
	}
	if reply.Count != 2 { // edge-1 and edge
		t.Errorf("reply count = %d, want truncation to 2 at live edge", reply.Count)
	}
}

func TestSourceIgnoresFutureRequest(t *testing.T) {
	env, src := newSource(t)
	client := netip.MustParseAddr("58.32.0.1")
	src.HandleMessage(client, &wire.DataRequest{Channel: 1, Seq: 1 << 40, Count: 1})
	if got := env.sentTo(client); len(got) != 0 {
		t.Errorf("future request answered: %v", got)
	}
}

func TestSourceShedsWhenBacklogged(t *testing.T) {
	env, src := newSource(t)
	env.Advance(10 * time.Second)
	env.backlog = 5 * time.Second
	client := netip.MustParseAddr("58.32.0.1")
	src.HandleMessage(client, &wire.DataRequest{Channel: 1, Seq: 0, Count: 1})
	// Shedding must be explicit: a tiny Busy reply lets the requester
	// reschedule at once instead of burning a request timeout (a silent
	// drop here is what let the saturated source death-spiral the swarm).
	got := env.sentTo(client)
	if len(got) != 1 {
		t.Fatalf("backlogged source sent %d messages, want 1 busy reply", len(got))
	}
	reply, ok := got[0].(*wire.DataReply)
	if !ok || !reply.Busy || reply.Count != 0 {
		t.Errorf("reply = %#v, want empty Busy DataReply", got[0])
	}
	if src.shed != 1 {
		t.Errorf("shed counter = %d", src.shed)
	}
}

func TestSourceHandshakeAckCoversEdgeWindow(t *testing.T) {
	env, src := newSource(t)
	env.Advance(2 * time.Minute)
	client := netip.MustParseAddr("58.32.0.1")
	src.HandleMessage(client, &wire.Handshake{Channel: 1})
	got := env.sentTo(client)
	if len(got) != 1 {
		t.Fatalf("handshake produced %d messages", len(got))
	}
	ack, ok := got[0].(*wire.HandshakeAck)
	if !ok || !ack.Accepted {
		t.Fatalf("ack = %#v", got[0])
	}
	edge := src.edge(env.Now())
	if !ack.Buffer.Has(edge) {
		t.Error("ack map misses the live edge")
	}
	if !ack.Buffer.Has(edge - 1000) {
		t.Error("ack map misses recent history")
	}
	if ack.Buffer.Has(edge + 100) {
		t.Error("ack map claims unemitted pieces")
	}
}

func TestSourceReferralOfRecentClients(t *testing.T) {
	env, src := newSource(t)
	a := netip.MustParseAddr("58.32.0.1")
	b := netip.MustParseAddr("58.32.0.2")
	src.HandleMessage(a, &wire.Handshake{Channel: 1})
	src.HandleMessage(b, &wire.Handshake{Channel: 1})
	env.take()
	src.HandleMessage(a, &wire.PeerListRequest{Channel: 1})
	got := env.sentTo(a)
	if len(got) != 1 {
		t.Fatalf("list request produced %d messages", len(got))
	}
	reply, ok := got[0].(*wire.PeerListReply)
	if !ok {
		t.Fatalf("reply = %T", got[0])
	}
	if len(reply.Peers) != 1 || reply.Peers[0] != b {
		t.Errorf("referral = %v, want [b] (requester excluded)", reply.Peers)
	}
}

func TestSourceIgnoresWrongChannel(t *testing.T) {
	env, src := newSource(t)
	client := netip.MustParseAddr("58.32.0.1")
	src.HandleMessage(client, &wire.DataRequest{Channel: 99, Seq: 0, Count: 1})
	src.HandleMessage(client, &wire.Handshake{Channel: 99})
	if got := env.sentTo(client); len(got) != 0 {
		t.Errorf("wrong-channel messages answered: %v", got)
	}
}

// TestSourceShedsSustainedOverload drives the source through a sustained
// uplink overload: every request during the episode must get an explicit Busy
// reply (never a silent drop, never real service that would deepen the
// backlog), and normal service must resume the moment the backlog drains.
func TestSourceShedsSustainedOverload(t *testing.T) {
	env, src := newSource(t)
	env.Advance(30 * time.Second)
	client := netip.MustParseAddr("58.32.0.1")

	env.backlog = 5 * time.Second
	const rounds = 20
	for i := 0; i < rounds; i++ {
		env.Advance(time.Second)
		src.HandleMessage(client, &wire.DataRequest{Channel: 1, Seq: uint64(i), Count: 1})
	}
	replies := env.sentTo(client)
	if len(replies) != rounds {
		t.Fatalf("source sent %d replies over the overload episode, want %d (one Busy each)", len(replies), rounds)
	}
	for i, m := range replies {
		r, ok := m.(*wire.DataReply)
		if !ok || !r.Busy || r.Count != 0 {
			t.Fatalf("reply %d = %#v, want empty Busy DataReply", i, m)
		}
	}
	if served, bytes := src.Stats(); served != 0 || bytes != 0 {
		t.Errorf("served %d requests (%d bytes) while overloaded, want 0", served, bytes)
	}
	if src.shed != rounds {
		t.Errorf("shed counter = %d, want %d", src.shed, rounds)
	}
	env.take()

	// Backlog drained: the very next request is served for real.
	env.backlog = 0
	src.HandleMessage(client, &wire.DataRequest{Channel: 1, Seq: 100, Count: 1})
	got := env.sentTo(client)
	if len(got) != 1 {
		t.Fatalf("recovered source sent %d replies, want 1", len(got))
	}
	if r := got[0].(*wire.DataReply); r.Busy || r.Count != 1 {
		t.Errorf("post-recovery reply = %#v, want real data", got[0])
	}
	if served, _ := src.Stats(); served != 1 {
		t.Errorf("served = %d after recovery, want 1", served)
	}
}

// TestSourceDownDropsEverything covers the crash fault: a downed source
// answers nothing — data, handshakes, pings — and resumes cleanly on recovery.
func TestSourceDownDropsEverything(t *testing.T) {
	env, src := newSource(t)
	env.Advance(10 * time.Second)
	client := netip.MustParseAddr("58.32.0.1")

	src.SetDown(true)
	src.HandleMessage(client, &wire.DataRequest{Channel: 1, Seq: 0, Count: 1})
	src.HandleMessage(client, &wire.Handshake{Channel: 1})
	src.HandleMessage(client, &wire.Ping{Channel: 1, Nonce: 7})
	if got := env.sentTo(client); len(got) != 0 {
		t.Fatalf("downed source replied: %v", kinds(env.take()))
	}

	src.SetDown(false)
	src.HandleMessage(client, &wire.DataRequest{Channel: 1, Seq: 0, Count: 1})
	got := env.sentTo(client)
	if len(got) != 1 {
		t.Fatalf("recovered source sent %d replies, want 1", len(got))
	}
	if r := got[0].(*wire.DataReply); r.Busy || r.Count != 1 {
		t.Errorf("post-recovery reply = %#v, want real data", got[0])
	}
}

// TestSourcePongsKeepalive: the source answers keepalive pings so resilient
// clients never false-positive it as dead while it is merely idle.
func TestSourcePongsKeepalive(t *testing.T) {
	env, src := newSource(t)
	client := netip.MustParseAddr("58.32.0.1")
	src.HandleMessage(client, &wire.Ping{Channel: 1, Nonce: 42})
	got := env.sentTo(client)
	if len(got) != 1 {
		t.Fatalf("ping produced %d replies, want 1", len(got))
	}
	pong, ok := got[0].(*wire.Pong)
	if !ok || pong.Nonce != 42 || pong.Channel != 1 {
		t.Errorf("reply = %#v, want Pong nonce 42", got[0])
	}
	// Wrong-channel pings are ignored.
	env.take()
	src.HandleMessage(client, &wire.Ping{Channel: 9, Nonce: 1})
	if got := env.sentTo(client); len(got) != 0 {
		t.Errorf("wrong-channel ping answered: %v", got)
	}
}
