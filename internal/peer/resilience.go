package peer

import (
	"net/netip"
	"time"

	"pplivesim/internal/wire"
)

// Hardening layer (cfg.Resilience): retry backoff, keepalive failure
// detection, tracker outage backoff, and source-failure degradation. Every
// path here is dormant unless Resilience.Enabled — the benign trajectory
// (events sent, RNG draws, timers armed) must stay bit-identical to a build
// without this file, which the pinned golden digests enforce. Deliberate
// randomness (retry jitter) is hash-derived from stable keys, never drawn
// from the session RNG, so chaos runs stay worker-count invariant too.

// trackerHealth tracks one tracker's query outcomes for outage backoff.
type trackerHealth struct {
	pending      bool // a query went out and no response has arrived
	failStreak   int
	backoffUntil time.Duration
}

// resilient reports whether the hardening layer is enabled.
func (s *session) resilient() bool { return s.cfg.Resilience.Enabled }

// splitmix64 is the finalizer of the splitmix64 generator: a cheap stateless
// mix for deterministic jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// backoffDelay returns the capped exponential delay for the given consecutive
// failure streak plus a deterministic jitter in [0, delay/4], derived from
// the (key, streak) pair so simultaneous failures across many peers do not
// retry in lockstep.
func backoffDelay(base, maxDelay time.Duration, streak int, key uint32) time.Duration {
	d := base
	for i := 1; i < streak && d < maxDelay; i++ {
		d *= 2
	}
	if d > maxDelay {
		d = maxDelay
	}
	j := splitmix64(uint64(key)<<32 | uint64(uint32(streak)))
	return d + time.Duration(j%uint64(d/4+1))
}

// keepaliveTick pings neighbors that have gone quiet and evicts the ones that
// stayed silent through the ping window — detecting crashed neighbors in
// ~KeepaliveDead instead of the long gossip silence bound. Armed only for
// resilient sessions (handlePlaylink).
func (s *session) keepaliveTick() {
	if s.buffer == nil {
		return
	}
	now := s.env.Now()
	r := &s.cfg.Resilience
	victims := s.evictScratch[:0]
	for _, nb := range s.sortedNbs {
		idle := now - nb.lastHeard
		if idle > r.KeepaliveDead && nb.lastPing > nb.lastHeard {
			// Pinged since we last heard from it and still nothing: dead.
			victims = append(victims, nb.addr)
			continue
		}
		if idle >= r.KeepaliveIdle && now-nb.lastPing >= r.KeepaliveInterval {
			nb.lastPing = now
			s.c.stats.PingsSent++
			s.env.Send(nb.addr, &wire.Ping{Channel: s.spec.Channel, Nonce: uint32(now / time.Millisecond)})
		}
	}
	for _, a := range victims {
		s.c.stats.KeepaliveEvictions++
		s.dropNeighbor(a)
		// A keepalive eviction is positive evidence of death, not mere
		// silence: purge the peer from the referral source too, so it is
		// never handed out in future peer-list replies.
		s.forgetRecent(a)
	}
	s.evictScratch = victims[:0]
	// A shrunken mesh cannot wait for the periodic tracker round: re-announce
	// and re-query immediately (per-tracker backoff still applies, so a dead
	// tracker is not hammered).
	if len(victims) > 0 && len(s.sortedNbs) < r.ReannounceFloor {
		s.announceTrackers(false)
		s.queryTrackers()
	}
}

func (s *session) handlePing(from netip.Addr, m *wire.Ping) {
	if s.buffer == nil {
		return
	}
	if nb, ok := s.neighbors[akey(from)]; ok {
		nb.lastHeard = s.env.Now()
	}
	s.env.Send(from, &wire.Pong{Channel: m.Channel, Nonce: m.Nonce})
}

func (s *session) handlePong(from netip.Addr, m *wire.Pong) {
	if nb, ok := s.neighbors[akey(from)]; ok {
		nb.lastHeard = s.env.Now()
	}
}

// sourceSuspect reports whether the source has missed enough consecutive
// requests to be presumed down.
func (s *session) sourceSuspect() bool {
	return s.resilient() && s.srcFails >= s.cfg.Resilience.SourceFailThreshold
}

// optimisticFallback picks the best-scored available neighbor whose
// extrapolated live edge plausibly covers seq, ignoring the proven-coverage
// rule. Used only for urgent pieces while the source is suspect: a wrong
// guess costs a tiny no-have reply, stalling costs playback — and it re-opens
// inter-ISP paths that locality concentration had idled, which is exactly the
// degraded-mode behaviour the locality-vs-resilience experiments measure.
func (s *session) optimisticFallback(seq uint64, now time.Duration) *neighbor {
	rate := s.spec.Rate()
	for _, key := range s.planOrder {
		nb := s.sortedNbs[int(key&1023)]
		if len(nb.outstanding) >= s.cfg.MaxOutstandingPerNeighbor || nb.backoffUntil > now {
			continue
		}
		if !nb.bufferAny {
			continue
		}
		est := nb.bufferMax + uint64(float64(now-nb.bufferAt)*rate/float64(time.Second))
		if est >= seq {
			return nb
		}
	}
	return nil
}
