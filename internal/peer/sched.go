package peer

import (
	"math/bits"
	"slices"
	"time"
)

// Scheduler plan.
//
// Each scheduler tick precomputes, once, every neighbor's coverage of the
// tick's want range as 64-bit words, then bit-transposes them so that the
// candidate set for one sequence is a single word: a neighbor bitmask that
// pickProvider intersects with a per-group eligibility mask. This replaces
// the old O(want × neighbors) per-sequence scan with O(neighbors × words)
// gathers plus O(words) 64×64 transposes per tick, and a couple of word
// operations per pick.
//
// Masks use descending bit order: neighbor i (in sortedNbs order) occupies
// bit 63-i of its group's mask, so ascending neighbor order — the order the
// old scan iterated, which the ε-greedy RNG draws depend on — is a
// LeadingZeros64 walk. Neighbor sets beyond 64 spill into additional groups.

// resizeU64 returns a slice of length n, reusing s's storage when possible.
func resizeU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// transpose64 transposes a 64×64 bit matrix in place (Hacker's Delight 7-3,
// widened to 64 bits): afterwards, a[63-b] bit 63-i equals the original a[i]
// bit b.
func transpose64(a *[64]uint64) {
	j := uint(32)
	m := uint64(0x00000000FFFFFFFF)
	for ; j != 0; j, m = j>>1, m^(m<<(j>>1)) {
		for k := 0; k < 64; k = (k + int(j) + 1) &^ int(j) {
			t := (a[k] ^ (a[k+int(j)] >> j)) & m
			a[k] ^= t
			a[k+int(j)] ^= t << j
		}
	}
}

// buildSchedPlan precomputes candidate masks for want sequences in
// [first, last]. Neighbor buffer state cannot change inside a tick (the
// simulation is single-threaded and message handling never interleaves with
// the scheduler), so the plan stays valid for the whole assignment loop;
// only eligibility evolves, tracked in planElig by planNoteSent.
func (s *session) buildSchedPlan(first, last uint64, now time.Duration) {
	nbs := s.sortedNbs
	org := first &^ 63
	W := int((last-org)/64) + 1
	G := (len(nbs) + 63) / 64
	if G == 0 {
		G = 1
	}
	s.planOrg, s.planWords, s.planGroups = org, W, G

	s.planRows = resizeU64(s.planRows, G*64*W)
	s.planCand = resizeU64(s.planCand, G*W*64)
	s.planElig = resizeU64(s.planElig, G)

	rows := s.planRows
	for i := 0; i < G*64; i++ {
		row := rows[i*W : (i+1)*W]
		if i < len(nbs) {
			nb := nbs[i]
			nb.planIdx = i
			for w := 0; w < W; w++ {
				row[w] = nb.buffer.WordAt(org + uint64(w)*64)
			}
		} else {
			for w := range row {
				row[w] = 0
			}
		}
	}

	for g := 0; g < G; g++ {
		var elig uint64
		for i := g * 64; i < (g+1)*64 && i < len(nbs); i++ {
			// backoffUntil is only ever non-zero under cfg.Resilience: a
			// neighbor in timeout backoff is ineligible for the whole tick.
			if len(nbs[i].outstanding) < s.cfg.MaxOutstandingPerNeighbor && nbs[i].backoffUntil <= now {
				elig |= 1 << (63 - uint(i-g*64))
			}
		}
		s.planElig[g] = elig
	}

	var mtx [64]uint64
	for g := 0; g < G; g++ {
		for w := 0; w < W; w++ {
			for i := 0; i < 64; i++ {
				mtx[i] = rows[(g*64+i)*W+w]
			}
			transpose64(&mtx)
			out := s.planCand[(g*W+w)*64 : (g*W+w+1)*64]
			for b := 0; b < 64; b++ {
				out[b] = mtx[63-b]
			}
		}
	}

	// Scores are constant within a tick, so the greedy argmin reduces to
	// "first neighbor, in (score, index) order, whose candidate bit is set" —
	// usually satisfied on the first probe when coverage is dense. Keys pack
	// the score above the index (10 bits, enough for the table's 2*MaxNeighbors
	// bound) so a plain integer sort yields exactly the strict-< argmin order
	// of the retired scan, ties broken by ascending neighbor index.
	s.planOrder = resizeU64(s.planOrder, len(nbs))
	for i, nb := range nbs {
		s.planOrder[i] = uint64(score(nb))<<10 | uint64(i)
	}
	slices.Sort(s.planOrder)
}

// planNoteSent updates the eligibility mask after a request was booked on nb.
func (s *session) planNoteSent(nb *neighbor) {
	if nb.planIdx < 0 || len(nb.outstanding) < s.cfg.MaxOutstandingPerNeighbor {
		return
	}
	g, i := nb.planIdx/64, uint(nb.planIdx%64)
	s.planElig[g] &^= 1 << (63 - i)
}

// pickProvider chooses a neighbor to serve sub-piece seq, which must lie in
// the range the current plan was built for.
//
// With PreferFastNeighbors, selection is ε-greedy over the inverse of the
// observed service-time EWMA: mostly the fastest covering neighbor, with an
// 8% exploration share spread across the others. This is the
// performance-driven concentration that produces the paper's
// stretched-exponential request distribution (§3.4) and the negative
// rank–RTT correlation (§3.5). The source is a last resort — except for
// urgent pieces, which only go to neighbors whose buffer map proves
// possession. Candidate sets, iteration order, and the batched RNG draw
// order (see bitRand) are bit-identical to the retired per-sequence neighbor
// scan (guarded by TestPickProviderMatchesReference and the core
// golden-digest test).
func (s *session) pickProvider(seq uint64, now time.Duration, urgent bool) *neighbor {
	_ = now // coverage is proven-only; no extrapolation against the clock
	off := seq - s.planOrg
	w, b := int(off/64), int(off%64)
	stride := s.planWords * 64
	k := 0
	for g := 0; g < s.planGroups; g++ {
		k += bits.OnesCount64(s.planCand[g*stride+w*64+b] & s.planElig[g])
	}
	if k == 0 {
		// Urgent pieces fall back to the source unconditionally. Non-urgent
		// pieces may prefetch from the source with small probability: this
		// seeds each fresh piece into a few peers, and the mesh (buffer
		// maps + referral clusters) spreads it from there. Without the
		// seeding nobody holds new pieces early and the source degenerates
		// into a CDN at deadline time.
		if !urgent && !s.rbits.chance(s.env.Rand(), s.c.prefetch16) {
			return nil
		}
		// CDN edges absorb the miss before the origin: walk the playlink's
		// affinity order (same-ISP edges first) past any edge in busy/timeout
		// hold-off. Only when no edge can take the request does the pick fall
		// through to the source — edge-before-source, always.
		if nb := s.pickEdge(now); nb != nil {
			return nb
		}
		// With the source suspect, mostly route around it — an optimistic
		// mesh fallback instead of stalling on a dead server — but let every
		// SourceProbeEvery-th pick through so recovery is noticed promptly.
		if s.sourceSuspect() {
			s.srcProbeCounter++
			if s.srcProbeCounter%s.cfg.Resilience.SourceProbeEvery != 0 {
				if nb := s.optimisticFallback(seq, now); nb != nil {
					return nb
				}
			}
		}
		if src, ok := s.neighbors[akey(s.source)]; ok && len(src.outstanding) < s.cfg.MaxOutstandingPerNeighbor {
			return src
		}
		return nil
	}
	rng := s.env.Rand()
	if !s.cfg.PreferFastNeighbors {
		return s.nthPlanCandidate(w, b, s.rbits.intn(rng, k))
	}
	// ε-greedy: explore uniformly 8% of the time.
	if s.rbits.chance(rng, exploreP16) {
		return s.nthPlanCandidate(w, b, s.rbits.intn(rng, k))
	}
	for _, key := range s.planOrder {
		i := int(key & 1023)
		if s.planCand[(i>>6)*stride+w*64+b]&s.planElig[i>>6]&(1<<(63-uint(i&63))) != 0 {
			return s.sortedNbs[i]
		}
	}
	return nil // unreachable: k > 0 guarantees a probe hits
}

// pickEdge returns the first usable CDN edge in the session's affinity
// order: connected (not purged), not in busy/timeout hold-off, and with a
// free outstanding slot. Nil when no edges are deployed or none qualify —
// one nil-slice check on the pure-P2P path.
func (s *session) pickEdge(now time.Duration) *neighbor {
	for _, e := range s.edges {
		nb, ok := s.neighbors[akey(e)]
		if !ok {
			continue
		}
		if nb.backoffUntil > now || len(nb.outstanding) >= s.cfg.MaxOutstandingPerNeighbor {
			continue
		}
		return nb
	}
	return nil
}

// nthPlanCandidate returns the j-th (0-based) eligible covering neighbor for
// the plan cell (w, b), in ascending neighbor order.
func (s *session) nthPlanCandidate(w, b, j int) *neighbor {
	stride := s.planWords * 64
	for g := 0; g < s.planGroups; g++ {
		m := s.planCand[g*stride+w*64+b] & s.planElig[g]
		n := bits.OnesCount64(m)
		if j >= n {
			j -= n
			continue
		}
		for {
			i := bits.LeadingZeros64(m)
			if j == 0 {
				return s.sortedNbs[g*64+i]
			}
			j--
			m &^= 1 << (63 - uint(i))
		}
	}
	return nil
}
