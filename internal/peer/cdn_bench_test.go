package peer

import (
	"fmt"
	"net/netip"
	"testing"

	"pplivesim/internal/wire"
)

// addBenchEdges installs n CDN edges into a benchSwarm session the way the
// playlink handler does: affinity order, edge-set membership, pseudo-neighbor
// entries (set membership first, so addNeighbor keeps them out of the mesh).
func addBenchEdges(c *Client, n int) {
	s := c.active
	s.edgeSet = make(map[uint32]bool, n)
	for i := 0; i < n; i++ {
		a := netip.AddrFrom4([4]byte{61, 200, 0, byte(1 + i)})
		s.edges = append(s.edges, a)
		s.edgeSet[akey(a)] = true
		s.addNeighbor(a, wire.BufferMap{})
	}
}

// BenchmarkCDNUrgentMiss measures the urgent-miss fallback in pickProvider —
// the only scheduling path the CDN integration touches. edges=0 is the
// pure-P2P configuration every legacy scenario runs: the edge hook must be a
// nil-slice check costing nothing (the bench-compare gate and
// TestCDNIdleHooksZeroAlloc hold it to zero allocations). edges=3 adds the
// affinity-order walk a hybrid deployment pays on the same miss.
func BenchmarkCDNUrgentMiss(b *testing.B) {
	for _, edges := range []int{0, 3} {
		b.Run(fmt.Sprintf("edges=%d", edges), func(b *testing.B) {
			env, c := benchSwarm(b, 60, 1)
			addBenchEdges(c, edges)
			s := c.active
			now := env.now
			// One sequence past every neighbor's buffer map: k == 0, so the
			// pick walks the miss chain (edges, then the source).
			seq := s.buffer.Playhead() + 1500
			s.buildSchedPlan(seq, seq, now)
			nb := s.pickProvider(seq, now, true)
			if nb == nil {
				b.Fatal("urgent miss found no provider")
			}
			if edges == 0 && nb.addr != sourceAddr {
				b.Fatalf("idle-CDN urgent miss picked %v, want the source", nb.addr)
			}
			if edges > 0 && !s.isEdge(nb.addr) {
				b.Fatalf("urgent miss with edges picked %v, want an edge", nb.addr)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.pickProvider(seq, now, true)
			}
		})
	}
}

// TestCDNIdleHooksZeroAlloc pins the idle-CDN cost contract the benchmark
// measures: with no edges deployed, the urgent-miss path through the edge
// hook allocates nothing.
func TestCDNIdleHooksZeroAlloc(t *testing.T) {
	env, c := benchSwarm(t, 16, 1)
	s := c.active
	now := env.now
	seq := s.buffer.Playhead() + 1500
	s.buildSchedPlan(seq, seq, now) // warm the plan scratch
	if got := testing.AllocsPerRun(200, func() {
		s.buildSchedPlan(seq, seq, now)
		if s.pickProvider(seq, now, true) == nil {
			t.Fatal("urgent miss found no provider")
		}
	}); got != 0 {
		t.Errorf("idle CDN urgent-miss path allocates %.1f per op, want 0", got)
	}
}
