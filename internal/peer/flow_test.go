package peer

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/stream"
	"pplivesim/internal/wire"
)

// flowTestPort records swarm output without touching a network. The
// zero-alloc tick test swaps in countPort below, which allocates nothing.
type flowTestPort struct {
	now      time.Duration
	backlog  time.Duration
	sent     []flowSent
	retired  []int
	respawns int
}

type flowSent struct {
	member int
	to     netip.Addr
	msg    wire.Message
}

func (p *flowTestPort) Now() time.Duration { return p.now }
func (p *flowTestPort) Send(i int, to netip.Addr, msg wire.Message) {
	p.sent = append(p.sent, flowSent{member: i, to: to, msg: msg})
}
func (p *flowTestPort) UplinkBacklog(int) time.Duration { return p.backlog }
func (p *flowTestPort) Retire(i int)                    { p.retired = append(p.retired, i) }
func (p *flowTestPort) Respawn(time.Duration)           { p.respawns++ }

func flowTestSpec() stream.Spec { return stream.DefaultSpec(1, "flow-test", 500) }

func newTestSwarm(t *testing.T, port *flowTestPort, members int) *FlowSwarm {
	t.Helper()
	cfg := DefaultFlowConfig(flowTestSpec())
	s, err := NewFlowSwarm(cfg, port, rand.New(rand.NewSource(1)), nil, members)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < members; i++ {
		s.Add(netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}))
	}
	return s
}

func probeAddr() netip.Addr { return netip.AddrFrom4([4]byte{192, 0, 2, 1}) }

func (p *flowTestPort) lastMsg(t *testing.T) wire.Message {
	t.Helper()
	if len(p.sent) == 0 {
		t.Fatal("no message sent")
	}
	return p.sent[len(p.sent)-1].msg
}

func TestFlowSwarmHandshakeAndBufferMap(t *testing.T) {
	// Members join at t=0 (flow swarms spawn fully formed); the probe shows
	// up two minutes in, once holdings exist.
	port := &flowTestPort{}
	s := newTestSwarm(t, port, 4)
	port.now = 2 * time.Minute
	spec := flowTestSpec()

	s.Handle(0, probeAddr(), &wire.Handshake{Channel: spec.Channel})
	ack, ok := port.lastMsg(t).(*wire.HandshakeAck)
	if !ok || !ack.Accepted {
		t.Fatalf("handshake not accepted: %#v", port.lastMsg(t))
	}
	lo, hi, held := s.holdings(0, port.now)
	if !held {
		t.Fatal("member 0 should hold pieces two minutes in")
	}
	for _, seq := range []uint64{lo, (lo + hi) / 2, hi} {
		if !ack.Buffer.Has(seq) {
			t.Errorf("ack buffer map missing held seq %d (holdings [%d,%d])", seq, lo, hi)
		}
	}
	if ack.Buffer.Has(hi + 1) {
		t.Errorf("ack buffer map claims unheld seq %d", hi+1)
	}
	edge := spec.EdgeSeq(port.now)
	if hi >= edge {
		t.Errorf("newest held %d not behind live edge %d", hi, edge)
	}

	// A second handshake from the same probe reuses the link; a dead member
	// never answers.
	links := len(s.links)
	s.Handle(0, probeAddr(), &wire.Handshake{Channel: spec.Channel})
	if len(s.links) != links {
		t.Errorf("repeat handshake grew the link table: %d -> %d", links, len(s.links))
	}
	s.retire(1)
	n := len(port.sent)
	s.Handle(1, probeAddr(), &wire.Handshake{Channel: spec.Channel})
	if len(port.sent) != n {
		t.Error("retired member answered a handshake")
	}
}

func TestFlowSwarmDataRequestSemantics(t *testing.T) {
	port := &flowTestPort{}
	s := newTestSwarm(t, port, 2)
	port.now = 2 * time.Minute
	spec := flowTestSpec()
	s.Handle(0, probeAddr(), &wire.Handshake{Channel: spec.Channel})
	lo, hi, _ := s.holdings(0, port.now)

	// Held run: reply echoes Seq with the contiguous run capped at Count.
	s.Handle(0, probeAddr(), &wire.DataRequest{Channel: spec.Channel, Seq: lo, Count: 4})
	rep := port.lastMsg(t).(*wire.DataReply)
	if rep.Seq != lo || rep.Count != 4 || rep.Busy {
		t.Fatalf("serve reply = %+v, want seq %d count 4", rep, lo)
	}
	if rep.PieceLen != uint16(spec.SubPieceLen) {
		t.Errorf("piece len %d, want %d", rep.PieceLen, spec.SubPieceLen)
	}

	// The run is truncated at the newest held piece.
	s.Handle(0, probeAddr(), &wire.DataRequest{Channel: spec.Channel, Seq: hi, Count: 8})
	if rep := port.lastMsg(t).(*wire.DataReply); rep.Count != 1 {
		t.Errorf("run past newest held = %d, want 1", rep.Count)
	}

	// A miss declines with Count 0 and piggybacks one rate-limited
	// buffer-map announce on the link.
	port.now += 2 * time.Second
	s.Handle(0, probeAddr(), &wire.DataRequest{Channel: spec.Channel, Seq: hi + 100, Count: 1})
	last := port.sent[len(port.sent)-2:]
	if rep := last[0].msg.(*wire.DataReply); rep.Count != 0 || rep.Busy {
		t.Fatalf("miss reply = %+v, want count 0 not busy", rep)
	}
	if _, ok := last[1].msg.(*wire.BufferMapAnnounce); !ok {
		t.Fatalf("miss should piggyback a buffer map, got %T", last[1].msg)
	}
	n := len(port.sent)
	s.Handle(0, probeAddr(), &wire.DataRequest{Channel: spec.Channel, Seq: hi + 100, Count: 1})
	if got := len(port.sent) - n; got != 1 {
		t.Errorf("immediate second miss sent %d messages, want 1 (announce is rate-limited)", got)
	}

	// Uplink pressure sheds with Busy.
	port.backlog = 10 * time.Second
	s.Handle(0, probeAddr(), &wire.DataRequest{Channel: spec.Channel, Seq: lo, Count: 1})
	if rep := port.lastMsg(t).(*wire.DataReply); !rep.Busy || rep.Count != 0 {
		t.Errorf("backlogged reply = %+v, want busy decline", rep)
	}
}

func TestFlowSwarmChurnAndKill(t *testing.T) {
	port := &flowTestPort{}
	cfg := DefaultFlowConfig(flowTestSpec())
	cfg.MeanSession = 100 * time.Second
	cfg.ReplacementDelay = 5 * time.Second
	s, err := NewFlowSwarm(cfg, port, rand.New(rand.NewSource(2)), nil, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s.Add(netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)}))
	}
	// 50 seconds at mean session 100s: about half the population departs,
	// each departure requesting exactly one replacement.
	for step := 0; step < 50; step++ {
		port.now += time.Second
		s.Tick(port.now)
	}
	if got := len(port.retired); got < 60 || got > 140 {
		t.Errorf("departures after 50s/100s mean = %d, want ~100", got)
	}
	if port.respawns != len(port.retired) {
		t.Errorf("respawns %d != departures %d", port.respawns, len(port.retired))
	}
	if s.Alive() != 200-len(port.retired) {
		t.Errorf("alive %d, want %d", s.Alive(), 200-len(port.retired))
	}

	// Kill-churn retires without replacement, and recycled rows rejoin.
	before := s.Alive()
	killed := s.KillFraction(0.5)
	if killed == 0 || s.Alive() != before-killed {
		t.Fatalf("killed %d, alive %d (was %d)", killed, s.Alive(), before)
	}
	if port.respawns != len(port.retired)-killed {
		t.Errorf("kill must not respawn: respawns %d, departures %d, killed %d", port.respawns, len(port.retired), killed)
	}
	rows := s.Len()
	i := s.Add(netip.AddrFrom4([4]byte{10, 2, 0, 1}))
	if s.Len() != rows {
		t.Errorf("rejoin allocated a new row (len %d -> %d), want recycled", rows, s.Len())
	}
	if !s.alive[i] {
		t.Error("rejoined member not alive")
	}
}

func TestFlowSwarmTrackerAnnounceSample(t *testing.T) {
	port := &flowTestPort{}
	cfg := DefaultFlowConfig(flowTestSpec())
	cfg.TrackerSample = 3
	trackers := []netip.Addr{
		netip.AddrFrom4([4]byte{198, 51, 100, 1}),
		netip.AddrFrom4([4]byte{198, 51, 100, 2}),
	}
	s, err := NewFlowSwarm(cfg, port, rand.New(rand.NewSource(3)), trackers, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Add(netip.AddrFrom4([4]byte{10, 3, 0, byte(i)}))
	}
	s.AnnounceTrackers()
	if len(port.sent) != 3 {
		t.Fatalf("announced %d members, want sample of 3", len(port.sent))
	}
	for k, m := range port.sent {
		if _, ok := m.msg.(*wire.TrackerAnnounce); !ok {
			t.Fatalf("sent %T, want TrackerAnnounce", m.msg)
		}
		if m.to != trackers[k%len(trackers)] {
			t.Errorf("announce %d went to %s, want rotation over the tracker set", k, m.to)
		}
	}
}

// countPort is a FlowPort that allocates nothing, for the alloc gate.
type countPort struct {
	now      time.Duration
	retired  int
	respawns int
}

func (p *countPort) Now() time.Duration                 { return p.now }
func (p *countPort) Send(int, netip.Addr, wire.Message) {}
func (p *countPort) UplinkBacklog(int) time.Duration    { return 0 }
func (p *countPort) Retire(int)                         { p.retired++ }
func (p *countPort) Respawn(time.Duration)              { p.respawns++ }

// TestFlowTickZeroAlloc is the CI gate on the SoA design: advancing a
// churning swarm allocates nothing, no matter how many members it has.
func TestFlowTickZeroAlloc(t *testing.T) {
	port := &countPort{}
	cfg := DefaultFlowConfig(flowTestSpec())
	cfg.MeanSession = 30 * time.Minute
	cfg.ReplacementDelay = 30 * time.Second
	s, err := NewFlowSwarm(cfg, port, rand.New(rand.NewSource(4)), nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		s.Add(netip.AddrFrom4([4]byte{10, 4, byte(i >> 8), byte(i)}))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		port.now += time.Second
		s.Tick(port.now)
	})
	if allocs != 0 {
		t.Errorf("flow tick allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkFlowTick(b *testing.B) {
	port := &countPort{}
	cfg := DefaultFlowConfig(flowTestSpec())
	cfg.MeanSession = 30 * time.Minute
	cfg.ReplacementDelay = 30 * time.Second
	s, err := NewFlowSwarm(cfg, port, rand.New(rand.NewSource(5)), nil, 100000)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		s.Add(netip.AddrFrom4([4]byte{10, byte(5 + i>>16), byte(i >> 8), byte(i)}))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		port.now += time.Second
		s.Tick(port.now)
	}
}
