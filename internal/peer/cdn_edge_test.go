package peer

import (
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/wire"
)

var (
	edgeAddr1 = netip.MustParseAddr("61.200.0.1")
	edgeAddr2 = netip.MustParseAddr("60.200.0.1")
)

// joinWithEdges walks a client through the bootstrap flow with a playlink
// that lists CDN edges in affinity order.
func joinWithEdges(t *testing.T, env *fakeEnv, c *Client, edges []netip.Addr) {
	t.Helper()
	c.Start()
	env.take()
	c.HandleMessage(bootstrapAddr, &wire.ChannelListResponse{
		Channels: []wire.ChannelInfo{{ID: 1, Name: "test"}},
	})
	env.take()
	c.HandleMessage(bootstrapAddr, &wire.PlaylinkResponse{
		Channel:  1,
		Source:   sourceAddr,
		Trackers: trackerAddrs,
		Edges:    edges,
	})
	if c.Phase() != PhaseStartup {
		t.Fatalf("phase after playlink = %v, want startup", c.Phase())
	}
}

// TestEdgesArePseudoNeighbors checks the structural contract: edges live in
// the neighbor table (so replies and timeouts are tracked) but never in the
// sorted mesh order, the referral memory, or the gossip pool — exactly like
// the source.
func TestEdgesArePseudoNeighbors(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	joinWithEdges(t, env, c, []netip.Addr{edgeAddr1, edgeAddr2})
	s := c.active

	for _, e := range []netip.Addr{edgeAddr1, edgeAddr2} {
		if _, ok := s.neighbors[akey(e)]; !ok {
			t.Errorf("edge %v missing from the neighbor table", e)
		}
		if !s.isEdge(e) {
			t.Errorf("isEdge(%v) = false", e)
		}
	}
	for _, nb := range s.sortedNbs {
		if s.isEdge(nb.addr) {
			t.Errorf("edge %v leaked into the sorted mesh order", nb.addr)
		}
	}
	for _, a := range s.recent {
		if s.isEdge(a) {
			t.Errorf("edge %v leaked into the referral memory", a)
		}
	}
	for _, a := range s.sortedNeighborAddrs() {
		if s.isEdge(a) {
			t.Errorf("edge %v leaked into the gossip pool", a)
		}
	}

	// A neighbor asking for referrals must never be handed infrastructure.
	asker := netip.MustParseAddr("60.0.0.9")
	c.HandleMessage(asker, &wire.PeerListRequest{Channel: 1})
	for _, m := range env.sentTo(asker) {
		if reply, ok := m.(*wire.PeerListReply); ok {
			for _, p := range reply.Peers {
				if s.isEdge(p) {
					t.Errorf("referral reply leaked edge %v", p)
				}
			}
		}
	}
}

// TestEdgeFallbackOrdering drives the urgent-miss path: no mesh neighbor
// covers the piece, so the pick walks edge→edge→source. A Busy reply from an
// edge puts it in a deterministic hold-off, moving the walk to the next edge
// and finally the origin; when the hold-off lapses the first edge is
// preferred again.
func TestEdgeFallbackOrdering(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	joinWithEdges(t, env, c, []netip.Addr{edgeAddr1, edgeAddr2})
	s := c.active

	env.now = 10 * time.Second
	seq := s.spec.EdgeSeq(env.now) // urgent piece at the live edge
	pick := func() netip.Addr {
		s.buildSchedPlan(seq, seq, env.now)
		nb := s.pickProvider(seq, env.now, true)
		if nb == nil {
			t.Fatal("urgent pick returned nil with edges and source available")
		}
		return nb.addr
	}

	if got := pick(); got != edgeAddr1 {
		t.Fatalf("first urgent pick = %v, want first affinity edge %v", got, edgeAddr1)
	}

	// Edge 1 sheds: walk on to edge 2.
	c.HandleMessage(edgeAddr1, &wire.DataReply{Channel: 1, Seq: seq, Count: 0, Busy: true, PieceLen: uint16(s.spec.SubPieceLen)})
	if got := pick(); got != edgeAddr2 {
		t.Fatalf("pick after edge1 Busy = %v, want %v", got, edgeAddr2)
	}

	// Edge 2 sheds too: only then does the origin take the request.
	c.HandleMessage(edgeAddr2, &wire.DataReply{Channel: 1, Seq: seq, Count: 0, Busy: true, PieceLen: uint16(s.spec.SubPieceLen)})
	if got := pick(); got != sourceAddr {
		t.Fatalf("pick with both edges busy = %v, want source %v", got, sourceAddr)
	}

	// Hold-off lapses: the first edge absorbs urgent misses again.
	env.now += edgeBusyHoldoff + time.Millisecond
	seq = s.spec.EdgeSeq(env.now)
	if got := pick(); got != edgeAddr1 {
		t.Fatalf("pick after hold-off = %v, want %v", got, edgeAddr1)
	}
}

// TestCrashedEdgePurged checks the timeout path: after edgeFailThreshold
// consecutive expiry rounds the edge is evicted from the affinity order, the
// edge set, and the neighbor table, and urgent picks fall back to the source.
func TestCrashedEdgePurged(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	joinWithEdges(t, env, c, []netip.Addr{edgeAddr1})
	s := c.active

	env.now = 10 * time.Second
	for round := 0; round < edgeFailThreshold; round++ {
		nb, ok := s.neighbors[akey(edgeAddr1)]
		if !ok {
			t.Fatalf("edge gone after %d rounds, want eviction only at %d", round, edgeFailThreshold)
		}
		seq := s.spec.EdgeSeq(env.now)
		s.sendDataRequest(nb, seq, 1, env.now)
		env.now += s.cfg.RequestTimeout + time.Second
		s.expireRequests(env.now)
		// Step past the timeout backoff so the next round's streak grows
		// instead of the edge just sitting ineligible.
		env.now += edgeBackoffMax
	}

	if len(s.edges) != 0 {
		t.Errorf("edges after purge = %v, want none", s.edges)
	}
	if s.isEdge(edgeAddr1) {
		t.Error("purged edge still in edge set")
	}
	if _, ok := s.neighbors[akey(edgeAddr1)]; ok {
		t.Error("purged edge still in neighbor table")
	}

	seq := s.spec.EdgeSeq(env.now)
	s.buildSchedPlan(seq, seq, env.now)
	nb := s.pickProvider(seq, env.now, true)
	if nb == nil || nb.addr != sourceAddr {
		t.Errorf("urgent pick after purge = %v, want source %v", nb, sourceAddr)
	}
}

// TestEdgeRecoveryResetsStreak checks that one successful reply clears the
// failure streak: a flaky edge that answers between timeouts is never purged.
func TestEdgeRecoveryResetsStreak(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	joinWithEdges(t, env, c, []netip.Addr{edgeAddr1})
	s := c.active

	env.now = 10 * time.Second
	for round := 0; round < 2*edgeFailThreshold; round++ {
		nb := s.neighbors[akey(edgeAddr1)]
		seq := s.spec.EdgeSeq(env.now)
		s.sendDataRequest(nb, seq, 1, env.now)
		env.now += s.cfg.RequestTimeout + time.Second
		s.expireRequests(env.now)
		// The edge comes back with a real reply: streak resets.
		c.HandleMessage(edgeAddr1, &wire.DataReply{Channel: 1, Seq: seq, Count: 1, PieceLen: uint16(s.spec.SubPieceLen)})
		if nb.failStreak != 0 {
			t.Fatalf("round %d: streak = %d after a successful reply, want 0", round, nb.failStreak)
		}
	}
	if len(s.edges) != 1 {
		t.Errorf("flaky-but-alive edge was purged")
	}
}
