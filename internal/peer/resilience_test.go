package peer

import (
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/wire"
)

func resilientConfig() Config {
	cfg := testConfig()
	cfg.Resilience = DefaultResilience()
	return cfg
}

// addPeerNeighbor walks the tracker-list → handshake → ack flow for one peer.
func addPeerNeighbor(t *testing.T, env *fakeEnv, c *Client, addr string) netip.Addr {
	t.Helper()
	a := netip.MustParseAddr(addr)
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1, Peers: []netip.Addr{a}})
	c.HandleMessage(a, &wire.HandshakeAck{Channel: 1, Accepted: true})
	if _, ok := c.active.neighbors[akey(a)]; !ok {
		t.Fatalf("peer %s did not become a neighbor", addr)
	}
	env.take()
	return a
}

func TestKeepalivePingsQuietNeighbors(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, resilientConfig())
	join(t, env, c)
	env.take()
	peerAddr := addPeerNeighbor(t, env, c, "58.32.0.2")

	// KeepaliveIdle (10s) of silence: the next tick pings.
	env.Advance(11 * time.Second)
	pings := 0
	for _, m := range env.sentTo(peerAddr) {
		if m.Kind() == wire.TPing {
			pings++
		}
	}
	if pings == 0 {
		t.Fatal("no keepalive ping after idle window")
	}
	if c.Stats().PingsSent == 0 {
		t.Error("PingsSent not counted")
	}
	env.take()

	// A pong refreshes liveness: no eviction however long the peer stays
	// otherwise silent, as long as it keeps answering pings.
	for i := 0; i < 4; i++ {
		c.HandleMessage(peerAddr, &wire.Pong{Channel: 1, Nonce: 1})
		env.Advance(10 * time.Second)
	}
	if _, ok := c.active.neighbors[akey(peerAddr)]; !ok {
		t.Error("pong-answering neighbor was evicted")
	}
	if c.Stats().KeepaliveEvictions != 0 {
		t.Errorf("KeepaliveEvictions = %d, want 0", c.Stats().KeepaliveEvictions)
	}
}

// TestKeepaliveEvictsDeadNeighborTeardown pins the full teardown of an
// evicted dead neighbor: no entry in the neighbor table or sorted order, no
// scheduler-plan row, no pending retransmit state (outstanding requests and
// their in-flight marks), and an immediate tracker re-announce when the mesh
// shrinks below the floor. A late reply from the dead address must not
// resurrect anything.
func TestKeepaliveEvictsDeadNeighborTeardown(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	cfg := resilientConfig()
	// Off-align the keepalive cadence from the 250ms scheduler grid so the
	// eviction tick is the last thing that runs before the assertions below —
	// no scheduler pass can touch the in-flight set after the teardown.
	cfg.Resilience.KeepaliveInterval = 5100 * time.Millisecond
	c := newClient(t, env, cfg)
	join(t, env, c)
	env.take()
	peerAddr := addPeerNeighbor(t, env, c, "58.32.0.2")

	s := c.active

	// Silence through the ping at 10.2s; the 15.3s tick finds the neighbor
	// dead (idle > 15s, pinged since last heard). Park just before it and
	// leave a live outstanding request so eviction — not expiry — must tear
	// down the retransmit state.
	env.Advance(15200 * time.Millisecond)
	if c.Stats().PingsSent == 0 {
		t.Fatal("no ping before the dead window")
	}
	nb := s.neighbors[akey(peerAddr)]
	seq := s.buffer.Playhead() + 5
	s.sendDataRequest(nb, seq, 1, env.Now())
	if !s.inFlight(seq) {
		t.Fatal("request not marked in flight")
	}
	env.take()
	env.Advance(150 * time.Millisecond) // 15.3s keepalive tick fires last

	if c.Stats().KeepaliveEvictions != 1 {
		t.Fatalf("KeepaliveEvictions = %d, want 1", c.Stats().KeepaliveEvictions)
	}
	if _, ok := s.neighbors[akey(peerAddr)]; ok {
		t.Error("evicted neighbor still in the table")
	}
	for _, other := range s.sortedNbs {
		if other.addr == peerAddr {
			t.Error("evicted neighbor still in sorted order")
		}
	}
	if nb.planIdx != -1 {
		t.Errorf("evicted neighbor planIdx = %d, want -1", nb.planIdx)
	}
	if len(nb.outstanding) != 0 {
		t.Errorf("evicted neighbor keeps %d outstanding requests", len(nb.outstanding))
	}
	if s.inFlight(seq) {
		t.Error("evicted neighbor's request still marked in flight")
	}

	// The mesh fell below ReannounceFloor: the eviction re-announces to every
	// tracker immediately (the periodic announce cadence is 60s, so these can
	// only come from the eviction path). The paired re-query round queries the
	// one tracker that answered during setup and backs off the four still
	// pending from the join round.
	announces, queries := 0, 0
	for _, m := range env.take() {
		switch m.msg.Kind() {
		case wire.TTrackerAnnounce:
			announces++
		case wire.TTrackerQuery:
			queries++
		}
	}
	if announces != 5 {
		t.Errorf("tracker announces after eviction = %d, want 5 (one per tracker)", announces)
	}
	if queries != 1 {
		t.Errorf("eviction re-query sent %d queries, want 1 (only the healthy tracker)", queries)
	}
	if c.Stats().TrackerFailures != 4 {
		t.Errorf("TrackerFailures = %d, want 4 (the four silent trackers)", c.Stats().TrackerFailures)
	}

	// Late reply from the dead address: dropped, nothing resurrected.
	c.HandleMessage(peerAddr, &wire.DataReply{Channel: 1, Seq: seq, Count: 1, PieceLen: 1380})
	if _, ok := s.neighbors[akey(peerAddr)]; ok {
		t.Error("late reply resurrected the evicted neighbor")
	}
}

func TestRequestTimeoutBackoffExcludesAndRecovers(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, resilientConfig())
	join(t, env, c)
	env.take()
	peerAddr := addPeerNeighbor(t, env, c, "58.32.0.2")

	s := c.active
	nb := s.neighbors[akey(peerAddr)]
	now := env.Now()
	seq := s.buffer.Playhead() + 3
	s.sendDataRequest(nb, seq, 1, now)

	// Expire past RequestTimeout: streak starts, backoff armed, retransmit
	// slot freed so the sequence re-enters the want set.
	expiry := now + s.cfg.RequestTimeout + time.Millisecond
	s.expireNeighbor(nb, expiry)
	if nb.failStreak != 1 {
		t.Fatalf("failStreak = %d, want 1", nb.failStreak)
	}
	if nb.backoffUntil <= expiry {
		t.Fatal("no backoff armed after request timeout")
	}
	if s.inFlight(seq) {
		t.Error("timed-out request still in flight (would block retransmission)")
	}

	// While backed off, the scheduler plan marks the neighbor ineligible.
	s.buildSchedPlan(seq, seq, expiry)
	if s.planElig[0]&(1<<63) != 0 {
		t.Error("backed-off neighbor still eligible in the plan")
	}
	s.buildSchedPlan(seq, seq, nb.backoffUntil+1)
	if s.planElig[0]&(1<<63) == 0 {
		t.Error("neighbor still ineligible after backoff expiry")
	}

	// Any reply proves liveness and clears the penalty.
	c.HandleMessage(peerAddr, &wire.DataReply{Channel: 1, Seq: seq, Count: 1, PieceLen: 1380})
	if nb.failStreak != 0 || nb.backoffUntil != 0 {
		t.Errorf("reply did not reset backoff: streak=%d until=%s", nb.failStreak, nb.backoffUntil)
	}
}

func TestTrackerOutageBackoff(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, resilientConfig())
	join(t, env, c) // sends the first query round; all five now pending
	env.take()

	s := c.active
	base := c.Stats().TrackerQueries
	// Second round with nothing answered: every tracker is marked failed and
	// backed off — no queries go out.
	s.queryTrackers()
	if got := c.Stats().TrackerFailures; got != 5 {
		t.Fatalf("TrackerFailures = %d, want 5", got)
	}
	if got := c.Stats().TrackerQueries; got != base {
		t.Errorf("queries sent to backed-off trackers: %d new", got-base)
	}

	// One tracker answers: its health resets, and the next round queries it
	// again while the silent four stay backed off.
	c.HandleMessage(trackerAddrs[0], &wire.TrackerResponse{Channel: 1})
	env.take()
	s.queryTrackers()
	sent := env.take()
	if len(sent) != 1 || sent[0].to != trackerAddrs[0] {
		t.Fatalf("post-recovery round sent %d queries (first to %v), want 1 to the recovered tracker",
			len(sent), sent)
	}
}

func TestBackoffDelayShape(t *testing.T) {
	base, cap := 2*time.Second, 30*time.Second
	// Deterministic: same (streak, key) → same delay.
	if a, b := backoffDelay(base, cap, 3, 99), backoffDelay(base, cap, 3, 99); a != b {
		t.Fatalf("backoffDelay not deterministic: %s vs %s", a, b)
	}
	// Exponential growth capped at max, jitter within a quarter of the delay.
	prev := time.Duration(0)
	for streak := 1; streak <= 10; streak++ {
		d := backoffDelay(base, cap, streak, 7)
		raw := base << (streak - 1)
		if raw > cap {
			raw = cap
		}
		if d < raw || d > raw+raw/4 {
			t.Errorf("streak %d: delay %s outside [%s, %s]", streak, d, raw, raw+raw/4)
		}
		if d < prev/2 {
			t.Errorf("streak %d: delay %s collapsed from %s", streak, d, prev)
		}
		prev = d
	}
	// Different keys de-synchronize retries.
	if backoffDelay(base, cap, 5, 1) == backoffDelay(base, cap, 5, 2) {
		t.Error("jitter identical across keys (lockstep retries)")
	}
}

// TestResilienceDisabledStaysDormant guards the determinism contract at the
// protocol level: with the zero-value Resilience, no pings, no tracker
// health, no backoff state — the exact legacy message sequence.
func TestResilienceDisabledStaysDormant(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	join(t, env, c)
	env.take()
	peerAddr := addPeerNeighbor(t, env, c, "58.32.0.2")

	env.Advance(40 * time.Second)
	for _, m := range env.take() {
		if m.msg.Kind() == wire.TPing {
			t.Fatal("keepalive ping sent with resilience disabled")
		}
	}
	st := c.Stats()
	if st.PingsSent != 0 || st.KeepaliveEvictions != 0 || st.TrackerFailures != 0 {
		t.Errorf("resilience counters moved while disabled: %+v", st)
	}
	if c.active.trHealth != nil {
		t.Error("tracker health allocated while disabled")
	}
	nb := c.active.neighbors[akey(peerAddr)]
	if nb != nil && (nb.failStreak != 0 || nb.backoffUntil != 0 || nb.lastPing != 0) {
		t.Error("neighbor hardening state moved while disabled")
	}
}
