package peer

import (
	"fmt"
	"strings"
)

// Fidelity selects how much per-peer state the simulator keeps for the
// background population. Probes always run at full fidelity — the paper's
// measurements are probe-side — so the axis only governs the organic swarm
// around them.
type Fidelity int

const (
	// FidelityMixed (the default) is the behaviour every pinned golden digest
	// was recorded under: background viewers are full protocol Clients with
	// batched data transfer (BackgroundConfig), probes are full-fidelity
	// Clients.
	FidelityMixed Fidelity = iota
	// FidelityFull runs background viewers at probe fidelity (BatchCount 1),
	// equivalent to Behaviour.FullFidelityBackground; used by the fidelity
	// ablation.
	FidelityFull
	// FidelityFlow replaces background Clients with struct-of-arrays
	// FlowSwarm members: flat per-member rows, no per-peer goroutine-shaped
	// state, per-ISP traffic accounted at flow level. Probes remain full
	// Clients and the swarm answers their protocol traffic exactly, so the
	// probe-side methodology is unchanged. This is the million-peer mode.
	FidelityFlow
)

// fidelityNames is the canonical spelling of each level, in order.
var fidelityNames = [...]string{"mixed", "full", "flow"}

// String returns the flag spelling of the fidelity level.
func (f Fidelity) String() string {
	if f < 0 || int(f) >= len(fidelityNames) {
		return fmt.Sprintf("Fidelity(%d)", int(f))
	}
	return fidelityNames[f]
}

// Valid reports whether f is a defined fidelity level.
func (f Fidelity) Valid() bool { return f >= 0 && int(f) < len(fidelityNames) }

// ParseFidelity resolves a flag value to a fidelity level.
func ParseFidelity(s string) (Fidelity, error) {
	for i, name := range fidelityNames {
		if s == name {
			return Fidelity(i), nil
		}
	}
	return 0, fmt.Errorf("peer: unknown fidelity %q (have %s)", s, strings.Join(FidelityNames(), ", "))
}

// FidelityNames lists the accepted flag values, in definition order.
func FidelityNames() []string {
	out := make([]string, len(fidelityNames))
	copy(out, fidelityNames[:])
	return out
}
