// Package peer implements the PPLive-style live-streaming client whose
// emergent behaviour the paper measures, plus the channel's stream source.
//
// The client follows the protocol the paper reverse-engineered (§2):
//
//  1. Contact the bootstrap server for the channel list, then the chosen
//     channel's playlink and tracker set (one tracker per group).
//  2. Query trackers for active peers, pick a random subset of each returned
//     list, and connect immediately.
//  3. On every new connection, first ask the new neighbor for its peer list,
//     then request video data.
//  4. Gossip with connected neighbors every 20 seconds, enclosing its own
//     peer list; repliers return up to 60 recently connected peers.
//  5. Once playback is satisfactory, cut tracker queries to every 5 minutes;
//     discovery then flows almost entirely through neighbor referral.
//
// No topology information is used anywhere. Locality emerges from the
// decentralized latency-based referral dynamics, which is the paper's
// central finding.
package peer

import (
	"fmt"
	"math/bits"
	"net/netip"
	"slices"
	"time"

	"pplivesim/internal/node"
	"pplivesim/internal/stream"
	"pplivesim/internal/wire"
)

// Phase is the client lifecycle stage.
type Phase int

// Lifecycle stages.
const (
	PhaseInit      Phase = iota + 1 // created, not started
	PhaseBootstrap                  // resolving channel list / playlink
	PhaseStartup                    // joined, filling the buffer
	PhaseSteady                     // playback satisfactory
	PhaseStopped                    // left the channel
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseInit:
		return "init"
	case PhaseBootstrap:
		return "bootstrap"
	case PhaseStartup:
		return "startup"
	case PhaseSteady:
		return "steady"
	case PhaseStopped:
		return "stopped"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// neighbor tracks one connected peer.
type neighbor struct {
	addr      netip.Addr
	connected time.Duration // when the connection was established
	lastHeard time.Duration
	buffer    wire.BufferMap
	bufferAt  time.Duration // when the buffer map was received
	bufferMax uint64        // highest piece set in the map
	bufferAny bool          // whether the map had any piece at all

	// outstanding holds the in-flight requests to this neighbor. The count is
	// capped (MaxOutstandingPerNeighbor) and small, so a flat slice with
	// linear lookup beats a map on every path that touches it.
	outstanding []pendingReq

	// planIdx is this neighbor's row in the current scheduler plan (see
	// sched.go), -1 when not part of it (the source, or before any tick).
	planIdx int

	// Service quality estimation. score is an EWMA of data response times;
	// minRTT is the fastest application-level response observed, the same
	// estimator the paper's analysis uses for proximity.
	score    time.Duration
	minRTT   time.Duration
	requests uint64
	replies  uint64
	bytes    uint64
}

// pendingReq tracks one outstanding data request (a batch of count
// consecutive sub-pieces starting at seq).
type pendingReq struct {
	seq   uint64
	at    time.Duration
	count int
}

// findOutstanding returns the index of the request keyed by seq, or -1.
func (nb *neighbor) findOutstanding(seq uint64) int {
	for i := range nb.outstanding {
		if nb.outstanding[i].seq == seq {
			return i
		}
	}
	return -1
}

// setBuffer stores a freshly announced buffer map, precomputing the highest
// announced piece for live-edge extrapolation.
func (nb *neighbor) setBuffer(bm wire.BufferMap, at time.Duration) {
	// Copy the bitmap: announce messages are shared across receivers in the
	// simulated transport, and learnHas mutates our view. The backing array
	// is reused across announce rounds.
	nb.buffer = wire.BufferMap{
		Start:   bm.Start,
		Words:   append(nb.buffer.Words[:0], bm.Words...),
		ByteLen: bm.ByteLen,
	}
	nb.bufferAt = at
	nb.bufferAny = false
	nb.bufferMax = 0
	for i := len(bm.Words) - 1; i >= 0; i-- {
		w := bm.Words[i]
		if w == 0 {
			continue
		}
		nb.bufferMax = bm.Start + uint64(i*64+bits.Len64(w)-1)
		nb.bufferAny = true
		break
	}
}

// knowledgeWindow is the coverage span (in sub-pieces) we track per
// neighbor when proofs outrun the announced map.
const knowledgeWindow = 2048

// learnHas records proof (a data reply or Have hint) that the neighbor held
// pieces [lo, hi], marking them into our view of its map. If the proof falls
// beyond the tracked window — hints race ahead of periodic announcements on
// a live stream — the window is re-anchored around the new high-water mark,
// preserving whatever old knowledge still overlaps. The new window leaves
// slack above hi so the re-anchor amortizes: at the live edge every fresh
// Have lands past the window end, and without slack each one would trigger
// a full rebuild.
func (nb *neighbor) learnHas(lo, hi uint64, at time.Duration) {
	if nb.buffer.Words == nil || hi >= nb.buffer.Start+nb.buffer.Window() {
		const slack = knowledgeWindow / 4
		start := uint64(0)
		if hi+1+slack > knowledgeWindow {
			// Keep start byte-aligned: the wire format's window granularity,
			// so re-anchoring never shifts which sequences the window can
			// describe relative to an announced map.
			start = (hi + 1 + slack - knowledgeWindow) &^ 7
		}
		fresh := wire.MakeBufferMap(start, knowledgeWindow)
		if nb.buffer.Words != nil {
			for w := range fresh.Words {
				fresh.Words[w] = nb.buffer.WordAt(start + uint64(w)*64)
			}
		}
		nb.buffer = fresh
	}
	nb.buffer.SetRange(lo, hi)
	if !nb.bufferAny || hi > nb.bufferMax {
		nb.bufferMax = hi
		nb.bufferAny = true
		nb.bufferAt = at
	}
}

// covers reports whether the neighbor is known to hold sub-piece seq:
// announced in its last buffer map or proven by a data reply since. Assumed
// (extrapolated) coverage is deliberately absent — swarms with holes turn
// optimism into decline storms; knowledge here is only what the neighbor
// actually demonstrated.
func (nb *neighbor) covers(seq uint64, _ time.Duration, _ float64) bool {
	return nb.buffer.Has(seq)
}

// akey packs an IPv4 address into the uint32 key used by the per-datagram
// maps. The simulation's address plan is IPv4-only; the zero Addr (source
// unset during bootstrap) folds to 0, which ipam never allocates.
func akey(a netip.Addr) uint32 {
	if !a.Is4() {
		return 0
	}
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Client is one PPLive-style peer.
type Client struct {
	env node.Env
	cfg Config

	phase    Phase
	source   netip.Addr
	trackers []netip.Addr
	buffer   *stream.Buffer

	// The per-datagram maps are keyed by the packed IPv4 address (akey):
	// hashing a 4-byte integer is several times cheaper than the 24-byte
	// netip.Addr struct, and these maps sit on every message's path.
	neighbors  map[uint32]*neighbor
	known      map[uint32]bool // every address ever learned
	candidates []netip.Addr    // not-yet-tried addresses (FIFO)

	// pending tracks outstanding handshakes as a small ordered slice: it is
	// bounded by cfg.MaxPending, so linear membership scans beat a map, and
	// slice iteration keeps expiry order deterministic where map range order
	// would not be.
	pending []pendingShake

	// evictScratch collects eviction victims before dropping them (dropping
	// mutates the sorted order mid-iteration); reused across gossip rounds.
	evictScratch []netip.Addr

	// recent is the referral source: most recently connected peers first,
	// deduplicated, capped at cfg.ReferralSize.
	recent []netip.Addr

	outstandingTotal int
	// inflight indexes every outstanding sequence as a sliding-window bit set
	// so the want scan can mask whole words out at once (the per-neighbor
	// outstanding maps hold the timing detail). Created on playlink, sized to
	// the buffer window plus the span requests can outlive it by (timeout
	// drift), per BitRing's aliasing precondition.
	inflight *stream.BitRing

	// sortedCache holds the connected non-source neighbor addresses in
	// address order, maintained incrementally on membership changes;
	// sortedNbs holds the corresponding neighbor pointers for the
	// scheduler's hot path.
	sortedCache []netip.Addr
	sortedNbs   []*neighbor

	// Scheduler-tick scratch state, reused every SchedInterval so the hot
	// path stays allocation-free.
	wantScratch []uint64

	// rbits batches the scheduler's RNG draws (see randbits.go); prefetch16
	// is cfg.SourcePrefetchProb quantized to the 16-bit scale it consumes.
	rbits      bitRand
	prefetch16 uint32

	// Per-tick scheduler plan (see sched.go): transposed candidate masks for
	// the tick's want range, plus the eligibility mask that evolves as
	// requests are booked.
	planOrg    uint64
	planWords  int
	planGroups int
	planRows   []uint64 // gather scratch: per group, 64 rows × planWords
	planCand   []uint64 // candidate masks, indexed (g*planWords + w)*64 + b
	planElig   []uint64 // per-group eligibility masks
	planOrder  []uint64 // neighbor indices sorted by (score, index)

	// lastMapTo rate-limits decline-triggered buffer-map piggybacks.
	lastMapTo map[uint32]time.Duration

	// emitRequest, when set, replaces the wire send for scheduled data
	// requests; benchmarks use it to measure scheduling cost without the
	// message-construction cost. All bookkeeping still runs.
	emitRequest func(to netip.Addr, seq uint64, count int)

	cancels      []node.Cancel
	trackerTimer node.Cancel

	stats Stats

	// onStopped, if set, runs after Stop completes (used by orchestration).
	onStopped func()
}

// Stats counts client-side protocol activity.
type Stats struct {
	TrackerQueries       uint64
	GossipSent           uint64
	GossipReplies        uint64
	ListsReceived        uint64
	AddrsLearned         uint64
	HandshakesSent       uint64
	HandshakesAccepted   uint64
	HandshakesRejected   uint64
	HandshakeTimeouts    uint64
	InboundAccepted      uint64
	InboundRejected      uint64
	DataRequestsSent     uint64
	DataRepliesGot       uint64
	DataNoHaves          uint64
	DataBusies           uint64
	DataBytesGot         uint64
	DataRequestsServed   uint64
	DataRequestsDeclined uint64
	DataRequestsShed     uint64
	RequestTimeouts      uint64
}

// New creates a client bound to env. Call Start to join the channel.
func New(env node.Env, cfg Config) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Client{
		env:        env,
		cfg:        cfg,
		phase:      PhaseInit,
		neighbors:  make(map[uint32]*neighbor),
		known:      make(map[uint32]bool),
		prefetch16: prob16(cfg.SourcePrefetchProb),
	}, nil
}

// pendingShake is one outstanding handshake.
type pendingShake struct {
	key uint32
	at  time.Duration
}

// pendingIdx returns the index of key in the pending window, or -1.
func (c *Client) pendingIdx(key uint32) int {
	for i := range c.pending {
		if c.pending[i].key == key {
			return i
		}
	}
	return -1
}

var _ node.Handler = (*Client)(nil)

// Phase returns the current lifecycle stage.
func (c *Client) Phase() Phase { return c.phase }

// Addr returns the client's address.
func (c *Client) Addr() netip.Addr { return c.env.Addr() }

// Stats returns a snapshot of protocol counters.
func (c *Client) Stats() Stats { return c.stats }

// BufferStats returns playback buffer counters (zero value before join).
func (c *Client) BufferStats() stream.Stats {
	if c.buffer == nil {
		return stream.Stats{}
	}
	return c.buffer.Stats()
}

// NumNeighbors returns the connected neighbor count.
func (c *Client) NumNeighbors() int { return len(c.neighbors) }

// Neighbors returns the connected neighbor addresses: the maintained sorted
// order plus the source, if connected. Iterating the neighbor map here would
// leak Go's randomized map order into caller behaviour.
func (c *Client) Neighbors() []netip.Addr {
	out := make([]netip.Addr, 0, len(c.neighbors))
	if c.source.IsValid() {
		if nb, ok := c.neighbors[akey(c.source)]; ok {
			out = append(out, nb.addr)
		}
	}
	out = append(out, c.sortedCache...)
	return out
}

// SetOnStopped registers a callback invoked after Stop.
func (c *Client) SetOnStopped(fn func()) { c.onStopped = fn }

// Start begins the join flow: contact the bootstrap server. In the real
// client this is preceded by DNS queries for the server addresses; the
// simulation provides the bootstrap address directly.
func (c *Client) Start() {
	if c.phase != PhaseInit {
		return
	}
	c.phase = PhaseBootstrap
	c.env.Send(c.cfg.Bootstrap, &wire.ChannelListRequest{})
	// Retry bootstrap contact until the playlink resolves.
	var retry func()
	retry = func() {
		if c.phase != PhaseBootstrap {
			return
		}
		c.env.Send(c.cfg.Bootstrap, &wire.ChannelListRequest{})
		c.cancels = append(c.cancels, c.env.After(2*time.Second, retry))
	}
	c.cancels = append(c.cancels, c.env.After(2*time.Second, retry))
}

// Stop leaves the channel: withdraw tracker announcements and disarm timers.
func (c *Client) Stop() {
	if c.phase == PhaseStopped {
		return
	}
	for _, tr := range c.trackers {
		c.env.Send(tr, &wire.TrackerAnnounce{Channel: c.cfg.Channel.Channel, Leaving: true})
	}
	for _, cancel := range c.cancels {
		cancel()
	}
	c.cancels = nil
	if c.trackerTimer != nil {
		c.trackerTimer()
		c.trackerTimer = nil
	}
	c.phase = PhaseStopped
	if c.onStopped != nil {
		c.onStopped()
	}
}

// HandleMessage implements node.Handler.
func (c *Client) HandleMessage(from netip.Addr, msg wire.Message) {
	if c.phase == PhaseStopped {
		return
	}
	switch m := msg.(type) {
	case *wire.ChannelListResponse:
		c.handleChannelList(m)
	case *wire.PlaylinkResponse:
		c.handlePlaylink(m)
	case *wire.TrackerResponse:
		c.handleTrackerResponse(m)
	case *wire.Handshake:
		c.handleHandshake(from, m)
	case *wire.HandshakeAck:
		c.handleHandshakeAck(from, m)
	case *wire.PeerListRequest:
		c.handlePeerListRequest(from, m)
	case *wire.PeerListReply:
		c.handlePeerListReply(from, m)
	case *wire.BufferMapAnnounce:
		c.handleBufferMap(from, m)
	case *wire.DataRequest:
		c.handleDataRequest(from, m)
	case *wire.DataReply:
		c.handleDataReply(from, m)
	case *wire.Have:
		c.handleHave(from, m)
	default:
	}
}

func (c *Client) handleChannelList(m *wire.ChannelListResponse) {
	if c.phase != PhaseBootstrap || c.buffer != nil {
		return
	}
	// The user picks the configured channel from the list; verify it exists.
	for _, info := range m.Channels {
		if info.ID == c.cfg.Channel.Channel {
			c.env.Send(c.cfg.Bootstrap, &wire.PlaylinkRequest{Channel: info.ID})
			return
		}
	}
}

func (c *Client) handlePlaylink(m *wire.PlaylinkResponse) {
	if c.phase != PhaseBootstrap || m.Channel != c.cfg.Channel.Channel {
		return
	}
	buf, err := stream.NewBuffer(c.cfg.Channel, c.env.Now(), c.cfg.StartupDelay, c.cfg.BufferWindow)
	if err != nil {
		// Config was validated in New; a failure here is a programming error.
		panic(fmt.Sprintf("peer: buffer: %v", err))
	}
	c.buffer = buf
	// In-flight sequences live between (playhead − timeout drift) and the
	// prefetch bound: expired requests linger up to RequestTimeout plus one
	// scheduler interval past the window, so size the ring for both.
	drift := int((c.cfg.RequestTimeout+c.cfg.SchedInterval).Seconds()*c.cfg.Channel.Rate()) + 64
	c.inflight = stream.NewBitRing(c.cfg.BufferWindow + drift)
	c.source = m.Source
	c.trackers = append([]netip.Addr(nil), m.Trackers...)
	c.phase = PhaseStartup

	c.announceTrackers(false)
	c.queryTrackers()
	c.scheduleTrackerQueries(c.cfg.TrackerIntervalStartup)

	c.cancels = append(c.cancels,
		c.env.Every(c.cfg.AnnounceInterval, func() { c.announceTrackers(false) }),
		c.env.Every(c.cfg.GossipInterval, c.gossip),
		c.env.Every(c.cfg.BufferMapInterval, c.announceBufferMap),
		c.env.Every(c.cfg.SchedInterval, c.schedulerTick),
	)

	// The source is always a data neighbor of last resort.
	c.addNeighbor(m.Source, wire.BufferMap{})
}

// scheduleTrackerQueries (re)installs the periodic tracker query at the given
// interval, replacing any previous schedule.
func (c *Client) scheduleTrackerQueries(interval time.Duration) {
	if c.trackerTimer != nil {
		c.trackerTimer()
	}
	c.trackerTimer = c.env.Every(interval, func() {
		c.queryTrackers()
		// Once playback is satisfactory, back off to the steady period
		// (the paper measures five minutes).
		if c.phase == PhaseSteady {
			c.scheduleTrackerQueries(c.cfg.TrackerIntervalSteady)
			c.phase = PhaseSteady
		}
	})
}

func (c *Client) announceTrackers(leaving bool) {
	for _, tr := range c.trackers {
		c.env.Send(tr, &wire.TrackerAnnounce{Channel: c.cfg.Channel.Channel, Leaving: leaving})
	}
}

func (c *Client) queryTrackers() {
	for _, tr := range c.trackers {
		c.stats.TrackerQueries++
		c.env.Send(tr, &wire.TrackerQuery{Channel: c.cfg.Channel.Channel})
	}
}

// gossip queries up to GossipFanout random neighbors for their peer lists,
// enclosing our own list, per the measured 20-second cadence.
func (c *Client) gossip() {
	if c.buffer == nil {
		return
	}
	// Housekeeping runs every round even when there is nobody to query:
	// silent-neighbor eviction, pending-handshake expiry, table trimming.
	c.evictSilent()
	c.trimNeighbors()
	c.maybeSteady()

	targets := c.sampleNeighbors(c.cfg.GossipFanout)
	if len(targets) == 0 {
		return
	}
	own := c.ownPeerList()
	for _, addr := range targets {
		c.stats.GossipSent++
		c.env.Send(addr, &wire.PeerListRequest{Channel: c.cfg.Channel.Channel, OwnPeers: own})
	}
}

// trimNeighbors prunes the table back toward MaxNeighbors. With latency
// bias the highest-RTT neighbors go first — the steady-state counterpart of
// the handshake race, and the mechanism that concentrates the table on
// nearby (in practice same-ISP) peers. With the bias ablated, pruning is
// random.
func (c *Client) trimNeighbors() {
	for len(c.sortedNeighbors()) > c.cfg.MaxNeighbors {
		var victim *neighbor
		if c.cfg.LatencyBias {
			victim = c.worstNeighbor()
		} else {
			pool := c.sortedNeighbors()
			victim = pool[c.env.Rand().Intn(len(pool))]
		}
		if victim == nil {
			return
		}
		c.dropNeighbor(victim.addr)
	}
}

// ownPeerList returns the list the client maintains (its recent neighbors),
// enclosed in gossip requests as the paper describes.
func (c *Client) ownPeerList() []netip.Addr {
	out := make([]netip.Addr, len(c.recent))
	copy(out, c.recent)
	return out
}

// sortedNeighborAddrs returns the connected non-source neighbor addresses in
// address order — it runs on the data scheduler's hot path. The order is
// maintained incrementally on add/drop (binary insert/remove) rather than
// re-sorted. Deterministic ordering keeps whole runs reproducible (map
// iteration order is randomized in Go). Callers must not mutate the returned
// slice.
func (c *Client) sortedNeighborAddrs() []netip.Addr {
	return c.sortedCache
}

// sortedInsert adds a non-source neighbor to the maintained order.
func (c *Client) sortedInsert(a netip.Addr, nb *neighbor) {
	i, found := slices.BinarySearchFunc(c.sortedCache, a, netip.Addr.Compare)
	if found {
		c.sortedNbs[i] = nb
		return
	}
	c.sortedCache = slices.Insert(c.sortedCache, i, a)
	c.sortedNbs = slices.Insert(c.sortedNbs, i, nb)
}

// sortedRemove drops a neighbor from the maintained order.
func (c *Client) sortedRemove(a netip.Addr) {
	i, found := slices.BinarySearchFunc(c.sortedCache, a, netip.Addr.Compare)
	if !found {
		return
	}
	c.sortedCache = slices.Delete(c.sortedCache, i, i+1)
	c.sortedNbs = slices.Delete(c.sortedNbs, i, i+1)
}

// sortedNeighbors returns neighbor pointers in the same deterministic order.
func (c *Client) sortedNeighbors() []*neighbor {
	c.sortedNeighborAddrs()
	return c.sortedNbs
}

// sampleNeighbors picks up to k distinct connected neighbors uniformly,
// excluding the source (gossip targets are regular peers).
func (c *Client) sampleNeighbors(k int) []netip.Addr {
	pool := append([]netip.Addr(nil), c.sortedNeighborAddrs()...)
	rng := c.env.Rand()
	if len(pool) <= k {
		return pool
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:k]
}

// learn absorbs peer addresses into the candidate pool.
func (c *Client) learn(addrs []netip.Addr) {
	self := c.env.Addr()
	for _, a := range addrs {
		c.stats.AddrsLearned++
		if a == self || c.known[akey(a)] {
			continue
		}
		c.known[akey(a)] = true
		c.candidates = append(c.candidates, a)
	}
}

// connectFromList implements "randomly selects a number of peers from the
// list and connects to them immediately": pick ConnectFanout random fresh
// addresses from the just-received list and handshake at once (or, with
// latency bias ablated, after a random defer).
func (c *Client) connectFromList(addrs []netip.Addr) {
	if c.buffer == nil {
		return
	}
	fresh := make([]netip.Addr, 0, len(addrs))
	self := c.env.Addr()
	for _, a := range addrs {
		if a == self {
			continue
		}
		if _, connected := c.neighbors[akey(a)]; connected {
			continue
		}
		if c.pendingIdx(akey(a)) >= 0 {
			continue
		}
		fresh = append(fresh, a)
	}
	rng := c.env.Rand()
	rng.Shuffle(len(fresh), func(i, j int) { fresh[i], fresh[j] = fresh[j], fresh[i] })
	n := c.cfg.ConnectFanout
	for _, a := range fresh {
		if n == 0 {
			break
		}
		if len(c.pending) >= c.cfg.MaxPending {
			break
		}
		// Keep probing even at capacity: the ack race against the current
		// worst neighbor (see handleHandshakeAck) is what makes selection
		// latency-based over time.
		c.sendHandshake(a)
		n--
	}
}

func (c *Client) sendHandshake(a netip.Addr) {
	if i := c.pendingIdx(akey(a)); i >= 0 {
		c.pending[i].at = c.env.Now()
	} else {
		c.pending = append(c.pending, pendingShake{key: akey(a), at: c.env.Now()})
	}
	c.stats.HandshakesSent++
	hs := &wire.Handshake{Channel: c.cfg.Channel.Channel}
	if c.cfg.LatencyBias {
		c.env.Send(a, hs)
		return
	}
	// Ablation: defer by a uniform random delay (0..2s) so slot acquisition
	// no longer correlates with proximity.
	delay := time.Duration(c.env.Rand().Int63n(int64(2 * time.Second)))
	c.cancels = append(c.cancels, c.env.After(delay, func() {
		if c.phase != PhaseStopped {
			c.env.Send(a, hs)
		}
	}))
}

func (c *Client) handleTrackerResponse(m *wire.TrackerResponse) {
	if m.Channel != c.cfg.Channel.Channel || c.buffer == nil {
		return
	}
	c.stats.ListsReceived++
	c.learn(m.Peers)
	c.connectFromList(m.Peers)
}

func (c *Client) handleHandshake(from netip.Addr, m *wire.Handshake) {
	if c.buffer == nil || m.Channel != c.cfg.Channel.Channel {
		return
	}
	// Accept inbound connections up to twice the outbound cap: PPLive peers
	// are generous acceptors, which is what makes clusters highly connected.
	accept := len(c.sortedNeighborAddrs()) < 2*c.cfg.MaxNeighbors
	ack := &wire.HandshakeAck{
		Channel:  c.cfg.Channel.Channel,
		Accepted: accept,
	}
	if accept {
		ack.Buffer = c.buffer.Snapshot()
		c.stats.InboundAccepted++
		c.addNeighbor(from, wire.BufferMap{})
	} else {
		c.stats.InboundRejected++
	}
	c.env.Send(from, ack)
}

func (c *Client) handleHandshakeAck(from netip.Addr, m *wire.HandshakeAck) {
	i := c.pendingIdx(akey(from))
	if i < 0 {
		return
	}
	started := c.pending[i].at
	c.pending = slices.Delete(c.pending, i, i+1)
	if !m.Accepted || c.buffer == nil {
		c.stats.HandshakesRejected++
		return
	}
	rtt := c.env.Now() - started
	if len(c.sortedNeighborAddrs()) >= c.cfg.MaxNeighbors {
		// Table full: the newcomer must beat the slowest current neighbor
		// on measured latency, otherwise the race is lost. This rolling
		// replacement is what turns connect-on-list-arrival into
		// latency-based neighbor selection over a whole session.
		if !c.cfg.LatencyBias {
			c.stats.HandshakesRejected++
			return
		}
		worst := c.worstNeighbor()
		if worst == nil || rtt >= neighborRTTEstimate(worst) {
			c.stats.HandshakesRejected++
			return
		}
		c.dropNeighbor(worst.addr)
	}
	c.stats.HandshakesAccepted++
	nb := c.addNeighbor(from, m.Buffer)
	nb.minRTT = rtt
	nb.score = rtt
	// "Upon the establishment of a new connection, the client will first ask
	// the newly connected peer for its peer list ... then request video data."
	c.stats.GossipSent++
	c.env.Send(from, &wire.PeerListRequest{Channel: c.cfg.Channel.Channel, OwnPeers: c.ownPeerList()})
}

// addNeighbor registers (or refreshes) a connected neighbor and records it
// as a recent connection for referral.
func (c *Client) addNeighbor(a netip.Addr, bm wire.BufferMap) *neighbor {
	if nb, ok := c.neighbors[akey(a)]; ok {
		nb.lastHeard = c.env.Now()
		if bm.Words != nil {
			nb.setBuffer(bm, c.env.Now())
		}
		return nb
	}
	nb := &neighbor{
		addr:      a,
		connected: c.env.Now(),
		lastHeard: c.env.Now(),
		planIdx:   -1,
	}
	nb.setBuffer(bm, c.env.Now())
	c.neighbors[akey(a)] = nb
	if a != c.source {
		c.sortedInsert(a, nb)
		c.pushRecent(a)
	}
	return nb
}

// neighborRTTEstimate is the latency yardstick for replacement decisions:
// the measured minimum response time when available, otherwise a neutral
// default so unmeasured neighbors are replaceable but not free kills.
func neighborRTTEstimate(nb *neighbor) time.Duration {
	if nb.minRTT > 0 {
		return nb.minRTT
	}
	return 400 * time.Millisecond
}

// worstNeighbor returns the connected neighbor with the highest latency
// estimate (excluding the source), or nil if none.
func (c *Client) worstNeighbor() *neighbor {
	var worst *neighbor
	for _, nb := range c.sortedNeighbors() {
		if worst == nil || neighborRTTEstimate(nb) > neighborRTTEstimate(worst) {
			worst = nb
		}
	}
	return worst
}

// pushRecent records a as the most recent connection, deduplicating and
// capping at ReferralSize.
func (c *Client) pushRecent(a netip.Addr) {
	for i, existing := range c.recent {
		if existing == a {
			copy(c.recent[1:i+1], c.recent[:i])
			c.recent[0] = a
			return
		}
	}
	c.recent = append(c.recent, netip.Addr{})
	copy(c.recent[1:], c.recent)
	c.recent[0] = a
	if len(c.recent) > c.cfg.ReferralSize {
		c.recent = c.recent[:c.cfg.ReferralSize]
	}
}

func (c *Client) handlePeerListRequest(from netip.Addr, m *wire.PeerListRequest) {
	if c.buffer == nil || m.Channel != c.cfg.Channel.Channel {
		return
	}
	// The requester's enclosed list is free gossip: absorb it.
	c.learn(m.OwnPeers)
	if nb, ok := c.neighbors[akey(from)]; ok {
		nb.lastHeard = c.env.Now()
	}
	reply := &wire.PeerListReply{Channel: c.cfg.Channel.Channel}
	if c.cfg.ReferralEnabled {
		reply.Peers = c.referralList(from)
	}
	c.env.Send(from, reply)
}

// referralList returns up to ReferralSize recently connected peers, excluding
// the requester itself.
func (c *Client) referralList(requester netip.Addr) []netip.Addr {
	out := make([]netip.Addr, 0, len(c.recent))
	for _, a := range c.recent {
		if a == requester {
			continue
		}
		out = append(out, a)
	}
	return out
}

func (c *Client) handlePeerListReply(from netip.Addr, m *wire.PeerListReply) {
	if c.buffer == nil || m.Channel != c.cfg.Channel.Channel {
		return
	}
	c.stats.GossipReplies++
	c.stats.ListsReceived++
	if nb, ok := c.neighbors[akey(from)]; ok {
		nb.lastHeard = c.env.Now()
	}
	c.learn(m.Peers)
	// "Once the client receives a peer list ... connects to them immediately."
	c.connectFromList(m.Peers)
}

func (c *Client) handleBufferMap(from netip.Addr, m *wire.BufferMapAnnounce) {
	nb, ok := c.neighbors[akey(from)]
	if !ok || m.Channel != c.cfg.Channel.Channel {
		return
	}
	nb.setBuffer(m.Buffer, c.env.Now())
	nb.lastHeard = c.env.Now()
}

func (c *Client) announceBufferMap() {
	if c.buffer == nil {
		return
	}
	bm := c.buffer.Snapshot()
	for _, a := range c.sortedNeighborAddrs() {
		c.env.Send(a, &wire.BufferMapAnnounce{Channel: c.cfg.Channel.Channel, Buffer: bm})
	}
}

// evictSilent drops neighbors not heard from within NeighborSilence and
// expires handshakes that never got an ack (departed peers, lost datagrams)
// so the pending window cannot clog permanently. Both scans walk
// deterministic slices — the maintained sorted order and the pending window
// — never map range order, so the victim sequence is identical across runs.
func (c *Client) evictSilent() {
	now := c.env.Now()
	victims := c.evictScratch[:0]
	for _, nb := range c.sortedNbs {
		if now-nb.lastHeard > c.cfg.NeighborSilence {
			victims = append(victims, nb.addr)
		}
	}
	for _, a := range victims {
		c.dropNeighbor(a)
	}
	c.evictScratch = victims[:0]

	keep := c.pending[:0]
	for _, p := range c.pending {
		if now-p.at > c.cfg.HandshakeTimeout {
			c.stats.HandshakeTimeouts++
			continue
		}
		keep = append(keep, p)
	}
	c.pending = keep
}

func (c *Client) dropNeighbor(a netip.Addr) {
	nb, ok := c.neighbors[akey(a)]
	if !ok {
		return
	}
	for len(nb.outstanding) > 0 {
		c.clearOutstanding(nb, len(nb.outstanding)-1)
	}
	delete(c.neighbors, akey(a))
	c.sortedRemove(a)
}

// maybeSteady transitions to the steady phase once playback is satisfactory:
// the buffer holds a healthy share of the pieces between playhead and edge.
func (c *Client) maybeSteady() {
	if c.phase != PhaseStartup || c.buffer == nil {
		return
	}
	st := c.buffer.Stats()
	if st.Received > uint64(c.cfg.BufferWindow/4) && len(c.neighbors) > 2 {
		c.phase = PhaseSteady
		c.scheduleTrackerQueries(c.cfg.TrackerIntervalSteady)
	}
}

// schedulerTick drives playback and the data request plane.
func (c *Client) schedulerTick() {
	if c.buffer == nil {
		return
	}
	now := c.env.Now()
	c.buffer.AdvanceTo(now)
	c.expireRequests(now)

	if c.outstandingTotal >= c.cfg.MaxOutstanding {
		return
	}

	// Determine wanted sub-pieces, skipping those already in flight and
	// bounding prefetch to FetchLead ahead of the playhead (pieces newer
	// than that are too close to the live edge to be widely announced yet).
	budget := (c.cfg.MaxOutstanding - c.outstandingTotal) * c.cfg.BatchCount
	limit := c.buffer.Playhead() + uint64(c.cfg.FetchLead.Seconds()*c.cfg.Channel.Rate())
	want := c.buffer.AppendWantRing(c.wantScratch[:0], now, budget, limit, c.inflight)
	c.wantScratch = want[:0]
	if len(want) == 0 {
		c.maybeSteady()
		return
	}

	// Precompute every neighbor's coverage of the want range while want is
	// still sorted (its ends bound the range); picks below are mask lookups.
	c.buildSchedPlan(want[0], want[len(want)-1])

	// Pieces within two seconds of their deadline are urgent: they go only
	// to proven holders or the source, never to extrapolated coverage.
	urgentBound := c.buffer.Playhead() + uint64(2*c.cfg.Channel.Rate())

	// Keep urgent pieces in deadline order but randomize the rest, so that
	// peers wanting the same region fetch different pieces and can then
	// trade (sequential fetching would synchronize the whole swarm onto the
	// same few providers).
	split := len(want)
	for i, seq := range want {
		if seq >= urgentBound {
			split = i
			break
		}
	}
	c.shuffleBlocks(want[split:], c.cfg.BatchCount)

	// Assign wanted sequences to providers, batching contiguous runs the
	// chosen provider actually covers (up to BatchCount).
	rate := c.cfg.Channel.Rate()
	for i := 0; i < len(want); {
		seq := want[i]
		target := c.pickProvider(seq, now, seq < urgentBound)
		if target == nil {
			i++
			continue
		}
		j := i + 1
		for j < len(want) && j-i < c.cfg.BatchCount && want[j] == want[j-1]+1 &&
			c.neighborCovers(target, want[j], now, rate) {
			j++
		}
		c.sendDataRequest(target, seq, j-i, now)
		i = j
		if c.outstandingTotal >= c.cfg.MaxOutstanding {
			break
		}
	}
}

// shuffleBlocks randomizes the order of blockSize-sized contiguous blocks of
// seqs in place, preserving intra-block contiguity so batching still works.
// A trailing partial block stays in place (it holds the newest, least-spread
// sequences anyway), which lets the permutation run as allocation-free
// element swaps between equal-sized blocks.
func (c *Client) shuffleBlocks(seqs []uint64, blockSize int) {
	rng := c.env.Rand()
	if blockSize == 1 {
		for i := len(seqs) - 1; i > 0; i-- {
			j := c.rbits.intn(rng, i+1)
			seqs[i], seqs[j] = seqs[j], seqs[i]
		}
		return
	}
	if blockSize < 1 || len(seqs) <= blockSize {
		return
	}
	n := len(seqs) / blockSize
	for i := n - 1; i > 0; i-- {
		j := c.rbits.intn(rng, i+1)
		if i == j {
			continue
		}
		a := seqs[i*blockSize : (i+1)*blockSize]
		b := seqs[j*blockSize : (j+1)*blockSize]
		for k := range a {
			a[k], b[k] = b[k], a[k]
		}
	}
}

// neighborCovers is covers() with the source treated as holding everything
// already emitted.
func (c *Client) neighborCovers(nb *neighbor, seq uint64, now time.Duration, rate float64) bool {
	if nb.addr == c.source {
		return seq <= c.cfg.Channel.EdgeSeq(now)
	}
	return nb.covers(seq, now, rate)
}

// inFlight reports whether seq is covered by any outstanding request.
func (c *Client) inFlight(seq uint64) bool {
	return c.inflight != nil && c.inflight.Has(seq)
}

// expireRequests times out unanswered data requests, penalizing the
// neighbor's service score.
func (c *Client) expireRequests(now time.Duration) {
	for _, nb := range c.sortedNbs {
		c.expireNeighbor(nb, now)
	}
	if src, ok := c.neighbors[akey(c.source)]; ok {
		c.expireNeighbor(src, now)
	}
}

func (c *Client) expireNeighbor(nb *neighbor, now time.Duration) {
	for i := 0; i < len(nb.outstanding); {
		if now-nb.outstanding[i].at > c.cfg.RequestTimeout {
			c.clearOutstanding(nb, i)
			c.stats.RequestTimeouts++
			// A timeout is strong evidence of overload or departure.
			nb.score = ewma(nb.score, 2*c.cfg.RequestTimeout)
		} else {
			i++
		}
	}
}

// clearOutstanding removes the pending request at index i (swap-remove; the
// slice is unordered) and its inflight coverage.
func (c *Client) clearOutstanding(nb *neighbor, i int) {
	req := nb.outstanding[i]
	last := len(nb.outstanding) - 1
	nb.outstanding[i] = nb.outstanding[last]
	nb.outstanding = nb.outstanding[:last]
	c.outstandingTotal--
	for k := 0; k < req.count; k++ {
		c.inflight.Clear(req.seq + uint64(k))
	}
}

// score orders neighbors by expected service time; never-measured neighbors
// rank in the middle so they get tried.
func score(nb *neighbor) time.Duration {
	if nb.score == 0 {
		return 500 * time.Millisecond
	}
	return nb.score
}

func ewma(old, sample time.Duration) time.Duration {
	if old == 0 {
		return sample
	}
	const alpha = 0.25
	return time.Duration((1-alpha)*float64(old) + alpha*float64(sample))
}

func (c *Client) sendDataRequest(nb *neighbor, seq uint64, count int, now time.Duration) {
	nb.outstanding = append(nb.outstanding, pendingReq{seq: seq, at: now, count: count})
	c.outstandingTotal++
	for i := 0; i < count; i++ {
		c.inflight.Set(seq + uint64(i))
	}
	c.planNoteSent(nb)
	nb.requests++
	c.stats.DataRequestsSent++
	if c.emitRequest != nil {
		c.emitRequest(nb.addr, seq, count)
		return
	}
	c.env.Send(nb.addr, &wire.DataRequest{
		Channel: c.cfg.Channel.Channel,
		Seq:     seq,
		Count:   uint16(count),
	})
}

// handleDataRequest serves a neighbor's request with the prefix run of
// pieces we hold, unless our uplink is already overloaded.
func (c *Client) handleDataRequest(from netip.Addr, m *wire.DataRequest) {
	if c.buffer == nil || m.Channel != c.cfg.Channel.Channel {
		return
	}
	if nb, ok := c.neighbors[akey(from)]; ok {
		nb.lastHeard = c.env.Now()
	}
	// An overloaded uplink sheds load with a tiny busy reply, redirecting
	// the requester quickly. Accepted requests still ride the growing
	// uplink queue — the application-layer queuing behind the paper's
	// load-dependent response times.
	if c.env.UplinkBacklog() > c.cfg.ServeQueueLimit {
		c.stats.DataRequestsShed++
		c.env.Send(from, &wire.DataReply{
			Channel:  c.cfg.Channel.Channel,
			Seq:      m.Seq,
			Count:    0,
			PieceLen: uint16(c.cfg.Channel.SubPieceLen),
			Busy:     true,
		})
		return
	}
	count := int(m.Count)
	if count == 0 {
		count = 1
	}
	run := 0
	for run < count && c.buffer.Has(m.Seq+uint64(run)) {
		run++
	}
	if run == 0 {
		// Explicit no-have: a tiny reply (Count=0) so the requester can
		// reschedule immediately instead of burning a timeout. Piggyback a
		// fresh buffer map (rate-limited per peer) so the requester's stale
		// view of us gets corrected at exactly the moment it misfired.
		c.stats.DataRequestsDeclined++
		c.env.Send(from, &wire.DataReply{
			Channel:  c.cfg.Channel.Channel,
			Seq:      m.Seq,
			Count:    0,
			PieceLen: uint16(c.cfg.Channel.SubPieceLen),
		})
		now := c.env.Now()
		if last, ok := c.lastMapTo[akey(from)]; !ok || now-last >= time.Second {
			if c.lastMapTo == nil {
				c.lastMapTo = make(map[uint32]time.Duration)
			}
			c.lastMapTo[akey(from)] = now
			c.env.Send(from, &wire.BufferMapAnnounce{
				Channel: c.cfg.Channel.Channel,
				Buffer:  c.buffer.Snapshot(),
			})
		}
		return
	}
	c.stats.DataRequestsServed++
	c.env.Send(from, &wire.DataReply{
		Channel:  c.cfg.Channel.Channel,
		Seq:      m.Seq,
		Count:    uint16(run),
		PieceLen: uint16(c.cfg.Channel.SubPieceLen),
	})
}

func (c *Client) handleDataReply(from netip.Addr, m *wire.DataReply) {
	if c.buffer == nil || m.Channel != c.cfg.Channel.Channel {
		return
	}
	nb, ok := c.neighbors[akey(from)]
	if !ok {
		return
	}
	now := c.env.Now()
	nb.lastHeard = now

	if m.Count == 0 {
		// Miss: clear the in-flight slot. For busy signals, penalize the
		// neighbor's service score so the scheduler spreads load away; for
		// no-haves, the piggybacked buffer map corrects our stale view.
		if i := nb.findOutstanding(m.Seq); i >= 0 {
			c.clearOutstanding(nb, i)
		}
		if m.Busy {
			c.stats.DataBusies++
			// Penalize proportionally: a busy signal means "currently about
			// twice as slow as usual", steering load away without burying
			// genuinely fast neighbors.
			nb.score = ewma(nb.score, 2*score(nb))
		} else {
			c.stats.DataNoHaves++
		}
		return
	}

	if i := nb.findOutstanding(m.Seq); i >= 0 {
		rt := now - nb.outstanding[i].at
		c.clearOutstanding(nb, i)
		nb.score = ewma(nb.score, rt)
		if nb.minRTT == 0 || rt < nb.minRTT {
			nb.minRTT = rt
		}
	}
	nb.replies++
	nb.bytes += uint64(m.PayloadLen())
	nb.learnHas(m.Seq, m.Seq+uint64(m.Count)-1, now)
	c.stats.DataRepliesGot++
	c.stats.DataBytesGot += uint64(m.PayloadLen())
	fresh := false
	for i := uint64(0); i < uint64(m.Count); i++ {
		if c.buffer.Mark(m.Seq + i) {
			fresh = true
		}
	}
	if fresh {
		c.gossipHave(m.Seq, m.Count, from)
	}
}

// gossipHave hints freshly acquired pieces to a few random neighbors,
// making piece availability spread exponentially through the mesh instead
// of waiting for periodic buffer-map rounds.
func (c *Client) gossipHave(seq uint64, count uint16, from netip.Addr) {
	if c.cfg.HintFanout <= 0 {
		return
	}
	pool := c.sortedNeighborAddrs()
	if len(pool) == 0 {
		return
	}
	rng := c.env.Rand()
	msg := &wire.Have{Channel: c.cfg.Channel.Channel, Seq: seq, Count: count}
	sent := 0
	for attempts := 0; sent < c.cfg.HintFanout && attempts < 3*c.cfg.HintFanout; attempts++ {
		a := pool[rng.Intn(len(pool))]
		if a == from {
			continue
		}
		c.env.Send(a, msg)
		sent++
	}
}

// handleHave records a neighbor's per-piece availability hint.
func (c *Client) handleHave(from netip.Addr, m *wire.Have) {
	nb, ok := c.neighbors[akey(from)]
	if !ok || m.Channel != c.cfg.Channel.Channel || m.Count == 0 {
		return
	}
	nb.lastHeard = c.env.Now()
	nb.learnHas(m.Seq, m.Seq+uint64(m.Count)-1, c.env.Now())
}
