// Package peer implements the PPLive-style live-streaming client whose
// emergent behaviour the paper measures, plus the channel's stream source.
//
// The client follows the protocol the paper reverse-engineered (§2):
//
//  1. Contact the bootstrap server for the channel list, then the chosen
//     channel's playlink and tracker set (one tracker per group).
//  2. Query trackers for active peers, pick a random subset of each returned
//     list, and connect immediately.
//  3. On every new connection, first ask the new neighbor for its peer list,
//     then request video data.
//  4. Gossip with connected neighbors every 20 seconds, enclosing its own
//     peer list; repliers return up to 60 recently connected peers.
//  5. Once playback is satisfactory, cut tracker queries to every 5 minutes;
//     discovery then flows almost entirely through neighbor referral.
//
// No topology information is used anywhere. Locality emerges from the
// decentralized latency-based referral dynamics, which is the paper's
// central finding.
//
// A client is a viewer, not a channel: all channel-scoped protocol state
// (buffer, neighbor table, scheduler plan, tracker timers) lives in a
// per-channel session (see session.go), and the client routes incoming
// messages to the owning session by wire.ChannelID. Switch tears one session
// down — withdrawing its tracker registrations — and joins the next channel
// directly, which is how the workload layer models the paper's
// channel-browsing viewers (§5).
package peer

import (
	"fmt"
	"math/bits"
	"net/netip"
	"slices"
	"time"

	"pplivesim/internal/node"
	"pplivesim/internal/stream"
	"pplivesim/internal/wire"
)

// Phase is the client lifecycle stage.
type Phase int

// Lifecycle stages.
const (
	PhaseInit      Phase = iota + 1 // created, not started
	PhaseBootstrap                  // resolving channel list / playlink
	PhaseStartup                    // joined, filling the buffer
	PhaseSteady                     // playback satisfactory
	PhaseStopped                    // left the channel
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseInit:
		return "init"
	case PhaseBootstrap:
		return "bootstrap"
	case PhaseStartup:
		return "startup"
	case PhaseSteady:
		return "steady"
	case PhaseStopped:
		return "stopped"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// neighbor tracks one connected peer.
type neighbor struct {
	addr      netip.Addr
	connected time.Duration // when the connection was established
	lastHeard time.Duration
	buffer    wire.BufferMap
	bufferAt  time.Duration // when the buffer map was received
	bufferMax uint64        // highest piece set in the map
	bufferAny bool          // whether the map had any piece at all

	// outstanding holds the in-flight requests to this neighbor. The count is
	// capped (MaxOutstandingPerNeighbor) and small, so a flat slice with
	// linear lookup beats a map on every path that touches it.
	outstanding []pendingReq

	// planIdx is this neighbor's row in the current scheduler plan (see
	// sched.go), -1 when not part of it (the source, or before any tick).
	planIdx int

	// Hardening state (cfg.Resilience): consecutive request timeouts, the
	// deadline before which the scheduler must not retry this neighbor, and
	// the last keepalive ping sent. All stay zero when resilience is off.
	failStreak   int
	backoffUntil time.Duration
	lastPing     time.Duration

	// Service quality estimation. score is an EWMA of data response times;
	// minRTT is the fastest application-level response observed, the same
	// estimator the paper's analysis uses for proximity.
	score    time.Duration
	minRTT   time.Duration
	requests uint64
	replies  uint64
	bytes    uint64
}

// pendingReq tracks one outstanding data request (a batch of count
// consecutive sub-pieces starting at seq).
type pendingReq struct {
	seq   uint64
	at    time.Duration
	count int
}

// findOutstanding returns the index of the request keyed by seq, or -1.
func (nb *neighbor) findOutstanding(seq uint64) int {
	for i := range nb.outstanding {
		if nb.outstanding[i].seq == seq {
			return i
		}
	}
	return -1
}

// setBuffer stores a freshly announced buffer map, precomputing the highest
// announced piece for live-edge extrapolation.
func (nb *neighbor) setBuffer(bm wire.BufferMap, at time.Duration) {
	// Copy the bitmap: announce messages are shared across receivers in the
	// simulated transport, and learnHas mutates our view. The backing array
	// is reused across announce rounds.
	nb.buffer = wire.BufferMap{
		Start:   bm.Start,
		Words:   append(nb.buffer.Words[:0], bm.Words...),
		ByteLen: bm.ByteLen,
	}
	nb.bufferAt = at
	nb.bufferAny = false
	nb.bufferMax = 0
	for i := len(bm.Words) - 1; i >= 0; i-- {
		w := bm.Words[i]
		if w == 0 {
			continue
		}
		nb.bufferMax = bm.Start + uint64(i*64+bits.Len64(w)-1)
		nb.bufferAny = true
		break
	}
}

// knowledgeWindow is the coverage span (in sub-pieces) we track per
// neighbor when proofs outrun the announced map.
const knowledgeWindow = 2048

// learnHas records proof (a data reply or Have hint) that the neighbor held
// pieces [lo, hi], marking them into our view of its map. If the proof falls
// beyond the tracked window — hints race ahead of periodic announcements on
// a live stream — the window is re-anchored around the new high-water mark,
// preserving whatever old knowledge still overlaps. The new window leaves
// slack above hi so the re-anchor amortizes: at the live edge every fresh
// Have lands past the window end, and without slack each one would trigger
// a full rebuild.
func (nb *neighbor) learnHas(lo, hi uint64, at time.Duration) {
	if nb.buffer.Words == nil || hi >= nb.buffer.Start+nb.buffer.Window() {
		const slack = knowledgeWindow / 4
		start := uint64(0)
		if hi+1+slack > knowledgeWindow {
			// Keep start byte-aligned: the wire format's window granularity,
			// so re-anchoring never shifts which sequences the window can
			// describe relative to an announced map.
			start = (hi + 1 + slack - knowledgeWindow) &^ 7
		}
		fresh := wire.MakeBufferMap(start, knowledgeWindow)
		if nb.buffer.Words != nil {
			for w := range fresh.Words {
				fresh.Words[w] = nb.buffer.WordAt(start + uint64(w)*64)
			}
		}
		nb.buffer = fresh
	}
	nb.buffer.SetRange(lo, hi)
	if !nb.bufferAny || hi > nb.bufferMax {
		nb.bufferMax = hi
		nb.bufferAny = true
		nb.bufferAt = at
	}
}

// covers reports whether the neighbor is known to hold sub-piece seq:
// announced in its last buffer map or proven by a data reply since. Assumed
// (extrapolated) coverage is deliberately absent — swarms with holes turn
// optimism into decline storms; knowledge here is only what the neighbor
// actually demonstrated.
func (nb *neighbor) covers(seq uint64, _ time.Duration, _ float64) bool {
	return nb.buffer.Has(seq)
}

// akey packs an IPv4 address into the uint32 key used by the per-datagram
// maps. The simulation's address plan is IPv4-only; the zero Addr (source
// unset during bootstrap) folds to 0, which ipam never allocates.
func akey(a netip.Addr) uint32 {
	if !a.Is4() {
		return 0
	}
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Client is one PPLive-style viewer: a set of per-channel sessions plus the
// cross-channel identity (address, config, protocol counters).
type Client struct {
	env node.Env
	cfg Config

	// prefetch16 is cfg.SourcePrefetchProb quantized to the 16-bit scale the
	// scheduler's batched RNG consumes (see randbits.go).
	prefetch16 uint32

	// sessions holds one session per joined channel; order preserves join
	// order so every cross-session iteration is deterministic (map range
	// order is randomized in Go). active is the session currently being
	// watched — exactly one for a viewer, but Join allows background
	// sessions to coexist.
	sessions map[wire.ChannelID]*session
	order    []wire.ChannelID
	active   *session

	started    bool
	stopped    bool
	everJoined bool // at least one session completed bootstrap contact

	// closedStats accumulates playback counters from sessions already left,
	// so BufferStats spans the whole viewing history across switches.
	closedStats stream.Stats

	// emitRequest, when set, replaces the wire send for scheduled data
	// requests; benchmarks use it to measure scheduling cost without the
	// message-construction cost. All bookkeeping still runs.
	emitRequest func(to netip.Addr, seq uint64, count int)

	stats Stats

	// timeToSteady is the startup delay: elapsed simulated time from the
	// first session's bootstrap contact to the first steady-phase
	// transition. steadySeen latches it (channel switches don't overwrite).
	timeToSteady time.Duration
	steadySeen   bool

	// onStopped, if set, runs after Stop completes (used by orchestration).
	onStopped func()
}

// Stats counts client-side protocol activity across all sessions.
type Stats struct {
	TrackerQueries       uint64
	GossipSent           uint64
	GossipReplies        uint64
	ListsReceived        uint64
	AddrsLearned         uint64
	HandshakesSent       uint64
	HandshakesAccepted   uint64
	HandshakesRejected   uint64
	HandshakeTimeouts    uint64
	InboundAccepted      uint64
	InboundRejected      uint64
	DataRequestsSent     uint64
	DataRepliesGot       uint64
	DataNoHaves          uint64
	DataBusies           uint64
	DataBytesGot         uint64
	DataRequestsServed   uint64
	DataRequestsDeclined uint64
	DataRequestsShed     uint64
	RequestTimeouts      uint64
	ChannelSwitches      uint64
	PingsSent            uint64
	KeepaliveEvictions   uint64
	TrackerFailures      uint64
}

// New creates a client bound to env. Call Start to join the initial channel.
func New(env node.Env, cfg Config) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Client{
		env:        env,
		cfg:        cfg,
		prefetch16: prob16(cfg.SourcePrefetchProb),
		sessions:   make(map[wire.ChannelID]*session),
	}, nil
}

// pendingShake is one outstanding handshake.
type pendingShake struct {
	key uint32
	at  time.Duration
}

var _ node.Handler = (*Client)(nil)

// Phase returns the current lifecycle stage of the active session.
func (c *Client) Phase() Phase {
	switch {
	case c.stopped:
		return PhaseStopped
	case c.active != nil:
		return c.active.phase
	case c.started:
		return PhaseBootstrap
	default:
		return PhaseInit
	}
}

// Addr returns the client's address.
func (c *Client) Addr() netip.Addr { return c.env.Addr() }

// Stats returns a snapshot of protocol counters.
func (c *Client) Stats() Stats { return c.stats }

// TimeToSteady reports the startup delay — simulated time from first
// bootstrap contact to the first steady-phase transition — and whether the
// client ever reached steady state.
func (c *Client) TimeToSteady() (time.Duration, bool) {
	return c.timeToSteady, c.steadySeen
}

// BufferStats returns playback buffer counters summed across every session
// the client has held, including channels already left.
func (c *Client) BufferStats() stream.Stats {
	out := c.closedStats
	for _, ch := range c.order {
		if s := c.sessions[ch]; s.buffer != nil {
			out = out.Add(s.buffer.Stats())
		}
	}
	return out
}

// NumNeighbors returns the connected neighbor count across sessions.
func (c *Client) NumNeighbors() int {
	n := 0
	for _, ch := range c.order {
		n += len(c.sessions[ch].neighbors)
	}
	return n
}

// Neighbors returns the connected neighbor addresses: per session in join
// order, the source first (if connected) then the maintained sorted order.
// Iterating the neighbor maps here would leak Go's randomized map order into
// caller behaviour.
func (c *Client) Neighbors() []netip.Addr {
	var out []netip.Addr
	for _, ch := range c.order {
		s := c.sessions[ch]
		if s.source.IsValid() {
			if nb, ok := s.neighbors[akey(s.source)]; ok {
				out = append(out, nb.addr)
			}
		}
		out = append(out, s.sortedCache...)
	}
	return out
}

// Sessions returns the joined channel IDs in join order.
func (c *Client) Sessions() []wire.ChannelID {
	return slices.Clone(c.order)
}

// ActiveChannel returns the channel currently being watched (0 if none).
func (c *Client) ActiveChannel() wire.ChannelID {
	if c.active == nil {
		return 0
	}
	return c.active.spec.Channel
}

// SetOnStopped registers a callback invoked after Stop.
func (c *Client) SetOnStopped(fn func()) { c.onStopped = fn }

// Start begins the join flow for the configured initial channel: contact the
// bootstrap server. In the real client this is preceded by DNS queries for
// the server addresses; the simulation provides the bootstrap address
// directly.
func (c *Client) Start() {
	if c.started || c.stopped {
		return
	}
	c.started = true
	c.join(c.cfg.Channel, false)
}

// Join opens a session on spec's channel (no-op if already joined) and makes
// it the active one. The first join walks the full bootstrap exchange; later
// joins request the playlink directly, as the real client does once it holds
// the channel directory.
func (c *Client) Join(spec stream.Spec) {
	if c.stopped {
		return
	}
	c.started = true
	c.join(spec, c.everJoined)
}

func (c *Client) join(spec stream.Spec, direct bool) {
	if s, ok := c.sessions[spec.Channel]; ok {
		c.active = s
		return
	}
	c.everJoined = true
	s := newSession(c, spec)
	c.sessions[spec.Channel] = s
	c.order = append(c.order, spec.Channel)
	c.active = s
	s.start(direct)
}

// Leave closes the session on ch: withdraw its tracker registrations, disarm
// its timers, and tear down its neighbor table. No-op if not joined.
func (c *Client) Leave(ch wire.ChannelID) {
	s, ok := c.sessions[ch]
	if !ok {
		return
	}
	s.leave()
	delete(c.sessions, ch)
	if i := slices.Index(c.order, ch); i >= 0 {
		c.order = slices.Delete(c.order, i, i+1)
	}
	if c.active == s {
		c.active = nil
	}
	if s.buffer != nil {
		c.closedStats = c.closedStats.Add(s.buffer.Stats())
	}
}

// Switch changes channels: leave the active session and join spec directly,
// skipping the channel-list exchange (the viewer already browsed the
// directory). No-op if spec is already the active channel.
func (c *Client) Switch(spec stream.Spec) {
	if c.stopped || !c.started {
		return
	}
	if c.active != nil {
		if c.active.spec.Channel == spec.Channel {
			return
		}
		c.Leave(c.active.spec.Channel)
	}
	c.stats.ChannelSwitches++
	c.join(spec, true)
}

// Stop leaves every channel and retires the client permanently.
func (c *Client) Stop() {
	if c.stopped {
		return
	}
	for _, ch := range slices.Clone(c.order) {
		c.Leave(ch)
	}
	c.stopped = true
	if c.onStopped != nil {
		c.onStopped()
	}
}

// Kill retires the client as an abrupt crash: every session is torn down
// locally — timers disarmed, neighbor state dropped — but nothing is sent, so
// trackers and neighbors only learn of the death through timeouts. This is
// the fault-injection analogue of Stop.
func (c *Client) Kill() {
	if c.stopped {
		return
	}
	for _, ch := range slices.Clone(c.order) {
		s := c.sessions[ch]
		s.shutdown(false)
		delete(c.sessions, ch)
		if i := slices.Index(c.order, ch); i >= 0 {
			c.order = slices.Delete(c.order, i, i+1)
		}
		if s.buffer != nil {
			c.closedStats = c.closedStats.Add(s.buffer.Stats())
		}
	}
	c.active = nil
	c.stopped = true
	if c.onStopped != nil {
		c.onStopped()
	}
}

// messageChannel extracts the channel a message belongs to, for session
// dispatch. ChannelListResponse is the one channel-less message and is
// handled separately.
func messageChannel(msg wire.Message) (wire.ChannelID, bool) {
	switch m := msg.(type) {
	case *wire.PlaylinkResponse:
		return m.Channel, true
	case *wire.TrackerResponse:
		return m.Channel, true
	case *wire.Handshake:
		return m.Channel, true
	case *wire.HandshakeAck:
		return m.Channel, true
	case *wire.PeerListRequest:
		return m.Channel, true
	case *wire.PeerListReply:
		return m.Channel, true
	case *wire.BufferMapAnnounce:
		return m.Channel, true
	case *wire.DataRequest:
		return m.Channel, true
	case *wire.DataReply:
		return m.Channel, true
	case *wire.Have:
		return m.Channel, true
	case *wire.Ping:
		return m.Channel, true
	case *wire.Pong:
		return m.Channel, true
	default:
		return 0, false
	}
}

// HandleMessage implements node.Handler: route the message to the session
// owning its channel. Messages for channels the client has left (or never
// joined) are dropped, which is what makes Leave a clean de-registration —
// late replies and stale gossip from the old swarm cannot resurrect state.
func (c *Client) HandleMessage(from netip.Addr, msg wire.Message) {
	if c.stopped {
		return
	}
	if m, ok := msg.(*wire.ChannelListResponse); ok {
		for _, ch := range c.order {
			c.sessions[ch].handleChannelList(m)
		}
		return
	}
	ch, ok := messageChannel(msg)
	if !ok {
		return
	}
	s := c.sessions[ch]
	if s == nil {
		return
	}
	switch m := msg.(type) {
	case *wire.PlaylinkResponse:
		s.handlePlaylink(m)
	case *wire.TrackerResponse:
		s.handleTrackerResponse(from, m)
	case *wire.Handshake:
		s.handleHandshake(from, m)
	case *wire.HandshakeAck:
		s.handleHandshakeAck(from, m)
	case *wire.PeerListRequest:
		s.handlePeerListRequest(from, m)
	case *wire.PeerListReply:
		s.handlePeerListReply(from, m)
	case *wire.BufferMapAnnounce:
		s.handleBufferMap(from, m)
	case *wire.DataRequest:
		s.handleDataRequest(from, m)
	case *wire.DataReply:
		s.handleDataReply(from, m)
	case *wire.Have:
		s.handleHave(from, m)
	case *wire.Ping:
		s.handlePing(from, m)
	case *wire.Pong:
		s.handlePong(from, m)
	}
}

// neighborRTTEstimate is the latency yardstick for replacement decisions:
// the measured minimum response time when available, otherwise a neutral
// default so unmeasured neighbors are replaceable but not free kills.
func neighborRTTEstimate(nb *neighbor) time.Duration {
	if nb.minRTT > 0 {
		return nb.minRTT
	}
	return 400 * time.Millisecond
}

// score orders neighbors by expected service time; never-measured neighbors
// rank in the middle so they get tried.
func score(nb *neighbor) time.Duration {
	if nb.score == 0 {
		return 500 * time.Millisecond
	}
	return nb.score
}

func ewma(old, sample time.Duration) time.Duration {
	if old == 0 {
		return sample
	}
	const alpha = 0.25
	return time.Duration((1-alpha)*float64(old) + alpha*float64(sample))
}
