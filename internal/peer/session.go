package peer

import (
	"fmt"
	"slices"
	"time"

	"net/netip"

	"pplivesim/internal/node"
	"pplivesim/internal/stream"
	"pplivesim/internal/wire"
)

// session is one channel's worth of client state: the playback buffer, the
// neighbor set, discovery bookkeeping, the scheduler plan, and the tracker
// timers, all keyed by the channel ID the client joined. A client holds one
// session per joined channel; switching channels tears one session down and
// starts another while the client (address, uplink, config) persists.
type session struct {
	c   *Client
	env node.Env
	cfg *Config // shared protocol knobs (the client's config)

	// spec is this session's channel; cfg.Channel is only the initial one.
	spec stream.Spec

	phase    Phase
	source   netip.Addr
	trackers []netip.Addr
	// edges lists the CDN edge caches from the playlink in the bootstrap's
	// affinity order for this client (same-ISP first); edgeSet marks their
	// packed keys. Edges are pseudo-neighbors exactly like the source — in
	// the neighbors map but never in the sorted order — so the plan, gossip,
	// referral, and trim paths all skip them for free. Empty in pure-P2P
	// deployments, where every edge code path is a no-op.
	edges   []netip.Addr
	edgeSet map[uint32]bool
	// startedAt timestamps the join for the startup-delay metric (time from
	// first bootstrap contact to the steady-phase transition).
	startedAt time.Duration
	buffer    *stream.Buffer

	// The per-datagram maps are keyed by the packed IPv4 address (akey):
	// hashing a 4-byte integer is several times cheaper than the 24-byte
	// netip.Addr struct, and these maps sit on every message's path.
	neighbors  map[uint32]*neighbor
	known      map[uint32]bool // every address ever learned
	candidates []netip.Addr    // not-yet-tried addresses (FIFO)

	// pending tracks outstanding handshakes as a small ordered slice: it is
	// bounded by cfg.MaxPending, so linear membership scans beat a map, and
	// slice iteration keeps expiry order deterministic where map range order
	// would not be.
	pending []pendingShake

	// evictScratch collects eviction victims before dropping them (dropping
	// mutates the sorted order mid-iteration); reused across gossip rounds.
	evictScratch []netip.Addr

	// recent is the referral source: most recently connected peers first,
	// deduplicated, capped at cfg.ReferralSize.
	recent []netip.Addr

	outstandingTotal int
	// inflight indexes every outstanding sequence as a sliding-window bit set
	// so the want scan can mask whole words out at once (the per-neighbor
	// outstanding maps hold the timing detail). Created on playlink, sized to
	// the buffer window plus the span requests can outlive it by (timeout
	// drift), per BitRing's aliasing precondition.
	inflight *stream.BitRing

	// sortedCache holds the connected non-source neighbor addresses in
	// address order, maintained incrementally on membership changes;
	// sortedNbs holds the corresponding neighbor pointers for the
	// scheduler's hot path.
	sortedCache []netip.Addr
	sortedNbs   []*neighbor

	// Scheduler-tick scratch state, reused every SchedInterval so the hot
	// path stays allocation-free.
	wantScratch []uint64

	// rbits batches the scheduler's RNG draws (see randbits.go).
	rbits bitRand

	// Per-tick scheduler plan (see sched.go): transposed candidate masks for
	// the tick's want range, plus the eligibility mask that evolves as
	// requests are booked.
	planOrg    uint64
	planWords  int
	planGroups int
	planRows   []uint64 // gather scratch: per group, 64 rows × planWords
	planCand   []uint64 // candidate masks, indexed (g*planWords + w)*64 + b
	planElig   []uint64 // per-group eligibility masks
	planOrder  []uint64 // neighbor indices sorted by (score, index)

	// lastMapTo rate-limits decline-triggered buffer-map piggybacks.
	lastMapTo map[uint32]time.Duration

	cancels      []node.Cancel
	trackerTimer node.Cancel

	// Resilience state (see resilience.go); all of it stays zero — and every
	// code path reading it behaves exactly as before — unless
	// cfg.Resilience.Enabled.
	bootstrapStreak int
	trHealth        []trackerHealth
	srcFails        int // consecutive source request timeouts
	srcProbeCounter int
}

// newSession creates an un-started session for spec's channel.
func newSession(c *Client, spec stream.Spec) *session {
	return &session{
		c:         c,
		env:       c.env,
		cfg:       &c.cfg,
		spec:      spec,
		phase:     PhaseBootstrap,
		neighbors: make(map[uint32]*neighbor),
		known:     make(map[uint32]bool),
	}
}

// start begins the join flow. The first session a client opens walks the full
// bootstrap exchange (channel list, then playlink); sessions opened by a
// channel switch already know the directory and request the playlink
// directly. Either way the contact is retried until the playlink resolves.
func (s *session) start(direct bool) {
	s.startedAt = s.env.Now()
	request := func() wire.Message {
		if direct {
			return &wire.PlaylinkRequest{Channel: s.spec.Channel}
		}
		return &wire.ChannelListRequest{}
	}
	s.env.Send(s.cfg.Bootstrap, request())
	// Resilient sessions retry with capped exponential backoff plus
	// deterministic jitter, so a bootstrap outage is not hammered in lockstep
	// by every joining peer; the legacy fixed 2s retry is kept bit-exact
	// otherwise.
	delay := func() time.Duration {
		if r := &s.cfg.Resilience; r.Enabled {
			s.bootstrapStreak++
			return backoffDelay(r.BootstrapBackoff, r.BootstrapBackoffMax, s.bootstrapStreak, akey(s.env.Addr()))
		}
		return 2 * time.Second
	}
	var retry func()
	retry = func() {
		if s.phase != PhaseBootstrap {
			return
		}
		s.env.Send(s.cfg.Bootstrap, request())
		s.cancels = append(s.cancels, s.env.After(delay(), retry))
	}
	s.cancels = append(s.cancels, s.env.After(delay(), retry))
}

// leave closes the session: withdraw tracker announcements, disarm every
// timer, and tear down the neighbor table (dropping in-flight request
// bookkeeping with it). Neighbors need no goodbye datagram — the protocol is
// silence-evicting, so departed peers age out of remote tables.
func (s *session) leave() { s.shutdown(true) }

// shutdown is leave's engine; announce=false is an abrupt crash (fault
// injection): no Leaving withdrawals go out, so tracker registrations linger
// until TTL and neighbors must discover the death themselves.
func (s *session) shutdown(announce bool) {
	if announce {
		for _, tr := range s.trackers {
			s.env.Send(tr, &wire.TrackerAnnounce{Channel: s.spec.Channel, Leaving: true})
		}
	}
	for _, cancel := range s.cancels {
		cancel()
	}
	s.cancels = nil
	if s.trackerTimer != nil {
		s.trackerTimer()
		s.trackerTimer = nil
	}
	for len(s.sortedNbs) > 0 {
		s.dropNeighbor(s.sortedNbs[len(s.sortedNbs)-1].addr)
	}
	if s.source.IsValid() {
		s.dropNeighbor(s.source)
	}
	for _, e := range s.edges {
		s.dropNeighbor(e)
	}
	s.phase = PhaseStopped
}

// pendingIdx returns the index of key in the pending window, or -1.
func (s *session) pendingIdx(key uint32) int {
	for i := range s.pending {
		if s.pending[i].key == key {
			return i
		}
	}
	return -1
}

func (s *session) handleChannelList(m *wire.ChannelListResponse) {
	if s.phase != PhaseBootstrap || s.buffer != nil {
		return
	}
	// The user picks this session's channel from the list; verify it exists.
	for _, info := range m.Channels {
		if info.ID == s.spec.Channel {
			s.env.Send(s.cfg.Bootstrap, &wire.PlaylinkRequest{Channel: info.ID})
			return
		}
	}
}

func (s *session) handlePlaylink(m *wire.PlaylinkResponse) {
	if s.phase != PhaseBootstrap {
		return
	}
	buf, err := stream.NewBuffer(s.spec, s.env.Now(), s.cfg.StartupDelay, s.cfg.BufferWindow)
	if err != nil {
		// Config was validated in New; a failure here is a programming error.
		panic(fmt.Sprintf("peer: buffer: %v", err))
	}
	s.buffer = buf
	// In-flight sequences live between (playhead − timeout drift) and the
	// prefetch bound: expired requests linger up to RequestTimeout plus one
	// scheduler interval past the window, so size the ring for both.
	drift := int((s.cfg.RequestTimeout+s.cfg.SchedInterval).Seconds()*s.spec.Rate()) + 64
	s.inflight = stream.NewBitRing(s.cfg.BufferWindow + drift)
	s.source = m.Source
	s.trackers = append([]netip.Addr(nil), m.Trackers...)
	if len(m.Edges) > 0 {
		s.edges = append([]netip.Addr(nil), m.Edges...)
		s.edgeSet = make(map[uint32]bool, len(m.Edges))
		for _, e := range m.Edges {
			s.edgeSet[akey(e)] = true
		}
	}
	s.phase = PhaseStartup
	if s.resilient() {
		s.trHealth = make([]trackerHealth, len(s.trackers))
	}

	s.announceTrackers(false)
	s.queryTrackers()
	s.scheduleTrackerQueries(s.cfg.TrackerIntervalStartup)

	s.cancels = append(s.cancels,
		s.env.Every(s.cfg.AnnounceInterval, func() { s.announceTrackers(false) }),
		s.env.Every(s.cfg.GossipInterval, s.gossip),
		s.env.Every(s.cfg.BufferMapInterval, s.announceBufferMap),
		s.env.Every(s.cfg.SchedInterval, s.schedulerTick),
	)
	if s.resilient() {
		s.cancels = append(s.cancels,
			s.env.Every(s.cfg.Resilience.KeepaliveInterval, s.keepaliveTick))
	}

	// The source is always a data neighbor of last resort; CDN edges sit in
	// front of it in the urgent fallback order.
	s.addNeighbor(m.Source, wire.BufferMap{})
	for _, e := range s.edges {
		s.addNeighbor(e, wire.BufferMap{})
	}
}

// isEdge reports whether a is one of this session's CDN edge caches.
func (s *session) isEdge(a netip.Addr) bool {
	return s.edgeSet != nil && s.edgeSet[akey(a)]
}

// scheduleTrackerQueries (re)installs the periodic tracker query at the given
// interval, replacing any previous schedule.
func (s *session) scheduleTrackerQueries(interval time.Duration) {
	if s.trackerTimer != nil {
		s.trackerTimer()
	}
	s.trackerTimer = s.env.Every(interval, func() {
		s.queryTrackers()
		// Once playback is satisfactory, back off to the steady period
		// (the paper measures five minutes).
		if s.phase == PhaseSteady {
			s.scheduleTrackerQueries(s.cfg.TrackerIntervalSteady)
		}
	})
}

func (s *session) announceTrackers(leaving bool) {
	for i, tr := range s.trackers {
		// Trackers in outage backoff are skipped (except for withdrawals,
		// which are fire-and-forget anyway and worth attempting).
		if !leaving && s.trHealth != nil && s.trHealth[i].backoffUntil > s.env.Now() {
			continue
		}
		s.env.Send(tr, &wire.TrackerAnnounce{Channel: s.spec.Channel, Leaving: leaving})
	}
}

func (s *session) queryTrackers() {
	now := s.env.Now()
	for i, tr := range s.trackers {
		if s.trHealth != nil {
			// Failure detection is query-paced: an answer should long precede
			// the next round, so a still-pending query means the tracker is
			// unreachable — back off exponentially until one gets through.
			h := &s.trHealth[i]
			if h.pending {
				h.pending = false
				h.failStreak++
				r := &s.cfg.Resilience
				h.backoffUntil = now + backoffDelay(r.TrackerBackoff, r.TrackerBackoffMax, h.failStreak, akey(tr))
				s.c.stats.TrackerFailures++
			}
			if h.backoffUntil > now {
				continue
			}
			h.pending = true
		}
		s.c.stats.TrackerQueries++
		s.env.Send(tr, &wire.TrackerQuery{Channel: s.spec.Channel})
	}
}

// gossip queries up to GossipFanout random neighbors for their peer lists,
// enclosing our own list, per the measured 20-second cadence.
func (s *session) gossip() {
	if s.buffer == nil {
		return
	}
	// Housekeeping runs every round even when there is nobody to query:
	// silent-neighbor eviction, pending-handshake expiry, table trimming.
	s.evictSilent()
	s.trimNeighbors()
	s.maybeSteady()

	targets := s.sampleNeighbors(s.cfg.GossipFanout)
	if len(targets) == 0 {
		return
	}
	own := s.ownPeerList()
	for _, addr := range targets {
		s.c.stats.GossipSent++
		s.env.Send(addr, &wire.PeerListRequest{Channel: s.spec.Channel, OwnPeers: own})
	}
}

// trimNeighbors prunes the table back toward MaxNeighbors. With latency
// bias the highest-RTT neighbors go first — the steady-state counterpart of
// the handshake race, and the mechanism that concentrates the table on
// nearby (in practice same-ISP) peers. With the bias ablated, pruning is
// random.
func (s *session) trimNeighbors() {
	for len(s.sortedNeighbors()) > s.cfg.MaxNeighbors {
		var victim *neighbor
		if s.cfg.LatencyBias {
			victim = s.worstNeighbor()
		} else {
			pool := s.sortedNeighbors()
			victim = pool[s.env.Rand().Intn(len(pool))]
		}
		if victim == nil {
			return
		}
		s.dropNeighbor(victim.addr)
	}
}

// ownPeerList returns the list the client maintains (its recent neighbors),
// enclosed in gossip requests as the paper describes.
func (s *session) ownPeerList() []netip.Addr {
	out := make([]netip.Addr, len(s.recent))
	copy(out, s.recent)
	return out
}

// sortedNeighborAddrs returns the connected non-source neighbor addresses in
// address order — it runs on the data scheduler's hot path. The order is
// maintained incrementally on add/drop (binary insert/remove) rather than
// re-sorted. Deterministic ordering keeps whole runs reproducible (map
// iteration order is randomized in Go). Callers must not mutate the returned
// slice.
func (s *session) sortedNeighborAddrs() []netip.Addr {
	return s.sortedCache
}

// sortedInsert adds a non-source neighbor to the maintained order.
func (s *session) sortedInsert(a netip.Addr, nb *neighbor) {
	i, found := slices.BinarySearchFunc(s.sortedCache, a, netip.Addr.Compare)
	if found {
		s.sortedNbs[i] = nb
		return
	}
	s.sortedCache = slices.Insert(s.sortedCache, i, a)
	s.sortedNbs = slices.Insert(s.sortedNbs, i, nb)
}

// sortedRemove drops a neighbor from the maintained order.
func (s *session) sortedRemove(a netip.Addr) {
	i, found := slices.BinarySearchFunc(s.sortedCache, a, netip.Addr.Compare)
	if !found {
		return
	}
	s.sortedCache = slices.Delete(s.sortedCache, i, i+1)
	s.sortedNbs = slices.Delete(s.sortedNbs, i, i+1)
}

// sortedNeighbors returns neighbor pointers in the same deterministic order.
func (s *session) sortedNeighbors() []*neighbor {
	return s.sortedNbs
}

// sampleNeighbors picks up to k distinct connected neighbors uniformly,
// excluding the source (gossip targets are regular peers).
func (s *session) sampleNeighbors(k int) []netip.Addr {
	pool := append([]netip.Addr(nil), s.sortedNeighborAddrs()...)
	rng := s.env.Rand()
	if len(pool) <= k {
		return pool
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:k]
}

// learn absorbs peer addresses into the candidate pool.
func (s *session) learn(addrs []netip.Addr) {
	self := s.env.Addr()
	for _, a := range addrs {
		s.c.stats.AddrsLearned++
		if a == self || s.known[akey(a)] {
			continue
		}
		s.known[akey(a)] = true
		s.candidates = append(s.candidates, a)
	}
}

// connectFromList implements "randomly selects a number of peers from the
// list and connects to them immediately": pick ConnectFanout random fresh
// addresses from the just-received list and handshake at once (or, with
// latency bias ablated, after a random defer).
func (s *session) connectFromList(addrs []netip.Addr) {
	if s.buffer == nil {
		return
	}
	fresh := make([]netip.Addr, 0, len(addrs))
	self := s.env.Addr()
	for _, a := range addrs {
		if a == self {
			continue
		}
		if _, connected := s.neighbors[akey(a)]; connected {
			continue
		}
		if s.pendingIdx(akey(a)) >= 0 {
			continue
		}
		fresh = append(fresh, a)
	}
	rng := s.env.Rand()
	rng.Shuffle(len(fresh), func(i, j int) { fresh[i], fresh[j] = fresh[j], fresh[i] })
	n := s.cfg.ConnectFanout
	for _, a := range fresh {
		if n == 0 {
			break
		}
		if len(s.pending) >= s.cfg.MaxPending {
			break
		}
		// Keep probing even at capacity: the ack race against the current
		// worst neighbor (see handleHandshakeAck) is what makes selection
		// latency-based over time.
		s.sendHandshake(a)
		n--
	}
}

func (s *session) sendHandshake(a netip.Addr) {
	if i := s.pendingIdx(akey(a)); i >= 0 {
		s.pending[i].at = s.env.Now()
	} else {
		s.pending = append(s.pending, pendingShake{key: akey(a), at: s.env.Now()})
	}
	s.c.stats.HandshakesSent++
	hs := &wire.Handshake{Channel: s.spec.Channel}
	if s.cfg.LatencyBias {
		s.env.Send(a, hs)
		return
	}
	// Ablation: defer by a uniform random delay (0..2s) so slot acquisition
	// no longer correlates with proximity.
	delay := time.Duration(s.env.Rand().Int63n(int64(2 * time.Second)))
	s.cancels = append(s.cancels, s.env.After(delay, func() {
		if s.phase != PhaseStopped {
			s.env.Send(a, hs)
		}
	}))
}

func (s *session) handleTrackerResponse(from netip.Addr, m *wire.TrackerResponse) {
	if s.buffer == nil {
		return
	}
	if s.trHealth != nil {
		for i, tr := range s.trackers {
			if tr == from {
				s.trHealth[i] = trackerHealth{} // answered: healthy again
				break
			}
		}
	}
	s.c.stats.ListsReceived++
	s.learn(m.Peers)
	s.connectFromList(m.Peers)
}

func (s *session) handleHandshake(from netip.Addr, m *wire.Handshake) {
	if s.buffer == nil {
		return
	}
	// Accept inbound connections up to twice the outbound cap: PPLive peers
	// are generous acceptors, which is what makes clusters highly connected.
	accept := len(s.sortedNeighborAddrs()) < 2*s.cfg.MaxNeighbors
	ack := &wire.HandshakeAck{
		Channel:  s.spec.Channel,
		Accepted: accept,
	}
	if accept {
		ack.Buffer = s.buffer.Snapshot()
		s.c.stats.InboundAccepted++
		s.addNeighbor(from, wire.BufferMap{})
	} else {
		s.c.stats.InboundRejected++
	}
	s.env.Send(from, ack)
}

func (s *session) handleHandshakeAck(from netip.Addr, m *wire.HandshakeAck) {
	i := s.pendingIdx(akey(from))
	if i < 0 {
		return
	}
	started := s.pending[i].at
	s.pending = slices.Delete(s.pending, i, i+1)
	if !m.Accepted || s.buffer == nil {
		s.c.stats.HandshakesRejected++
		return
	}
	rtt := s.env.Now() - started
	if len(s.sortedNeighborAddrs()) >= s.cfg.MaxNeighbors {
		// Table full: the newcomer must beat the slowest current neighbor
		// on measured latency, otherwise the race is lost. This rolling
		// replacement is what turns connect-on-list-arrival into
		// latency-based neighbor selection over a whole session.
		if !s.cfg.LatencyBias {
			s.c.stats.HandshakesRejected++
			return
		}
		worst := s.worstNeighbor()
		if worst == nil || rtt >= neighborRTTEstimate(worst) {
			s.c.stats.HandshakesRejected++
			return
		}
		s.dropNeighbor(worst.addr)
	}
	s.c.stats.HandshakesAccepted++
	nb := s.addNeighbor(from, m.Buffer)
	nb.minRTT = rtt
	nb.score = rtt
	// "Upon the establishment of a new connection, the client will first ask
	// the newly connected peer for its peer list ... then request video data."
	s.c.stats.GossipSent++
	s.env.Send(from, &wire.PeerListRequest{Channel: s.spec.Channel, OwnPeers: s.ownPeerList()})
}

// addNeighbor registers (or refreshes) a connected neighbor and records it
// as a recent connection for referral.
func (s *session) addNeighbor(a netip.Addr, bm wire.BufferMap) *neighbor {
	if nb, ok := s.neighbors[akey(a)]; ok {
		nb.lastHeard = s.env.Now()
		if bm.Words != nil {
			nb.setBuffer(bm, s.env.Now())
		}
		return nb
	}
	nb := &neighbor{
		addr:      a,
		connected: s.env.Now(),
		lastHeard: s.env.Now(),
		planIdx:   -1,
	}
	nb.setBuffer(bm, s.env.Now())
	s.neighbors[akey(a)] = nb
	if a != s.source && !s.isEdge(a) {
		s.sortedInsert(a, nb)
		s.pushRecent(a)
	}
	return nb
}

// worstNeighbor returns the connected neighbor with the highest latency
// estimate (excluding the source), or nil if none.
func (s *session) worstNeighbor() *neighbor {
	var worst *neighbor
	for _, nb := range s.sortedNeighbors() {
		if worst == nil || neighborRTTEstimate(nb) > neighborRTTEstimate(worst) {
			worst = nb
		}
	}
	return worst
}

// pushRecent records a as the most recent connection, deduplicating and
// capping at ReferralSize.
func (s *session) pushRecent(a netip.Addr) {
	for i, existing := range s.recent {
		if existing == a {
			copy(s.recent[1:i+1], s.recent[:i])
			s.recent[0] = a
			return
		}
	}
	s.recent = append(s.recent, netip.Addr{})
	copy(s.recent[1:], s.recent)
	s.recent[0] = a
	if len(s.recent) > s.cfg.ReferralSize {
		s.recent = s.recent[:s.cfg.ReferralSize]
	}
}

func (s *session) handlePeerListRequest(from netip.Addr, m *wire.PeerListRequest) {
	if s.buffer == nil {
		return
	}
	// The requester's enclosed list is free gossip: absorb it.
	s.learn(m.OwnPeers)
	if nb, ok := s.neighbors[akey(from)]; ok {
		nb.lastHeard = s.env.Now()
	}
	reply := &wire.PeerListReply{Channel: s.spec.Channel}
	if s.cfg.ReferralEnabled {
		reply.Peers = s.referralList(from)
	}
	s.env.Send(from, reply)
}

// referralList returns up to ReferralSize recently connected peers, excluding
// the requester itself. recent never contains this session's own address
// (pushRecent only records remote non-source neighbors) and keepalive
// eviction purges dead entries, so a referral can neither bounce the
// requester back to itself nor hand out a neighbor known to be gone. A
// configured selection policy then reorders/clamps the reply — Refer is
// RNG-free, so shaping never perturbs the event trajectory.
func (s *session) referralList(requester netip.Addr) []netip.Addr {
	out := make([]netip.Addr, 0, len(s.recent))
	for _, a := range s.recent {
		if a == requester {
			continue
		}
		out = append(out, a)
	}
	if pol := s.cfg.Selection; pol != nil {
		out = out[:pol.Refer(out, requester)]
	}
	return out
}

// forgetRecent purges a from the referral source — used when a is discovered
// dead (keepalive eviction) so it is never referred to other peers again.
func (s *session) forgetRecent(a netip.Addr) {
	for i, existing := range s.recent {
		if existing == a {
			s.recent = append(s.recent[:i], s.recent[i+1:]...)
			return
		}
	}
}

func (s *session) handlePeerListReply(from netip.Addr, m *wire.PeerListReply) {
	if s.buffer == nil {
		return
	}
	s.c.stats.GossipReplies++
	s.c.stats.ListsReceived++
	if nb, ok := s.neighbors[akey(from)]; ok {
		nb.lastHeard = s.env.Now()
	}
	s.learn(m.Peers)
	// "Once the client receives a peer list ... connects to them immediately."
	s.connectFromList(m.Peers)
}

func (s *session) handleBufferMap(from netip.Addr, m *wire.BufferMapAnnounce) {
	nb, ok := s.neighbors[akey(from)]
	if !ok {
		return
	}
	nb.setBuffer(m.Buffer, s.env.Now())
	nb.lastHeard = s.env.Now()
}

func (s *session) announceBufferMap() {
	if s.buffer == nil {
		return
	}
	bm := s.buffer.Snapshot()
	for _, a := range s.sortedNeighborAddrs() {
		s.env.Send(a, &wire.BufferMapAnnounce{Channel: s.spec.Channel, Buffer: bm})
	}
}

// evictSilent drops neighbors not heard from within NeighborSilence and
// expires handshakes that never got an ack (departed peers, lost datagrams)
// so the pending window cannot clog permanently. Both scans walk
// deterministic slices — the maintained sorted order and the pending window
// — never map range order, so the victim sequence is identical across runs.
func (s *session) evictSilent() {
	now := s.env.Now()
	victims := s.evictScratch[:0]
	for _, nb := range s.sortedNbs {
		if now-nb.lastHeard > s.cfg.NeighborSilence {
			victims = append(victims, nb.addr)
		}
	}
	for _, a := range victims {
		s.dropNeighbor(a)
	}
	s.evictScratch = victims[:0]

	keep := s.pending[:0]
	for _, p := range s.pending {
		if now-p.at > s.cfg.HandshakeTimeout {
			s.c.stats.HandshakeTimeouts++
			continue
		}
		keep = append(keep, p)
	}
	s.pending = keep
}

func (s *session) dropNeighbor(a netip.Addr) {
	nb, ok := s.neighbors[akey(a)]
	if !ok {
		return
	}
	for len(nb.outstanding) > 0 {
		s.clearOutstanding(nb, len(nb.outstanding)-1)
	}
	// Invalidate the dropped neighbor's scheduler-plan row so a stale pointer
	// can never write eligibility bits for whoever inherits the row index.
	nb.planIdx = -1
	delete(s.neighbors, akey(a))
	s.sortedRemove(a)
}

// maybeSteady transitions to the steady phase once playback is satisfactory:
// the buffer holds a healthy share of the pieces between playhead and edge.
func (s *session) maybeSteady() {
	if s.phase != PhaseStartup || s.buffer == nil {
		return
	}
	st := s.buffer.Stats()
	// Count real mesh neighbors only: the source and CDN edges sit in the
	// neighbors map too, but reaching steady phase means the swarm carries
	// playback, not the infrastructure. (Legacy equivalence: without edges,
	// len(neighbors) > 2 was exactly len(sortedNbs) >= 2.)
	if st.Received > uint64(s.cfg.BufferWindow/4) && len(s.sortedNbs) >= 2 {
		s.phase = PhaseSteady
		if !s.c.steadySeen {
			s.c.steadySeen = true
			s.c.timeToSteady = s.env.Now() - s.startedAt
		}
		s.scheduleTrackerQueries(s.cfg.TrackerIntervalSteady)
	}
}

// schedulerTick drives playback and the data request plane.
func (s *session) schedulerTick() {
	if s.buffer == nil {
		return
	}
	now := s.env.Now()
	s.buffer.AdvanceTo(now)
	s.expireRequests(now)

	if s.outstandingTotal >= s.cfg.MaxOutstanding {
		return
	}

	// Determine wanted sub-pieces, skipping those already in flight and
	// bounding prefetch to FetchLead ahead of the playhead (pieces newer
	// than that are too close to the live edge to be widely announced yet).
	budget := (s.cfg.MaxOutstanding - s.outstandingTotal) * s.cfg.BatchCount
	limit := s.buffer.Playhead() + uint64(s.cfg.FetchLead.Seconds()*s.spec.Rate())
	want := s.buffer.AppendWantRing(s.wantScratch[:0], now, budget, limit, s.inflight)
	s.wantScratch = want[:0]
	if len(want) == 0 {
		s.maybeSteady()
		return
	}

	// Precompute every neighbor's coverage of the want range while want is
	// still sorted (its ends bound the range); picks below are mask lookups.
	s.buildSchedPlan(want[0], want[len(want)-1], now)

	// Pieces within two seconds of their deadline are urgent: they go only
	// to proven holders or the source, never to extrapolated coverage. While
	// the source is suspect (consecutive timeouts) the urgent window widens,
	// pulling the mesh fallback forward so playback degrades gracefully
	// instead of stalling at the deadline.
	urgentSpan := uint64(2 * s.spec.Rate())
	if s.sourceSuspect() {
		urgentSpan *= uint64(s.cfg.Resilience.UrgentWidenFactor)
	}
	urgentBound := s.buffer.Playhead() + urgentSpan

	// Keep urgent pieces in deadline order but randomize the rest, so that
	// peers wanting the same region fetch different pieces and can then
	// trade (sequential fetching would synchronize the whole swarm onto the
	// same few providers).
	split := len(want)
	for i, seq := range want {
		if seq >= urgentBound {
			split = i
			break
		}
	}
	s.shuffleBlocks(want[split:], s.cfg.BatchCount)

	// Assign wanted sequences to providers, batching contiguous runs the
	// chosen provider actually covers (up to BatchCount).
	rate := s.spec.Rate()
	for i := 0; i < len(want); {
		seq := want[i]
		target := s.pickProvider(seq, now, seq < urgentBound)
		if target == nil {
			i++
			continue
		}
		j := i + 1
		for j < len(want) && j-i < s.cfg.BatchCount && want[j] == want[j-1]+1 &&
			s.neighborCovers(target, want[j], now, rate) {
			j++
		}
		s.sendDataRequest(target, seq, j-i, now)
		i = j
		if s.outstandingTotal >= s.cfg.MaxOutstanding {
			break
		}
	}
}

// shuffleBlocks randomizes the order of blockSize-sized contiguous blocks of
// seqs in place, preserving intra-block contiguity so batching still works.
// A trailing partial block stays in place (it holds the newest, least-spread
// sequences anyway), which lets the permutation run as allocation-free
// element swaps between equal-sized blocks.
func (s *session) shuffleBlocks(seqs []uint64, blockSize int) {
	rng := s.env.Rand()
	if blockSize == 1 {
		for i := len(seqs) - 1; i > 0; i-- {
			j := s.rbits.intn(rng, i+1)
			seqs[i], seqs[j] = seqs[j], seqs[i]
		}
		return
	}
	if blockSize < 1 || len(seqs) <= blockSize {
		return
	}
	n := len(seqs) / blockSize
	for i := n - 1; i > 0; i-- {
		j := s.rbits.intn(rng, i+1)
		if i == j {
			continue
		}
		a := seqs[i*blockSize : (i+1)*blockSize]
		b := seqs[j*blockSize : (j+1)*blockSize]
		for k := range a {
			a[k], b[k] = b[k], a[k]
		}
	}
}

// neighborCovers is covers() with the source — and CDN edges, whose
// out-of-band ingest tracks the live edge just like the origin's encoder —
// treated as holding everything already emitted.
func (s *session) neighborCovers(nb *neighbor, seq uint64, now time.Duration, rate float64) bool {
	if nb.addr == s.source || s.isEdge(nb.addr) {
		return seq <= s.spec.EdgeSeq(now)
	}
	return nb.covers(seq, now, rate)
}

// inFlight reports whether seq is covered by any outstanding request.
func (s *session) inFlight(seq uint64) bool {
	return s.inflight != nil && s.inflight.Has(seq)
}

// expireRequests times out unanswered data requests, penalizing the
// neighbor's service score.
func (s *session) expireRequests(now time.Duration) {
	for _, nb := range s.sortedNbs {
		s.expireNeighbor(nb, now)
	}
	if src, ok := s.neighbors[akey(s.source)]; ok {
		s.expireNeighbor(src, now)
	}
	// Backwards: expiring an edge can purge it from s.edges in place.
	for i := len(s.edges) - 1; i >= 0; i-- {
		if nb, ok := s.neighbors[akey(s.edges[i])]; ok {
			s.expireNeighbor(nb, now)
		}
	}
}

// Edge failure handling runs whenever edges are deployed (unlike the opt-in
// Resilience block): the whole point of an edge is absorbing urgent misses,
// so a dead or shedding one must leave the urgent path promptly. All delays
// are fixed or hash-jittered (backoffDelay) — no RNG draws.
const (
	// edgeFailThreshold is the consecutive-timeout streak after which an
	// edge is purged from the session (crashed or unreachable).
	edgeFailThreshold = 3
	// edgeBackoffBase/Max bound the per-timeout hold-off before the purge
	// threshold is reached.
	edgeBackoffBase = 2 * time.Second
	edgeBackoffMax  = 30 * time.Second
	// edgeBusyHoldoff is how long a Busy (shedding) edge is skipped in the
	// fallback walk, matching the uplink backlog that triggered the shed.
	edgeBusyHoldoff = 2 * time.Second
)

// purgeEdge removes a crashed or evicted edge from the session entirely: out
// of the affinity order, out of the neighbor table, never picked again.
func (s *session) purgeEdge(a netip.Addr) {
	for i, e := range s.edges {
		if e == a {
			s.edges = append(s.edges[:i], s.edges[i+1:]...)
			break
		}
	}
	delete(s.edgeSet, akey(a))
	s.dropNeighbor(a)
}

func (s *session) expireNeighbor(nb *neighbor, now time.Duration) {
	expired := false
	for i := 0; i < len(nb.outstanding); {
		if now-nb.outstanding[i].at > s.cfg.RequestTimeout {
			s.clearOutstanding(nb, i)
			s.c.stats.RequestTimeouts++
			// A timeout is strong evidence of overload or departure.
			nb.score = ewma(nb.score, 2*s.cfg.RequestTimeout)
			expired = true
		} else {
			i++
		}
	}
	if !expired {
		return
	}
	// Edges back off and eventually purge regardless of the opt-in
	// Resilience block: unlike a mesh neighbor, an edge sits on the urgent
	// path by standing appointment, so a dead one must be walked past (next
	// edge, then the source) and evicted after a short streak.
	if s.isEdge(nb.addr) {
		nb.failStreak++
		nb.backoffUntil = now + backoffDelay(edgeBackoffBase, edgeBackoffMax, nb.failStreak, akey(nb.addr))
		if nb.failStreak >= edgeFailThreshold {
			s.purgeEdge(nb.addr)
		}
		return
	}
	if !s.resilient() {
		return
	}
	// The expired sequences re-enter the want set next tick (retransmission);
	// the failed provider is penalized with a capped exponential backoff so
	// retries go elsewhere while it is struggling. Source timeouts feed the
	// suspect counter instead — the source has no substitute to back off to.
	if nb.addr == s.source {
		s.srcFails++
		return
	}
	r := &s.cfg.Resilience
	nb.failStreak++
	nb.backoffUntil = now + backoffDelay(r.RequestBackoff, r.RequestBackoffMax, nb.failStreak, akey(nb.addr))
}

// clearOutstanding removes the pending request at index i (swap-remove; the
// slice is unordered) and its inflight coverage.
func (s *session) clearOutstanding(nb *neighbor, i int) {
	req := nb.outstanding[i]
	last := len(nb.outstanding) - 1
	nb.outstanding[i] = nb.outstanding[last]
	nb.outstanding = nb.outstanding[:last]
	s.outstandingTotal--
	for k := 0; k < req.count; k++ {
		s.inflight.Clear(req.seq + uint64(k))
	}
}

func (s *session) sendDataRequest(nb *neighbor, seq uint64, count int, now time.Duration) {
	nb.outstanding = append(nb.outstanding, pendingReq{seq: seq, at: now, count: count})
	s.outstandingTotal++
	for i := 0; i < count; i++ {
		s.inflight.Set(seq + uint64(i))
	}
	s.planNoteSent(nb)
	nb.requests++
	s.c.stats.DataRequestsSent++
	if s.c.emitRequest != nil {
		s.c.emitRequest(nb.addr, seq, count)
		return
	}
	s.env.Send(nb.addr, &wire.DataRequest{
		Channel: s.spec.Channel,
		Seq:     seq,
		Count:   uint16(count),
	})
}

// handleDataRequest serves a neighbor's request with the prefix run of
// pieces we hold, unless our uplink is already overloaded.
func (s *session) handleDataRequest(from netip.Addr, m *wire.DataRequest) {
	if s.buffer == nil {
		return
	}
	if nb, ok := s.neighbors[akey(from)]; ok {
		nb.lastHeard = s.env.Now()
	}
	// An overloaded uplink sheds load with a tiny busy reply, redirecting
	// the requester quickly. Accepted requests still ride the growing
	// uplink queue — the application-layer queuing behind the paper's
	// load-dependent response times.
	if s.env.UplinkBacklog() > s.cfg.ServeQueueLimit {
		s.c.stats.DataRequestsShed++
		s.env.Send(from, &wire.DataReply{
			Channel:  s.spec.Channel,
			Seq:      m.Seq,
			Count:    0,
			PieceLen: uint16(s.spec.SubPieceLen),
			Busy:     true,
		})
		return
	}
	count := int(m.Count)
	if count == 0 {
		count = 1
	}
	run := 0
	for run < count && s.buffer.Has(m.Seq+uint64(run)) {
		run++
	}
	if run == 0 {
		// Explicit no-have: a tiny reply (Count=0) so the requester can
		// reschedule immediately instead of burning a timeout. Piggyback a
		// fresh buffer map (rate-limited per peer) so the requester's stale
		// view of us gets corrected at exactly the moment it misfired.
		s.c.stats.DataRequestsDeclined++
		s.env.Send(from, &wire.DataReply{
			Channel:  s.spec.Channel,
			Seq:      m.Seq,
			Count:    0,
			PieceLen: uint16(s.spec.SubPieceLen),
		})
		now := s.env.Now()
		if last, ok := s.lastMapTo[akey(from)]; !ok || now-last >= time.Second {
			if s.lastMapTo == nil {
				s.lastMapTo = make(map[uint32]time.Duration)
			}
			s.lastMapTo[akey(from)] = now
			s.env.Send(from, &wire.BufferMapAnnounce{
				Channel: s.spec.Channel,
				Buffer:  s.buffer.Snapshot(),
			})
		}
		return
	}
	s.c.stats.DataRequestsServed++
	s.env.Send(from, &wire.DataReply{
		Channel:  s.spec.Channel,
		Seq:      m.Seq,
		Count:    uint16(run),
		PieceLen: uint16(s.spec.SubPieceLen),
	})
}

func (s *session) handleDataReply(from netip.Addr, m *wire.DataReply) {
	if s.buffer == nil {
		return
	}
	nb, ok := s.neighbors[akey(from)]
	if !ok {
		return
	}
	now := s.env.Now()
	nb.lastHeard = now
	// Any reply — data, busy, or no-have — proves the sender is alive: reset
	// its failure streak (and the source-suspect counter for the source).
	nb.failStreak, nb.backoffUntil = 0, 0
	if from == s.source {
		s.srcFails = 0
	}

	if m.Count == 0 {
		// Miss: clear the in-flight slot. For busy signals, penalize the
		// neighbor's service score so the scheduler spreads load away; for
		// no-haves, the piggybacked buffer map corrects our stale view.
		if i := nb.findOutstanding(m.Seq); i >= 0 {
			s.clearOutstanding(nb, i)
		}
		if m.Busy {
			s.c.stats.DataBusies++
			// Penalize proportionally: a busy signal means "currently about
			// twice as slow as usual", steering load away without burying
			// genuinely fast neighbors.
			nb.score = ewma(nb.score, 2*score(nb))
			// A shedding edge gets a short deterministic hold-off so the
			// urgent fallback walks on to the next edge (then the source)
			// instead of re-hitting a saturated cache.
			if s.isEdge(from) {
				nb.backoffUntil = now + edgeBusyHoldoff
			}
		} else {
			s.c.stats.DataNoHaves++
		}
		return
	}

	if i := nb.findOutstanding(m.Seq); i >= 0 {
		rt := now - nb.outstanding[i].at
		s.clearOutstanding(nb, i)
		nb.score = ewma(nb.score, rt)
		if nb.minRTT == 0 || rt < nb.minRTT {
			nb.minRTT = rt
		}
	}
	nb.replies++
	nb.bytes += uint64(m.PayloadLen())
	nb.learnHas(m.Seq, m.Seq+uint64(m.Count)-1, now)
	s.c.stats.DataRepliesGot++
	s.c.stats.DataBytesGot += uint64(m.PayloadLen())
	fresh := false
	for i := uint64(0); i < uint64(m.Count); i++ {
		if s.buffer.Mark(m.Seq + i) {
			fresh = true
		}
	}
	if fresh {
		s.gossipHave(m.Seq, m.Count, from)
	}
}

// gossipHave hints freshly acquired pieces to a few random neighbors,
// making piece availability spread exponentially through the mesh instead
// of waiting for periodic buffer-map rounds.
func (s *session) gossipHave(seq uint64, count uint16, from netip.Addr) {
	if s.cfg.HintFanout <= 0 {
		return
	}
	pool := s.sortedNeighborAddrs()
	if len(pool) == 0 {
		return
	}
	rng := s.env.Rand()
	msg := &wire.Have{Channel: s.spec.Channel, Seq: seq, Count: count}
	sent := 0
	for attempts := 0; sent < s.cfg.HintFanout && attempts < 3*s.cfg.HintFanout; attempts++ {
		a := pool[rng.Intn(len(pool))]
		if a == from {
			continue
		}
		s.env.Send(a, msg)
		sent++
	}
}

// handleHave records a neighbor's per-piece availability hint.
func (s *session) handleHave(from netip.Addr, m *wire.Have) {
	nb, ok := s.neighbors[akey(from)]
	if !ok || m.Count == 0 {
		return
	}
	nb.lastHeard = s.env.Now()
	nb.learnHas(m.Seq, m.Seq+uint64(m.Count)-1, s.env.Now())
}
