package peer

import (
	"fmt"
	"net/netip"
	"time"

	"pplivesim/internal/selection"
	"pplivesim/internal/stream"
)

// Config controls one client's protocol behaviour. Defaults mirror the
// protocol facts the paper reverse-engineered (§2): 20-second neighbor
// peer-list gossip, five-minute tracker re-query once playback is
// satisfactory, ≤60-entry referral lists, and connect-as-soon-as-a-list-
// arrives neighbor selection.
type Config struct {
	// Channel is the live channel to join.
	Channel stream.Spec
	// Bootstrap is the bootstrap/channel server address (obtained via DNS in
	// the real client; the simulation hands it over directly).
	Bootstrap netip.Addr

	// StartupDelay is the playback buffering delay after the playlink is
	// resolved.
	StartupDelay time.Duration
	// BufferWindow is the playback ring capacity in sub-pieces.
	BufferWindow int

	// GossipInterval is how often the client queries neighbors for fresh
	// peer lists (the paper measures 20 s).
	GossipInterval time.Duration
	// GossipFanout is how many neighbors are queried per gossip round.
	GossipFanout int

	// TrackerIntervalStartup is the tracker re-query period before playback
	// is satisfactory.
	TrackerIntervalStartup time.Duration
	// TrackerIntervalSteady is the reduced tracker re-query period once
	// playback is satisfactory (the paper measures five minutes).
	TrackerIntervalSteady time.Duration
	// AnnounceInterval is how often the client re-announces itself to
	// trackers so its entry does not expire.
	AnnounceInterval time.Duration

	// MaxNeighbors caps the connected neighbor set.
	MaxNeighbors int
	// ConnectFanout is how many peers the client tries to connect to,
	// selected at random, from each received peer list.
	ConnectFanout int
	// MaxPending caps in-flight handshakes.
	MaxPending int
	// HandshakeTimeout expires unanswered handshakes so the pending window
	// cannot clog with departed peers.
	HandshakeTimeout time.Duration
	// ReferralSize caps the peer list returned to a requesting neighbor.
	ReferralSize int

	// BufferMapInterval is how often the client advertises its buffer map.
	BufferMapInterval time.Duration
	// HintFanout is how many random neighbors receive a Have hint when new
	// pieces arrive (0 disables hinting).
	HintFanout int
	// SchedInterval is the data-scheduler tick period.
	SchedInterval time.Duration
	// FetchLead bounds prefetch: the scheduler requests pieces at most this
	// far (in stream time) ahead of the playhead.
	FetchLead time.Duration
	// BatchCount is how many consecutive sub-pieces one data request covers.
	// Probe peers use 1 (full per-sub-piece fidelity, as in the captured
	// traces); background peers may batch for simulation efficiency.
	BatchCount int
	// MaxOutstandingPerNeighbor caps pipelined data requests per neighbor.
	MaxOutstandingPerNeighbor int
	// MaxOutstanding caps total in-flight data requests.
	MaxOutstanding int
	// RequestTimeout expires unanswered data requests for rescheduling.
	RequestTimeout time.Duration
	// SourcePrefetchProb is the probability that a non-urgent piece with no
	// mesh holder is prefetched from the source (seeding fresh pieces into
	// the mesh). Urgent pieces always may use the source.
	SourcePrefetchProb float64

	// NeighborSilence evicts a neighbor not heard from for this long.
	NeighborSilence time.Duration

	// ServeQueueLimit declines incoming data requests when the host's
	// uplink backlog exceeds this bound, modeling an overloaded peer.
	ServeQueueLimit time.Duration

	// LatencyBias enables connect-on-list-arrival semantics: handshakes go
	// out the moment a list arrives and free slots are claimed by the
	// earliest acks (so nearby peers win the race). Disabling it (ablation)
	// defers each handshake by a uniform random delay, destroying the
	// correlation between proximity and slot acquisition.
	LatencyBias bool
	// ReferralEnabled answers neighbor peer-list requests with recently
	// connected peers. Disabling it (ablation) returns empty lists, leaving
	// tracker responses as the only discovery channel, as in
	// tracker-centric systems.
	ReferralEnabled bool
	// PreferFastNeighbors weights data-request scheduling toward neighbors
	// with faster observed service. Disabling it schedules uniformly.
	PreferFastNeighbors bool

	// Selection shapes referral replies (the ReferralEnabled path). nil is
	// the legacy behaviour — recency order passed through untouched, zero
	// RNG draws — which the pinned golden digests depend on. Referral
	// shaping is deterministic for every policy (selection.Policy.Refer
	// never draws), so a biased policy here stays worker-count invariant.
	Selection selection.Policy

	// Resilience enables the fault-tolerance protocol extensions. The zero
	// value disables every one of them, leaving the client's event and RNG
	// trajectory bit-identical to a build without the machinery — the pinned
	// golden digests depend on that, so core only turns it on for scenarios
	// with a fault schedule.
	Resilience Resilience
}

// Resilience tunes the hardening layer: retry backoff, keepalive failure
// detection, tracker outage handling, and source-failure degradation. All
// deliberate randomness in these paths is hash-derived (splitmix64 of stable
// keys), never drawn from the session RNG, so enabling them under a fault
// schedule keeps the trajectory worker-count invariant.
type Resilience struct {
	// Enabled turns the whole layer on.
	Enabled bool

	// BootstrapBackoff is the initial retry delay for an unanswered
	// playlink request; retries back off exponentially to BootstrapBackoffMax
	// with deterministic jitter.
	BootstrapBackoff    time.Duration
	BootstrapBackoffMax time.Duration

	// KeepaliveInterval is the ping cadence toward neighbors that have been
	// silent for KeepaliveIdle; a neighbor silent for KeepaliveDead despite
	// pings is evicted as failed (much faster than NeighborSilence).
	KeepaliveInterval time.Duration
	KeepaliveIdle     time.Duration
	KeepaliveDead     time.Duration

	// RequestBackoff is the per-neighbor penalty after a request timeout:
	// the scheduler skips the neighbor for RequestBackoff << (streak-1),
	// capped at RequestBackoffMax, with deterministic jitter.
	RequestBackoff    time.Duration
	RequestBackoffMax time.Duration

	// TrackerBackoff delays re-queries to a tracker whose last query went
	// unanswered, doubling per consecutive failure up to TrackerBackoffMax.
	TrackerBackoff    time.Duration
	TrackerBackoffMax time.Duration

	// SourceFailThreshold is how many consecutive source-request timeouts
	// mark the source suspect; while suspect the scheduler widens its urgent
	// window by UrgentWidenFactor and re-enables any-neighbor (inter-ISP)
	// fallback for urgent pieces instead of stalling on the dead source.
	SourceFailThreshold int
	UrgentWidenFactor   int
	// SourceProbeEvery is how often (in scheduler picks that would have gone
	// to the source) a suspect source is probed so recovery is noticed.
	SourceProbeEvery int

	// ReannounceFloor triggers an immediate tracker re-query when keepalive
	// eviction shrinks the neighbor table below this many entries.
	ReannounceFloor int
}

// DefaultResilience returns the hardening parameters used by chaos scenarios.
func DefaultResilience() Resilience {
	return Resilience{
		Enabled:             true,
		BootstrapBackoff:    2 * time.Second,
		BootstrapBackoffMax: 30 * time.Second,
		KeepaliveInterval:   5 * time.Second,
		KeepaliveIdle:       10 * time.Second,
		KeepaliveDead:       15 * time.Second,
		RequestBackoff:      2 * time.Second,
		RequestBackoffMax:   30 * time.Second,
		TrackerBackoff:      15 * time.Second,
		TrackerBackoffMax:   4 * time.Minute,
		SourceFailThreshold: 3,
		UrgentWidenFactor:   3,
		SourceProbeEvery:    16,
		ReannounceFloor:     6,
	}
}

// DefaultConfig returns full-fidelity (probe-grade) client settings.
func DefaultConfig(spec stream.Spec, bootstrap netip.Addr) Config {
	return Config{
		Channel:                   spec,
		Bootstrap:                 bootstrap,
		StartupDelay:              20 * time.Second,
		BufferWindow:              2048,
		GossipInterval:            20 * time.Second,
		GossipFanout:              10,
		TrackerIntervalStartup:    30 * time.Second,
		TrackerIntervalSteady:     5 * time.Minute,
		AnnounceInterval:          time.Minute,
		MaxNeighbors:              28,
		ConnectFanout:             5,
		MaxPending:                12,
		HandshakeTimeout:          8 * time.Second,
		ReferralSize:              60,
		BufferMapInterval:         5 * time.Second,
		HintFanout:                6,
		SchedInterval:             250 * time.Millisecond,
		FetchLead:                 18 * time.Second,
		BatchCount:                1,
		MaxOutstandingPerNeighbor: 16,
		MaxOutstanding:            120,
		RequestTimeout:            2500 * time.Millisecond,
		SourcePrefetchProb:        0.015,
		NeighborSilence:           45 * time.Second,
		ServeQueueLimit:           2500 * time.Millisecond,
		LatencyBias:               true,
		ReferralEnabled:           true,
		PreferFastNeighbors:       true,
	}
}

// BackgroundConfig returns coarse-fidelity settings for swarm-population
// peers: identical protocol, but data requests batch BatchCount sub-pieces
// and the scheduler ticks less often, cutting event volume roughly 16× while
// leaving bandwidth and queuing loads unchanged.
func BackgroundConfig(spec stream.Spec, bootstrap netip.Addr) Config {
	cfg := DefaultConfig(spec, bootstrap)
	cfg.SchedInterval = time.Second
	cfg.BatchCount = 8
	cfg.MaxOutstandingPerNeighbor = 6
	cfg.MaxOutstanding = 24
	cfg.BufferMapInterval = 5 * time.Second // hints carry the freshness
	return cfg
}

// Validate checks the configuration for usability.
func (c *Config) Validate() error {
	if err := c.Channel.Validate(); err != nil {
		return err
	}
	if !c.Bootstrap.IsValid() {
		return fmt.Errorf("peer: bootstrap address unset")
	}
	if c.BufferWindow <= 8 {
		return fmt.Errorf("peer: buffer window %d too small", c.BufferWindow)
	}
	if c.GossipInterval <= 0 || c.SchedInterval <= 0 || c.BufferMapInterval <= 0 || c.FetchLead <= 0 {
		return fmt.Errorf("peer: non-positive protocol interval")
	}
	if c.TrackerIntervalStartup <= 0 || c.TrackerIntervalSteady <= 0 || c.AnnounceInterval <= 0 {
		return fmt.Errorf("peer: non-positive tracker interval")
	}
	if c.MaxNeighbors <= 0 || c.ConnectFanout <= 0 || c.MaxPending <= 0 {
		return fmt.Errorf("peer: non-positive neighbor limits")
	}
	// The scheduler packs neighbor indices into 10 bits of its score-order
	// keys (see buildSchedPlan); the table can hold up to 2*MaxNeighbors.
	if c.MaxNeighbors > 512 {
		return fmt.Errorf("peer: max neighbors %d out of range (limit 512)", c.MaxNeighbors)
	}
	if c.ReferralSize <= 0 || c.ReferralSize > 255 {
		return fmt.Errorf("peer: referral size %d out of range", c.ReferralSize)
	}
	if c.BatchCount <= 0 || c.BatchCount > 64 {
		return fmt.Errorf("peer: batch count %d out of range", c.BatchCount)
	}
	if c.MaxOutstanding <= 0 || c.MaxOutstandingPerNeighbor <= 0 {
		return fmt.Errorf("peer: non-positive outstanding limits")
	}
	if c.RequestTimeout <= 0 || c.NeighborSilence <= 0 || c.HandshakeTimeout <= 0 {
		return fmt.Errorf("peer: non-positive timeout")
	}
	if r := &c.Resilience; r.Enabled {
		if r.BootstrapBackoff <= 0 || r.BootstrapBackoffMax < r.BootstrapBackoff {
			return fmt.Errorf("peer: bad bootstrap backoff bounds")
		}
		if r.KeepaliveInterval <= 0 || r.KeepaliveIdle <= 0 || r.KeepaliveDead <= r.KeepaliveIdle {
			return fmt.Errorf("peer: bad keepalive bounds")
		}
		if r.RequestBackoff <= 0 || r.RequestBackoffMax < r.RequestBackoff {
			return fmt.Errorf("peer: bad request backoff bounds")
		}
		if r.TrackerBackoff <= 0 || r.TrackerBackoffMax < r.TrackerBackoff {
			return fmt.Errorf("peer: bad tracker backoff bounds")
		}
		if r.SourceFailThreshold <= 0 || r.UrgentWidenFactor < 1 || r.SourceProbeEvery <= 0 {
			return fmt.Errorf("peer: bad source failure thresholds")
		}
	}
	return nil
}
