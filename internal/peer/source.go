package peer

import (
	"net/netip"
	"time"

	"pplivesim/internal/node"
	"pplivesim/internal/stream"
	"pplivesim/internal/wire"
)

// Source is a channel's origin server: it holds every sub-piece up to the
// live edge and serves data requests, acting as the injection point and the
// provider of last resort. Like PPLive's seed servers it also answers
// peer-list requests with its recently seen clients, which seeds the very
// first overlay edges of a young channel.
type Source struct {
	env  node.Env
	spec stream.Spec

	// start is the instant the channel went live (sequence 0's emission).
	start time.Duration

	// recent tracks recently seen client addresses for referral.
	recent    []netip.Addr
	recentIdx map[netip.Addr]bool
	maxRecent int

	// down marks the source as crashed: every inbound datagram is dropped
	// (UDP-style — the process is gone, nothing answers). Fault injection
	// toggles it; the stream clock keeps running so the live edge is where it
	// should be when the process comes back.
	down bool

	// Stats.
	served      uint64
	servedBytes uint64
	shed        uint64
}

// NewSource creates a source for the channel, live since the current
// instant.
func NewSource(env node.Env, spec stream.Spec) (*Source, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Source{
		env:       env,
		spec:      spec,
		start:     env.Now(),
		recentIdx: make(map[netip.Addr]bool),
		maxRecent: wire.MaxPeerList,
	}, nil
}

var _ node.Handler = (*Source)(nil)

// Addr returns the source's address.
func (s *Source) Addr() netip.Addr { return s.env.Addr() }

// Spec returns the channel spec.
func (s *Source) Spec() stream.Spec { return s.spec }

// edge returns the newest emitted sequence at now.
func (s *Source) edge(now time.Duration) uint64 {
	return s.spec.EdgeSeq(now - s.start)
}

// Has reports whether the source can serve sub-piece seq at now.
func (s *Source) Has(seq uint64, now time.Duration) bool {
	return seq <= s.edge(now)
}

// Stats reports data requests served and payload bytes sent.
func (s *Source) Stats() (served, servedBytes uint64) {
	return s.served, s.servedBytes
}

// SetDown toggles the crashed state; while down the source drops all inbound
// traffic.
func (s *Source) SetDown(down bool) { s.down = down }

// note records a client contact for referral.
func (s *Source) note(a netip.Addr) {
	if s.recentIdx[a] {
		return
	}
	s.recentIdx[a] = true
	s.recent = append(s.recent, a)
	if len(s.recent) > s.maxRecent {
		evicted := s.recent[0]
		s.recent = s.recent[1:]
		delete(s.recentIdx, evicted)
	}
}

// bufferMap returns a map covering the trailing window up to the live edge,
// all bits set.
func (s *Source) bufferMap(now time.Duration) wire.BufferMap {
	const window = 2048
	edge := s.edge(now)
	start := uint64(0)
	if edge+1 > window {
		start = edge + 1 - window
	}
	bm := wire.MakeBufferMap(start, window)
	if edge >= start {
		bm.SetRange(start, edge)
	}
	return bm
}

// HandleMessage implements node.Handler.
func (s *Source) HandleMessage(from netip.Addr, msg wire.Message) {
	if s.down {
		return
	}
	switch m := msg.(type) {
	case *wire.Handshake:
		if m.Channel != s.spec.Channel {
			return
		}
		s.note(from)
		s.env.Send(from, &wire.HandshakeAck{
			Channel:  s.spec.Channel,
			Accepted: true,
			Buffer:   s.bufferMap(s.env.Now()),
		})
	case *wire.PeerListRequest:
		if m.Channel != s.spec.Channel {
			return
		}
		s.note(from)
		peers := make([]netip.Addr, 0, len(s.recent))
		for _, a := range s.recent {
			if a != from {
				peers = append(peers, a)
			}
		}
		s.env.Send(from, &wire.PeerListReply{Channel: s.spec.Channel, Peers: peers})
	case *wire.DataRequest:
		if m.Channel != s.spec.Channel {
			return
		}
		s.note(from)
		// Shed load once the uplink backs up: a saturated origin answers
		// with a tiny busy reply rather than queueing full replies past
		// their deadlines — the requester frees its source slot at once
		// instead of burning a request timeout on it.
		if s.env.UplinkBacklog() > 2*time.Second {
			s.shed++
			s.env.Send(from, &wire.DataReply{
				Channel:  s.spec.Channel,
				Seq:      m.Seq,
				Count:    0,
				PieceLen: uint16(s.spec.SubPieceLen),
				Busy:     true,
			})
			return
		}
		now := s.env.Now()
		count := int(m.Count)
		if count == 0 {
			count = 1
		}
		run := 0
		for run < count && s.Has(m.Seq+uint64(run), now) {
			run++
		}
		if run == 0 {
			return
		}
		s.served++
		s.servedBytes += uint64(run * s.spec.SubPieceLen)
		s.env.Send(from, &wire.DataReply{
			Channel:  s.spec.Channel,
			Seq:      m.Seq,
			Count:    uint16(run),
			PieceLen: uint16(s.spec.SubPieceLen),
		})
	case *wire.BufferMapAnnounce:
		// Sources ignore client buffer maps.
	case *wire.Ping:
		if m.Channel != s.spec.Channel {
			return
		}
		s.env.Send(from, &wire.Pong{Channel: m.Channel, Nonce: m.Nonce})
	default:
	}
}
