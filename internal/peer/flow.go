package peer

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"pplivesim/internal/selection"
	"pplivesim/internal/stream"
	"pplivesim/internal/wire"
)

// FlowPort is the boundary between a FlowSwarm and its environment. The core
// package implements it over one shard domain: member i's sends go out of
// that member's host, and Respawn schedules a replacement join on the owning
// domain's engine. Everything a swarm does flows through this interface, so
// the swarm itself holds no engine or network references.
type FlowPort interface {
	// Now is the owning domain's simulated clock.
	Now() time.Duration
	// Send transmits a message from member i's host.
	Send(i int, to netip.Addr, msg wire.Message)
	// UplinkBacklog is member i's host transmit-queue delay.
	UplinkBacklog(i int) time.Duration
	// Retire detaches member i's host from the network.
	Retire(i int)
	// Respawn schedules one replacement member to join after delay.
	Respawn(delay time.Duration)
}

// FlowConfig parameterizes a flow-fidelity swarm. The protocol-facing knobs
// mirror Config so a probe cannot tell a flow member from a batched Client.
type FlowConfig struct {
	Spec stream.Spec

	// Window is how many consecutive sub-pieces back from its newest held
	// piece a member retains (the Client BufferWindow analog).
	Window int
	// MaxLag bounds how far (in sub-pieces) a member's newest held piece
	// trails the live edge; each member draws uniformly in [1, MaxLag].
	// Healthy full-fidelity peers prefetch to within a couple of seconds of
	// the edge, so the default is small.
	MaxLag int

	// LinksPerMember and MaxLinks bound the probe-facing neighbor links a
	// swarm accepts (per member and in total). Links exist only where a
	// full-fidelity peer handshakes into the swarm; members never link to
	// each other.
	LinksPerMember int
	MaxLinks       int

	// ServeQueueLimit mirrors Config.ServeQueueLimit: data requests are
	// declined Busy while the member's uplink backlog exceeds it.
	ServeQueueLimit time.Duration
	// AnnounceMin mirrors the full client's per-peer buffer-map piggyback
	// rate limit on declined data requests.
	AnnounceMin time.Duration

	// MeanSession, when positive, enables flow-level churn: the expected
	// departure count accrues at nAlive/MeanSession per unit time, and each
	// departure retires one random member and asks the port for a
	// replacement after an exponential ReplacementDelay.
	MeanSession      time.Duration
	ReplacementDelay time.Duration

	// TrackerSample bounds how many members keep tracker registrations
	// alive (the full population announcing every minute would be pure
	// event-queue load; probes only ever consume a 50-peer sample anyway).
	TrackerSample int

	// Selection shapes referral replies, mirroring Config.Selection. nil is
	// the legacy pass-through; any policy's Refer is RNG-free, so shaping
	// never touches the swarm's deterministic draw stream.
	Selection selection.Policy
}

// DefaultFlowConfig returns the flow-swarm parameters matching
// DefaultConfig's protocol surface.
func DefaultFlowConfig(spec stream.Spec) FlowConfig {
	return FlowConfig{
		Spec:            spec,
		Window:          2048,
		MaxLag:          72,
		LinksPerMember:  4,
		MaxLinks:        4096,
		ServeQueueLimit: 2500 * time.Millisecond,
		AnnounceMin:     time.Second,
		TrackerSample:   256,
	}
}

// Validate checks the config for usability.
func (c *FlowConfig) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Window <= 8 || c.Window > 1<<16 {
		return fmt.Errorf("peer: flow window %d out of range", c.Window)
	}
	if c.MaxLag <= 0 || c.MaxLag >= c.Window {
		return fmt.Errorf("peer: flow max lag %d out of range (window %d)", c.MaxLag, c.Window)
	}
	if c.LinksPerMember <= 0 || c.MaxLinks < c.LinksPerMember {
		return fmt.Errorf("peer: flow link bounds %d/%d invalid", c.LinksPerMember, c.MaxLinks)
	}
	if c.ServeQueueLimit <= 0 || c.AnnounceMin <= 0 {
		return fmt.Errorf("peer: flow serve limits must be positive")
	}
	if c.TrackerSample <= 0 {
		return fmt.Errorf("peer: flow tracker sample must be positive")
	}
	return nil
}

// flowNbrWidth is the per-member neighbor row width: the referral sample a
// member hands to a gossiping probe. Full clients refer up to ReferralSize
// neighbors; flow members keep a fixed narrow row so a million rows stay flat
// and small, and probes top up through trackers and further gossip.
const flowNbrWidth = 8

// flowLink is one probe-facing neighbor link. The table is bounded by
// MaxLinks and in practice holds a handful of entries per probe, so linear
// scans are cheaper than any per-member index.
type flowLink struct {
	member  int32
	addr    netip.Addr
	lastMap time.Duration
}

// FlowSwarm is the struct-of-arrays background population of one shard
// domain and channel at FidelityFlow. Per-member state is flat parallel
// arrays — no per-peer maps, pointers, timers, or RNGs — and the aggregate
// behaviour (bytes streamed, churn) advances in O(1) per Tick regardless of
// population size. Holdings are an arithmetic function of (live edge, lag,
// join edge): a member holds the contiguous sub-piece interval
// [max(joinSeq, hi-Window+1), hi] with hi = edge - lag, which is the SoA
// compression of the full client's buffer-map words — the wire BufferMap is
// materialized on demand only when a probe asks.
//
// A FlowSwarm is owned by one shard domain: every method runs on that
// domain's worker, so no synchronization is needed and churn draws come from
// one deterministic stream.
type FlowSwarm struct {
	cfg  FlowConfig
	port FlowPort
	rng  *rand.Rand

	// Per-member rows, index = member id. Rows are recycled through free on
	// departure, never released.
	addrs   []netip.Addr
	joinSeq []uint64 // live-edge sequence at join (holds nothing older)
	lag     []uint16 // newest held piece trails the live edge by this much
	alive   []bool
	nbr     []int32 // flat flowNbrWidth-wide referral rows
	free    []int32

	links []flowLink

	nAlive   int
	trackers []netip.Addr
	nextTrk  int

	lastTick     time.Duration
	carryBytes   float64 // fractional streamed bytes carried between ticks
	carryDepart  float64 // fractional expected departures carried between ticks
	pendingBytes uint64  // whole streamed bytes awaiting TakeBytes
}

// NewFlowSwarm creates an empty swarm sized for capacity members. rng drives
// lag/referral/churn draws and must belong to the owning domain's stream.
// trackers is where sampled members keep their registrations.
func NewFlowSwarm(cfg FlowConfig, port FlowPort, rng *rand.Rand, trackers []netip.Addr, capacity int) (*FlowSwarm, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("peer: flow swarm capacity %d invalid", capacity)
	}
	return &FlowSwarm{
		cfg:      cfg,
		port:     port,
		rng:      rng,
		addrs:    make([]netip.Addr, 0, capacity),
		joinSeq:  make([]uint64, 0, capacity),
		lag:      make([]uint16, 0, capacity),
		alive:    make([]bool, 0, capacity),
		nbr:      make([]int32, 0, capacity*flowNbrWidth),
		free:     make([]int32, 0, capacity),
		links:    make([]flowLink, 0, 16),
		trackers: trackers,
	}, nil
}

// Len returns the number of member rows ever allocated (alive or not).
func (s *FlowSwarm) Len() int { return len(s.addrs) }

// Alive returns the live member count.
func (s *FlowSwarm) Alive() int { return s.nAlive }

// Add joins a member at addr and returns its row index. Departed rows are
// recycled before new ones are allocated.
func (s *FlowSwarm) Add(addr netip.Addr) int {
	now := s.port.Now()
	var i int
	if n := len(s.free); n > 0 {
		i = int(s.free[n-1])
		s.free = s.free[:n-1]
		s.addrs[i] = addr
		s.joinSeq[i] = s.cfg.Spec.EdgeSeq(now)
		s.lag[i] = s.drawLag()
		s.alive[i] = true
	} else {
		i = len(s.addrs)
		s.addrs = append(s.addrs, addr)
		s.joinSeq = append(s.joinSeq, s.cfg.Spec.EdgeSeq(now))
		s.lag = append(s.lag, s.drawLag())
		s.alive = append(s.alive, true)
		s.nbr = append(s.nbr, make([]int32, flowNbrWidth)...)
	}
	// The referral row samples the swarm as of join; dead entries are
	// filtered at referral time, exactly as a full client's neighbor set
	// decays between gossip rounds.
	row := s.nbr[i*flowNbrWidth : (i+1)*flowNbrWidth]
	for k := range row {
		row[k] = int32(s.rng.Intn(len(s.addrs)))
	}
	s.nAlive++
	return i
}

func (s *FlowSwarm) drawLag() uint16 {
	return uint16(1 + s.rng.Intn(s.cfg.MaxLag))
}

// retire removes member i from the swarm and detaches its host. Links it was
// serving are dropped.
func (s *FlowSwarm) retire(i int) {
	if !s.alive[i] {
		return
	}
	s.alive[i] = false
	s.nAlive--
	s.free = append(s.free, int32(i))
	w := 0
	for _, l := range s.links {
		if l.member != int32(i) {
			s.links[w] = l
			w++
		}
	}
	s.links = s.links[:w]
	s.port.Retire(i)
}

// KillFraction abruptly retires each live member with probability frac, with
// no replacement — the flow-level analog of Client.Kill under a kill-churn
// fault. Draws come from the swarm's own (owning-domain) RNG stream, so the
// killed set is worker-count invariant. It returns the number killed.
func (s *FlowSwarm) KillFraction(frac float64) int {
	killed := 0
	for i := range s.alive {
		if !s.alive[i] {
			continue
		}
		if s.rng.Float64() < frac {
			s.retire(i)
			killed++
		}
	}
	return killed
}

// Tick advances the swarm's aggregate behaviour to now: streamed bytes
// accrue at nAlive×bitrate, and with churn enabled the expected departure
// count accrues at nAlive/MeanSession, retiring one random member (and
// requesting a replacement) per whole departure. It allocates nothing —
// the CI benchmark gate pins this at 0 allocs/op.
func (s *FlowSwarm) Tick(now time.Duration) {
	dt := now - s.lastTick
	s.lastTick = now
	if dt <= 0 || s.nAlive == 0 {
		return
	}
	sec := dt.Seconds()
	s.carryBytes += float64(s.nAlive) * float64(s.cfg.Spec.BitrateBps) * sec
	if whole := uint64(s.carryBytes); whole > 0 {
		s.carryBytes -= float64(whole)
		s.pendingBytes += whole
	}
	if s.cfg.MeanSession > 0 {
		s.carryDepart += float64(s.nAlive) * sec / s.cfg.MeanSession.Seconds()
		for s.carryDepart >= 1 && s.nAlive > 0 {
			s.carryDepart--
			s.retire(s.randomAlive())
			delay := time.Duration(s.rng.ExpFloat64() * float64(s.cfg.ReplacementDelay))
			s.port.Respawn(delay)
		}
	}
}

// TakeBytes drains the bytes streamed by the swarm since the last call. The
// core layer splits them across ISPs by the scenario's locality mix and
// feeds the per-domain analysis aggregates.
func (s *FlowSwarm) TakeBytes() uint64 {
	b := s.pendingBytes
	s.pendingBytes = 0
	return b
}

// randomAlive picks a uniformly random live member. Occupancy is high (kills
// excepted), so a few rejection draws nearly always suffice; the scan
// fallback keeps the worst case bounded.
func (s *FlowSwarm) randomAlive() int {
	n := len(s.addrs)
	for t := 0; t < 16; t++ {
		if i := s.rng.Intn(n); s.alive[i] {
			return i
		}
	}
	start := s.rng.Intn(n)
	for k := 0; k < n; k++ {
		if i := (start + k) % n; s.alive[i] {
			return i
		}
	}
	return -1
}

// AnnounceTrackers refreshes the swarm's tracker registrations: the first
// TrackerSample live members re-announce, rotating across the tracker set.
// Call on the full client's AnnounceInterval cadence.
func (s *FlowSwarm) AnnounceTrackers() {
	if len(s.trackers) == 0 {
		return
	}
	sent := 0
	for i := range s.alive {
		if sent >= s.cfg.TrackerSample {
			break
		}
		if !s.alive[i] {
			continue
		}
		trk := s.trackers[s.nextTrk%len(s.trackers)]
		s.nextTrk++
		s.port.Send(i, trk, &wire.TrackerAnnounce{Channel: s.cfg.Spec.Channel})
		sent++
	}
}

// AnnounceLinks pushes a fresh buffer map over every live probe-facing link,
// mirroring the full client's periodic BufferMapAnnounce. Call on the
// BufferMapInterval cadence.
func (s *FlowSwarm) AnnounceLinks() {
	now := s.port.Now()
	for k := range s.links {
		l := &s.links[k]
		l.lastMap = now
		s.port.Send(int(l.member), l.addr, &wire.BufferMapAnnounce{
			Channel: s.cfg.Spec.Channel,
			Buffer:  s.bufferMapAt(int(l.member), now),
		})
	}
}

// Handle processes a message delivered to member i. Flow members speak the
// probe-facing subset of the protocol with exactly the full client's
// semantics: handshake admission, referral gossip, and the three-way data
// reply (busy / decline-with-piggyback / serve).
func (s *FlowSwarm) Handle(i int, from netip.Addr, msg wire.Message) {
	if i < 0 || i >= len(s.alive) || !s.alive[i] {
		return
	}
	ch := s.cfg.Spec.Channel
	switch m := msg.(type) {
	case *wire.Handshake:
		if m.Channel != ch {
			return
		}
		now := s.port.Now()
		ack := &wire.HandshakeAck{Channel: ch}
		if s.linkIndex(i, from) >= 0 || s.addLink(i, from, now) {
			ack.Accepted = true
			ack.Buffer = s.bufferMapAt(i, now)
		}
		s.port.Send(i, from, ack)
	case *wire.PeerListRequest:
		if m.Channel != ch {
			return
		}
		s.port.Send(i, from, &wire.PeerListReply{Channel: ch, Peers: s.referralList(i, from)})
	case *wire.DataRequest:
		if m.Channel != ch {
			return
		}
		s.handleDataRequest(i, from, m)
	case *wire.Ping:
		if m.Channel != ch {
			return
		}
		s.port.Send(i, from, &wire.Pong{Channel: ch, Nonce: m.Nonce})
	}
	// TrackerResponse, BufferMapAnnounce, DataReply, and the rest are
	// ignored: flow members never fetch — their consumption is accounted at
	// flow level in Tick.
}

// linkIndex finds the link (member, addr), or -1.
func (s *FlowSwarm) linkIndex(i int, addr netip.Addr) int {
	for k := range s.links {
		if s.links[k].member == int32(i) && s.links[k].addr == addr {
			return k
		}
	}
	return -1
}

// addLink admits a probe-facing neighbor link if both the per-member and the
// global bound allow it.
func (s *FlowSwarm) addLink(i int, addr netip.Addr, now time.Duration) bool {
	if len(s.links) >= s.cfg.MaxLinks {
		return false
	}
	have := 0
	for k := range s.links {
		if s.links[k].member == int32(i) {
			have++
		}
	}
	if have >= s.cfg.LinksPerMember {
		return false
	}
	s.links = append(s.links, flowLink{member: int32(i), addr: addr, lastMap: now})
	return true
}

// referralList is member i's gossip reply: the live entries of its referral
// row, excluding the member's own row and the requester — a reply can never
// bounce the requester back to itself or hand out a departed member. A
// configured selection policy then reorders/clamps the survivors (RNG-free).
func (s *FlowSwarm) referralList(i int, requester netip.Addr) []netip.Addr {
	row := s.nbr[i*flowNbrWidth : (i+1)*flowNbrWidth]
	out := make([]netip.Addr, 0, flowNbrWidth)
	for _, j := range row {
		if int(j) == i || !s.alive[j] {
			continue
		}
		a := s.addrs[j]
		if a == requester {
			continue
		}
		out = append(out, a)
	}
	if pol := s.cfg.Selection; pol != nil {
		out = out[:pol.Refer(out, requester)]
	}
	return out
}

// holdings returns the contiguous sub-piece interval member i holds at now.
func (s *FlowSwarm) holdings(i int, now time.Duration) (lo, hi uint64, ok bool) {
	edge := s.cfg.Spec.EdgeSeq(now)
	l := uint64(s.lag[i])
	if edge <= l {
		return 0, 0, false
	}
	hi = edge - l
	lo = 0
	if w := uint64(s.cfg.Window); hi+1 > w {
		lo = hi + 1 - w
	}
	if j := s.joinSeq[i]; j > lo {
		lo = j
	}
	if lo > hi {
		return 0, 0, false
	}
	return lo, hi, true
}

// bufferMapAt materializes member i's holdings as a wire buffer map. This is
// the only place the flat holdings become bitmap words, and it runs at
// probe-message cadence, not per member per tick.
func (s *FlowSwarm) bufferMapAt(i int, now time.Duration) wire.BufferMap {
	lo, hi, ok := s.holdings(i, now)
	if !ok {
		return wire.MakeBufferMap(s.cfg.Spec.EdgeSeq(now), 0)
	}
	bm := wire.MakeBufferMap(lo, int(hi-lo+1))
	bm.SetRange(lo, hi)
	return bm
}

// handleDataRequest mirrors the full client's serve path: shed under uplink
// backlog, decline misses with a rate-limited buffer-map piggyback, else
// serve the contiguous run from Seq capped at the requested count.
func (s *FlowSwarm) handleDataRequest(i int, from netip.Addr, m *wire.DataRequest) {
	ch := s.cfg.Spec.Channel
	pieceLen := uint16(s.cfg.Spec.SubPieceLen)
	if s.port.UplinkBacklog(i) > s.cfg.ServeQueueLimit {
		s.port.Send(i, from, &wire.DataReply{Channel: ch, Seq: m.Seq, Count: 0, PieceLen: pieceLen, Busy: true})
		return
	}
	now := s.port.Now()
	lo, hi, ok := s.holdings(i, now)
	if !ok || m.Seq < lo || m.Seq > hi {
		s.port.Send(i, from, &wire.DataReply{Channel: ch, Seq: m.Seq, Count: 0, PieceLen: pieceLen})
		if k := s.linkIndex(i, from); k >= 0 && now-s.links[k].lastMap >= s.cfg.AnnounceMin {
			s.links[k].lastMap = now
			s.port.Send(i, from, &wire.BufferMapAnnounce{Channel: ch, Buffer: s.bufferMapAt(i, now)})
		}
		return
	}
	want := uint64(m.Count)
	if want == 0 {
		want = 1
	}
	run := hi - m.Seq + 1
	if run > want {
		run = want
	}
	s.port.Send(i, from, &wire.DataReply{Channel: ch, Seq: m.Seq, Count: uint16(run), PieceLen: pieceLen})
}
