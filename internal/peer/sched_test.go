package peer

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/wire"
)

// pickProviderRef is the retired per-sequence scan the plan-based
// pickProvider replaced, kept as the behavioural reference: identical
// candidate sets, iteration order, and batched-RNG draw order (through rb,
// the reference's own bitRand reservoir) are the rewrite's correctness
// contract.
func (s *session) pickProviderRef(seq uint64, now time.Duration, urgent bool, rb *bitRand) *neighbor {
	rate := s.spec.Rate()
	var candidates []*neighbor
	for _, nb := range s.sortedNeighbors() {
		if len(nb.outstanding) >= s.cfg.MaxOutstandingPerNeighbor {
			continue
		}
		if urgent {
			if !nb.buffer.Has(seq) {
				continue
			}
		} else if !nb.covers(seq, now, rate) {
			continue
		}
		candidates = append(candidates, nb)
	}
	if len(candidates) == 0 {
		if !urgent && !rb.chance(s.env.Rand(), prob16(s.cfg.SourcePrefetchProb)) {
			return nil
		}
		if src, ok := s.neighbors[akey(s.source)]; ok && len(src.outstanding) < s.cfg.MaxOutstandingPerNeighbor {
			return src
		}
		return nil
	}
	rng := s.env.Rand()
	if !s.cfg.PreferFastNeighbors {
		return candidates[rb.intn(rng, len(candidates))]
	}
	if rb.chance(rng, exploreP16) {
		return candidates[rb.intn(rng, len(candidates))]
	}
	best := candidates[0]
	for _, nb := range candidates[1:] {
		if score(nb) < score(best) {
			best = nb
		}
	}
	return best
}

// TestPickProviderMatchesReference replays randomized swarm states through
// the plan-based picker and the reference scan under identically seeded RNGs
// and demands pointer-identical choices — including tie-broken argmins,
// exploration draws, source fallbacks, and eligibility evolving mid-tick as
// requests are booked.
func TestPickProviderMatchesReference(t *testing.T) {
	metaRng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		nbs := 1 + metaRng.Intn(80) // crosses the 64-neighbor group boundary
		env, c := benchSwarm(t, nbs, 1)
		now := env.now
		ph := c.active.buffer.Playhead()

		// Randomize coverage density, scores (quantized, so argmin ties are
		// common), and per-neighbor outstanding load (some at the cap).
		density := 10 + metaRng.Intn(86)
		for _, nb := range c.active.sortedNbs {
			bits := make([]byte, 1536/8)
			for j := range bits {
				var b byte
				for k := 0; k < 8; k++ {
					if metaRng.Intn(100) < density {
						b |= 1 << k
					}
				}
				bits[j] = b
			}
			nb.setBuffer(wire.BufferMapFromBytes(ph-64, bits), now)
			nb.score = time.Duration(metaRng.Intn(5)) * 100 * time.Millisecond // 0 = unmeasured
			nb.outstanding = nb.outstanding[:0]
			load := metaRng.Intn(c.cfg.MaxOutstandingPerNeighbor + 1)
			for k := 0; k < load; k++ {
				nb.outstanding = append(nb.outstanding, pendingReq{seq: uint64(k)})
			}
		}

		// A sorted want list inside the neighbors' map span.
		seqs := make([]uint64, 0, 150)
		next := ph
		for len(seqs) < 150 {
			next += uint64(1 + metaRng.Intn(9))
			seqs = append(seqs, next)
		}
		urgentBound := ph + uint64(2*c.cfg.Channel.Rate())
		c.active.buildSchedPlan(seqs[0], seqs[len(seqs)-1], 0)

		c.emitRequest = func(netip.Addr, uint64, int) {}
		rngSeed := int64(1000 + trial)
		rngA := rand.New(rand.NewSource(rngSeed))
		rngB := rand.New(rand.NewSource(rngSeed))
		// The plan picker draws through the client's bit reservoir; the
		// reference keeps its own, refilled from the identically seeded rngB,
		// so the consumed bit streams line up draw for draw.
		c.active.rbits = bitRand{}
		var refBits bitRand
		for i, seq := range seqs {
			urgent := seq < urgentBound
			env.rng = rngA
			got := c.active.pickProvider(seq, now, urgent)
			env.rng = rngB
			want := c.active.pickProviderRef(seq, now, urgent, &refBits)
			if got != want {
				t.Fatalf("trial %d seq %d (urgent=%v, nbs=%d, density=%d%%): plan pick %v, reference %v",
					trial, seq, urgent, nbs, density, addrOf(got), addrOf(want))
			}
			// Book every third successful pick so eligibility (planElig vs the
			// reference's live len(outstanding) checks) evolves mid-run.
			if got != nil && i%3 == 0 {
				c.active.sendDataRequest(got, seq, 1, now)
			}
		}
	}
}

func addrOf(nb *neighbor) any {
	if nb == nil {
		return nil
	}
	return nb.addr
}

// TestTranspose64 checks the bit-matrix transpose against its defining
// property on random matrices: output row 63-b, bit 63-i, equals input row i,
// bit b.
func TestTranspose64(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		var in, m [64]uint64
		for i := range in {
			in[i] = rng.Uint64()
		}
		switch trial {
		case 0:
			for i := range in {
				in[i] = 0
			}
		case 1:
			for i := range in {
				in[i] = ^uint64(0)
			}
		}
		m = in
		transpose64(&m)
		for i := 0; i < 64; i++ {
			for b := 0; b < 64; b++ {
				if m[63-b]>>(63-i)&1 != in[i]>>b&1 {
					t.Fatalf("trial %d: transposed[%d] bit %d != input[%d] bit %d", trial, 63-b, 63-i, i, b)
				}
			}
		}
	}
}

// refKnowledge is the retired byte-based neighbor-knowledge bookkeeping
// (setBuffer/learnHas over a []byte bitmap), kept verbatim as the reference
// the word-based neighbor implementation must match bit-for-bit.
type refKnowledge struct {
	start     uint64
	bits      []byte
	bufferMax uint64
	bufferAny bool
}

func (r *refKnowledge) has(seq uint64) bool {
	if seq < r.start || seq >= r.start+uint64(len(r.bits))*8 {
		return false
	}
	idx := seq - r.start
	return r.bits[idx/8]&(1<<(idx%8)) != 0
}

func (r *refKnowledge) set(seq uint64) {
	if seq < r.start || seq >= r.start+uint64(len(r.bits))*8 {
		return
	}
	idx := seq - r.start
	r.bits[idx/8] |= 1 << (idx % 8)
}

func (r *refKnowledge) setBuffer(start uint64, bits []byte) {
	r.start = start
	r.bits = append(r.bits[:0], bits...)
	r.bufferAny = false
	r.bufferMax = 0
	for i := len(bits) - 1; i >= 0; i-- {
		b := bits[i]
		if b == 0 {
			continue
		}
		hi := 7
		for b&(1<<hi) == 0 {
			hi--
		}
		r.bufferMax = start + uint64(i*8+hi)
		r.bufferAny = true
		break
	}
}

func (r *refKnowledge) learnHas(lo, hi uint64) {
	if r.bits == nil || hi >= r.start+uint64(len(r.bits))*8 {
		const slack = knowledgeWindow / 4
		start := uint64(0)
		if hi+1+slack > knowledgeWindow {
			start = (hi + 1 + slack - knowledgeWindow) &^ 7
		}
		fresh := refKnowledge{start: start, bits: make([]byte, knowledgeWindow/8)}
		if r.bits != nil {
			end := r.start + uint64(len(r.bits))*8
			for seq := start; seq < end; seq++ {
				if r.has(seq) {
					fresh.set(seq)
				}
			}
		}
		fresh.bufferMax, fresh.bufferAny = r.bufferMax, r.bufferAny
		*r = fresh
	}
	for seq := lo; seq <= hi; seq++ {
		r.set(seq)
	}
	if !r.bufferAny || hi > r.bufferMax {
		r.bufferMax = hi
		r.bufferAny = true
	}
}

// TestPropertyNeighborKnowledgeMatchesReference drives a neighbor through
// random interleavings of buffer-map announcements (word-unaligned starts,
// partial windows) and learnHas proofs (including window re-anchors), and
// checks its word-based view against the byte-based reference at every step.
func TestPropertyNeighborKnowledgeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 120; trial++ {
		nb := &neighbor{planIdx: -1}
		ref := &refKnowledge{}
		cursor := uint64(rng.Intn(10000))
		for step := 0; step < 25; step++ {
			if rng.Intn(3) == 0 {
				// Announce: random start near the cursor, random window size
				// (bytes, not necessarily word-multiple), random fill.
				start := cursor + uint64(rng.Intn(200))
				nbytes := 1 + rng.Intn(300)
				bits := make([]byte, nbytes)
				for j := range bits {
					bits[j] = byte(rng.Intn(256)) & byte(rng.Intn(256))
				}
				nb.setBuffer(wire.BufferMapFromBytes(start, bits), 0)
				ref.setBuffer(start, bits)
			} else {
				// Proof: short run at or ahead of the cursor; occasionally a
				// big jump to force a re-anchor with little overlap.
				lo := cursor + uint64(rng.Intn(400))
				if rng.Intn(10) == 0 {
					lo += knowledgeWindow * 2
				}
				hi := lo + uint64(rng.Intn(8))
				nb.learnHas(lo, hi, 0)
				ref.learnHas(lo, hi)
				if hi > cursor {
					cursor = hi
				}
			}
			if nb.bufferAny != ref.bufferAny || (ref.bufferAny && nb.bufferMax != ref.bufferMax) {
				t.Fatalf("trial %d step %d: bufferMax/Any = %d/%v, reference %d/%v",
					trial, step, nb.bufferMax, nb.bufferAny, ref.bufferMax, ref.bufferAny)
			}
			if nb.buffer.Start != ref.start || nb.buffer.Window() != uint64(len(ref.bits))*8 {
				t.Fatalf("trial %d step %d: window [%d,+%d), reference [%d,+%d)",
					trial, step, nb.buffer.Start, nb.buffer.Window(), ref.start, uint64(len(ref.bits))*8)
			}
			probeLo := uint64(0)
			if ref.start > 70 {
				probeLo = ref.start - 70
			}
			for seq := probeLo; seq < ref.start+uint64(len(ref.bits))*8+70; seq += 1 + uint64(rng.Intn(3)) {
				if nb.buffer.Has(seq) != ref.has(seq) {
					t.Fatalf("trial %d step %d: covers(%d) = %v, reference %v",
						trial, step, seq, nb.buffer.Has(seq), ref.has(seq))
				}
			}
		}
	}
}
