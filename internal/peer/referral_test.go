package peer

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/isp"
	"pplivesim/internal/selection"
	"pplivesim/internal/wire"
)

// referralPeersTo extracts the peer list the client sent to addr in response
// to a PeerListRequest.
func referralPeersTo(t *testing.T, env *fakeEnv, to netip.Addr) []netip.Addr {
	t.Helper()
	for _, m := range env.sentTo(to) {
		if reply, ok := m.(*wire.PeerListReply); ok {
			return reply.Peers
		}
	}
	t.Fatalf("no PeerListReply sent to %v", to)
	return nil
}

// TestReferralExcludesRequester pins the session-side mirror of the
// tracker's requester exclusion: a gossip reply never bounces the requester
// back to itself, even though the requester sits in the recent list.
func TestReferralExcludesRequester(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, testConfig())
	join(t, env, c)
	env.take()
	a := addPeerNeighbor(t, env, c, "58.32.0.2")
	b := addPeerNeighbor(t, env, c, "58.32.0.3")

	// Both neighbors are in recent; a's request must return only b.
	c.HandleMessage(a, &wire.PeerListRequest{Channel: 1})
	peers := referralPeersTo(t, env, a)
	for _, p := range peers {
		if p == a {
			t.Fatal("referral reply contains the requester itself")
		}
		if p == c.Addr() {
			t.Fatal("referral reply contains the replying client's own address")
		}
	}
	if len(peers) != 1 || peers[0] != b {
		t.Errorf("referral to %v = %v, want [%v]", a, peers, b)
	}
}

// TestReferralExcludesKeepaliveEvicted is the regression test for the
// referral-source purge: a neighbor evicted by keepalive failure detection
// (positive evidence of death, unlike plain silence) must disappear from
// subsequent referral replies instead of being gossiped around the mesh.
func TestReferralExcludesKeepaliveEvicted(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	c := newClient(t, env, resilientConfig())
	join(t, env, c)
	env.take()
	dead := addPeerNeighbor(t, env, c, "58.32.0.2")
	live := addPeerNeighbor(t, env, c, "58.32.0.3")

	// Keep `live` answering pings while `dead` stays silent through the
	// ping window until the keepalive tick evicts it.
	for i := 0; i < 4; i++ {
		env.Advance(5 * time.Second)
		c.HandleMessage(live, &wire.Pong{Channel: 1, Nonce: 1})
	}
	if c.Stats().KeepaliveEvictions == 0 {
		t.Fatal("silent neighbor was not keepalive-evicted")
	}
	if _, ok := c.active.neighbors[akey(dead)]; ok {
		t.Fatal("evicted neighbor still in the neighbor table")
	}
	env.take()

	c.HandleMessage(live, &wire.PeerListRequest{Channel: 1})
	for _, p := range referralPeersTo(t, env, live) {
		if p == dead {
			t.Fatal("referral reply contains a keepalive-evicted (dead) neighbor")
		}
	}
}

// neighborISPs maps the test peer addresses (58.32.x = TELE, 61.135.x = CNC
// in the simulation's address plan) for selection-policy shaping.
type neighborISPs map[netip.Addr]isp.ISP

func (m neighborISPs) ISPOf(a netip.Addr) (isp.ISP, bool) {
	cat, ok := m[a]
	return cat, ok
}

// TestReferralAppliesSelectionPolicy checks a configured selection policy
// shapes referral replies: with quota:0 only same-ISP peers are referred.
func TestReferralAppliesSelectionPolicy(t *testing.T) {
	env := newFakeEnv("58.32.0.1")
	cfg := testConfig()
	requester := netip.MustParseAddr("58.32.0.9")
	res := neighborISPs{
		requester:                         isp.TELE,
		netip.MustParseAddr("58.32.0.2"):  isp.TELE,
		netip.MustParseAddr("61.135.0.2"): isp.CNC,
	}
	pol, err := selection.NewQuota(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Selection = pol
	c := newClient(t, env, cfg)
	join(t, env, c)
	env.take()
	sameISP := addPeerNeighbor(t, env, c, "58.32.0.2")
	addPeerNeighbor(t, env, c, "61.135.0.2")

	c.HandleMessage(requester, &wire.PeerListRequest{Channel: 1})
	peers := referralPeersTo(t, env, requester)
	if len(peers) != 1 || peers[0] != sameISP {
		t.Errorf("quota:0 referral = %v, want only same-ISP %v", peers, sameISP)
	}
}

// TestFlowRandomAliveNeverDead is the kill-churn property test for
// FlowSwarm.randomAlive: after heavy kills the picker must never return a
// dead row — the regression the removed always-true guard was masking — and
// every survivor must remain reachable even at sparse, fragmented occupancy
// where the linear-scan fallback does most of the work.
func TestFlowRandomAliveNeverDead(t *testing.T) {
	port := &flowTestPort{}
	cfg := DefaultFlowConfig(flowTestSpec())
	s, err := NewFlowSwarm(cfg, port, rand.New(rand.NewSource(2)), nil, 400)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		s.Add(netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}))
	}
	// Three rounds of heavy kill-churn leave ~5% alive.
	for round := 0; round < 3; round++ {
		s.KillFraction(0.65)
	}
	alive := s.Alive()
	if alive < 5 || alive > 60 {
		t.Fatalf("kill rounds left %d alive, want a sparse survivor set", alive)
	}

	const picks = 20000
	counts := make(map[int]int)
	for n := 0; n < picks; n++ {
		i := s.randomAlive()
		if i < 0 {
			t.Fatal("randomAlive returned -1 with live members present")
		}
		if !s.alive[i] {
			t.Fatalf("randomAlive returned dead index %d", i)
		}
		counts[i]++
	}
	if len(counts) != alive {
		t.Errorf("randomAlive reached %d of %d live members", len(counts), alive)
	}
}

// TestFlowRandomAliveUniform checks the distribution at ~50% occupancy,
// where the rejection loop all but always succeeds (miss chance 0.5^16) and
// the pick must be uniform over live members within binomial tolerance.
func TestFlowRandomAliveUniform(t *testing.T) {
	port := &flowTestPort{}
	cfg := DefaultFlowConfig(flowTestSpec())
	s, err := NewFlowSwarm(cfg, port, rand.New(rand.NewSource(3)), nil, 400)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		s.Add(netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}))
	}
	s.KillFraction(0.5)
	alive := s.Alive()
	if alive < 150 || alive > 250 {
		t.Fatalf("half-kill left %d alive, want ~200", alive)
	}

	const picks = 40000
	counts := make(map[int]int)
	for n := 0; n < picks; n++ {
		i := s.randomAlive()
		if i < 0 || !s.alive[i] {
			t.Fatalf("randomAlive returned dead or invalid index %d", i)
		}
		counts[i]++
	}
	// Each live member expects picks/alive ≈ 200 selections, sd ≈ 14; ±50%
	// is ~7 sd, far beyond binomial noise at the fixed seed, so a systematic
	// bias (e.g. dead-run weighting) fails while sampling noise cannot.
	expect := float64(picks) / float64(alive)
	for i, n := range counts {
		if float64(n) < 0.5*expect || float64(n) > 1.5*expect {
			t.Errorf("member %d picked %d times, want ~%.0f (±50%%)", i, n, expect)
		}
	}
	if len(counts) != alive {
		t.Errorf("reached %d of %d live members", len(counts), alive)
	}
}

// TestFlowReferralExclusions pins the flow-side referral composition: no
// requester echo, no self-row echo, no dead members.
func TestFlowReferralExclusions(t *testing.T) {
	port := &flowTestPort{}
	s := newTestSwarm(t, port, 32)
	port.now = 2 * time.Minute

	// Kill a third of the swarm so referral rows contain dead entries.
	s.KillFraction(0.33)
	probe := probeAddr()
	for i := 0; i < 32; i++ {
		if !s.alive[i] {
			continue
		}
		for _, p := range s.referralList(i, probe) {
			if p == probe {
				t.Fatalf("member %d referred the requester back to itself", i)
			}
			if p == s.addrs[i] {
				t.Fatalf("member %d referred its own address", i)
			}
		}
	}
	// Referring a member's own address via the requester path: ask member i
	// for a referral pretending to be one of its row entries.
	for i := 0; i < 32; i++ {
		if !s.alive[i] {
			continue
		}
		row := s.nbr[i*flowNbrWidth : (i+1)*flowNbrWidth]
		for _, j := range row {
			if int(j) == i || !s.alive[j] {
				continue
			}
			req := s.addrs[j]
			for _, p := range s.referralList(i, req) {
				if p == req {
					t.Fatalf("member %d echoed requester %v from its row", i, req)
				}
			}
		}
		for _, j := range row {
			if !s.alive[j] {
				for _, p := range s.referralList(i, probe) {
					if p == s.addrs[j] {
						t.Fatalf("member %d referred dead member %d", i, j)
					}
				}
			}
		}
	}
}
