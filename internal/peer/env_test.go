package peer

import (
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"pplivesim/internal/node"
	"pplivesim/internal/wire"
)

// fakeEnv is a manual-clock node.Env capturing every send, for white-box
// protocol tests.
type fakeEnv struct {
	addr    netip.Addr
	now     time.Duration
	rng     *rand.Rand
	sent    []sentMsg
	timers  []*fakeTimer
	backlog time.Duration
}

type sentMsg struct {
	to  netip.Addr
	msg wire.Message
}

type fakeTimer struct {
	at        time.Duration
	period    time.Duration // 0 for one-shot
	fn        func()
	cancelled bool
}

func newFakeEnv(addr string) *fakeEnv {
	return &fakeEnv{addr: netip.MustParseAddr(addr), rng: rand.New(rand.NewSource(1))}
}

var _ node.Env = (*fakeEnv)(nil)

func (e *fakeEnv) Addr() netip.Addr             { return e.addr }
func (e *fakeEnv) Now() time.Duration           { return e.now }
func (e *fakeEnv) Rand() *rand.Rand             { return e.rng }
func (e *fakeEnv) UplinkBacklog() time.Duration { return e.backlog }

func (e *fakeEnv) Send(to netip.Addr, msg wire.Message) {
	e.sent = append(e.sent, sentMsg{to: to, msg: msg})
}

func (e *fakeEnv) After(d time.Duration, fn func()) node.Cancel {
	t := &fakeTimer{at: e.now + d, fn: fn}
	e.timers = append(e.timers, t)
	return func() bool {
		was := !t.cancelled
		t.cancelled = true
		return was
	}
}

func (e *fakeEnv) Every(d time.Duration, fn func()) node.Cancel {
	t := &fakeTimer{at: e.now + d, period: d, fn: fn}
	e.timers = append(e.timers, t)
	return func() bool {
		was := !t.cancelled
		t.cancelled = true
		return was
	}
}

// Advance moves the clock forward, firing due timers in time order.
func (e *fakeEnv) Advance(d time.Duration) {
	target := e.now + d
	for {
		var next *fakeTimer
		for _, t := range e.timers {
			if t.cancelled || t.at > target {
				continue
			}
			if next == nil || t.at < next.at {
				next = t
			}
		}
		if next == nil {
			break
		}
		e.now = next.at
		if next.period > 0 {
			next.at += next.period
		} else {
			next.cancelled = true
		}
		next.fn()
	}
	e.now = target
}

// take drains and returns captured sends.
func (e *fakeEnv) take() []sentMsg {
	out := e.sent
	e.sent = nil
	return out
}

// sentTo filters captured (not yet drained) sends by destination.
func (e *fakeEnv) sentTo(to netip.Addr) []wire.Message {
	var out []wire.Message
	for _, s := range e.sent {
		if s.to == to {
			out = append(out, s.msg)
		}
	}
	return out
}

// kinds summarizes captured message types.
func kinds(msgs []sentMsg) []wire.Type {
	out := make([]wire.Type, len(msgs))
	for i, m := range msgs {
		out[i] = m.msg.Kind()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
