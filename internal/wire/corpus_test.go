package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// corpusMessages is the committed seed corpus under
// testdata/fuzz/FuzzUnmarshal: every in-code fuzz seed plus the
// golden-trace-shaped messages. `go test -fuzz` merges these with the f.Add
// seeds, and plain `go test` replays them as regression inputs.
func corpusMessages() []Message {
	msgs := []Message{
		&TrackerAnnounce{Channel: 1, Leaving: false},
		&TrackerAnnounce{Channel: 1, Leaving: true},
		&TrackerQuery{Channel: 1},
		&Handshake{Channel: 1},
		&DataReply{Channel: 1, Seq: 481512, Count: 0, Busy: true},
		&Ping{Channel: 2, Nonce: 7},
		&Pong{Channel: 2, Nonce: 7},
	}
	return append(msgs, goldenShapedSeeds()...)
}

// TestGenerateFuzzCorpus rewrites the committed corpus files; it only acts
// when PPLIVE_WRITE_FUZZ_CORPUS=1 is set (run it after changing the message
// set, then commit the result). Otherwise it verifies the committed corpus is
// in sync with corpusMessages.
func TestGenerateFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzUnmarshal")
	write := os.Getenv("PPLIVE_WRITE_FUZZ_CORPUS") == "1"
	if write {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range corpusMessages() {
		data := Marshal(m)
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d-%s", i, m.Kind()))
		if write {
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("corpus file missing (regenerate with PPLIVE_WRITE_FUZZ_CORPUS=1): %v", err)
		}
		if string(got) != body {
			t.Errorf("corpus file %s out of sync with corpusMessages; regenerate", path)
		}
	}
}
