package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Unmarshal never panics and never succeeds on random garbage
// (the CRC makes accidental acceptance astronomically unlikely).
func TestPropertyUnmarshalGarbage(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Unmarshal panicked on %x: %v", raw, r)
			}
		}()
		_, err := Unmarshal(raw)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: single-byte corruption of a valid datagram is always rejected.
func TestPropertyBitflipRejected(t *testing.T) {
	valid := Marshal(&DataRequest{Channel: 3, Seq: 12345, Count: 4})
	f := func(pos uint16, bit uint8) bool {
		b := append([]byte(nil), valid...)
		b[int(pos)%len(b)] ^= 1 << (bit % 8)
		_, err := Unmarshal(b)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// Property: truncating a valid datagram at any point is rejected.
func TestPropertyTruncationRejected(t *testing.T) {
	valid := Marshal(&PeerListReply{Channel: 1, Peers: nil})
	for cut := 0; cut < len(valid); cut++ {
		if _, err := Unmarshal(valid[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// Property: every message type round-trips through marshal→unmarshal→marshal
// to identical bytes (canonical encoding).
func TestPropertyCanonicalEncoding(t *testing.T) {
	msgs := []Message{
		&ChannelListRequest{},
		&PlaylinkRequest{Channel: 9},
		&TrackerQuery{Channel: 9},
		&Handshake{Channel: 9},
		&DataRequest{Channel: 9, Seq: 77, Count: 3},
		&DataReply{Channel: 9, Seq: 77, Count: 2, PieceLen: 690},
		&Have{Channel: 9, Seq: 13, Count: 8},
	}
	for _, m := range msgs {
		first := Marshal(m)
		decoded, err := Unmarshal(first)
		if err != nil {
			t.Fatalf("%s: %v", m.Kind(), err)
		}
		second := Marshal(decoded)
		if string(first) != string(second) {
			t.Errorf("%s: non-canonical encoding", m.Kind())
		}
	}
}
