// Package wire defines the PPLive-style datagram protocol spoken by every
// component: bootstrap/channel server, tracker servers, and peers.
//
// The message set follows the protocol behaviour the paper reverse-engineered
// (§2): channel-list and playlink exchanges with the bootstrap server,
// tracker peer-list queries, neighbor peer-list exchange where the requester
// encloses its own list and the replier returns up to 60 addresses, buffer-
// map announcements, and sub-piece data request/reply carrying transmission
// sequence numbers (which the paper's trace matching keys on).
//
// Messages marshal to a compact binary format: a fixed header (magic,
// version, type, body length) followed by the body and a CRC32 trailer.
// The same encoding drives both the simulated underlay (which only needs
// WireSize) and the real-UDP transport used by the examples.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net/netip"
)

// Protocol constants.
const (
	Version byte = 1

	// MaxPeerList is the maximum number of addresses in any peer list; the
	// paper observes lists of no more than 60 addresses.
	MaxPeerList = 60

	// SubPieceSize and SubPieceSizeSmall are the two sub-piece payload sizes
	// the paper reports (1380 and 690 bytes).
	SubPieceSize      = 1380
	SubPieceSizeSmall = 690

	headerLen  = 2 + 1 + 1 + 4 // magic, version, type, body length
	trailerLen = 4             // crc32
)

// Type identifies a message kind.
type Type byte

// Message kinds.
const (
	TChannelListRequest Type = iota + 1
	TChannelListResponse
	TPlaylinkRequest
	TPlaylinkResponse
	TTrackerAnnounce
	TTrackerQuery
	TTrackerResponse
	THandshake
	THandshakeAck
	TPeerListRequest
	TPeerListReply
	TBufferMap
	TDataRequest
	TDataReply
	THave
	TAsnQuery
	TAsnResponse
	TPing
	TPong
	maxType
)

// String returns a short name for the type.
func (t Type) String() string {
	switch t {
	case TChannelListRequest:
		return "ChannelListRequest"
	case TChannelListResponse:
		return "ChannelListResponse"
	case TPlaylinkRequest:
		return "PlaylinkRequest"
	case TPlaylinkResponse:
		return "PlaylinkResponse"
	case TTrackerAnnounce:
		return "TrackerAnnounce"
	case TTrackerQuery:
		return "TrackerQuery"
	case TTrackerResponse:
		return "TrackerResponse"
	case THandshake:
		return "Handshake"
	case THandshakeAck:
		return "HandshakeAck"
	case TPeerListRequest:
		return "PeerListRequest"
	case TPeerListReply:
		return "PeerListReply"
	case TBufferMap:
		return "BufferMap"
	case TDataRequest:
		return "DataRequest"
	case TDataReply:
		return "DataReply"
	case THave:
		return "Have"
	case TAsnQuery:
		return "AsnQuery"
	case TAsnResponse:
		return "AsnResponse"
	case TPing:
		return "Ping"
	case TPong:
		return "Pong"
	default:
		return fmt.Sprintf("Type(%d)", byte(t))
	}
}

// Decoding errors.
var (
	ErrShort       = errors.New("wire: datagram too short")
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadType     = errors.New("wire: unknown message type")
	ErrBadChecksum = errors.New("wire: checksum mismatch")
	ErrTruncated   = errors.New("wire: truncated body")
	ErrOversized   = errors.New("wire: field exceeds protocol bound")
)

// Message is implemented by every protocol message.
type Message interface {
	// Kind returns the message type tag.
	Kind() Type
	// appendBody appends the binary body encoding.
	appendBody(b []byte) []byte
	// bodySize returns len(appendBody(nil)) without encoding anything, so
	// the simulated underlay can size datagrams allocation-free.
	bodySize() int
	// readBody decodes the body, returning the remaining bytes.
	readBody(b []byte) ([]byte, error)
}

// ChannelID identifies a live channel.
type ChannelID uint32

// ChannelInfo is one entry of the bootstrap server's channel list.
type ChannelInfo struct {
	ID     ChannelID
	Rating uint32 // access-count based popularity rating
	Name   string
}

// ChannelListRequest asks the bootstrap server for the active channel list.
type ChannelListRequest struct{}

// Kind implements Message.
func (*ChannelListRequest) Kind() Type                        { return TChannelListRequest }
func (*ChannelListRequest) appendBody(b []byte) []byte        { return b }
func (*ChannelListRequest) bodySize() int                     { return 0 }
func (*ChannelListRequest) readBody(b []byte) ([]byte, error) { return b, nil }

// ChannelListResponse carries the active channel list.
type ChannelListResponse struct {
	Channels []ChannelInfo
}

// Kind implements Message.
func (*ChannelListResponse) Kind() Type { return TChannelListResponse }

func (m *ChannelListResponse) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Channels)))
	for _, c := range m.Channels {
		b = binary.BigEndian.AppendUint32(b, uint32(c.ID))
		b = binary.BigEndian.AppendUint32(b, c.Rating)
		b = appendString(b, c.Name)
	}
	return b
}

func (m *ChannelListResponse) bodySize() int {
	n := 2
	for _, c := range m.Channels {
		n += 4 + 4 + stringSize(c.Name)
	}
	return n
}

func (m *ChannelListResponse) readBody(b []byte) ([]byte, error) {
	n, b, err := readUint16(b)
	if err != nil {
		return nil, err
	}
	m.Channels = make([]ChannelInfo, 0, n)
	for i := 0; i < int(n); i++ {
		var c ChannelInfo
		var id, rating uint32
		if id, b, err = readUint32(b); err != nil {
			return nil, err
		}
		if rating, b, err = readUint32(b); err != nil {
			return nil, err
		}
		if c.Name, b, err = readString(b); err != nil {
			return nil, err
		}
		c.ID, c.Rating = ChannelID(id), rating
		m.Channels = append(m.Channels, c)
	}
	return b, nil
}

// PlaylinkRequest asks the bootstrap server for a channel's playlink and
// tracker set.
type PlaylinkRequest struct {
	Channel ChannelID
}

// Kind implements Message.
func (*PlaylinkRequest) Kind() Type { return TPlaylinkRequest }

func (m *PlaylinkRequest) appendBody(b []byte) []byte {
	return binary.BigEndian.AppendUint32(b, uint32(m.Channel))
}

func (*PlaylinkRequest) bodySize() int { return 4 }

func (m *PlaylinkRequest) readBody(b []byte) ([]byte, error) {
	v, b, err := readUint32(b)
	m.Channel = ChannelID(v)
	return b, err
}

// PlaylinkResponse returns the channel source and one tracker address per
// tracker group (the paper observes five groups). Deployments with CDN edge
// caches additionally list the edges serving this channel, ordered by the
// bootstrap's affinity for the requester (same-ISP edges first); the list is
// a trailing optional field so deployments without edges keep the legacy
// encoding byte for byte.
type PlaylinkResponse struct {
	Channel  ChannelID
	Source   netip.Addr   // the channel's stream source
	Trackers []netip.Addr // one address per tracker group
	Edges    []netip.Addr // CDN edge caches, requester-affinity order (optional)
}

// Kind implements Message.
func (*PlaylinkResponse) Kind() Type { return TPlaylinkResponse }

func (m *PlaylinkResponse) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(m.Channel))
	b = appendAddr(b, m.Source)
	b = appendAddrList(b, m.Trackers)
	if len(m.Edges) > 0 {
		b = appendAddrList(b, m.Edges)
	}
	return b
}

func (m *PlaylinkResponse) bodySize() int {
	n := 4 + 4 + addrListSize(m.Trackers)
	if len(m.Edges) > 0 {
		n += addrListSize(m.Edges)
	}
	return n
}

func (m *PlaylinkResponse) readBody(b []byte) ([]byte, error) {
	v, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	m.Channel = ChannelID(v)
	if m.Source, b, err = readAddr(b); err != nil {
		return nil, err
	}
	if m.Trackers, b, err = readAddrList(b); err != nil {
		return nil, err
	}
	if len(b) > 0 {
		m.Edges, b, err = readAddrList(b)
	}
	return b, err
}

// TrackerAnnounce registers (or withdraws) the sender as an active peer of a
// channel with a tracker server.
type TrackerAnnounce struct {
	Channel ChannelID
	Leaving bool
}

// Kind implements Message.
func (*TrackerAnnounce) Kind() Type { return TTrackerAnnounce }

func (m *TrackerAnnounce) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(m.Channel))
	return append(b, boolByte(m.Leaving))
}

func (*TrackerAnnounce) bodySize() int { return 4 + 1 }

func (m *TrackerAnnounce) readBody(b []byte) ([]byte, error) {
	v, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	m.Channel = ChannelID(v)
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	m.Leaving = b[0] != 0
	return b[1:], nil
}

// TrackerQuery asks a tracker server for active peers of a channel.
type TrackerQuery struct {
	Channel ChannelID
}

// Kind implements Message.
func (*TrackerQuery) Kind() Type { return TTrackerQuery }

func (m *TrackerQuery) appendBody(b []byte) []byte {
	return binary.BigEndian.AppendUint32(b, uint32(m.Channel))
}

func (*TrackerQuery) bodySize() int { return 4 }

func (m *TrackerQuery) readBody(b []byte) ([]byte, error) {
	v, b, err := readUint32(b)
	m.Channel = ChannelID(v)
	return b, err
}

// TrackerResponse carries a tracker's peer list.
type TrackerResponse struct {
	Channel ChannelID
	Peers   []netip.Addr
}

// Kind implements Message.
func (*TrackerResponse) Kind() Type { return TTrackerResponse }

func (m *TrackerResponse) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(m.Channel))
	return appendAddrList(b, m.Peers)
}

func (m *TrackerResponse) bodySize() int { return 4 + addrListSize(m.Peers) }

func (m *TrackerResponse) readBody(b []byte) ([]byte, error) {
	v, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	m.Channel = ChannelID(v)
	m.Peers, b, err = readAddrList(b)
	return b, err
}

// Handshake opens a neighbor relationship for a channel.
type Handshake struct {
	Channel ChannelID
}

// Kind implements Message.
func (*Handshake) Kind() Type { return THandshake }

func (m *Handshake) appendBody(b []byte) []byte {
	return binary.BigEndian.AppendUint32(b, uint32(m.Channel))
}

func (*Handshake) bodySize() int { return 4 }

func (m *Handshake) readBody(b []byte) ([]byte, error) {
	v, b, err := readUint32(b)
	m.Channel = ChannelID(v)
	return b, err
}

// HandshakeAck accepts or rejects a handshake; on accept it carries the
// responder's current buffer map so the new neighbor can schedule requests
// immediately.
type HandshakeAck struct {
	Channel  ChannelID
	Accepted bool
	Buffer   BufferMap
}

// Kind implements Message.
func (*HandshakeAck) Kind() Type { return THandshakeAck }

func (m *HandshakeAck) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(m.Channel))
	b = append(b, boolByte(m.Accepted))
	return m.Buffer.append(b)
}

func (m *HandshakeAck) bodySize() int { return 4 + 1 + m.Buffer.size() }

func (m *HandshakeAck) readBody(b []byte) ([]byte, error) {
	v, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	m.Channel = ChannelID(v)
	if len(b) < 1 {
		return nil, ErrTruncated
	}
	m.Accepted = b[0] != 0
	return m.Buffer.read(b[1:])
}

// PeerListRequest asks a neighbor for its peer list; per the paper the
// requester encloses the peer list it maintains itself.
type PeerListRequest struct {
	Channel  ChannelID
	OwnPeers []netip.Addr
}

// Kind implements Message.
func (*PeerListRequest) Kind() Type { return TPeerListRequest }

func (m *PeerListRequest) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(m.Channel))
	return appendAddrList(b, m.OwnPeers)
}

func (m *PeerListRequest) bodySize() int { return 4 + addrListSize(m.OwnPeers) }

func (m *PeerListRequest) readBody(b []byte) ([]byte, error) {
	v, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	m.Channel = ChannelID(v)
	m.OwnPeers, b, err = readAddrList(b)
	return b, err
}

// PeerListReply returns a neighbor's recently connected peers (≤60).
type PeerListReply struct {
	Channel ChannelID
	Peers   []netip.Addr
}

// Kind implements Message.
func (*PeerListReply) Kind() Type { return TPeerListReply }

func (m *PeerListReply) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(m.Channel))
	return appendAddrList(b, m.Peers)
}

func (m *PeerListReply) bodySize() int { return 4 + addrListSize(m.Peers) }

func (m *PeerListReply) readBody(b []byte) ([]byte, error) {
	v, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	m.Channel = ChannelID(v)
	m.Peers, b, err = readAddrList(b)
	return b, err
}

// BufferMap describes which sub-pieces a peer holds: a window starting at
// Start with one bit per sub-piece. Coverage is stored as 64-bit words so
// membership tests are a shift+mask and schedulers can intersect whole words;
// the wire encoding is byte-granular and unchanged (bit i of encoded byte j
// covers Start+8j+i, i.e. words serialize little-endian).
type BufferMap struct {
	Start uint64 // first sub-piece sequence covered
	// Words is the coverage bitmap: bit i of Words[w] covers Start+64w+i.
	// Bits at or beyond ByteLen*8 are always zero.
	Words []uint64
	// ByteLen is the window length in bytes as encoded on the wire.
	ByteLen int
}

// MakeBufferMap returns an all-zero map covering window sub-pieces from start.
func MakeBufferMap(start uint64, window int) BufferMap {
	nbytes := (window + 7) / 8
	return BufferMap{
		Start:   start,
		Words:   make([]uint64, (nbytes+7)/8),
		ByteLen: nbytes,
	}
}

// BufferMapFromBytes builds a map from the byte-granular bitmap encoding (bit
// i of bits[j] covers start+8j+i). A nil bits yields the empty map.
func BufferMapFromBytes(start uint64, bits []byte) BufferMap {
	bm := BufferMap{Start: start, ByteLen: len(bits)}
	if bits == nil {
		return bm
	}
	bm.Words = bytesToWords(nil, bits)
	return bm
}

// Bytes returns the byte-granular bitmap encoding (nil for an empty map).
func (bm *BufferMap) Bytes() []byte {
	if bm.ByteLen == 0 {
		return nil
	}
	return bm.appendBits(make([]byte, 0, bm.ByteLen))
}

// Has reports whether the map covers sub-piece seq.
func (bm *BufferMap) Has(seq uint64) bool {
	if seq < bm.Start {
		return false
	}
	i := seq - bm.Start
	if i >= uint64(bm.ByteLen)*8 {
		return false
	}
	return bm.Words[i/64]>>(i%64)&1 != 0
}

// Set marks sub-piece seq as held; out-of-window seqs are ignored.
func (bm *BufferMap) Set(seq uint64) {
	if seq < bm.Start {
		return
	}
	i := seq - bm.Start
	if i >= uint64(bm.ByteLen)*8 {
		return
	}
	bm.Words[i/64] |= 1 << (i % 64)
}

// SetRange marks sub-pieces [lo, hi] as held, clamped to the window.
func (bm *BufferMap) SetRange(lo, hi uint64) {
	if hi < bm.Start || bm.ByteLen == 0 {
		return
	}
	if lo < bm.Start {
		lo = bm.Start
	}
	end := bm.Start + uint64(bm.ByteLen)*8
	if lo >= end {
		return
	}
	if hi >= end {
		hi = end - 1
	}
	lw, hw := (lo-bm.Start)/64, (hi-bm.Start)/64
	loMask := ^uint64(0) << ((lo - bm.Start) % 64)
	hiMask := ^uint64(0) >> (63 - (hi-bm.Start)%64)
	if lw == hw {
		bm.Words[lw] |= loMask & hiMask
		return
	}
	bm.Words[lw] |= loMask
	for w := lw + 1; w < hw; w++ {
		bm.Words[w] = ^uint64(0)
	}
	bm.Words[hw] |= hiMask
}

// WordAt returns the 64-bit coverage word for sequences [seq, seq+64): bit i
// is set iff Has(seq+i). seq need not be aligned to the map's Start.
func (bm *BufferMap) WordAt(seq uint64) uint64 {
	if len(bm.Words) == 0 {
		return 0
	}
	if seq < bm.Start {
		gap := bm.Start - seq
		if gap >= 64 {
			return 0
		}
		return bm.Words[0] << gap
	}
	off := seq - bm.Start
	if off >= uint64(bm.ByteLen)*8 {
		return 0
	}
	w, b := off/64, off%64
	v := bm.Words[w] >> b
	if b != 0 && w+1 < uint64(len(bm.Words)) {
		v |= bm.Words[w+1] << (64 - b)
	}
	return v
}

// Window returns the number of sub-pieces covered by the map.
func (bm *BufferMap) Window() uint64 { return uint64(bm.ByteLen) * 8 }

// appendBits appends the byte-granular encoding of the coverage bitmap.
func (bm *BufferMap) appendBits(b []byte) []byte {
	full := bm.ByteLen / 8
	for w := 0; w < full; w++ {
		b = binary.LittleEndian.AppendUint64(b, bm.Words[w])
	}
	for k := full * 8; k < bm.ByteLen; k++ {
		b = append(b, byte(bm.Words[k/8]>>(8*(k%8))))
	}
	return b
}

// bytesToWords decodes the byte-granular bitmap into words appended to dst.
func bytesToWords(dst []uint64, bits []byte) []uint64 {
	full := len(bits) / 8
	for w := 0; w < full; w++ {
		dst = append(dst, binary.LittleEndian.Uint64(bits[w*8:]))
	}
	if tail := bits[full*8:]; len(tail) > 0 {
		var v uint64
		for k, c := range tail {
			v |= uint64(c) << (8 * k)
		}
		dst = append(dst, v)
	}
	return dst
}

func (bm *BufferMap) append(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, bm.Start)
	b = binary.BigEndian.AppendUint16(b, uint16(bm.ByteLen))
	return bm.appendBits(b)
}

func (bm *BufferMap) size() int { return 8 + 2 + bm.ByteLen }

func (bm *BufferMap) read(b []byte) ([]byte, error) {
	if len(b) < 10 {
		return nil, ErrTruncated
	}
	bm.Start = binary.BigEndian.Uint64(b)
	n := int(binary.BigEndian.Uint16(b[8:]))
	b = b[10:]
	if len(b) < n {
		return nil, ErrTruncated
	}
	bm.ByteLen = n
	bm.Words = nil
	if n > 0 {
		bm.Words = bytesToWords(make([]uint64, 0, (n+7)/8), b[:n])
	}
	return b[n:], nil
}

// BufferMapAnnounce advertises the sender's buffer map to a neighbor.
type BufferMapAnnounce struct {
	Channel ChannelID
	Buffer  BufferMap
}

// Kind implements Message.
func (*BufferMapAnnounce) Kind() Type { return TBufferMap }

func (m *BufferMapAnnounce) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(m.Channel))
	return m.Buffer.append(b)
}

func (m *BufferMapAnnounce) bodySize() int { return 4 + m.Buffer.size() }

func (m *BufferMapAnnounce) readBody(b []byte) ([]byte, error) {
	v, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	m.Channel = ChannelID(v)
	return m.Buffer.read(b)
}

// DataRequest asks a neighbor for Count consecutive sub-pieces starting at
// transmission sequence Seq. Full-fidelity probe peers always use Count=1
// (one datagram per sub-piece, the shape the paper's traces have); coarse
// background peers batch. The paper's trace matching pairs requests and
// replies on (peer address, sequence number).
type DataRequest struct {
	Channel ChannelID
	Seq     uint64
	Count   uint16
}

// Kind implements Message.
func (*DataRequest) Kind() Type { return TDataRequest }

func (m *DataRequest) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(m.Channel))
	b = binary.BigEndian.AppendUint64(b, m.Seq)
	return binary.BigEndian.AppendUint16(b, m.Count)
}

func (*DataRequest) bodySize() int { return 4 + 8 + 2 }

func (m *DataRequest) readBody(b []byte) ([]byte, error) {
	v, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	m.Channel = ChannelID(v)
	if len(b) < 10 {
		return nil, ErrTruncated
	}
	m.Seq = binary.BigEndian.Uint64(b)
	m.Count = binary.BigEndian.Uint16(b[8:])
	return b[10:], nil
}

// DataReply carries Count consecutive sub-pieces of PieceLen bytes each,
// starting at Seq. The codec emits Count*PieceLen filler bytes so
// on-the-wire sizes are faithful without shipping real video. Count=0
// signals a miss: Busy distinguishes "overloaded, try elsewhere" from
// "don't have it".
type DataReply struct {
	Channel  ChannelID
	Seq      uint64
	Count    uint16
	PieceLen uint16
	Busy     bool
}

// PayloadLen returns the total video payload carried.
func (m *DataReply) PayloadLen() int { return int(m.Count) * int(m.PieceLen) }

// Kind implements Message.
func (*DataReply) Kind() Type { return TDataReply }

func (m *DataReply) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(m.Channel))
	b = binary.BigEndian.AppendUint64(b, m.Seq)
	b = binary.BigEndian.AppendUint16(b, m.Count)
	b = binary.BigEndian.AppendUint16(b, m.PieceLen)
	b = append(b, boolByte(m.Busy))
	return appendZeros(b, m.PayloadLen())
}

func (m *DataReply) bodySize() int { return 4 + 8 + 2 + 2 + 1 + m.PayloadLen() }

func (m *DataReply) readBody(b []byte) ([]byte, error) {
	v, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	m.Channel = ChannelID(v)
	if len(b) < 13 {
		return nil, ErrTruncated
	}
	m.Seq = binary.BigEndian.Uint64(b)
	m.Count = binary.BigEndian.Uint16(b[8:])
	m.PieceLen = binary.BigEndian.Uint16(b[10:])
	m.Busy = b[12] != 0
	b = b[13:]
	if len(b) < m.PayloadLen() {
		return nil, ErrTruncated
	}
	return b[m.PayloadLen():], nil
}

// Have is a per-piece availability hint: the sender just acquired Count
// consecutive sub-pieces starting at Seq. Gossiping these to a few random
// neighbors makes piece propagation exponential instead of waiting for the
// next periodic buffer-map announcement — the swarming behaviour mesh-pull
// streaming systems rely on.
type Have struct {
	Channel ChannelID
	Seq     uint64
	Count   uint16
}

// Kind implements Message.
func (*Have) Kind() Type { return THave }

func (m *Have) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(m.Channel))
	b = binary.BigEndian.AppendUint64(b, m.Seq)
	return binary.BigEndian.AppendUint16(b, m.Count)
}

func (*Have) bodySize() int { return 4 + 8 + 2 }

func (m *Have) readBody(b []byte) ([]byte, error) {
	v, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	m.Channel = ChannelID(v)
	if len(b) < 10 {
		return nil, ErrTruncated
	}
	m.Seq = binary.BigEndian.Uint64(b)
	m.Count = binary.BigEndian.Uint16(b[8:])
	return b[10:], nil
}

// AsnQuery asks the IP→ASN mapping service (the simulation's Team Cymru
// equivalent) to resolve an address.
type AsnQuery struct {
	Addr netip.Addr
}

// Kind implements Message.
func (*AsnQuery) Kind() Type { return TAsnQuery }

func (m *AsnQuery) appendBody(b []byte) []byte { return appendAddr(b, m.Addr) }

func (*AsnQuery) bodySize() int { return 4 }

func (m *AsnQuery) readBody(b []byte) ([]byte, error) {
	var err error
	m.Addr, b, err = readAddr(b)
	return b, err
}

// AsnResponse resolves an address to its origin AS. Found=false means the
// address is outside every registered prefix.
type AsnResponse struct {
	Addr  netip.Addr
	Found bool
	ASN   uint32
	ISP   byte // isp.ISP value
	Name  string
}

// Kind implements Message.
func (*AsnResponse) Kind() Type { return TAsnResponse }

func (m *AsnResponse) appendBody(b []byte) []byte {
	b = appendAddr(b, m.Addr)
	b = append(b, boolByte(m.Found))
	b = binary.BigEndian.AppendUint32(b, m.ASN)
	b = append(b, m.ISP)
	return appendString(b, m.Name)
}

func (m *AsnResponse) bodySize() int { return 4 + 1 + 4 + 1 + stringSize(m.Name) }

func (m *AsnResponse) readBody(b []byte) ([]byte, error) {
	var err error
	if m.Addr, b, err = readAddr(b); err != nil {
		return nil, err
	}
	if len(b) < 6 {
		return nil, ErrTruncated
	}
	m.Found = b[0] != 0
	m.ASN = binary.BigEndian.Uint32(b[1:])
	m.ISP = b[5]
	m.Name, b, err = readString(b[6:])
	return b, err
}

// Ping is a neighbor keepalive probe: a peer that has heard nothing from a
// neighbor for a while sends one and expects a Pong echoing the nonce. A
// crashed neighbor never answers, so missed pongs drive failure detection far
// faster than the long gossip silence bound.
type Ping struct {
	Channel ChannelID
	Nonce   uint32
}

// Kind implements Message.
func (*Ping) Kind() Type { return TPing }

func (m *Ping) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(m.Channel))
	return binary.BigEndian.AppendUint32(b, m.Nonce)
}

func (*Ping) bodySize() int { return 4 + 4 }

func (m *Ping) readBody(b []byte) ([]byte, error) {
	v, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	m.Channel = ChannelID(v)
	m.Nonce, b, err = readUint32(b)
	return b, err
}

// Pong answers a Ping, echoing its nonce.
type Pong struct {
	Channel ChannelID
	Nonce   uint32
}

// Kind implements Message.
func (*Pong) Kind() Type { return TPong }

func (m *Pong) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(m.Channel))
	return binary.BigEndian.AppendUint32(b, m.Nonce)
}

func (*Pong) bodySize() int { return 4 + 4 }

func (m *Pong) readBody(b []byte) ([]byte, error) {
	v, b, err := readUint32(b)
	if err != nil {
		return nil, err
	}
	m.Channel = ChannelID(v)
	m.Nonce, b, err = readUint32(b)
	return b, err
}

// newMessage allocates an empty message of the given type.
func newMessage(t Type) (Message, error) {
	switch t {
	case TChannelListRequest:
		return &ChannelListRequest{}, nil
	case TChannelListResponse:
		return &ChannelListResponse{}, nil
	case TPlaylinkRequest:
		return &PlaylinkRequest{}, nil
	case TPlaylinkResponse:
		return &PlaylinkResponse{}, nil
	case TTrackerAnnounce:
		return &TrackerAnnounce{}, nil
	case TTrackerQuery:
		return &TrackerQuery{}, nil
	case TTrackerResponse:
		return &TrackerResponse{}, nil
	case THandshake:
		return &Handshake{}, nil
	case THandshakeAck:
		return &HandshakeAck{}, nil
	case TPeerListRequest:
		return &PeerListRequest{}, nil
	case TPeerListReply:
		return &PeerListReply{}, nil
	case TBufferMap:
		return &BufferMapAnnounce{}, nil
	case TDataRequest:
		return &DataRequest{}, nil
	case TDataReply:
		return &DataReply{}, nil
	case THave:
		return &Have{}, nil
	case TAsnQuery:
		return &AsnQuery{}, nil
	case TAsnResponse:
		return &AsnResponse{}, nil
	case TPing:
		return &Ping{}, nil
	case TPong:
		return &Pong{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, byte(t))
	}
}

// Marshal encodes a message into a self-delimiting datagram.
func Marshal(m Message) []byte {
	return AppendMarshal(make([]byte, 0, Size(m)), m)
}

// AppendMarshal appends the encoded datagram to dst and returns the extended
// slice. Transports that reuse send buffers call this to marshal without a
// per-datagram allocation.
func AppendMarshal(dst []byte, m Message) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, magicValue)
	dst = append(dst, Version, byte(m.Kind()))
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.bodySize()))
	dst = m.appendBody(dst)
	sum := crc32.ChecksumIEEE(dst[start:])
	return binary.BigEndian.AppendUint32(dst, sum)
}

// Size returns the wire size of a message without encoding it. It equals
// len(Marshal(m)) and never allocates — the simulated underlay calls it for
// every datagram.
func Size(m Message) int {
	return headerLen + m.bodySize() + trailerLen
}

// Unmarshal decodes one datagram produced by Marshal.
func Unmarshal(b []byte) (Message, error) {
	if len(b) < headerLen+trailerLen {
		return nil, ErrShort
	}
	if binary.BigEndian.Uint16(b) != magicValue {
		return nil, ErrBadMagic
	}
	if b[2] != Version {
		return nil, ErrBadVersion
	}
	t := Type(b[3])
	bodyLen := int(binary.BigEndian.Uint32(b[4:]))
	if len(b) != headerLen+bodyLen+trailerLen {
		return nil, ErrTruncated
	}
	wantSum := binary.BigEndian.Uint32(b[headerLen+bodyLen:])
	if crc32.ChecksumIEEE(b[:headerLen+bodyLen]) != wantSum {
		return nil, ErrBadChecksum
	}
	m, err := newMessage(t)
	if err != nil {
		return nil, err
	}
	rest, err := m.readBody(b[headerLen : headerLen+bodyLen])
	if err != nil {
		return nil, fmt.Errorf("decode %s: %w", t, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("decode %s: %d trailing body bytes", t, len(rest))
	}
	return m, nil
}

// magicValue identifies protocol datagrams ("PL" for P2P Live).
const magicValue uint16 = 0x504C

// Encoding helpers.

// zeroChunk feeds appendZeros so filler payload never allocates a scratch
// slice per datagram.
var zeroChunk [4096]byte

func appendZeros(b []byte, n int) []byte {
	for n > 0 {
		c := n
		if c > len(zeroChunk) {
			c = len(zeroChunk)
		}
		b = append(b, zeroChunk[:c]...)
		n -= c
	}
	return b
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

func appendAddr(b []byte, a netip.Addr) []byte {
	v := a.As4()
	return append(b, v[:]...)
}

func readAddr(b []byte) (netip.Addr, []byte, error) {
	if len(b) < 4 {
		return netip.Addr{}, nil, ErrTruncated
	}
	return netip.AddrFrom4([4]byte(b[:4])), b[4:], nil
}

func addrListSize(addrs []netip.Addr) int {
	n := len(addrs)
	if n > 255 {
		n = 255
	}
	return 1 + 4*n
}

func appendAddrList(b []byte, addrs []netip.Addr) []byte {
	n := len(addrs)
	if n > 255 {
		n = 255
	}
	b = append(b, byte(n))
	for _, a := range addrs[:n] {
		b = appendAddr(b, a)
	}
	return b
}

func readAddrList(b []byte) ([]netip.Addr, []byte, error) {
	if len(b) < 1 {
		return nil, nil, ErrTruncated
	}
	n := int(b[0])
	b = b[1:]
	if len(b) < n*4 {
		return nil, nil, ErrTruncated
	}
	addrs := make([]netip.Addr, n)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte(b[:4]))
		b = b[4:]
	}
	return addrs, b, nil
}

func stringSize(s string) int {
	if len(s) > 255 {
		return 1 + 255
	}
	return 1 + len(s)
}

func appendString(b []byte, s string) []byte {
	if len(s) > 255 {
		s = s[:255]
	}
	b = append(b, byte(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 1 {
		return "", nil, ErrTruncated
	}
	n := int(b[0])
	b = b[1:]
	if len(b) < n {
		return "", nil, ErrTruncated
	}
	return string(b[:n]), b[n:], nil
}

func readUint16(b []byte) (uint16, []byte, error) {
	if len(b) < 2 {
		return 0, nil, ErrTruncated
	}
	return binary.BigEndian.Uint16(b), b[2:], nil
}

func readUint32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, ErrTruncated
	}
	return binary.BigEndian.Uint32(b), b[4:], nil
}
