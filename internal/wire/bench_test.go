package wire

import (
	"net/netip"
	"testing"
)

func BenchmarkMarshalDataReply(b *testing.B) {
	m := &DataReply{Channel: 1, Seq: 12345, Count: 1, PieceLen: SubPieceSize}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Marshal(m)
	}
}

func BenchmarkUnmarshalDataReply(b *testing.B) {
	data := Marshal(&DataReply{Channel: 1, Seq: 12345, Count: 1, PieceLen: SubPieceSize})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalPeerList(b *testing.B) {
	peers := make([]netip.Addr, MaxPeerList)
	for i := range peers {
		peers[i] = netip.AddrFrom4([4]byte{58, 32, byte(i), 1})
	}
	m := &PeerListReply{Channel: 1, Peers: peers}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Marshal(m)
	}
}

func BenchmarkSize(b *testing.B) {
	m := &DataReply{Channel: 1, Seq: 12345, Count: 8, PieceLen: SubPieceSize}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Size(m)
	}
}

// BenchmarkAppendMarshalDataReply measures the pooled-buffer encode path
// used by the real-UDP transport.
func BenchmarkAppendMarshalDataReply(b *testing.B) {
	m := &DataReply{Channel: 1, Seq: 12345, Count: 1, PieceLen: SubPieceSize}
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendMarshal(buf[:0], m)
	}
}
