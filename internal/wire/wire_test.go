package wire

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b := Marshal(m)
	if len(b) != Size(m) {
		t.Errorf("%s: Size() = %d, marshaled length = %d", m.Kind(), Size(m), len(b))
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("%s: Unmarshal: %v", m.Kind(), err)
	}
	if got.Kind() != m.Kind() {
		t.Fatalf("round trip changed type: %s → %s", m.Kind(), got.Kind())
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	msgs := []Message{
		&ChannelListRequest{},
		&ChannelListResponse{Channels: []ChannelInfo{
			{ID: 1, Rating: 990000, Name: "CCTV-5"},
			{ID: 2, Rating: 12, Name: "niche channel"},
		}},
		&PlaylinkRequest{Channel: 7},
		&PlaylinkResponse{
			Channel:  7,
			Source:   addr("58.32.0.9"),
			Trackers: []netip.Addr{addr("61.128.0.1"), addr("60.0.0.1"), addr("59.64.0.1"), addr("61.129.0.1"), addr("60.1.0.1")},
		},
		&PlaylinkResponse{
			Channel:  7,
			Source:   addr("58.32.0.9"),
			Trackers: []netip.Addr{addr("61.128.0.1"), addr("60.0.0.1"), addr("59.64.0.1"), addr("61.129.0.1"), addr("60.1.0.1")},
			Edges:    []netip.Addr{addr("61.200.0.1"), addr("60.200.0.1")},
		},
		&TrackerAnnounce{Channel: 7, Leaving: true},
		&TrackerQuery{Channel: 7},
		&TrackerResponse{Channel: 7, Peers: []netip.Addr{addr("1.2.3.4"), addr("5.6.7.8")}},
		&Handshake{Channel: 7},
		&HandshakeAck{Channel: 7, Accepted: true, Buffer: BufferMapFromBytes(100, []byte{0xff, 0x01})},
		&PeerListRequest{Channel: 7, OwnPeers: []netip.Addr{addr("9.9.9.9")}},
		&PeerListReply{Channel: 7, Peers: []netip.Addr{addr("2.2.2.2"), addr("3.3.3.3")}},
		&BufferMapAnnounce{Channel: 7, Buffer: BufferMapFromBytes(42, []byte{0x0f})},
		&DataRequest{Channel: 7, Seq: 123456789, Count: 1},
		&DataReply{Channel: 7, Seq: 123456789, Count: 1, PieceLen: SubPieceSize},
		&DataReply{Channel: 7, Seq: 42, Count: 16, PieceLen: SubPieceSize},
		&Have{Channel: 7, Seq: 987654, Count: 3},
		&AsnQuery{Addr: addr("202.96.0.1")},
		&AsnResponse{Addr: addr("202.96.0.1"), Found: true, ASN: 4134, ISP: 1, Name: "CHINANET"},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Errorf("%s round trip mismatch:\n got %#v\nwant %#v", m.Kind(), got, m)
		}
		if want := len(m.appendBody(nil)); m.bodySize() != want {
			t.Errorf("%s: bodySize() = %d, encoded body = %d", m.Kind(), m.bodySize(), want)
		}
	}
}

// normalize maps nil and empty slices to a canonical form for DeepEqual.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *TrackerResponse:
		if len(v.Peers) == 0 {
			v.Peers = nil
		}
	case *PeerListRequest:
		if len(v.OwnPeers) == 0 {
			v.OwnPeers = nil
		}
	case *PeerListReply:
		if len(v.Peers) == 0 {
			v.Peers = nil
		}
	case *PlaylinkResponse:
		if len(v.Trackers) == 0 {
			v.Trackers = nil
		}
		if len(v.Edges) == 0 {
			v.Edges = nil
		}
	case *ChannelListResponse:
		if len(v.Channels) == 0 {
			v.Channels = nil
		}
	}
	return m
}

// TestPlaylinkEdgesEncodingCompat pins the backward compatibility of the
// Edges extension: a response without edges must encode to exactly the
// pre-extension byte layout (the golden digests hash record sizes, so even
// one extra length byte would shift them), and the edge list rides as a
// strictly appended trailing section.
func TestPlaylinkEdgesEncodingCompat(t *testing.T) {
	base := &PlaylinkResponse{
		Channel:  7,
		Source:   addr("58.32.0.9"),
		Trackers: []netip.Addr{addr("61.128.0.1"), addr("60.0.0.1")},
	}
	edges := []netip.Addr{addr("61.200.0.1"), addr("60.200.0.1")}
	plain := Marshal(base)
	withEdges := Marshal(&PlaylinkResponse{Channel: base.Channel, Source: base.Source, Trackers: base.Trackers, Edges: edges})

	if want := len(plain) + 1 + 4*len(edges); len(withEdges) != want {
		t.Errorf("with-edges encoding is %d bytes, want %d (legacy + 1 count byte + 4 per edge)", len(withEdges), want)
	}
	// Bodies: the legacy body must be a strict prefix of the extended one
	// (the 8-byte header's length field and the CRC trailer differ, of
	// course). The datagram layout is header | body | crc32.
	const header, trailer = 8, 4
	plainBody := plain[header : len(plain)-trailer]
	extBody := withEdges[header : len(withEdges)-trailer]
	for i := range plainBody {
		if extBody[i] != plainBody[i] {
			t.Fatalf("body byte %d differs: edges must be appended, never reshuffle the legacy layout", i)
		}
	}

	// Legacy bytes (no trailing section) decode to a nil edge list.
	got, err := Unmarshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if resp := got.(*PlaylinkResponse); len(resp.Edges) != 0 {
		t.Errorf("legacy encoding decoded with edges %v", resp.Edges)
	}
}

func TestDataReplyWireSizeIncludesPayload(t *testing.T) {
	small := Size(&DataReply{Count: 0, PieceLen: SubPieceSize})
	one := Size(&DataReply{Count: 1, PieceLen: SubPieceSize})
	batch := Size(&DataReply{Count: 16, PieceLen: SubPieceSize})
	if one-small != SubPieceSize {
		t.Errorf("single payload delta = %d, want %d", one-small, SubPieceSize)
	}
	if batch-small != 16*SubPieceSize {
		t.Errorf("batch payload delta = %d, want %d", batch-small, 16*SubPieceSize)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	valid := Marshal(&Handshake{Channel: 3})

	t.Run("short", func(t *testing.T) {
		if _, err := Unmarshal(valid[:5]); err != ErrShort {
			t.Errorf("err = %v, want ErrShort", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[0] ^= 0xff
		if _, err := Unmarshal(b); err != ErrBadMagic {
			t.Errorf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[2] = 99
		if _, err := Unmarshal(b); err != ErrBadVersion {
			t.Errorf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("corrupt body", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[len(b)-6] ^= 0xff // inside body
		if _, err := Unmarshal(b); err != ErrBadChecksum {
			t.Errorf("err = %v, want ErrBadChecksum", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		if _, err := Unmarshal(b[:len(b)-1]); err != ErrTruncated {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("unknown type", func(t *testing.T) {
		raw := []byte{0x50, 0x4C, Version, byte(maxType) + 10, 0, 0, 0, 0}
		sum := crc32.ChecksumIEEE(raw)
		raw = binary.BigEndian.AppendUint32(raw, sum)
		if _, err := Unmarshal(raw); err == nil {
			t.Error("unknown type decoded without error")
		}
	})
}

func TestBufferMapHasSet(t *testing.T) {
	bm := MakeBufferMap(100, 32) // covers 100..131
	for _, seq := range []uint64{100, 101, 115, 131} {
		if bm.Has(seq) {
			t.Errorf("fresh map Has(%d) = true", seq)
		}
		bm.Set(seq)
		if !bm.Has(seq) {
			t.Errorf("after Set, Has(%d) = false", seq)
		}
	}
	// Out of window: ignored, no panic.
	bm.Set(99)
	bm.Set(132)
	if bm.Has(99) || bm.Has(132) {
		t.Error("out-of-window seq reported as held")
	}
	if bm.Window() != 32 {
		t.Errorf("Window() = %d, want 32", bm.Window())
	}
}

func TestPeerListTruncationAt255(t *testing.T) {
	peers := make([]netip.Addr, 300)
	for i := range peers {
		peers[i] = netip.AddrFrom4([4]byte{10, 0, byte(i / 256), byte(i % 256)})
	}
	m := &PeerListReply{Channel: 1, Peers: peers}
	got, err := Unmarshal(Marshal(m))
	if err != nil {
		t.Fatal(err)
	}
	reply, ok := got.(*PeerListReply)
	if !ok {
		t.Fatalf("decoded %T", got)
	}
	if len(reply.Peers) != 255 {
		t.Errorf("decoded %d peers, want truncation to 255", len(reply.Peers))
	}
}

// Property: DataRequest round-trips for arbitrary channel/seq.
func TestPropertyDataRequestRoundTrip(t *testing.T) {
	f := func(ch uint32, seq uint64, count uint16) bool {
		m := &DataRequest{Channel: ChannelID(ch), Seq: seq, Count: count}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		g, ok := got.(*DataRequest)
		return ok && g.Channel == m.Channel && g.Seq == m.Seq && g.Count == m.Count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// Property: peer lists of arbitrary IPv4 addresses round-trip.
func TestPropertyPeerListRoundTrip(t *testing.T) {
	f := func(raw [][4]byte) bool {
		if len(raw) > 60 {
			raw = raw[:60]
		}
		peers := make([]netip.Addr, len(raw))
		for i, b := range raw {
			peers[i] = netip.AddrFrom4(b)
		}
		m := &PeerListReply{Channel: 5, Peers: peers}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		g, ok := got.(*PeerListReply)
		if !ok || len(g.Peers) != len(peers) {
			return false
		}
		for i := range peers {
			if g.Peers[i] != peers[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}

// Property: BufferMap encoding round-trips and Has() is preserved.
func TestPropertyBufferMapRoundTrip(t *testing.T) {
	f := func(start uint64, bits []byte) bool {
		if len(bits) > 512 {
			bits = bits[:512]
		}
		m := &BufferMapAnnounce{Channel: 1, Buffer: BufferMapFromBytes(start, bits)}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		g, ok := got.(*BufferMapAnnounce)
		if !ok || g.Buffer.Start != start || g.Buffer.ByteLen != len(bits) {
			return false
		}
		dec := g.Buffer.Bytes()
		for i := range bits {
			if dec[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Error(err)
	}
}

// Property: the word-based primitives agree with a per-bit reference model
// over random windows and offsets, including partial trailing words and
// probes below/above the window.
func TestPropertyBufferMapWordOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		start := uint64(rng.Intn(5000)) + 64 // keep probes below start representable
		nbytes := rng.Intn(70)
		bits := make([]byte, nbytes)
		rng.Read(bits)
		bm := BufferMapFromBytes(start, bits)

		ref := make(map[uint64]bool)
		for k, c := range bits {
			for i := 0; i < 8; i++ {
				if c&(1<<i) != 0 {
					ref[start+uint64(8*k+i)] = true
				}
			}
		}
		// A random SetRange on both representations.
		if nbytes > 0 && rng.Intn(2) == 0 {
			lo := start - 10 + uint64(rng.Intn(8*nbytes+20))
			hi := lo + uint64(rng.Intn(200))
			bm.SetRange(lo, hi)
			for seq := lo; seq <= hi; seq++ {
				if seq >= start && seq-start < uint64(8*nbytes) {
					ref[seq] = true
				}
			}
		}
		for probe := 0; probe < 200; probe++ {
			seq := start - 70 + uint64(rng.Intn(8*nbytes+140))
			if bm.Has(seq) != ref[seq] {
				t.Fatalf("iter %d: Has(%d) = %v, ref %v (start=%d bytes=%d)",
					iter, seq, bm.Has(seq), ref[seq], start, nbytes)
			}
			w := bm.WordAt(seq)
			for i := uint64(0); i < 64; i++ {
				if w>>i&1 != 0 != ref[seq+i] {
					t.Fatalf("iter %d: WordAt(%d) bit %d = %d, ref %v",
						iter, seq, i, w>>i&1, ref[seq+i])
				}
			}
		}
		// The byte view must round-trip the word store exactly.
		got := bm.Bytes()
		if nbytes == 0 {
			if got != nil {
				t.Fatalf("iter %d: empty map Bytes() = %x", iter, got)
			}
			continue
		}
		for k := range bits {
			want := bits[k]
			for i := 0; i < 8; i++ {
				if ref[start+uint64(8*k+i)] {
					want |= 1 << i
				}
			}
			if got[k] != want {
				t.Fatalf("iter %d: Bytes()[%d] = %#x, want %#x", iter, k, got[k], want)
			}
		}
	}
}

func TestTypeStrings(t *testing.T) {
	for tt := TChannelListRequest; tt < maxType; tt++ {
		if s := tt.String(); s == "" || s[0] == 'T' && len(s) > 4 && s[:4] == "Type" {
			t.Errorf("Type(%d) has fallback String %q", byte(tt), s)
		}
	}
	if Type(200).String() == "" {
		t.Error("unknown type String is empty")
	}
}
