package wire

import (
	"net/netip"
	"testing"
)

// FuzzUnmarshal drives the decoder with arbitrary datagrams; it must never
// panic, and anything it accepts must re-encode canonically.
func FuzzUnmarshal(f *testing.F) {
	seeds := []Message{
		&ChannelListRequest{},
		&ChannelListResponse{Channels: []ChannelInfo{{ID: 1, Rating: 5, Name: "ch"}}},
		&PlaylinkResponse{Channel: 1, Source: netip.MustParseAddr("1.2.3.4"),
			Trackers: []netip.Addr{netip.MustParseAddr("5.6.7.8")}},
		&TrackerResponse{Channel: 1, Peers: []netip.Addr{netip.MustParseAddr("9.9.9.9")}},
		&HandshakeAck{Channel: 1, Accepted: true, Buffer: BufferMapFromBytes(10, []byte{0xff})},
		&PeerListRequest{Channel: 1, OwnPeers: []netip.Addr{netip.MustParseAddr("2.2.2.2")}},
		&DataRequest{Channel: 1, Seq: 99, Count: 4},
		&DataReply{Channel: 1, Seq: 99, Count: 1, PieceLen: 690},
		&Have{Channel: 1, Seq: 5, Count: 2},
		&AsnQuery{Addr: netip.MustParseAddr("58.32.0.1")},
		&AsnResponse{Addr: netip.MustParseAddr("58.32.0.1"), Found: true, ASN: 4134, ISP: 1, Name: "CHINANET"},
		&Ping{Channel: 1, Nonce: 0xDEADBEEF},
		&Pong{Channel: 1, Nonce: 0xDEADBEEF},
	}
	// Golden-trace-shaped seeds: the shapes the simulator actually puts on
	// the wire (2048-sub-piece buffer windows, full 60-entry tracker
	// replies), mirrored by the committed corpus in testdata/fuzz.
	seeds = append(seeds, goldenShapedSeeds()...)
	for _, m := range seeds {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x4C, 1, 1, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Accepted datagrams must re-encode to exactly the input
		// (canonical encoding) — modulo nothing: header, body, CRC.
		again := Marshal(msg)
		if string(again) != string(data) {
			t.Fatalf("non-canonical accept:\n in  %x\n out %x", data, again)
		}
	})
}

// goldenShapedSeeds builds messages with the dimensions of the pinned golden
// scenarios: a DefaultConfig peer announces a 2048-sub-piece (256-byte)
// buffer map around a mid-stream playhead, and trackers return up to
// MaxPeerList addresses drawn from the simulation's ISP address blocks.
func goldenShapedSeeds() []Message {
	bm := MakeBufferMap(481000, 2048)
	bm.SetRange(481000, 482023)
	bm.Set(482100)
	bm.Set(482741)
	peers := make([]netip.Addr, MaxPeerList)
	for i := range peers {
		// Cycle through the scenario address plan's leading octets.
		first := []byte{58, 60, 59, 121, 129}[i%5]
		peers[i] = netip.AddrFrom4([4]byte{first, 32, byte(i >> 8), byte(i)})
	}
	return []Message{
		&BufferMapAnnounce{Channel: 1, Buffer: bm},
		&HandshakeAck{Channel: 1, Accepted: true, Buffer: bm},
		&TrackerResponse{Channel: 1, Peers: peers},
		&PeerListReply{Channel: 1, Peers: peers[:20]},
	}
}
