package bittorrent

import (
	"fmt"
	"time"

	"pplivesim/internal/asnmap"
	"pplivesim/internal/eventsim"
	"pplivesim/internal/ipam"
	"pplivesim/internal/isp"
	"pplivesim/internal/underlay"
	"pplivesim/internal/workload"
)

// LocalityResult summarizes a probe leecher's download by origin ISP,
// comparable to the streaming system's traffic-locality reports.
type LocalityResult struct {
	BytesByISP map[isp.ISP]uint64
	// Locality is the same-ISP share of downloaded bytes (seed excluded).
	Locality float64
	// SeedBytes is what came straight from the initial seed.
	SeedBytes uint64
	// Progress is the probe's completion fraction at the horizon.
	Progress float64
	// PeersDone counts background leechers that completed.
	PeersDone int
	// Events is the engine's processed-event count.
	Events uint64
}

// RunLocality builds a BT swarm over the simulated underlay with the given
// per-ISP leecher population, one seed (in TELE, like the streaming source),
// and one probe leecher in probeISP, runs it for the given duration, and
// reports the probe's download locality. This is the tracker-only baseline
// the paper contrasts with PPLive's referral-based selection.
func RunLocality(seed int64, viewers workload.Population, probeISP isp.ISP, duration time.Duration) (*LocalityResult, error) {
	eng := eventsim.New(seed)
	network := underlay.New(eng, underlay.DefaultConfig())
	registry := asnmap.SyntheticInternet()
	cfg := DefaultConfig()

	pools := make(map[isp.ISP]*ipam.Pool)
	newHost := func(category isp.ISP, upload float64) (*underlay.Host, error) {
		pool, ok := pools[category]
		if !ok {
			var err error
			pool, err = registry.PoolFor(category)
			if err != nil {
				return nil, err
			}
			pools[category] = pool
		}
		addr, err := pool.Alloc()
		if err != nil {
			return nil, err
		}
		return &underlay.Host{
			Addr:      addr,
			ISP:       category,
			UploadBps: upload,
			ProcDelay: 3 * time.Millisecond,
		}, nil
	}

	// Tracker and seed.
	trackerHost, err := newHost(isp.TELE, 8<<20)
	if err != nil {
		return nil, err
	}
	swarm, err := New(eng, network, cfg, trackerHost)
	if err != nil {
		return nil, err
	}
	seedHost, err := newHost(isp.TELE, 4<<20)
	if err != nil {
		return nil, err
	}
	seedPeer, err := swarm.AddPeer(seedHost, true)
	if err != nil {
		return nil, err
	}

	// Background leechers: joins spread over the first two minutes.
	rng := eng.NewRand()
	var background []*Peer
	for _, category := range isp.All() {
		for i := 0; i < viewers[category]; i++ {
			category := category
			at := time.Duration(rng.Int63n(int64(2 * time.Minute)))
			eng.At(at, func() {
				host, err := newHost(category, workload.UploadCapacity(rng, category))
				if err != nil {
					panic(fmt.Sprintf("bittorrent: host: %v", err))
				}
				p, err := swarm.AddPeer(host, false)
				if err != nil {
					panic(fmt.Sprintf("bittorrent: peer: %v", err))
				}
				background = append(background, p)
			})
		}
	}

	// Probe leecher joins two minutes in.
	var probe *Peer
	eng.At(2*time.Minute, func() {
		host, err := newHost(probeISP, workload.UploadCapacity(rng, probeISP))
		if err != nil {
			panic(fmt.Sprintf("bittorrent: probe host: %v", err))
		}
		probe, err = swarm.AddPeer(host, false)
		if err != nil {
			panic(fmt.Sprintf("bittorrent: probe: %v", err))
		}
	})

	if err := eng.Run(duration); err != nil {
		return nil, err
	}

	out := &LocalityResult{BytesByISP: make(map[isp.ISP]uint64), Events: eng.Processed()}
	if probe != nil {
		out.Progress = probe.Progress()
		var total uint64
		for addr, bytes := range probe.BytesFrom() {
			if addr == seedPeer.Addr() {
				out.SeedBytes += bytes
				continue
			}
			category := isp.Foreign
			if got, ok := registry.ISPOf(addr); ok {
				category = got
			}
			out.BytesByISP[category] += bytes
			total += bytes
		}
		if total > 0 {
			out.Locality = float64(out.BytesByISP[probeISP]) / float64(total)
		}
	}
	for _, p := range background {
		if p.Done() {
			out.PeersDone++
		}
	}
	return out, nil
}
