// Package bittorrent implements the baseline the paper contrasts PPLive
// against: a BitTorrent-style swarm with tracker-only peer discovery,
// random neighbor selection, tit-for-tat choking, and rarest-first piece
// scheduling (§1, §4). Peers learn about each other exclusively through the
// tracker — no neighbor referral, no latency bias anywhere — so the overlay
// is blind to the underlay and cross-ISP traffic is expected to dominate.
//
// The swarm distributes a fixed file over the same simulated underlay the
// streaming system uses, which makes ISP-level locality directly comparable
// between the two architectures.
package bittorrent

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"pplivesim/internal/eventsim"
	"pplivesim/internal/underlay"
)

// Message kinds exchanged by BT peers. Sizes approximate the real protocol.
type msgKind int

const (
	msgTrackerRequest msgKind = iota + 1
	msgTrackerResponse
	msgHandshake // includes bitfield
	msgHandshakeAck
	msgHave
	msgInterested
	msgNotInterested
	msgChoke
	msgUnchoke
	msgRequest
	msgPiece
)

// message is the datagram payload.
type message struct {
	kind  msgKind
	peers []netip.Addr // tracker response
	field []bool       // handshake bitfield (copied)
	piece int          // have / request / piece
}

// wireSize approximates each message's on-the-wire size.
func (m *message) wireSize(pieceLen int) int {
	switch m.kind {
	case msgTrackerRequest:
		return 120
	case msgTrackerResponse:
		return 20 + 6*len(m.peers)
	case msgHandshake, msgHandshakeAck:
		return 68 + (len(m.field)+7)/8
	case msgPiece:
		return 13 + pieceLen
	default:
		return 17
	}
}

// Config sizes the swarm.
type Config struct {
	NumPieces int // file pieces
	PieceLen  int // bytes per piece

	MaxNeighbors   int
	TrackerPeers   int           // peers per tracker response
	TrackerPeriod  time.Duration // re-announce interval
	RechokePeriod  time.Duration
	Unchoked       int // reciprocal unchoke slots
	OptimisticSlot int // extra optimistic unchoke slots
	Pipeline       int // outstanding requests per neighbor
	RequestTimeout time.Duration
}

// DefaultConfig returns a classic small-swarm configuration.
func DefaultConfig() Config {
	return Config{
		NumPieces:      1200,
		PieceLen:       16 << 10,
		MaxNeighbors:   30,
		TrackerPeers:   40,
		TrackerPeriod:  60 * time.Second,
		RechokePeriod:  10 * time.Second,
		Unchoked:       4,
		OptimisticSlot: 1,
		Pipeline:       6,
		RequestTimeout: 8 * time.Second,
	}
}

// Tracker is the swarm's only discovery service: it returns a uniformly
// random peer sample, with no topology awareness.
type Tracker struct {
	swarm *Swarm
	host  *underlay.Host
	peers map[netip.Addr]bool
	order []netip.Addr
}

func (t *Tracker) handle(from netip.Addr, m *message) {
	if m.kind != msgTrackerRequest {
		return
	}
	if !t.peers[from] {
		t.peers[from] = true
		t.order = append(t.order, from)
	}
	rng := t.swarm.rng
	candidates := make([]netip.Addr, 0, len(t.order))
	for _, a := range t.order {
		if a != from {
			candidates = append(candidates, a)
		}
	}
	k := t.swarm.cfg.TrackerPeers
	if k > len(candidates) {
		k = len(candidates)
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(candidates)-i)
		candidates[i], candidates[j] = candidates[j], candidates[i]
	}
	t.swarm.send(t.host, from, &message{kind: msgTrackerResponse, peers: append([]netip.Addr(nil), candidates[:k]...)})
}

// neighborState tracks one BT neighbor relationship.
type neighborState struct {
	addr        netip.Addr
	field       []bool
	interested  bool // they are interested in us
	choked      bool // we choke them
	chokingUs   bool // they choke us
	outstanding map[int]time.Duration

	downloaded uint64 // bytes we got from them (tit-for-tat currency)
}

// Peer is one BT leecher or seeder.
type Peer struct {
	swarm *Swarm
	host  *underlay.Host
	cfg   Config

	have      []bool
	remaining int
	neighbors map[netip.Addr]*neighborState

	// Stats per remote ISP are derived by the harness from byte counters.
	bytesFrom map[netip.Addr]uint64

	done bool
}

// Addr returns the peer's address.
func (p *Peer) Addr() netip.Addr { return p.host.Addr }

// Done reports whether the peer completed the file.
func (p *Peer) Done() bool { return p.done }

// Progress returns the fraction of pieces held.
func (p *Peer) Progress() float64 {
	return float64(p.cfg.NumPieces-p.remaining) / float64(p.cfg.NumPieces)
}

// BytesFrom returns per-remote download byte counters.
func (p *Peer) BytesFrom() map[netip.Addr]uint64 {
	out := make(map[netip.Addr]uint64, len(p.bytesFrom))
	for a, b := range p.bytesFrom {
		out[a] = b
	}
	return out
}

// Swarm owns a BT session over an existing engine + underlay.
type Swarm struct {
	eng     *eventsim.Engine
	net     *underlay.Network
	cfg     Config
	rng     *rand.Rand
	tracker *Tracker
	peers   map[netip.Addr]*Peer
}

// New creates a swarm with a tracker attached at trackerHost.
func New(eng *eventsim.Engine, network *underlay.Network, cfg Config, trackerHost *underlay.Host) (*Swarm, error) {
	if cfg.NumPieces <= 0 || cfg.PieceLen <= 0 {
		return nil, fmt.Errorf("bittorrent: invalid piece geometry %d×%d", cfg.NumPieces, cfg.PieceLen)
	}
	s := &Swarm{
		eng:   eng,
		net:   network,
		cfg:   cfg,
		rng:   eng.NewRand(),
		peers: make(map[netip.Addr]*Peer),
	}
	t := &Tracker{swarm: s, host: trackerHost, peers: make(map[netip.Addr]bool)}
	if err := network.Attach(trackerHost, func(from netip.Addr, _ int, payload any) {
		if m, ok := payload.(*message); ok {
			t.handle(from, m)
		}
	}); err != nil {
		return nil, err
	}
	s.tracker = t
	return s, nil
}

// send transmits a message, accounting its approximate wire size.
func (s *Swarm) send(from *underlay.Host, to netip.Addr, m *message) {
	s.net.Send(from, to, m.wireSize(s.cfg.PieceLen), m)
}

// AddPeer attaches a peer; seed peers start with the full file.
func (s *Swarm) AddPeer(host *underlay.Host, seed bool) (*Peer, error) {
	p := &Peer{
		swarm:     s,
		host:      host,
		cfg:       s.cfg,
		have:      make([]bool, s.cfg.NumPieces),
		remaining: s.cfg.NumPieces,
		neighbors: make(map[netip.Addr]*neighborState),
		bytesFrom: make(map[netip.Addr]uint64),
	}
	if seed {
		for i := range p.have {
			p.have[i] = true
		}
		p.remaining = 0
		p.done = true
	}
	if err := s.net.Attach(host, func(from netip.Addr, _ int, payload any) {
		if m, ok := payload.(*message); ok {
			p.handle(from, m)
		}
	}); err != nil {
		return nil, err
	}
	s.peers[host.Addr] = p
	p.announce()
	s.eng.Every(s.cfg.TrackerPeriod, p.announce)
	s.eng.Every(s.cfg.RechokePeriod, p.rechoke)
	s.eng.Every(time.Second, p.schedule)
	return p, nil
}

func (p *Peer) announce() {
	p.swarm.send(p.host, p.swarm.tracker.host.Addr, &message{kind: msgTrackerRequest})
}

// sortedNeighbors returns neighbor states in deterministic address order.
func (p *Peer) sortedNeighbors() []*neighborState {
	addrs := make([]netip.Addr, 0, len(p.neighbors))
	for a := range p.neighbors {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	out := make([]*neighborState, len(addrs))
	for i, a := range addrs {
		out[i] = p.neighbors[a]
	}
	return out
}

func (p *Peer) handle(from netip.Addr, m *message) {
	switch m.kind {
	case msgTrackerResponse:
		// Random neighbor selection: connect to listed peers until full —
		// no latency consideration of any kind.
		for _, a := range m.peers {
			if len(p.neighbors) >= p.cfg.MaxNeighbors {
				break
			}
			if _, ok := p.neighbors[a]; ok || a == p.host.Addr {
				continue
			}
			p.neighbors[a] = &neighborState{
				addr: a, choked: true, chokingUs: true,
				outstanding: make(map[int]time.Duration),
			}
			p.swarm.send(p.host, a, &message{kind: msgHandshake, field: append([]bool(nil), p.have...)})
		}
	case msgHandshake, msgHandshakeAck:
		nb, ok := p.neighbors[from]
		if !ok {
			if len(p.neighbors) >= 2*p.cfg.MaxNeighbors || m.kind == msgHandshakeAck {
				return
			}
			nb = &neighborState{
				addr: from, choked: true, chokingUs: true,
				outstanding: make(map[int]time.Duration),
			}
			p.neighbors[from] = nb
		}
		nb.field = append([]bool(nil), m.field...)
		if m.kind == msgHandshake {
			p.swarm.send(p.host, from, &message{kind: msgHandshakeAck, field: append([]bool(nil), p.have...)})
		}
		if p.wantsFrom(nb) {
			p.swarm.send(p.host, from, &message{kind: msgInterested})
		}
	case msgHave:
		nb, ok := p.neighbors[from]
		if !ok {
			return
		}
		if nb.field == nil {
			nb.field = make([]bool, p.cfg.NumPieces)
		}
		if m.piece >= 0 && m.piece < len(nb.field) {
			nb.field[m.piece] = true
		}
		if p.wantsFrom(nb) {
			p.swarm.send(p.host, from, &message{kind: msgInterested})
		}
	case msgInterested:
		if nb, ok := p.neighbors[from]; ok {
			nb.interested = true
		}
	case msgNotInterested:
		if nb, ok := p.neighbors[from]; ok {
			nb.interested = false
		}
	case msgChoke:
		if nb, ok := p.neighbors[from]; ok {
			nb.chokingUs = true
		}
	case msgUnchoke:
		if nb, ok := p.neighbors[from]; ok {
			nb.chokingUs = false
		}
	case msgRequest:
		nb, ok := p.neighbors[from]
		if !ok || nb.choked {
			return
		}
		if m.piece < 0 || m.piece >= len(p.have) || !p.have[m.piece] {
			return
		}
		p.swarm.send(p.host, from, &message{kind: msgPiece, piece: m.piece})
	case msgPiece:
		nb, ok := p.neighbors[from]
		if !ok {
			return
		}
		delete(nb.outstanding, m.piece)
		nb.downloaded += uint64(p.cfg.PieceLen)
		p.bytesFrom[from] += uint64(p.cfg.PieceLen)
		if m.piece >= 0 && m.piece < len(p.have) && !p.have[m.piece] {
			p.have[m.piece] = true
			p.remaining--
			if p.remaining == 0 {
				p.done = true
			}
			// Advertise to everyone, per protocol.
			for _, other := range p.sortedNeighbors() {
				p.swarm.send(p.host, other.addr, &message{kind: msgHave, piece: m.piece})
			}
		}
	}
}

// wantsFrom reports whether the neighbor has a piece we lack.
func (p *Peer) wantsFrom(nb *neighborState) bool {
	for i, h := range nb.field {
		if h && !p.have[i] {
			return true
		}
	}
	return false
}

// rechoke implements tit-for-tat: unchoke the top downloaders among
// interested neighbors plus one optimistic slot; seeds unchoke round-robin
// by the same mechanism (download ties broken randomly).
func (p *Peer) rechoke() {
	interested := make([]*neighborState, 0, len(p.neighbors))
	for _, nb := range p.sortedNeighbors() {
		if nb.interested {
			interested = append(interested, nb)
		}
		nb.downloaded = nb.downloaded / 2 // decay the reciprocation window
	}
	rng := p.swarm.rng
	rng.Shuffle(len(interested), func(i, j int) { interested[i], interested[j] = interested[j], interested[i] })
	sort.SliceStable(interested, func(i, j int) bool {
		return interested[i].downloaded > interested[j].downloaded
	})
	slots := p.cfg.Unchoked + p.cfg.OptimisticSlot
	for i, nb := range interested {
		unchoke := i < slots
		if unchoke == !nb.choked {
			continue
		}
		nb.choked = !unchoke
		kind := msgChoke
		if unchoke {
			kind = msgUnchoke
		}
		p.swarm.send(p.host, nb.addr, &message{kind: kind})
	}
}

// schedule issues rarest-first requests to unchoking neighbors.
func (p *Peer) schedule() {
	if p.done {
		return
	}
	now := p.swarm.eng.Now()
	// Expire stale requests.
	inFlight := make(map[int]bool)
	for _, nb := range p.neighbors {
		for piece, at := range nb.outstanding {
			if now-at > p.cfg.RequestTimeout {
				delete(nb.outstanding, piece)
				continue
			}
			inFlight[piece] = true
		}
	}

	// Piece rarity among neighbors.
	counts := make([]int, p.cfg.NumPieces)
	for _, nb := range p.neighbors {
		for i, h := range nb.field {
			if h {
				counts[i]++
			}
		}
	}
	type cand struct {
		piece  int
		rarity int
	}
	var cands []cand
	for i, h := range p.have {
		if h || inFlight[i] || counts[i] == 0 {
			continue
		}
		cands = append(cands, cand{piece: i, rarity: counts[i]})
	}
	rng := p.swarm.rng
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].rarity < cands[j].rarity })

	providers := p.sortedNeighbors()
	for _, c := range cands {
		var best *neighborState
		for _, nb := range providers {
			if nb.chokingUs || len(nb.outstanding) >= p.cfg.Pipeline {
				continue
			}
			if c.piece < len(nb.field) && nb.field[c.piece] {
				// Random provider among eligible holders.
				if best == nil || rng.Intn(2) == 0 {
					best = nb
				}
			}
		}
		if best == nil {
			continue
		}
		best.outstanding[c.piece] = now
		p.swarm.send(p.host, best.addr, &message{kind: msgRequest, piece: c.piece})
	}
}
