package bittorrent

import (
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/eventsim"
	"pplivesim/internal/isp"
	"pplivesim/internal/underlay"
	"pplivesim/internal/workload"
)

// smallConfig shrinks the file so tests finish fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPieces = 120
	return cfg
}

func newTestSwarm(t *testing.T, cfg Config) (*eventsim.Engine, *underlay.Network, *Swarm) {
	t.Helper()
	eng := eventsim.New(1)
	ucfg := underlay.DefaultConfig()
	ucfg.LossIntra, ucfg.LossInterDomestic, ucfg.LossTransoceanic = 0, 0, 0
	network := underlay.New(eng, ucfg)
	tracker := &underlay.Host{
		Addr: netip.MustParseAddr("61.128.0.1"), ISP: isp.TELE, UploadBps: 8 << 20,
	}
	swarm, err := New(eng, network, cfg, tracker)
	if err != nil {
		t.Fatal(err)
	}
	return eng, network, swarm
}

func host(addr string, category isp.ISP, up float64) *underlay.Host {
	return &underlay.Host{Addr: netip.MustParseAddr(addr), ISP: category, UploadBps: up}
}

func TestConfigValidation(t *testing.T) {
	eng := eventsim.New(1)
	network := underlay.New(eng, underlay.DefaultConfig())
	bad := DefaultConfig()
	bad.NumPieces = 0
	_, err := New(eng, network, bad, host("61.128.0.1", isp.TELE, 1<<20))
	if err == nil {
		t.Error("zero pieces accepted")
	}
}

func TestSeedToSingleLeecher(t *testing.T) {
	eng, _, swarm := newTestSwarm(t, smallConfig())
	seed, err := swarm.AddPeer(host("58.32.0.1", isp.TELE, 2<<20), true)
	if err != nil {
		t.Fatal(err)
	}
	if !seed.Done() || seed.Progress() != 1 {
		t.Fatal("seed not complete at start")
	}
	leecher, err := swarm.AddPeer(host("58.32.0.2", isp.TELE, 1<<20), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !leecher.Done() {
		t.Fatalf("leecher incomplete: progress %.2f", leecher.Progress())
	}
	bytes := leecher.BytesFrom()[seed.Addr()]
	wantMin := uint64(smallConfig().NumPieces * smallConfig().PieceLen)
	if bytes < wantMin {
		t.Errorf("leecher got %d bytes from seed, want >= %d", bytes, wantMin)
	}
}

func TestSwarmCompletesAndShares(t *testing.T) {
	eng, _, swarm := newTestSwarm(t, smallConfig())
	if _, err := swarm.AddPeer(host("58.32.0.1", isp.TELE, 1<<20), true); err != nil {
		t.Fatal(err)
	}
	var leechers []*Peer
	for i := 0; i < 12; i++ {
		p, err := swarm.AddPeer(host(netip.AddrFrom4([4]byte{58, 32, 1, byte(i + 1)}).String(), isp.TELE, 96<<10), false)
		if err != nil {
			t.Fatal(err)
		}
		leechers = append(leechers, p)
	}
	if err := eng.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	done := 0
	peerToPeer := false
	for i, p := range leechers {
		if p.Done() {
			done++
		}
		for from := range p.BytesFrom() {
			for j, other := range leechers {
				if i != j && from == other.Addr() {
					peerToPeer = true
				}
			}
		}
	}
	if done < 10 {
		t.Errorf("only %d of 12 leechers completed", done)
	}
	if !peerToPeer {
		t.Error("no peer-to-peer transfers observed (all load on seed)")
	}
}

func TestChokedPeerNotServed(t *testing.T) {
	eng, net, swarm := newTestSwarm(t, smallConfig())
	seed, err := swarm.AddPeer(host("58.32.0.1", isp.TELE, 2<<20), true)
	if err != nil {
		t.Fatal(err)
	}
	_ = net
	// Craft a direct request from an unknown (never handshaked) address:
	// the seed must ignore it.
	stranger := host("58.32.0.9", isp.TELE, 1<<20)
	received := 0
	if err := net.Attach(stranger, func(_ netip.Addr, _ int, payload any) {
		if m, ok := payload.(*message); ok && m.kind == msgPiece {
			received++
		}
	}); err != nil {
		t.Fatal(err)
	}
	swarm.send(stranger, seed.Addr(), &message{kind: msgRequest, piece: 0})
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if received != 0 {
		t.Errorf("stranger received %d pieces without unchoke", received)
	}
}

func TestRunLocalityBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute swarm")
	}
	viewers := workload.Population{
		isp.TELE: 24, isp.CNC: 12, isp.CER: 3, isp.OtherCN: 4, isp.Foreign: 5,
	}
	res, err := RunLocality(3, viewers, isp.TELE, 20*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Progress < 0.5 {
		t.Fatalf("probe progress %.2f too low for the test to be meaningful", res.Progress)
	}
	// Tracker-only random selection: locality should track the population
	// share (≈50% TELE) rather than amplify above it the way the
	// referral+latency system does. Allow generous slack, but it must stay
	// far below the ~0.9 the streaming system reaches.
	if res.Locality > 0.75 {
		t.Errorf("baseline locality %.3f suspiciously high for random selection", res.Locality)
	}
	var total uint64
	for _, b := range res.BytesByISP {
		total += b
	}
	if total == 0 {
		t.Error("probe downloaded nothing from peers")
	}
}
