// Package eventsim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of scheduled
// events. Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking via a monotonically increasing sequence
// number), which makes every run a pure function of its inputs and seed.
//
// Internals are built for throughput: scheduled events live in a slab
// (free-list reuse, no per-event heap allocation), near-future events go
// through a bucketed timer wheel (the dominant case: datagram deliveries and
// sub-second periodic ticks), and only far-future events touch the overflow
// binary heap. Cancellation is lazy — a stopped timer marks its slab item
// dead and the queue entry is skipped (and its slot reclaimed) when it
// surfaces; when dead entries pile up they are compacted out eagerly so
// Pending always reflects live load.
package eventsim

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"slices"
	"time"
)

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Stop before reaching its horizon.
var ErrStopped = errors.New("eventsim: simulation stopped")

// Event is a callback scheduled to run at a virtual instant.
type Event func()

// Timer wheel geometry. Slots cover slotWidth each; the wheel spans
// wheelSize*slotWidth (~8 s) of virtual time ahead of the active slot, which
// comfortably holds datagram deliveries and sub-10s periodic ticks. Longer
// timers overflow into the binary heap and migrate into the wheel as their
// slot comes due.
const (
	slotWidth = 8 * time.Millisecond
	wheelSize = 1024 // must be a power of two
	wheelMask = wheelSize - 1
)

// entry is one queue position: where and when, plus the slab reference.
type entry struct {
	at   time.Duration
	seq  uint64
	slot int32
	gen  uint32
}

func entryLess(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Slab item states.
const (
	statePending uint8 = iota // scheduled, queue entry outstanding
	stateFiring               // periodic item inside its callback
	stateDead                 // cancelled, queue entry (if any) is garbage
)

// item is a scheduled event's slab cell. Generation counters make stale
// Timer handles harmless after the slot is recycled.
type item struct {
	fn       Event
	argFn    func(any)
	arg      any
	gen      uint32
	state    uint8
	periodic bool
}

// Timer is a handle for a scheduled event that can be cancelled. The zero
// value is inert.
type Timer struct {
	e    *Engine
	slot int32
	gen  uint32
}

// Stop cancels the timer. It reports whether the event had not yet fired
// (for periodic timers: whether it was still active). Stopping an
// already-fired or already-stopped timer is a no-op.
func (t Timer) Stop() bool {
	e := t.e
	if e == nil {
		return false
	}
	it := &e.items[t.slot]
	if it.gen != t.gen || it.state == stateDead {
		return false
	}
	if it.state == stateFiring {
		// Periodic timer stopped from inside its own callback: no queue
		// entry is outstanding; the re-arm path reclaims the slot.
		it.state = stateDead
		return true
	}
	it.state = stateDead
	e.live--
	e.dead++
	e.maybeCompact()
	return true
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all event callbacks run on the caller's goroutine inside
// Run.
type Engine struct {
	now     time.Duration
	seq     uint64
	rng     *rand.Rand
	stopped bool

	// processed counts events executed so far (cancelled events excluded).
	processed uint64

	// Slab of scheduled events plus its free list.
	items []item
	free  []int32

	live int // scheduled and not cancelled
	dead int // cancelled but still queued (lazy deletion)

	// cur is the active slot: every pending entry with slot number <=
	// curSlot, sorted by (at, seq); cur[:curPos] is consumed.
	cur     []entry
	curPos  int
	curSlot int64

	// wheel buckets hold entries for slot numbers in
	// (curSlot, curSlot+wheelSize); occupied is its non-empty bitmap.
	wheel    [wheelSize][]entry
	occupied [wheelSize / 64]uint64

	// heap holds entries at least a full wheel revolution ahead.
	heap []entry
}

// New creates an engine whose random streams derive from seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (elapsed since simulation start).
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. All model code must
// draw randomness from here (or from a stream split off via NewRand) so runs
// stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewRand derives an independent deterministic random stream. Components
// that consume randomness at data-dependent rates should use their own stream
// so their draws do not perturb unrelated components.
func (e *Engine) NewRand() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of live scheduled events. Cancelled events
// awaiting lazy removal are not counted.
func (e *Engine) Pending() int { return e.live }

// allocSlot takes a slab cell from the free list, growing the slab if empty.
func (e *Engine) allocSlot() int32 {
	if n := len(e.free); n > 0 {
		s := e.free[n-1]
		e.free = e.free[:n-1]
		return s
	}
	e.items = append(e.items, item{})
	return int32(len(e.items) - 1)
}

// freeSlot recycles a slab cell, invalidating outstanding Timer handles.
func (e *Engine) freeSlot(slot int32) {
	it := &e.items[slot]
	it.fn = nil
	it.argFn = nil
	it.arg = nil
	it.gen++
	it.state = statePending
	it.periodic = false
	e.free = append(e.free, slot)
}

// enqueue places a queue entry for the given slab cell at time at.
func (e *Engine) enqueue(at time.Duration, slot int32, gen uint32) {
	if at < e.now {
		at = e.now
	}
	ent := entry{at: at, seq: e.seq, slot: slot, gen: gen}
	e.seq++
	s := int64(at / slotWidth)
	switch {
	case s <= e.curSlot:
		e.insertCur(ent)
	case s-e.curSlot < wheelSize:
		b := s & wheelMask
		if len(e.wheel[b]) == 0 {
			e.occupied[b>>6] |= 1 << (b & 63)
		}
		e.wheel[b] = append(e.wheel[b], ent)
	default:
		e.heapPush(ent)
	}
	e.live++
}

// insertCur inserts into the active slot's sorted pending suffix. New
// entries carry the highest seq, so ties land after existing equal-time
// entries (FIFO preserved).
func (e *Engine) insertCur(ent entry) {
	lo, hi := e.curPos, len(e.cur)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if entryLess(e.cur[mid], ent) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.cur = append(e.cur, entry{})
	copy(e.cur[lo+1:], e.cur[lo:])
	e.cur[lo] = ent
}

// nextOccupied returns the slot number of the first occupied wheel bucket
// after curSlot, or -1 if the wheel is empty.
func (e *Engine) nextOccupied() int64 {
	startB := (e.curSlot + 1) & wheelMask
	wi := startB >> 6
	w := e.occupied[wi] &^ ((1 << (startB & 63)) - 1)
	const words = wheelSize / 64
	for k := 0; ; k++ {
		if w != 0 {
			b := wi<<6 + int64(bits.TrailingZeros64(w))
			return e.curSlot + 1 + ((b - startB) & wheelMask)
		}
		if k == words {
			return -1
		}
		wi = (wi + 1) & (words - 1)
		w = e.occupied[wi]
	}
}

// advance moves the active slot to the next one holding entries, pulling in
// due overflow-heap entries, and sorts it. It reports whether anything is
// queued at all.
func (e *Engine) advance() bool {
	e.cur = e.cur[:0]
	e.curPos = 0
	target := e.nextOccupied()
	if len(e.heap) > 0 {
		hs := int64(e.heap[0].at / slotWidth)
		if target == -1 || hs < target {
			target = hs
		}
	}
	if target == -1 {
		return false
	}
	e.curSlot = target
	b := target & wheelMask
	if len(e.wheel[b]) > 0 {
		e.cur = append(e.cur, e.wheel[b]...)
		e.wheel[b] = e.wheel[b][:0]
		e.occupied[b>>6] &^= 1 << (b & 63)
	}
	end := time.Duration(target+1) * slotWidth
	for len(e.heap) > 0 && e.heap[0].at < end {
		e.cur = append(e.cur, e.heapPop())
	}
	slices.SortFunc(e.cur, func(a, b entry) int {
		if entryLess(a, b) {
			return -1
		}
		if entryLess(b, a) {
			return 1
		}
		return 0
	})
	return true
}

// peek returns the next live entry without consuming it, lazily collecting
// dead entries it skips over.
func (e *Engine) peek() (entry, bool) {
	for {
		for e.curPos < len(e.cur) {
			ent := e.cur[e.curPos]
			it := &e.items[ent.slot]
			if it.gen == ent.gen && it.state != stateDead {
				return ent, true
			}
			e.curPos++
			if it.gen == ent.gen {
				e.dead--
				e.freeSlot(ent.slot)
			}
		}
		if !e.advance() {
			return entry{}, false
		}
	}
}

// fire consumes and executes the entry peek returned.
func (e *Engine) fire(ent entry) {
	e.curPos++
	it := &e.items[ent.slot]
	fn, argFn, arg := it.fn, it.argFn, it.arg
	e.live--
	if it.periodic {
		it.state = stateFiring
	} else {
		e.freeSlot(ent.slot)
	}
	e.now = ent.at
	e.processed++
	if argFn != nil {
		argFn(arg)
	} else {
		fn()
	}
}

// maybeCompact sweeps dead entries out of the queue once they outnumber the
// live ones, so cancel-heavy workloads (retransmission timers) cannot bloat
// the queue or skew capacity planning built on Pending.
func (e *Engine) maybeCompact() {
	if e.dead < 64 || e.dead <= e.live {
		return
	}
	keep := func(ent entry) bool {
		it := &e.items[ent.slot]
		if it.gen == ent.gen && it.state != stateDead {
			return true
		}
		if it.gen == ent.gen {
			e.dead--
			e.freeSlot(ent.slot)
		}
		return false
	}
	out := e.cur[:e.curPos]
	for _, ent := range e.cur[e.curPos:] {
		if keep(ent) {
			out = append(out, ent)
		}
	}
	e.cur = out
	for b := range e.wheel {
		lst := e.wheel[b]
		if len(lst) == 0 {
			continue
		}
		o := lst[:0]
		for _, ent := range lst {
			if keep(ent) {
				o = append(o, ent)
			}
		}
		e.wheel[b] = o
		if len(o) == 0 {
			e.occupied[b>>6] &^= 1 << (b & 63)
		}
	}
	o := e.heap[:0]
	for _, ent := range e.heap {
		if keep(ent) {
			o = append(o, ent)
		}
	}
	e.heap = o
	for i := len(e.heap)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

// Overflow heap: a plain binary min-heap over (at, seq), no indices — entries
// are removed only from the top or rebuilt wholesale during compaction.

func (e *Engine) heapPush(ent entry) {
	e.heap = append(e.heap, ent)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) heapPop() entry {
	top := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return top
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && entryLess(e.heap[r], e.heap[l]) {
			min = r
		}
		if !entryLess(e.heap[min], e.heap[i]) {
			return
		}
		e.heap[i], e.heap[min] = e.heap[min], e.heap[i]
		i = min
	}
}

// At schedules fn to run at the absolute virtual time at. Times in the past
// are clamped to the current instant. It returns a cancellable timer handle.
func (e *Engine) At(at time.Duration, fn Event) Timer {
	if fn == nil {
		panic("eventsim: nil event")
	}
	slot := e.allocSlot()
	it := &e.items[slot]
	it.fn = fn
	gen := it.gen
	e.enqueue(at, slot, gen)
	return Timer{e: e, slot: slot, gen: gen}
}

// AtArg schedules fn(arg) at the absolute virtual time at. It exists for
// high-rate callers (datagram delivery): a non-capturing fn plus a pooled
// arg schedules an event with zero per-event allocation, where a capturing
// closure passed to At would allocate every time.
func (e *Engine) AtArg(at time.Duration, fn func(any), arg any) Timer {
	if fn == nil {
		panic("eventsim: nil event")
	}
	slot := e.allocSlot()
	it := &e.items[slot]
	it.argFn = fn
	it.arg = arg
	gen := it.gen
	e.enqueue(at, slot, gen)
	return Timer{e: e, slot: slot, gen: gen}
}

// After schedules fn to run d after the current instant. Negative delays are
// clamped to zero.
func (e *Engine) After(d time.Duration, fn Event) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Every schedules fn to run repeatedly with the given period, starting one
// period from now. The returned timer cancels future firings when stopped.
// The period must be positive. A periodic timer occupies a single slab cell
// for its whole life, so the handle stays valid across re-arms.
func (e *Engine) Every(period time.Duration, fn Event) Timer {
	if period <= 0 {
		panic(fmt.Sprintf("eventsim: non-positive period %v", period))
	}
	if fn == nil {
		panic("eventsim: nil event")
	}
	slot := e.allocSlot()
	gen := e.items[slot].gen
	tick := func() {
		fn()
		it := &e.items[slot]
		if it.gen != gen || it.state != stateFiring {
			// Stopped from inside fn: reclaim the cell.
			if it.gen == gen {
				e.freeSlot(slot)
			}
			return
		}
		it.state = statePending
		e.enqueue(e.now+period, slot, gen)
	}
	it := &e.items[slot]
	it.fn = tick
	it.periodic = true
	e.enqueue(e.now+period, slot, gen)
	return Timer{e: e, slot: slot, gen: gen}
}

// Stop halts the simulation: Run returns ErrStopped after the current event
// completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the horizon is exceeded, the queue
// drains, or Stop is called. The clock never advances past horizon. It
// returns nil on normal completion (drain or horizon) and ErrStopped if
// stopped.
func (e *Engine) Run(horizon time.Duration) error {
	for e.live > 0 {
		if e.stopped {
			return ErrStopped
		}
		next, ok := e.peek()
		if !ok {
			break
		}
		if next.at > horizon {
			e.now = horizon
			return nil
		}
		e.fire(next)
	}
	if e.now < horizon {
		e.now = horizon
	}
	if e.stopped {
		return ErrStopped
	}
	return nil
}

// Step executes the single next pending event, if any, regardless of horizon.
// It reports whether an event was executed. Useful for fine-grained tests.
func (e *Engine) Step() bool {
	next, ok := e.peek()
	if !ok {
		return false
	}
	e.fire(next)
	return true
}

// NextAt returns the virtual time of the earliest pending event, if any. It
// is the conservative-window probe used by Group: between windows it tells
// the coordinator how far the engine can be fast-forwarded without skipping
// work.
func (e *Engine) NextAt() (time.Duration, bool) {
	next, ok := e.peek()
	if !ok {
		return 0, false
	}
	return next.at, true
}

// RunUntil executes events in order while their time is strictly before end.
// Unlike Run it never advances the clock past the last fired event, so a
// coordinator can interleave windows on several engines and only commit a
// final time with FastForward. It returns ErrStopped if Stop was called.
func (e *Engine) RunUntil(end time.Duration) error {
	for e.live > 0 {
		if e.stopped {
			return ErrStopped
		}
		next, ok := e.peek()
		if !ok || next.at >= end {
			break
		}
		e.fire(next)
	}
	if e.stopped {
		return ErrStopped
	}
	return nil
}

// FastForward advances the clock to t without executing anything. Moving
// backwards is a no-op; callers use it to commit a window boundary or the
// final horizon after RunUntil.
func (e *Engine) FastForward(t time.Duration) {
	if t > e.now {
		e.now = t
	}
}
