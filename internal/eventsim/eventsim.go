// Package eventsim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of scheduled
// events. Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking via a monotonically increasing sequence
// number), which makes every run a pure function of its inputs and seed.
package eventsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Stop before reaching its horizon.
var ErrStopped = errors.New("eventsim: simulation stopped")

// Event is a callback scheduled to run at a virtual instant.
type Event func()

// item is a scheduled event inside the heap.
type item struct {
	at    time.Duration
	seq   uint64
	fn    Event
	index int
	dead  bool
}

// eventHeap orders items by (at, seq).
type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	it, ok := x.(*item)
	if !ok {
		panic("eventsim: pushed non-item")
	}
	it.index = len(*h)
	*h = append(*h, it)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}

// Timer is a handle for a scheduled event that can be cancelled.
type Timer struct {
	it *item
}

// Stop cancels the timer. It reports whether the event had not yet fired.
// Stopping an already-fired or already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.it == nil || t.it.dead {
		return false
	}
	t.it.dead = true
	t.it.fn = nil
	return true
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all event callbacks run on the caller's goroutine inside
// Run.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventHeap
	rng     *rand.Rand
	stopped bool

	// Processed counts events executed so far (cancelled events excluded).
	processed uint64
}

// New creates an engine whose random streams derive from seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (elapsed since simulation start).
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. All model code must
// draw randomness from here (or from a stream split off via NewRand) so runs
// stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewRand derives an independent deterministic random stream. Components
// that consume randomness at data-dependent rates should use their own stream
// so their draws do not perturb unrelated components.
func (e *Engine) NewRand() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled (including
// cancelled ones not yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute virtual time at. Times in the past
// are clamped to the current instant. It returns a cancellable timer handle.
func (e *Engine) At(at time.Duration, fn Event) *Timer {
	if fn == nil {
		panic("eventsim: nil event")
	}
	if at < e.now {
		at = e.now
	}
	it := &item{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, it)
	return &Timer{it: it}
}

// After schedules fn to run d after the current instant. Negative delays are
// clamped to zero.
func (e *Engine) After(d time.Duration, fn Event) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Every schedules fn to run repeatedly with the given period, starting one
// period from now. The returned timer cancels future firings when stopped.
// The period must be positive.
func (e *Engine) Every(period time.Duration, fn Event) *Timer {
	if period <= 0 {
		panic(fmt.Sprintf("eventsim: non-positive period %v", period))
	}
	t := &Timer{}
	var tick func()
	tick = func() {
		fn()
		if !t.it.dead {
			t.it = e.After(period, tick).it
		}
	}
	t.it = e.After(period, tick).it
	return t
}

// Stop halts the simulation: Run returns ErrStopped after the current event
// completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the horizon is exceeded, the queue
// drains, or Stop is called. The clock never advances past horizon. It
// returns nil on normal completion (drain or horizon) and ErrStopped if
// stopped.
func (e *Engine) Run(horizon time.Duration) error {
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue[0]
		if next.at > horizon {
			e.now = horizon
			return nil
		}
		popped, ok := heap.Pop(&e.queue).(*item)
		if !ok {
			panic("eventsim: heap returned non-item")
		}
		if popped.dead {
			continue
		}
		e.now = popped.at
		e.processed++
		popped.fn()
	}
	if e.now < horizon {
		e.now = horizon
	}
	if e.stopped {
		return ErrStopped
	}
	return nil
}

// Step executes the single next pending event, if any, regardless of horizon.
// It reports whether an event was executed. Useful for fine-grained tests.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		popped, ok := heap.Pop(&e.queue).(*item)
		if !ok {
			panic("eventsim: heap returned non-item")
		}
		if popped.dead {
			continue
		}
		e.now = popped.at
		e.processed++
		popped.fn()
		return true
	}
	return false
}
