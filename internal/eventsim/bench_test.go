package eventsim

import (
	"testing"
	"time"
)

// BenchmarkScheduleAndRun measures raw engine throughput: schedule-and-fire
// of independent events.
func BenchmarkScheduleAndRun(b *testing.B) {
	e := New(1)
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			if err := e.Run(e.Now() + time.Second); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.Run(e.Now() + time.Hour); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerChurn measures creating and cancelling timers, the common
// pattern of protocol retransmission timers.
func BenchmarkTimerChurn(b *testing.B) {
	e := New(1)
	for i := 0; i < b.N; i++ {
		t := e.After(time.Minute, func() {})
		t.Stop()
		if i%4096 == 4095 {
			// Drain cancelled entries.
			if err := e.Run(e.Now() + time.Millisecond); err != nil {
				b.Fatal(err)
			}
		}
	}
}
