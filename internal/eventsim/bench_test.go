package eventsim

import (
	"testing"
	"time"
)

// BenchmarkScheduleAndRun measures raw engine throughput: schedule-and-fire
// of independent events.
func BenchmarkScheduleAndRun(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			if err := e.Run(e.Now() + time.Second); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.Run(e.Now() + time.Hour); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerChurn measures creating and cancelling timers, the common
// pattern of protocol retransmission timers.
func BenchmarkTimerChurn(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := e.After(time.Minute, func() {})
		t.Stop()
		if i%4096 == 4095 {
			// Drain cancelled entries.
			if err := e.Run(e.Now() + time.Millisecond); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPeriodicTimers measures the dominant steady-state workload of a
// swarm simulation: thousands of periodic timers (gossip, buffer-map
// announces, scheduler ticks) firing repeatedly.
func BenchmarkPeriodicTimers(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	fired := 0
	for i := 0; i < 1000; i++ {
		// Spread periods so firings interleave like real peer ticks.
		e.Every(time.Duration(250+i)*time.Millisecond, func() { fired++ })
	}
	b.ResetTimer()
	target := e.Processed() + uint64(b.N)
	for e.Processed() < target {
		if !e.Step() {
			b.Fatal("queue drained")
		}
	}
}

// BenchmarkAtArg measures the datagram-delivery fast path: a non-capturing
// callback plus pooled argument, which must not allocate per event.
func BenchmarkAtArg(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	var sink int
	fn := func(a any) { sink += a.(int) }
	arg := any(1)
	for i := 0; i < b.N; i++ {
		e.AtArg(e.Now()+time.Duration(i%1000)*time.Microsecond, fn, arg)
		if i%1024 == 1023 {
			if err := e.Run(e.Now() + time.Second); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.Run(e.Now() + time.Hour); err != nil {
		b.Fatal(err)
	}
}
