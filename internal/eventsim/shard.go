package eventsim

import (
	"fmt"
	"time"
)

// Group runs several engines in lockstep windows — classic conservative
// parallel discrete-event simulation. The caller partitions the simulated
// system into shards whose internal traffic stays on one engine and whose
// cross-shard traffic is guaranteed to arrive at least Lookahead after it
// was sent. Each window [T, T+Lookahead) is then safe to execute on every
// engine independently: nothing generated inside the window can affect
// another shard before the window ends. At the window boundary the
// coordinator calls Flush, which must move every cross-shard message onto
// its destination engine (all such messages arrive at or after the
// boundary, so none is late).
//
// The schedule — window sequence, flush points, and flush order — is a pure
// function of barrier-time state and never depends on Workers, so a run's
// trajectory is identical whether the windows execute on one goroutine or
// many.
type Group struct {
	// Engines are the per-shard event loops. Index order is the
	// deterministic tie-break order for coordinator-side scans.
	Engines []*Engine

	// Lookahead is the guaranteed minimum latency of cross-shard traffic.
	// It must be positive, and every message handed across shards must
	// arrive at least this long after the instant it was sent.
	Lookahead time.Duration

	// Workers is the number of goroutines executing windows. Values below 2
	// run everything on the calling goroutine.
	Workers int

	// Flush is called single-threaded at every window boundary, after all
	// engines have finished the window, and must schedule every pending
	// cross-shard message onto its destination engine. May be nil when the
	// shards genuinely never talk to each other.
	Flush func()

	// Windows counts executed synchronization windows (for instrumentation).
	Windows uint64
}

// shardJob is one engine's share of a window.
type shardJob struct {
	eng *Engine
	end time.Duration
}

// Run executes all engines to the horizon in conservative windows. Events at
// exactly the horizon fire. On return every engine's clock reads horizon.
// If any engine is stopped, the first one in index order is reported.
func (g *Group) Run(horizon time.Duration) error {
	if len(g.Engines) == 0 {
		return fmt.Errorf("eventsim: group has no engines")
	}
	if g.Lookahead <= 0 {
		return fmt.Errorf("eventsim: group lookahead %v is not positive", g.Lookahead)
	}

	var jobs chan shardJob
	var done chan error
	workers := g.Workers
	if workers > len(g.Engines) {
		workers = len(g.Engines)
	}
	if workers > 1 {
		jobs = make(chan shardJob)
		// done is buffered to the engine count so a worker can always post
		// its result and return to the jobs channel; with an unbuffered done,
		// dispatching more active engines than workers deadlocks (coordinator
		// blocked sending a job, every worker blocked sending a result).
		done = make(chan error, len(g.Engines))
		for w := 0; w < workers; w++ {
			go func() {
				for j := range jobs {
					done <- j.eng.RunUntil(j.end)
				}
			}()
		}
		defer close(jobs)
	}

	active := make([]*Engine, 0, len(g.Engines))
	for {
		// Find the earliest pending event across shards; empty windows are
		// skipped entirely by jumping T to it.
		minNext := time.Duration(-1)
		active = active[:0]
		for _, e := range g.Engines {
			if e.stopped {
				return ErrStopped
			}
			if at, ok := e.NextAt(); ok && (minNext < 0 || at < minNext) {
				minNext = at
			}
		}
		if minNext < 0 || minNext > horizon {
			break
		}
		// Window width never exceeds the lookahead: anything sent inside
		// [T, end) arrives at or after end, so no shard can be surprised
		// mid-window. The horizon cap is horizon+1, not horizon, so events
		// at exactly the horizon fire, matching Engine.Run.
		end := minNext + g.Lookahead
		if end > horizon+1 {
			end = horizon + 1
		}
		for _, e := range g.Engines {
			if at, ok := e.NextAt(); ok && at < end {
				active = append(active, e)
			}
		}

		var err error
		if workers > 1 && len(active) > 1 {
			for _, e := range active {
				jobs <- shardJob{eng: e, end: end}
			}
			for range active {
				if werr := <-done; werr != nil && err == nil {
					err = werr
				}
			}
		} else {
			for _, e := range active {
				if werr := e.RunUntil(end); werr != nil && err == nil {
					err = werr
				}
			}
		}
		if err != nil {
			return err
		}
		if g.Flush != nil {
			g.Flush()
		}
		g.Windows++
	}

	for _, e := range g.Engines {
		e.FastForward(horizon)
	}
	return nil
}
