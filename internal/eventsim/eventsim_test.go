package eventsim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestRunExecutesInTimeOrder(t *testing.T) {
	e := New(1)
	var got []time.Duration
	for _, d := range []time.Duration{5 * time.Second, time.Second, 3 * time.Second} {
		d := d
		e.After(d, func() { got = append(got, d) })
	}
	if err := e.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []time.Duration{time.Second, 3 * time.Second, 5 * time.Second}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired with delay %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { got = append(got, i) })
	}
	if err := e.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestHorizonStopsClock(t *testing.T) {
	e := New(1)
	fired := false
	e.After(10*time.Second, func() { fired = true })
	if err := e.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("event beyond horizon fired")
	}
	if e.Now() != 5*time.Second {
		t.Errorf("Now() = %v, want horizon 5s", e.Now())
	}
	// The event remains queued and fires if the horizon is extended.
	if err := e.Run(20 * time.Second); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !fired {
		t.Error("event did not fire after horizon extension")
	}
}

func TestDrainAdvancesToHorizon(t *testing.T) {
	e := New(1)
	e.After(time.Second, func() {})
	if err := e.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Now() != time.Minute {
		t.Errorf("Now() = %v after drain, want horizon", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	fired := false
	timer := e.After(time.Second, func() { fired = true })
	if !timer.Stop() {
		t.Error("Stop on pending timer returned false")
	}
	if timer.Stop() {
		t.Error("second Stop returned true")
	}
	if err := e.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestEvery(t *testing.T) {
	e := New(1)
	count := 0
	var timer Timer
	timer = e.Every(time.Second, func() {
		count++
		if count == 3 {
			timer.Stop()
		}
	})
	if err := e.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 3 {
		t.Errorf("periodic fired %d times, want 3", count)
	}
}

func TestEveryPanicsOnNonPositivePeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	New(1).Every(0, func() {})
}

func TestStop(t *testing.T) {
	e := New(1)
	ran := 0
	e.After(time.Second, func() { ran++; e.Stop() })
	e.After(2*time.Second, func() { ran++ })
	if err := e.Run(time.Minute); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if ran != 1 {
		t.Errorf("ran %d events after Stop, want 1", ran)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			e.After(time.Second, recurse)
		}
	}
	e.After(time.Second, recurse)
	if err := e.Run(time.Hour); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if depth != 5 {
		t.Errorf("depth = %d, want 5", depth)
	}
	if e.Processed() != 5 {
		t.Errorf("Processed() = %d, want 5", e.Processed())
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := New(1)
	order := []string{}
	e.After(time.Second, func() {
		e.At(0, func() { order = append(order, "clamped") })
		order = append(order, "outer")
	})
	if err := e.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "outer" || order[1] != "clamped" {
		t.Errorf("order = %v, want [outer clamped]", order)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := New(seed)
		var draws []int64
		for i := 0; i < 20; i++ {
			e.After(time.Duration(i)*time.Second, func() {
				draws = append(draws, e.Rand().Int63())
			})
		}
		if err := e.Run(time.Hour); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return draws
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical draws")
	}
}

func TestStep(t *testing.T) {
	e := New(1)
	fired := 0
	e.After(time.Second, func() { fired++ })
	e.After(2*time.Second, func() { fired++ })
	if !e.Step() || fired != 1 {
		t.Fatalf("first Step: fired=%d", fired)
	}
	if !e.Step() || fired != 2 {
		t.Fatalf("second Step: fired=%d", fired)
	}
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

// Property: for any set of delays, events execute in sorted order.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		e := New(7)
		var fired []time.Duration
		for _, r := range raw {
			d := time.Duration(r%1_000_000) * time.Microsecond
			e.At(d, func() { fired = append(fired, d) })
		}
		if err := e.Run(time.Hour); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNewRandIndependentStreams(t *testing.T) {
	e := New(5)
	r1, r2 := e.NewRand(), e.NewRand()
	if r1.Int63() == r2.Int63() && r1.Int63() == r2.Int63() && r1.Int63() == r2.Int63() {
		t.Error("derived streams appear identical")
	}
}
