package eventsim

import (
	"fmt"
	"testing"
	"time"
)

// groupPing wires n engines into a ring: every engine, each millisecond,
// posts a message to the next engine that arrives lookahead later, routed
// through per-source outboxes the Flush callback drains at the barrier. It
// returns per-engine event logs ("engine@time" strings) — the trajectory the
// worker-count sweeps compare. Logs are kept per engine because that is the
// Group's ordering contract: each shard's event sequence is total and
// deterministic, while cross-shard interleaving within a window is
// intentionally unordered (the shards run concurrently).
func groupPing(t *testing.T, n, workers int, horizon time.Duration) [][]string {
	t.Helper()
	const lookahead = 3 * time.Millisecond

	engines := make([]*Engine, n)
	for i := range engines {
		engines[i] = New(int64(1000 + i))
	}
	logs := make([][]string, n)
	type xmsg struct {
		src, dst int
		arrival  time.Duration
	}
	outbox := make([][]xmsg, n)

	for i, e := range engines {
		i, e := i, e
		// Stagger starts so windows begin with different active sets.
		e.At(time.Duration(i)*time.Millisecond, func() {})
		e.Every(time.Millisecond, func() {
			logs[i] = append(logs[i], fmt.Sprintf("%d@%v", i, e.Now()))
			outbox[i] = append(outbox[i], xmsg{src: i, dst: (i + 1) % n, arrival: e.Now() + lookahead})
		})
	}

	g := Group{
		Engines:   engines,
		Lookahead: lookahead,
		Workers:   workers,
		Flush: func() {
			for src := range outbox {
				for _, m := range outbox[src] {
					m := m
					engines[m.dst].At(m.arrival, func() {
						logs[m.dst] = append(logs[m.dst], fmt.Sprintf("%d@%v<-%d", m.dst, engines[m.dst].Now(), m.src))
					})
				}
				outbox[src] = outbox[src][:0]
			}
		},
	}
	if err := g.Run(horizon); err != nil {
		t.Fatalf("n=%d workers=%d: %v", n, workers, err)
	}
	if g.Windows == 0 {
		t.Fatalf("n=%d workers=%d: no windows executed", n, workers)
	}
	for _, e := range engines {
		if e.Now() != horizon {
			t.Fatalf("n=%d workers=%d: engine clock %v, want horizon %v", n, workers, e.Now(), horizon)
		}
	}
	return logs
}

// TestGroupWorkerCountInvariance checks the Group's core contract: every
// shard's event trajectory — each firing, in order, including cross-shard
// deliveries — is identical for every worker count. Worker counts below the
// engine count are the regression case for the dispatch deadlock
// (coordinator blocked sending a job while every worker blocked posting a
// result): before done was buffered, workers=2 with 6 always-active engines
// hung forever.
func TestGroupWorkerCountInvariance(t *testing.T) {
	const n = 6
	ref := groupPing(t, n, 1, 50*time.Millisecond)
	for i, l := range ref {
		if len(l) == 0 {
			t.Fatalf("reference run logged nothing on engine %d", i)
		}
	}
	for _, workers := range []int{2, 3, n, n + 5} {
		got := groupPing(t, n, workers, 50*time.Millisecond)
		for i := range ref {
			if len(got[i]) != len(ref[i]) {
				t.Fatalf("workers=%d engine %d: %d events, reference %d", workers, i, len(got[i]), len(ref[i]))
			}
			for j := range ref[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("workers=%d engine %d: event %d = %q, reference %q", workers, i, j, got[i][j], ref[i][j])
				}
			}
		}
	}
}

// TestGroupHorizonEdge pins the horizon convention: events scheduled at
// exactly the horizon fire (matching Engine.Run), later ones do not, and the
// final window is still never wider than the lookahead.
func TestGroupHorizonEdge(t *testing.T) {
	e := New(1)
	var fired []time.Duration
	for _, at := range []time.Duration{99 * time.Millisecond, 100 * time.Millisecond, 100*time.Millisecond + 1} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	g := Group{Engines: []*Engine{e}, Lookahead: 5 * time.Millisecond}
	if err := g.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 99*time.Millisecond || fired[1] != 100*time.Millisecond {
		t.Fatalf("fired %v, want [99ms 100ms]", fired)
	}
	if e.Now() != 100*time.Millisecond {
		t.Fatalf("clock %v, want 100ms", e.Now())
	}
}

// TestGroupStop checks that an engine stopping mid-run surfaces ErrStopped
// from Group.Run, for both the sequential and the parallel dispatcher.
func TestGroupStop(t *testing.T) {
	for _, workers := range []int{1, 3} {
		engines := make([]*Engine, 4)
		for i := range engines {
			engines[i] = New(int64(i))
			engines[i].Every(time.Millisecond, func() {})
		}
		engines[2].At(7*time.Millisecond, engines[2].Stop)
		g := Group{Engines: engines, Lookahead: 2 * time.Millisecond, Workers: workers}
		if err := g.Run(time.Second); err != ErrStopped {
			t.Fatalf("workers=%d: err = %v, want ErrStopped", workers, err)
		}
	}
}
