package experiments

import (
	"strings"
	"testing"
	"time"

	"pplivesim/internal/isp"
)

// tinyScale keeps the test suite fast.
func tinyScale() Scale {
	return Scale{
		Population:     0.08,
		Watch:          6 * time.Minute,
		WarmUp:         3 * time.Minute,
		ArrivalWindow:  2 * time.Minute,
		Fig6Days:       2,
		Fig6Population: 0.06,
		Fig6Watch:      5 * time.Minute,
	}
}

func TestRunnerCachesRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	r := NewRunner(tinyScale(), 1)
	first, err := r.Popular()
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Popular()
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("popular run not cached")
	}
	for _, probe := range []string{ProbeTELE, ProbeCNC, ProbeMason} {
		if first.Reports[probe] == nil {
			t.Errorf("missing report for %s", probe)
		}
	}
}

func TestRenderersProduceAllSections(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	r := NewRunner(tinyScale(), 2)
	out, err := r.Popular()
	if err != nil {
		t.Fatal(err)
	}
	rep := out.Reports[ProbeTELE]

	abc := FigureABC("fig", rep)
	for _, want := range []string{"returned peer addresses", "list source", "traffic locality", "TELE_p"} {
		if !strings.Contains(abc, want) {
			t.Errorf("FigureABC missing %q:\n%s", want, abc)
		}
	}
	rt := ResponseTimes("rt", rep)
	for _, g := range isp.Groups() {
		if !strings.Contains(rt, g.String()) {
			t.Errorf("ResponseTimes missing group %s", g)
		}
	}
	contrib := Contributions("c", rep)
	for _, want := range []string{"stretched exponential", "zipf", "top 10%"} {
		if !strings.Contains(contrib, want) {
			t.Errorf("Contributions missing %q", want)
		}
	}
	if !strings.Contains(RTTCorrelation("r", rep), "correlation") {
		t.Error("RTTCorrelation malformed")
	}
	if !strings.Contains(DataRTRow("row", rep), "TELE=") {
		t.Error("DataRTRow malformed")
	}
}

func TestFig6ProducesSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple scenario runs")
	}
	s := tinyScale()
	s.Fig6Days = 2
	r := NewRunner(s, 3)
	popular, unpopular, err := r.Fig6(nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 days × 3 probes per channel class.
	if len(popular) != 6 || len(unpopular) != 6 {
		t.Fatalf("points = %d/%d, want 6/6", len(popular), len(unpopular))
	}
	for _, pt := range append(popular, unpopular...) {
		if pt.Locality < 0 || pt.Locality > 1 {
			t.Errorf("locality %f out of range", pt.Locality)
		}
	}
	text := RenderFig6(popular, unpopular)
	if !strings.Contains(text, "popular programs") || !strings.Contains(text, "mason") {
		t.Errorf("RenderFig6 malformed:\n%s", text)
	}
}

func TestScalesAreOrdered(t *testing.T) {
	q, d, p := QuickScale(), DefaultScale(), PaperScale()
	if !(q.Population < d.Population && d.Population < p.Population) {
		t.Error("population scales not increasing")
	}
	if !(q.Watch < d.Watch && d.Watch < p.Watch) {
		t.Error("watch durations not increasing")
	}
	if p.Fig6Days != 28 {
		t.Errorf("paper scale fig6 days = %d, want 28", p.Fig6Days)
	}
}
