package experiments

import (
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pplivesim/internal/analysis"
	"pplivesim/internal/fit"
	"pplivesim/internal/isp"
)

// syntheticReport builds a report with enough data to exercise every figure
// renderer without running a scenario.
func syntheticReport() *analysis.Report {
	rep := &analysis.Report{
		ProbeISP:      isp.TELE,
		ReturnedByISP: map[isp.ISP]int{isp.TELE: 100, isp.CNC: 40, isp.CER: 5, isp.OtherCN: 12, isp.Foreign: 9},
		BytesByISP:    map[isp.ISP]uint64{isp.TELE: 1 << 20, isp.CNC: 1 << 18},
		ListRTSeries:  map[isp.Group][]analysis.RTPoint{},
		SEFit:         fit.StretchedExponential{C: 0.4, A: 10, B: 58, R2: 0.98},
	}
	for i := 0; i < 30; i++ {
		rep.ListRTSeries[isp.GroupTELE] = append(rep.ListRTSeries[isp.GroupTELE], analysis.RTPoint{
			At: time.Duration(i) * 20 * time.Second,
			RT: time.Duration(100+i*10) * time.Millisecond,
		})
	}
	for i := 0; i < 40; i++ {
		rep.Peers = append(rep.Peers, analysis.PeerActivity{
			Addr:     netip.AddrFrom4([4]byte{58, 32, 0, byte(i + 1)}),
			ISP:      isp.TELE,
			Requests: 1000 / (i + 1),
			Replies:  900 / (i + 1),
			Bytes:    uint64(1380 * (900 / (i + 1))),
			RTT:      time.Duration(20+i*5) * time.Millisecond,
		})
	}
	return rep
}

func TestFigureWriterRendersAll(t *testing.T) {
	dir := t.TempDir()
	fw := NewFigureWriter(dir)
	rep := syntheticReport()
	if err := fw.WriteAll("figX", "synthetic", rep, "figX-rt", "figX1", "figX-rtt"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("rendered %d figures, want 6: %v", len(entries), names)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Errorf("%s is not SVG", e.Name())
		}
		if len(data) < 500 {
			t.Errorf("%s suspiciously small (%d bytes)", e.Name(), len(data))
		}
	}
}

func TestFigureWriterFig6(t *testing.T) {
	dir := t.TempDir()
	fw := NewFigureWriter(dir)
	var pts []Fig6Point
	for day := 1; day <= 5; day++ {
		for _, probe := range []string{ProbeCNC, ProbeTELE, ProbeMason} {
			pts = append(pts, Fig6Point{Day: day, Probe: probe, Locality: 0.5 + float64(day)/20})
		}
	}
	if err := fw.WriteFig6("fig6a", "popular locality", pts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6a.svg"))
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []string{ProbeCNC, ProbeTELE, ProbeMason} {
		if !strings.Contains(string(data), probe) {
			t.Errorf("fig6 missing series %s", probe)
		}
	}
}

func TestFigureWriterEmptyReport(t *testing.T) {
	dir := t.TempDir()
	fw := NewFigureWriter(dir)
	rep := &analysis.Report{ProbeISP: isp.TELE, ReturnedByISP: map[isp.ISP]int{}, BytesByISP: map[isp.ISP]uint64{}}
	if err := fw.WriteRankDistribution("x", "t", rep); err == nil {
		t.Error("rank distribution rendered with no data")
	}
	if err := fw.WriteContributionCDF("x", "t", rep); err == nil {
		t.Error("CDF rendered with no data")
	}
}
