package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"pplivesim/internal/core"
	"pplivesim/internal/isp"
	"pplivesim/internal/peer"
	"pplivesim/internal/selection"
)

// FrontierSpecNames is the bias-knob sweep: from pure random through
// increasingly aggressive AS-hop ranking and inter-ISP quotas down to a hard
// same-ISP clamp. The order runs loosest to tightest so the rendered curve
// traces the locality frontier left to right.
func FrontierSpecNames() []string {
	return []string{"random", "ashop:1", "ashop:3", "quota:0.5", "quota:0.25", "quota:0.1", "quota:0"}
}

// frontierFidelities are the two population fidelities the sweep is measured
// at: full per-peer protocol state (the default mixed mode) and the
// struct-of-arrays flow swarms that scale the same policy shaping to 100k+
// background peers.
func frontierFidelities() []peer.Fidelity {
	return []peer.Fidelity{peer.FidelityMixed, peer.FidelityFlow}
}

// FrontierPoint is one (policy, fidelity) cell of the locality frontier,
// measured at the TELE probe.
type FrontierPoint struct {
	Spec     string
	Fidelity peer.Fidelity
	// Locality is the same-ISP share of downloaded bytes: the probe's own
	// downloads at full fidelity, the TELE flow-swarm aggregate byte mix at
	// flow fidelity (where the policy shapes the whole swarm's traffic and
	// the probe's own trickle is not the signal).
	Locality float64
	// TransitBytes is the matching inter-ISP download volume (bytes
	// crossing an ISP boundary; the channel source is tallied separately
	// upstream).
	TransitBytes uint64
	// TransitSaved is the fraction of the random baseline's transit bytes
	// this policy avoided, at the same fidelity (0 for the baseline itself).
	TransitSaved float64
	// Continuity is the probe's playback continuity over the watch.
	Continuity float64
	// Startup is the probe's join-to-steady-phase delay; StartupOK reports
	// whether the probe reached steady phase at all during the run.
	Startup   time.Duration
	StartupOK bool
}

// frontierScenario sizes one sweep cell: the shared ablation scenario shape
// with a single fully-captured TELE probe and the cell's selection policy.
func (r *Runner) frontierScenario(spec selection.Spec, fid peer.Fidelity, seedOffset int64) core.Scenario {
	name := "frontier-" + strings.ReplaceAll(spec.String(), ":", "-") + "-" + fid.String()
	sc := r.buildScenario(name, true, 700+seedOffset, r.Scale.Fig6Population*2, r.Scale.Fig6Watch)
	sc.Probes = []core.ProbeSpec{{Name: ProbeTELE, ISP: isp.TELE}}
	sc.Selection = spec
	sc.Fidelity = fid
	return sc
}

// LocalityFrontier sweeps the selection-policy bias knob across both
// fidelities and measures, per cell, what the probe's ISP saves in transit
// bytes and what the viewer pays in continuity and startup delay. The
// 2×len(specs) runs are independent simulations fanned out over the worker
// pool; results are cached, so rendering text and figures pays for one sweep.
func (r *Runner) LocalityFrontier(progress func(name string)) ([]FrontierPoint, error) {
	r.frontierOnce.Do(func() {
		r.frontier, r.frontierErr = r.runFrontier(progress)
	})
	return r.frontier, r.frontierErr
}

func (r *Runner) runFrontier(progress func(name string)) ([]FrontierPoint, error) {
	type job struct {
		spec selection.Spec
		fid  peer.Fidelity
		sc   core.Scenario
	}
	var jobs []job
	seedOffset := int64(0)
	for _, fid := range frontierFidelities() {
		for _, name := range FrontierSpecNames() {
			spec, err := selection.ParseSpec(name)
			if err != nil {
				return nil, fmt.Errorf("experiments: frontier spec %q: %w", name, err)
			}
			jobs = append(jobs, job{spec: spec, fid: fid, sc: r.frontierScenario(spec, fid, seedOffset)})
			seedOffset++
		}
	}

	var progressMu sync.Mutex
	outs := make([]*RunOutputs, len(jobs))
	tasks := make([]func() error, len(jobs))
	for i := range jobs {
		i := i
		tasks[i] = func() error {
			if progress != nil {
				progressMu.Lock()
				progress(jobs[i].sc.Name)
				progressMu.Unlock()
			}
			out, err := runScenario(jobs[i].sc)
			if err != nil {
				return fmt.Errorf("%s: %w", jobs[i].sc.Name, err)
			}
			outs[i] = out
			return nil
		}
	}
	if err := parallelDo(r.Workers, tasks...); err != nil {
		return nil, err
	}

	points := make([]FrontierPoint, 0, len(jobs))
	baseline := map[peer.Fidelity]uint64{}
	for i, j := range jobs {
		rep, err := report(outs[i], ProbeTELE)
		if err != nil {
			return nil, err
		}
		pt := FrontierPoint{
			Spec:     j.spec.String(),
			Fidelity: j.fid,
		}
		if j.fid == peer.FidelityFlow {
			// At flow fidelity the policy shapes the whole background
			// swarm's byte mix; measure the TELE-category swarm aggregate.
			var total, same uint64
			for _, ft := range outs[i].Result.FlowTraffic {
				if ft.ISP != isp.TELE {
					continue
				}
				for src, b := range ft.Aggregate.BytesSnapshot() {
					total += b
					if src == isp.TELE {
						same += b
					}
				}
			}
			pt.TransitBytes = total - same
			if total > 0 {
				pt.Locality = float64(same) / float64(total)
			}
		} else {
			pt.Locality = rep.TrafficLocality
			for cat, n := range rep.BytesByISP {
				if cat != isp.TELE {
					pt.TransitBytes += n
				}
			}
		}
		for _, p := range outs[i].Result.Probes {
			if p.Name == ProbeTELE {
				pt.Continuity = p.Client.BufferStats().Continuity()
				pt.Startup, pt.StartupOK = p.Client.TimeToSteady()
			}
		}
		if j.spec.Kind == selection.KindUniform {
			baseline[j.fid] = pt.TransitBytes
		}
		points = append(points, pt)
	}
	for i := range points {
		if base := baseline[points[i].Fidelity]; base > 0 && points[i].TransitBytes <= base {
			points[i].TransitSaved = 1 - float64(points[i].TransitBytes)/float64(base)
		}
	}
	return points, nil
}

// RenderFrontier formats the sweep as one table per fidelity: what the ISP
// saves (transit bytes) against what the viewer pays (continuity, startup).
func RenderFrontier(points []FrontierPoint) string {
	var b strings.Builder
	for _, fid := range frontierFidelities() {
		fmt.Fprintf(&b, "fidelity %s:\n", fid)
		fmt.Fprintf(&b, "  %-12s %9s %14s %13s %11s %9s\n",
			"policy", "locality", "transit bytes", "transit saved", "continuity", "startup")
		for _, pt := range points {
			if pt.Fidelity != fid {
				continue
			}
			startup := "never"
			if pt.StartupOK {
				startup = fmt.Sprintf("%.1fs", pt.Startup.Seconds())
			}
			fmt.Fprintf(&b, "  %-12s %8.1f%% %14d %12.1f%% %11.3f %9s\n",
				pt.Spec, 100*pt.Locality, pt.TransitBytes, 100*pt.TransitSaved, pt.Continuity, startup)
		}
	}
	b.WriteString("  expectation: transit savings grow monotonically toward quota:0 while continuity\n")
	b.WriteString("  degrades only at the hard-clamp end, where same-ISP capacity alone must carry playback.\n")
	b.WriteString("  quotas are caps, not targets: at flow fidelity a quota looser than the swarm's emergent\n")
	b.WriteString("  inter-ISP share does not bind, so those rows sit on the random baseline by design\n")
	return b.String()
}
