package experiments

import (
	"fmt"
	"strings"
	"time"

	"pplivesim/internal/bittorrent"
	"pplivesim/internal/core"
	"pplivesim/internal/isp"
	"pplivesim/internal/workload"
)

// AblationOutcome compares traffic locality with a mechanism on vs off.
type AblationOutcome struct {
	Name        string
	Baseline    float64 // locality with the full mechanism
	Ablated     float64 // locality with the mechanism disabled
	ExtraDetail string
}

// Render formats the outcome.
func (a AblationOutcome) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ablation %s\n", a.Name)
	fmt.Fprintf(&b, "  full mechanism:    traffic locality %.1f%%\n", 100*a.Baseline)
	fmt.Fprintf(&b, "  mechanism ablated: traffic locality %.1f%%\n", 100*a.Ablated)
	if a.ExtraDetail != "" {
		b.WriteString(a.ExtraDetail)
	}
	return b.String()
}

// ablationScenario is a mid-size popular scenario with a TELE probe used by
// every ablation (identical except for the toggled behaviour).
func (r *Runner) ablationScenario(name string, seedOffset int64, behaviour core.Behaviour) core.Scenario {
	pop := r.Scale.Fig6Population * 2
	watch := r.Scale.Fig6Watch
	sc := r.buildScenario(name, true, 500+seedOffset, pop, watch)
	sc.Probes = []core.ProbeSpec{{Name: ProbeTELE, ISP: isp.TELE}}
	sc.Behaviour = behaviour
	return sc
}

// localityOf runs a scenario and returns the TELE probe's traffic locality.
func localityOf(sc core.Scenario) (float64, error) {
	out, err := runScenario(sc)
	if err != nil {
		return 0, err
	}
	rep, err := report(out, ProbeTELE)
	if err != nil {
		return 0, err
	}
	return rep.TrafficLocality, nil
}

// localityPair runs the base and ablated scenarios of one ablation
// concurrently (they are independent simulations).
func (r *Runner) localityPair(base, ablated core.Scenario) (baseLoc, ablatedLoc float64, err error) {
	err = parallelDo(r.Workers,
		func() (err error) { baseLoc, err = localityOf(base); return },
		func() (err error) { ablatedLoc, err = localityOf(ablated); return },
	)
	return baseLoc, ablatedLoc, err
}

// AblationReferral disables neighbor referral (tracker-only discovery) and
// also runs the genuine BitTorrent baseline for reference. All three runs
// execute concurrently.
func (r *Runner) AblationReferral() (AblationOutcome, error) {
	var base, ablated float64
	var bt *bittorrent.LocalityResult
	err := parallelDo(r.Workers,
		func() (err error) {
			base, err = localityOf(r.ablationScenario("ablate-referral-base", 0, core.Behaviour{}))
			return
		},
		func() (err error) {
			ablated, err = localityOf(r.ablationScenario("ablate-referral", 1, core.Behaviour{DisableReferral: true}))
			return
		},
		func() (err error) {
			btViewers := workload.PopularPopulation().Scale(r.Scale.Fig6Population)
			bt, err = bittorrent.RunLocality(r.Seed+777, btViewers, isp.TELE, r.Scale.Fig6Watch+10*time.Minute)
			return
		},
	)
	if err != nil {
		return AblationOutcome{}, err
	}
	detail := fmt.Sprintf("  BitTorrent baseline (tracker-only + tit-for-tat): locality %.1f%% (probe progress %.0f%%)\n",
		100*bt.Locality, 100*bt.Progress)
	return AblationOutcome{
		Name:        "neighbor referral (vs tracker-only discovery)",
		Baseline:    base,
		Ablated:     ablated,
		ExtraDetail: detail,
	}, nil
}

// AblationLatencyBias disables connect-on-list-arrival latency bias.
func (r *Runner) AblationLatencyBias() (AblationOutcome, error) {
	base, ablated, err := r.localityPair(
		r.ablationScenario("ablate-latency-base", 10, core.Behaviour{}),
		r.ablationScenario("ablate-latency", 11, core.Behaviour{DisableLatencyBias: true}),
	)
	if err != nil {
		return AblationOutcome{}, err
	}
	return AblationOutcome{
		Name:     "latency-based neighbor selection",
		Baseline: base,
		Ablated:  ablated,
	}, nil
}

// AblationPreference disables performance-weighted data scheduling.
func (r *Runner) AblationPreference() (AblationOutcome, error) {
	base, ablated, err := r.localityPair(
		r.ablationScenario("ablate-pref-base", 20, core.Behaviour{}),
		r.ablationScenario("ablate-pref", 21, core.Behaviour{DisablePreference: true}),
	)
	if err != nil {
		return AblationOutcome{}, err
	}
	return AblationOutcome{
		Name:     "performance-weighted request scheduling",
		Baseline: base,
		Ablated:  ablated,
	}, nil
}

// FidelityOutcome compares probe-side results between coarse and full
// background fidelity.
type FidelityOutcome struct {
	CoarseLocality float64
	FullLocality   float64
	CoarseEvents   uint64
	FullEvents     uint64
}

// Render formats the outcome.
func (f FidelityOutcome) Render() string {
	return fmt.Sprintf(
		"ablation background fidelity (batched vs per-sub-piece background peers)\n"+
			"  coarse background: probe locality %.1f%% (%d engine events)\n"+
			"  full background:   probe locality %.1f%% (%d engine events)\n"+
			"  expectation: similar locality, coarse run far cheaper\n",
		100*f.CoarseLocality, f.CoarseEvents, 100*f.FullLocality, f.FullEvents)
}

// AblationFidelity validates the coarse-background substitution on a small
// scenario: probe-side locality must be comparable while event counts drop.
func (r *Runner) AblationFidelity() (FidelityOutcome, error) {
	mk := func(full bool, seedOffset int64) (float64, uint64, error) {
		sc := r.ablationScenario("fidelity", 30+seedOffset, core.Behaviour{FullFidelityBackground: full})
		sc.Viewers = workload.PopularPopulation().Scale(r.Scale.Fig6Population)
		out, err := runScenario(sc)
		if err != nil {
			return 0, 0, err
		}
		rep, err := report(out, ProbeTELE)
		if err != nil {
			return 0, 0, err
		}
		return rep.TrafficLocality, out.Result.EventsProcessed, nil
	}
	var out FidelityOutcome
	err := parallelDo(r.Workers,
		func() (err error) {
			out.CoarseLocality, out.CoarseEvents, err = mk(false, 0)
			return
		},
		func() (err error) {
			out.FullLocality, out.FullEvents, err = mk(true, 1)
			return
		},
	)
	if err != nil {
		return FidelityOutcome{}, err
	}
	return out, nil
}
