package experiments

import (
	"runtime"
	"sync"
)

// Scenario runs are embarrassingly parallel: every engine is single-threaded
// and self-contained (own event queue, own RNG, own underlay), so fanning
// runs out over OS threads changes wall time but not one bit of any result.
// parallelDo is the one concurrency primitive the package uses — everything
// above it (Fig6 days, ablation pairs, the popular/unpopular warm-up) stays
// deterministic because each task writes only to its own pre-allocated slot.

// workerCount resolves a worker-pool size: requested if positive, otherwise
// GOMAXPROCS, always clamped to the number of tasks.
func workerCount(requested, tasks int) int {
	n := requested
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > tasks {
		n = tasks
	}
	if n < 1 {
		n = 1
	}
	return n
}

// parallelDo runs the tasks over a bounded worker pool and waits for all of
// them. Every task runs regardless of other tasks' failures; the returned
// error is the first failure in task order, so error reporting is
// deterministic even though completion order is not.
func parallelDo(workers int, tasks ...func() error) error {
	if len(tasks) == 0 {
		return nil
	}
	if workers = workerCount(workers, len(tasks)); workers == 1 {
		var first error
		for _, task := range tasks {
			if err := task(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, len(tasks))
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = tasks[i]()
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
