package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"pplivesim/internal/analysis"
	"pplivesim/internal/fit"
	"pplivesim/internal/isp"
	"pplivesim/internal/plot"
)

// FigureWriter renders the paper's figures as SVG files in a directory.
type FigureWriter struct {
	Dir    string
	Width  int
	Height int
}

// NewFigureWriter creates a writer with default geometry.
func NewFigureWriter(dir string) *FigureWriter {
	return &FigureWriter{Dir: dir, Width: 640, Height: 420}
}

func (fw *FigureWriter) write(name string, p *plot.Plot) error {
	if err := os.MkdirAll(fw.Dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(fw.Dir, name+".svg"))
	if err != nil {
		return err
	}
	defer f.Close()
	return fw.render(f, p)
}

func (fw *FigureWriter) render(w io.Writer, p *plot.Plot) error {
	return p.RenderSVG(w, fw.Width, fw.Height)
}

// WriteReturnedBars renders panel (a) of Figures 2-5: returned addresses by
// ISP.
func (fw *FigureWriter) WriteReturnedBars(name, title string, rep *analysis.Report) error {
	p := plot.New(title, "ISP", "# returned addresses")
	labels := make([]string, 0, isp.Count)
	values := make([]float64, 0, isp.Count)
	for _, c := range isp.All() {
		labels = append(labels, c.String())
		values = append(values, float64(rep.ReturnedByISP[c]))
	}
	if err := p.SetBars(labels, values); err != nil {
		return err
	}
	return fw.write(name, p)
}

// WriteTrafficBars renders panel (c): downloaded bytes by ISP.
func (fw *FigureWriter) WriteTrafficBars(name, title string, rep *analysis.Report) error {
	p := plot.New(title, "ISP", "downloaded bytes")
	labels := make([]string, 0, isp.Count)
	values := make([]float64, 0, isp.Count)
	for _, c := range isp.All() {
		labels = append(labels, c.String())
		values = append(values, float64(rep.BytesByISP[c]))
	}
	if err := p.SetBars(labels, values); err != nil {
		return err
	}
	return fw.write(name, p)
}

// WriteResponseScatter renders Figures 7-10: per-group peer-list response
// times along the playback.
func (fw *FigureWriter) WriteResponseScatter(name, title string, rep *analysis.Report) error {
	p := plot.New(title, "peer-list request (minutes into watch)", "response time (s)")
	for _, g := range isp.Groups() {
		pts := rep.ListRTSeries[g]
		if len(pts) == 0 {
			continue
		}
		xs := make([]float64, 0, len(pts))
		ys := make([]float64, 0, len(pts))
		for _, pt := range pts {
			// The paper clips the visual at 3 s for comparability.
			if pt.RT.Seconds() > 3 {
				continue
			}
			xs = append(xs, pt.At.Minutes())
			ys = append(ys, pt.RT.Seconds())
		}
		if len(xs) == 0 {
			continue
		}
		if err := p.AddScatter(g.String(), xs, ys); err != nil {
			return err
		}
	}
	return fw.write(name, p)
}

// WriteRankDistribution renders panel (b) of Figures 11-14: the data-request
// rank distribution in log-log scale with the fitted stretched-exponential
// curve overlaid.
func (fw *FigureWriter) WriteRankDistribution(name, title string, rep *analysis.Report) error {
	var requests []float64
	for _, act := range rep.Peers {
		if act.Requests > 0 {
			requests = append(requests, float64(act.Requests))
		}
	}
	ranked := fit.Ranked(requests)
	if len(ranked) == 0 {
		return fmt.Errorf("experiments: no request data for %s", name)
	}
	p := plot.New(title, "rank", "# data requests")
	p.XLog, p.YLog = true, true
	xs := make([]float64, len(ranked))
	for i := range ranked {
		xs[i] = float64(i + 1)
	}
	if err := p.AddScatter("data", xs, ranked); err != nil {
		return err
	}
	if rep.SEFit.C > 0 {
		fys := make([]float64, len(ranked))
		for i := range fys {
			fys[i] = math.Max(rep.SEFit.Eval(i+1), 1e-3)
		}
		if err := p.AddLine(fmt.Sprintf("SE fit c=%.2f", rep.SEFit.C), xs, fys); err != nil {
			return err
		}
	}
	return fw.write(name, p)
}

// WriteContributionCDF renders panel (c) of Figures 11-14: the CDF of
// per-peer byte contributions (ascending, as the paper plots it).
func (fw *FigureWriter) WriteContributionCDF(name, title string, rep *analysis.Report) error {
	var bytes []float64
	for _, act := range rep.Peers {
		if act.Bytes > 0 {
			bytes = append(bytes, float64(act.Bytes))
		}
	}
	if len(bytes) == 0 {
		return fmt.Errorf("experiments: no contribution data for %s", name)
	}
	cdf := fit.CDF(bytes)
	xs := make([]float64, len(cdf))
	for i := range cdf {
		xs[i] = float64(i + 1)
	}
	p := plot.New(title, "peers (ascending contribution)", "cumulative share of bytes")
	if err := p.AddLine("CDF", xs, cdf); err != nil {
		return err
	}
	return fw.write(name, p)
}

// WriteRTTScatter renders Figures 15-18: per-peer request counts (log) and
// RTTs (log) against contribution rank.
func (fw *FigureWriter) WriteRTTScatter(name, title string, rep *analysis.Report) error {
	var xs, reqs, rtts []float64
	rank := 0
	for _, act := range rep.Peers {
		if act.Requests == 0 || act.RTT <= 0 {
			continue
		}
		rank++
		xs = append(xs, float64(rank))
		reqs = append(reqs, float64(act.Requests))
		rtts = append(rtts, act.RTT.Seconds())
	}
	if len(xs) == 0 {
		return fmt.Errorf("experiments: no RTT data for %s", name)
	}
	p := plot.New(title, "remote host (rank by # requests)", "# requests / RTT (s), log")
	p.YLog = true
	if err := p.AddScatter("# data requests", xs, reqs); err != nil {
		return err
	}
	if err := p.AddScatter("RTT (s)", xs, rtts); err != nil {
		return err
	}
	return fw.write(name, p)
}

// WriteFig6 renders the four-week locality series.
func (fw *FigureWriter) WriteFig6(name, title string, points []Fig6Point) error {
	p := plot.New(title, "day", "traffic locality (%)")
	for _, probe := range []string{ProbeCNC, ProbeTELE, ProbeMason} {
		var xs, ys []float64
		for _, pt := range points {
			if pt.Probe != probe {
				continue
			}
			xs = append(xs, float64(pt.Day))
			ys = append(ys, 100*pt.Locality)
		}
		if len(xs) == 0 {
			continue
		}
		if err := p.AddLine(probe, xs, ys); err != nil {
			return err
		}
	}
	return fw.write(name, p)
}

// WriteFrontier renders the locality-frontier sweep as two figures: transit
// savings against continuity and against startup delay, one line per
// fidelity, sweeping the bias knob loosest to tightest along each line.
func (fw *FigureWriter) WriteFrontier(name, title string, points []FrontierPoint) error {
	cont := plot.New(title+" — continuity", "transit bytes saved vs random (%)", "playback continuity")
	start := plot.New(title+" — startup delay", "transit bytes saved vs random (%)", "startup delay (s)")
	for _, fid := range frontierFidelities() {
		var xs, cys, sxs, sys []float64
		for _, pt := range points {
			if pt.Fidelity != fid {
				continue
			}
			xs = append(xs, 100*pt.TransitSaved)
			cys = append(cys, pt.Continuity)
			if pt.StartupOK {
				sxs = append(sxs, 100*pt.TransitSaved)
				sys = append(sys, pt.Startup.Seconds())
			}
		}
		if len(xs) > 0 {
			if err := cont.AddLine(fid.String(), xs, cys); err != nil {
				return err
			}
		}
		if len(sxs) > 0 {
			if err := start.AddLine(fid.String(), sxs, sys); err != nil {
				return err
			}
		}
	}
	if err := fw.write(name+"-continuity", cont); err != nil {
		return err
	}
	return fw.write(name+"-startup", start)
}

// WriteCDN renders the hybrid CDN+P2P sweep as two bar figures: the
// resilience floor (min continuity through the flash crowd and source
// crash) and the probe's inter-ISP transit bytes, one bar per
// (policy, deployment) cell.
func (fw *FigureWriter) WriteCDN(name, title string, points []CDNPoint) error {
	labels := make([]string, 0, len(points))
	cont := make([]float64, 0, len(points))
	transit := make([]float64, 0, len(points))
	for _, pt := range points {
		dep := "p2p"
		if pt.Edges {
			dep = "+edges"
		}
		labels = append(labels, pt.Spec+" "+dep)
		cont = append(cont, pt.MinContinuity)
		transit = append(transit, float64(pt.TransitBytes))
	}
	cp := plot.New(title+" — resilience floor", "policy / deployment", "min continuity through faults")
	if err := cp.SetBars(labels, cont); err != nil {
		return err
	}
	if err := fw.write(name+"-min-continuity", cp); err != nil {
		return err
	}
	tp := plot.New(title+" — inter-ISP transit", "policy / deployment", "transit bytes")
	if err := tp.SetBars(labels, transit); err != nil {
		return err
	}
	return fw.write(name+"-transit", tp)
}

// WriteAll renders every figure for one probe report under a prefix, e.g.
// fig2a, fig2c, fig7, fig11b, fig11c, fig15 for the TELE/popular view.
func (fw *FigureWriter) WriteAll(prefix string, abcTitle string, rep *analysis.Report, rtFig, contribFig, rttFig string) error {
	steps := []func() error{
		func() error {
			return fw.WriteReturnedBars(prefix+"a-returned", abcTitle+" (a) returned addresses", rep)
		},
		func() error {
			return fw.WriteTrafficBars(prefix+"c-traffic", abcTitle+" (c) downloaded bytes", rep)
		},
		func() error {
			return fw.WriteResponseScatter(rtFig, abcTitle+" peer-list response times", rep)
		},
		func() error {
			return fw.WriteRankDistribution(contribFig+"b-rank", abcTitle+" request rank distribution", rep)
		},
		func() error {
			return fw.WriteContributionCDF(contribFig+"c-cdf", abcTitle+" contribution CDF", rep)
		},
		func() error {
			return fw.WriteRTTScatter(rttFig, abcTitle+" requests vs RTT", rep)
		},
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}
