package experiments

import (
	"fmt"
	"strings"
	"time"

	"pplivesim/internal/core"
	"pplivesim/internal/fault"
	"pplivesim/internal/isp"
)

// ChaosTarget is the playback-continuity level counted as healthy when
// scoring recovery from injected faults.
const ChaosTarget = 0.95

// Chaos runs (once, then cached) the popular-channel scenario under the
// "combo" fault preset: source crash, tracker outage, TELE-CNC transit
// degradation, and kill-churn staggered through the watch window. The same
// locality mechanisms the paper measures under benign churn are scored here
// for how they degrade and recover.
func (r *Runner) Chaos() (*RunOutputs, error) {
	r.chaosOnce.Do(func() {
		sc := r.buildScenario("chaos", true, 9000, r.Scale.Population, r.Scale.Watch)
		fs, err := fault.Preset("combo", sc.WarmUp, sc.Watch)
		if err != nil {
			r.chaosErr = err
			return
		}
		sc.Faults = fs
		r.chaos, r.chaosErr = runScenario(sc)
	})
	return r.chaos, r.chaosErr
}

// ResilienceSummary renders one probe's per-fault-window resilience metrics:
// continuity dip depth and duration, time to sustained recovery, and how far
// the probe's per-ISP traffic mix shifted while the fault was active.
func ResilienceSummary(title string, res *core.Result, probe string) (string, error) {
	idx := -1
	for i, p := range res.Probes {
		if p.Name == probe {
			idx = i
			break
		}
	}
	if idx < 0 {
		return "", fmt.Errorf("experiments: no probe named %q", probe)
	}
	rep, err := res.ProbeResilience(idx, ChaosTarget)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintln(&b, title)
	}
	fmt.Fprintf(&b, "probe %s — continuity target %.2f\n", probe, rep.Target)
	fmt.Fprintf(&b, "  %-28s %8s %6s %8s %9s %6s\n",
		"fault window", "min-cont", "dip", "below", "recover", "shift")
	for _, w := range rep.Windows {
		rec := "never"
		if w.Recovered {
			rec = fmtDur(w.TimeToRecover)
		}
		fmt.Fprintf(&b, "  %-28s %8.3f %6.3f %8s %9s %6.2f\n",
			fmt.Sprintf("%s @%s", w.Label, fmtDur(w.Start)),
			w.MinContinuity, w.DipDepth, fmtDur(w.DipDuration), rec, w.ShareShift)
		if len(w.ShareBefore) > 0 && len(w.ShareDuring) > 0 {
			fmt.Fprintf(&b, "    traffic mix before→during:")
			for _, cat := range isp.All() {
				before, during := w.ShareBefore[cat], w.ShareDuring[cat]
				if before == 0 && during == 0 {
					continue
				}
				fmt.Fprintf(&b, "  %s %.0f%%→%.0f%%", cat, 100*before, 100*during)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String(), nil
}

// fmtDur trims sub-second noise from durations for table display.
func fmtDur(d time.Duration) string {
	return d.Round(time.Second).String()
}
