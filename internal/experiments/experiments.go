// Package experiments defines one reproducible experiment per table and
// figure of the paper's evaluation, plus the ablations DESIGN.md calls out.
//
// The paper's figures come from four probe viewpoints over two channels:
// Figures 2, 7, 11, 15 share the TELE-probe/popular-channel trace; 3, 8,
// 12, 16 the TELE/unpopular trace; 4, 9, 13, 17 the Mason/popular trace;
// 5, 10, 14, 18 the Mason/unpopular trace; Table 1 uses all four. A Runner
// therefore executes two scenario runs (popular and unpopular, each with
// TELE, CNC and Mason probes measuring concurrently, as the paper's hosts
// did) and derives every figure from the cached traces. Figure 6 runs its
// own 28-day schedule of smaller runs.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pplivesim/internal/analysis"
	"pplivesim/internal/core"
	"pplivesim/internal/fit"
	"pplivesim/internal/isp"
	"pplivesim/internal/peer"
	"pplivesim/internal/selection"
	"pplivesim/internal/workload"
)

// Scale sizes experiment runs. Paper-shaped results emerge from Default;
// Quick is for benchmarks and smoke tests.
type Scale struct {
	// Population multiplies the standard channel populations.
	Population float64
	// Watch is how long probes observe (the paper's probes watched 2 h).
	Watch time.Duration
	// WarmUp and ArrivalWindow control swarm formation before probes join.
	WarmUp        time.Duration
	ArrivalWindow time.Duration

	// Fig6Days is the number of simulated days for Figure 6 (paper: 28).
	Fig6Days int
	// Fig6Population and Fig6Watch size each per-day run.
	Fig6Population float64
	Fig6Watch      time.Duration
}

// DefaultScale balances paper shape against runtime: half-population swarms
// watched for 40 minutes reproduce every qualitative result.
func DefaultScale() Scale {
	return Scale{
		Population:     0.5,
		Watch:          40 * time.Minute,
		WarmUp:         8 * time.Minute,
		ArrivalWindow:  6 * time.Minute,
		Fig6Days:       28,
		Fig6Population: 0.12,
		Fig6Watch:      15 * time.Minute,
	}
}

// PaperScale is the full-size configuration (≈1300-viewer popular channel,
// two-hour watches) for the patient.
func PaperScale() Scale {
	s := DefaultScale()
	s.Population = 1.0
	s.Watch = 2 * time.Hour
	return s
}

// QuickScale is for benchmarks: small swarms, minutes of virtual time.
func QuickScale() Scale {
	return Scale{
		Population:     0.12,
		Watch:          10 * time.Minute,
		WarmUp:         4 * time.Minute,
		ArrivalWindow:  3 * time.Minute,
		Fig6Days:       7,
		Fig6Population: 0.08,
		Fig6Watch:      8 * time.Minute,
	}
}

// Probe names used across runs.
const (
	ProbeTELE  = "tele"
	ProbeCNC   = "cnc"
	ProbeMason = "mason"
)

// RunOutputs caches one scenario run with per-probe analysis reports.
type RunOutputs struct {
	Result  *core.Result
	Reports map[string]*analysis.Report
	Wall    time.Duration
}

// Runner executes and caches the shared scenario runs. Methods are safe for
// concurrent use: the shared popular/unpopular runs execute exactly once, and
// multi-run experiments (Fig6, ablations) fan their independent scenarios out
// over a worker pool of Workers OS threads. Neither knob changes results:
// scenarios are independent, and within a scenario the sharded engine's
// trajectory is worker-count invariant.
type Runner struct {
	Scale Scale
	Seed  int64
	// Workers bounds scenario-level parallelism (0 = GOMAXPROCS).
	Workers int
	// Shards sets each scenario's event-loop worker count (core.Scenario
	// .Shards): below 2 the per-domain engines run on one goroutine.
	Shards int
	// Fidelity sets each scenario's background-population fidelity
	// (core.Scenario.Fidelity). The multi-channel run always uses full
	// Clients: channel switching needs per-viewer protocol state.
	Fidelity peer.Fidelity
	// Selection sets each scenario's peer-selection policy
	// (core.Scenario.Selection). The zero value is the legacy uniform
	// random sample. The locality-frontier sweep overrides it per run.
	Selection selection.Spec

	popOnce   sync.Once
	popular   *RunOutputs
	popErr    error
	unpopOnce sync.Once
	unpopular *RunOutputs
	unpopErr  error
	multiOnce sync.Once
	multi     *RunOutputs
	multiErr  error
	chaosOnce sync.Once
	chaos     *RunOutputs
	chaosErr  error

	frontierOnce sync.Once
	frontier     []FrontierPoint
	frontierErr  error

	cdnOnce sync.Once
	cdn     []CDNPoint
	cdnErr  error
}

// NewRunner creates a runner with the given scale and base seed.
func NewRunner(scale Scale, seed int64) *Runner {
	return &Runner{Scale: scale, Seed: seed}
}

// standardProbes places the paper's measuring hosts: two Chinese
// residential ISPs and the US campus.
func standardProbes() []core.ProbeSpec {
	return []core.ProbeSpec{
		{Name: ProbeTELE, ISP: isp.TELE},
		{Name: ProbeCNC, ISP: isp.CNC},
		{Name: ProbeMason, ISP: isp.Foreign},
	}
}

// buildScenario assembles a standard scenario.
func (r *Runner) buildScenario(name string, popular bool, seedOffset int64, population float64, watch time.Duration) core.Scenario {
	sc := core.Scenario{
		Name:          name,
		Seed:          r.Seed + seedOffset,
		Churn:         workload.DefaultChurn(),
		Probes:        standardProbes(),
		ArrivalWindow: r.Scale.ArrivalWindow,
		WarmUp:        r.Scale.WarmUp,
		Watch:         watch,
		Shards:        r.Shards,
		Fidelity:      r.Fidelity,
		Selection:     r.Selection,
	}
	if popular {
		sc.Spec = workload.PopularSpec()
		sc.Viewers = workload.PopularPopulation().Scale(population)
	} else {
		sc.Spec = workload.UnpopularSpec()
		sc.Viewers = workload.UnpopularPopulation().Scale(population)
	}
	return sc
}

// analyzeAll produces per-probe reports for a finished run by finalizing
// each probe's streaming telemetry. Each probe's analysis excludes its own
// channel's source from peer statistics.
func analyzeAll(res *core.Result) (map[string]*analysis.Report, error) {
	out := make(map[string]*analysis.Report, len(res.Probes))
	for i, p := range res.Probes {
		rep, err := res.ProbeReport(i)
		if err != nil {
			return nil, fmt.Errorf("experiments: analyze probe %q: %w", p.Name, err)
		}
		out[p.Name] = rep
	}
	return out, nil
}

// runScenario executes a scenario and analyzes its probes.
func runScenario(sc core.Scenario) (*RunOutputs, error) {
	start := time.Now()
	res, err := core.RunScenario(sc)
	if err != nil {
		return nil, err
	}
	reports, err := analyzeAll(res)
	if err != nil {
		return nil, err
	}
	return &RunOutputs{
		Result:  res,
		Reports: reports,
		Wall:    time.Since(start),
	}, nil
}

// Popular returns (running once, then cached) the popular-channel run.
func (r *Runner) Popular() (*RunOutputs, error) {
	r.popOnce.Do(func() {
		r.popular, r.popErr = runScenario(r.buildScenario("popular", true, 0, r.Scale.Population, r.Scale.Watch))
	})
	return r.popular, r.popErr
}

// Unpopular returns (running once, then cached) the unpopular-channel run.
func (r *Runner) Unpopular() (*RunOutputs, error) {
	r.unpopOnce.Do(func() {
		r.unpopular, r.unpopErr = runScenario(r.buildScenario("unpopular", false, 1, r.Scale.Population, r.Scale.Watch))
	})
	return r.unpopular, r.unpopErr
}

// Multi-channel probe names: one TELE probe pinned to each channel.
const (
	ProbeTELEPopular   = "tele-popular"
	ProbeTELEUnpopular = "tele-unpopular"
)

// buildMultiScenario assembles the concurrent two-channel scenario: the
// popular and unpopular channels share the bootstrap and tracker
// infrastructure, a third of the audience browses between them, and one TELE
// probe is pinned to each channel (probes never switch, matching the paper's
// measurement hosts, which watched one program per trace).
func (r *Runner) buildMultiScenario() core.Scenario {
	return core.Scenario{
		Name: "multichannel",
		Seed: r.Seed + 2,
		Channels: []core.ChannelSpec{
			{Spec: workload.PopularSpec(), Viewers: workload.PopularPopulation().Scale(r.Scale.Population)},
			{Spec: workload.UnpopularSpec(), Viewers: workload.UnpopularPopulation().Scale(r.Scale.Population)},
		},
		Switching: workload.DefaultSwitching(),
		Churn:     workload.DefaultChurn(),
		Probes: []core.ProbeSpec{
			{Name: ProbeTELEPopular, ISP: isp.TELE, Channel: workload.PopularSpec().Channel},
			{Name: ProbeTELEUnpopular, ISP: isp.TELE, Channel: workload.UnpopularSpec().Channel},
		},
		ArrivalWindow: r.Scale.ArrivalWindow,
		WarmUp:        r.Scale.WarmUp,
		Watch:         r.Scale.Watch,
		Shards:        r.Shards,
	}
}

// MultiChannel returns (running once, then cached) the concurrent two-channel
// run with channel-switching viewers.
func (r *Runner) MultiChannel() (*RunOutputs, error) {
	r.multiOnce.Do(func() {
		r.multi, r.multiErr = runScenario(r.buildMultiScenario())
	})
	return r.multi, r.multiErr
}

// Warm executes the two shared scenario runs concurrently, so a report that
// derives many sections from both traces pays for the slower run only.
func (r *Runner) Warm() error {
	return parallelDo(r.Workers,
		func() error { _, err := r.Popular(); return err },
		func() error { _, err := r.Unpopular(); return err },
	)
}

// report fetches a probe's report from a cached run.
func report(out *RunOutputs, probe string) (*analysis.Report, error) {
	rep, ok := out.Reports[probe]
	if !ok {
		return nil, fmt.Errorf("experiments: probe %q missing from run", probe)
	}
	return rep, nil
}

// ---- formatting helpers ----

func formatCounts(b *strings.Builder, counts map[isp.ISP]int) {
	for _, c := range isp.All() {
		fmt.Fprintf(b, "  %-8s %8d\n", c, counts[c])
	}
}

func formatUint64(b *strings.Builder, counts map[isp.ISP]uint64) {
	for _, c := range isp.All() {
		fmt.Fprintf(b, "  %-8s %12d\n", c, counts[c])
	}
}

// sourceLabels orders the X_p/X_s columns the way Figures 2-5(b) do.
func sourceLabels(rep *analysis.Report) []analysis.ListSource {
	var keys []analysis.ListSource
	for k := range rep.ReturnedBySource {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ISP != keys[j].ISP {
			return keys[i].ISP < keys[j].ISP
		}
		return !keys[i].Tracker && keys[j].Tracker
	})
	return keys
}

// FigureABC renders the three panels of Figures 2-5 for one probe report.
func FigureABC(title string, rep *analysis.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "(a) returned peer addresses by ISP (with duplicates); unique addresses: %d\n", rep.UniqueListed)
	formatCounts(&b, rep.ReturnedByISP)
	fmt.Fprintf(&b, "    potential locality (same-ISP share of returned addresses): %.1f%%\n", 100*rep.PotentialLocality)

	fmt.Fprintf(&b, "(b) returned addresses by list source (X_p = regular peers, X_s = trackers)\n")
	for _, src := range sourceLabels(rep) {
		byISP := rep.ReturnedBySource[src]
		total := 0
		for _, n := range byISP {
			total += n
		}
		fmt.Fprintf(&b, "  %-10s total %7d |", src.Label(), total)
		for _, c := range isp.All() {
			fmt.Fprintf(&b, " %s=%d", c, byISP[c])
		}
		fmt.Fprintf(&b, "\n")
	}

	fmt.Fprintf(&b, "(c) data transmissions (up) and downloaded bytes (down) by ISP\n")
	for _, c := range isp.All() {
		fmt.Fprintf(&b, "  %-8s tx=%8d bytes=%12d\n", c, rep.TransmissionsByISP[c], rep.BytesByISP[c])
	}
	fmt.Fprintf(&b, "  (source server: tx=%d bytes=%d, tallied separately)\n", rep.SourceTransmissions, rep.SourceBytes)
	fmt.Fprintf(&b, "    traffic locality (same-ISP share of downloaded bytes): %.1f%%\n", 100*rep.TrafficLocality)
	return b.String()
}

// ResponseTimes renders a Figures 7-10 panel for one probe report.
func ResponseTimes(title string, rep *analysis.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, g := range isp.Groups() {
		st := rep.ListRT[g]
		fmt.Fprintf(&b, "  %-6s peers: avg response %.4f s over %d peer-list requests\n",
			g, st.Mean.Seconds(), st.Count)
	}
	fmt.Fprintf(&b, "  unanswered peer-list requests: %d\n", rep.UnansweredLists)
	return b.String()
}

// DataRTRow renders one Table 1 row.
func DataRTRow(label string, rep *analysis.Report) string {
	var cells []string
	for _, g := range isp.Groups() {
		st := rep.DataRT[g]
		cells = append(cells, fmt.Sprintf("%s=%.4fs(n=%d)", g, st.Mean.Seconds(), st.Count))
	}
	return fmt.Sprintf("  %-18s %s", label, strings.Join(cells, "  "))
}

// Contributions renders a Figures 11-14 panel for one probe report.
func Contributions(title string, rep *analysis.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	connected := 0
	for _, n := range rep.ConnectedByISP {
		connected += n
	}
	fmt.Fprintf(&b, "(a) unique connected peers (data transfers): %d of %d unique listed\n", connected, rep.UniqueListed)
	formatCounts(&b, rep.ConnectedByISP)
	fmt.Fprintf(&b, "(b) data-request rank distribution fits\n")
	fmt.Fprintf(&b, "  stretched exponential: c=%.2f a=%.3f b=%.3f R2=%.6f\n",
		rep.SEFit.C, rep.SEFit.A, rep.SEFit.B, rep.SEFit.R2)
	fmt.Fprintf(&b, "  zipf (power law):      alpha=%.3f R2=%.6f\n", rep.ZipfFit.Alpha, rep.ZipfFit.R2)
	verdict := "stretched exponential fits better (as the paper finds)"
	if rep.ZipfFit.R2 > rep.SEFit.R2 {
		verdict = "zipf fits better (DIVERGES from the paper)"
	}
	fmt.Fprintf(&b, "  -> %s\n", verdict)
	fmt.Fprintf(&b, "(c) contribution concentration\n")
	fmt.Fprintf(&b, "  top 10%% of connected peers receive %.1f%% of data requests\n", 100*rep.TopRequestShare)
	fmt.Fprintf(&b, "  top 10%% of connected peers upload  %.1f%% of received bytes\n", 100*rep.TopByteShare)
	return b.String()
}

// RTTCorrelation renders a Figures 15-18 panel for one probe report.
func RTTCorrelation(title string, rep *analysis.Report) string {
	return fmt.Sprintf("%s\n  correlation(log #data-requests, log RTT) = %.3f (paper: clearly negative)\n",
		title, rep.RTTCorrelation)
}

// MultiChannelSummary renders the concurrent two-channel run: per-channel
// audience and source, switching activity, and each pinned probe's locality
// and playback continuity — the paper's Figure 5 popular/unpopular contrast
// observed inside one simulation instead of across two separate runs.
func MultiChannelSummary(out *RunOutputs) string {
	var b strings.Builder
	res := out.Result
	fmt.Fprintf(&b, "concurrent channels: %d\n", len(res.Channels))
	for _, ch := range res.Channels {
		fmt.Fprintf(&b, "  channel %d (%s): %d initial viewers, source %v\n",
			ch.Spec.Channel, ch.Spec.Name, ch.Viewers.Total(), ch.Source)
	}
	fmt.Fprintf(&b, "channel switching: %d viewers switched at least once, %d switch events total\n",
		res.Switchers, res.Switches)
	for _, p := range res.Probes {
		rep, ok := out.Reports[p.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  probe %-16s channel %d: traffic locality %5.1f%%  continuity %.3f\n",
			p.Name, p.Channel, 100*rep.TrafficLocality, p.Client.BufferStats().Continuity())
	}
	b.WriteString("  expectation: the popular channel's probe sees locality at least the unpopular one's\n")
	return b.String()
}

// Fig6Point is one day's traffic locality for one probe.
type Fig6Point struct {
	Day      int
	Probe    string
	Locality float64
}

// Fig6 runs the 28-day schedule: for each day, a popular and an unpopular
// run with day-scaled populations, measuring traffic locality at the CNC,
// TELE, and Mason probes (the paper averaged two probes per ISP; we run one
// per ISP per day). The 2×Fig6Days runs are independent simulations, so they
// fan out over the runner's worker pool; results are assembled in day order
// afterwards, keeping output identical to a sequential sweep. The progress
// callback reports each day as its popular-channel run starts (days may
// begin out of order under parallelism).
func (r *Runner) Fig6(progress func(day int)) (popular, unpopular []Fig6Point, err error) {
	type fig6Job struct {
		day     int
		popular bool
		sc      core.Scenario
	}
	jobs := make([]fig6Job, 0, 2*r.Scale.Fig6Days)
	for day := 0; day < r.Scale.Fig6Days; day++ {
		f := workload.DayFactor(day)
		ff := workload.ForeignDayFactor(day)
		for _, isPopular := range []bool{true, false} {
			pop := r.Scale.Fig6Population
			name := fmt.Sprintf("fig6-day%d-popular", day)
			if !isPopular {
				name = fmt.Sprintf("fig6-day%d-unpopular", day)
			}
			sc := r.buildScenario(name, isPopular, int64(1000+day*10)+boolInt(isPopular), pop, r.Scale.Fig6Watch)
			// Day-to-day audience variation: domestic rhythm plus the much
			// more volatile foreign contingent.
			scaled := make(workload.Population, len(sc.Viewers))
			for cat, n := range sc.Viewers {
				factor := f
				if cat == isp.Foreign {
					factor = f * ff
				}
				v := int(float64(n)*factor + 0.5)
				if v < 1 {
					v = 1
				}
				scaled[cat] = v
			}
			sc.Viewers = scaled
			sc.WarmUp = r.Scale.Fig6Watch / 3
			sc.ArrivalWindow = r.Scale.Fig6Watch / 4
			jobs = append(jobs, fig6Job{day: day, popular: isPopular, sc: sc})
		}
	}

	var progressMu sync.Mutex
	outs := make([]*RunOutputs, len(jobs))
	tasks := make([]func() error, len(jobs))
	for i := range jobs {
		i := i
		tasks[i] = func() error {
			if progress != nil && jobs[i].popular {
				progressMu.Lock()
				progress(jobs[i].day)
				progressMu.Unlock()
			}
			out, err := runScenario(jobs[i].sc)
			if err != nil {
				return fmt.Errorf("%s: %w", jobs[i].sc.Name, err)
			}
			outs[i] = out
			return nil
		}
	}
	if err := parallelDo(r.Workers, tasks...); err != nil {
		return nil, nil, err
	}

	for i, job := range jobs {
		for _, probe := range []string{ProbeCNC, ProbeTELE, ProbeMason} {
			rep, err := report(outs[i], probe)
			if err != nil {
				return nil, nil, err
			}
			pt := Fig6Point{Day: job.day + 1, Probe: probe, Locality: rep.TrafficLocality}
			if job.popular {
				popular = append(popular, pt)
			} else {
				unpopular = append(unpopular, pt)
			}
		}
	}
	return popular, unpopular, nil
}

func boolInt(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// RenderFig6 formats the four-week locality series and summary statistics.
func RenderFig6(popular, unpopular []Fig6Point) string {
	var b strings.Builder
	render := func(title string, pts []Fig6Point) {
		fmt.Fprintf(&b, "%s\n", title)
		byProbe := map[string][]float64{}
		fmt.Fprintf(&b, "  day:")
		days := 0
		for _, pt := range pts {
			if pt.Day > days {
				days = pt.Day
			}
		}
		for d := 1; d <= days; d++ {
			fmt.Fprintf(&b, " %5d", d)
		}
		fmt.Fprintf(&b, "\n")
		for _, probe := range []string{ProbeCNC, ProbeTELE, ProbeMason} {
			fmt.Fprintf(&b, "  %-4s", probe)
			for _, pt := range pts {
				if pt.Probe == probe {
					fmt.Fprintf(&b, " %5.1f", 100*pt.Locality)
					byProbe[probe] = append(byProbe[probe], pt.Locality)
				}
			}
			fmt.Fprintf(&b, "\n")
		}
		for _, probe := range []string{ProbeCNC, ProbeTELE, ProbeMason} {
			vals := byProbe[probe]
			if len(vals) == 0 {
				continue
			}
			mean := fit.Mean(vals)
			var varsum float64
			for _, v := range vals {
				varsum += (v - mean) * (v - mean)
			}
			std := 0.0
			if len(vals) > 1 {
				std = varsum / float64(len(vals)-1)
			}
			fmt.Fprintf(&b, "  %-5s mean=%.1f%% var=%.4f\n", probe, 100*mean, std)
		}
	}
	render("(a) popular programs: traffic locality (%) per day", popular)
	render("(b) unpopular programs: traffic locality (%) per day", unpopular)
	b.WriteString("  expectation: China probes stable, Mason varies much more (foreign audience volatility)\n")
	return b.String()
}
