package experiments

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkerCount(t *testing.T) {
	cases := []struct {
		requested, tasks, wantMax, wantMin int
	}{
		{4, 10, 4, 4},     // honored
		{8, 3, 3, 3},      // clamped to task count
		{0, 2, 2, 1},      // default: GOMAXPROCS, clamped
		{-1, 100, 100, 1}, // negative treated as default
	}
	for _, c := range cases {
		got := workerCount(c.requested, c.tasks)
		if got < c.wantMin || got > c.wantMax {
			t.Errorf("workerCount(%d, %d) = %d, want in [%d, %d]",
				c.requested, c.tasks, got, c.wantMin, c.wantMax)
		}
	}
}

func TestParallelDoRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 16} {
		var ran [40]atomic.Bool
		tasks := make([]func() error, len(ran))
		for i := range tasks {
			i := i
			tasks[i] = func() error { ran[i].Store(true); return nil }
		}
		if err := parallelDo(workers, tasks...); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if !ran[i].Load() {
				t.Errorf("workers=%d: task %d never ran", workers, i)
			}
		}
	}
}

func TestParallelDoFirstErrorByTaskOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	var done sync.WaitGroup
	done.Add(1)
	tasks := []func() error{
		func() error { done.Wait(); return errA },       // finishes last
		func() error { defer done.Done(); return errB }, // fails first in time
		func() error { return nil },
	}
	if err := parallelDo(3, tasks...); err != errA {
		t.Errorf("err = %v, want first error in task order (%v)", err, errA)
	}
	// Later tasks still run after an earlier failure.
	var ran atomic.Bool
	err := parallelDo(1,
		func() error { return fmt.Errorf("boom") },
		func() error { ran.Store(true); return nil },
	)
	if err == nil || !ran.Load() {
		t.Errorf("err=%v ran=%v, want error surfaced and all tasks run", err, ran.Load())
	}
}

func TestParallelDoNoTasks(t *testing.T) {
	if err := parallelDo(4); err != nil {
		t.Errorf("no tasks returned %v", err)
	}
}
