package experiments

import (
	"os"
	"testing"
)

// TestPaperScalePopularRun executes the full-size popular-channel scenario —
// the paper's ~1300-viewer audience watched for two hours — and checks that
// the probe streams essentially gaplessly while locality amplifies. The run
// takes tens of minutes of wall time on one core, so it is gated behind an
// environment variable rather than -short:
//
//	PPLIVE_PAPER_SCALE=1 go test ./internal/experiments -run TestPaperScalePopularRun -v -timeout 2h
func TestPaperScalePopularRun(t *testing.T) {
	if os.Getenv("PPLIVE_PAPER_SCALE") == "" {
		t.Skip("set PPLIVE_PAPER_SCALE=1 to run the ~1300-viewer, 2-hour scenario")
	}
	r := NewRunner(PaperScale(), 20081011)
	out, err := r.Popular()
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Result.Scenario.Viewers.Total(); got < 1300 {
		t.Fatalf("paper scale spawned %d initial viewers, want >= 1300", got)
	}
	var cont float64
	found := false
	for _, p := range out.Result.Probes {
		if p.Name == ProbeTELE {
			cont = p.Client.BufferStats().Continuity()
			found = true
		}
	}
	if !found {
		t.Fatal("TELE probe missing from paper-scale run")
	}
	rep := out.Reports[ProbeTELE]
	t.Logf("paper-scale popular: continuity %.4f, traffic locality %.3f, potential locality %.3f, wall %s",
		cont, rep.TrafficLocality, rep.PotentialLocality, out.Wall)
	if cont < 0.99 {
		t.Errorf("TELE probe continuity %.4f, want >= 0.99", cont)
	}
	if rep.TrafficLocality == 0 {
		t.Error("traffic locality not measured")
	}
}
