package experiments

import (
	"os"
	"runtime"
	"strconv"
	"testing"
)

// TestPaperScalePopularRun executes the full-size popular-channel scenario —
// the paper's ~1300-viewer audience watched for two hours — and checks that
// the probe streams essentially gaplessly while locality amplifies. The run
// takes tens of minutes of wall time on one core, so it is gated behind an
// environment variable rather than -short:
//
//	PPLIVE_PAPER_SCALE=1 go test ./internal/experiments -run TestPaperScalePopularRun -v -timeout 2h
//
// PPLIVE_SHARD_WORKERS sets the event-loop worker count (make bench-shard
// runs the scenario at 1 and DefaultShards workers and harvests the
// shard-bench log line into BENCH_shard.json); the trajectory and every
// printed metric are identical at any setting.
func TestPaperScalePopularRun(t *testing.T) {
	if os.Getenv("PPLIVE_PAPER_SCALE") == "" {
		t.Skip("set PPLIVE_PAPER_SCALE=1 to run the ~1300-viewer, 2-hour scenario")
	}
	r := NewRunner(PaperScale(), 20081011)
	if ws := os.Getenv("PPLIVE_SHARD_WORKERS"); ws != "" {
		n, err := strconv.Atoi(ws)
		if err != nil || n < 1 {
			t.Fatalf("PPLIVE_SHARD_WORKERS=%q: want a positive integer", ws)
		}
		r.Shards = n
	}
	out, err := r.Popular()
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Result.Scenario.Viewers.Total(); got < 1300 {
		t.Fatalf("paper scale spawned %d initial viewers, want >= 1300", got)
	}
	var cont float64
	found := false
	for _, p := range out.Result.Probes {
		if p.Name == ProbeTELE {
			cont = p.Client.BufferStats().Continuity()
			found = true
		}
	}
	if !found {
		t.Fatal("TELE probe missing from paper-scale run")
	}
	rep := out.Reports[ProbeTELE]
	t.Logf("paper-scale popular: continuity %.4f, traffic locality %.3f, potential locality %.3f, wall %s",
		cont, rep.TrafficLocality, rep.PotentialLocality, out.Wall)
	// Machine-readable line for make bench-shard. events/continuity/locality
	// must be identical across worker counts — a mismatch between harvested
	// lines means a determinism bug, not measurement noise.
	t.Logf("shard-bench: workers=%d gomaxprocs=%d wall_seconds=%.1f events=%d continuity=%.4f locality=%.4f",
		r.Shards, runtime.GOMAXPROCS(0), out.Wall.Seconds(), out.Result.EventsProcessed, cont, rep.TrafficLocality)
	if cont < 0.99 {
		t.Errorf("TELE probe continuity %.4f, want >= 0.99", cont)
	}
	if rep.TrafficLocality == 0 {
		t.Error("traffic locality not measured")
	}
}
