package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"pplivesim/internal/cdn"
	"pplivesim/internal/core"
	"pplivesim/internal/fault"
	"pplivesim/internal/isp"
	"pplivesim/internal/selection"
	"pplivesim/internal/workload"
)

// CDNSpecNames are the selection policies the hybrid CDN+P2P sweep is
// measured under: the legacy uniform sample and the quota bias the locality
// frontier identifies as the practical operating point.
func CDNSpecNames() []string {
	return []string{"random", "quota:0.25"}
}

// CDNPoint is one (policy, edges on/off) cell of the offload-vs-locality
// sweep: a flash-crowd run with a post-spike source crash, measured at the
// TELE probe and at the deployed edge caches.
type CDNPoint struct {
	Spec  string
	Edges bool
	// Probe-side tallies: peer-traffic locality (edges and the source are
	// excluded from the per-ISP peer counters by construction), bytes pulled
	// from edges and from the origin, and inter-ISP peer bytes.
	Locality     float64
	EdgeBytes    uint64
	SourceBytes  uint64
	TransitBytes uint64
	// TransitSaved is the fraction of the same policy's edge-less transit
	// this deployment avoided (0 for the edge-less baseline itself).
	TransitSaved float64
	// Continuity is the probe's playback continuity over the whole watch;
	// MinContinuity is the resilience-sampled floor through the crash window.
	Continuity    float64
	MinContinuity float64
	// Swarm-side offload: bytes served (and requests shed) by the edge
	// caches of each ISP, from the run's EdgeStats.
	OffloadByISP map[isp.ISP]uint64
	ShedByISP    map[isp.ISP]uint64
}

// cdnScenario sizes one sweep cell: a popular-channel flash crowd (the
// paper's event-start spike, 10× arrivals in two minutes) followed by a
// source crash the edges — when deployed — must absorb. Both edge variants
// of a policy share a seed so the workload is identical and only the
// deployment differs.
func (r *Runner) cdnScenario(spec selection.Spec, edges bool, seedOffset int64) core.Scenario {
	variant := "p2p"
	if edges {
		variant = "edges"
	}
	name := "cdn-" + strings.ReplaceAll(spec.String(), ":", "-") + "-" + variant
	sc := r.buildScenario(name, true, 9500+seedOffset, r.Scale.Fig6Population, r.Scale.Fig6Watch)
	sc.Probes = []core.ProbeSpec{{Name: ProbeTELE, ISP: isp.TELE}}
	sc.Selection = spec
	sc.FlashCrowd = workload.DefaultFlashCrowd(sc.WarmUp + sc.Watch/3)
	crashAt := sc.FlashCrowd.At + sc.FlashCrowd.Window + 30*time.Second
	sc.Faults = &fault.Schedule{
		SourceCrashes: []fault.SourceCrash{{Channel: 0, At: crashAt, Recover: crashAt + time.Minute}},
	}
	if edges {
		sc.CDN = &cdn.Config{Placements: []cdn.Placement{
			{ISP: isp.TELE, Count: 2},
			{ISP: isp.CNC, Count: 1},
		}}
	}
	return sc
}

// CDNOffload sweeps the hybrid deployment (once, then cached): each policy
// runs the same flash-crowd + source-crash workload with and without edge
// caches, measuring what the edges absorb (offload, transit saved) against
// what locality and playback do. The 2×len(specs) runs fan out over the
// worker pool.
func (r *Runner) CDNOffload(progress func(name string)) ([]CDNPoint, error) {
	r.cdnOnce.Do(func() {
		r.cdn, r.cdnErr = r.runCDN(progress)
	})
	return r.cdn, r.cdnErr
}

func (r *Runner) runCDN(progress func(name string)) ([]CDNPoint, error) {
	type job struct {
		spec  selection.Spec
		edges bool
		sc    core.Scenario
	}
	var jobs []job
	for i, name := range CDNSpecNames() {
		spec, err := selection.ParseSpec(name)
		if err != nil {
			return nil, fmt.Errorf("experiments: cdn spec %q: %w", name, err)
		}
		for _, edges := range []bool{false, true} {
			jobs = append(jobs, job{spec: spec, edges: edges, sc: r.cdnScenario(spec, edges, int64(i))})
		}
	}

	var progressMu sync.Mutex
	outs := make([]*RunOutputs, len(jobs))
	tasks := make([]func() error, len(jobs))
	for i := range jobs {
		i := i
		tasks[i] = func() error {
			if progress != nil {
				progressMu.Lock()
				progress(jobs[i].sc.Name)
				progressMu.Unlock()
			}
			out, err := runScenario(jobs[i].sc)
			if err != nil {
				return fmt.Errorf("%s: %w", jobs[i].sc.Name, err)
			}
			outs[i] = out
			return nil
		}
	}
	if err := parallelDo(r.Workers, tasks...); err != nil {
		return nil, err
	}

	points := make([]CDNPoint, 0, len(jobs))
	baseline := map[string]uint64{}
	for i, j := range jobs {
		rep, err := report(outs[i], ProbeTELE)
		if err != nil {
			return nil, err
		}
		pt := CDNPoint{
			Spec:         j.spec.String(),
			Edges:        j.edges,
			Locality:     rep.TrafficLocality,
			EdgeBytes:    rep.EdgeBytes,
			SourceBytes:  rep.SourceBytes,
			OffloadByISP: map[isp.ISP]uint64{},
			ShedByISP:    map[isp.ISP]uint64{},
		}
		for cat, n := range rep.BytesByISP {
			if cat != isp.TELE {
				pt.TransitBytes += n
			}
		}
		res := outs[i].Result
		for _, es := range res.EdgeStats {
			pt.OffloadByISP[es.ISP] += es.ServedBytes
			pt.ShedByISP[es.ISP] += es.Shed
		}
		for pi, p := range res.Probes {
			if p.Name != ProbeTELE {
				continue
			}
			pt.Continuity = p.Client.BufferStats().Continuity()
			rrep, err := res.ProbeResilience(pi, ChaosTarget)
			if err != nil {
				return nil, err
			}
			pt.MinContinuity = 1
			for _, w := range rrep.Windows {
				if w.MinContinuity < pt.MinContinuity {
					pt.MinContinuity = w.MinContinuity
				}
			}
		}
		if !j.edges {
			baseline[pt.Spec] = pt.TransitBytes
		}
		points = append(points, pt)
	}
	for i := range points {
		base := baseline[points[i].Spec]
		if points[i].Edges && base > 0 && points[i].TransitBytes <= base {
			points[i].TransitSaved = 1 - float64(points[i].TransitBytes)/float64(base)
		}
	}
	return points, nil
}

// RenderCDN formats the sweep as one table per policy: the edge-less
// baseline against the hybrid deployment, plus the swarm-wide per-ISP
// offload the edge counters report.
func RenderCDN(points []CDNPoint) string {
	var b strings.Builder
	for _, spec := range CDNSpecNames() {
		// CDNSpecNames entries parse to the canonical String() form used in
		// the points; normalize through the same path.
		s, err := selection.ParseSpec(spec)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "policy %s:\n", s.String())
		fmt.Fprintf(&b, "  %-10s %9s %14s %13s %12s %13s %11s %9s\n",
			"deployment", "locality", "transit bytes", "transit saved", "edge bytes", "source bytes", "continuity", "min-cont")
		for _, pt := range points {
			if pt.Spec != s.String() {
				continue
			}
			dep := "p2p-only"
			if pt.Edges {
				dep = "+edges"
			}
			fmt.Fprintf(&b, "  %-10s %8.1f%% %14d %12.1f%% %12d %13d %11.3f %9.3f\n",
				dep, 100*pt.Locality, pt.TransitBytes, 100*pt.TransitSaved,
				pt.EdgeBytes, pt.SourceBytes, pt.Continuity, pt.MinContinuity)
			if pt.Edges {
				fmt.Fprintf(&b, "  edge offload (swarm-wide served bytes / shed requests):")
				for _, cat := range isp.All() {
					if pt.OffloadByISP[cat] == 0 && pt.ShedByISP[cat] == 0 {
						continue
					}
					fmt.Fprintf(&b, "  %s=%d/%d", cat, pt.OffloadByISP[cat], pt.ShedByISP[cat])
				}
				fmt.Fprintf(&b, "\n")
			}
		}
	}
	b.WriteString("  expectation: edges absorb the urgent misses the flash crowd and the source crash\n")
	b.WriteString("  create (min-cont holds near 1 with edges, dips without), and same-ISP edges convert\n")
	b.WriteString("  origin/transit bytes into intra-ISP edge bytes without disturbing peer locality\n")
	return b.String()
}
