package asnmap

import (
	"net/netip"
	"testing"

	"pplivesim/internal/ipam"
	"pplivesim/internal/isp"
)

func TestSyntheticInternetLookup(t *testing.T) {
	r := SyntheticInternet()
	tests := []struct {
		addr string
		want isp.ISP
	}{
		{"58.40.1.2", isp.TELE},
		{"61.130.0.9", isp.TELE},
		{"60.10.0.1", isp.CNC},
		{"221.200.3.4", isp.CNC},
		{"59.66.1.1", isp.CER},
		{"202.114.0.5", isp.CER},
		{"211.91.2.2", isp.OtherCN},
		{"129.174.10.20", isp.Foreign},
		{"24.5.6.7", isp.Foreign},
	}
	for _, tt := range tests {
		got, ok := r.ISPOf(netip.MustParseAddr(tt.addr))
		if !ok {
			t.Errorf("ISPOf(%s): not found", tt.addr)
			continue
		}
		if got != tt.want {
			t.Errorf("ISPOf(%s) = %s, want %s", tt.addr, got, tt.want)
		}
	}
}

func TestLookupMiss(t *testing.T) {
	r := SyntheticInternet()
	if _, ok := r.Lookup(netip.MustParseAddr("192.0.2.1")); ok {
		t.Error("lookup of unregistered prefix unexpectedly succeeded")
	}
}

func TestLookupReturnsRecordFields(t *testing.T) {
	r := SyntheticInternet()
	rec, ok := r.Lookup(netip.MustParseAddr("129.174.1.1"))
	if !ok {
		t.Fatal("GMU prefix not found")
	}
	if rec.ASN != 24 || rec.ISP != isp.Foreign {
		t.Errorf("record = %+v, want ASN 24 / Foreign", rec)
	}
	if rec.Name == "" {
		t.Error("record has empty AS name")
	}
}

func TestPoolForAllocatesInCategory(t *testing.T) {
	r := SyntheticInternet()
	for _, category := range isp.All() {
		pool, err := r.PoolFor(category)
		if err != nil {
			t.Fatalf("PoolFor(%s): %v", category, err)
		}
		for i := 0; i < 100; i++ {
			a, err := pool.Alloc()
			if err != nil {
				t.Fatalf("Alloc from %s pool: %v", category, err)
			}
			got, ok := r.ISPOf(a)
			if !ok || got != category {
				t.Fatalf("allocated %s resolves to (%v,%v), want %s", a, got, ok, category)
			}
		}
	}
}

func TestPoolForUnknownCategory(t *testing.T) {
	r := NewRegistry()
	if _, err := r.PoolFor(isp.TELE); err == nil {
		t.Error("PoolFor on empty registry did not error")
	}
}

func TestLongestPrefixWins(t *testing.T) {
	r := NewRegistry()
	r.Add(Record{ASN: 1, Name: "BIG", ISP: isp.TELE, Prefix: ipam.MustParsePrefix("58.0.0.0/8")})
	r.Add(Record{ASN: 2, Name: "SMALL", ISP: isp.CNC, Prefix: ipam.MustParsePrefix("58.1.0.0/16")})
	rec, ok := r.Lookup(netip.MustParseAddr("58.1.2.3"))
	if !ok || rec.ASN != 2 {
		t.Errorf("Lookup = (%+v,%v), want the /16 record", rec, ok)
	}
	rec, ok = r.Lookup(netip.MustParseAddr("58.9.2.3"))
	if !ok || rec.ASN != 1 {
		t.Errorf("Lookup = (%+v,%v), want the /8 record", rec, ok)
	}
}

func TestRecordsSortedByASN(t *testing.T) {
	r := SyntheticInternet()
	recs := r.Records()
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].ASN > recs[i].ASN {
			t.Fatalf("records not sorted at %d: %d > %d", i, recs[i-1].ASN, recs[i].ASN)
		}
	}
}

func TestEveryCategoryHasCapacity(t *testing.T) {
	r := SyntheticInternet()
	for _, category := range isp.All() {
		pool, err := r.PoolFor(category)
		if err != nil {
			t.Fatalf("PoolFor(%s): %v", category, err)
		}
		// Large simulations need tens of thousands of peers per category.
		if got := pool.Remaining(); got < 100_000 {
			t.Errorf("%s pool capacity %d, want >= 100000", category, got)
		}
	}
}
