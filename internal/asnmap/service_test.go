package asnmap_test

import (
	"net/netip"
	"testing"
	"time"

	"pplivesim/internal/asnmap"
	"pplivesim/internal/isp"
	"pplivesim/internal/simnet"
)

// newServicePair spawns a service and a client in a fresh world.
func newServicePair(t *testing.T) (*simnet.World, *asnmap.Service, *asnmap.Client) {
	t.Helper()
	w := simnet.NewWorld(1)
	w.CodecCheck = true
	srvEnv, err := w.Spawn(simnet.HostSpec{ISP: isp.TELE, UploadBps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	svc := asnmap.NewService(srvEnv, asnmap.SyntheticInternet())
	srvEnv.SetHandler(svc)

	cliEnv, err := w.Spawn(simnet.HostSpec{ISP: isp.CNC, UploadBps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cli := asnmap.NewClient(cliEnv, srvEnv.Addr())
	cliEnv.SetHandler(cli)
	return w, svc, cli
}

func TestServiceResolvesOverWire(t *testing.T) {
	w, svc, cli := newServicePair(t)
	var gotRec asnmap.Record
	gotFound := false
	cli.Resolve(netip.MustParseAddr("58.40.1.2"), func(rec asnmap.Record, found bool) {
		gotRec, gotFound = rec, found
	})
	if err := w.Engine.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !gotFound {
		t.Fatal("resolution failed")
	}
	if gotRec.ISP != isp.TELE || gotRec.ASN != 4134 {
		t.Errorf("record = %+v, want CHINANET", gotRec)
	}
	if svc.Queries() == 0 {
		t.Error("service served no queries")
	}
}

func TestServiceMiss(t *testing.T) {
	w, _, cli := newServicePair(t)
	found := true
	cli.Resolve(netip.MustParseAddr("192.0.2.1"), func(_ asnmap.Record, ok bool) { found = ok })
	if err := w.Engine.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("unregistered address resolved")
	}
}

func TestClientCachesAnswers(t *testing.T) {
	w, svc, cli := newServicePair(t)
	addr := netip.MustParseAddr("60.1.2.3")
	answers := 0
	cli.Resolve(addr, func(asnmap.Record, bool) { answers++ })
	if err := w.Engine.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	queriesAfterFirst := svc.Queries()
	cli.Resolve(addr, func(asnmap.Record, bool) { answers++ })
	cli.Resolve(addr, func(asnmap.Record, bool) { answers++ })
	if err := w.Engine.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if answers != 3 {
		t.Errorf("answers = %d, want 3", answers)
	}
	if svc.Queries() != queriesAfterFirst {
		t.Errorf("cache miss: queries went %d → %d", queriesAfterFirst, svc.Queries())
	}
	if cli.CacheSize() != 1 {
		t.Errorf("cache size = %d, want 1", cli.CacheSize())
	}
}

func TestConcurrentResolvesCoalesce(t *testing.T) {
	w, _, cli := newServicePair(t)
	addr := netip.MustParseAddr("59.66.0.1")
	answers := 0
	for i := 0; i < 5; i++ {
		cli.Resolve(addr, func(_ asnmap.Record, ok bool) {
			if ok {
				answers++
			}
		})
	}
	if err := w.Engine.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if answers != 5 {
		t.Errorf("answers = %d, want all 5 waiters called", answers)
	}
}
