package asnmap

import (
	"net/netip"
	"time"

	"pplivesim/internal/isp"
	"pplivesim/internal/node"
	"pplivesim/internal/wire"
)

// Service answers IP→ASN queries over the wire, the simulation's equivalent
// of Team Cymru's mapping service. Analysis tooling can resolve addresses
// either directly against a Registry or remotely through a Service.
type Service struct {
	env node.Env
	reg *Registry

	queries uint64
}

// NewService binds a registry to a node environment; install it with
// env.SetHandler(service).
func NewService(env node.Env, reg *Registry) *Service {
	return &Service{env: env, reg: reg}
}

var _ node.Handler = (*Service)(nil)

// Queries returns the number of queries served.
func (s *Service) Queries() uint64 { return s.queries }

// HandleMessage implements node.Handler.
func (s *Service) HandleMessage(from netip.Addr, msg wire.Message) {
	q, ok := msg.(*wire.AsnQuery)
	if !ok {
		return
	}
	s.queries++
	resp := &wire.AsnResponse{Addr: q.Addr}
	if rec, found := s.reg.Lookup(q.Addr); found {
		resp.Found = true
		resp.ASN = rec.ASN
		resp.ISP = byte(rec.ISP)
		resp.Name = rec.Name
	}
	s.env.Send(from, resp)
}

// Client queries a Service and caches answers, as the paper's analysis
// pipeline cached Team Cymru lookups.
type Client struct {
	env    node.Env
	server netip.Addr

	cache   map[netip.Addr]Record
	misses  map[netip.Addr]bool
	pending map[netip.Addr][]func(Record, bool)
}

// NewClient creates a resolver client against the service at server;
// install it with env.SetHandler(client).
func NewClient(env node.Env, server netip.Addr) *Client {
	return &Client{
		env:     env,
		server:  server,
		cache:   make(map[netip.Addr]Record),
		misses:  make(map[netip.Addr]bool),
		pending: make(map[netip.Addr][]func(Record, bool)),
	}
}

var _ node.Handler = (*Client)(nil)

// Resolve looks up addr, invoking done with the record (and whether it was
// found) once available. Cached answers complete on a zero-delay timer so
// callbacks never run re-entrantly.
func (c *Client) Resolve(addr netip.Addr, done func(Record, bool)) {
	if rec, ok := c.cache[addr]; ok {
		c.env.After(0, func() { done(rec, true) })
		return
	}
	if c.misses[addr] {
		c.env.After(0, func() { done(Record{}, false) })
		return
	}
	c.pending[addr] = append(c.pending[addr], done)
	if len(c.pending[addr]) == 1 {
		c.env.Send(c.server, &wire.AsnQuery{Addr: addr})
		// Retry while callbacks wait (queries ride a lossy network).
		var retry func()
		retry = func() {
			if len(c.pending[addr]) == 0 {
				return
			}
			c.env.Send(c.server, &wire.AsnQuery{Addr: addr})
			c.env.After(2*time.Second, retry)
		}
		c.env.After(2*time.Second, retry)
	}
}

// CacheSize returns the number of cached positive answers.
func (c *Client) CacheSize() int { return len(c.cache) }

// HandleMessage implements node.Handler.
func (c *Client) HandleMessage(_ netip.Addr, msg wire.Message) {
	resp, ok := msg.(*wire.AsnResponse)
	if !ok {
		return
	}
	waiters := c.pending[resp.Addr]
	delete(c.pending, resp.Addr)
	var rec Record
	if resp.Found {
		rec = Record{ASN: resp.ASN, Name: resp.Name, ISP: isp.ISP(resp.ISP)}
		c.cache[resp.Addr] = rec
	} else {
		c.misses[resp.Addr] = true
	}
	for _, done := range waiters {
		done(rec, resp.Found)
	}
}
