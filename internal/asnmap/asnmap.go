// Package asnmap provides an IP→ASN mapping service over a synthetic IPv4
// address plan.
//
// The paper resolved captured peer addresses to ISPs with Team Cymru's
// IP-to-ASN mapping service. We reproduce that indirection: a Registry
// holds (prefix, ASN, AS name, ISP category) records backed by a
// longest-prefix-match trie, and the analysis pipeline resolves trace
// addresses through it rather than reading ISP labels off simulation
// objects directly. A wire-queryable server/client pair lives in service.go.
package asnmap

import (
	"fmt"
	"net/netip"
	"sort"

	"pplivesim/internal/ipam"
	"pplivesim/internal/isp"
)

// Record describes the origin AS of a prefix.
type Record struct {
	ASN    uint32  // autonomous system number
	Name   string  // AS name, e.g. "CHINANET-BACKBONE"
	ISP    isp.ISP // the paper's ISP category for this AS
	Prefix ipam.Prefix
}

// Registry maps IPv4 addresses to AS records via longest-prefix match.
type Registry struct {
	trie    *ipam.Trie
	records []Record
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{trie: ipam.NewTrie()}
}

// Add registers a prefix with its AS record.
func (r *Registry) Add(rec Record) {
	r.trie.Insert(rec.Prefix, len(r.records))
	r.records = append(r.records, rec)
}

// Lookup resolves an address to its AS record.
func (r *Registry) Lookup(addr netip.Addr) (Record, bool) {
	idx, ok := r.trie.Lookup(addr)
	if !ok {
		return Record{}, false
	}
	return r.records[idx], true
}

// ISPOf resolves an address straight to its ISP category, returning
// isp.Foreign=false style miss via ok.
func (r *Registry) ISPOf(addr netip.Addr) (isp.ISP, bool) {
	rec, ok := r.Lookup(addr)
	if !ok {
		return 0, false
	}
	return rec.ISP, true
}

// Records returns a copy of all registered records, sorted by ASN.
func (r *Registry) Records() []Record {
	out := make([]Record, len(r.records))
	copy(out, r.records)
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// planEntry is one prefix of the synthetic internet address plan.
type planEntry struct {
	cidr string
	asn  uint32
	name string
	isp  isp.ISP
}

// syntheticPlan is a compact address plan loosely modeled on real 2008-era
// allocations: China Telecom's CHINANET, China Netcom's backbone, CERNET,
// smaller Chinese carriers, and a handful of foreign networks. The plan only
// needs to (a) give each ISP category enough unique addresses for large
// simulations and (b) force analysis code through a realistic prefix lookup.
var syntheticPlan = []planEntry{
	// China Telecom (CHINANET).
	{"58.32.0.0/11", 4134, "CHINANET-BACKBONE", isp.TELE},
	{"114.80.0.0/12", 4134, "CHINANET-BACKBONE", isp.TELE},
	{"222.64.0.0/11", 4134, "CHINANET-BACKBONE", isp.TELE},
	{"61.128.0.0/10", 4134, "CHINANET-BACKBONE", isp.TELE},
	// China Netcom.
	{"60.0.0.0/11", 4837, "CNCGROUP-BACKBONE", isp.CNC},
	{"218.56.0.0/13", 4837, "CNCGROUP-BACKBONE", isp.CNC},
	{"221.192.0.0/12", 4837, "CNCGROUP-BACKBONE", isp.CNC},
	{"124.64.0.0/13", 4808, "CNCGROUP-BEIJING", isp.CNC},
	// CERNET.
	{"59.64.0.0/12", 4538, "ERX-CERNET-BKB", isp.CER},
	{"202.112.0.0/13", 4538, "ERX-CERNET-BKB", isp.CER},
	// Smaller Chinese ISPs.
	{"211.90.0.0/15", 9800, "UNICOM-CN", isp.OtherCN},
	{"210.51.0.0/16", 9929, "CNCNET-CN", isp.OtherCN},
	{"61.232.0.0/14", 9394, "CRNET China Railway", isp.OtherCN},
	{"222.240.0.0/13", 17430, "GREATWALL-CN", isp.OtherCN},
	// Foreign networks (US campus and residential, Europe, Asia-Pacific).
	{"129.174.0.0/16", 24, "GMU George Mason University", isp.Foreign},
	{"24.0.0.0/12", 7922, "COMCAST-7922", isp.Foreign},
	{"68.32.0.0/11", 7922, "COMCAST-7922", isp.Foreign},
	{"130.192.0.0/14", 137, "GARR-IT", isp.Foreign},
	{"133.0.0.0/10", 2497, "IIJ Internet Initiative Japan", isp.Foreign},
	{"143.248.0.0/16", 1781, "KAIST-KR", isp.Foreign},
	{"128.112.0.0/16", 88, "PRINCETON-US", isp.Foreign},
}

// SyntheticInternet builds the default registry used by all simulations.
func SyntheticInternet() *Registry {
	r := NewRegistry()
	for _, e := range syntheticPlan {
		r.Add(Record{
			ASN:    e.asn,
			Name:   e.name,
			ISP:    e.isp,
			Prefix: ipam.MustParsePrefix(e.cidr),
		})
	}
	return r
}

// PrefixesFor returns every prefix of the given ISP category in registration
// order. Sharded worlds partition a category's address space into domains by
// splitting this list.
func (r *Registry) PrefixesFor(category isp.ISP) []ipam.Prefix {
	var prefixes []ipam.Prefix
	for _, rec := range r.records {
		if rec.ISP == category {
			prefixes = append(prefixes, rec.Prefix)
		}
	}
	return prefixes
}

// PoolFor builds an allocation pool over every prefix of the given ISP
// category in the registry, in registration order.
func (r *Registry) PoolFor(category isp.ISP) (*ipam.Pool, error) {
	var prefixes []ipam.Prefix
	for _, rec := range r.records {
		if rec.ISP == category {
			prefixes = append(prefixes, rec.Prefix)
		}
	}
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("asnmap: no prefixes registered for %s", category)
	}
	return ipam.NewPool(prefixes...), nil
}
