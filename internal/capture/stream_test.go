package capture

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"pplivesim/internal/wire"
)

// collectSink reconstructs a Matched from streamed events, so aggregator
// output can be compared 1:1 against post-hoc Match.
type collectSink struct {
	m        Matched
	requests int
}

func (c *collectSink) DataRequest(peer netip.Addr, at time.Duration) { c.requests++ }
func (c *collectSink) DataMatched(tx Transmission)                   { c.m.Transmissions = append(c.m.Transmissions, tx) }
func (c *collectSink) DataUnanswered(peer netip.Addr, reqAt time.Duration) {
	c.m.UnansweredData++
}
func (c *collectSink) PeerListMatched(ex ListExchange) {
	ex.Addrs = append([]netip.Addr(nil), ex.Addrs...)
	c.m.ListExchanges = append(c.m.ListExchanges, ex)
}
func (c *collectSink) ListUnanswered(peer netip.Addr, reqAt time.Duration) {
	c.m.UnansweredLists++
}
func (c *collectSink) TrackerList(ex ListExchange) {
	ex.Addrs = append([]netip.Addr(nil), ex.Addrs...)
	c.m.TrackerLists = append(c.m.TrackerLists, ex)
}

// replay feeds a recorded trace through an Aggregator, reconstructing the
// wire messages the taps would have observed.
func replay(a *Aggregator, records []Record) {
	for _, rec := range records {
		var msg wire.Message
		switch rec.Type {
		case wire.TDataRequest:
			msg = &wire.DataRequest{Seq: rec.Seq, Count: rec.Count}
		case wire.TDataReply:
			pieceLen := 0
			if rec.Count > 0 {
				pieceLen = rec.Payload / int(rec.Count)
			}
			msg = &wire.DataReply{Seq: rec.Seq, Count: rec.Count, PieceLen: uint16(pieceLen)}
		case wire.TPeerListRequest:
			msg = &wire.PeerListRequest{}
		case wire.TPeerListReply:
			msg = &wire.PeerListReply{Peers: rec.Addrs}
		case wire.TTrackerQuery:
			msg = &wire.TrackerQuery{}
		case wire.TTrackerResponse:
			msg = &wire.TrackerResponse{Peers: rec.Addrs}
		default:
			msg = &wire.BufferMapAnnounce{}
		}
		a.Observe(rec.At, rec.Dir, rec.Peer, msg, rec.Size)
	}
}

// genMixedTrace builds a random but deterministic trace exercising every
// matching rule: data requests with replies, losses and retransmissions,
// gossip with the latest-request rule and unsolicited replies, tracker
// exchanges, and interleaved noise.
func genMixedTrace(seed int64, n int) ([]Record, map[netip.Addr]bool) {
	rng := rand.New(rand.NewSource(seed))
	peers := make([]netip.Addr, 12)
	for i := range peers {
		peers[i] = netip.AddrFrom4([4]byte{58, 32, 1, byte(i + 1)})
	}
	trk := netip.AddrFrom4([4]byte{61, 128, 0, 1})
	trackers := map[netip.Addr]bool{trk: true}

	var records []Record
	now := time.Duration(0)
	seq := uint64(0)
	for len(records) < n {
		now += time.Duration(1+rng.Intn(40)) * time.Millisecond
		p := peers[rng.Intn(len(peers))]
		switch roll := rng.Float64(); {
		case roll < 0.55: // data request, usually answered
			seq++
			records = append(records, Record{At: now, Dir: Out, Peer: p, Type: wire.TDataRequest, Seq: seq, Count: 1})
			if rng.Float64() < 0.15 { // retransmission of the same sub-piece
				records = append(records, Record{At: now + time.Duration(30+rng.Intn(50))*time.Millisecond,
					Dir: Out, Peer: p, Type: wire.TDataRequest, Seq: seq, Count: 1})
			}
			if rng.Float64() < 0.85 {
				records = append(records, Record{At: now + time.Duration(120+rng.Intn(300))*time.Millisecond,
					Dir: In, Peer: p, Type: wire.TDataReply, Seq: seq, Count: 1, Payload: 1380})
			}
		case roll < 0.75: // gossip
			records = append(records, Record{At: now, Dir: Out, Peer: p, Type: wire.TPeerListRequest})
			if rng.Float64() < 0.7 {
				records = append(records, Record{At: now + time.Duration(80+rng.Intn(200))*time.Millisecond,
					Dir: In, Peer: p, Type: wire.TPeerListReply,
					Addrs: []netip.Addr{peers[rng.Intn(len(peers))], peers[rng.Intn(len(peers))]}})
			}
		case roll < 0.82: // unsolicited list reply (noise)
			records = append(records, Record{At: now, Dir: In, Peer: p, Type: wire.TPeerListReply,
				Addrs: []netip.Addr{peers[rng.Intn(len(peers))]}})
		case roll < 0.92: // tracker exchange, sometimes a duplicate response
			records = append(records, Record{At: now, Dir: Out, Peer: trk, Type: wire.TTrackerQuery})
			records = append(records, Record{At: now + time.Duration(50+rng.Intn(100))*time.Millisecond,
				Dir: In, Peer: trk, Type: wire.TTrackerResponse,
				Addrs: []netip.Addr{peers[rng.Intn(len(peers))]}})
			if rng.Float64() < 0.3 {
				records = append(records, Record{At: now + time.Duration(200+rng.Intn(100))*time.Millisecond,
					Dir: In, Peer: trk, Type: wire.TTrackerResponse,
					Addrs: []netip.Addr{peers[rng.Intn(len(peers))]}})
			}
		default: // noise the matcher must ignore
			records = append(records, Record{At: now, Dir: In, Peer: p, Type: wire.TBufferMap})
		}
	}
	// Replies were appended out of time order; restore capture order.
	sortRecordsByTime(records)
	return records, trackers
}

func sortRecordsByTime(records []Record) {
	// Stable insertion keeps equal-timestamp records in generation order,
	// like a real capture would.
	for i := 1; i < len(records); i++ {
		for j := i; j > 0 && records[j].At < records[j-1].At; j-- {
			records[j], records[j-1] = records[j-1], records[j]
		}
	}
}

// TestAggregatorMatchesPostHoc is the streaming matcher's equivalence
// property: over random traces (whose every reply arrives within the TTL),
// the streamed outcomes reconstruct exactly the Matched that post-hoc Match
// computes — same transmissions in the same order, same exchanges, same
// unanswered tallies.
func TestAggregatorMatchesPostHoc(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		records, trackers := genMixedTrace(seed, 600)
		want := Match(records, trackers)

		var sink collectSink
		agg := NewAggregator(trackers, AggregatorConfig{}, &sink)
		replay(agg, records)
		agg.Close()

		if !reflect.DeepEqual(sink.m, want) {
			t.Errorf("seed %d: streamed Matched differs from post-hoc\nstreamed: %+v\npost-hoc: %+v",
				seed, summarize(sink.m), summarize(want))
		}
		rawRequests := 0
		for _, rec := range records {
			if rec.Dir == Out && rec.Type == wire.TDataRequest {
				rawRequests++
			}
		}
		if sink.requests != rawRequests {
			t.Errorf("seed %d: DataRequest events = %d, want %d", seed, sink.requests, rawRequests)
		}
	}
}

func summarize(m Matched) map[string]int {
	return map[string]int{
		"transmissions":   len(m.Transmissions),
		"unansweredData":  m.UnansweredData,
		"listExchanges":   len(m.ListExchanges),
		"unansweredLists": m.UnansweredLists,
		"trackerLists":    len(m.TrackerLists),
	}
}

// TestAggregatorTTLEviction checks the bounded-pending contract: a request
// older than PendingTTL is evicted (counted unanswered) and a late reply no
// longer matches.
func TestAggregatorTTLEviction(t *testing.T) {
	peer := addr("58.32.0.2")
	var sink collectSink
	agg := NewAggregator(nil, AggregatorConfig{PendingTTL: time.Second}, &sink)

	agg.Observe(0, Out, peer, &wire.DataRequest{Seq: 1, Count: 1}, 0)
	agg.Observe(100*time.Millisecond, Out, peer, &wire.PeerListRequest{}, 0)
	if d, l, _ := agg.Pending(); d != 1 || l != 1 {
		t.Fatalf("pending = (%d,%d), want (1,1)", d, l)
	}

	// Any observation past the TTL triggers eviction of both.
	agg.Observe(2*time.Second, In, peer, &wire.BufferMapAnnounce{}, 0)
	if d, l, _ := agg.Pending(); d != 0 || l != 0 {
		t.Errorf("pending after TTL = (%d,%d), want (0,0)", d, l)
	}
	if sink.m.UnansweredData != 1 || sink.m.UnansweredLists != 1 {
		t.Errorf("unanswered after TTL = (%d,%d), want (1,1)",
			sink.m.UnansweredData, sink.m.UnansweredLists)
	}

	// The evicted request can no longer be matched by a late reply.
	agg.Observe(2100*time.Millisecond, In, peer, &wire.DataReply{Seq: 1, Count: 1, PieceLen: 1380}, 0)
	agg.Observe(2100*time.Millisecond, In, peer, &wire.PeerListReply{Peers: []netip.Addr{addr("1.1.1.1")}}, 0)
	if len(sink.m.Transmissions) != 0 || len(sink.m.ListExchanges) != 0 {
		t.Errorf("late replies matched after eviction: %+v", summarize(sink.m))
	}

	// A fresh request still matches normally afterwards.
	agg.Observe(3*time.Second, Out, peer, &wire.DataRequest{Seq: 2, Count: 1}, 0)
	agg.Observe(3200*time.Millisecond, In, peer, &wire.DataReply{Seq: 2, Count: 1, PieceLen: 1380}, 0)
	if len(sink.m.Transmissions) != 1 {
		t.Errorf("post-eviction request did not match: %+v", summarize(sink.m))
	}
	agg.Close()
}

// TestAggregatorMaxPendingBound checks the hard cap: pending state never
// exceeds MaxPending entries per table; the oldest entries give way.
func TestAggregatorMaxPendingBound(t *testing.T) {
	var sink collectSink
	agg := NewAggregator(nil, AggregatorConfig{MaxPending: 4}, &sink)
	for i := 0; i < 10; i++ {
		p := netip.AddrFrom4([4]byte{58, 32, 1, byte(i + 1)})
		agg.Observe(time.Duration(i)*time.Millisecond, Out, p, &wire.DataRequest{Seq: uint64(i), Count: 1}, 0)
		agg.Observe(time.Duration(i)*time.Millisecond, Out, p, &wire.PeerListRequest{}, 0)
		if d, l, _ := agg.Pending(); d > 4 || l > 4 {
			t.Fatalf("pending = (%d,%d) exceeds MaxPending 4", d, l)
		}
	}
	if d, l, _ := agg.Pending(); d != 4 || l != 4 {
		t.Errorf("final pending = (%d,%d), want (4,4)", d, l)
	}
	if sink.m.UnansweredData != 6 || sink.m.UnansweredLists != 6 {
		t.Errorf("evicted = (%d,%d), want (6,6)", sink.m.UnansweredData, sink.m.UnansweredLists)
	}
	// The newest 4 are still matchable; the oldest 6 are gone.
	p9 := netip.AddrFrom4([4]byte{58, 32, 1, 10})
	agg.Observe(20*time.Millisecond, In, p9, &wire.DataReply{Seq: 9, Count: 1, PieceLen: 1380}, 0)
	p0 := netip.AddrFrom4([4]byte{58, 32, 1, 1})
	agg.Observe(21*time.Millisecond, In, p0, &wire.DataReply{Seq: 0, Count: 1, PieceLen: 1380}, 0)
	if len(sink.m.Transmissions) != 1 || sink.m.Transmissions[0].Peer != p9 {
		t.Errorf("cap eviction kept the wrong entries: %+v", sink.m.Transmissions)
	}
	agg.Close()
}

// TestAggregatorCloseFlushesPending checks that Close reports every
// still-outstanding request as unanswered (matching post-hoc leftovers) and
// is idempotent, and that Observe afterwards panics.
func TestAggregatorCloseFlushesPending(t *testing.T) {
	peer := addr("58.32.0.2")
	var sink collectSink
	agg := NewAggregator(nil, AggregatorConfig{}, &sink)
	agg.Observe(0, Out, peer, &wire.DataRequest{Seq: 1, Count: 1}, 0)
	agg.Observe(time.Millisecond, Out, peer, &wire.PeerListRequest{}, 0)
	agg.Close()
	agg.Close()
	if sink.m.UnansweredData != 1 || sink.m.UnansweredLists != 1 {
		t.Errorf("Close flushed (%d,%d), want (1,1)", sink.m.UnansweredData, sink.m.UnansweredLists)
	}
	defer func() {
		if recover() == nil {
			t.Error("Observe after Close did not panic")
		}
	}()
	agg.Observe(time.Second, Out, peer, &wire.DataRequest{Seq: 2, Count: 1}, 0)
}

// TestAggregatorQueueCompaction exercises the FIFO's amortized compaction by
// pushing enough matched pairs that the head index crosses the compaction
// threshold, then checks correctness is unaffected.
func TestAggregatorQueueCompaction(t *testing.T) {
	peer := addr("58.32.0.2")
	var sink collectSink
	agg := NewAggregator(nil, AggregatorConfig{PendingTTL: 50 * time.Millisecond}, &sink)
	now := time.Duration(0)
	for i := 0; i < 5000; i++ {
		now += time.Millisecond
		agg.Observe(now, Out, peer, &wire.DataRequest{Seq: uint64(i), Count: 1}, 0)
		now += time.Millisecond
		agg.Observe(now, In, peer, &wire.DataReply{Seq: uint64(i), Count: 1, PieceLen: 1380}, 0)
	}
	if len(sink.m.Transmissions) != 5000 || sink.m.UnansweredData != 0 {
		t.Fatalf("compaction broke matching: %+v", summarize(sink.m))
	}
	if d, _, _ := agg.queueLen(); d > 2100 {
		t.Errorf("data queue holds %d slots; compaction is not keeping up", d)
	}
	agg.Close()
}
