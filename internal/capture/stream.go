package capture

import (
	"net/netip"
	"time"

	"pplivesim/internal/wire"
)

// Events receives the incrementally matched trace from an Aggregator: one
// callback per matching outcome, in capture order. It is the streaming
// counterpart of Matched — a sink that folds outcomes into bounded aggregates
// instead of accumulating records.
//
// Callbacks run synchronously inside Aggregator.Observe (or Close, for the
// final unanswered flush). PeerListMatched and TrackerList may hand over an
// Addrs slice that aliases a pooled wire message; implementations must
// consume it during the call and never retain it.
type Events interface {
	// DataRequest reports every outgoing data request (answered or not) —
	// the raw "data requests made by our host" count of Figures 11-14(b).
	DataRequest(peer netip.Addr, at time.Duration)
	// DataMatched reports one matched data request/reply pair.
	DataMatched(tx Transmission)
	// DataUnanswered reports a data request that will never be answered:
	// superseded by a retransmission, evicted after the pending TTL, or
	// still outstanding at Close.
	DataUnanswered(peer netip.Addr, reqAt time.Duration)
	// PeerListMatched reports one matched gossip peer-list exchange.
	PeerListMatched(ex ListExchange)
	// ListUnanswered reports a peer-list request that will never be
	// answered.
	ListUnanswered(peer netip.Addr, reqAt time.Duration)
	// TrackerList reports one tracker response (solicited or not; check
	// ex.Unsolicited before using its response time).
	TrackerList(ex ListExchange)
}

// Aggregator defaults.
const (
	// DefaultPendingTTL bounds how long an unanswered request stays in the
	// pending tables. It is far above any simulated response time, so TTL
	// eviction never reorders accounting relative to post-hoc Match on
	// well-formed traces; it only caps state under pathological loss.
	DefaultPendingTTL = 2 * time.Minute
	// DefaultMaxPending caps each pending table's entry count.
	DefaultMaxPending = 32768
)

// AggregatorConfig bounds the Aggregator's pending-request state. Zero
// values select the defaults.
type AggregatorConfig struct {
	// PendingTTL evicts pending requests older than this (counted as
	// unanswered). <= 0 selects DefaultPendingTTL.
	PendingTTL time.Duration
	// MaxPending caps the number of simultaneously pending requests per
	// table (data / peer-list / tracker); the oldest entries are evicted
	// first. <= 0 selects DefaultMaxPending.
	MaxPending int
}

// pendItem is one pending request in FIFO (arrival) order. For peer-list and
// tracker queues, seq is unused.
type pendItem struct {
	peer netip.Addr
	seq  uint64
	at   time.Duration
}

// pendQueue is an amortized O(1) FIFO over a slice: pops advance a head
// index, and the backing array is compacted once the dead prefix dominates.
type pendQueue struct {
	items []pendItem
	head  int
}

func (q *pendQueue) push(it pendItem) { q.items = append(q.items, it) }

func (q *pendQueue) peek() (pendItem, bool) {
	if q.head >= len(q.items) {
		return pendItem{}, false
	}
	return q.items[q.head], true
}

func (q *pendQueue) pop() {
	q.head++
	if q.head > 1024 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
}

func (q *pendQueue) len() int { return len(q.items) - q.head }

// Aggregator applies the paper's §3.1 matching rules online, one datagram at
// a time, emitting outcomes to an Events sink as soon as they are decided.
// It is the bounded-memory replacement for Recorder + Match: instead of an
// unbounded []Record it holds only the currently pending requests, bounded
// by AggregatorConfig (TTL eviction plus a hard entry cap).
//
// On traces whose every reply arrives within PendingTTL of its request and
// whose pending load stays under MaxPending — all simulated scenarios — the
// emitted outcomes are exactly those of Match over the full trace, in the
// same order.
//
// Observe is shaped like Recorder.Observe so the same simnet taps drive
// either (or both, in full-capture mode).
type Aggregator struct {
	sink     Events
	trackers map[netip.Addr]bool
	ttl      time.Duration
	maxPend  int

	// Data matching: key (peer, seq); replies consume the latest request.
	pendingData map[dataKey]time.Duration
	dataQ       pendQueue

	// Peer-list / tracker matching: reply matches the latest outstanding
	// request to the same address (stack), while eviction removes the
	// oldest (queue front). The counters track total stacked entries.
	pendingList map[netip.Addr][]time.Duration
	listQ       pendQueue
	listN       int

	pendingTracker map[netip.Addr][]time.Duration
	trackerQ       pendQueue
	trackerN       int

	closed bool
}

// NewAggregator creates a streaming matcher feeding sink. trackers
// identifies tracker-server addresses (as in Match).
func NewAggregator(trackers map[netip.Addr]bool, cfg AggregatorConfig, sink Events) *Aggregator {
	if cfg.PendingTTL <= 0 {
		cfg.PendingTTL = DefaultPendingTTL
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	return &Aggregator{
		sink:           sink,
		trackers:       trackers,
		ttl:            cfg.PendingTTL,
		maxPend:        cfg.MaxPending,
		pendingData:    make(map[dataKey]time.Duration),
		pendingList:    make(map[netip.Addr][]time.Duration),
		pendingTracker: make(map[netip.Addr][]time.Duration),
	}
}

// Observe processes one datagram. Like Recorder.Observe it plugs directly
// into simnet.Env taps. It must not be called after Close.
func (a *Aggregator) Observe(at time.Duration, dir Direction, peer netip.Addr, msg wire.Message, size int) {
	if a.closed {
		panic("capture: Aggregator.Observe after Close")
	}
	a.expire(at)
	switch m := msg.(type) {
	case *wire.DataRequest:
		if dir != Out {
			return
		}
		a.sink.DataRequest(peer, at)
		k := dataKey{peer, m.Seq}
		if old, dup := a.pendingData[k]; dup {
			// Superseded by this retransmission; the old request is
			// unanswered for good (the reply matches the latest request).
			a.sink.DataUnanswered(peer, old)
		}
		a.pendingData[k] = at
		a.dataQ.push(pendItem{peer: peer, seq: m.Seq, at: at})
		for len(a.pendingData) > a.maxPend {
			a.evictOldestData()
		}
	case *wire.DataReply:
		if dir != In {
			return
		}
		k := dataKey{peer, m.Seq}
		reqAt, ok := a.pendingData[k]
		if !ok {
			return // unsolicited or post-eviction reply
		}
		delete(a.pendingData, k)
		a.sink.DataMatched(Transmission{
			Peer:   peer,
			Seq:    m.Seq,
			ReqAt:  reqAt,
			RepAt:  at,
			Bytes:  m.PayloadLen(),
			Pieces: int(m.Count),
		})
	case *wire.PeerListRequest:
		if dir != Out {
			return
		}
		a.pendingList[peer] = append(a.pendingList[peer], at)
		a.listQ.push(pendItem{peer: peer, at: at})
		a.listN++
		for a.listN > a.maxPend {
			a.evictOldestStack(&a.listQ, a.pendingList, &a.listN, a.sink.ListUnanswered)
		}
	case *wire.PeerListReply:
		if dir != In {
			return
		}
		stack := a.pendingList[peer]
		if len(stack) == 0 {
			return // unsolicited; real traces have these too
		}
		// "...match the peer list reply to the latest request designated to
		// the same IP address."
		reqAt := stack[len(stack)-1]
		if len(stack) == 1 {
			delete(a.pendingList, peer)
		} else {
			a.pendingList[peer] = stack[:len(stack)-1]
		}
		a.listN--
		a.sink.PeerListMatched(ListExchange{Peer: peer, ReqAt: reqAt, RepAt: at, Addrs: m.Peers})
	case *wire.TrackerQuery:
		if dir != Out {
			return
		}
		a.pendingTracker[peer] = append(a.pendingTracker[peer], at)
		a.trackerQ.push(pendItem{peer: peer, at: at})
		a.trackerN++
		for a.trackerN > a.maxPend {
			// Evicted tracker queries vanish silently: Match keeps no
			// unanswered-tracker tally either.
			a.evictOldestStack(&a.trackerQ, a.pendingTracker, &a.trackerN, func(netip.Addr, time.Duration) {})
		}
	case *wire.TrackerResponse:
		if dir != In || !a.trackers[peer] {
			return
		}
		stack := a.pendingTracker[peer]
		var reqAt time.Duration
		var unsolicited bool
		if len(stack) > 0 {
			reqAt = stack[len(stack)-1]
			if len(stack) == 1 {
				delete(a.pendingTracker, peer)
			} else {
				a.pendingTracker[peer] = stack[:len(stack)-1]
			}
			a.trackerN--
		} else {
			reqAt = at
			unsolicited = true
		}
		a.sink.TrackerList(ListExchange{
			Peer:        peer,
			ReqAt:       reqAt,
			RepAt:       at,
			Addrs:       m.Peers,
			Unsolicited: unsolicited,
		})
	}
}

// expire evicts pending requests older than the TTL, counting them
// unanswered. Queue entries whose request was already consumed (matched, or
// superseded and re-queued with a later timestamp) are stale and skipped.
func (a *Aggregator) expire(now time.Duration) {
	cutoff := now - a.ttl
	for {
		it, ok := a.dataQ.peek()
		if !ok || it.at > cutoff {
			break
		}
		a.evictOldestData()
	}
	for {
		it, ok := a.listQ.peek()
		if !ok || it.at > cutoff {
			break
		}
		a.evictOldestStack(&a.listQ, a.pendingList, &a.listN, a.sink.ListUnanswered)
	}
	for {
		it, ok := a.trackerQ.peek()
		if !ok || it.at > cutoff {
			break
		}
		a.evictOldestStack(&a.trackerQ, a.pendingTracker, &a.trackerN, func(netip.Addr, time.Duration) {})
	}
}

// evictOldestData pops the data queue front and, if that request is still
// pending (live entry with a matching timestamp), counts it unanswered.
func (a *Aggregator) evictOldestData() {
	it, ok := a.dataQ.peek()
	if !ok {
		return
	}
	a.dataQ.pop()
	k := dataKey{it.peer, it.seq}
	if at, live := a.pendingData[k]; live && at == it.at {
		delete(a.pendingData, k)
		a.sink.DataUnanswered(it.peer, it.at)
	}
}

// evictOldestStack pops a list/tracker queue front and, if that request is
// still the oldest outstanding one to its peer, removes and reports it.
func (a *Aggregator) evictOldestStack(q *pendQueue, pending map[netip.Addr][]time.Duration, n *int, evicted func(netip.Addr, time.Duration)) {
	it, ok := q.peek()
	if !ok {
		return
	}
	q.pop()
	stack := pending[it.peer]
	if len(stack) > 0 && stack[0] == it.at {
		if len(stack) == 1 {
			delete(pending, it.peer)
		} else {
			pending[it.peer] = stack[1:]
		}
		*n--
		evicted(it.peer, it.at)
	}
}

// Close flushes every still-pending request as unanswered, in arrival order,
// and releases the pending state. Idempotent; Observe must not be called
// afterwards.
func (a *Aggregator) Close() {
	if a.closed {
		return
	}
	a.closed = true
	for {
		if _, ok := a.dataQ.peek(); !ok {
			break
		}
		a.evictOldestData()
	}
	for {
		if _, ok := a.listQ.peek(); !ok {
			break
		}
		a.evictOldestStack(&a.listQ, a.pendingList, &a.listN, a.sink.ListUnanswered)
	}
	a.pendingData = nil
	a.pendingList = nil
	a.pendingTracker = nil
	a.dataQ = pendQueue{}
	a.trackerQ = pendQueue{}
	a.listQ = pendQueue{}
}

// Pending returns the current pending-entry counts (data, peer-list,
// tracker). Queue lengths may exceed these transiently because superseded
// and matched entries leave stale queue slots until they age out; the
// returned counts are the live table sizes that the bounds apply to.
func (a *Aggregator) Pending() (data, lists, trackers int) {
	return len(a.pendingData), a.listN, a.trackerN
}

// queueLen reports raw queue lengths, including stale slots (for tests).
func (a *Aggregator) queueLen() (data, lists, trackers int) {
	return a.dataQ.len(), a.listQ.len(), a.trackerQ.len()
}
