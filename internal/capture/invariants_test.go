package capture

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"pplivesim/internal/wire"
)

// genTrace builds a random but causally plausible trace: requests go out,
// and a random subset is answered later.
func genTrace(rng *rand.Rand) []Record {
	peers := []netip.Addr{
		netip.MustParseAddr("58.32.0.1"),
		netip.MustParseAddr("60.0.0.1"),
		netip.MustParseAddr("129.174.0.1"),
	}
	var records []Record
	now := time.Duration(0)
	type pend struct {
		peer netip.Addr
		seq  uint64
	}
	var pending []pend
	n := 5 + rng.Intn(100)
	for i := 0; i < n; i++ {
		now += time.Duration(rng.Intn(500)) * time.Millisecond
		switch {
		case len(pending) > 0 && rng.Intn(2) == 0:
			// Answer a random pending request.
			idx := rng.Intn(len(pending))
			p := pending[idx]
			pending = append(pending[:idx], pending[idx+1:]...)
			records = append(records, Record{
				At: now, Dir: In, Peer: p.peer, Type: wire.TDataReply,
				Seq: p.seq, Count: 1, Payload: 1380,
			})
		default:
			p := pend{peer: peers[rng.Intn(len(peers))], seq: uint64(rng.Intn(10000))}
			// Avoid duplicate outstanding keys, which would shadow.
			dup := false
			for _, q := range pending {
				if q == p {
					dup = true
				}
			}
			if dup {
				continue
			}
			pending = append(pending, p)
			records = append(records, Record{
				At: now, Dir: Out, Peer: p.peer, Type: wire.TDataRequest, Seq: p.seq,
			})
		}
	}
	return records
}

// Property: matching invariants hold on arbitrary plausible traces —
// transmissions + unanswered = requests, response times are non-negative,
// and every transmission pairs identical peer/seq records.
func TestPropertyMatchInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		records := genTrace(rng)
		requests := 0
		for _, r := range records {
			if r.Dir == Out && r.Type == wire.TDataRequest {
				requests++
			}
		}
		m := Match(records, nil)
		if len(m.Transmissions)+m.UnansweredData != requests {
			return false
		}
		for _, tx := range m.Transmissions {
			if tx.ResponseTime() < 0 {
				return false
			}
		}
		// RTT estimates are minima over per-peer response times.
		est := RTTEstimates(m.Transmissions)
		for _, tx := range m.Transmissions {
			if est[tx.Peer] > tx.ResponseTime() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// Property: matching is insensitive to unrelated record types interleaved
// into the trace.
func TestPropertyMatchIgnoresNoise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		records := genTrace(rng)
		noisy := make([]Record, 0, 2*len(records))
		peer := netip.MustParseAddr("58.32.0.9")
		for _, r := range records {
			if rng.Intn(3) == 0 {
				noisy = append(noisy, Record{
					At: r.At, Dir: In, Peer: peer, Type: wire.TBufferMap, Size: 100,
				})
			}
			noisy = append(noisy, r)
		}
		clean := Match(records, nil)
		withNoise := Match(noisy, nil)
		return len(clean.Transmissions) == len(withNoise.Transmissions) &&
			clean.UnansweredData == withNoise.UnansweredData
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}
